// Benchmarks: one per reproduced paper table/figure (running the full
// pipeline — workload simulation, trace collection, critical-path
// analysis, report rendering) plus component benchmarks for the trace
// codec, the collector, the simulator and the analyzer itself.
//
//	go test -bench=. -benchmem
//
// Figure/table benches use Quick mode (reduced sweeps) so a full bench
// run stays laptop-sized; `claexp -all` runs the full-size versions.
package critlock_test

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"critlock"
	"critlock/internal/core"
	"critlock/internal/experiments"
	"critlock/internal/segment"
	"critlock/internal/sim"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.Options{Seed: 1, Contexts: 24, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if res == nil {
			b.Fatal("nil result")
		}
	}
}

func BenchmarkTable1Environment(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2Metrics(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkFig1Concept(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkFig6Micro(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkFig7Timeline(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8AppSurvey(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9RadiositySweep(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10Contention(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11CSSize(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12Optimization(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13OptimizedSize(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14OptimizedCont(b *testing.B)   { benchExperiment(b, "fig14") }
func BenchmarkTSPOptimization(b *testing.B)      { benchExperiment(b, "tsp") }
func BenchmarkAblationWakeupOrder(b *testing.B)  { benchExperiment(b, "ablation-fairness") }
func BenchmarkAblationHoldClipping(b *testing.B) { benchExperiment(b, "ablation-clipping") }

// --- component benchmarks ---

// largeTrace builds a synthetic convoy trace with roughly n events.
func largeTrace(n int) *trace.Trace {
	b := trace.NewBuilder()
	const threads = 16
	var tids []trace.ThreadID
	root := b.Thread("t0", trace.NoThread)
	tids = append(tids, root)
	for i := 1; i < threads; i++ {
		tids = append(tids, b.Thread(fmt.Sprintf("t%d", i), root))
	}
	m := b.Mutex("hot")
	m2 := b.Mutex("cold")
	for _, tid := range tids {
		b.Start(0, tid)
	}
	// Interleaved critical sections: thread k takes the hot lock in
	// round-robin order (a convoy), plus a private cold section.
	iters := n / (threads * 6)
	tm := trace.Time(0)
	for it := 0; it < iters; it++ {
		for k, tid := range tids {
			acq := tm + trace.Time(k)
			obt := tm + trace.Time(10*(k+1))
			rel := obt + 9
			b.CS(tid, m, acq, obt, rel)
			b.CS(tid, m2, rel, rel, rel+1)
		}
		tm += trace.Time(10*threads + 20)
	}
	for _, tid := range tids {
		b.Exit(tm+1, tid)
	}
	return b.Trace()
}

// threadBuffers partitions a trace's events into per-thread buffers in
// emission order — the shape the collector holds before Finish.
func threadBuffers(tr *trace.Trace) [][]trace.Event {
	byThread := make(map[trace.ThreadID][]trace.Event)
	var order []trace.ThreadID
	for _, e := range tr.Events {
		if _, ok := byThread[e.Thread]; !ok {
			order = append(order, e.Thread)
		}
		byThread[e.Thread] = append(byThread[e.Thread], e)
	}
	bufs := make([][]trace.Event, 0, len(order))
	for _, tid := range order {
		bufs = append(bufs, byThread[tid])
	}
	return bufs
}

// BenchmarkMergeVsSort compares the two ways of flattening per-thread
// event buffers into one globally ordered stream: the k-way heap merge
// (what Collector.Finish does now) against a global sort.Slice over the
// concatenation (what it did before).
func BenchmarkMergeVsSort(b *testing.B) {
	tr := largeTrace(200_000)
	bufs := threadBuffers(tr)
	n := len(tr.Events)

	b.Run("merge", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(n))
		runs := make([][]trace.Event, len(bufs))
		for i := 0; i < b.N; i++ {
			copy(runs, bufs)
			out := trace.MergeSorted(runs)
			if len(out) != n {
				b.Fatal("short merge")
			}
		}
	})
	b.Run("sort", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			flat := make([]trace.Event, 0, n)
			for _, buf := range bufs {
				flat = append(flat, buf...)
			}
			sort.Slice(flat, func(x, y int) bool { return trace.Less(flat[x], flat[y]) })
			if len(flat) != n {
				b.Fatal("short sort")
			}
		}
	})
}

// BenchmarkRunAllParallel runs a small experiment set through the
// worker-pool runner at increasing parallelism. On a single-core box
// the times converge; the benchmark still exercises the pool, the
// deterministic ordering and the per-outcome overhead.
func BenchmarkRunAllParallel(b *testing.B) {
	ids := []string{"table2", "fig1", "fig6"}
	exps := make([]experiments.Experiment, 0, len(ids))
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		exps = append(exps, e)
	}
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			opts := experiments.Options{Seed: 1, Contexts: 24, Quick: true, Parallelism: j}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				outcomes := experiments.RunSet(exps, opts, j)
				if err := experiments.FirstError(outcomes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeReuse measures Analyze through a reused Analyzer —
// index and scratch storage amortized across runs — against the
// pooled package-level entry point benchmarked by
// BenchmarkAnalyzeLargeTrace.
func BenchmarkAnalyzeReuse(b *testing.B) {
	tr := largeTrace(200_000)
	a := core.NewAnalyzer()
	b.ReportAllocs()
	b.SetBytes(int64(len(tr.Events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := a.Analyze(tr, core.Options{ClipHold: true})
		if err != nil {
			b.Fatal(err)
		}
		if an.CP.Length == 0 {
			b.Fatal("empty critical path")
		}
	}
}

func BenchmarkAnalyzeLargeTrace(b *testing.B) {
	tr := largeTrace(200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := core.Analyze(tr, core.Options{ClipHold: true})
		if err != nil {
			b.Fatal(err)
		}
		if an.CP.Length == 0 {
			b.Fatal("empty critical path")
		}
	}
	b.SetBytes(int64(len(tr.Events)))
}

// BenchmarkAnalyzeStream2M drives the full streaming pipeline over a
// 2M-event segmented trace: segment decode, forward annotation pass,
// windowed backward walk, forward metric pass. The in-memory analyzer
// runs the same trace for comparison. The streaming side's working set
// is bounded by the walk window plus the critical-path output — its
// allocs/op stay flat as the trace grows, where the in-memory side's
// scale with it (the index alone is several arrays of n).
func BenchmarkAnalyzeStream2M(b *testing.B) {
	tr := largeTrace(2_000_000)
	dir := b.TempDir()
	if err := segment.WriteTrace(dir, tr, segment.Options{}); err != nil {
		b.Fatal(err)
	}
	r, err := segment.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.Run("stream", func(b *testing.B) {
		cfg := core.Config{Options: core.Options{ClipHold: true}}
		b.ReportAllocs()
		b.SetBytes(int64(len(tr.Events)))
		peak := measurePeakHeap(b, func() {
			if _, err := core.AnalyzeStream(r, cfg); err != nil {
				b.Fatal(err)
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			an, err := core.AnalyzeStream(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if an.CP.Length == 0 {
				b.Fatal("empty critical path")
			}
		}
		b.ReportMetric(peak, "peak-B")
	})
	b.Run("inmemory", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(tr.Events)))
		peak := measurePeakHeap(b, func() {
			if _, err := core.Analyze(tr, core.Options{ClipHold: true}); err != nil {
				b.Fatal(err)
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			an, err := core.Analyze(tr, core.Options{ClipHold: true})
			if err != nil {
				b.Fatal(err)
			}
			if an.CP.Length == 0 {
				b.Fatal("empty critical path")
			}
		}
		b.ReportMetric(peak, "peak-B")
	})
}

// measurePeakHeap runs fn once outside the timed loop while sampling
// the live heap, and returns the peak growth over the pre-fn baseline
// (reported as "peak-B"; must be reported after the timed loop because
// ResetTimer clears extra metrics). allocs/op and B/op are cumulative —
// every byte ever allocated — so they cannot distinguish a bounded
// working set with append churn from a resident O(n) footprint. GC
// percent is dropped during the sample so HeapAlloc tracks live data,
// not dead garbage.
//
// The baseline is subtracted because the caller may hold the full
// in-memory trace alive for a sibling sub-benchmark; what we want is
// how much the analysis itself keeps resident at its worst moment.
func measurePeakHeap(b *testing.B, fn func()) float64 {
	b.Helper()
	prev := debug.SetGCPercent(20)
	defer debug.SetGCPercent(prev)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak atomic.Uint64
	peak.Store(base)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				if s.HeapAlloc > peak.Load() {
					peak.Store(s.HeapAlloc)
				}
			}
		}
	}()
	fn()
	close(stop)
	<-done
	return float64(peak.Load() - base)
}

func BenchmarkTraceCodecBinaryWrite(b *testing.B) {
	tr := largeTrace(50_000)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkTraceCodecBinaryRead(b *testing.B) {
	tr := largeTrace(50_000)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadBinary(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceCodecJSONWrite(b *testing.B) {
	tr := largeTrace(50_000)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.WriteJSON(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkCollectorEmit(b *testing.B) {
	col := trace.NewCollector()
	buf := col.RegisterThread("bench", trace.NoThread)
	obj := col.RegisterObject(trace.ObjMutex, "m", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Emit(trace.Time(i), trace.EvLockAcquire, obj, 0)
	}
}

// BenchmarkSimMutexHandoff measures the simulator's cost per
// lock/unlock pair under a 8-thread convoy.
func BenchmarkSimMutexHandoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(sim.Config{Contexts: 8, Seed: 1})
		m := s.NewMutex("m")
		_, _, err := s.Run(func(p critlock.Proc) {
			var kids []critlock.Thread
			for w := 0; w < 8; w++ {
				kids = append(kids, p.Go("w", func(q critlock.Proc) {
					for j := 0; j < 500; j++ {
						q.Lock(m)
						q.Compute(10)
						q.Unlock(m)
					}
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadRadiosity24 runs the headline workload end to end
// (simulate + analyze), the unit of every radiosity figure.
func BenchmarkWorkloadRadiosity24(b *testing.B) {
	spec, err := workloads.Get("radiosity")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(sim.Config{Contexts: 24, Seed: 1})
		tr, _, err := workloads.Run(s, spec, workloads.Params{Threads: 24, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.AnalyzeDefault(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLockTableRender measures the reporting layer.
func BenchmarkLockTableRender(b *testing.B) {
	tr := largeTrace(20_000)
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = critlock.LockTable(an, 0).String()
	}
}

// --- extension benchmarks ---

func BenchmarkSlackAnalysis(b *testing.B) {
	tr := largeTrace(100_000)
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sa := an.Slack(); len(sa.Locks) == 0 {
			b.Fatal("no slack results")
		}
	}
	b.SetBytes(int64(len(tr.Events)))
}

func BenchmarkOnlinePredictor(b *testing.B) {
	tr := largeTrace(100_000)
	b.ReportAllocs()
	b.SetBytes(int64(len(tr.Events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPredictor()
		p.ObserveAll(tr)
		if p.Top() == -1 {
			b.Fatal("no prediction")
		}
	}
}

func BenchmarkWindowsAnalysis(b *testing.B) {
	tr := largeTrace(100_000)
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := an.Windows(16); len(w) != 16 {
			b.Fatal("bad windows")
		}
	}
}

func BenchmarkStreamWrite(b *testing.B) {
	tr := largeTrace(50_000)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		sw, err := trace.NewStreamWriter(&buf)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range tr.Events {
			sw.Event(e)
		}
		if err := sw.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
