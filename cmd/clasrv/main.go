// Command clasrv is the analysis server: it accepts trace uploads (or
// server-local segment directories), runs critical lock analysis
// under a concurrency budget and serves JSON reports, with Prometheus
// metrics and live progress built in.
//
//	clasrv -addr :8126
//	curl -X POST --data-binary @trace.cltr localhost:8126/v1/analyze
//	curl -X POST 'localhost:8126/v1/analyze?segdir=/var/traces/segs&window=8'
//	curl localhost:8126/v1/reports
//	curl localhost:8126/metrics
//	curl localhost:8126/debug/progress
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests finish (up to the drain timeout) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"critlock/internal/cliflags"
	"critlock/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clasrv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clasrv", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8126", "listen address")
		jobs    = cliflags.Jobs(fs)
		window  = cliflags.Window(fs)
		parSeg  = cliflags.Par(fs)
		mmap    = cliflags.Mmap(fs)
		annBud  = cliflags.AnnBudget(fs)
		timeout = fs.Duration("timeout", 60*time.Second, "per-request analysis budget (queueing included)")
		upload  = fs.Int64("max-upload", 256<<20, "maximum trace upload size in bytes")
		tmpdir  = fs.String("tmpdir", "", "spill directory for streamed analyses (default system temp)")
		cache   = fs.Int("cache", 64, "analysis reports retained for GET /v1/reports/{id}")
		drain   = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.New(serve.Options{
		MaxConcurrent:    *jobs,
		MaxUploadBytes:   *upload,
		Timeout:          *timeout,
		TmpDir:           *tmpdir,
		Window:           *window,
		ParallelSegments: *parSeg,
		NoMmap:           !*mmap,
		AnnotationBudget: *annBud,
		CacheReports:     *cache,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("clasrv: listening on %s (POST /v1/analyze, GET /metrics)\n", *addr)

	select {
	case err := <-errCh:
		return err // immediate failure (e.g. the address is taken)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Println("clasrv: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
