// Command clainstr instruments a copy of a Go module for critical
// lock analysis: it rewrites sync.Mutex/RWMutex/WaitGroup types, go
// statements, func main, os.Exit and (where resolvable) channel
// operations onto the critlock/clrt runtime, so running the copy
// emits a critlock trace ready for cla / clasrv / clalint -report.
//
//	clainstr -o /tmp/app-instr ./myapp     # instrument myapp into /tmp/app-instr
//	cd /tmp/app-instr && go run .          # run it; writes critlock.cltr
//	go run ./cmd/cla -trace critlock.cltr  # analyze the trace
//
// The instrumented copy's go.mod gets a replace directive pointing at
// the critlock repository (auto-detected when clainstr runs via `go
// run` from the repo; override with -critlock). Trace output is
// steered with CRITLOCK_OUT / CRITLOCK_SEGDIR / CRITLOCK_SEED /
// CRITLOCK_QUIET — see package critlock/clrt.
//
// Constructs the rewriter cannot handle faithfully are reported on
// stderr per file and line and left untouched (channel
// instrumentation degrades to off as a whole when any channel flow is
// unresolvable). Exit status: 0 success, 1 findings in -strict mode,
// 2 usage/internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"critlock/internal/cliflags"
	"critlock/internal/instr"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clainstr:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

func run(args []string, out, errOut io.Writer) (int, error) {
	fs := flag.NewFlagSet("clainstr", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		outDir   = fs.String("o", "", "output directory for the instrumented copy (required)")
		critlock = fs.String("critlock", "", "path to the critlock repository (default: auto-detect)")
		module   = fs.String("module", "", "module path to synthesize when the target has no go.mod")
		tests    = cliflags.Tests(fs)
		nochan   = fs.Bool("nochan", false, "disable channel instrumentation")
		strict   = fs.Bool("strict", false, "treat any skipped construct as an error (exit 1)")
		jsonOut  = fs.Bool("json", false, "emit the result (rewritten files, findings) as JSON on stdout")
	)
	fs.Usage = func() {
		fmt.Fprintf(errOut, "usage: clainstr -o <outdir> [flags] <target-dir> [patterns...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	rest := fs.Args()
	if *outDir == "" || len(rest) == 0 {
		fs.Usage()
		return 2, fmt.Errorf("need -o and a target directory")
	}
	res, err := instr.Run(instr.Options{
		Dir:          rest[0],
		Out:          *outDir,
		Patterns:     rest[1:],
		CritlockDir:  *critlock,
		IncludeTests: *tests,
		NoChannels:   *nochan,
		Strict:       *strict,
		ModulePath:   *module,
	})
	if res != nil {
		if *jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if eerr := enc.Encode(res); eerr != nil {
				return 2, eerr
			}
		} else {
			fmt.Fprintf(errOut, "clainstr: %d file(s) rewritten, %d copied into %s\n",
				len(res.Rewritten), res.Copied, *outDir)
			if !res.ChannelsOn {
				fmt.Fprintln(errOut, "clainstr: channel instrumentation is OFF (unresolvable channel flow or -nochan); channel blocking will not appear in the trace")
			}
			instr.WriteReport(errOut, res)
		}
	}
	if err != nil {
		if *strict && res != nil {
			fmt.Fprintln(errOut, "clainstr:", err)
			return 1, nil
		}
		return 2, err
	}
	return 0, nil
}
