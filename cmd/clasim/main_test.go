package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestListWorkloads(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMicroWithOutputs(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.cltr")
	js := filepath.Join(dir, "t.json")
	err := run([]string{"-w", "micro", "-threads", "4", "-o", bin, "-json", js, "-gantt", "-threadstats"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{bin, js} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Errorf("output %s missing or empty: %v", p, err)
		}
	}
}

func TestRunTwoLockVariant(t *testing.T) {
	if err := run([]string{"-w", "tsp", "-threads", "4", "-twolock"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLiveBackend(t *testing.T) {
	if err := run([]string{"-w", "micro", "-threads", "2", "-backend", "live", "-scale", "0.01"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-w", "bogus"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-backend", "quantum"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if err := run([]string{"-o", "/nonexistent-dir/x.cltr", "-w", "micro", "-threads", "2"}); err == nil {
		t.Error("unwritable output accepted")
	}
}
