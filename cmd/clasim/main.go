// Command clasim runs a modelled workload on the deterministic
// simulator (or the live goroutine backend), optionally writes the
// trace, and prints the critical lock analysis report.
//
// Examples:
//
//	clasim -list
//	clasim -w radiosity -threads 24
//	clasim -w radiosity -threads 24 -twolock
//	clasim -w micro -threads 4 -gantt
//	clasim -w tsp -threads 24 -o tsp.cltr        # save binary trace
//	clasim -w tsp -backend live -threads 8       # run on real goroutines
//	clasim -w tsp -segdir segs/                  # save segmented trace
//	clasim -w tsp -segdir segs/ -spill 65536     # spill during the run,
//	                                             # stream the analysis
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"critlock"
	"critlock/internal/cliflags"
	"critlock/internal/harness"
	"critlock/internal/livetrace"
	"critlock/internal/report"
	"critlock/internal/segment"
	"critlock/internal/sim"
	"critlock/internal/synth"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clasim", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available workloads and exit")
		name     = fs.String("w", "micro", "workload to run")
		synthIn  = fs.String("synth", "", "run a declarative JSON workload from this file instead of -w")
		threads  = fs.Int("threads", 0, "worker threads (0 = workload default)")
		seed     = fs.Int64("seed", 1, "random seed")
		scale    = fs.Float64("scale", 1, "compute-duration scale factor")
		twoLock  = fs.Bool("twolock", false, "use the two-lock queue optimization")
		contexts = fs.Int("contexts", 24, "hardware contexts in the simulator (0 = unlimited)")
		backend  = fs.String("backend", "sim", "execution backend: sim or live")
		out      = fs.String("o", "", "write binary trace to this file")
		jsonOut  = fs.String("json", "", "write JSON trace to this file")
		top      = fs.Int("top", 10, "locks to list in the report (0 = all)")
		gantt    = fs.Bool("gantt", false, "print an ASCII timeline with the critical path")
		thr      = fs.Bool("threadstats", false, "print per-thread statistics")
		svgOut   = fs.String("svg", "", "write an SVG timeline to this file")
		segdir   = cliflags.SegDir(fs)
		spill    = cliflags.Spill(fs)
		parSeg   = cliflags.Par(fs)
		annBud   = cliflags.AnnBudget(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range workloads.Names() {
			s, _ := workloads.Get(n)
			opt := ""
			if s.SupportsTwoLock {
				opt = " [-twolock]"
			}
			fmt.Printf("%-10s %s%s\n           %s\n", s.Name, s.Desc, opt, s.Paper)
		}
		return nil
	}

	var spec workloads.Spec
	if *synthIn != "" {
		f, err := os.Open(*synthIn)
		if err != nil {
			return err
		}
		cfg, err := synth.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		spec = cfg.Spec()
	} else {
		var err error
		spec, err = workloads.Get(*name)
		if err != nil {
			return err
		}
	}
	params := workloads.Params{Threads: *threads, Seed: *seed, Scale: *scale, TwoLock: *twoLock}

	var rt harness.Runtime
	var col *trace.Collector
	switch *backend {
	case "sim":
		s := sim.New(sim.Config{Contexts: *contexts, Seed: *seed})
		rt, col = s, s.Collector()
	case "live":
		l := livetrace.New(livetrace.Config{Seed: *seed})
		rt, col = l, l.Collector()
	default:
		return fmt.Errorf("unknown backend %q (want sim or live)", *backend)
	}

	if *spill > 0 && *segdir == "" {
		return fmt.Errorf("-spill requires -segdir")
	}
	var spiller *segment.Spiller
	if *spill > 0 {
		// Spilling keeps collection memory bounded: per-thread buffers
		// flush to sorted run files mid-run and the full event array is
		// never materialized, so the trace must be analyzed by
		// streaming and cannot also be written as one file.
		if *out != "" || *jsonOut != "" || *gantt || *svgOut != "" {
			return fmt.Errorf("-spill streams the trace; -o, -json, -gantt and -svg need it in memory")
		}
		var err error
		spiller, err = segment.NewSpiller(*segdir, segment.Options{})
		if err != nil {
			return err
		}
		col.SetSpill(spiller, *spill)
	}

	tr, elapsed, err := workloads.Run(rt, spec, params)
	if err != nil {
		return fmt.Errorf("running %s: %w", spec.Name, err)
	}

	if spiller != nil {
		rdr, err := spiller.Finish(col)
		if err != nil {
			return fmt.Errorf("finishing spill: %w", err)
		}
		fmt.Printf("wrote segmented trace to %s (%d events, %d segments)\n",
			*segdir, rdr.NumEvents(), rdr.NumSegments())
		an, err := critlock.Analyze(critlock.SegmentsSource(rdr),
			critlock.WithParallelSegments(*parSeg),
			critlock.WithAnnotationBudget(*annBud))
		if err != nil {
			return fmt.Errorf("analyzing: %w", err)
		}
		fmt.Printf("completed in %d ns (virtual for sim backend)\n", elapsed)
		report.Summary(os.Stdout, an)
		fmt.Println()
		if err := report.LockReport(an, *top).Render(os.Stdout); err != nil {
			return err
		}
		if *thr {
			fmt.Println()
			if err := report.ThreadReport(an).Render(os.Stdout); err != nil {
				return err
			}
		}
		return nil
	}

	if *segdir != "" {
		if err := segment.WriteTrace(*segdir, tr, segment.Options{}); err != nil {
			return fmt.Errorf("writing segments to %s: %w", *segdir, err)
		}
		fmt.Printf("wrote segmented trace to %s\n", *segdir)
	}

	if *out != "" {
		if err := writeTrace(*out, tr, trace.WriteBinary); err != nil {
			return err
		}
		fmt.Printf("wrote binary trace to %s\n", *out)
	}
	if *jsonOut != "" {
		if err := writeTrace(*jsonOut, tr, trace.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("wrote JSON trace to %s\n", *jsonOut)
	}

	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		return fmt.Errorf("analyzing: %w", err)
	}
	fmt.Printf("completed in %d ns (virtual for sim backend)\n", elapsed)
	report.Summary(os.Stdout, an)
	fmt.Println()
	if err := report.LockReport(an, *top).Render(os.Stdout); err != nil {
		return err
	}
	if *thr {
		fmt.Println()
		if err := report.ThreadReport(an).Render(os.Stdout); err != nil {
			return err
		}
	}
	if *gantt {
		fmt.Println()
		fmt.Print(report.Gantt(an, 100))
	}
	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(report.SVGGantt(an, 1200)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote SVG timeline to %s\n", *svgOut)
	}
	return nil
}

func writeTrace(path string, tr *trace.Trace, write func(w io.Writer, tr *trace.Trace) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, tr); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
