// Command clagen extracts a declarative workload model from a trace:
// the locks, their hold sizes and invocation rates, and the compute
// between them, emitted as synth-DSL JSON. The output re-creates the
// trace's contention profile in a sandbox where it can be edited and
// re-simulated (clasim -synth) — diagnose on the real system, iterate
// on the model.
//
//	clasim -w radiosity -threads 24 -o rad.cltr
//	clagen rad.cltr > rad-model.json
//	clasim -synth rad-model.json
//	clagen -segdir segs/ > model.json     # from a segmented trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"critlock"
	"critlock/internal/cliflags"
	"critlock/internal/core"
	"critlock/internal/synth"
	"critlock/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clagen:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("clagen", flag.ContinueOnError)
	jsonIn := fs.Bool("json", false, "input trace is JSON instead of binary")
	segdir := cliflags.SegDir(fs)
	parSeg := cliflags.Par(fs)
	mmap := cliflags.Mmap(fs)
	annBudget := cliflags.AnnBudget(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var an *core.Analysis
	if *segdir != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("-segdir replaces the trace file argument")
		}
		var err error
		an, err = critlock.Analyze(critlock.SegmentDirSource(*segdir),
			critlock.WithParallelSegments(*parSeg),
			critlock.WithMmap(*mmap),
			critlock.WithAnnotationBudget(*annBudget))
		if err != nil {
			return fmt.Errorf("analyzing %s: %w", *segdir, err)
		}
	} else {
		if fs.NArg() != 1 {
			fs.Usage()
			return fmt.Errorf("expected exactly one trace file argument (or -segdir DIR)")
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()

		var tr *trace.Trace
		if *jsonIn {
			tr, err = trace.ReadJSON(f)
		} else {
			tr, err = trace.ReadBinary(f)
		}
		if err != nil {
			return fmt.Errorf("reading %s: %w", fs.Arg(0), err)
		}
		an, err = core.AnalyzeDefault(tr)
		if err != nil {
			return fmt.Errorf("analyzing: %w", err)
		}
	}
	cfg, err := synth.FromAnalysis(an)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}
