package main

import (
	"os"
	"path/filepath"
	"testing"

	"critlock"
	"critlock/internal/synth"
)

func writeMicroTrace(t *testing.T) string {
	t.Helper()
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, "micro", critlock.WorkloadParams{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "micro.cltr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := critlock.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestGenerateModel(t *testing.T) {
	in := writeMicroTrace(t)
	outPath := filepath.Join(t.TempDir(), "model.json")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{in}, out); err != nil {
		t.Fatal(err)
	}
	out.Close()
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg, err := synth.Load(f)
	if err != nil {
		t.Fatalf("generated model does not load: %v", err)
	}
	if cfg.Threads != 4 || len(cfg.Locks) != 2 {
		t.Errorf("model = %+v", cfg)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"/missing.cltr"}, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
}
