package main

import (
	"os"
	"path/filepath"
	"testing"

	"critlock"
)

// writeTestTrace simulates a tiny run and stores it in both formats.
func writeTestTrace(t *testing.T) (binPath, jsonPath string) {
	t.Helper()
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 4, Seed: 5})
	mu := sim.NewMutex("hot")
	tr, _, err := sim.Run(func(p critlock.Proc) {
		k := p.Go("w", func(q critlock.Proc) {
			q.Lock(mu)
			q.Compute(500)
			q.Unlock(mu)
		})
		p.Compute(100)
		p.Lock(mu)
		p.Compute(200)
		p.Unlock(mu)
		p.Join(k)
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	binPath = filepath.Join(dir, "t.cltr")
	jsonPath = filepath.Join(dir, "t.json")
	fb, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := critlock.WriteTrace(fb, tr); err != nil {
		t.Fatal(err)
	}
	fb.Close()
	fj, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := critlock.WriteTraceJSON(fj, tr); err != nil {
		t.Fatal(err)
	}
	fj.Close()
	return binPath, jsonPath
}

func TestAnalyzeBinaryTrace(t *testing.T) {
	bin, _ := writeTestTrace(t)
	if err := run([]string{bin}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-top", "0", "-threadstats", "-gantt", bin}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-csv", bin}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-noclip", "-novalidate", bin}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeJSONTrace(t *testing.T) {
	_, js := writeTestTrace(t)
	if err := run([]string{"-json", js}); err != nil {
		t.Fatal(err)
	}
	// Binary parser must reject the JSON file.
	if err := run([]string{js}); err == nil {
		t.Error("JSON file accepted as binary")
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"/does/not/exist.cltr"}); err == nil {
		t.Error("missing file accepted")
	}
}
