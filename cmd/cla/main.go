// Command cla is the offline analysis module: it reads a trace file
// (binary .cltr or JSON) produced by clasim or by an instrumented
// program and prints the critical lock analysis report — the role of
// the paper's post-processing analysis module (Fig. 3).
//
//	cla trace.cltr
//	cla -json trace.json
//	cla -top 0 -threadstats -gantt trace.cltr
//	cla -csv trace.cltr            # lock table as CSV
//	cla -segdir segs/              # stream a segmented trace, bounded memory
//	cla -hazards trace.cltr        # predict feasible deadlocks and lost signals
//	cla -jsonreport analysis.json trace.cltr   # JSON analysis for clalint -report
//	cla -stream -segdir segs/ trace.cltr   # convert a trace into segments
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"critlock"
	"critlock/internal/cliflags"
	"critlock/internal/core"
	"critlock/internal/hazard"
	"critlock/internal/report"
	"critlock/internal/segment"
	"critlock/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cla:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cla", flag.ContinueOnError)
	var (
		jsonIn     = fs.Bool("json", false, "input is JSON instead of binary")
		streamIn   = fs.Bool("stream", false, "input is the incremental stream format (tolerates truncation)")
		top        = fs.Int("top", 10, "locks to list (0 = all)")
		thr        = fs.Bool("threadstats", false, "print per-thread statistics")
		gantt      = fs.Bool("gantt", false, "print the execution timeline")
		csvOut     = fs.Bool("csv", false, "emit the lock table as CSV instead of text")
		noClip     = fs.Bool("noclip", false, "credit full hold time to on-path invocations (ablation)")
		noCheck    = fs.Bool("novalidate", false, "skip trace validation")
		windows    = fs.Int("windows", 0, "split the run into N windows and show per-window criticality")
		lockOrder  = fs.Bool("lockorder", false, "print the lock acquisition-order graph and deadlock cycles")
		hazards    = fs.Bool("hazards", false, "predict dynamic hazards: feasible deadlocks (cross-thread lock-order cycles), lost signals, guard inconsistencies")
		compose    = fs.Bool("composition", false, "print the critical path composition breakdown")
		svgOut     = fs.String("svg", "", "write an SVG timeline to this file")
		slack      = fs.Bool("slack", false, "print per-lock slack (distance from the critical path)")
		phases     = fs.Int("phases", 0, "segment the run by dominant lock at this window resolution")
		predict    = fs.Bool("predict", false, "run the online criticality predictor and compare with the walk")
		markdown   = fs.Bool("markdown", false, "emit the lock table as GitHub markdown instead of text")
		reportOut  = fs.String("report", "", "write a complete markdown report to this file")
		jsonReport = fs.String("jsonreport", "", "write the analysis as JSON (the clasrv format; clalint -report input) to this file")
		narrate    = fs.Int("narrate", -1, "narrate the critical path's thread hops (0 = all, N = cap)")
		segdir     = cliflags.SegDir(fs)
		window     = cliflags.Window(fs)
		parSeg     = cliflags.Par(fs)
		mmap       = cliflags.Mmap(fs)
		annBudget  = cliflags.AnnBudget(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *trace.Trace
	var an *core.Analysis

	if *segdir != "" && fs.NArg() == 0 {
		// Streaming mode: analyze the segment directory without ever
		// materializing the event array. Sections that replay the raw
		// event stream are unavailable by construction.
		for flagName, set := range map[string]bool{
			"-gantt": *gantt, "-svg": *svgOut != "", "-predict": *predict,
			"-lockorder": *lockOrder, "-slack": *slack, "-report": *reportOut != "",
		} {
			if set {
				return fmt.Errorf("%s %w; rerun on a trace file without -segdir", flagName, critlock.ErrNeedsRawEvents)
			}
		}
		var err error
		an, err = critlock.Analyze(critlock.SegmentDirSource(*segdir),
			critlock.WithClipHold(!*noClip),
			critlock.WithWindow(*window),
			critlock.WithComposition(*compose),
			critlock.WithParallelSegments(*parSeg),
			critlock.WithMmap(*mmap),
			critlock.WithAnnotationBudget(*annBudget))
		if err != nil {
			return fmt.Errorf("analyzing %s: %w", *segdir, err)
		}
		tr = an.Trace // registration skeleton: names and metadata only
	} else {
		if fs.NArg() != 1 {
			fs.Usage()
			return fmt.Errorf("expected exactly one trace file argument (or -segdir DIR alone)")
		}
		path := fs.Arg(0)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()

		switch {
		case *streamIn:
			tr, err = trace.ReadStream(f)
			if err != nil && errors.Is(err, trace.ErrTruncatedStream) && len(tr.Events) > 0 {
				fmt.Fprintf(os.Stderr, "cla: warning: %v — analyzing the durable prefix (%d events)\n", err, len(tr.Events))
				err = nil
			}
		case *jsonIn:
			tr, err = trace.ReadJSON(f)
		default:
			tr, err = trace.ReadBinary(f)
		}
		if err != nil {
			return fmt.Errorf("reading %s: %w", path, err)
		}

		if *segdir != "" {
			// Conversion mode: a trace file plus -segdir rewrites the
			// trace as a segmented directory for later streaming runs.
			if err := segment.WriteTrace(*segdir, tr, segment.Options{}); err != nil {
				return fmt.Errorf("writing segments to %s: %w", *segdir, err)
			}
			fmt.Printf("wrote segmented trace to %s (%d events)\n", *segdir, len(tr.Events))
		}

		an, err = critlock.Analyze(critlock.TraceSource(tr),
			critlock.WithClipHold(!*noClip),
			critlock.WithValidation(!*noCheck))
		if err != nil {
			return fmt.Errorf("analyzing: %w", err)
		}
	}

	// The hazard pass is event-replay-capable in both modes: over the
	// in-memory trace directly, or segment-range parallel over the
	// directory (so -hazards composes with -segdir, unlike -lockorder).
	var hazRep *hazard.Report
	if *hazards {
		if *segdir != "" && fs.NArg() == 0 {
			rdr, err := segment.OpenWith(*segdir, segment.ReadOptions{NoMmap: !*mmap})
			if err != nil {
				return err
			}
			hazRep, err = hazard.FromSegments(rdr, *parSeg)
			rdr.Close()
			if err != nil {
				return fmt.Errorf("hazard analysis of %s: %w", *segdir, err)
			}
		} else {
			var err error
			hazRep, err = hazard.FromTrace(tr)
			if err != nil {
				return fmt.Errorf("hazard analysis: %w", err)
			}
		}
	}

	if *csvOut {
		return report.LockReport(an, *top).CSV(os.Stdout)
	}
	if *markdown {
		return report.LockReport(an, *top).Markdown(os.Stdout)
	}
	report.Summary(os.Stdout, an)
	fmt.Println()
	if err := report.LockReport(an, *top).Render(os.Stdout); err != nil {
		return err
	}
	if an.Totals.Channels > 0 {
		fmt.Println()
		if err := report.ChanReport(an, *top).Render(os.Stdout); err != nil {
			return err
		}
	}
	if *thr {
		fmt.Println()
		if err := report.ThreadReport(an).Render(os.Stdout); err != nil {
			return err
		}
	}
	if *gantt {
		fmt.Println()
		fmt.Print(report.Gantt(an, 100))
	}
	if *compose {
		fmt.Println()
		if err := report.CompositionReport(an).Render(os.Stdout); err != nil {
			return err
		}
	}
	if *windows > 0 {
		fmt.Println()
		if err := report.WindowReport(an, *windows).Render(os.Stdout); err != nil {
			return err
		}
	}
	if *narrate >= 0 {
		fmt.Println()
		fmt.Print(report.Narrate(an, *narrate))
	}
	if *predict {
		fmt.Println()
		p := core.NewPredictor()
		p.ObserveAll(tr)
		pt := report.NewTable("Online prediction vs critical-path walk", "Rank", "Predictor", "Walk (ground truth)")
		ranking := p.Ranking()
		for i := 0; i < 3 && i < len(ranking) && i < len(an.Locks); i++ {
			pt.AddRow(fmt.Sprint(i+1), tr.ObjName(ranking[i].Lock), an.Locks[i].Name)
		}
		if err := pt.Render(os.Stdout); err != nil {
			return err
		}
	}
	if *phases > 0 {
		fmt.Println()
		if err := report.PhaseReport(an, *phases).Render(os.Stdout); err != nil {
			return err
		}
	}
	if *slack {
		fmt.Println()
		if err := report.SlackReport(an.Slack(), *top).Render(os.Stdout); err != nil {
			return err
		}
	}
	if hazRep != nil {
		fmt.Println()
		hazard.WriteText(os.Stdout, hazRep)
	}
	if *jsonReport != "" {
		source := "trace"
		if fs.NArg() == 1 {
			source = fs.Arg(0)
		} else if *segdir != "" {
			source = *segdir
		}
		rf, err := os.Create(*jsonReport)
		if err != nil {
			return err
		}
		rep := report.BuildExport("cla", source, *segdir != "" && fs.NArg() == 0, an)
		rep.Hazards = hazRep
		if err := report.WriteExport(rf, rep); err != nil {
			rf.Close()
			return err
		}
		if err := rf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote JSON analysis report to %s\n", *jsonReport)
	}
	if *reportOut != "" {
		doc := report.Full(an, report.FullOptions{
			TopLocks:  *top,
			Windows:   *windows,
			Threads:   *thr,
			LockOrder: *lockOrder,
			Slack:     *slack,
		})
		if err := os.WriteFile(*reportOut, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote markdown report to %s\n", *reportOut)
	}
	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(report.SVGGantt(an, 1200)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote SVG timeline to %s\n", *svgOut)
	}
	if *lockOrder {
		fmt.Println()
		lo := core.LockOrderOf(tr)
		if err := report.LockOrderReport(lo).Render(os.Stdout); err != nil {
			return err
		}
		if lo.HasCycle() {
			fmt.Println("WARNING: lock-order inversion cycles (potential deadlocks):")
			for _, cyc := range lo.CycleNames() {
				fmt.Printf("  %v\n", cyc)
			}
		} else {
			fmt.Println("no lock-order inversion cycles found")
		}
	}
	return nil
}
