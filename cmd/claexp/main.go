// Command claexp reproduces the paper's tables and figures.
//
//	claexp -list           # what can be reproduced
//	claexp -run fig9       # one experiment
//	claexp -all            # everything, in paper order
//	claexp -all -quick     # reduced sweeps (CI-sized)
package main

import (
	"flag"
	"fmt"
	"os"

	"critlock/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "claexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("claexp", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiments and exit")
		runID    = fs.String("run", "", "run one experiment by id")
		all      = fs.Bool("all", false, "run every experiment in paper order")
		seed     = fs.Int64("seed", 1, "random seed")
		contexts = fs.Int("contexts", 24, "simulated hardware contexts")
		quick    = fs.Bool("quick", false, "reduced sweeps")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Seed: *seed, Contexts: *contexts, Quick: *quick}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n%-18s   reproduces: %s\n", e.ID, e.Title, "", e.Paper)
		}
		return nil
	case *runID != "":
		e, err := experiments.Get(*runID)
		if err != nil {
			return err
		}
		return render(e, opts)
	case *all:
		for _, e := range experiments.All() {
			if err := render(e, opts); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("choose -list, -run <id> or -all")
	}
}

func render(e experiments.Experiment, opts experiments.Options) error {
	fmt.Printf("==========================================================================\n")
	fmt.Printf("%s — %s\n", e.ID, e.Title)
	fmt.Printf("reproduces: %s\n\n", e.Paper)
	res, err := e.Run(opts)
	if err != nil {
		return err
	}
	for _, t := range res.Tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	for _, n := range res.Notes {
		fmt.Println(n)
	}
	fmt.Println()
	return nil
}
