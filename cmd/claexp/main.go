// Command claexp reproduces the paper's tables and figures.
//
//	claexp -list           # what can be reproduced
//	claexp -run fig9       # one experiment
//	claexp -all            # everything, in paper order
//	claexp -all -quick     # reduced sweeps (CI-sized)
//	claexp -all -j 8       # run experiments on 8 workers
//
// With -j N the independent experiments (and the sweeps inside them)
// run on a worker pool; output stays byte-identical to a serial run
// because results are rendered in paper order, not completion order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"critlock/internal/cliflags"
	"critlock/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "claexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("claexp", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiments and exit")
		runID    = fs.String("run", "", "run one experiment by id")
		all      = fs.Bool("all", false, "run every experiment in paper order")
		seed     = fs.Int64("seed", 1, "random seed")
		contexts = fs.Int("contexts", 24, "simulated hardware contexts")
		quick    = fs.Bool("quick", false, "reduced sweeps")
		jobs     = cliflags.Jobs(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 1 {
		return fmt.Errorf("-j must be at least 1")
	}
	opts := experiments.Options{Seed: *seed, Contexts: *contexts, Quick: *quick, Parallelism: *jobs}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-18s %s\n%-18s   reproduces: %s\n", e.ID, e.Title, "", e.Paper)
		}
		return nil
	case *runID != "":
		e, err := experiments.ByID(*runID)
		if err != nil {
			return err
		}
		res, err := e.Run(opts)
		if err != nil {
			return err
		}
		return render(out, e, res)
	case *all:
		outcomes := experiments.RunAll(opts, *jobs)
		for _, oc := range outcomes {
			if oc.Err != nil {
				return fmt.Errorf("%s: %w", oc.Experiment.ID, oc.Err)
			}
			if err := render(out, oc.Experiment, oc.Result); err != nil {
				return err
			}
		}
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("choose -list, -run <id> or -all")
	}
}

func render(w io.Writer, e experiments.Experiment, res *experiments.Result) error {
	fmt.Fprintf(w, "==========================================================================\n")
	fmt.Fprintf(w, "%s — %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "reproduces: %s\n\n", e.Paper)
	for _, t := range res.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, n := range res.Notes {
		fmt.Fprintln(w, n)
	}
	fmt.Fprintln(w)
	return nil
}
