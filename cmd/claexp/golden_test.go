package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite CLAEXP_OUTPUT.txt with the current claexp -all output")

// TestGoldenAll pins the entire experiment suite's rendered output to
// the checked-in CLAEXP_OUTPUT.txt. Everything claexp prints flows
// from the analyzer's numbers, so any drift — a changed metric, a
// reordered table, a perturbed critical path — fails here first.
//
// After an intentional change: go test ./cmd/claexp -run TestGoldenAll -update
func TestGoldenAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	golden := filepath.Join("..", "..", "CLAEXP_OUTPUT.txt")

	var buf bytes.Buffer
	if err := run([]string{"-all"}, &buf); err != nil {
		t.Fatalf("claexp -all: %v", err)
	}

	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, buf.Len())
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	// Point at the first divergent line rather than dumping both.
	gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w []byte
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("output diverges from %s at line %d:\n got: %s\nwant: %s\n(re-run with -update if the change is intentional)",
				golden, i+1, g, w)
		}
	}
	t.Fatal(fmt.Sprintf("output differs from %s (lengths: got %d, want %d)", golden, buf.Len(), len(want)))
}
