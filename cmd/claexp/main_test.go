package main

import "testing"

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOne(t *testing.T) {
	if err := run([]string{"-run", "fig1", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNoModeIsError(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no mode accepted")
	}
}
