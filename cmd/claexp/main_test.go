package main

import (
	"io"
	"testing"
)

func TestList(t *testing.T) {
	if err := run([]string{"-list"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunOne(t *testing.T) {
	if err := run([]string{"-run", "fig1", "-quick"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "table2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-run", "fig99"}, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNoModeIsError(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("no mode accepted")
	}
}
