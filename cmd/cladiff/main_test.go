package main

import (
	"os"
	"path/filepath"
	"testing"

	"critlock"
)

// writePair simulates the radiosity original/optimized pair and stores
// both traces.
func writePair(t *testing.T) (before, after string) {
	t.Helper()
	dir := t.TempDir()
	for _, v := range []struct {
		name    string
		twoLock bool
	}{{"before.cltr", false}, {"after.cltr", true}} {
		sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 24, Seed: 1})
		tr, _, err := critlock.RunWorkload(sim, "radiosity", critlock.WorkloadParams{
			Threads: 16, Seed: 1, TwoLock: v.twoLock,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dir, v.name))
		if err != nil {
			t.Fatal(err)
		}
		if err := critlock.WriteTrace(f, tr); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return filepath.Join(dir, "before.cltr"), filepath.Join(dir, "after.cltr")
}

func TestDiffPair(t *testing.T) {
	before, after := writePair(t)
	if err := run([]string{before, after}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-top", "0", before, after}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffErrors(t *testing.T) {
	before, _ := writePair(t)
	if err := run([]string{before}); err == nil {
		t.Error("single argument accepted")
	}
	if err := run([]string{before, "/missing.cltr"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-json", before, before}); err == nil {
		t.Error("binary file accepted as JSON")
	}
}
