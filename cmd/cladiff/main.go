// Command cladiff compares two traces of the same program — typically
// an original and an optimized run — and reports how the critical
// path moved: the speedup, each lock's change in CP share, and where
// the path went after the optimization. This is the paper's
// validation methodology (§V.D.3) as a tool.
//
//	clasim -w radiosity -threads 24 -o before.cltr
//	clasim -w radiosity -threads 24 -twolock -o after.cltr
//	cladiff before.cltr after.cltr
package main

import (
	"flag"
	"fmt"
	"os"

	"critlock/internal/core"
	"critlock/internal/report"
	"critlock/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cladiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cladiff", flag.ContinueOnError)
	var (
		jsonIn = fs.Bool("json", false, "inputs are JSON instead of binary")
		top    = fs.Int("top", 12, "lock movements to list (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("expected exactly two trace files (before, after)")
	}

	load := func(path string) (*core.Analysis, trace.Time, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		var tr *trace.Trace
		if *jsonIn {
			tr, err = trace.ReadJSON(f)
		} else {
			tr, err = trace.ReadBinary(f)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("reading %s: %w", path, err)
		}
		an, err := core.AnalyzeDefault(tr)
		if err != nil {
			return nil, 0, fmt.Errorf("analyzing %s: %w", path, err)
		}
		return an, tr.Duration(), nil
	}

	before, beforeTime, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	after, afterTime, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	cmp := core.Compare(before, after, beforeTime, afterTime)
	fmt.Printf("before: %s (%d ns)\n", fs.Arg(0), cmp.BeforeTime)
	fmt.Printf("after:  %s (%d ns)\n", fs.Arg(1), cmp.AfterTime)
	fmt.Printf("speedup: %.3fx (%.1f%% improvement)\n\n", cmp.Speedup, cmp.ImprovementPct)

	t := report.NewTable("Critical-path movement by lock",
		"Lock", "CP Time %% before", "CP Time %% after", "Δ", "Cont. on CP before", "after", "Note")
	locks := cmp.Locks
	if *top > 0 && *top < len(locks) {
		locks = locks[:*top]
	}
	for _, d := range locks {
		note := ""
		switch {
		case !d.InBefore:
			note = "new lock"
		case !d.InAfter:
			note = "removed"
		case d.CPTimeDelta < -1:
			note = "relieved"
		case d.CPTimeDelta > 1:
			note = "absorbed path time"
		}
		t.AddRow(d.Name,
			report.Pct(d.CPTimeBefore), report.Pct(d.CPTimeAfter),
			fmt.Sprintf("%+.2f", d.CPTimeDelta),
			report.Pct(d.ContOnCPBefore), report.Pct(d.ContOnCPAfter),
			note)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	mover := cmp.TopMover()
	fmt.Printf("\nbiggest movement: %s (%+.2f points of the critical path)\n", mover.Name, mover.CPTimeDelta)
	return nil
}
