package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeModel(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.json")
	err := os.WriteFile(path, []byte(`{
	  "name": "m",
	  "threads": 4,
	  "locks": ["L1", "L2"],
	  "phases": [{"steps": [
	    {"lock": "L1", "hold": 20000},
	    {"lock": "L2", "hold": 25000}
	  ]}]
	}`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWhatIfThreads(t *testing.T) {
	if err := run([]string{"-threads", "1,2,4", writeModel(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestWhatIfShrink(t *testing.T) {
	if err := run([]string{"-shrink", "L2", "-factors", "1.0,0.5,0.25", writeModel(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestWhatIfErrors(t *testing.T) {
	m := writeModel(t)
	if err := run(nil); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-threads", "zero", m}); err == nil {
		t.Error("bad threads accepted")
	}
	if err := run([]string{"-factors", "-1", "-shrink", "L1", m}); err == nil {
		t.Error("bad factor accepted")
	}
	if err := run([]string{"-shrink", "missing", m}); err == nil {
		t.Error("unknown lock accepted")
	}
	if err := run([]string{"/nope.json"}); err == nil {
		t.Error("missing model accepted")
	}
}
