// Command clawhatif runs what-if studies on a declarative workload
// model: thread sweeps (does the bottleneck shift as in the paper's
// Fig. 9?) and lock-shrinking experiments (how much does optimizing
// this lock actually buy, as in Fig. 6 / Fig. 12?).
//
//	clagen rad.cltr > model.json
//	clawhatif -threads 4,8,16,24 model.json
//	clawhatif -shrink "tq[0].qlock" -factors 1.0,0.75,0.5,0.25 model.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"critlock/internal/cliflags"
	"critlock/internal/report"
	"critlock/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clawhatif:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clawhatif", flag.ContinueOnError)
	var (
		threadsFlag = fs.String("threads", "", "comma-separated worker counts to sweep")
		shrink      = fs.String("shrink", "", "lock whose holds are scaled by each factor")
		factorsFlag = fs.String("factors", "", "comma-separated hold factors (default 1.0,0.5 with -shrink)")
		contexts    = fs.Int("contexts", 24, "simulated hardware contexts")
		seed        = fs.Int64("seed", 1, "random seed")
		jobs        = cliflags.Jobs(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 1 {
		return fmt.Errorf("-j must be at least 1")
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one model JSON file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg, err := synth.Load(f)
	f.Close()
	if err != nil {
		return err
	}

	spec := synth.SweepSpec{ShrinkLock: *shrink, Contexts: *contexts, Seed: *seed, Parallelism: *jobs}
	if *threadsFlag != "" {
		for _, part := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return fmt.Errorf("bad thread count %q", part)
			}
			spec.Threads = append(spec.Threads, n)
		}
	}
	if *factorsFlag != "" {
		for _, part := range strings.Split(*factorsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("bad factor %q", part)
			}
			spec.Factors = append(spec.Factors, v)
		}
	}

	rows, err := synth.Sweep(cfg, spec)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("what-if study of %q", cfg.Name),
		"Threads", "Hold factor", "Completion ns", "Speedup", "Top lock", "Top CP %")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprint(r.Threads), fmt.Sprintf("%.2f", r.Factor),
			fmt.Sprint(r.Completion), fmt.Sprintf("%.2f", r.Speedup),
			r.TopLock, report.Pct(r.TopCPPct))
	}
	return t.Render(os.Stdout)
}
