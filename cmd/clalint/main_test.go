package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"critlock"
	"critlock/internal/lint"
	"critlock/internal/report"
)

const buggySrc = `package demo

type Mutex interface{ Name() string }
type Proc interface {
	Lock(m Mutex)
	Unlock(m Mutex)
}
type Runtime interface {
	NewMutex(name string) Mutex
}

type pair struct{ a, b Mutex }

func build(rt Runtime) *pair {
	return &pair{a: rt.NewMutex("A"), b: rt.NewMutex("B")}
}

func (s *pair) ab(p Proc) {
	p.Lock(s.a)
	p.Lock(s.b)
	p.Unlock(s.b)
	p.Unlock(s.a)
}

func (s *pair) ba(p Proc) {
	p.Lock(s.b)
	p.Lock(s.a)
	p.Unlock(s.a)
	p.Unlock(s.b)
}
`

func writeDemo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(buggySrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunExitCodes(t *testing.T) {
	dir := writeDemo(t)
	var out bytes.Buffer

	code, err := run([]string{dir}, &out)
	if err != nil || code != 1 {
		t.Fatalf("buggy dir: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "[lockorder]") {
		t.Errorf("output missing lockorder finding:\n%s", out.String())
	}

	clean := t.TempDir()
	if err := os.WriteFile(filepath.Join(clean, "ok.go"), []byte("package ok\nfunc F() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run([]string{clean}, &out)
	if err != nil || code != 0 {
		t.Fatalf("clean dir: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "no findings") {
		t.Errorf("clean output: %s", out.String())
	}

	if code, _ := run([]string{"-nosuchflag"}, &out); code != 2 {
		t.Errorf("bad flag: code=%d, want 2", code)
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeDemo(t)
	var out bytes.Buffer
	code, err := run([]string{"-json", dir}, &out)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	var res lint.Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(res.Findings) == 0 || len(res.Cycles) != 1 {
		t.Errorf("findings=%d cycles=%d", len(res.Findings), len(res.Cycles))
	}
}

// TestRunWithReport drives the CLI's -report path end to end: a sim
// run produces the analysis JSON, and the findings come back
// annotated with CP Time %.
func TestRunWithReport(t *testing.T) {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 4, Seed: 3})
	a := sim.NewMutex("A")
	b := sim.NewMutex("B")
	tr, _, err := sim.Run(func(p critlock.Proc) {
		var kids []critlock.Thread
		for i := 0; i < 3; i++ {
			kids = append(kids, p.Go("w", func(q critlock.Proc) {
				for j := 0; j < 3; j++ {
					q.Lock(a)
					q.Compute(200)
					q.Unlock(a)
					q.Lock(b)
					q.Compute(50)
					q.Unlock(b)
				}
			}))
		}
		for _, k := range kids {
			p.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "analysis.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.WriteExport(f, report.BuildExport("t", "sim", false, an)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dir := writeDemo(t)
	var out bytes.Buffer
	code, err := run([]string{"-report", path, dir}, &out)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "{CP ") {
		t.Errorf("findings not annotated with CP Time %%:\n%s", out.String())
	}
}

// TestRunWithDynamic drives the CLI's -dynamic path: a planted
// deadlockprone trace merges a dyndeadlock finding into the static
// list, and -report/-dynamic together are a usage error.
func TestRunWithDynamic(t *testing.T) {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, "deadlockprone", critlock.WorkloadParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.cltr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := critlock.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dir := writeDemo(t)
	var out bytes.Buffer
	code, err := run([]string{"-dynamic", path, dir}, &out)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "[dyndeadlock]") ||
		!strings.Contains(out.String(), "feasible deadlock") {
		t.Errorf("output missing the dynamic deadlock finding:\n%s", out.String())
	}

	if code, err := run([]string{"-report", path, "-dynamic", path, dir}, &out); code != 2 || err == nil {
		t.Errorf("-report with -dynamic: code=%d err=%v, want usage error", code, err)
	}
}
