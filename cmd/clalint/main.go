// Command clalint is the static lock-hazard analyzer: the
// before-any-run counterpart to cla's dynamic critical lock analysis.
// It parses Go source (harness Proc API and plain sync.Mutex/RWMutex
// alike) and reports deadlock-prone lock-order inversions,
// missing-unlock paths, double locks, RLock/RUnlock pairing
// violations, blocking operations inside critical sections, Waits
// outside re-checking loops, and copied mutex values — plus a static
// weight estimate per lock acquisition site.
//
//	clalint ./...                      # lint a tree
//	clalint -json ./internal/...       # machine-readable findings
//	clalint -weights ./pkg             # include the site/weight table
//	clalint -report analysis.json ./...  # rank findings by dynamic CP Time %
//	clalint -dynamic trace.cltr ./...  # + predicted hazards from a trace
//	clalint -dynamic segs/ ./...       # same, streaming a segment directory
//
// The -report input is the analysis JSON written by `cla -jsonreport`
// or served by clasrv /v1/analyze: findings whose lock resolves to a
// dynamic lock name are annotated with the lock's CP Time % and
// contention probability on the critical path and sort hottest-first,
// and every hot critical lock with a static hazard gets a summary
// warning.
//
// -dynamic accepts a trace file (binary or JSON), a segment directory,
// or an analysis JSON that already carries a hazards section, runs the
// dynamic hazard prediction (feasible deadlock cycles with cross-thread
// critical sections, lost signals, guard inconsistencies), and merges
// those findings into the static list: a dynamic deadlock names the
// static lockorder cycle it corroborates, and the whole view re-ranks
// by measured CP Time %. Exit status: 0 clean, 1 findings, 2
// usage/internal error.
//
// Findings are suppressed with a justified comment on the same or the
// preceding line:
//
//	//lint:ignore <check> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"critlock/internal/cliflags"
	"critlock/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clalint:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("clalint", flag.ContinueOnError)
	var (
		jsonOut    = fs.Bool("json", false, "emit findings as JSON")
		reportPath = fs.String("report", "", "dynamic analysis JSON (cla -jsonreport / clasrv) to cross-reference")
		dynPath    = fs.String("dynamic", "", "trace file, segment directory, or analysis JSON: predict dynamic hazards and merge them into the findings")
		weights    = fs.Bool("weights", false, "print the per-site static critical-section weight table")
		tests      = cliflags.Tests(fs)
		nocalls    = fs.Bool("nocalls", false, "disable cross-function lock-order propagation")
		nostd      = fs.Bool("nostdtypes", false, "skip stdlib type resolution (faster, less precise)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Run(lint.Options{
		Patterns:     patterns,
		IncludeTests: *tests,
		StdlibTypes:  !*nostd,
		NoCallGraph:  *nocalls,
	})
	if err != nil {
		return 2, err
	}
	switch {
	case *reportPath != "" && *dynPath != "":
		return 2, fmt.Errorf("-report and -dynamic are exclusive (-dynamic subsumes -report)")
	case *dynPath != "":
		rep, err := lint.LoadDynamic(*dynPath)
		if err != nil {
			return 2, err
		}
		lint.CrossReferenceHazards(res, rep)
	case *reportPath != "":
		rep, err := lint.LoadReport(*reportPath)
		if err != nil {
			return 2, err
		}
		lint.CrossReference(res, rep)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return 2, err
		}
	} else {
		var sb strings.Builder
		lint.WriteHuman(&sb, res, *weights)
		fmt.Fprint(out, sb.String())
	}
	if len(res.Findings) > 0 {
		return 1, nil
	}
	return 0, nil
}
