// Package critlock is critical lock analysis for multithreaded
// programs: it reconstructs an execution's critical path from a
// synchronization-event trace and quantifies each lock's true impact
// on completion time, reproducing "Critical Lock Analysis: Diagnosing
// Critical Section Bottlenecks in Multithreaded Applications"
// (Chen & Stenström, SC 2012).
//
// The package is a facade over the implementation packages:
//
//   - tracing: a Collector gathers lock/barrier/condvar/thread events;
//     two runtimes produce them — NewSimulator (deterministic virtual
//     time) and NewLiveRuntime (real goroutines, wall clock);
//   - analysis: Analyze(src, opts...) walks the critical path
//     backwards and returns per-lock TYPE 1 (CP Time %, invocations
//     and contention probability on the critical path) and TYPE 2
//     (wait time, hold time, average contention) statistics; the
//     source picks the pipeline — TraceSource runs in memory,
//     SegmentsSource and SegmentDirSource stream in bounded memory;
//   - serving: NewServer wraps the analysis in an HTTP ingest/report
//     service with self-instrumentation (see cmd/clasrv);
//   - workloads: RunWorkload executes the modelled applications from
//     the paper's case study (micro, radiosity, waternsq, volrend,
//     raytrace, tsp, uts, ldap);
//   - reporting: LockTable, ThreadTable, Timeline and Summary render
//     results in the paper's table layouts.
//
// Quick start:
//
//	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8})
//	mu := sim.NewMutex("shared")
//	tr, _, err := sim.Run(func(p critlock.Proc) {
//		w := p.Go("worker", func(q critlock.Proc) {
//			q.Lock(mu); q.Compute(1000); q.Unlock(mu)
//		})
//		p.Lock(mu); p.Compute(5000); p.Unlock(mu)
//		p.Join(w)
//	})
//	an, err := critlock.Analyze(critlock.TraceSource(tr))
//	fmt.Println(critlock.LockTable(an, 0))
package critlock

import (
	"io"

	"critlock/internal/core"
	"critlock/internal/harness"
	"critlock/internal/livetrace"
	"critlock/internal/report"
	"critlock/internal/sim"
	"critlock/internal/synth"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// Core data types (aliases into the implementation packages, so
// values flow freely between the facade and the subsystems).
type (
	// Trace is a recorded execution.
	Trace = trace.Trace
	// Event is one synchronization event.
	Event = trace.Event
	// Time is a timestamp/duration in nanoseconds.
	Time = trace.Time
	// ThreadID identifies a thread within a trace.
	ThreadID = trace.ThreadID

	// Analysis is the result of critical lock analysis.
	Analysis = core.Analysis
	// LockStats carries the TYPE 1 + TYPE 2 metrics of one lock.
	LockStats = core.LockStats
	// ChanStats carries the per-channel handoff and wait metrics.
	ChanStats = core.ChanStats
	// ThreadStats summarizes one thread.
	ThreadStats = core.ThreadStats
	// CriticalPath describes the walked path.
	CriticalPath = core.CriticalPath
	// AnalyzeOptions tunes Analyze.
	AnalyzeOptions = core.Options

	// Runtime creates sync objects and runs a root thread.
	Runtime = harness.Runtime
	// Proc is the per-thread execution context.
	Proc = harness.Proc
	// Mutex, Barrier, Cond, Chan and Thread are backend object handles.
	Mutex   = harness.Mutex
	Barrier = harness.Barrier
	Cond    = harness.Cond
	Chan    = harness.Chan
	Thread  = harness.Thread
	// SelectCase is one arm of Proc.Select.
	SelectCase = harness.SelectCase

	// SimConfig parameterizes the deterministic simulator.
	SimConfig = sim.Config
	// LiveConfig parameterizes the real-goroutine runtime.
	LiveConfig = livetrace.Config

	// WorkloadParams parameterizes the modelled applications.
	WorkloadParams = workloads.Params
	// Table is a renderable text/CSV table.
	Table = report.Table
)

// NewSimulator returns the deterministic discrete-event runtime: the
// same program, config and seed always produce the same trace.
func NewSimulator(cfg SimConfig) *sim.Sim { return sim.New(cfg) }

// NewLiveRuntime returns the real-execution runtime: goroutines,
// sync.Mutex-based primitives and monotonic timestamps.
func NewLiveRuntime(cfg LiveConfig) *livetrace.Runtime { return livetrace.New(cfg) }

// Workloads lists the modelled applications available to RunWorkload.
func Workloads() []string { return workloads.Names() }

// RunWorkload executes one of the paper's modelled applications on rt
// and returns its trace and (virtual or wall) completion time.
func RunWorkload(rt Runtime, name string, p WorkloadParams) (*Trace, Time, error) {
	spec, err := workloads.Get(name)
	if err != nil {
		return nil, 0, err
	}
	return workloads.Run(rt, spec, p)
}

// SynthConfig is a declarative JSON workload description (see
// internal/synth for the schema).
type SynthConfig = synth.Config

// LoadSynth parses and validates a declarative workload description.
func LoadSynth(r io.Reader) (*SynthConfig, error) { return synth.Load(r) }

// RunSynth executes a declarative workload on rt.
func RunSynth(rt Runtime, cfg *SynthConfig, p WorkloadParams) (*Trace, Time, error) {
	return workloads.Run(rt, cfg.Spec(), p)
}

// WriteTrace encodes a trace in the compact binary format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.WriteBinary(w, tr) }

// ReadTrace decodes a binary trace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.ReadBinary(r) }

// WriteTraceJSON encodes a trace as JSON (for interoperability).
func WriteTraceJSON(w io.Writer, tr *Trace) error { return trace.WriteJSON(w, tr) }

// ReadTraceJSON decodes a JSON trace.
func ReadTraceJSON(r io.Reader) (*Trace, error) { return trace.ReadJSON(r) }

// ValidateTrace checks a trace's structural well-formedness.
func ValidateTrace(tr *Trace) error { return trace.Validate(tr) }

// LockTable renders the per-lock TYPE 1 / TYPE 2 statistics in the
// paper's layout; topN ≤ 0 lists every lock.
func LockTable(an *Analysis, topN int) *Table { return report.LockReport(an, topN) }

// ChanTable renders per-channel handoff statistics, hottest channel
// (critical-path wait, then total blocked time) first.
func ChanTable(an *Analysis, topN int) *Table { return report.ChanReport(an, topN) }

// ThreadTable renders per-thread statistics.
func ThreadTable(an *Analysis) *Table { return report.ThreadReport(an) }

// Timeline renders an ASCII Gantt chart of the execution with the
// critical path marked (the paper's Fig. 1 view).
func Timeline(an *Analysis, width int) string { return report.Gantt(an, width) }

// WindowTable renders lock criticality over n time windows — which
// lock dominates the critical path in each phase of the run.
func WindowTable(an *Analysis, n int) *Table { return report.WindowReport(an, n) }

// CompositionTable renders the critical path's breakdown into
// critical-section time, plain compute and unattributed waits.
func CompositionTable(an *Analysis) *Table { return report.CompositionReport(an) }

// LockOrder is the lock acquisition-order graph of a trace with
// potential deadlock cycles.
type LockOrder = core.LockOrder

// LockOrderOf builds the acquisition-order graph (A→B when a thread
// acquired B while holding A) and detects inversion cycles.
func LockOrderOf(tr *Trace) *LockOrder { return core.LockOrderOf(tr) }

// LockOrderTable renders the graph's edges.
func LockOrderTable(lo *LockOrder) *Table { return report.LockOrderReport(lo) }

// Predictor estimates lock criticality online (forward event stream,
// O(1) per event) — see core.Predictor for the heuristic.
type Predictor = core.Predictor

// PredictedLock is one lock's online criticality score.
type PredictedLock = core.PredictedLock

// NewPredictor returns an empty online criticality predictor.
func NewPredictor() *Predictor { return core.NewPredictor() }

// SlackAnalysis ranks locks by distance from the critical path; see
// Analysis.Slack.
type SlackAnalysis = core.SlackAnalysis

// LockSlack is one lock's slack entry.
type LockSlack = core.LockSlack

// PhaseSpan is one stretch of the run dominated by a single lock.
type PhaseSpan = core.PhaseSpan

// PhaseTable renders the run segmented by dominant critical lock.
func PhaseTable(an *Analysis, resolution int) *Table { return report.PhaseReport(an, resolution) }

// ExtractModel builds a declarative synth model from an analyzed
// trace (locks, hold sizes, invocation rates, compute between).
func ExtractModel(an *Analysis) (*SynthConfig, error) { return synth.FromAnalysis(an) }

// SlackTable renders per-lock slack (0 = on the critical path; small
// positive = the next bottleneck once the current one is optimized).
func SlackTable(sa *SlackAnalysis, topN int) *Table { return report.SlackReport(sa, topN) }

// Summary writes the whole-run header (critical path length,
// coverage, totals).
func Summary(w io.Writer, an *Analysis) { report.Summary(w, an) }

// ReportOptions selects sections of FullReport.
type ReportOptions = report.FullOptions

// FullReport renders a complete markdown report of an analysis — a
// self-contained artifact for CI runs or issue threads.
func FullReport(an *Analysis, opts ReportOptions) string { return report.Full(an, opts) }

// Narrate renders the critical path's cross-thread dependency chain as
// readable text (maxHops 0 = all).
func Narrate(an *Analysis, maxHops int) string { return report.Narrate(an, maxHops) }
