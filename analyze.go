package critlock

import (
	"critlock/internal/core"
	"critlock/internal/obs"
	"critlock/internal/segment"
	"critlock/internal/trace"
)

// Unified analysis entry point: one Analyze for every way a trace can
// arrive. The source decides the pipeline — in-memory traces run the
// indexed analysis, segmented traces run the three-pass bounded-memory
// analysis — and the options apply uniformly, so the CLIs, the serving
// layer and library callers share a single code path.
//
//	an, err := critlock.Analyze(critlock.TraceSource(tr))
//	an, err := critlock.Analyze(critlock.SegmentDirSource("segs/"),
//	        critlock.WithWindow(8), critlock.WithProgress(show))

// AnalysisSource is where Analyze reads a recorded execution from.
// Built-in constructors: TraceSource (in-memory events),
// SegmentsSource (an open segmented trace or a spiller's result) and
// SegmentDirSource (a segment directory opened at Analyze time).
type AnalysisSource = core.Source

// SegmentReader is random access to a segmented trace: the
// registration skeleton plus whole-segment loads. segment.Reader and
// spilled live recordings implement it.
type SegmentReader = core.SegmentSource

// Progress is a cumulative snapshot of a running analysis (current
// phase, events processed, segments loaded, bytes spilled).
type Progress = obs.Progress

// Observer receives analysis self-instrumentation callbacks: phase
// boundaries with durations plus Progress snapshots.
type Observer = obs.Observer

// Typed error kinds, classified with errors.Is.
var (
	// ErrTruncated marks trace or segment input cut short of what its
	// format promises.
	ErrTruncated = trace.ErrTruncated
	// ErrChecksum marks segment data whose CRC does not match —
	// corruption rather than truncation.
	ErrChecksum = trace.ErrChecksum
	// ErrNeedsRawEvents marks an event-replay operation (timelines,
	// lock-order graphs, the online predictor) applied to a streamed
	// analysis, which retains only the registration skeleton.
	ErrNeedsRawEvents = core.ErrNeedsRawEvents
)

// TraceSource analyzes an in-memory trace with the indexed pipeline.
func TraceSource(tr *Trace) AnalysisSource { return core.TraceSource(tr) }

// SegmentsSource analyzes an already-open segmented trace with the
// bounded-memory streaming pipeline.
func SegmentsSource(src SegmentReader) AnalysisSource { return core.StreamSource(src) }

// SegmentDirSource analyzes the segmented trace directory at dir,
// opened when Analyze runs: the manifest is parsed and validated once,
// every pass shares the reader's footer index and memory-mapped (or
// buffered, under WithMmap(false)) segment images, and the reader is
// closed when the analysis returns.
func SegmentDirSource(dir string) AnalysisSource { return segmentDirSource{dir} }

type segmentDirSource struct{ dir string }

func (s segmentDirSource) Run(a *core.Analyzer, cfg core.Config) (*core.Analysis, error) {
	r, err := segment.OpenWith(s.dir, segment.ReadOptions{NoMmap: cfg.NoMmap})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return core.StreamSource(r).Run(a, cfg)
}

// Option tunes one Analyze call.
type Option func(*core.Config)

// WithOptions replaces the analysis options wholesale (clipping,
// validation, workers). Observers already attached via WithObserver or
// WithProgress are preserved; apply WithOptions first when combining.
func WithOptions(opts AnalyzeOptions) Option {
	return func(c *core.Config) {
		attached := c.Options.Observer
		c.Options = opts
		c.Options.Observer = obs.Combine(attached, opts.Observer)
	}
}

// WithClipHold selects hold-time accounting: true (the default)
// credits on-path invocations only with hold time lying on the walked
// critical path; false credits full hold times (the coarser accounting
// kept as an ablation knob).
func WithClipHold(on bool) Option {
	return func(c *core.Config) { c.ClipHold = on }
}

// WithValidation toggles structural trace validation before in-memory
// analysis (the default is on; the streaming pipeline enforces its
// invariants in-pass instead).
func WithValidation(on bool) Option {
	return func(c *core.Config) { c.Validate = on }
}

// WithWindow sets the streaming backward walk's window: how many
// decoded segments stay resident at once (0 = default). In-memory
// analyses ignore it.
func WithWindow(segments int) Option {
	return func(c *core.Config) { c.CacheSegments = segments }
}

// WithWorkers caps the parallel metric pass's worker count (0 =
// GOMAXPROCS). Results are identical at any setting; serving layers
// use it to budget CPU across concurrent analyses.
func WithWorkers(n int) Option {
	return func(c *core.Config) { c.Workers = n }
}

// WithTmpDir hosts the streaming waker-annotation spill file
// ("" = os.TempDir). In-memory analyses ignore it.
func WithTmpDir(dir string) Option {
	return func(c *core.Config) { c.TmpDir = dir }
}

// WithComposition retains per-thread hold intervals during streaming
// analysis so Analysis.Composition works (in-memory analyses always
// retain them).
func WithComposition(on bool) Option {
	return func(c *core.Config) { c.Composition = on }
}

// WithParallelSegments runs streaming passes 1 and 3 over disjoint
// segment ranges on up to n goroutines, merged deterministically (0 or
// 1 = sequential). Results are bit-identical at any setting; the
// source must support concurrent segment loads (segment directories
// do). In-memory analyses ignore it.
func WithParallelSegments(n int) Option {
	return func(c *core.Config) { c.ParallelSegments = n }
}

// WithMmap selects how SegmentDirSource reads segment files: true (the
// default) memory-maps them so pass decoding runs over the page cache
// with zero copies; false forces buffered reads (for filesystems where
// mapping misbehaves). Sources that are already open ignore it.
func WithMmap(on bool) Option {
	return func(c *core.Config) { c.NoMmap = !on }
}

// WithAnnotationBudget caps the memory the streaming analysis spends
// keeping waker annotations resident (9 bytes per event); runs over
// budget spill them to a temp file as before. 0 = the default budget,
// negative = always spill. In-memory analyses ignore it.
func WithAnnotationBudget(bytes int64) Option {
	return func(c *core.Config) { c.AnnotationBudget = bytes }
}

// WithObserver attaches an instrumentation observer; multiple
// observers compose. Observation never changes analysis results.
func WithObserver(o Observer) Option {
	return func(c *core.Config) { c.Options.Observer = obs.Combine(c.Options.Observer, o) }
}

// WithProgress attaches a progress callback: fn fires with a
// cumulative snapshot at every phase boundary and segment load.
func WithProgress(fn func(Progress)) Option {
	return WithObserver(obs.Funcs{Progress: fn})
}

// Analyze runs critical lock analysis on src with default options
// (clipped hold accounting, validation on for in-memory traces),
// adjusted by opts. It is the package's one entry point: the former
// AnalyzeWithOptions(tr, opts) is Analyze(TraceSource(tr),
// WithOptions(opts)), and the former AnalyzeStream(src, ...) is
// Analyze(SegmentsSource(src), ...).
func Analyze(src AnalysisSource, opts ...Option) (*Analysis, error) {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return core.AnalyzeSource(src, cfg)
}
