// This program is the end-to-end target for cmd/clainstr: an
// ordinary Go program — plain sync primitives and channels, no
// critlock imports — with a deliberately hot lock. The instrumenter
// rewrites a copy of this directory onto the clrt runtime; running
// the copy records a trace in which statsMu dominates the critical
// path (docs/GUIDE.md walks through the whole flow, and the
// instr-smoke CI target asserts the planted bottleneck is found).
//
// The shape is the paper's motivating pattern: a worker pool where
// each item's real work happens outside any lock, but every worker
// funnels through one global stats mutex whose critical section does
// non-trivial work (a table scan), serializing the pool.
package main

import (
	"fmt"
	"os"
	"sync"
)

const (
	workers = 4
	items   = 400
)

// statsMu is the planted bottleneck: every processed item updates the
// shared histogram under it, and the update walks the whole table.
var statsMu sync.Mutex

// configMu guards rare reads of shared configuration; it is here as a
// foil — lightly contended, it should rank far below statsMu.
var configMu sync.RWMutex

var (
	histogram [4096]int
	checksum  int
	processed int
	scale     = 3
)

// process does the per-item work that needs no lock at all.
func process(item int) int {
	h := item
	for i := 0; i < 500; i++ {
		h = h*1103515245 + 12345
	}
	return h
}

// recordStats is the hot critical section: a full histogram walk under
// the global mutex.
func recordStats(h int) {
	statsMu.Lock()
	defer statsMu.Unlock()
	idx := h & (len(histogram) - 1)
	histogram[idx]++
	// The needless part: recompute the running checksum over the whole
	// table on every update, all of it under the global lock.
	sum := 0
	for round := 0; round < 8; round++ {
		for i := range histogram {
			sum = sum*31 + histogram[i]
		}
	}
	checksum = sum
	processed++
}

// readScale takes the read side of the config lock.
func readScale() int {
	configMu.RLock()
	defer configMu.RUnlock()
	return scale
}

func worker(id int, work chan int, done *sync.WaitGroup) {
	defer done.Done()
	k := readScale()
	for item := range work {
		h := process(item * k)
		recordStats(h)
	}
}

func main() {
	work := make(chan int, workers)
	var done sync.WaitGroup
	for w := 0; w < workers; w++ {
		done.Add(1)
		go worker(w, work, &done)
	}
	for i := 0; i < items; i++ {
		work <- i
	}
	close(work)
	done.Wait()

	statsMu.Lock()
	n := processed
	statsMu.Unlock()
	if n != items {
		fmt.Fprintf(os.Stderr, "processed %d of %d items\n", n, items)
		os.Exit(1)
	}
	fmt.Printf("processed %d items across %d workers\n", n, workers)
}
