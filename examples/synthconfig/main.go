// Synthconfig models an application's lock structure declaratively —
// no Go code — and analyzes it. The JSON sidecar (pipeline.json)
// describes an ingest pipeline: a cheap intake lock, a probabilistic
// dedupe lock, then a barrier followed by a serialized commit phase.
//
//	go run ./examples/synthconfig
//
// Edit pipeline.json (hold times, probabilities, thread count) and
// re-run to explore how the critical lock changes — the same
// what-if loop the paper performs by editing application source.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"critlock"
)

func main() {
	_, self, _, _ := runtime.Caller(0)
	f, err := os.Open(filepath.Join(filepath.Dir(self), "pipeline.json"))
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := critlock.LoadSynth(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, elapsed, err := critlock.RunSynth(sim, cfg, critlock.WorkloadParams{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q completed in %d virtual ns\n\n", cfg.Name, elapsed)
	fmt.Println(critlock.LockTable(an, 0))
	fmt.Println(critlock.CompositionTable(an))
}
