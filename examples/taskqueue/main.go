// Taskqueue walks through the paper's Radiosity case study (§V.D)
// end to end:
//
//  1. run the task-queue workload at 24 threads and identify the
//     critical lock (tq[0].qlock),
//
//  2. inspect its contention probability and critical-section size —
//     the two metrics that explain WHY it dominates,
//
//  3. apply the paper's fix (split the queue lock into head/tail
//     locks, the Michael–Scott two-lock queue) and re-simulate,
//
//  4. report the measured end-to-end improvement.
//
//     go run ./examples/taskqueue
package main

import (
	"fmt"
	"log"

	"critlock"
)

func runOnce(twoLock bool) (*critlock.Analysis, critlock.Time) {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 24, Seed: 1})
	tr, elapsed, err := critlock.RunWorkload(sim, "radiosity", critlock.WorkloadParams{
		Threads: 24,
		Seed:    1,
		TwoLock: twoLock,
	})
	if err != nil {
		log.Fatal(err)
	}
	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		log.Fatal(err)
	}
	return an, elapsed
}

func main() {
	fmt.Println("== step 1: identify the critical lock (original version) ==")
	anOrig, tOrig := runOnce(false)
	fmt.Println(critlock.LockTable(anOrig, 3))

	top := anOrig.Locks[0]
	fmt.Printf("== step 2: why %q dominates ==\n", top.Name)
	fmt.Printf("  %.1f%% of the critical path, %d invocations on it (%.1fx the per-thread average)\n",
		top.CPTimePct, top.InvocationsOnCP, top.InvIncrease)
	fmt.Printf("  contention probability along the path: %.1f%% — nearly every grant unblocked someone\n",
		top.ContProbOnCP)
	fmt.Printf("  note the TYPE 2 view: wait time just %.1f%% — idleness-based tools would underrate it\n\n",
		top.WaitTimePct)

	fmt.Println("== step 3: apply the two-lock queue (enqueue and dequeue no longer collide) ==")
	anOpt, tOpt := runOnce(true)
	fmt.Println(critlock.LockTable(anOpt, 3))

	fmt.Println("== step 4: validation ==")
	impr := 100 * float64(tOrig-tOpt) / float64(tOrig)
	fmt.Printf("  original:  %d ns\n  optimized: %d ns\n  end-to-end improvement: %.1f%%\n",
		tOrig, tOpt, impr)
	fmt.Printf("  (far below the lock's %.1f%% CP share — once it shrinks, other segments move onto the path;\n"+
		"   exactly the paper's observation with its 7%% gain against a 39%% CP share)\n",
		top.CPTimePct)
}
