// Serving mode: run the analysis server in-process, upload a
// simulated trace over HTTP, and read back the JSON report, the live
// progress table and the Prometheus metrics.
//
//	go run ./examples/serve
//
// The same flow works against a standalone server (cmd/clasrv) with
// curl — see README.md's "Serving mode" section.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"critlock"
)

func main() {
	// A server on a loopback port, exactly as cmd/clasrv wires it.
	srv := critlock.NewServer(critlock.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// A workload trace to upload: the paper's micro benchmark.
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, "micro", critlock.WorkloadParams{Threads: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := critlock.WriteTrace(&buf, tr); err != nil {
		log.Fatal(err)
	}

	// Upload → analyze → report.
	resp, err := http.Post(base+"/v1/analyze", "application/octet-stream", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var rep critlock.ServerReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report %s (%s): critical path %d ns over %d threads\n",
		rep.ID, rep.Source, rep.Summary.CPLength, rep.Totals.Threads)
	for i, l := range rep.Locks {
		if i == 3 {
			break
		}
		fmt.Printf("  lock %-8s CP time %5.1f%%  wait %5.1f%%\n", l.Name, l.CPTimePct, l.WaitTimePct)
	}

	// The same report is cached: fetch it back by ID.
	resp2, err := http.Get(base + "/v1/reports/" + rep.ID)
	if err != nil {
		log.Fatal(err)
	}
	resp2.Body.Close()
	fmt.Printf("GET /v1/reports/%s -> %s\n", rep.ID, resp2.Status)

	// Self-instrumentation: per-phase histograms and throughput.
	resp3, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "critlock_analysis_events_total") ||
			strings.HasPrefix(line, "critlock_server_requests_total") ||
			strings.Contains(line, "phase=\"walk\"") && strings.Contains(line, "_count") {
			fmt.Println("metrics:", line)
		}
	}
}
