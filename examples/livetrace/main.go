// Livetrace instruments a real goroutine program — no simulator. The
// live runtime wraps sync primitives with the paper's MAGIC-point
// instrumentation (try-lock contention detection, monotonic
// timestamps) and the same analyzer runs on the resulting trace.
//
//	go run ./examples/livetrace
//
// The program is a two-stage pipeline: producers append to a shared
// buffer guarded by "buffer.lock" and signal "buffer.nonempty"; one
// aggregator drains it under the same lock and folds results into
// "stats.lock". Timings here are real wall-clock nanoseconds, so exact
// numbers vary run to run — the structure (which locks are critical)
// is what the analysis exposes.
package main

import (
	"fmt"
	"log"
	"os"

	"critlock"
)

func main() {
	rt := critlock.NewLiveRuntime(critlock.LiveConfig{Seed: 7})
	bufLock := rt.NewMutex("buffer.lock")
	nonempty := rt.NewCond("buffer.nonempty")
	statsLock := rt.NewMutex("stats.lock")

	var buffer []int
	produced, consumed := 0, 0
	const items = 400
	const producers = 3

	tr, elapsed, err := rt.Run(func(p critlock.Proc) {
		agg := p.Go("aggregator", func(q critlock.Proc) {
			for {
				q.Lock(bufLock)
				for len(buffer) == 0 && consumed+len(buffer) < items*producers && produced < items*producers {
					q.Wait(nonempty, bufLock)
				}
				if len(buffer) == 0 {
					q.Unlock(bufLock)
					return
				}
				v := buffer[0]
				buffer = buffer[1:]
				consumed++
				q.Unlock(bufLock)

				q.Compute(8_000) // fold the value (8µs)
				q.Lock(statsLock)
				_ = v
				q.Compute(500)
				q.Unlock(statsLock)
			}
		})

		var prods []critlock.Thread
		for i := 0; i < producers; i++ {
			prods = append(prods, p.Go("producer", func(q critlock.Proc) {
				for j := 0; j < items; j++ {
					q.Compute(3_000) // build an item (3µs)
					q.Lock(bufLock)
					buffer = append(buffer, j)
					produced++
					q.Signal(nonempty)
					q.Unlock(bufLock)
				}
			}))
		}
		for _, pr := range prods {
			p.Join(pr)
		}
		// Wake the aggregator in case it is waiting on an empty buffer.
		p.Lock(bufLock)
		p.Broadcast(nonempty)
		p.Unlock(bufLock)
		p.Join(agg)
	})
	if err != nil {
		log.Fatal(err)
	}

	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wall time: %.2f ms, %d events traced\n\n",
		float64(elapsed)/1e6, an.Totals.Events)
	critlock.Summary(os.Stdout, an)
	fmt.Println()
	fmt.Println(critlock.LockTable(an, 0))
	fmt.Printf("consumed %d of %d items\n", consumed, items*producers)
}
