// Onlinepredict demonstrates the runtime-guidance building block from
// the paper's future work (§VII): estimating which lock is critical
// *while the program runs*, from a forward event stream, with O(1)
// work per event — no backward critical-path walk required.
//
//	go run ./examples/onlinepredict
//
// It replays a radiosity run event by event, printing the predictor's
// top lock at 10% checkpoints, then compares the final prediction with
// the ground truth from the full offline analysis and shows the
// per-phase criticality (time windows) the offline analysis computes.
package main

import (
	"fmt"
	"log"

	"critlock"
)

func main() {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 24, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, "radiosity", critlock.WorkloadParams{Threads: 24, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("replaying the event stream through the online predictor:")
	p := critlock.NewPredictor()
	checkpoint := len(tr.Events) / 10
	for i, e := range tr.Events {
		p.Observe(e)
		if checkpoint > 0 && (i+1)%checkpoint == 0 {
			fmt.Printf("  %3d%% of events: top lock so far = %s\n",
				(i+1)*100/len(tr.Events), tr.ObjName(p.Top()))
		}
	}

	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		log.Fatal(err)
	}
	truth := an.Locks[0]
	pred := tr.ObjName(p.Top())
	fmt.Printf("\nground truth (offline critical-path walk): %s (%.1f%% of the CP)\n",
		truth.Name, truth.CPTimePct)
	fmt.Printf("online prediction:                         %s — %v\n",
		pred, map[bool]string{true: "match", false: "MISMATCH"}[pred == truth.Name])

	fmt.Println("\ncriticality per phase (offline, 6 windows):")
	fmt.Println(critlock.WindowTable(an, 6))
}
