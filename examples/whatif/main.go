// Whatif demonstrates validation by re-simulation: because the
// simulator is deterministic, "what would happen if this critical
// section were X% smaller?" is answerable exactly — the experiment the
// paper runs by manually editing source code (Fig. 6, Fig. 12).
//
//	go run ./examples/whatif
//
// The scenario is the paper's micro-benchmark: two consecutive locks
// with 2.0ms and 2.5ms critical sections over four threads. For each
// lock we simulate shrinking its critical section in steps and plot
// the resulting speedup, showing that optimizing the critical lock
// (L2) pays off immediately while optimizing the idle-heavy lock (L1)
// barely moves completion time at first.
package main

import (
	"fmt"
	"log"
	"strings"

	"critlock"
)

// runMicro simulates the micro-benchmark with explicit CS durations
// by building it from raw primitives (the public runtime API).
func runMicro(cs1, cs2 critlock.Time) critlock.Time {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	l1 := sim.NewMutex("L1")
	l2 := sim.NewMutex("L2")
	_, elapsed, err := sim.Run(func(p critlock.Proc) {
		var kids []critlock.Thread
		for i := 0; i < 4; i++ {
			kids = append(kids, p.Go("t", func(q critlock.Proc) {
				q.Lock(l1)
				q.Compute(cs1)
				q.Unlock(l1)
				q.Lock(l2)
				q.Compute(cs2)
				q.Unlock(l2)
			}))
		}
		for _, k := range kids {
			p.Join(k)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return elapsed
}

func main() {
	const cs1, cs2 = 2_000_000, 2_500_000
	base := runMicro(cs1, cs2)
	fmt.Printf("baseline completion: %.2f ms\n\n", float64(base)/1e6)

	fmt.Println("shrink  | speedup if applied to L1 | speedup if applied to L2")
	fmt.Println(strings.Repeat("-", 62))
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		d1 := critlock.Time(float64(cs1) * frac)
		d2 := critlock.Time(float64(cs2) * frac)
		s1 := float64(base) / float64(runMicro(cs1-d1, cs2))
		s2 := float64(base) / float64(runMicro(cs1, cs2-d2))
		fmt.Printf("  %3.0f%%  |          %4.2fx          |          %4.2fx\n", 100*frac, s1, s2)
	}

	fmt.Println()
	fmt.Println("L2 — the lock critical lock analysis points at — converts optimization")
	fmt.Println("effort into speedup immediately; L1's longer waits were overlapped by the")
	fmt.Println("critical path, so shaving it yields little until it becomes critical itself.")
}
