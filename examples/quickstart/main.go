// Quickstart: simulate a small multithreaded program, run critical
// lock analysis, and print the paper-style report plus a timeline.
//
//	go run ./examples/quickstart
//
// The program has two locks. "logger" is hammered by four parser
// workers — it shows the longest waits, so idleness-based profiling
// flags it. But the workers finish early; the run's completion time is
// set by a single indexer thread whose "index" critical sections are
// never contended at all. Critical lock analysis ranks them correctly:
// "index" owns the critical path, the logger convoy is overlapped.
package main

import (
	"fmt"
	"log"
	"os"

	"critlock"
)

func main() {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	logger := sim.NewMutex("logger")
	index := sim.NewMutex("index")

	tr, elapsed, err := sim.Run(func(p critlock.Proc) {
		// The indexer: a long serial merge, alone on its lock.
		indexer := p.Go("indexer", func(q critlock.Proc) {
			for i := 0; i < 20; i++ {
				q.Compute(1_000) // read a batch
				q.Lock(index)
				q.Compute(4_000) // merge it — uncontended but on the path
				q.Unlock(index)
			}
		})
		// Four parsers racing on the logger: long waits, all overlapped.
		var workers []critlock.Thread
		for i := 0; i < 4; i++ {
			workers = append(workers, p.Go("parser", func(q critlock.Proc) {
				for j := 0; j < 5; j++ {
					q.Compute(2_000) // parse a record
					q.Lock(logger)
					q.Compute(2_000) // append to the shared log
					q.Unlock(logger)
				}
			}))
		}
		for _, w := range workers {
			p.Join(w)
		}
		p.Join(indexer)
	})
	if err != nil {
		log.Fatal(err)
	}

	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("completed in %d virtual ns\n\n", elapsed)
	critlock.Summary(os.Stdout, an)
	fmt.Println()
	fmt.Println(critlock.LockTable(an, 0))
	fmt.Println(critlock.Timeline(an, 100))

	top := an.Locks[0]
	byWait := top
	for _, l := range an.Locks {
		if l.WaitTimePct > byWait.WaitTimePct {
			byWait = l
		}
	}
	fmt.Printf("=> critical lock analysis:   optimize %q (%.1f%% of the critical path)\n",
		top.Name, top.CPTimePct)
	fmt.Printf("=> idleness-based profiling: would pick %q (%.1f%% wait time) — whose waits are overlapped\n",
		byWait.Name, byWait.WaitTimePct)
}
