#!/usr/bin/env bash
# Runs BenchmarkAnalyzeStream2M (stream + inmemory) and emits the
# BENCH_PR8.json record on stdout, so the recorded numbers are parsed
# from the benchmark run rather than hand-typed.
#
#   BENCHTIME=6x COUNT=4 ./scripts/bench_stream_json.sh > BENCH_PR8.json
#
# Set BENCH_RAW to a previously captured `go test -bench` output file
# to parse it instead of re-running (useful for recording a best-of
# set collected separately). With COUNT > 1 (or a multi-run raw file)
# the best run per sub-benchmark is recorded, which is the right
# statistic on shared machines where the noise is one-sided.
set -euo pipefail
cd "$(dirname "$0")/.."

raw="${BENCH_RAW:-}"
if [ -z "$raw" ]; then
	raw="$(mktemp)"
	trap 'rm -f "$raw"' EXIT
	go test -run '^$' -bench BenchmarkAnalyzeStream2M -benchmem \
		-benchtime "${BENCHTIME:-6x}" -count "${COUNT:-4}" . >"$raw"
fi

cpu="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
[ -n "$cpu" ] || cpu="unknown"

awk -v date="$(date +%F)" -v cpu="$cpu" \
	-v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" \
	-v cores="$(nproc 2>/dev/null || echo 1)" '
/^BenchmarkAnalyzeStream2M\// {
	name = $1
	sub(/^BenchmarkAnalyzeStream2M\//, "", name)
	sub(/-[0-9]+$/, "", name)
	ns = 0; mbs = 0; peak = 0; bop = 0; aop = 0
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op") ns = $(i - 1)
		if ($(i) == "MB/s") mbs = $(i - 1)
		if ($(i) == "peak-B") peak = $(i - 1)
		if ($(i) == "B/op") bop = $(i - 1)
		if ($(i) == "allocs/op") aop = $(i - 1)
	}
	runs[name]++
	if (!(name in best_ns) || ns < best_ns[name]) {
		best_ns[name] = ns
		best_mbs[name] = mbs
		best_peak[name] = peak
		best_bop[name] = bop
		best_aop[name] = aop
	}
}
function emit(name,  comma) {
	printf "    \"%s\": { \"ns_per_op\": %d, \"mb_per_s\": %.2f, \"peak_live_bytes\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d, \"runs\": %d },\n", \
		name, best_ns[name], best_mbs[name], best_peak[name], best_bop[name], best_aop[name], runs[name]
}
END {
	if (!("stream" in best_ns)) {
		print "bench_stream_json: no BenchmarkAnalyzeStream2M/stream result in input" > "/dev/stderr"
		exit 1
	}
	pr2 = 3.69 # BENCH_PR2.json stream mb_per_s, recorded on this class of machine
	printf "{\n"
	printf "  \"description\": \"Benchmark record for PR 8 (columnar streaming data plane: mmap + batch varint decode into SoA columns, parallel pass 1/3 with deterministic merge, budgeted in-memory annotation shards). Same workload and peak-B methodology as BENCH_PR2.json. Per sub-benchmark the best of the recorded runs is kept: the benchmark machine is a shared 1-core vCPU whose noise is strictly additive, so the minimum is the closest observable to the hardware cost.\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"machine\": { \"cpu\": \"%s\", \"cores\": %d, \"goos\": \"%s\", \"goarch\": \"%s\" },\n", cpu, cores, goos, goarch
	printf "  \"command\": \"make bench-stream\",\n"
	printf "  \"trace\": { \"events\": 2000000, \"segments\": 31, \"segment_events\": 65536, \"walk_window_segments\": 4 },\n"
	printf "  \"BenchmarkAnalyzeStream2M\": {\n"
	emit("stream")
	if ("inmemory" in best_ns) emit("inmemory")
	printf "    \"baseline_pr2_stream_mb_per_s\": %.2f,\n", pr2
	printf "    \"speedup_vs_pr2_recorded\": \"%.2fx\"\n", best_mbs["stream"] / pr2
	printf "  }\n"
	printf "}\n"
}' "$raw"
