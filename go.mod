module critlock

go 1.22
