package critlock

import "critlock/internal/serve"

// Server is the analysis-as-a-service HTTP handler behind cmd/clasrv:
// POST /v1/analyze ingests a trace (body upload in any trace format,
// or a server-local segment directory via ?segdir=), runs the unified
// Analyze pipeline under a concurrency budget and returns a JSON
// report; GET /metrics, /healthz and /debug/progress expose the
// server's own behavior. Wrap it in an http.Server to listen.
type Server = serve.Server

// ServerOptions configures NewServer; the zero value serves with
// sensible defaults (see the field docs).
type ServerOptions = serve.Options

// ServerReport is the JSON analysis report the server returns: run
// summary, totals, per-lock and per-thread statistics and the
// critical-path timeline.
type ServerReport = serve.Report

// NewServer returns the analysis HTTP service. Every analysis runs
// through the same unified Analyze entry point as the CLIs, observed
// by the server's metric registry (per-phase histograms, throughput
// counters, live progress).
func NewServer(opts ServerOptions) *Server { return serve.New(opts) }
