package critlock_test

import (
	"bytes"
	"strings"
	"testing"

	"critlock"
)

// TestPublicAPIEndToEnd exercises the whole facade: simulate a small
// program, round-trip the trace through the binary codec, analyze it
// and render every report.
func TestPublicAPIEndToEnd(t *testing.T) {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 4, Seed: 42})
	mu := sim.NewMutex("shared")
	bar := sim.NewBarrier("phase", 3)
	tr, elapsed, err := sim.Run(func(p critlock.Proc) {
		var kids []critlock.Thread
		for i := 0; i < 2; i++ {
			kids = append(kids, p.Go("worker", func(q critlock.Proc) {
				for j := 0; j < 5; j++ {
					q.Compute(200)
					q.Lock(mu)
					q.Compute(100)
					q.Unlock(mu)
				}
				q.BarrierWait(bar)
			}))
		}
		p.BarrierWait(bar)
		for _, k := range kids {
			p.Join(k)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if err := critlock.ValidateTrace(tr); err != nil {
		t.Fatalf("ValidateTrace: %v", err)
	}

	var buf bytes.Buffer
	if err := critlock.WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	tr2, err := critlock.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}

	an, err := critlock.Analyze(critlock.TraceSource(tr2))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if an.CP.Length != elapsed {
		t.Errorf("CP length %d != elapsed %d", an.CP.Length, elapsed)
	}
	if l := an.Lock("shared"); l == nil || !l.Critical {
		t.Errorf("shared lock not critical: %+v", l)
	}

	lockTable := critlock.LockTable(an, 0).String()
	if !strings.Contains(lockTable, "shared") || !strings.Contains(lockTable, "CP Time %") {
		t.Errorf("lock table missing content:\n%s", lockTable)
	}
	threadTable := critlock.ThreadTable(an).String()
	if !strings.Contains(threadTable, "worker") {
		t.Errorf("thread table missing workers:\n%s", threadTable)
	}
	timeline := critlock.Timeline(an, 80)
	if !strings.Contains(timeline, "critical path") {
		t.Errorf("timeline missing legend:\n%s", timeline)
	}
	var sum bytes.Buffer
	critlock.Summary(&sum, an)
	if !strings.Contains(sum.String(), "critical path") {
		t.Errorf("summary missing: %s", sum.String())
	}
}

func TestPublicAPIJSONRoundTrip(t *testing.T) {
	sim := critlock.NewSimulator(critlock.SimConfig{})
	tr, _, err := sim.Run(func(p critlock.Proc) { p.Compute(10) })
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := critlock.WriteTraceJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := critlock.ReadTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPublicWorkloads(t *testing.T) {
	names := critlock.Workloads()
	if len(names) != 12 {
		t.Fatalf("Workloads() = %v, want 12 entries", names)
	}
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, elapsed, err := critlock.RunWorkload(sim, "micro", critlock.WorkloadParams{Threads: 4})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if elapsed != 12_000_000 {
		t.Errorf("micro elapsed = %d, want 12ms", elapsed)
	}
	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if an.Locks[0].Name != "L2" {
		t.Errorf("top micro lock = %s, want L2", an.Locks[0].Name)
	}

	if _, _, err := critlock.RunWorkload(sim, "bogus", critlock.WorkloadParams{}); err == nil {
		t.Error("RunWorkload(bogus) succeeded")
	}
}

func TestPublicLiveRuntime(t *testing.T) {
	rt := critlock.NewLiveRuntime(critlock.LiveConfig{Seed: 9})
	mu := rt.NewMutex("m")
	tr, _, err := rt.Run(func(p critlock.Proc) {
		k := p.Go("w", func(q critlock.Proc) {
			q.Lock(mu)
			q.Compute(50_000)
			q.Unlock(mu)
		})
		p.Lock(mu)
		p.Compute(50_000)
		p.Unlock(mu)
		p.Join(k)
	})
	if err != nil {
		t.Fatal(err)
	}
	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if got := an.Lock("m").TotalInvocations; got != 2 {
		t.Errorf("invocations = %d, want 2", got)
	}
}

func TestAnalyzeWithClipHoldOff(t *testing.T) {
	sim := critlock.NewSimulator(critlock.SimConfig{})
	mu := sim.NewMutex("m")
	tr, _, err := sim.Run(func(p critlock.Proc) {
		p.Lock(mu)
		p.Compute(100)
		p.Unlock(mu)
	})
	if err != nil {
		t.Fatal(err)
	}
	an, err := critlock.Analyze(critlock.TraceSource(tr), critlock.WithClipHold(false))
	if err != nil {
		t.Fatal(err)
	}
	if an.Lock("m").HoldOnCP != 100 {
		t.Errorf("hold on CP = %d, want 100", an.Lock("m").HoldOnCP)
	}
}

// TestPublicAnalysisExtras covers the extended facade: composition,
// windows, phases, slack, lock order, model extraction and the full
// markdown report.
func TestPublicAnalysisExtras(t *testing.T) {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 4})
	tr, _, err := critlock.RunWorkload(sim, "radiosity", critlock.WorkloadParams{Threads: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}

	if s := critlock.CompositionTable(an).String(); !strings.Contains(s, "inside critical sections") {
		t.Errorf("composition table:\n%s", s)
	}
	if s := critlock.WindowTable(an, 4).String(); !strings.Contains(s, "Top lock") {
		t.Errorf("window table:\n%s", s)
	}
	if s := critlock.PhaseTable(an, 8).String(); !strings.Contains(s, "Dominant lock") {
		t.Errorf("phase table:\n%s", s)
	}
	sa := an.Slack()
	if s := critlock.SlackTable(sa, 5).String(); !strings.Contains(s, "Min slack") {
		t.Errorf("slack table:\n%s", s)
	}
	lo := critlock.LockOrderOf(tr)
	_ = critlock.LockOrderTable(lo) // radiosity never nests locks: table may be empty
	if lo.HasCycle() {
		t.Error("radiosity reported a deadlock cycle")
	}

	cfg, err := critlock.ExtractModel(an)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name == "" || len(cfg.Locks) == 0 {
		t.Errorf("extracted model: %+v", cfg)
	}

	doc := critlock.FullReport(an, critlock.ReportOptions{TopLocks: 5, Windows: 4, Slack: true})
	if !strings.Contains(doc, "# Critical lock analysis: radiosity") {
		t.Errorf("report header missing:\n%.200s", doc)
	}
}
