# Developer entry points. `make ci` is what a gate should run: vet,
# build, race-enabled tests, and one pass of the headline benchmark as
# a smoke test (benchtime=1x — for real numbers use `make bench`).

GO ?= go

.PHONY: all build vet test race bench bench-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the headline benchmark — catches crashes and gross
# regressions without tying up CI.
bench-smoke:
	$(GO) test -run=xxx -bench=BenchmarkAnalyzeLargeTrace -benchtime=1x -benchmem .

# Stable numbers for the benchmarks quoted in README/BENCH_PR1.json.
bench:
	$(GO) test -run=xxx -bench='BenchmarkAnalyzeLargeTrace|BenchmarkAnalyzeReuse|BenchmarkMergeVsSort|BenchmarkRunAllParallel' -benchtime=30x -benchmem .

ci: vet build race bench-smoke
