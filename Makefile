# Developer entry points. `make ci` is what a gate should run: static
# lock-hazard lint (go vet + a clalint self-run over the repo itself),
# gofmt cleanliness, build, race-enabled tests, a fuzz smoke pass over
# every fuzz target, the streaming-vs-in-memory differential, the
# serving-path golden smoke, and one pass of the headline benchmark
# (benchtime=1x — for real numbers use `make bench`).

GO ?= go

# Seconds per fuzz target in fuzz-smoke. 30s each keeps a CI run under
# three minutes while still exercising the mutation engine beyond the
# seed corpus.
FUZZTIME ?= 30s

.PHONY: all build vet test race lint fuzz-smoke stream-diff serve-smoke hazard-smoke fmt-check bench bench-smoke bench-stream instr-smoke docs-check guide ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static lock-hazard analysis: go vet plus a clalint self-run over the
# whole tree (testdata corpora are pruned by the pattern walker). The
# self-run must stay clean — fix findings or add a justified
# `//lint:ignore <check> <reason>`.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/clalint ./...

# Short mutation run of every fuzz target: the segment frame/footer
# decoders and manifest reader (hostile bytes must error, never panic),
# the trace codec, and trace.Validate. Go allows one fuzz target per
# `go test -fuzz` invocation, so they run back to back.
fuzz-smoke:
	$(GO) test ./internal/segment -run '^$$' -fuzz FuzzSegmentFile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/segment -run '^$$' -fuzz FuzzManifest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzDecodeEvent -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzReadBinary -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzValidate -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lint -run '^$$' -fuzz FuzzLint -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hazard -run '^$$' -fuzz FuzzHazard -fuzztime $(FUZZTIME)

# Differential oracle: AnalyzeStream over segmented + spilled traces
# must be bit-identical to the in-memory analyzer, under the race
# detector.
stream-diff:
	$(GO) test -race ./internal/core -run 'TestAnalyzeStream' -count=1 -v

# Serving-path smoke: spin up the analysis server in-process, POST the
# checked-in synth workload and byte-diff the JSON report against its
# golden (testdata/smoke_report.golden), plus the source-level
# differential oracle behind the unified Analyze API. Refresh the
# golden with UPDATE_SERVE_GOLDEN=1 after an intended change.
serve-smoke:
	$(GO) test ./internal/serve -run 'TestServeSmokeGolden|TestSegdirMatchesUpload' -count=1 -v
	$(GO) test . -run TestAnalyzeSourcesAgree -count=1

# Hazard-prediction smoke: the planted deadlock and lost-signal
# workloads must light up (with the cross-thread witness), every clean
# workload must report zero hazards, and the streaming pass must be
# bit-identical to the in-memory one at every tested segmentation and
# worker count.
hazard-smoke:
	$(GO) test ./internal/hazard -run 'TestDeadlockProne|TestLostSignalPlanted|TestCleanWorkloadsNoHazards|TestStreamMatchesInMemory' -count=1 -v
	$(GO) test ./internal/lint -run TestCrossReferenceHazards -count=1

# Gofmt cleanliness — the build stays formatter-neutral.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# One iteration of the headline benchmarks — catches crashes and gross
# regressions without tying up CI.
bench-smoke:
	$(GO) test -run=xxx -bench='BenchmarkAnalyzeLargeTrace|BenchmarkAnalyzeStream2M' -benchtime=1x -benchmem .

# Re-record the streaming-throughput benchmark: runs
# BenchmarkAnalyzeStream2M (stream + in-memory) COUNT times and emits
# the BENCH_PR8.json record from the parsed output (best run per
# sub-benchmark), so the quoted numbers are reproducible rather than
# hand-typed. Takes ~COUNT x 2 minutes on the reference 1-core vCPU.
bench-stream:
	./scripts/bench_stream_json.sh > BENCH_PR8.json
	@cat BENCH_PR8.json

# End-to-end instrumenter smoke: instrument examples/instr (an
# ordinary sync+chan program with a planted hot lock), run the copy,
# analyze its trace, and assert the planted lock tops the report —
# plus the golden pin of the rewrite rules (refresh an intended
# rewrite change with `go test ./internal/instr -update`).
instr-smoke:
	$(GO) test ./internal/instr -run 'TestInstrumentExampleEndToEnd|TestGoldenTarget' -count=1 -v

# Docs freshness: re-run the guide's pipeline and fail when the
# committed docs/GUIDE.md transcripts drifted (numbers normalized).
# Regenerate with `make guide`.
docs-check:
	./scripts/guide.sh check

guide:
	./scripts/guide.sh gen

# Stable numbers for the benchmarks quoted in README/BENCH_PR*.json.
bench:
	$(GO) test -run=xxx -bench='BenchmarkAnalyzeLargeTrace|BenchmarkAnalyzeReuse|BenchmarkMergeVsSort|BenchmarkRunAllParallel' -benchtime=30x -benchmem .
	$(GO) test -run=xxx -bench=BenchmarkAnalyzeStream2M -benchtime=2x -benchmem .

ci: lint fmt-check build race stream-diff serve-smoke hazard-smoke fuzz-smoke bench-smoke instr-smoke docs-check
