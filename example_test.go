package critlock_test

import (
	"fmt"
	"strings"

	"critlock"
)

// ExampleAnalyze simulates the classic misleading-idleness scenario:
// the lock with the most waiting is not the one delaying completion.
func ExampleAnalyze() {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	noisy := sim.NewMutex("noisy") // heavily contended, fully overlapped
	serial := sim.NewMutex("serial")

	tr, _, err := sim.Run(func(p critlock.Proc) {
		tail := p.Go("tail", func(q critlock.Proc) {
			for i := 0; i < 10; i++ {
				q.Compute(500)
				q.Lock(serial)
				q.Compute(2_000)
				q.Unlock(serial)
			}
		})
		var workers []critlock.Thread
		for i := 0; i < 3; i++ {
			workers = append(workers, p.Go("worker", func(q critlock.Proc) {
				for j := 0; j < 4; j++ {
					q.Lock(noisy)
					q.Compute(800)
					q.Unlock(noisy)
				}
			}))
		}
		for _, w := range workers {
			p.Join(w)
		}
		p.Join(tail)
	})
	if err != nil {
		panic(err)
	}

	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		panic(err)
	}
	fmt.Printf("critical lock: %s\n", an.Locks[0].Name)
	fmt.Printf("off the path:  %s (critical=%v)\n", "noisy", an.Lock("noisy").Critical)
	// Output:
	// critical lock: serial
	// off the path:  noisy (critical=false)
}

// ExampleNewPredictor scores criticality online, without the backward
// walk.
func ExampleNewPredictor() {
	sim := critlock.NewSimulator(critlock.SimConfig{Seed: 1})
	m := sim.NewMutex("hot")
	tr, _, err := sim.Run(func(p critlock.Proc) {
		w := p.Go("w", func(q critlock.Proc) {
			q.Lock(m)
			q.Compute(1_000)
			q.Unlock(m)
		})
		p.Join(w)
	})
	if err != nil {
		panic(err)
	}
	pred := critlock.NewPredictor()
	for _, e := range tr.Events {
		pred.Observe(e)
	}
	fmt.Println(tr.ObjName(pred.Top()))
	// Output:
	// hot
}

// ExampleLoadSynth models a workload declaratively from JSON.
func ExampleLoadSynth() {
	cfg, err := critlock.LoadSynth(strings.NewReader(`{
	  "name": "demo",
	  "threads": 2,
	  "locks": ["db"],
	  "phases": [{"steps": [{"lock": "db", "hold": 1000}]}]
	}`))
	if err != nil {
		panic(err)
	}
	sim := critlock.NewSimulator(critlock.SimConfig{Seed: 1})
	tr, _, err := critlock.RunSynth(sim, cfg, critlock.WorkloadParams{Seed: 1})
	if err != nil {
		panic(err)
	}
	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s invocations: %d\n", an.Locks[0].Name, an.Locks[0].TotalInvocations)
	// Output:
	// db invocations: 2
}
