package critlock_test

import (
	"reflect"
	"testing"

	"critlock"
	"critlock/internal/segment"
)

// workloadTrace builds a deterministic trace of one modelled workload.
func workloadTrace(t *testing.T, name string, threads int) *critlock.Trace {
	t.Helper()
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, name, critlock.WorkloadParams{Threads: threads, Seed: 1})
	if err != nil {
		t.Fatalf("running %s: %v", name, err)
	}
	return tr
}

// TestAnalyzeSourcesAgree is the source-level differential oracle: the
// unified Analyze must produce identical results whether the events
// arrive in memory (TraceSource) or stream from a segment directory
// (SegmentDirSource) — same critical path, same lock and thread
// statistics, same totals.
func TestAnalyzeSourcesAgree(t *testing.T) {
	for _, tc := range []struct {
		workload string
		threads  int
	}{
		{"micro", 4},
		{"tsp", 6},
		{"waternsq", 4},
	} {
		t.Run(tc.workload, func(t *testing.T) {
			tr := workloadTrace(t, tc.workload, tc.threads)

			mem, err := critlock.Analyze(critlock.TraceSource(tr))
			if err != nil {
				t.Fatalf("TraceSource: %v", err)
			}

			dir := t.TempDir()
			if err := segment.WriteTrace(dir, tr, segment.Options{SegmentEvents: 64}); err != nil {
				t.Fatalf("writing segments: %v", err)
			}
			var snapshots int
			streamed, err := critlock.Analyze(critlock.SegmentDirSource(dir),
				critlock.WithWindow(3),
				critlock.WithProgress(func(critlock.Progress) { snapshots++ }))
			if err != nil {
				t.Fatalf("SegmentDirSource: %v", err)
			}

			if !reflect.DeepEqual(mem.CP, streamed.CP) {
				t.Errorf("critical paths differ between sources")
			}
			if !reflect.DeepEqual(mem.Locks, streamed.Locks) {
				t.Errorf("lock statistics differ between sources")
			}
			if !reflect.DeepEqual(mem.Threads, streamed.Threads) {
				t.Errorf("thread statistics differ between sources")
			}
			if !reflect.DeepEqual(mem.Totals, streamed.Totals) {
				t.Errorf("totals differ between sources")
			}
			if snapshots == 0 {
				t.Errorf("WithProgress observer never fired")
			}
		})
	}
}

// TestObserverDoesNotChangeResults pins the instrumentation invariant:
// attaching observers and capping workers must not alter any result.
func TestObserverDoesNotChangeResults(t *testing.T) {
	tr := workloadTrace(t, "micro", 4)

	plain, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	observed, err := critlock.Analyze(critlock.TraceSource(tr),
		critlock.WithWorkers(2),
		critlock.WithProgress(func(p critlock.Progress) { phases = append(phases, p.Phase) }))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Locks, observed.Locks) || !reflect.DeepEqual(plain.CP, observed.CP) {
		t.Errorf("observation changed analysis results")
	}
	want := []string{"validate", "index", "walk", "metrics"}
	if !reflect.DeepEqual(phases, want) {
		t.Errorf("in-memory phases = %v, want %v", phases, want)
	}
}

// TestAnalyzeOptionSpellingsAgree pins the finalized facade: every way
// of spelling the same analysis through Analyze — WithOptions vs the
// individual options, SegmentsSource vs SegmentDirSource, and the
// performance knobs (parallelism, mmap, annotation budget), which must
// never change results — produces identical output.
func TestAnalyzeOptionSpellingsAgree(t *testing.T) {
	tr := workloadTrace(t, "micro", 4)

	unified, err := critlock.Analyze(critlock.TraceSource(tr), critlock.WithClipHold(false))
	if err != nil {
		t.Fatal(err)
	}
	wholesale, err := critlock.Analyze(critlock.TraceSource(tr),
		critlock.WithOptions(critlock.AnalyzeOptions{ClipHold: false, Validate: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unified.Locks, wholesale.Locks) {
		t.Errorf("WithOptions disagrees with WithClipHold")
	}

	dir := t.TempDir()
	if err := segment.WriteTrace(dir, tr, segment.Options{}); err != nil {
		t.Fatal(err)
	}
	fromDir, err := critlock.Analyze(critlock.SegmentDirSource(dir))
	if err != nil {
		t.Fatal(err)
	}
	rdr, err := segment.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rdr.Close()
	fromReader, err := critlock.Analyze(critlock.SegmentsSource(rdr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromDir.Locks, fromReader.Locks) {
		t.Errorf("SegmentsSource disagrees with Analyze(SegmentDirSource)")
	}

	tuned, err := critlock.Analyze(critlock.SegmentDirSource(dir),
		critlock.WithParallelSegments(8),
		critlock.WithMmap(false),
		critlock.WithAnnotationBudget(-1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromDir.Locks, tuned.Locks) || !reflect.DeepEqual(fromDir.CP, tuned.CP) {
		t.Errorf("performance options changed analysis results")
	}
}
