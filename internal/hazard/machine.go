package hazard

import (
	"fmt"
	"sort"

	"critlock/internal/trace"
)

// maxInherited caps the inherited-hold list per thread. Real wakeup
// chains carry a handful of locks; the cap only matters for
// adversarial (fuzzed) inputs, where it bounds memory. Oldest entries
// win, deterministically.
const maxInherited = 64

// heldLock is one entry of a thread's own acquisition stack. acq is a
// global monotonically increasing acquisition ID: an inherited hold is
// live exactly while its acq is still on the owner's stack.
type heldLock struct {
	obj    trace.ObjID
	acq    uint64
	t      trace.Time // obtain time
	shared bool
}

// inhHold is a lock held by another thread whose critical section
// extended into this one via a wakeup chain.
type inhHold struct {
	obj   trace.ObjID
	owner trace.ThreadID
	acq   uint64
	t     trace.Time // owner's obtain time
	via   string     // wakeup chain that carried the hold across
}

type threadState struct {
	held      []heldLock
	inherited []inhHold
	exited    bool
}

// condMachine mirrors core/index.go's condState (FIFO waiters, Signal
// pops the front, Broadcast wakes all, spurious wakeups tolerated),
// but carries hold snapshots instead of waker indices, plus the
// lost-signal and guard bookkeeping.
type condMachine struct {
	waiting []trace.ThreadID
	wakerOf map[trace.ThreadID][]inhHold
	ever    map[trace.ThreadID]bool
	// cands are signal/broadcast events that looked lost when they
	// happened; any later wait on the cond clears them.
	cands []LostSignal
	// assocs are the distinct associated mutexes seen across wait
	// begins, with one witness site each, in first-seen order.
	assocs     []trace.ObjID
	assocSites []GuardSite
}

// chanOp records one channel operation for later waker resolution.
type chanOp struct {
	t      trace.Time
	thread trace.ThreadID
	snap   []inhHold
}

// chanMachine mirrors core/index.go's chanPairing FIFO counting: value
// recv #r consumes send #r, a blocked send #s was admitted by recv
// #(s-capacity), a closed recv is ordered after the close. At a
// rendezvous the simulator may emit the recv completion *before* the
// matching send completion (same instant), so a recv that finds sendQ
// empty leaves a debt in owed that the send completion settles.
type chanMachine struct {
	capacity int
	// sendQ holds the completed sends not yet consumed by a recv —
	// exactly the undelivered values at end of trace.
	sendQ []chanOp
	// owed holds receivers whose matching send completion is still in
	// flight at the same instant.
	owed []trace.ThreadID
	// recvQ holds value-recv sites recv #recvBase.., pruned to what
	// future blocked sends can still reference.
	recvQ    []chanOp
	recvBase int
	sends    int
	closed   bool
	closeOp  chanOp
}

// guardState tracks lock-set consistency for one chan or barrier: flag
// when two threads operate on it under disjoint *non-empty* (own) lock
// sets. One side holding nothing is the normal hand-off pattern and
// stays silent; two threads each believing a different lock guards the
// object is the Eraser-style inconsistency.
type guardState struct {
	kind        string
	nonEmpty    *GuardSite
	nonEmptySet []trace.ObjID
	conflict    *GuardSite
}

type edgeKey struct{ from, to trace.ObjID }

type edgeAgg struct {
	count, crossCount int
	witness           *Witness
	crossWitness      *Witness
}

type machine struct {
	tr      *trace.Trace
	acqSeq  uint64
	threads map[trace.ThreadID]*threadState
	edges   map[edgeKey]*edgeAgg
	conds   map[trace.ObjID]*condMachine
	chans   map[trace.ObjID]*chanMachine
	guards  map[trace.ObjID]*guardState
	prevT   trace.Time
	n       int
}

func newMachine(tr *trace.Trace) *machine {
	return &machine{
		tr:      tr,
		threads: make(map[trace.ThreadID]*threadState),
		edges:   make(map[edgeKey]*edgeAgg),
		conds:   make(map[trace.ObjID]*condMachine),
		chans:   make(map[trace.ObjID]*chanMachine),
		guards:  make(map[trace.ObjID]*guardState),
	}
}

func (m *machine) thread(id trace.ThreadID) *threadState {
	ts := m.threads[id]
	if ts == nil {
		ts = &threadState{}
		m.threads[id] = ts
	}
	return ts
}

func (m *machine) cond(id trace.ObjID) *condMachine {
	c := m.conds[id]
	if c == nil {
		c = &condMachine{wakerOf: make(map[trace.ThreadID][]inhHold), ever: make(map[trace.ThreadID]bool)}
		m.conds[id] = c
	}
	return c
}

func (m *machine) chanOf(id trace.ObjID) *chanMachine {
	c := m.chans[id]
	if c == nil {
		capacity := 0
		if int(id) >= 0 && int(id) < len(m.tr.Objects) {
			capacity = m.tr.Objects[id].Parties
		}
		c = &chanMachine{capacity: capacity}
		m.chans[id] = c
	}
	return c
}

func (m *machine) objName(id trace.ObjID) string { return m.tr.ObjName(id) }

func (m *machine) threadName(id trace.ThreadID) string {
	if int(id) >= 0 && int(id) < len(m.tr.Threads) {
		return m.tr.Threads[id].Name
	}
	return fmt.Sprintf("<t%d>", id)
}

// liveInh reports whether an inherited hold's owner still has the
// acquisition on its own stack: the cross-thread extension ends the
// moment the owner releases.
func (m *machine) liveInh(ih inhHold) bool {
	ts := m.threads[ih.owner]
	if ts == nil {
		return false
	}
	for i := range ts.held {
		if ts.held[i].acq == ih.acq {
			return true
		}
	}
	return false
}

// snapshot captures the holds a waker passes into the thread it wakes:
// its own stack plus any still-live holds it itself inherited
// (transitive waker chains keep their original owner and via).
func (m *machine) snapshot(t trace.ThreadID, via string) []inhHold {
	ts := m.threads[t]
	if ts == nil || (len(ts.held) == 0 && len(ts.inherited) == 0) {
		return nil
	}
	out := make([]inhHold, 0, len(ts.held)+len(ts.inherited))
	for _, h := range ts.held {
		out = append(out, inhHold{obj: h.obj, owner: t, acq: h.acq, t: h.t, via: via})
	}
	for _, ih := range ts.inherited {
		if m.liveInh(ih) {
			out = append(out, ih)
		}
	}
	return out
}

// inheritInto installs a waker snapshot into the woken thread,
// deduplicating by acquisition ID and dropping dead entries.
func (m *machine) inheritInto(t trace.ThreadID, snap []inhHold) {
	if len(snap) == 0 {
		return
	}
	ts := m.thread(t)
	for _, ih := range snap {
		if ih.owner == t || !m.liveInh(ih) {
			continue
		}
		dup := false
		for i := range ts.inherited {
			if ts.inherited[i].acq == ih.acq {
				dup = true
				break
			}
		}
		if !dup && len(ts.inherited) < maxInherited {
			ts.inherited = append(ts.inherited, ih)
		}
	}
}

// heldNames renders the acquisition stack of a thread for a witness:
// own holds first (in acquisition order), then live inherited holds
// annotated with owner and wakeup chain.
func (m *machine) heldNames(ts *threadState) []string {
	out := make([]string, 0, len(ts.held)+len(ts.inherited))
	for _, h := range ts.held {
		n := m.objName(h.obj)
		if h.shared {
			n += " (shared)"
		}
		out = append(out, n)
	}
	for _, ih := range ts.inherited {
		out = append(out, fmt.Sprintf("%s (held by %s, via %s)",
			m.objName(ih.obj), m.threadName(ih.owner), ih.via))
	}
	return out
}

func (m *machine) addEdge(from trace.ObjID, e *trace.Event, held []string, cross bool, outer inhHold) {
	k := edgeKey{from, e.Obj}
	agg := m.edges[k]
	if agg == nil {
		agg = &edgeAgg{}
		m.edges[k] = agg
	}
	agg.count++
	if cross {
		agg.crossCount++
	}
	if agg.witness == nil || (cross && agg.crossWitness == nil) {
		w := &Witness{
			Thread:     e.Thread,
			ThreadName: m.threadName(e.Thread),
			OuterT:     outer.t,
			InnerT:     e.T,
			Held:       held,
		}
		if cross {
			w.CrossThread = true
			w.Owner = outer.owner
			w.OwnerName = m.threadName(outer.owner)
			w.Via = outer.via
		}
		if agg.witness == nil {
			agg.witness = w
		}
		if cross && agg.crossWitness == nil {
			agg.crossWitness = w
		}
	}
}

// guardOp folds one chan/barrier operation into its guard state.
func (m *machine) guardOp(obj trace.ObjID, kind, op string, e *trace.Event) {
	ts := m.thread(e.Thread)
	if len(ts.held) == 0 {
		return
	}
	g := m.guards[obj]
	if g == nil {
		g = &guardState{kind: kind}
		m.guards[obj] = g
	}
	set := make([]trace.ObjID, 0, len(ts.held))
	for _, h := range ts.held {
		set = append(set, h.obj)
	}
	site := func() *GuardSite {
		return &GuardSite{
			Op:         op,
			Thread:     e.Thread,
			ThreadName: m.threadName(e.Thread),
			T:          e.T,
			Held:       objNames(m.tr, set),
		}
	}
	if g.nonEmpty == nil {
		g.nonEmpty = site()
		g.nonEmptySet = set
		return
	}
	if g.conflict == nil && e.Thread != g.nonEmpty.Thread && disjoint(set, g.nonEmptySet) {
		g.conflict = site()
	}
}

func disjoint(a, b []trace.ObjID) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}

func objNames(tr *trace.Trace, ids []trace.ObjID) []string {
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = tr.ObjName(id)
	}
	return out
}

// step folds one event, in canonical (T, Seq) order, into the machine.
func (m *machine) step(e *trace.Event) error {
	if e.Kind < trace.EvThreadStart || e.Kind > trace.EvSelect {
		return fmt.Errorf("hazard: event %d: invalid kind %d", m.n, e.Kind)
	}
	if e.T < m.prevT {
		return fmt.Errorf("hazard: event %d: time %d before predecessor %d (trace not in canonical order)", m.n, e.T, m.prevT)
	}
	if int(e.Thread) < 0 || int(e.Thread) >= len(m.tr.Threads) {
		return fmt.Errorf("hazard: event %d: thread %d out of range", m.n, e.Thread)
	}
	m.prevT = e.T
	m.n++

	switch e.Kind {
	case trace.EvLockObtain:
		ts := m.thread(e.Thread)
		var held []string
		// Intra-thread edges from every own hold.
		for _, h := range ts.held {
			if h.obj == e.Obj {
				continue
			}
			if held == nil {
				held = m.heldNames(ts)
			}
			m.addEdge(h.obj, e, held, false, inhHold{obj: h.obj, owner: e.Thread, acq: h.acq, t: h.t})
		}
		// Cross-thread edges from live inherited holds; dead ones are
		// compacted away here.
		live := ts.inherited[:0]
		for _, ih := range ts.inherited {
			if !m.liveInh(ih) {
				continue
			}
			live = append(live, ih)
			if ih.obj == e.Obj {
				continue
			}
			if held == nil {
				held = m.heldNames(ts)
			}
			m.addEdge(ih.obj, e, held, true, ih)
		}
		ts.inherited = live
		m.acqSeq++
		ts.held = append(ts.held, heldLock{
			obj:    e.Obj,
			acq:    m.acqSeq,
			t:      e.T,
			shared: e.Arg&trace.LockArgShared != 0,
		})

	case trace.EvLockRelease:
		ts := m.thread(e.Thread)
		for i := len(ts.held) - 1; i >= 0; i-- {
			if ts.held[i].obj == e.Obj {
				ts.held = append(ts.held[:i], ts.held[i+1:]...)
				break
			}
		}

	case trace.EvCondWaitBegin:
		c := m.cond(e.Obj)
		// A waiter exists now, so no earlier signal was lost after all.
		c.cands = nil
		c.waiting = append(c.waiting, e.Thread)
		c.ever[e.Thread] = true
		// Guard: the associated mutex travels in Arg. Waiting under two
		// different mutexes loses wakeups (the cond's queue is only
		// atomic with respect to one of them).
		if assoc := trace.ObjID(e.Arg); assoc >= 0 {
			known := false
			for _, a := range c.assocs {
				if a == assoc {
					known = true
					break
				}
			}
			if !known {
				c.assocs = append(c.assocs, assoc)
				c.assocSites = append(c.assocSites, GuardSite{
					Op:         "wait",
					Thread:     e.Thread,
					ThreadName: m.threadName(e.Thread),
					T:          e.T,
					Mutex:      m.objName(assoc),
				})
			}
		}

	case trace.EvCondWaitEnd:
		c := m.cond(e.Obj)
		if snap, ok := c.wakerOf[e.Thread]; ok {
			delete(c.wakerOf, e.Thread)
			m.inheritInto(e.Thread, snap)
		}
		// Spurious wakeup or fuzz noise: drop from the wait queue.
		for i, t := range c.waiting {
			if t == e.Thread {
				c.waiting = append(c.waiting[:i], c.waiting[i+1:]...)
				break
			}
		}

	case trace.EvCondSignal, trace.EvCondBroadcast:
		c := m.cond(e.Obj)
		via := fmt.Sprintf("cond %s wakeup", m.objName(e.Obj))
		if len(c.waiting) > 0 {
			snap := m.snapshot(e.Thread, via)
			if e.Kind == trace.EvCondSignal {
				t := c.waiting[0]
				c.waiting = c.waiting[1:]
				c.wakerOf[t] = snap
			} else {
				for _, t := range c.waiting {
					c.wakerOf[t] = snap
				}
				c.waiting = c.waiting[:0]
			}
			break
		}
		// Nobody is waiting. That is lost only if nobody *can* wait
		// again: every thread that ever waited on this cond has exited.
		// (Benign termination broadcasts always have live consumers
		// busy checking their predicate.)
		if len(c.ever) > 0 && m.allExited(c.ever) {
			kind := "signal"
			if e.Kind == trace.EvCondBroadcast {
				kind = "broadcast"
			}
			c.cands = append(c.cands, LostSignal{
				Kind:       kind,
				Object:     m.objName(e.Obj),
				Thread:     e.Thread,
				ThreadName: m.threadName(e.Thread),
				T:          e.T,
				Waiters:    len(c.ever),
				Detail: fmt.Sprintf("no thread is waiting and all %d thread(s) that ever waited have exited — the wakeup can never be consumed",
					len(c.ever)),
			})
		}

	case trace.EvChanSendBegin:
		m.guardOp(e.Obj, "chan", "send", e)

	case trace.EvChanSend:
		c := m.chanOf(e.Obj)
		// A blocked send #s was admitted by recv #(s-capacity): the
		// receiver's critical section extends into the sender.
		if e.Arg&trace.ChanArgBlocked != 0 {
			idx := c.sends - c.capacity
			if idx >= c.recvBase && idx-c.recvBase < len(c.recvQ) {
				m.inheritInto(e.Thread, c.recvQ[idx-c.recvBase].snap)
			}
		}
		c.sends++
		via := fmt.Sprintf("chan %s hand-off", m.objName(e.Obj))
		snap := m.snapshot(e.Thread, via)
		if len(c.owed) > 0 {
			// The matching recv already completed at this instant:
			// settle the hand-off now, before the receiver's next event.
			t := c.owed[0]
			c.owed = c.owed[1:]
			m.inheritInto(t, snap)
		} else {
			c.sendQ = append(c.sendQ, chanOp{t: e.T, thread: e.Thread, snap: snap})
		}
		for c.recvBase < c.sends-c.capacity && len(c.recvQ) > 0 {
			c.recvQ = c.recvQ[1:]
			c.recvBase++
		}

	case trace.EvChanRecvBegin:
		m.guardOp(e.Obj, "chan", "recv", e)

	case trace.EvChanRecv:
		c := m.chanOf(e.Obj)
		if e.Arg&trace.ChanArgClosed != 0 {
			// Receiving the closed marker is ordered after the close.
			if c.closed {
				m.inheritInto(e.Thread, c.closeOp.snap)
			}
			break
		}
		// Value recv #r consumes send #r — a hand-off dependency,
		// blocked or not.
		if len(c.sendQ) > 0 {
			snap := c.sendQ[0].snap
			c.sendQ = c.sendQ[1:]
			m.inheritInto(e.Thread, snap)
		} else {
			// Matching send completion is still in flight (rendezvous
			// emitted recv first); settle when it arrives.
			c.owed = append(c.owed, e.Thread)
		}
		via := fmt.Sprintf("chan %s slot", m.objName(e.Obj))
		c.recvQ = append(c.recvQ, chanOp{t: e.T, thread: e.Thread, snap: m.snapshot(e.Thread, via)})
		for c.recvBase < c.sends-c.capacity && len(c.recvQ) > 0 {
			c.recvQ = c.recvQ[1:]
			c.recvBase++
		}

	case trace.EvChanClose:
		m.guardOp(e.Obj, "chan", "close", e)
		c := m.chanOf(e.Obj)
		via := fmt.Sprintf("chan %s close", m.objName(e.Obj))
		c.closed = true
		c.closeOp = chanOp{t: e.T, thread: e.Thread, snap: m.snapshot(e.Thread, via)}

	case trace.EvBarrierArrive:
		m.guardOp(e.Obj, "barrier", "arrive", e)

	case trace.EvThreadStart:
		m.thread(e.Thread).exited = false

	case trace.EvThreadExit:
		ts := m.thread(e.Thread)
		ts.exited = true
		ts.held = nil
		ts.inherited = nil
	}
	return nil
}

func (m *machine) allExited(set map[trace.ThreadID]bool) bool {
	for t := range set {
		ts := m.threads[t]
		if ts == nil || !ts.exited {
			return false
		}
	}
	return true
}

// finish assembles the deterministic report: surviving lost-signal
// candidates, end-of-trace undelivered sends, guard issues, the sorted
// edge list, and the SCC cycles.
func (m *machine) finish() *Report {
	r := &Report{Events: m.n}

	// Lost cond signals: candidates that no later wait cleared, plus
	// cond guard inconsistencies.
	for _, id := range sortedKeys(m.conds) {
		c := m.conds[id]
		r.LostSignals = append(r.LostSignals, c.cands...)
		if len(c.assocs) >= 2 {
			r.GuardIssues = append(r.GuardIssues, GuardIssue{
				Object:  m.objName(id),
				ObjKind: "cond",
				Detail: fmt.Sprintf("waited on under %d different mutexes (%s vs %s) — wakeups can be lost between the two guards",
					len(c.assocs), c.assocSites[0].Mutex, c.assocSites[1].Mutex),
				Sites: []GuardSite{c.assocSites[0], c.assocSites[1]},
			})
		}
	}

	// Lost channel values: sends never received by the end of the
	// trace. sendQ holds exactly the undelivered ones.
	for _, id := range sortedKeys(m.chans) {
		c := m.chans[id]
		if len(c.sendQ) == 0 {
			continue
		}
		name := m.objName(id)
		if c.closed {
			r.LostSignals = append(r.LostSignals, LostSignal{
				Kind:        "close",
				Object:      name,
				Thread:      c.closeOp.thread,
				ThreadName:  m.threadName(c.closeOp.thread),
				T:           c.closeOp.t,
				Undelivered: len(c.sendQ),
				Detail:      fmt.Sprintf("channel closed with %d buffered value(s) never received", len(c.sendQ)),
			})
		} else {
			r.LostSignals = append(r.LostSignals, LostSignal{
				Kind:        "send",
				Object:      name,
				Thread:      c.sendQ[0].thread,
				ThreadName:  m.threadName(c.sendQ[0].thread),
				T:           c.sendQ[0].t,
				Undelivered: len(c.sendQ),
				Detail:      fmt.Sprintf("%d value(s) sent but no goroutine ever receives them", len(c.sendQ)),
			})
		}
	}
	sort.SliceStable(r.LostSignals, func(i, j int) bool {
		a, b := r.LostSignals[i], r.LostSignals[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Kind < b.Kind
	})

	// Guard issues for chans/barriers: two threads, disjoint non-empty
	// lock sets.
	for _, id := range sortedKeys(m.guards) {
		g := m.guards[id]
		if g.nonEmpty == nil || g.conflict == nil {
			continue
		}
		r.GuardIssues = append(r.GuardIssues, GuardIssue{
			Object:  m.objName(id),
			ObjKind: g.kind,
			Detail: fmt.Sprintf("operated on by multiple threads under disjoint lock sets (%v vs %v)",
				g.nonEmpty.Held, g.conflict.Held),
			Sites: []GuardSite{*g.nonEmpty, *g.conflict},
		})
	}
	sort.SliceStable(r.GuardIssues, func(i, j int) bool {
		if r.GuardIssues[i].Object != r.GuardIssues[j].Object {
			return r.GuardIssues[i].Object < r.GuardIssues[j].Object
		}
		return r.GuardIssues[i].ObjKind < r.GuardIssues[j].ObjKind
	})

	// Edge list, sorted by (from, to) names with IDs as tiebreak.
	keys := make([]edgeKey, 0, len(m.edges))
	for k := range m.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		an, bn := m.objName(a.from), m.objName(b.from)
		if an != bn {
			return an < bn
		}
		an, bn = m.objName(a.to), m.objName(b.to)
		if an != bn {
			return an < bn
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	edgeOf := make(map[edgeKey]Edge, len(keys))
	for _, k := range keys {
		agg := m.edges[k]
		e := Edge{
			From:         m.objName(k.from),
			To:           m.objName(k.to),
			Count:        agg.count,
			CrossCount:   agg.crossCount,
			Witness:      *agg.witness,
			CrossWitness: agg.crossWitness,
		}
		edgeOf[k] = e
		r.Edges = append(r.Edges, e)
	}

	r.Cycles = m.cycles(keys, edgeOf)
	return r
}

func sortedKeys[V any](m map[trace.ObjID]V) []trace.ObjID {
	ids := make([]trace.ObjID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
