package hazard

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"critlock/internal/segment"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// TestStreamMatchesInMemory: the hazard report over a segmented trace
// must be bit-identical to the in-memory one at every worker count and
// segment size — hazard analysis has one answer, however the events
// arrive.
func TestStreamMatchesInMemory(t *testing.T) {
	for _, name := range []string{"deadlockprone", "lostsignal", "radiosity", "pipeline"} {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := runWorkload(t, name, workloads.Params{Seed: 1})
			want, err := FromTrace(tr)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			for _, segEvents := range []int{64, 1024} {
				dir := filepath.Join(t.TempDir(), "segs")
				if err := segment.WriteTrace(dir, tr, segment.Options{SegmentEvents: segEvents}); err != nil {
					t.Fatal(err)
				}
				rdr, err := segment.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 8} {
					got, err := FromSegments(rdr, workers)
					if err != nil {
						t.Fatalf("segEvents=%d workers=%d: %v", segEvents, workers, err)
					}
					gotJSON, err := json.Marshal(got)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotJSON, wantJSON) {
						t.Errorf("segEvents=%d workers=%d: streaming report differs from in-memory\n got: %s\nwant: %s",
							segEvents, workers, gotJSON, wantJSON)
					}
				}
				rdr.Close()
			}
		})
	}
}

// TestFromSegmentsEmpty: an empty source errors like the analyzer.
func TestFromSegmentsEmpty(t *testing.T) {
	b := trace.NewBuilder()
	p := b.Thread("p", trace.NoThread)
	b.Start(0, p)
	b.Exit(1, p)
	dir := filepath.Join(t.TempDir(), "segs")
	if err := segment.WriteTrace(dir, b.Trace(), segment.Options{}); err != nil {
		t.Fatal(err)
	}
	rdr, err := segment.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rdr.Close()
	if _, err := FromSegments(rdr, 2); err != nil {
		t.Fatalf("tiny trace: %v", err)
	}
}
