package hazard

import (
	"sort"

	"critlock/internal/trace"
)

// cycles finds the strongly connected components of the dynamic
// lock-order graph (iterative Tarjan, mirroring core's lock-order
// cycle detection) and packages each with its realizing edges.
func (m *machine) cycles(keys []edgeKey, edgeOf map[edgeKey]Edge) []Cycle {
	adj := make(map[trace.ObjID][]trace.ObjID)
	for _, k := range keys {
		if k.from != k.to {
			adj[k.from] = append(adj[k.from], k.to)
		}
	}

	index := map[trace.ObjID]int{}
	low := map[trace.ObjID]int{}
	onStack := map[trace.ObjID]bool{}
	var stack []trace.ObjID
	var comps [][]trace.ObjID
	next := 0

	type frame struct {
		node trace.ObjID
		ei   int
	}
	var nodes []trace.ObjID
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		an, bn := m.objName(nodes[i]), m.objName(nodes[j])
		if an != bn {
			return an < bn
		}
		return nodes[i] < nodes[j]
	})

	for _, start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		frames := []frame{{node: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.node]) {
				child := adj[f.node][f.ei]
				f.ei++
				if _, seen := index[child]; !seen {
					index[child] = next
					low[child] = next
					next++
					stack = append(stack, child)
					onStack[child] = true
					frames = append(frames, frame{node: child})
				} else if onStack[child] && index[child] < low[f.node] {
					low[f.node] = index[child]
				}
				continue
			}
			if low[f.node] == index[f.node] {
				var comp []trace.ObjID
				for {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[n] = false
					comp = append(comp, n)
					if n == f.node {
						break
					}
				}
				if len(comp) > 1 {
					comps = append(comps, comp)
				}
			}
			node := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[node] < low[parent.node] {
					low[parent.node] = low[node]
				}
			}
		}
	}

	var out []Cycle
	for _, comp := range comps {
		member := make(map[trace.ObjID]bool, len(comp))
		for _, id := range comp {
			member[id] = true
		}
		c := Cycle{}
		for _, id := range comp {
			c.Locks = append(c.Locks, m.objName(id))
		}
		sort.Strings(c.Locks)
		// keys is already in deterministic (from, to) name order.
		for _, k := range keys {
			if member[k.from] && member[k.to] && k.from != k.to {
				e := edgeOf[k]
				c.Edges = append(c.Edges, e)
				if e.CrossCount > 0 {
					c.CrossThread = true
				}
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Locks, out[j].Locks
		for x := 0; x < len(a) && x < len(b); x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return len(a) < len(b)
	})
	return out
}
