package hazard

import (
	"critlock/internal/core"
	"critlock/internal/trace"
)

// FromSegments runs the hazard pass over a segmented trace without
// materializing it. The machine itself is sequential (the hazard
// rules are order-dependent), so parallelism goes where pass 1/3 of
// the streaming analyzer puts it: workers decode segments round-robin
// while the consumer folds them in segment order. The fold order —
// and therefore the report — is bit-identical at any worker count and
// to FromTrace on the same events.
func FromSegments(src core.SegmentSource, workers int) (*Report, error) {
	skel := src.Skeleton()
	if skel == nil {
		return nil, trace.ErrEmptyTrace
	}
	nseg := src.NumSegments()
	if nseg == 0 || src.NumEvents() == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if workers > nseg {
		workers = nseg
	}
	m := newMachine(skel)

	if workers <= 1 {
		var buf []trace.Event
		for i := 0; i < nseg; i++ {
			evs, err := src.LoadSegment(i, buf)
			if err != nil {
				return nil, err
			}
			buf = evs
			for j := range evs {
				if err := m.step(&evs[j]); err != nil {
					return nil, err
				}
			}
		}
		return m.finish(), nil
	}

	// Worker w decodes segments w, w+workers, ...; its single-slot
	// channel lets it prefetch one segment ahead of the consumer.
	type slot struct {
		evs []trace.Event
		err error
	}
	out := make([]chan slot, workers)
	for w := range out {
		out[w] = make(chan slot, 1)
	}
	stop := make(chan struct{})
	defer close(stop)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := w; i < nseg; i += workers {
				evs, err := src.LoadSegment(i, nil)
				select {
				case out[w] <- slot{evs: evs, err: err}:
				case <-stop:
					return
				}
				if err != nil {
					return
				}
			}
		}(w)
	}
	for i := 0; i < nseg; i++ {
		s := <-out[i%workers]
		if s.err != nil {
			return nil, s.err
		}
		for j := range s.evs {
			if err := m.step(&s.evs[j]); err != nil {
				return nil, err
			}
		}
	}
	return m.finish(), nil
}
