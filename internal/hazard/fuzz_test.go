package hazard

import (
	"testing"

	"critlock/internal/trace"
)

// FuzzHazard feeds adversarial event soups — wrong kinds, out-of-range
// threads and objects, unpaired waits, sends without receivers —
// through the full hazard pass. Malformed sequences must error, never
// panic; sequences that survive must produce a finite report.
func FuzzHazard(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(4), false)
	f.Add(int64(42), uint8(7), uint8(2), true)
	f.Add(int64(-3), uint8(255), uint8(9), false)
	f.Fuzz(func(t *testing.T, seed int64, count uint8, spread uint8, sorted bool) {
		tr := &trace.Trace{
			Threads: []trace.ThreadInfo{
				{ID: 0, Name: "t0", Creator: trace.NoThread},
				{ID: 1, Name: "t1", Creator: 0},
			},
			Objects: []trace.ObjectInfo{
				{ID: 0, Kind: trace.ObjMutex, Name: "m0"},
				{ID: 1, Kind: trace.ObjMutex, Name: "m1"},
				{ID: 2, Kind: trace.ObjCond, Name: "c"},
				{ID: 3, Kind: trace.ObjChan, Name: "ch", Parties: 1},
				{ID: 4, Kind: trace.ObjBarrier, Name: "b", Parties: 2},
			},
			Meta: map[string]string{},
		}
		x := uint64(seed)
		next := func() uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x
		}
		n := int(count)%64 + 1
		var tm trace.Time
		for i := 0; i < n; i++ {
			if sorted {
				tm += trace.Time(next() % 10)
			} else {
				tm = trace.Time(next() % 100)
			}
			tr.Events = append(tr.Events, trace.Event{
				T:      tm,
				Seq:    uint64(i + 1),
				Thread: trace.ThreadID(int64(next()%4) - 1), // may be out of range
				Kind:   trace.EventKind(next() % uint64(spread%24+1)),
				Obj:    trace.ObjID(int64(next()%7) - 1),
				Arg:    int64(next()%16) - 2,
			})
		}
		r, err := FromTrace(tr) // must not panic
		if err == nil && r == nil {
			t.Fatal("nil report without error")
		}
	})
}
