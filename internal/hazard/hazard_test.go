package hazard

import (
	"encoding/json"
	"strings"
	"testing"

	"critlock/internal/sim"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

func runWorkload(t *testing.T, name string, p workloads.Params) *trace.Trace {
	t.Helper()
	spec, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{Contexts: 8, Seed: p.Seed})
	tr, _, err := workloads.Run(s, spec, p)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return tr
}

// TestDeadlockProneCrossThread: the default variant must yield exactly
// one feasible deadlock cycle {locks.A, locks.B}, with the A→B edge
// realized only through the channel hand-off (cross-thread) and the
// B→A edge as ordinary nesting — and nothing else.
func TestDeadlockProneCrossThread(t *testing.T) {
	tr := runWorkload(t, "deadlockprone", workloads.Params{Seed: 1})
	r, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cycles) != 1 {
		t.Fatalf("cycles = %d, want exactly 1: %+v", len(r.Cycles), r.Cycles)
	}
	if len(r.LostSignals) != 0 || len(r.GuardIssues) != 0 {
		t.Fatalf("unexpected extra hazards: lost=%+v guard=%+v", r.LostSignals, r.GuardIssues)
	}
	c := r.Cycles[0]
	if got := strings.Join(c.Locks, ","); got != "locks.A,locks.B" {
		t.Fatalf("cycle locks = %s, want locks.A,locks.B", got)
	}
	if !c.CrossThread {
		t.Fatal("cycle not marked cross-thread")
	}
	if len(c.Edges) != 2 {
		t.Fatalf("cycle edges = %d, want 2: %+v", len(c.Edges), c.Edges)
	}
	var ab, ba *Edge
	for i := range c.Edges {
		switch c.Edges[i].From + "->" + c.Edges[i].To {
		case "locks.A->locks.B":
			ab = &c.Edges[i]
		case "locks.B->locks.A":
			ba = &c.Edges[i]
		}
	}
	if ab == nil || ba == nil {
		t.Fatalf("missing cycle edge: %+v", c.Edges)
	}
	if ab.CrossCount != ab.Count || ab.CrossWitness == nil {
		t.Fatalf("A->B should be purely cross-thread: %+v", ab)
	}
	w := ab.CrossWitness
	if w.ThreadName != "g2" || w.OwnerName != "g1" || !strings.Contains(w.Via, "gate") {
		t.Errorf("A->B cross witness = %+v, want g2 inheriting from g1 via gate", w)
	}
	if len(w.Held) == 0 || !strings.Contains(strings.Join(w.Held, ";"), "locks.A (held by g1") {
		t.Errorf("A->B witness stack %v does not show the inherited hold", w.Held)
	}
	if w.OuterT >= w.InnerT {
		t.Errorf("witness times: outer %d should precede inner %d", w.OuterT, w.InnerT)
	}
	if ba.CrossCount != 0 {
		t.Errorf("B->A should be ordinary nesting: %+v", ba)
	}
	if got := strings.Join(ba.Witness.Held, ";"); !strings.Contains(got, "locks.B") {
		t.Errorf("B->A witness stack %v does not show locks.B held", ba.Witness.Held)
	}
}

// TestDeadlockProneTwoLock: the intra-thread variant realizes the same
// cycle with ordinary nesting edges only.
func TestDeadlockProneTwoLock(t *testing.T) {
	tr := runWorkload(t, "deadlockprone", workloads.Params{Seed: 1, TwoLock: true})
	r, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != 1 || len(r.Cycles) != 1 {
		t.Fatalf("want exactly one cycle and nothing else, got cycles=%d lost=%d guard=%d",
			len(r.Cycles), len(r.LostSignals), len(r.GuardIssues))
	}
	c := r.Cycles[0]
	if got := strings.Join(c.Locks, ","); got != "locks.A,locks.B" {
		t.Fatalf("cycle locks = %s, want locks.A,locks.B", got)
	}
	if c.CrossThread {
		t.Errorf("twolock variant should have no cross-thread edges: %+v", c.Edges)
	}
	for _, e := range c.Edges {
		if e.Witness.InnerT < e.Witness.OuterT {
			t.Errorf("edge %s->%s witness: inner obtain %d precedes outer %d",
				e.From, e.To, e.Witness.InnerT, e.Witness.OuterT)
		}
		if len(e.Witness.Held) == 0 {
			t.Errorf("edge %s->%s missing witness acquisition stack", e.From, e.To)
		}
	}
}

// TestLostSignalPlanted: exactly one lost signal on ls.cv, and the
// consumed first signal is not flagged.
func TestLostSignalPlanted(t *testing.T) {
	tr := runWorkload(t, "lostsignal", workloads.Params{Seed: 1})
	r, err := FromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != 1 || len(r.LostSignals) != 1 {
		t.Fatalf("want exactly one lost signal, got cycles=%d lost=%+v guard=%+v",
			len(r.Cycles), r.LostSignals, r.GuardIssues)
	}
	l := r.LostSignals[0]
	if l.Kind != "signal" || l.Object != "ls.cv" || l.ThreadName != "main" || l.Waiters != 1 {
		t.Fatalf("lost signal = %+v, want signal on ls.cv by main with 1 ever-waiter", l)
	}
}

// TestCleanWorkloadsNoHazards: every registered workload except the
// two planted ones must analyze hazard-free — the zero-false-positive
// bar for the rules.
func TestCleanWorkloadsNoHazards(t *testing.T) {
	for _, name := range workloads.Names() {
		if name == "deadlockprone" || name == "lostsignal" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			tr := runWorkload(t, name, workloads.Params{Seed: 1})
			r, err := FromTrace(tr)
			if err != nil {
				t.Fatal(err)
			}
			if r.Total() != 0 {
				b, _ := json.MarshalIndent(r, "", "  ")
				t.Errorf("%s reports hazards on a clean run:\n%s", name, b)
			}
		})
	}
}

// TestLostChannelSends: values sent on a channel nobody drains, and a
// close abandoning a buffered value, are both reported.
func TestLostChannelSends(t *testing.T) {
	b := trace.NewBuilder()
	p := b.Thread("producer", trace.NoThread)
	ch := b.Chan("orphan", 4)
	b.Start(0, p)
	b.Event(10, p, trace.EvChanSendBegin, ch, 0)
	b.Event(10, p, trace.EvChanSend, ch, 0)
	b.Event(20, p, trace.EvChanSendBegin, ch, 0)
	b.Event(20, p, trace.EvChanSend, ch, 0)
	b.Exit(30, p)
	r, err := FromTrace(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LostSignals) != 1 {
		t.Fatalf("lost = %+v, want one", r.LostSignals)
	}
	l := r.LostSignals[0]
	if l.Kind != "send" || l.Object != "orphan" || l.Undelivered != 2 || l.T != 10 {
		t.Fatalf("lost send = %+v, want 2 undelivered on orphan witnessed at the first", l)
	}

	// Same trace plus a close: the finding shifts to the close site.
	b.Event(25, p, trace.EvChanClose, ch, 0)
	r, err = FromTrace(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LostSignals) != 1 || r.LostSignals[0].Kind != "close" || r.LostSignals[0].T != 25 {
		t.Fatalf("lost after close = %+v, want one close finding at t=25", r.LostSignals)
	}
}

// TestDrainedChannelClean: sends all consumed — including a post-close
// drain of the buffer — report nothing.
func TestDrainedChannelClean(t *testing.T) {
	b := trace.NewBuilder()
	p := b.Thread("producer", trace.NoThread)
	c := b.Thread("consumer", p)
	ch := b.Chan("q", 2)
	b.Start(0, p)
	b.Start(0, c)
	b.Event(10, p, trace.EvChanSendBegin, ch, 0)
	b.Event(10, p, trace.EvChanSend, ch, 0)
	b.Event(12, p, trace.EvChanSendBegin, ch, 0)
	b.Event(12, p, trace.EvChanSend, ch, 0)
	b.Event(14, p, trace.EvChanClose, ch, 0)
	b.Exit(15, p)
	b.Event(20, c, trace.EvChanRecvBegin, ch, 0)
	b.Event(20, c, trace.EvChanRecv, ch, 0)
	b.Event(22, c, trace.EvChanRecvBegin, ch, 0)
	b.Event(22, c, trace.EvChanRecv, ch, 0)
	b.Event(24, c, trace.EvChanRecvBegin, ch, 0)
	b.Event(24, c, trace.EvChanRecv, ch, trace.ChanArgClosed)
	b.Exit(25, c)
	r, err := FromTrace(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != 0 {
		t.Fatalf("drained channel reported hazards: %+v", r)
	}
}

// TestCondGuardInconsistency: waiting on one cond under two different
// mutexes is flagged with both witness sites.
func TestCondGuardInconsistency(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread("t1", trace.NoThread)
	t2 := b.Thread("t2", t1)
	m1 := b.Mutex("mu1")
	m2 := b.Mutex("mu2")
	cv := b.Cond("cv")
	b.Start(0, t1)
	b.Start(0, t2)
	b.CS(t1, m1, 5, 5, 6)
	b.Event(6, t1, trace.EvCondWaitBegin, cv, int64(m1))
	b.CS(t2, m2, 7, 7, 8)
	b.Event(8, t2, trace.EvCondWaitBegin, cv, int64(m2))
	b.Event(10, t1, trace.EvCondWaitEnd, cv, int64(m1))
	b.Event(10, t2, trace.EvCondWaitEnd, cv, int64(m2))
	b.Exit(20, t1)
	b.Exit(20, t2)
	r, err := FromTrace(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.GuardIssues) != 1 {
		t.Fatalf("guard issues = %+v, want one", r.GuardIssues)
	}
	g := r.GuardIssues[0]
	if g.Object != "cv" || g.ObjKind != "cond" || len(g.Sites) != 2 {
		t.Fatalf("guard issue = %+v", g)
	}
	if g.Sites[0].Mutex != "mu1" || g.Sites[1].Mutex != "mu2" {
		t.Fatalf("guard sites = %+v, want mu1 and mu2 witnesses", g.Sites)
	}
}

// TestChanGuardInconsistency: two threads operating on one channel
// under disjoint non-empty lock sets are flagged; a thread holding
// nothing (the normal hand-off pattern) is not a conflict.
func TestChanGuardInconsistency(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread("t1", trace.NoThread)
	t2 := b.Thread("t2", t1)
	t3 := b.Thread("t3", t1)
	la := b.Mutex("la")
	lb := b.Mutex("lb")
	ch := b.Chan("ch", 8)
	b.Start(0, t1)
	b.Start(0, t2)
	b.Start(0, t3)
	// t1 sends under la; t3 receives under no lock (fine); t2 sends
	// under lb (conflict).
	b.Event(5, t1, trace.EvLockAcquire, la, 0)
	b.Event(5, t1, trace.EvLockObtain, la, 0)
	b.Event(6, t1, trace.EvChanSendBegin, ch, 0)
	b.Event(6, t1, trace.EvChanSend, ch, 0)
	b.Event(7, t1, trace.EvLockRelease, la, 0)
	b.Event(8, t3, trace.EvChanRecvBegin, ch, 0)
	b.Event(8, t3, trace.EvChanRecv, ch, 0)
	b.Event(9, t2, trace.EvLockAcquire, lb, 0)
	b.Event(9, t2, trace.EvLockObtain, lb, 0)
	b.Event(10, t2, trace.EvChanSendBegin, ch, 0)
	b.Event(10, t2, trace.EvChanSend, ch, 0)
	b.Event(11, t2, trace.EvLockRelease, lb, 0)
	b.Event(12, t3, trace.EvChanRecvBegin, ch, 0)
	b.Event(12, t3, trace.EvChanRecv, ch, 0)
	b.Exit(20, t1)
	b.Exit(20, t2)
	b.Exit(20, t3)
	r, err := FromTrace(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.GuardIssues) != 1 {
		t.Fatalf("guard issues = %+v, want one", r.GuardIssues)
	}
	g := r.GuardIssues[0]
	if g.Object != "ch" || g.ObjKind != "chan" {
		t.Fatalf("guard issue = %+v", g)
	}
	if len(g.Sites) != 2 || g.Sites[0].Held[0] != "la" || g.Sites[1].Held[0] != "lb" {
		t.Fatalf("guard sites = %+v, want la vs lb", g.Sites)
	}
}

// TestBenignTerminationBroadcastClean: a broadcast with zero current
// waiters is NOT lost while its ever-waiters are still alive (the
// standard termination-wakeup pattern).
func TestBenignTerminationBroadcastClean(t *testing.T) {
	b := trace.NewBuilder()
	boss := b.Thread("boss", trace.NoThread)
	w := b.Thread("w", boss)
	cv := b.Cond("cv")
	m := b.Mutex("m")
	b.Start(0, boss)
	b.Start(0, w)
	b.CS(w, m, 1, 1, 2)
	b.Event(2, w, trace.EvCondWaitBegin, cv, int64(m))
	b.Event(5, boss, trace.EvCondSignal, cv, 0)
	b.Event(5, w, trace.EvCondWaitEnd, cv, int64(m))
	// Worker is busy (not waiting) — broadcast finds no waiter, but the
	// worker is alive and could wait again.
	b.Event(8, boss, trace.EvCondBroadcast, cv, 0)
	b.Exit(10, w)
	b.Exit(12, boss)
	r, err := FromTrace(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LostSignals) != 0 {
		t.Fatalf("benign broadcast flagged: %+v", r.LostSignals)
	}
}

// TestLostSignalClearedByLaterWaiter: a signal that looked lost is
// cleared when a new thread waits on the cond afterwards.
func TestLostSignalClearedByLaterWaiter(t *testing.T) {
	b := trace.NewBuilder()
	boss := b.Thread("boss", trace.NoThread)
	w1 := b.Thread("w1", boss)
	w2 := b.Thread("w2", boss)
	cv := b.Cond("cv")
	m := b.Mutex("m")
	b.Start(0, boss)
	b.Start(0, w1)
	b.Start(0, w2)
	b.CS(w1, m, 1, 1, 2)
	b.Event(2, w1, trace.EvCondWaitBegin, cv, int64(m))
	b.Event(4, boss, trace.EvCondSignal, cv, 0)
	b.Event(4, w1, trace.EvCondWaitEnd, cv, int64(m))
	b.Exit(5, w1)
	// w1 (the only ever-waiter) has exited: this signal looks lost...
	b.Event(6, boss, trace.EvCondSignal, cv, 0)
	// ...until w2 starts waiting, proving waiters were still possible.
	b.CS(w2, m, 7, 7, 8)
	b.Event(8, w2, trace.EvCondWaitBegin, cv, int64(m))
	b.Event(9, boss, trace.EvCondSignal, cv, 0)
	b.Event(9, w2, trace.EvCondWaitEnd, cv, int64(m))
	b.Exit(10, w2)
	b.Exit(12, boss)
	r, err := FromTrace(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LostSignals) != 0 {
		t.Fatalf("cleared candidate still reported: %+v", r.LostSignals)
	}
}

// TestCrossThreadCondEdge: a lock held across a cond signal extends
// its critical section into the woken thread.
func TestCrossThreadCondEdge(t *testing.T) {
	b := trace.NewBuilder()
	sig := b.Thread("sig", trace.NoThread)
	wai := b.Thread("wai", sig)
	outer := b.Mutex("outer")
	inner := b.Mutex("inner")
	m := b.Mutex("m")
	cv := b.Cond("cv")
	b.Start(0, sig)
	b.Start(0, wai)
	b.CS(wai, m, 1, 1, 2)
	b.Event(2, wai, trace.EvCondWaitBegin, cv, int64(m))
	// Signaller holds `outer` across the signal and beyond.
	b.Event(5, sig, trace.EvLockAcquire, outer, 0)
	b.Event(5, sig, trace.EvLockObtain, outer, 0)
	b.Event(6, sig, trace.EvCondSignal, cv, 0)
	b.Event(7, wai, trace.EvLockAcquire, m, 0)
	b.Event(7, wai, trace.EvLockObtain, m, trace.LockArgContended)
	b.Event(7, wai, trace.EvCondWaitEnd, cv, int64(m))
	b.Event(8, wai, trace.EvLockRelease, m, 0)
	// While `outer` is still held by sig, wai takes `inner`.
	b.Event(9, wai, trace.EvLockAcquire, inner, 0)
	b.Event(9, wai, trace.EvLockObtain, inner, 0)
	b.Event(10, wai, trace.EvLockRelease, inner, 0)
	b.Event(12, sig, trace.EvLockRelease, outer, 0)
	// After sig released `outer`, further acquisitions are NOT under it.
	b.Event(14, wai, trace.EvLockAcquire, inner, 0)
	b.Event(14, wai, trace.EvLockObtain, inner, 0)
	b.Event(15, wai, trace.EvLockRelease, inner, 0)
	b.Exit(20, sig)
	b.Exit(20, wai)
	r, err := FromTrace(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	var oi *Edge
	for i := range r.Edges {
		if r.Edges[i].From == "outer" && r.Edges[i].To == "inner" {
			oi = &r.Edges[i]
		}
	}
	if oi == nil {
		t.Fatalf("missing outer->inner cross edge; edges = %+v", r.Edges)
	}
	if oi.Count != 1 || oi.CrossCount != 1 {
		t.Fatalf("outer->inner counted %d/%d, want exactly the pre-release acquisition (1/1)", oi.Count, oi.CrossCount)
	}
	if oi.CrossWitness == nil || oi.CrossWitness.OwnerName != "sig" || !strings.Contains(oi.CrossWitness.Via, "cv") {
		t.Fatalf("outer->inner witness = %+v", oi.CrossWitness)
	}
}

// TestMalformedInputs: structurally broken event sequences error
// rather than panic.
func TestMalformedInputs(t *testing.T) {
	if _, err := FromTrace(nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := FromTrace(&trace.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
	b := trace.NewBuilder()
	p := b.Thread("p", trace.NoThread)
	b.Start(0, p)
	tr := b.Trace()
	tr.Events = append(tr.Events, trace.Event{T: 1, Thread: 99, Kind: trace.EvThreadExit})
	if _, err := FromTrace(tr); err == nil {
		t.Error("out-of-range thread accepted")
	}
	tr2 := b.Trace()
	tr2.Events = append(tr2.Events, trace.Event{T: 1, Thread: p, Kind: trace.EventKind(200)})
	if _, err := FromTrace(tr2); err == nil {
		t.Error("invalid kind accepted")
	}
	tr3 := b.Trace()
	tr3.Events = append(tr3.Events,
		trace.Event{T: 5, Thread: p, Kind: trace.EvThreadExit},
		trace.Event{T: 1, Thread: p, Kind: trace.EvThreadExit})
	if _, err := FromTrace(tr3); err == nil {
		t.Error("unsorted events accepted")
	}
}
