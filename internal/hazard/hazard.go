// Package hazard predicts synchronization hazards from a recorded
// trace: situations that did not go wrong in this execution but could
// in another interleaving.
//
// The core artifact is the dynamic lock-order graph with cross-thread
// critical sections. Edges come from two sources:
//
//   - intra-thread nesting: a thread obtains lock B while holding
//     lock A (the classical acquisition-order edge A→B), and
//   - cross-thread extension: a lock held across a condition-variable
//     wakeup or a channel hand-off extends its critical section into
//     the woken goroutine, so acquisitions there are still "under" the
//     waker's lock (Sulzmann, arXiv 2512.23552; per-thread lock sets
//     alone miss these cycles).
//
// A strongly connected component of that graph is a feasible deadlock:
// this run completed, but the acquisition order it realized admits an
// interleaving that hangs. Each edge carries a witness — the threads,
// the trace timestamps of both obtains, and the full acquisition stack
// (own plus inherited holds) at the inner obtain.
//
// Two further hazard classes ride on the same forward pass:
//
//   - lost signals: a Signal/Broadcast delivered when no thread is
//     waiting, none ever waits again, and every thread that ever
//     waited on the cond has already exited — provably no possible
//     consumer; and channel values sent but never received by the end
//     of the trace (including buffers abandoned by a close), and
//   - guard inconsistency: a condition variable waited on under two
//     different mutexes, or a channel/barrier operated on by multiple
//     threads under lock sets with empty intersection (Eraser-style).
//
// The pass is a single forward sweep over the canonically ordered
// event sequence and runs identically over an in-memory trace
// (FromTrace) and a segmented one (FromSegments); the streaming form
// decodes segments on parallel workers and folds them in order, so the
// report is bit-identical at any worker count.
package hazard

import (
	"errors"
	"fmt"
	"io"

	"critlock/internal/trace"
)

// Report is the deterministic hazard analysis result: every slice is
// sorted, every field is a pure function of the event sequence, so
// reports diff cleanly and pin the streaming/in-memory differential.
type Report struct {
	// Events is the number of events analyzed.
	Events int `json:"events"`
	// Cycles are the strongly connected components of the dynamic
	// lock-order graph — feasible deadlocks.
	Cycles []Cycle `json:"cycles,omitempty"`
	// LostSignals are wakeups with provably no possible consumer.
	LostSignals []LostSignal `json:"lost_signals,omitempty"`
	// GuardIssues are objects accessed under inconsistent lock sets.
	GuardIssues []GuardIssue `json:"guard_issues,omitempty"`
	// Edges is the full dynamic lock-order graph (cycle members and
	// harmless nestings alike), in (from, to) name order.
	Edges []Edge `json:"edges,omitempty"`
}

// Total counts reported hazards (graph edges alone are not hazards:
// nested acquisition is normal; only cycles are).
func (r *Report) Total() int {
	return len(r.Cycles) + len(r.LostSignals) + len(r.GuardIssues)
}

// Edge is one aggregated dynamic lock-order edge: To was obtained
// while From was held (directly or by inheritance).
type Edge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Count is how many obtains realized the edge; CrossCount how many
	// of those held From only through a cross-thread extension.
	Count      int `json:"count"`
	CrossCount int `json:"cross_count,omitempty"`
	// Witness is the first realization; CrossWitness the first
	// cross-thread one (set when CrossCount > 0).
	Witness      Witness  `json:"witness"`
	CrossWitness *Witness `json:"cross_witness,omitempty"`
}

// Witness pins one realization of an edge to the trace.
type Witness struct {
	// Thread obtained the inner lock (To) at InnerT.
	Thread     trace.ThreadID `json:"thread"`
	ThreadName string         `json:"thread_name"`
	// OuterT is when the outer lock (From) was obtained by its owner;
	// InnerT is when the inner lock was obtained.
	OuterT trace.Time `json:"outer_t"`
	InnerT trace.Time `json:"inner_t"`
	// Held is the acquisition stack at the inner obtain: every lock the
	// obtaining thread held, inherited holds annotated with their owner
	// and the wakeup chain that carried them across.
	Held []string `json:"held"`
	// CrossThread marks an edge whose outer hold belongs to another
	// thread; Owner/OwnerName identify it and Via names the wakeup
	// chain (e.g. "chan gate hand-off").
	CrossThread bool           `json:"cross_thread,omitempty"`
	Owner       trace.ThreadID `json:"owner,omitempty"`
	OwnerName   string         `json:"owner_name,omitempty"`
	Via         string         `json:"via,omitempty"`
}

// Cycle is one feasible deadlock: a strongly connected component of
// the dynamic lock-order graph, with the edges that realize it.
type Cycle struct {
	// Locks are the member lock names, sorted.
	Locks []string `json:"locks"`
	// Edges are the graph edges inside the component.
	Edges []Edge `json:"edges"`
	// CrossThread marks a cycle at least one of whose edges exists only
	// because a critical section extended across threads — invisible to
	// per-thread lock-set analysis.
	CrossThread bool `json:"cross_thread,omitempty"`
}

// LostSignal is a wakeup with no possible consumer.
type LostSignal struct {
	// Kind is "signal" or "broadcast" (condition variables), "send" or
	// "close" (channels).
	Kind   string `json:"kind"`
	Object string `json:"object"`
	// Thread performed the wakeup at T.
	Thread     trace.ThreadID `json:"thread"`
	ThreadName string         `json:"thread_name"`
	T          trace.Time     `json:"t"`
	// Waiters counts the threads that ever waited on the cond — all of
	// them had exited by T (conds only).
	Waiters int `json:"waiters,omitempty"`
	// Undelivered counts channel values never received by the end of
	// the trace (channels only).
	Undelivered int    `json:"undelivered,omitempty"`
	Detail      string `json:"detail"`
}

// GuardIssue is an object accessed under inconsistent lock sets.
type GuardIssue struct {
	Object string `json:"object"`
	// ObjKind is "cond", "chan" or "barrier".
	ObjKind string `json:"obj_kind"`
	Detail  string `json:"detail"`
	// Sites are the two witness operations whose guard sets conflict.
	Sites []GuardSite `json:"sites"`
}

// GuardSite is one witness operation of a guard inconsistency.
type GuardSite struct {
	// Op names the operation ("wait", "send", "recv", "close",
	// "arrive").
	Op         string         `json:"op"`
	Thread     trace.ThreadID `json:"thread"`
	ThreadName string         `json:"thread_name"`
	T          trace.Time     `json:"t"`
	// Held is the (own) lock set at the operation.
	Held []string `json:"held,omitempty"`
	// Mutex is the associated mutex of a cond wait.
	Mutex string `json:"mutex,omitempty"`
}

// FromTrace runs the hazard pass over an in-memory trace.
func FromTrace(tr *trace.Trace) (*Report, error) {
	if tr == nil {
		return nil, errors.New("hazard: nil trace")
	}
	if len(tr.Events) == 0 {
		return nil, trace.ErrEmptyTrace
	}
	m := newMachine(tr)
	for i := range tr.Events {
		if err := m.step(&tr.Events[i]); err != nil {
			return nil, err
		}
	}
	return m.finish(), nil
}

// WriteText renders the report in the human-readable form used by
// `cla -hazards` and `clalint -dynamic`.
func WriteText(w io.Writer, r *Report) {
	if r.Total() == 0 {
		fmt.Fprintf(w, "no dynamic hazards predicted (%d events, %d lock-order edges)\n",
			r.Events, len(r.Edges))
		return
	}
	fmt.Fprintf(w, "%d dynamic hazard(s) predicted from %d events:\n", r.Total(), r.Events)
	for _, c := range r.Cycles {
		kind := "feasible deadlock"
		if c.CrossThread {
			kind = "feasible deadlock (cross-thread: invisible to per-thread lock sets)"
		}
		fmt.Fprintf(w, "  %s: cycle %v\n", kind, c.Locks)
		for _, e := range c.Edges {
			wit := e.Witness
			if e.CrossWitness != nil {
				wit = *e.CrossWitness
			}
			fmt.Fprintf(w, "    %s -> %s  ×%d  witness: %s obtained %q at t=%d holding %v",
				e.From, e.To, e.Count, wit.ThreadName, e.To, wit.InnerT, wit.Held)
			if wit.CrossThread {
				fmt.Fprintf(w, " (%q held by %s since t=%d, carried via %s)",
					e.From, wit.OwnerName, wit.OuterT, wit.Via)
			}
			fmt.Fprintln(w)
		}
	}
	for _, l := range r.LostSignals {
		fmt.Fprintf(w, "  lost %s on %s: %s (by %s at t=%d)\n",
			l.Kind, l.Object, l.Detail, l.ThreadName, l.T)
	}
	for _, g := range r.GuardIssues {
		fmt.Fprintf(w, "  guard inconsistency on %s %s: %s\n", g.ObjKind, g.Object, g.Detail)
		for _, s := range g.Sites {
			fmt.Fprintf(w, "    %s by %s at t=%d", s.Op, s.ThreadName, s.T)
			if s.Mutex != "" {
				fmt.Fprintf(w, " under mutex %s", s.Mutex)
			} else {
				fmt.Fprintf(w, " holding %v", s.Held)
			}
			fmt.Fprintln(w)
		}
	}
}
