package report

import (
	"fmt"

	"critlock/internal/core"
)

// ChanReport renders the per-channel statistics of an analysis,
// ordered hottest first (critical-path wait, then total blocked
// time). It is the channel analogue of the TYPE 1 lock columns: the
// "On CP" pair says how much of the critical path ran through each
// channel's handoffs, while the per-direction counts and waits say
// which side of the channel is starved.
//
// topN ≤ 0 lists every channel.
func ChanReport(an *core.Analysis, topN int) *Table {
	t := NewTable(
		"",
		"Chan", "Cap",
		"Jumps on CP", "Wait on CP",
		"Sends", "Blk", "Send Wait", "Recvs", "Blk", "Recv Wait",
		"Max Wait", "Closes",
	)
	chans := an.Chans
	if topN > 0 && topN < len(chans) {
		chans = chans[:topN]
	}
	for _, c := range chans {
		t.AddRow(
			c.Name, fmt.Sprint(c.Capacity),
			fmt.Sprint(c.JumpsOnCP), fmt.Sprint(c.WaitOnCP),
			fmt.Sprint(c.Sends), fmt.Sprint(c.BlockedSends), fmt.Sprint(c.SendWait),
			fmt.Sprint(c.Recvs), fmt.Sprint(c.BlockedRecvs), fmt.Sprint(c.RecvWait),
			fmt.Sprint(c.MaxWait), fmt.Sprint(c.Closes),
		)
	}
	return t
}
