package report

import (
	"fmt"
	"strings"

	"critlock/internal/core"
	"critlock/internal/trace"
)

// SVGGantt renders the execution as a standalone SVG document: one
// lane per thread with compute, blocked time and per-lock critical
// sections, plus a red underline marking the critical path — a
// shareable version of the paper's Fig. 1 drawing.
func SVGGantt(an *core.Analysis, width int) string {
	tr := an.Trace
	if width < 100 {
		width = 100
	}
	start, end := tr.Start(), tr.End()
	if end <= start || tr.NumThreads() == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="100" height="20"><text x="4" y="14">empty trace</text></svg>`
	}

	const (
		laneH   = 22
		laneGap = 10
		barH    = 12
		cpH     = 3
		leftPad = 120
		topPad  = 28
	)
	span := float64(end - start)
	x := func(t trace.Time) float64 {
		return leftPad + float64(t-start)/span*float64(width)
	}

	// Stable lock palette.
	palette := []string{
		"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
		"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
	}
	colorOf := map[trace.ObjID]string{}
	var mutexes []trace.ObjectInfo
	for _, o := range tr.Objects {
		if o.Kind == trace.ObjMutex {
			colorOf[o.ID] = palette[len(mutexes)%len(palette)]
			mutexes = append(mutexes, o)
		}
	}

	height := topPad + tr.NumThreads()*(laneH+laneGap) + 24 + (len(mutexes)+2)/3*18
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`,
		leftPad+width+20, height)
	fmt.Fprintf(&b, `<text x="%d" y="16">%s — %d ns, critical path %d ns</text>`,
		leftPad, escapeXML(tr.Meta["workload"]), end-start, an.CP.Length)

	laneY := func(tid trace.ThreadID) int { return topPad + int(tid)*(laneH+laneGap) }
	rect := func(from, to trace.Time, y int, h int, fill, title string) {
		x0, x1 := x(from), x(to)
		if x1-x0 < 0.5 {
			x1 = x0 + 0.5
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s</title></rect>`,
			x0, y, x1-x0, h, fill, escapeXML(title))
	}

	// Thread labels and base lanes (lifetime = compute).
	started := make([]trace.Time, tr.NumThreads())
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvThreadStart:
			started[e.Thread] = e.T
		case trace.EvThreadExit:
			y := laneY(e.Thread)
			fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`, y+barH-1, escapeXML(tr.Thread(e.Thread).Name))
			rect(started[e.Thread], e.T, y, barH, "#e0e0e0", "compute")
		}
	}

	// Waits and critical sections.
	key := func(e trace.Event) [2]int32 { return [2]int32{int32(e.Thread), int32(e.Obj)} }
	pending := map[[2]int32]trace.Time{}
	holds := map[[2]int32]trace.Time{}
	for _, e := range tr.Events {
		y := laneY(e.Thread)
		switch e.Kind {
		case trace.EvLockAcquire:
			pending[key(e)] = e.T
		case trace.EvLockObtain:
			if req, ok := pending[key(e)]; ok && e.T > req {
				rect(req, e.T, y, barH, "#c9c9c9", "waiting: "+tr.ObjName(e.Obj))
			}
			delete(pending, key(e))
			holds[key(e)] = e.T
		case trace.EvLockRelease:
			if obt, ok := holds[key(e)]; ok {
				mode := ""
				if e.Shared() {
					mode = " (shared)"
				}
				rect(obt, e.T, y, barH, colorOf[e.Obj], tr.ObjName(e.Obj)+mode)
				delete(holds, key(e))
			}
		case trace.EvBarrierArrive:
			pending[key(e)] = e.T
		case trace.EvBarrierDepart:
			if arr, ok := pending[key(e)]; ok {
				if e.Arg == 0 && e.T > arr {
					rect(arr, e.T, y, barH, "#c9c9c9", "barrier: "+tr.ObjName(e.Obj))
				}
				delete(pending, key(e))
			}
		case trace.EvCondWaitBegin:
			pending[key(e)] = e.T
		case trace.EvCondWaitEnd:
			if begin, ok := pending[key(e)]; ok {
				if e.T > begin {
					rect(begin, e.T, y, barH, "#c9c9c9", "cond wait: "+tr.ObjName(e.Obj))
				}
				delete(pending, key(e))
			}
		}
	}

	// Critical-path underline.
	for _, p := range an.CP.Pieces {
		rect(p.From, p.To, laneY(p.Thread)+barH+2, cpH, "#d62728", "critical path")
	}

	// Legend.
	ly := topPad + tr.NumThreads()*(laneH+laneGap) + 6
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="#d62728"/><text x="%d" y="%d">critical path</text>`,
		leftPad, ly, leftPad+14, ly+9)
	for i, o := range mutexes {
		lx := leftPad + 130 + (i%3)*170
		lyy := ly + (i/3)*18
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/><text x="%d" y="%d">%s</text>`,
			lx, lyy, colorOf[o.ID], lx+14, lyy+9, escapeXML(o.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
