package report

import (
	"bytes"
	"strings"
	"testing"

	"critlock/internal/core"
	"critlock/internal/trace"
)

func TestTableRenderAligned(t *testing.T) {
	tab := NewTable("Title here", "Col", "Longer column", "C")
	tab.AddRow("a", "b", "c")
	tab.AddRow("longer-cell", "x")
	out := tab.String()
	if !strings.HasPrefix(out, "Title here\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows → 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("got %d lines:\n%s", len(lines), out)
		}
	}
	// Header columns must align with row columns.
	header := lines[1]
	if !strings.Contains(header, "Col") || !strings.Contains(header, "Longer column") {
		t.Errorf("bad header: %q", header)
	}
	if idx := strings.Index(header, "Longer column"); idx >= 0 {
		row := lines[3]
		if len(row) > idx && row[idx] != 'b' {
			t.Errorf("column misaligned: header %q vs row %q", header, row)
		}
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tab := NewTable("", "A", "B")
	tab.AddRow("1", "2", "3", "4")
	if got := len(tab.Rows[0]); got != 2 {
		t.Errorf("row has %d cells, want 2", got)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "Lock", "Value")
	tab.AddRow("tq[0].qlock", "39.15%")
	tab.AddRow(`has,comma`, `has"quote`)
	tab.AddRow("short") // missing cell renders empty
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "Lock,Value\ntq[0].qlock,39.15%\n\"has,comma\",\"has\"\"quote\"\nshort,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(39.154) != "39.15%" {
		t.Errorf("Pct = %s", Pct(39.154))
	}
	if F2(7.009) != "7.01" {
		t.Errorf("F2 = %s", F2(7.009))
	}
}

func buildAnalysis(t *testing.T) *core.Analysis {
	t.Helper()
	b := trace.NewBuilder()
	b.Meta("workload", "unit")
	main := b.Thread("main", trace.NoThread)
	w := b.Thread("worker", main)
	m := b.Mutex("hot")
	bar := b.Barrier("phase", 2)
	b.Start(0, main)
	b.Start(0, w)
	b.CS(main, m, 10, 10, 30)
	b.CS(w, m, 15, 30, 45)
	b.BarrierWait(main, bar, 40, 50, false)
	b.BarrierWait(w, bar, 50, 50, true)
	b.Exit(60, main)
	b.Exit(70, w)
	an, err := core.AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestLockReport(t *testing.T) {
	an := buildAnalysis(t)
	tab := LockReport(an, 0)
	out := tab.String()
	if !strings.Contains(out, "hot") || !strings.Contains(out, "CP Time %") {
		t.Errorf("lock report missing fields:\n%s", out)
	}
	if got := len(tab.Rows); got != 1 {
		t.Errorf("rows = %d, want 1", got)
	}
	// topN smaller than lock count truncates.
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	m1, m2 := b.Mutex("a"), b.Mutex("b")
	b.Start(0, main)
	b.CS(main, m1, 1, 1, 2)
	b.CS(main, m2, 3, 3, 4)
	b.Exit(10, main)
	an2, err := core.AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(LockReport(an2, 1).Rows); got != 1 {
		t.Errorf("topN=1 rows = %d", got)
	}
}

func TestSummaryAndThreadReport(t *testing.T) {
	an := buildAnalysis(t)
	var buf bytes.Buffer
	Summary(&buf, an)
	s := buf.String()
	for _, want := range []string{"workload:  unit", "critical path", "lock invocations"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	tt := ThreadReport(an).String()
	if !strings.Contains(tt, "worker") || !strings.Contains(tt, "Barrier Wait") {
		t.Errorf("thread report:\n%s", tt)
	}
}

func TestGantt(t *testing.T) {
	an := buildAnalysis(t)
	g := Gantt(an, 60)
	for _, want := range []string{"main", "worker", "a hot", "legend", "^"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
	// Waits must render as dots (worker blocked on "hot" 15→30).
	if !strings.Contains(g, ".") {
		t.Errorf("gantt shows no blocked time:\n%s", g)
	}
}

func TestGanttDegenerate(t *testing.T) {
	an := &core.Analysis{Trace: &trace.Trace{}}
	if got := Gantt(an, 5); !strings.Contains(got, "empty") {
		t.Errorf("empty-trace gantt = %q", got)
	}
}

func TestSVGGantt(t *testing.T) {
	an := buildAnalysis(t)
	svg := SVGGantt(an, 400)
	for _, want := range []string{
		"<svg", "</svg>", "critical path", "hot", "worker",
		`fill="#d62728"`, "<title>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// No unescaped XML-breaking characters from lock names.
	b := trace.NewBuilder()
	main := b.Thread(`t<&>"`, trace.NoThread)
	m := b.Mutex(`lock<&>`)
	b.Start(0, main)
	b.CS(main, m, 1, 1, 5)
	b.Exit(10, main)
	an2, err := core.AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	svg2 := SVGGantt(an2, 200)
	if strings.Contains(svg2, "lock<&>") {
		t.Error("lock name not escaped")
	}
	if !strings.Contains(svg2, "lock&lt;&amp;&gt;") {
		t.Error("escaped lock name missing")
	}
}

func TestSVGGanttEmpty(t *testing.T) {
	an := &core.Analysis{Trace: &trace.Trace{}}
	if got := SVGGantt(an, 50); !strings.Contains(got, "empty trace") {
		t.Errorf("empty svg = %q", got)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("T|itle", "Lock", "CP")
	tab.AddRow("a|b", "39.15%")
	var buf bytes.Buffer
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**T\\|itle**", "| Lock | CP |", "|---|---|", "| a\\|b | 39.15% |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFullReport(t *testing.T) {
	an := buildAnalysis(t)
	doc := Full(an, FullOptions{TopLocks: 0, Windows: 4, Threads: true, LockOrder: true, Slack: true})
	for _, want := range []string{
		"# Critical lock analysis: unit",
		"## Locks (TYPE 1 + TYPE 2)",
		"## Critical path composition",
		"## Criticality over 4 windows",
		"## Slack",
		"## Threads",
		"## Lock acquisition order",
		"No lock-order inversion cycles found.",
		"| hot |",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("full report missing %q", want)
		}
	}
	// Minimal options produce a shorter document.
	small := Full(an, FullOptions{TopLocks: 1})
	if strings.Contains(small, "## Threads") || len(small) >= len(doc) {
		t.Error("minimal report not minimal")
	}
}

func TestNarrate(t *testing.T) {
	an := buildAnalysis(t)
	out := Narrate(an, 0)
	for _, want := range []string{"critical path:", "starts on", "ends on", "ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("narration missing %q:\n%s", want, out)
		}
	}
	// Capped narration mentions truncation when hops exceed the cap.
	capped := Narrate(an, 1)
	if len(an.CP.JumpLog) > 1 && !strings.Contains(capped, "more hops") {
		t.Errorf("capped narration not truncated:\n%s", capped)
	}
}

func TestNarrateSingleThread(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	b.Start(0, main)
	b.Exit(10, main)
	an, err := core.AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if out := Narrate(an, 0); !strings.Contains(out, "whole path stays") {
		t.Errorf("single-thread narration:\n%s", out)
	}
}
