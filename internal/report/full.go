package report

import (
	"fmt"
	"strings"

	"critlock/internal/core"
)

// FullOptions selects the sections of a bundled report.
type FullOptions struct {
	// TopLocks caps the lock table (0 = all).
	TopLocks int
	// Windows adds a per-window criticality section at this
	// resolution (0 = omit).
	Windows int
	// Threads includes the per-thread table.
	Threads bool
	// LockOrder includes the acquisition-order graph and cycles.
	LockOrder bool
	// Slack includes the per-lock slack ranking.
	Slack bool
}

// Full renders a complete markdown report of an analysis — a
// self-contained artifact for CI runs or issue reports.
func Full(an *core.Analysis, opts FullOptions) string {
	var b strings.Builder
	tr := an.Trace

	fmt.Fprintf(&b, "# Critical lock analysis: %s\n\n", orUnknown(tr.Meta["workload"]))
	fmt.Fprintf(&b, "- backend: %s, threads: %d, events: %d\n", orUnknown(tr.Meta["backend"]), an.Totals.Threads, an.Totals.Events)
	fmt.Fprintf(&b, "- wall time: %d ns; critical path: %d ns (coverage %.1f%%)\n",
		an.CP.WallTime, an.CP.Length, 100*an.CP.Coverage())
	fmt.Fprintf(&b, "- lock invocations: %d (%d contended); critical locks: %d of %d\n\n",
		an.Totals.Invocations, an.Totals.ContendedInvs, len(an.CriticalLocks()), an.Totals.Mutexes)

	b.WriteString("## Locks (TYPE 1 + TYPE 2)\n\n")
	LockReport(an, opts.TopLocks).Markdown(&b)
	b.WriteString("\n## Critical path composition\n\n")
	CompositionReport(an).Markdown(&b)

	if an.Totals.Channels > 0 {
		b.WriteString("\n## Channels (hottest first)\n\n")
		ChanReport(an, opts.TopLocks).Markdown(&b)
	}

	if opts.Windows > 0 {
		fmt.Fprintf(&b, "\n## Criticality over %d windows\n\n", opts.Windows)
		WindowReport(an, opts.Windows).Markdown(&b)
	}
	if opts.Slack {
		b.WriteString("\n## Slack (distance from the critical path)\n\n")
		SlackReport(an.Slack(), opts.TopLocks).Markdown(&b)
	}
	if opts.Threads {
		b.WriteString("\n## Threads\n\n")
		ThreadReport(an).Markdown(&b)
	}
	if opts.LockOrder {
		b.WriteString("\n## Lock acquisition order\n\n")
		lo := core.LockOrderOf(tr)
		LockOrderReport(lo).Markdown(&b)
		if lo.HasCycle() {
			b.WriteString("\n**WARNING: lock-order inversion cycles (potential deadlocks):**\n\n")
			for _, cyc := range lo.CycleNames() {
				fmt.Fprintf(&b, "- %s\n", strings.Join(cyc, " → "))
			}
		} else {
			b.WriteString("\nNo lock-order inversion cycles found.\n")
		}
	}
	return b.String()
}

func orUnknown(s string) string {
	if s == "" {
		return "<unknown>"
	}
	return s
}
