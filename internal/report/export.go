package report

import (
	"encoding/json"
	"io"

	"critlock/internal/core"
	"critlock/internal/hazard"
	"critlock/internal/trace"
)

// Export is the canonical JSON analysis report, shared by every
// producer: clasrv serves it from /v1/analyze and cla writes it with
// -jsonreport. Every field is a deterministic function of the trace
// and the analysis options — no wall-clock timestamps — so reports
// cache by content hash, diff cleanly against goldens, and join
// stably against static analysis (clalint -report matches static lock
// sites to the Locks table by lock name).
type Export struct {
	// ID identifies the report (clasrv: the content-hash cache key;
	// cla: empty).
	ID string `json:"id"`
	// Source describes where the events came from ("trace" for body
	// uploads, "segments:<dir>" for segment directories).
	Source string `json:"source"`
	// Streamed reports whether the bounded-memory pipeline ran (the
	// report then has no event-replay sections).
	Streamed bool `json:"streamed"`

	Summary  ExportSummary      `json:"summary"`
	Totals   core.Totals        `json:"totals"`
	Locks    []core.LockStats   `json:"locks"`
	Chans    []core.ChanStats   `json:"chans,omitempty"`
	Threads  []core.ThreadStats `json:"threads"`
	Timeline []TimelinePiece    `json:"timeline"`
	Jumps    []TimelineJump     `json:"jumps"`

	// Hazards is the dynamic hazard prediction (feasible deadlocks,
	// lost signals, guard inconsistencies), present when the producer
	// ran the hazard pass (cla -hazards, clasrv /v1/hazards).
	Hazards *hazard.Report `json:"hazards,omitempty"`
}

// ExportSummary is the whole-run critical-path header.
type ExportSummary struct {
	CPLength   trace.Time     `json:"cp_length"`
	ExecTime   trace.Time     `json:"exec_time"`
	WaitTime   trace.Time     `json:"wait_time"`
	WallTime   trace.Time     `json:"wall_time"`
	Coverage   float64        `json:"coverage"`
	LastThread trace.ThreadID `json:"last_thread"`
	Steps      int            `json:"steps"`
	Jumps      int            `json:"jumps"`
}

// TimelinePiece is one walked critical-path interval.
type TimelinePiece struct {
	Thread trace.ThreadID `json:"thread"`
	From   trace.Time     `json:"from"`
	To     trace.Time     `json:"to"`
	Wait   bool           `json:"wait,omitempty"`
}

// TimelineJump is one cross-thread hop of the critical path.
type TimelineJump struct {
	T    trace.Time     `json:"t"`
	From trace.ThreadID `json:"from"`
	To   trace.ThreadID `json:"to"`
	Kind string         `json:"kind"`
	Obj  string         `json:"obj,omitempty"`
	// Wait is the blocked time the jump absorbed on the destination
	// thread (0 for thread-start jumps).
	Wait trace.Time `json:"wait,omitempty"`
}

// BuildExport flattens an analysis into the canonical JSON report.
func BuildExport(id, source string, streamed bool, an *core.Analysis) *Export {
	rep := &Export{
		ID:       id,
		Source:   source,
		Streamed: streamed,
		Summary: ExportSummary{
			CPLength:   an.CP.Length,
			ExecTime:   an.CP.ExecTime,
			WaitTime:   an.CP.WaitTime,
			WallTime:   an.CP.WallTime,
			Coverage:   an.CP.Coverage(),
			LastThread: an.CP.LastThread,
			Steps:      an.CP.Steps,
			Jumps:      an.CP.Jumps,
		},
		Totals:  an.Totals,
		Locks:   an.Locks,
		Chans:   an.Chans,
		Threads: an.Threads,
	}
	rep.Timeline = make([]TimelinePiece, len(an.CP.Pieces))
	for i, p := range an.CP.Pieces {
		rep.Timeline[i] = TimelinePiece{
			Thread: p.Thread, From: p.From, To: p.To,
			Wait: p.Kind == core.PieceWait,
		}
	}
	rep.Jumps = make([]TimelineJump, len(an.CP.JumpLog))
	for i, j := range an.CP.JumpLog {
		tj := TimelineJump{T: j.T, From: j.From, To: j.To, Kind: j.Kind.String(), Wait: j.Wait}
		if j.Obj != trace.NoObj {
			tj.Obj = an.Trace.ObjName(j.Obj)
		}
		rep.Jumps[i] = tj
	}
	return rep
}

// WriteExport writes the indented JSON form (the cla -jsonreport
// format, byte-identical to what clasrv serves for the same trace and
// options apart from ID/Source).
func WriteExport(w io.Writer, rep *Export) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadExport parses a JSON analysis report (clalint -report input).
func ReadExport(r io.Reader) (*Export, error) {
	var rep Export
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
