// Package report renders analysis results: aligned text tables in the
// layout of the paper's figures (TYPE 1 / TYPE 2 statistics), CSV
// series for plotting, and an ASCII Gantt chart of the execution with
// the critical path marked (the paper's Fig. 1/7 view).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table, column-aligned, with a rule under the
// header.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, wd := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", wd-len(c)))
		}
		// Trim trailing padding.
		s := b.String()
		b.Reset()
		b.WriteString(strings.TrimRight(s, " "))
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (quotes cells
// containing commas).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i := range t.Headers {
			if i > 0 {
				b.WriteByte(',')
			}
			if i < len(row) {
				b.WriteString(esc(row[i]))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", esc(t.Title))
	}
	for i, h := range t.Headers {
		if i == 0 {
			b.WriteString("|")
		}
		b.WriteString(" " + esc(h) + " |")
	}
	b.WriteString("\n|")
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for i := range t.Headers {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Pct formats a percentage with two decimals, as the paper's tables
// print them.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
