package report

import (
	"fmt"
	"strings"

	"critlock/internal/core"
	"critlock/internal/trace"
)

// Gantt renders the execution as an ASCII timeline — the view of the
// paper's Fig. 1 and Fig. 7. One row per thread plus a marker row
// showing where the critical path runs:
//
//	=  computing outside critical sections
//	.  blocked (lock wait, barrier, condition wait, join)
//	a… inside a critical section (one letter per lock, see legend)
//	^  this part of the thread lies on the critical path
//
// width is the number of character columns the run is scaled to.
func Gantt(an *core.Analysis, width int) string {
	tr := an.Trace
	if width < 10 {
		width = 10
	}
	start, end := tr.Start(), tr.End()
	if end <= start {
		return "(empty trace)\n"
	}
	span := float64(end - start)
	pos := func(t trace.Time) int {
		p := int(float64(t-start) / span * float64(width))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	// Assign letters to mutexes in ObjID order.
	letters := map[trace.ObjID]byte{}
	next := byte('a')
	for _, o := range tr.Objects {
		if o.Kind == trace.ObjMutex {
			letters[o.ID] = next
			if next == 'z' {
				next = 'A'
			} else if next == 'Z' {
				next = '?'
			} else if next != '?' {
				next++
			}
		}
	}

	rows := make([][]byte, tr.NumThreads())
	cpRows := make([][]byte, tr.NumThreads())
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
		cpRows[i] = []byte(strings.Repeat(" ", width))
	}
	paint := func(row []byte, from, to trace.Time, c byte) {
		a, b := pos(from), pos(to)
		for i := a; i <= b && i < width; i++ {
			row[i] = c
		}
	}

	// Base activity: '=' between start and exit.
	type pend struct{ t trace.Time }
	started := make([]trace.Time, tr.NumThreads())
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvThreadStart:
			started[e.Thread] = e.T
		case trace.EvThreadExit:
			paint(rows[e.Thread], started[e.Thread], e.T, '=')
		}
	}

	// Waits and holds.
	lockReq := map[[2]int32]trace.Time{}   // (thread,obj) → acquire time
	lockObt := map[[2]int32]trace.Time{}   // (thread,obj) → obtain time
	barArr := map[[2]int32]trace.Time{}    // barrier arrive
	condBegin := map[[2]int32]trace.Time{} // cond wait begin
	joinBegin := map[int32]trace.Time{}
	key := func(e trace.Event) [2]int32 { return [2]int32{int32(e.Thread), int32(e.Obj)} }
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvLockAcquire:
			lockReq[key(e)] = e.T
		case trace.EvLockObtain:
			if req, ok := lockReq[key(e)]; ok && e.T > req {
				paint(rows[e.Thread], req, e.T, '.')
			}
			delete(lockReq, key(e))
			lockObt[key(e)] = e.T
		case trace.EvLockRelease:
			if obt, ok := lockObt[key(e)]; ok {
				paint(rows[e.Thread], obt, e.T, letters[e.Obj])
				delete(lockObt, key(e))
			}
		case trace.EvBarrierArrive:
			barArr[key(e)] = e.T
		case trace.EvBarrierDepart:
			if arr, ok := barArr[key(e)]; ok {
				if e.Arg == 0 && e.T > arr {
					paint(rows[e.Thread], arr, e.T, '.')
				}
				delete(barArr, key(e))
			}
		case trace.EvCondWaitBegin:
			condBegin[key(e)] = e.T
		case trace.EvCondWaitEnd:
			if begin, ok := condBegin[key(e)]; ok {
				if e.T > begin {
					paint(rows[e.Thread], begin, e.T, '.')
				}
				delete(condBegin, key(e))
			}
		case trace.EvJoinBegin:
			joinBegin[int32(e.Thread)] = e.T
		case trace.EvJoinEnd:
			if begin, ok := joinBegin[int32(e.Thread)]; ok {
				if e.T > begin {
					paint(rows[e.Thread], begin, e.T, '.')
				}
				delete(joinBegin, int32(e.Thread))
			}
		}
	}

	// Critical-path markers.
	for _, p := range an.CP.Pieces {
		paint(cpRows[p.Thread], p.From, p.To, '^')
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %d ns, one column ≈ %.0f ns\n", end-start, span/float64(width))
	nameW := 0
	for _, th := range tr.Threads {
		if len(th.Name) > nameW {
			nameW = len(th.Name)
		}
	}
	for tid := range rows {
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, tr.Threads[tid].Name, rows[tid])
		cp := string(cpRows[tid])
		if strings.TrimSpace(cp) != "" {
			fmt.Fprintf(&b, "%-*s |%s|\n", nameW, "", cp)
		}
	}
	b.WriteString("legend: = compute   . blocked   ^ on critical path\n")
	for _, o := range tr.Objects {
		if o.Kind == trace.ObjMutex {
			fmt.Fprintf(&b, "        %c %s\n", letters[o.ID], o.Name)
		}
	}
	return b.String()
}
