package report

import (
	"fmt"
	"strings"

	"critlock/internal/core"
	"critlock/internal/trace"
)

// Narrate renders the critical path as a readable dependency story in
// forward time order: which thread carried the path, and every hop —
// "at 17000 ns the path moves from rad-7 to rad-3 (lock tq[0].qlock)".
// maxHops caps the output (0 = all); long convoys are the common case,
// so consecutive hops through the same object are folded.
func Narrate(an *core.Analysis, maxHops int) string {
	tr := an.Trace
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d ns over %d thread hops\n",
		an.CP.Length, len(an.CP.JumpLog))

	if len(an.CP.JumpLog) == 0 {
		fmt.Fprintf(&b, "  the whole path stays on thread %q\n", tr.Thread(an.CP.LastThread).Name)
		return b.String()
	}

	first := an.CP.JumpLog[0]
	fmt.Fprintf(&b, "  starts on %q\n", tr.Thread(first.To).Name)

	hops := 0
	i := 0
	for i < len(an.CP.JumpLog) {
		j := an.CP.JumpLog[i]
		// Fold a run of consecutive hops through the same object.
		run := 1
		for i+run < len(an.CP.JumpLog) &&
			an.CP.JumpLog[i+run].Kind == j.Kind &&
			an.CP.JumpLog[i+run].Obj == j.Obj {
			run++
		}
		last := an.CP.JumpLog[i+run-1]
		what := j.Kind.String()
		if j.Obj != trace.NoObj {
			what += " " + tr.ObjName(j.Obj)
		}
		if run == 1 {
			fmt.Fprintf(&b, "  %8d ns  → %q, released by %q (%s)\n",
				j.T, tr.Thread(j.From).Name, tr.Thread(j.To).Name, what)
		} else {
			fmt.Fprintf(&b, "  %8d ns  %d hops through %s (a %d ns convoy), ending on %q\n",
				j.T, run, what, last.T-j.T, tr.Thread(last.From).Name)
		}
		i += run
		hops++
		if maxHops > 0 && hops >= maxHops {
			fmt.Fprintf(&b, "  ... (%d more hops)\n", len(an.CP.JumpLog)-i)
			break
		}
	}
	fmt.Fprintf(&b, "  ends on %q at %d ns\n", tr.Thread(an.CP.LastThread).Name, tr.End())
	return b.String()
}
