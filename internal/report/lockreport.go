package report

import (
	"fmt"
	"io"

	"critlock/internal/core"
)

// LockReport renders the per-lock statistics of an analysis in the
// paper's two-family layout:
//
//	TYPE 1 (critical lock analysis):   CP Time %, Invocation # on CP,
//	    Cont. Prob. on CP %, increase factors;
//	TYPE 2 (previous approaches):      Wait Time %, Avg. Invo. #,
//	    Avg. Cont. Prob %, Avg. Hold Time %.
//
// topN ≤ 0 lists every lock.
func LockReport(an *core.Analysis, topN int) *Table {
	t := NewTable(
		"",
		"Lock", "Critical",
		"CP Time %", "Invo. # on CP", "Cont. Prob. on CP %",
		"Incr. Invo.", "Incr. CS Size",
		"Wait Time %", "Avg. Invo. #", "Avg. Cont. Prob %", "Avg. Hold Time %",
	)
	locks := an.Locks
	if topN > 0 && topN < len(locks) {
		locks = locks[:topN]
	}
	for _, l := range locks {
		crit := "no"
		if l.Critical {
			crit = "yes"
		}
		t.AddRow(
			l.Name, crit,
			Pct(l.CPTimePct), fmt.Sprint(l.InvocationsOnCP), Pct(l.ContProbOnCP),
			F2(l.InvIncrease), F2(l.SizeIncrease),
			Pct(l.WaitTimePct), F2(l.AvgInvPerThread), Pct(l.AvgContProb), Pct(l.AvgHoldTimePct),
		)
	}
	return t
}

// Summary writes the whole-run header: workload, thread count,
// critical path composition and coverage.
func Summary(w io.Writer, an *core.Analysis) {
	tr := an.Trace
	fmt.Fprintf(w, "workload:  %s (backend %s)\n", tr.Meta["workload"], tr.Meta["backend"])
	fmt.Fprintf(w, "threads:   %d   events: %d   mutexes: %d\n",
		an.Totals.Threads, an.Totals.Events, an.Totals.Mutexes)
	fmt.Fprintf(w, "wall time: %d ns   critical path: %d ns (coverage %.1f%%)\n",
		an.CP.WallTime, an.CP.Length, 100*an.CP.Coverage())
	fmt.Fprintf(w, "CP pieces: %d   cross-thread jumps: %d   unattributed wait on CP: %d ns\n",
		len(an.CP.Pieces), an.CP.Jumps, an.CP.WaitTime)
	fmt.Fprintf(w, "lock invocations: %d (%d contended)   total lock wait: %d ns\n",
		an.Totals.Invocations, an.Totals.ContendedInvs, an.Totals.TotalLockWait)
	crit := an.CriticalLocks()
	fmt.Fprintf(w, "critical locks: %d of %d\n", len(crit), an.Totals.Mutexes)
	if an.Totals.Channels > 0 {
		fmt.Fprintf(w, "channels: %d   total channel wait: %d ns\n",
			an.Totals.Channels, an.Totals.TotalChanWait)
	}
}

// ThreadReport renders per-thread statistics.
func ThreadReport(an *core.Analysis) *Table {
	t := NewTable("",
		"Thread", "Lifetime ns", "On CP ns", "CP %",
		"Lock Wait", "Lock Hold", "Barrier Wait", "Cond Wait", "Chan Wait", "Invocations")
	for _, ts := range an.Threads {
		cpPct := 0.0
		if an.CP.Length > 0 {
			cpPct = 100 * float64(ts.TimeOnCP) / float64(an.CP.Length)
		}
		t.AddRow(
			ts.Name,
			fmt.Sprint(ts.Lifetime), fmt.Sprint(ts.TimeOnCP), Pct(cpPct),
			fmt.Sprint(ts.LockWait), fmt.Sprint(ts.LockHold),
			fmt.Sprint(ts.BarrierWait), fmt.Sprint(ts.CondWait),
			fmt.Sprint(ts.ChanWait), fmt.Sprint(ts.Invocations),
		)
	}
	return t
}
