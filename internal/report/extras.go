package report

import (
	"fmt"

	"critlock/internal/core"
)

// WindowReport renders per-time-window lock criticality: which lock
// dominates the critical path in each slice of the run.
func WindowReport(an *core.Analysis, n int) *Table {
	t := NewTable("",
		"Window", "Time range ns", "Path time ns", "Top lock", "Top lock share", "Locks on path")
	for i, w := range an.Windows(n) {
		top := w.Top()
		t.AddRow(
			fmt.Sprint(i),
			fmt.Sprintf("%d..%d", w.From, w.To),
			fmt.Sprint(w.PathTime),
			top.Name,
			Pct(top.PctOfWindow),
			fmt.Sprint(len(w.Locks)),
		)
	}
	return t
}

// CompositionReport renders the critical path's breakdown.
func CompositionReport(an *core.Analysis) *Table {
	c := an.Composition()
	pct := func(v int64) string {
		if c.Total <= 0 {
			return Pct(0)
		}
		return Pct(100 * float64(v) / float64(c.Total))
	}
	t := NewTable("", "Critical path component", "Time ns", "Share")
	t.AddRow("inside critical sections", fmt.Sprint(c.LockHold), pct(int64(c.LockHold)))
	t.AddRow("compute outside critical sections", fmt.Sprint(c.Compute), pct(int64(c.Compute)))
	t.AddRow("unattributed wait", fmt.Sprint(c.Wait), pct(int64(c.Wait)))
	t.AddRow("total", fmt.Sprint(c.Total), Pct(100))
	return t
}

// PhaseReport renders the run segmented by dominant critical lock.
func PhaseReport(an *core.Analysis, resolution int) *Table {
	t := NewTable("", "Phase", "Time range ns", "Dominant lock", "Share of phase path")
	for i, p := range an.Phases(resolution) {
		t.AddRow(fmt.Sprint(i), fmt.Sprintf("%d..%d", p.From, p.To), p.Top, Pct(p.TopPct))
	}
	return t
}

// SlackReport renders locks by their distance from the critical path
// (0 = on it; small = next bottleneck candidates).
func SlackReport(sa *core.SlackAnalysis, topN int) *Table {
	t := NewTable("", "Lock", "Min slack ns", "On critical path")
	locks := sa.Locks
	if topN > 0 && topN < len(locks) {
		locks = locks[:topN]
	}
	for _, l := range locks {
		on := "no"
		if l.OnCP {
			on = "yes"
		}
		t.AddRow(l.Name, fmt.Sprint(l.MinSlack), on)
	}
	return t
}

// LockOrderReport renders the acquisition-order graph and any
// potential deadlock cycles.
func LockOrderReport(lo *core.LockOrder) *Table {
	t := NewTable("", "Held lock", "Then acquired", "Times")
	for _, e := range lo.Edges {
		t.AddRow(e.FromName, e.ToName, fmt.Sprint(e.Count))
	}
	return t
}
