package core

import (
	"fmt"

	"critlock/internal/trace"
)

// invocation is one critical section: acquire/obtain/release indices
// into the trace's event slice plus derived timing.
type invocation struct {
	lock       trace.ObjID
	thread     trace.ThreadID
	acquireIdx int32
	obtainIdx  int32
	releaseIdx int32 // -1 if the trace ends mid-hold
	acqT       trace.Time
	obtT       trace.Time
	relT       trace.Time
	contended  bool
	shared     bool
}

func (inv *invocation) wait() trace.Time { return inv.obtT - inv.acqT }
func (inv *invocation) hold() trace.Time { return inv.relT - inv.obtT }

// index holds everything the walk and the metric pass need: per-thread
// event sequences, waker edges for unblock events, and extracted lock
// invocations.
//
// All large slices are reusable across analyses: buildIndexInto grows
// them in place and the per-thread lists are carved out of single flat
// backing arrays (two allocations instead of 2·threads), so a warm
// Analyzer re-analyzes with near-zero index allocation.
type index struct {
	// thrEvents[tid] lists global event indices of thread tid in time
	// order.
	thrEvents [][]int32
	// posInThread[i] is the position of event i within its thread's
	// sequence.
	posInThread []int32
	// waker[i] is the global index of the event that released the
	// blocked thread at unblock event i, or -1.
	waker []int32
	// blocked[i] reports that event i is an unblock event whose
	// preceding interval was a wait.
	blocked []bool
	// invocations, in global obtain order.
	invocations []invocation
	// invsByThread[tid] indexes invocations per thread, in obtain
	// order.
	invsByThread [][]int32
	// exitIdx[tid] is the global index of the thread's exit event, or
	// -1 if it never exited (truncated trace).
	exitIdx []int32
	// startIdx[tid] is the global index of the thread's start event.
	startIdx []int32

	// Reusable backing storage and scratch (never read outside
	// buildIndexInto).
	thrFlat     []int32 // backing array carved into thrEvents
	invsFlat    []int32 // backing array carved into invsByThread
	evCounts    []int   // events per thread
	acqCounts   []int   // lock acquires per thread
	lastRelease []int32 // per-object last release event
	joinBeginT  []trace.Time
	createOf    []int32
	departs     []pendingDepart
}

// pendingDepart is a blocked barrier depart awaiting the post-pass.
type pendingDepart struct {
	idx     int32
	obj     trace.ObjID
	thread  trace.ThreadID
	episode int
}

// chanPairing resolves channel wakers for one channel by FIFO pairing
// of completion events. Both backends stamp a blocked operation's
// completion after the waker's own event (waker first, wakee second at
// the same instant), so every waker is already in the past when the
// blocked completion is scanned and resolution needs no deferred
// patches:
//
//   - value receive #r is delivered by send #r (the value it takes,
//     whether handed off directly or drained from the buffer);
//   - send #s on a capacity-C channel is admitted by receive #(s-C),
//     the receive that freed its buffer slot (for C = 0, the
//     rendezvous partner #s itself);
//   - a receive carrying ChanArgClosed consumed no send: its waker is
//     the close event.
//
// Completed pairings are pruned as the counters advance, so live state
// is O(outstanding operations), never O(trace) — shared by the
// in-memory index and streaming pass 1, which keeps the two passes'
// waker edges identical by construction.
type chanPairing struct {
	capacity int
	// sendIdx[s-sendBase] is the event index of send completion #s;
	// entries below recvs are consumed and pruned.
	sendIdx  []int32
	sendBase int
	sends    int
	// recvIdx[r-recvBase] is the event index of value receive #r;
	// entries below sends-capacity can no longer admit a sender.
	recvIdx   []int32
	recvBase  int
	recvs     int
	lastClose int32
}

func newChanPairing(capacity int) *chanPairing {
	if capacity < 0 {
		capacity = 0
	}
	return &chanPairing{capacity: capacity, lastClose: -1}
}

func (cs *chanPairing) sendAt(s int) int32 {
	if s < cs.sendBase || s >= cs.sends {
		return -1
	}
	return cs.sendIdx[s-cs.sendBase]
}

func (cs *chanPairing) recvAt(r int) int32 {
	if r < cs.recvBase || r >= cs.recvs {
		return -1
	}
	return cs.recvIdx[r-cs.recvBase]
}

// send records send completion #sends at event index i and returns the
// waker for blocked sends (or -1).
func (cs *chanPairing) send(i int32, blocked bool) int32 {
	waker := int32(-1)
	if blocked {
		waker = cs.recvAt(cs.sends - cs.capacity)
	}
	cs.sendIdx = append(cs.sendIdx, i)
	cs.sends++
	// Receives numbered below sends-capacity can no longer be anyone's
	// waker; drop them from the front.
	for cs.recvBase < cs.sends-cs.capacity && len(cs.recvIdx) > 0 {
		cs.recvIdx = cs.recvIdx[1:]
		cs.recvBase++
	}
	return waker
}

// recv records a receive completion at event index i and returns the
// waker for blocked receives (or -1). Closed receives consumed no send
// and advance no counter.
func (cs *chanPairing) recv(i int32, blocked, closed bool) int32 {
	if closed {
		if blocked {
			return cs.lastClose
		}
		return -1
	}
	waker := int32(-1)
	if blocked {
		waker = cs.sendAt(cs.recvs)
	}
	cs.recvIdx = append(cs.recvIdx, i)
	cs.recvs++
	// Sends numbered below recvs are paired; drop them from the front.
	for cs.sendBase < cs.recvs && len(cs.sendIdx) > 0 {
		cs.sendIdx = cs.sendIdx[1:]
		cs.sendBase++
	}
	return waker
}

func (cs *chanPairing) close(i int32) { cs.lastClose = i }

// grow returns s with length n, reusing its backing array when the
// capacity suffices. Contents are unspecified — callers refill.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// release frees the index's retained storage.
func (idx *index) release() { *idx = index{} }

// buildIndex allocates a fresh index for tr — the one-shot form for
// callers that keep the index alive (e.g. slack analysis); the
// analysis hot path reuses storage via buildIndexInto.
func buildIndex(tr *trace.Trace) (*index, error) {
	idx := &index{}
	if err := buildIndexInto(idx, tr); err != nil {
		return nil, err
	}
	return idx, nil
}

// buildIndexInto performs one forward pass over the events, resolving
// wakers per the paper §IV.B: "For locks, the thread holding the same
// lock adjacently before the blocked thread is the desired one. For
// barriers, the thread reaching the same barrier lastly is the desired
// one. For condition variables, the thread signaling the same condition
// variable to the blocked thread is the desired one."
//
// Channels follow the same discipline: a blocked receive's waker is
// the send that delivered its value, a blocked send's is the receive
// that freed its buffer slot, and a receive released by close is woken
// by the closer (see chanPairing).
//
// The index's storage is reused across calls; everything is re-derived
// from tr.
func buildIndexInto(idx *index, tr *trace.Trace) error {
	n := len(tr.Events)
	nThreads := len(tr.Threads)

	idx.posInThread = grow(idx.posInThread, n)
	idx.waker = grow(idx.waker, n)
	idx.blocked = grow(idx.blocked, n)
	idx.thrEvents = grow(idx.thrEvents, nThreads)
	idx.invsByThread = grow(idx.invsByThread, nThreads)
	idx.exitIdx = grow(idx.exitIdx, nThreads)
	idx.startIdx = grow(idx.startIdx, nThreads)
	for i := range idx.waker {
		idx.waker[i] = -1
		idx.blocked[i] = false
	}
	for tid := 0; tid < nThreads; tid++ {
		idx.exitIdx[tid] = -1
		idx.startIdx[tid] = -1
	}

	// Counting pass: events and acquires per thread, so the per-thread
	// lists and the invocation store are sized exactly once up front
	// (the dominant allocation cost on large traces).
	idx.evCounts = grow(idx.evCounts, nThreads)
	idx.acqCounts = grow(idx.acqCounts, nThreads)
	for tid := 0; tid < nThreads; tid++ {
		idx.evCounts[tid], idx.acqCounts[tid] = 0, 0
	}
	acquires := 0
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Thread >= 0 && int(e.Thread) < nThreads {
			idx.evCounts[e.Thread]++
			if e.Kind == trace.EvLockAcquire {
				idx.acqCounts[e.Thread]++
			}
		}
		if e.Kind == trace.EvLockAcquire {
			acquires++
		}
	}
	// Carve the per-thread lists out of flat backing arrays.
	idx.thrFlat = grow(idx.thrFlat, n)
	idx.invsFlat = grow(idx.invsFlat, acquires)
	evOff, acqOff := 0, 0
	for tid := 0; tid < nThreads; tid++ {
		c := idx.evCounts[tid]
		idx.thrEvents[tid] = idx.thrFlat[evOff : evOff : evOff+c]
		evOff += c
		c = idx.acqCounts[tid]
		idx.invsByThread[tid] = idx.invsFlat[acqOff : acqOff : acqOff+c]
		acqOff += c
	}
	if cap(idx.invocations) < acquires {
		idx.invocations = make([]invocation, 0, acquires)
	} else {
		idx.invocations = idx.invocations[:0]
	}

	// Per-mutex: index of the last release event seen (dense by
	// ObjID).
	idx.lastRelease = grow(idx.lastRelease, len(tr.Objects))
	lastRelease := idx.lastRelease
	for i := range lastRelease {
		lastRelease[i] = -1
	}
	// Per-mutex+thread: pending invocation under construction.
	type pendKey struct {
		lock   trace.ObjID
		thread trace.ThreadID
	}
	pending := map[pendKey]int32{} // → index into idx.invocations

	// Per-barrier episode tracking. Each (barrier, thread) pairs its
	// k-th arrive with its k-th depart; the waker of a blocked depart
	// is the last arrive of the same episode.
	type barrierState struct {
		arrivals     int
		lastArriveIn map[int]int32 // episode → last arrive event idx
		arriveEp     map[trace.ThreadID][]int
		departCount  map[trace.ThreadID]int
	}
	barriers := map[trace.ObjID]*barrierState{}
	barState := func(o trace.ObjID) *barrierState {
		bs := barriers[o]
		if bs == nil {
			bs = &barrierState{
				lastArriveIn: map[int]int32{},
				arriveEp:     map[trace.ThreadID][]int{},
				departCount:  map[trace.ThreadID]int{},
			}
			barriers[o] = bs
		}
		return bs
	}

	// Per-cond FIFO of blocked waiters and resolved wakers.
	type condState struct {
		waiting []trace.ThreadID
		wakerOf map[trace.ThreadID]int32
	}
	conds := map[trace.ObjID]*condState{}
	condStateOf := func(o trace.ObjID) *condState {
		cs := conds[o]
		if cs == nil {
			cs = &condState{wakerOf: map[trace.ThreadID]int32{}}
			conds[o] = cs
		}
		return cs
	}

	// Per-channel FIFO pairing of completions with their wakers.
	chans := map[trace.ObjID]*chanPairing{}
	chanOf := func(o trace.ObjID) *chanPairing {
		cs := chans[o]
		if cs == nil {
			cs = newChanPairing(tr.Object(o).Parties)
			chans[o] = cs
		}
		return cs
	}

	// joinBeginT[(joiner)] stamps the last join-begin per thread; the
	// join-end is blocked iff the joinee exited after it.
	idx.joinBeginT = grow(idx.joinBeginT, nThreads)
	joinBeginT := idx.joinBeginT
	for i := range joinBeginT {
		joinBeginT[i] = 0
	}

	// Blocked barrier departs awaiting the post-pass.
	departs := idx.departs[:0]

	for i32 := 0; i32 < n; i32++ {
		e := tr.Events[i32]
		i := int32(i32)
		if e.Thread < 0 || int(e.Thread) >= nThreads {
			return fmt.Errorf("core: event %d references thread %d out of range", i, e.Thread)
		}
		idx.posInThread[i] = int32(len(idx.thrEvents[e.Thread]))
		idx.thrEvents[e.Thread] = append(idx.thrEvents[e.Thread], i)

		switch e.Kind {
		case trace.EvThreadStart:
			idx.startIdx[e.Thread] = i
		case trace.EvThreadExit:
			idx.exitIdx[e.Thread] = i

		case trace.EvLockAcquire:
			inv := invocation{
				lock: e.Obj, thread: e.Thread,
				acquireIdx: i, obtainIdx: -1, releaseIdx: -1,
				acqT: e.T,
			}
			idx.invocations = append(idx.invocations, inv)
			pending[pendKey{e.Obj, e.Thread}] = int32(len(idx.invocations) - 1)

		case trace.EvLockObtain:
			pi, ok := pending[pendKey{e.Obj, e.Thread}]
			if !ok {
				return fmt.Errorf("core: event %d: obtain of %q without acquire", i, tr.ObjName(e.Obj))
			}
			inv := &idx.invocations[pi]
			inv.obtainIdx = i
			inv.obtT = e.T
			// The backend's contended flag is authoritative: on live
			// traces obtT can trail acqT by the instrumentation's own
			// nanoseconds even for an uncontended try-lock.
			inv.contended = e.Contended()
			inv.shared = e.Shared()
			if inv.contended {
				idx.blocked[i] = true
				if int(e.Obj) < len(lastRelease) {
					if rel := lastRelease[e.Obj]; rel >= 0 {
						idx.waker[i] = rel
					}
				}
			}

		case trace.EvLockRelease:
			pi, ok := pending[pendKey{e.Obj, e.Thread}]
			if !ok {
				return fmt.Errorf("core: event %d: release of %q without hold", i, tr.ObjName(e.Obj))
			}
			inv := &idx.invocations[pi]
			inv.releaseIdx = i
			inv.relT = e.T
			delete(pending, pendKey{e.Obj, e.Thread})
			if int(e.Obj) < len(lastRelease) {
				lastRelease[e.Obj] = i
			}

		case trace.EvBarrierArrive:
			bs := barState(e.Obj)
			parties := tr.Object(e.Obj).Parties
			ep := 0
			if parties > 0 {
				ep = bs.arrivals / parties
			}
			bs.arrivals++
			bs.lastArriveIn[ep] = i
			bs.arriveEp[e.Thread] = append(bs.arriveEp[e.Thread], ep)

		case trace.EvBarrierDepart:
			// Waker resolution is deferred to a post-pass: with equal
			// timestamps, a blocked thread's depart can sort before
			// the last arriver's arrive event.
			bs := barState(e.Obj)
			k := bs.departCount[e.Thread]
			bs.departCount[e.Thread] = k + 1
			eps := bs.arriveEp[e.Thread]
			if e.Arg == 0 && k < len(eps) {
				departs = append(departs, pendingDepart{idx: i, obj: e.Obj, thread: e.Thread, episode: eps[k]})
			}

		case trace.EvCondWaitBegin:
			cs := condStateOf(e.Obj)
			cs.waiting = append(cs.waiting, e.Thread)

		case trace.EvCondSignal:
			cs := condStateOf(e.Obj)
			if len(cs.waiting) > 0 {
				cs.wakerOf[cs.waiting[0]] = i
				cs.waiting = cs.waiting[1:]
			}

		case trace.EvCondBroadcast:
			cs := condStateOf(e.Obj)
			for _, th := range cs.waiting {
				cs.wakerOf[th] = i
			}
			cs.waiting = cs.waiting[:0]

		case trace.EvCondWaitEnd:
			cs := condStateOf(e.Obj)
			idx.blocked[i] = true
			if w, ok := cs.wakerOf[e.Thread]; ok {
				idx.waker[i] = w
				delete(cs.wakerOf, e.Thread)
			} else {
				// Spurious wakeup or unmatched signal: remove from the
				// waiting queue if still present, leave waker unknown.
				for j, th := range cs.waiting {
					if th == e.Thread {
						cs.waiting = append(cs.waiting[:j], cs.waiting[j+1:]...)
						break
					}
				}
			}

		case trace.EvChanSend:
			blocked := e.Arg&trace.ChanArgBlocked != 0
			w := chanOf(e.Obj).send(i, blocked)
			if blocked {
				idx.blocked[i] = true
				if w >= 0 {
					idx.waker[i] = w
				}
			}

		case trace.EvChanRecv:
			blocked := e.Arg&trace.ChanArgBlocked != 0
			w := chanOf(e.Obj).recv(i, blocked, e.Arg&trace.ChanArgClosed != 0)
			if blocked {
				idx.blocked[i] = true
				if w >= 0 {
					idx.waker[i] = w
				}
			}

		case trace.EvChanClose:
			chanOf(e.Obj).close(i)

		case trace.EvJoinBegin:
			joinBeginT[e.Thread] = e.T

		case trace.EvJoinEnd:
			target := trace.ThreadID(e.Arg)
			if int(target) >= 0 && int(target) < nThreads {
				if ex := idx.exitIdx[target]; ex >= 0 {
					if tr.Events[ex].T > joinBeginT[e.Thread] {
						idx.blocked[i] = true
						idx.waker[i] = ex
					}
				}
			}

		case trace.EvThreadCreate:
			// The created thread's start event resolves its waker
			// lazily below (create always precedes start in time).
		}
	}
	idx.departs = departs

	// Barrier post-pass: now that all arrivals are known, a blocked
	// depart's waker is its episode's last arrive (by the thread that
	// "reached the same barrier lastly", paper §IV.B).
	for _, d := range departs {
		idx.blocked[d.idx] = true
		bs := barriers[d.obj]
		if la, ok := bs.lastArriveIn[d.episode]; ok && tr.Events[la].Thread != d.thread {
			idx.waker[d.idx] = la
		}
	}

	// Thread-start wakers: the creator's matching create event. Scan
	// creates once.
	idx.createOf = grow(idx.createOf, nThreads)
	createOf := idx.createOf
	for i := range createOf {
		createOf[i] = -1
	}
	for i32 := 0; i32 < n; i32++ {
		e := tr.Events[i32]
		if e.Kind == trace.EvThreadCreate {
			child := trace.ThreadID(e.Arg)
			if int(child) >= 0 && int(child) < nThreads && createOf[child] == -1 {
				createOf[child] = int32(i32)
			}
		}
	}
	for tid := 0; tid < nThreads; tid++ {
		si := idx.startIdx[tid]
		if si < 0 {
			continue
		}
		if c := createOf[tid]; c >= 0 {
			idx.blocked[si] = true
			idx.waker[si] = c
		}
	}

	// Index invocations by thread (they are already in acquire order;
	// obtain order equals acquire order per thread since a thread has
	// at most one pending acquire per lock and acquires resolve FIFO
	// within the thread).
	for pi := range idx.invocations {
		inv := &idx.invocations[pi]
		if inv.obtainIdx < 0 {
			continue // acquire without obtain (truncated); skip
		}
		if inv.releaseIdx < 0 {
			inv.relT = tr.End() // held to the end of the trace
		}
		idx.invsByThread[inv.thread] = append(idx.invsByThread[inv.thread], int32(pi))
	}
	return nil
}

// prevInThread returns the global index of the event preceding i on
// the same thread, or -1.
func (idx *index) prevInThread(tr *trace.Trace, i int32) int32 {
	e := tr.Events[i]
	pos := idx.posInThread[i]
	if pos == 0 {
		return -1
	}
	return idx.thrEvents[e.Thread][pos-1]
}
