package core

import (
	"fmt"

	"critlock/internal/trace"
)

// walk implements the backward critical-path traversal of the paper's
// Fig. 2:
//
//	seg  = find_the_last_segment();
//	stop = find_the_first_segment();
//	while (seg != stop) {
//	    if (segment_blocked_in_the_beginning(seg))
//	        seg = find_the_segment_released_me(seg);
//	    else
//	        seg = find_the_previous_segment(seg);
//	}
//
// Events stand in for segment boundaries: the "segment" ending at event
// e is the interval [prev(e).T, e.T] on e's thread. If e is an unblock
// event (contended obtain, barrier depart of a non-last arriver, cond
// wait end, blocked join end, thread start), that interval was idle and
// the walk jumps to the waker event resolved by buildIndex; otherwise
// the interval is recorded as a critical-path piece and the walk steps
// back on the same thread.
func walk(tr *trace.Trace, idx *index) (*CriticalPath, error) {
	// Anchor: the exit event of the last-finishing thread; fall back
	// to the globally last event for truncated traces.
	anchor := int32(-1)
	for tid := range idx.exitIdx {
		ei := idx.exitIdx[tid]
		if ei < 0 {
			continue
		}
		if anchor < 0 || later(tr, ei, anchor) {
			anchor = ei
		}
	}
	if anchor < 0 {
		anchor = int32(len(tr.Events) - 1)
	}

	cp := &CriticalPath{
		LastThread: tr.Events[anchor].Thread,
		WallTime:   tr.Duration(),
		// A piece per few events is typical; pre-size generously to
		// avoid growth copies on large traces.
		Pieces: make([]Piece, 0, len(tr.Events)/3+8),
	}

	cur := anchor
	// Each iteration either jumps (always followed by a non-jump step,
	// since waker events are never unblock events) or consumes one
	// per-thread predecessor; 2·|events|+2 therefore bounds any
	// terminating walk, and the guard converts a (theoretically
	// impossible) cycle into an error instead of a hang.
	maxSteps := 2*len(tr.Events) + 2
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("core: critical-path walk did not terminate after %d steps", steps)
		}
		cp.Steps = steps
		e := tr.Events[cur]

		if e.Kind == trace.EvThreadStart {
			if idx.waker[cur] < 0 {
				break // root thread's start: the program's beginning
			}
			cp.Jumps++
			cp.JumpLog = append(cp.JumpLog, Jump{
				T: e.T, From: e.Thread, To: tr.Events[idx.waker[cur]].Thread,
				Kind: JumpStart, Obj: trace.NoObj,
			})
			cur = idx.waker[cur]
			continue
		}

		prev := idx.prevInThread(tr, cur)
		if prev < 0 {
			break // malformed thread without a start event
		}

		if idx.blocked[cur] && idx.waker[cur] >= 0 {
			// A condition wait that had to re-acquire a contended
			// mutex has two dependencies: the signaller and the
			// previous mutex holder. The binding one is whichever
			// released the thread last; when that is the mutex (its
			// obtain directly precedes the wait-end, at or after the
			// signal), step back so the obtain's own jump routes the
			// path through the releaser without losing time.
			if e.Kind == trace.EvCondWaitEnd {
				pe := tr.Events[prev]
				if pe.Kind == trace.EvLockObtain && idx.blocked[prev] && idx.waker[prev] >= 0 &&
					pe.T >= tr.Events[idx.waker[cur]].T {
					cur = prev
					continue
				}
			}
			cp.Jumps++
			cp.JumpLog = append(cp.JumpLog, Jump{
				T: e.T, From: e.Thread, To: tr.Events[idx.waker[cur]].Thread,
				Kind: jumpKindOf(e.Kind), Obj: e.Obj,
				Wait: e.T - tr.Events[prev].T,
			})
			cur = idx.waker[cur]
			continue
		}

		from, to := tr.Events[prev].T, e.T
		if to > from {
			kind := PieceExec
			if idx.blocked[cur] {
				// Blocked but waker unknown: the wait itself sits on
				// the critical path.
				kind = PieceWait
			}
			cp.Pieces = append(cp.Pieces, Piece{Thread: e.Thread, From: from, To: to, Kind: kind})
		}
		cur = prev
	}

	// Pieces and jumps were generated back-to-front; reverse into
	// forward order.
	for i, j := 0, len(cp.Pieces)-1; i < j; i, j = i+1, j-1 {
		cp.Pieces[i], cp.Pieces[j] = cp.Pieces[j], cp.Pieces[i]
	}
	for i, j := 0, len(cp.JumpLog)-1; i < j; i, j = i+1, j-1 {
		cp.JumpLog[i], cp.JumpLog[j] = cp.JumpLog[j], cp.JumpLog[i]
	}
	for _, p := range cp.Pieces {
		cp.Length += p.Dur()
		switch p.Kind {
		case PieceExec:
			cp.ExecTime += p.Dur()
		case PieceWait:
			cp.WaitTime += p.Dur()
		}
	}
	return cp, nil
}

// jumpKindOf maps an unblock event to its dependency category.
func jumpKindOf(k trace.EventKind) JumpKind {
	switch k {
	case trace.EvLockObtain:
		return JumpLock
	case trace.EvBarrierDepart:
		return JumpBarrier
	case trace.EvCondWaitEnd:
		return JumpCond
	case trace.EvJoinEnd:
		return JumpJoin
	case trace.EvThreadStart:
		return JumpStart
	case trace.EvChanSend, trace.EvChanRecv:
		return JumpChan
	}
	return 0
}

// later reports whether event a is strictly after event b in (T, Seq)
// order.
func later(tr *trace.Trace, a, b int32) bool {
	ea, eb := tr.Events[a], tr.Events[b]
	if ea.T != eb.T {
		return ea.T > eb.T
	}
	return ea.Seq > eb.Seq
}
