package core_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"critlock/internal/core"
	"critlock/internal/segment"
	"critlock/internal/sim"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// simTrace runs a workload on the simulator and returns its trace.
func simTrace(t *testing.T, name string, threads int, seed int64) *trace.Trace {
	t.Helper()
	spec, err := workloads.Get(name)
	if err != nil {
		t.Fatalf("workloads.Get(%q): %v", name, err)
	}
	rt := sim.New(sim.Config{Contexts: 8, Seed: seed})
	tr, _, err := workloads.Run(rt, spec, workloads.Params{Threads: threads, Seed: seed, Scale: 0.25})
	if err != nil {
		t.Fatalf("workloads.Run(%q): %v", name, err)
	}
	return tr
}

// segmented writes tr under dir with the given segment/frame sizes and
// opens it back, memory-mapped or buffered per noMmap.
func segmented(t *testing.T, tr *trace.Trace, segEvents, frameEvents int, noMmap bool) *segment.Reader {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "segs")
	err := segment.WriteTrace(dir, tr, segment.Options{SegmentEvents: segEvents, FrameEvents: frameEvents})
	if err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	r, err := segment.OpenWith(dir, segment.ReadOptions{NoMmap: noMmap})
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	if r.NumEvents() != len(tr.Events) {
		t.Fatalf("segmented trace has %d events, want %d", r.NumEvents(), len(tr.Events))
	}
	return r
}

// requireIdentical asserts that the streaming analysis matches the
// in-memory one on every exported result.
func requireIdentical(t *testing.T, mem, str *core.Analysis, composition bool) {
	t.Helper()
	if !reflect.DeepEqual(mem.CP, str.CP) {
		t.Errorf("critical path differs:\n mem: len=%d exec=%d wait=%d steps=%d jumps=%d pieces=%d\n str: len=%d exec=%d wait=%d steps=%d jumps=%d pieces=%d",
			mem.CP.Length, mem.CP.ExecTime, mem.CP.WaitTime, mem.CP.Steps, mem.CP.Jumps, len(mem.CP.Pieces),
			str.CP.Length, str.CP.ExecTime, str.CP.WaitTime, str.CP.Steps, str.CP.Jumps, len(str.CP.Pieces))
	}
	if !reflect.DeepEqual(mem.Locks, str.Locks) {
		for i := range mem.Locks {
			if i >= len(str.Locks) || !reflect.DeepEqual(mem.Locks[i], str.Locks[i]) {
				t.Errorf("lock %d differs:\n mem: %+v", i, mem.Locks[i])
				if i < len(str.Locks) {
					t.Errorf(" str: %+v", str.Locks[i])
				}
				break
			}
		}
		if len(mem.Locks) != len(str.Locks) {
			t.Errorf("lock count differs: mem=%d str=%d", len(mem.Locks), len(str.Locks))
		}
	}
	if !reflect.DeepEqual(mem.Threads, str.Threads) {
		for i := range mem.Threads {
			if i >= len(str.Threads) || !reflect.DeepEqual(mem.Threads[i], str.Threads[i]) {
				t.Errorf("thread %d differs:\n mem: %+v", i, mem.Threads[i])
				if i < len(str.Threads) {
					t.Errorf(" str: %+v", str.Threads[i])
				}
				break
			}
		}
	}
	if !reflect.DeepEqual(mem.Chans, str.Chans) {
		for i := range mem.Chans {
			if i >= len(str.Chans) || !reflect.DeepEqual(mem.Chans[i], str.Chans[i]) {
				t.Errorf("chan %d differs:\n mem: %+v", i, mem.Chans[i])
				if i < len(str.Chans) {
					t.Errorf(" str: %+v", str.Chans[i])
				}
				break
			}
		}
		if len(mem.Chans) != len(str.Chans) {
			t.Errorf("chan count differs: mem=%d str=%d", len(mem.Chans), len(str.Chans))
		}
	}
	if !reflect.DeepEqual(mem.Totals, str.Totals) {
		t.Errorf("totals differ:\n mem: %+v\n str: %+v", mem.Totals, str.Totals)
	}
	if composition {
		if !reflect.DeepEqual(mem.Composition(), str.Composition()) {
			t.Errorf("composition differs")
		}
	}
}

// TestAnalyzeStreamMatchesInMemory is the differential oracle for the
// tentpole invariant: AnalyzeStream over segments is bit-identical to
// Analyze over the same events, across workloads, seeds, segment
// sizes (including the pathological 1-event segments), walk-window
// sizes, pass parallelism, mmap on/off and annotation spill mode.
func TestAnalyzeStreamMatchesInMemory(t *testing.T) {
	type cfg struct {
		workload string
		threads  int
		seed     int64
	}
	cases := []cfg{
		{"micro", 4, 1},
		{"micro", 8, 2},
		{"micro", 8, 3},
		{"radiosity", 8, 1},
		{"tsp", 6, 2},
		{"waternsq", 8, 1},
		{"uts", 6, 1},
		// Channel workloads: send/recv/select wakers must stream
		// identically to the in-memory index.
		{"pipeline", 4, 1},
		{"pipeline", 6, 2},
		{"fanin", 4, 1},
		{"fanin", 6, 3},
	}
	for _, c := range cases {
		c := c
		t.Run(c.workload+"/"+string(rune('0'+c.threads))+"t", func(t *testing.T) {
			t.Parallel()
			tr := simTrace(t, c.workload, c.threads, c.seed)
			mem, err := core.Analyze(tr, core.DefaultOptions())
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			n := len(tr.Events)

			segSizes := []int{n/7 + 1, 64}
			if n < 3000 {
				// Small traces earn the pathological shapes.
				segSizes = append(segSizes, 7, 1)
			}
			check := func(r *segment.Reader, cfg core.Config, label string) {
				t.Helper()
				str, err := core.AnalyzeStream(r, cfg)
				if err != nil {
					t.Fatalf("AnalyzeStream(%s): %v", label, err)
				}
				requireIdentical(t, mem, str, true)
				if t.Failed() {
					t.Fatalf("divergence at %s", label)
				}
			}
			for _, segEvents := range segSizes {
				for _, noMmap := range []bool{false, true} {
					r := segmented(t, tr, segEvents, 16, noMmap)
					for _, par := range []int{1, 2, 8} {
						check(r, core.Config{
							Options:          core.DefaultOptions(),
							CacheSegments:    2,
							Composition:      true,
							ParallelSegments: par,
						}, fmt.Sprintf("seg=%d mmap=%t par=%d", segEvents, !noMmap, par))
					}
				}
			}
			// Walk-window sweep (the backward walk is sequential at
			// any parallelism; vary its residency separately).
			r := segmented(t, tr, segSizes[0], 16, false)
			for _, window := range []int{1, 2, 4} {
				check(r, core.Config{
					Options:       core.DefaultOptions(),
					CacheSegments: window,
					Composition:   true,
				}, fmt.Sprintf("window=%d", window))
			}
			// Spill mode: a negative annotation budget forces the
			// temp-file path, sequential and parallel.
			for _, par := range []int{1, 8} {
				check(r, core.Config{
					Options:          core.DefaultOptions(),
					Composition:      true,
					ParallelSegments: par,
					AnnotationBudget: -1,
				}, fmt.Sprintf("spill par=%d", par))
			}
		})
	}
}

// TestAnalyzeStreamSpilledCollector exercises the full spill path: the
// collector spills per-thread runs to disk mid-run, the spiller merges
// them into segments, and the streaming analysis of the result matches
// the in-memory analysis of an identical unspilled run.
func TestAnalyzeStreamSpilledCollector(t *testing.T) {
	spec, err := workloads.Get("radiosity")
	if err != nil {
		t.Fatal(err)
	}
	params := workloads.Params{Threads: 8, Seed: 7, Scale: 0.25}

	// Reference: plain run, in-memory analysis.
	rt := sim.New(sim.Config{Contexts: 8, Seed: 7})
	tr, _, err := workloads.Run(rt, spec, params)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := core.Analyze(tr, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Same run again, with an aggressive spill threshold.
	dir := filepath.Join(t.TempDir(), "spill")
	sp, err := segment.NewSpiller(dir, segment.Options{SegmentEvents: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := sim.New(sim.Config{Contexts: 8, Seed: 7})
	rt2.Collector().SetSpill(sp, 256)
	if _, _, err := workloads.Run(rt2, spec, params); err != nil {
		t.Fatal(err)
	}
	r, err := sp.Finish(rt2.Collector())
	if err != nil {
		t.Fatalf("Spiller.Finish: %v", err)
	}
	if r.NumEvents() != len(tr.Events) {
		t.Fatalf("spilled trace has %d events, want %d", r.NumEvents(), len(tr.Events))
	}
	str, err := core.AnalyzeStream(r, core.Config{Options: core.DefaultOptions(), Composition: true})
	if err != nil {
		t.Fatalf("AnalyzeStream: %v", err)
	}
	requireIdentical(t, mem, str, true)

	// The spiller's reader supports concurrent loads too: the parallel
	// passes must agree byte-for-byte.
	par, err := core.AnalyzeStream(r, core.Config{Options: core.DefaultOptions(), Composition: true, ParallelSegments: 4})
	if err != nil {
		t.Fatalf("AnalyzeStream(par=4): %v", err)
	}
	requireIdentical(t, mem, par, true)
}

// TestAnalyzeStreamEmpty checks the empty-source contract.
func TestAnalyzeStreamEmpty(t *testing.T) {
	tr := simTrace(t, "micro", 4, 1)
	r := segmented(t, tr, 0, 0, false)
	// A reader over a real directory is never empty; exercise the
	// guard through a stub.
	if _, err := core.AnalyzeStream(emptySource{r}, core.DefaultConfig()); err != trace.ErrEmptyTrace {
		t.Fatalf("AnalyzeStream(empty) = %v, want ErrEmptyTrace", err)
	}
}

type emptySource struct{ *segment.Reader }

func (emptySource) NumEvents() int { return 0 }
