package core

import (
	"testing"

	"critlock/internal/trace"
)

func TestPredictorFig1(t *testing.T) {
	tr := fig1Trace()
	p := NewPredictor()
	p.ObserveAll(tr)

	an, err := AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: L2 is the critical lock.
	if got := tr.ObjName(p.Top()); got != an.Locks[0].Name {
		t.Errorf("predictor top = %s, ground truth = %s", got, an.Locks[0].Name)
	}
	// The naive wait ranking picks L4 — the paper's misleading metric.
	wait := p.WaitRanking()
	if got := tr.ObjName(wait[0].Lock); got != "L4" {
		t.Errorf("wait-based top = %s, want L4 (the misleading answer)", got)
	}
}

func TestPredictorUncontendedStillScores(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	m := b.Mutex("solo")
	b.Start(0, main)
	b.CS(main, m, 10, 10, 60)
	b.Exit(100, main)
	p := NewPredictor()
	p.ObserveAll(b.Trace())
	r := p.Ranking()
	// A single running thread: every held nanosecond is critical.
	if len(r) != 1 || r[0].Score != 50 {
		t.Errorf("ranking = %+v, want one lock scored 50", r)
	}
	if r[0].WaitSum != 0 {
		t.Errorf("wait sum = %d, want 0", r[0].WaitSum)
	}
}

func TestPredictorConvoyWeighting(t *testing.T) {
	// Two locks with equal cumulative hold; "hot" serializes three
	// threads (its holds run at low parallelism), "cold" is held while
	// everyone else runs — hot must score higher.
	b := trace.NewBuilder()
	t1 := b.Thread("t1", trace.NoThread)
	t2 := b.Thread("t2", t1)
	t3 := b.Thread("t3", t1)
	hot := b.Mutex("hot")
	cold := b.Mutex("cold")
	for _, th := range []trace.ThreadID{t1, t2, t3} {
		b.Start(0, th)
	}
	b.CS(t1, hot, 0, 0, 50) // t2 and t3 queue behind it
	b.CS(t2, hot, 1, 50, 60)
	b.CS(t3, hot, 2, 60, 70)
	b.CS(t1, cold, 60, 60, 110) // same cumulative hold, others running
	b.Exit(120, t1)
	b.Exit(120, t2)
	b.Exit(120, t3)
	p := NewPredictor()
	p.ObserveAll(b.Trace())
	r := p.Ranking()
	if got := r[0].Lock; got != hot {
		t.Errorf("top = %v, want hot (got ranking %+v)", got, r)
	}
	// hot's first hold ran nearly alone: [0,1] r=3, [1,2] r=2, [2,50]
	// r=1 → ≈ 48.8 of its 50ns were critical; the rest at r≥2.
	if r[0].Score < 50 {
		t.Errorf("hot score = %.1f, want > 50", r[0].Score)
	}
	var coldScore float64
	for _, pl := range r {
		if pl.Lock == cold {
			coldScore = pl.Score
		}
	}
	if coldScore >= r[0].Score/2 {
		t.Errorf("cold score %.1f not well below hot %.1f", coldScore, r[0].Score)
	}
}

// TestPredictorStragglerLock: an uncontended lock held by the one
// thread still running (the UTS stackLock[5] pattern) must outscore a
// contended lock whose traffic happened at full parallelism.
func TestPredictorStragglerLock(t *testing.T) {
	b := trace.NewBuilder()
	t1 := b.Thread("t1", trace.NoThread)
	t2 := b.Thread("t2", t1)
	t3 := b.Thread("t3", t1)
	busy := b.Mutex("busy")      // contended early, everyone alive
	straggle := b.Mutex("strag") // uncontended, held late by the last thread
	for _, th := range []trace.ThreadID{t1, t2, t3} {
		b.Start(0, th)
	}
	b.CS(t1, busy, 0, 0, 10)
	b.CS(t2, busy, 1, 10, 20)
	b.CS(t3, busy, 2, 20, 30)
	b.Exit(40, t1)
	b.Exit(40, t2)
	// t3 runs on alone, repeatedly taking its private lock.
	for i := trace.Time(0); i < 10; i++ {
		start := 40 + i*20
		b.CS(t3, straggle, start, start, start+8)
	}
	b.Exit(240, t3)
	p := NewPredictor()
	p.ObserveAll(b.Trace())
	if got := p.Top(); got != straggle {
		t.Errorf("top = %v, want the straggler's lock (%+v)", got, p.Ranking())
	}
}

func TestPredictorEmpty(t *testing.T) {
	p := NewPredictor()
	if p.Top() != trace.NoObj {
		t.Error("empty predictor has a top lock")
	}
	if len(p.Ranking()) != 0 {
		t.Error("empty predictor has rankings")
	}
}
