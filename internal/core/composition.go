package core

import (
	"slices"
	"sort"

	"critlock/internal/trace"
)

// interval is a half-open-ish [From, To] time span.
type interval struct {
	From, To trace.Time
}

func (iv interval) dur() trace.Time { return iv.To - iv.From }

// mergeIntervals unions overlapping/adjacent intervals in place and
// returns the merged, sorted slice.
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) < 2 {
		return ivs
	}
	slices.SortFunc(ivs, func(a, b interval) int {
		switch {
		case a.From < b.From:
			return -1
		case a.From > b.From:
			return 1
		}
		return 0
	})
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.From <= last.To {
			if iv.To > last.To {
				last.To = iv.To
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// intersectLen returns the total overlap between two sorted,
// non-overlapping interval sets.
func intersectLen(a, b []interval) trace.Time {
	var total trace.Time
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].From
		if b[j].From > lo {
			lo = b[j].From
		}
		hi := a[i].To
		if b[j].To < hi {
			hi = b[j].To
		}
		if hi > lo {
			total += hi - lo
		}
		if a[i].To < b[j].To {
			i++
		} else {
			j++
		}
	}
	return total
}

// clipToWindow returns the length of ivs ∩ [from, to]. ivs must be
// sorted and non-overlapping.
func clipToWindow(ivs []interval, from, to trace.Time) trace.Time {
	var total trace.Time
	for _, iv := range ivs {
		if iv.From >= to {
			break
		}
		lo, hi := iv.From, iv.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// Composition breaks the critical path into execution categories.
type Composition struct {
	// Total is the critical-path length (the denominator).
	Total trace.Time
	// LockHold is path time spent inside at least one critical
	// section (nested holds counted once).
	LockHold trace.Time
	// Compute is executed path time outside every critical section.
	Compute trace.Time
	// Wait is blocked path time the walk could not attribute to a
	// waker (zero on simulator traces).
	Wait trace.Time
}

// LockHoldPct returns LockHold / Total as a percentage.
func (c Composition) LockHoldPct() float64 {
	if c.Total <= 0 {
		return 0
	}
	return 100 * float64(c.LockHold) / float64(c.Total)
}

// Composition computes the critical path's breakdown into critical
// section time, plain compute and unattributed waits. It answers the
// paper's aggregate question — how much of the completion time is
// fundamentally serialized by locks — in one number.
func (a *Analysis) Composition() Composition {
	c := Composition{Total: a.CP.Length, Wait: a.CP.WaitTime}
	// Per thread: union of hold intervals ∩ union of exec pieces.
	for tid, holds := range a.holdsByThread {
		merged := mergeIntervals(append([]interval(nil), holds...))
		pieces := a.piecesOf(trace.ThreadID(tid), PieceExec)
		c.LockHold += intersectLen(merged, pieces)
	}
	c.Compute = c.Total - c.LockHold - c.Wait
	if c.Compute < 0 {
		c.Compute = 0
	}
	return c
}

// piecesOf returns the thread's sorted critical-path pieces of a kind.
func (a *Analysis) piecesOf(tid trace.ThreadID, kind PieceKind) []interval {
	var out []interval
	for _, p := range a.CP.Pieces {
		if p.Thread == tid && p.Kind == kind {
			out = append(out, interval{p.From, p.To})
		}
	}
	return mergeIntervals(out)
}

// Window is one time slice of the critical path with its per-lock
// shares.
type Window struct {
	// From and To bound the window in trace time.
	From, To trace.Time
	// PathTime is critical-path time inside the window.
	PathTime trace.Time
	// Locks lists each lock's hot-critical-section time inside the
	// window, descending; only locks with nonzero share appear.
	Locks []WindowLock
}

// WindowLock is one lock's share of a window.
type WindowLock struct {
	Name string
	Lock trace.ObjID
	// HoldOnCP is the lock's hot-CS time within the window.
	HoldOnCP trace.Time
	// PctOfWindow is HoldOnCP / the window's PathTime.
	PctOfWindow float64
}

// Top returns the dominant lock of the window (zero value if none).
func (w Window) Top() WindowLock {
	if len(w.Locks) == 0 {
		return WindowLock{Name: "<none>"}
	}
	return w.Locks[0]
}

// Windows slices the execution into n equal time windows and computes
// each lock's critical-path share per window. This is criticality over
// time — the information the paper's future work wants to feed to
// adaptive mechanisms (accelerated critical sections, speculative lock
// reordering, transactional memory): which lock matters *right now*.
func (a *Analysis) Windows(n int) []Window {
	if n <= 0 || a.CP.WallTime <= 0 {
		return nil
	}
	start := a.Trace.Start()
	span := a.Trace.End() - start
	out := make([]Window, 0, n)

	// Critical-path pieces as global intervals for the denominator.
	var pathIvs []interval
	for _, p := range a.CP.Pieces {
		pathIvs = append(pathIvs, interval{p.From, p.To})
	}
	sort.Slice(pathIvs, func(i, j int) bool { return pathIvs[i].From < pathIvs[j].From })

	for w := 0; w < n; w++ {
		from := start + trace.Time(int64(span)*int64(w)/int64(n))
		to := start + trace.Time(int64(span)*int64(w+1)/int64(n))
		win := Window{From: from, To: to}
		win.PathTime = clipToWindow(pathIvs, from, to)
		for lock, ivs := range a.hotByLock {
			hold := clipToWindow(ivs, from, to)
			if hold <= 0 {
				continue
			}
			wl := WindowLock{Name: a.Trace.ObjName(lock), Lock: lock, HoldOnCP: hold}
			if win.PathTime > 0 {
				wl.PctOfWindow = 100 * float64(hold) / float64(win.PathTime)
			}
			win.Locks = append(win.Locks, wl)
		}
		sort.Slice(win.Locks, func(i, j int) bool {
			if win.Locks[i].HoldOnCP != win.Locks[j].HoldOnCP {
				return win.Locks[i].HoldOnCP > win.Locks[j].HoldOnCP
			}
			return win.Locks[i].Name < win.Locks[j].Name
		})
		out = append(out, win)
	}
	return out
}
