package core

import (
	"fmt"
	"reflect"
	"testing"

	"critlock/internal/trace"
)

// convoyTrace builds a contended multi-thread trace with roughly n
// events: a hot round-robin lock, a private cold lock, and a final
// join fan-in so the critical path crosses threads.
func convoyTrace(n, threads int) *trace.Trace {
	b := trace.NewBuilder()
	var tids []trace.ThreadID
	root := b.Thread("t0", trace.NoThread)
	tids = append(tids, root)
	for i := 1; i < threads; i++ {
		tids = append(tids, b.Thread(fmt.Sprintf("t%d", i), root))
	}
	m := b.Mutex("hot")
	m2 := b.Mutex("cold")
	for _, tid := range tids {
		b.Start(0, tid)
	}
	iters := n / (threads * 6)
	if iters == 0 {
		iters = 1
	}
	tm := trace.Time(0)
	for it := 0; it < iters; it++ {
		for k, tid := range tids {
			acq := tm + trace.Time(k)
			obt := tm + trace.Time(10*(k+1))
			rel := obt + 9
			b.CS(tid, m, acq, obt, rel)
			b.CS(tid, m2, rel, rel, rel+1)
		}
		tm += trace.Time(10*threads + 20)
	}
	for i := len(tids) - 1; i >= 1; i-- {
		b.Exit(tm+trace.Time(i), tids[i])
		b.Join(root, tids[i], tm, tm+trace.Time(i))
	}
	b.Exit(tm+trace.Time(len(tids)), root)
	return b.Trace()
}

// analysesEqual compares the externally visible analysis results.
func analysesEqual(t *testing.T, got, want *Analysis, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.CP, want.CP) {
		t.Errorf("%s: critical path differs", label)
	}
	if !reflect.DeepEqual(got.Locks, want.Locks) {
		t.Errorf("%s: lock stats differ:\n got %+v\nwant %+v", label, got.Locks, want.Locks)
	}
	if !reflect.DeepEqual(got.Threads, want.Threads) {
		t.Errorf("%s: thread stats differ", label)
	}
	if got.Totals != want.Totals {
		t.Errorf("%s: totals differ: got %+v want %+v", label, got.Totals, want.Totals)
	}
	if !reflect.DeepEqual(got.holdsByThread, want.holdsByThread) {
		t.Errorf("%s: holdsByThread differ", label)
	}
	if !reflect.DeepEqual(got.hotByLock, want.hotByLock) {
		t.Errorf("%s: hotByLock differ", label)
	}
}

// TestAnalyzerReuseMatchesFresh: one Analyzer reused across traces of
// different shapes and sizes must reproduce a fresh analysis exactly,
// and earlier results must stay intact after later calls (no aliasing
// of pooled buffers).
func TestAnalyzerReuseMatchesFresh(t *testing.T) {
	traces := []*trace.Trace{
		convoyTrace(5000, 8),
		convoyTrace(300, 3), // shrinking: reused buffers larger than needed
		convoyTrace(20000, 16),
		convoyTrace(60, 2),
	}
	a := NewAnalyzer()
	opts := DefaultOptions()

	var kept []*Analysis
	var fresh []*Analysis
	for _, tr := range traces {
		got, err := a.Analyze(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := (&Analyzer{}).Analyze(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		analysesEqual(t, got, want, "reused analyzer")
		kept = append(kept, got)
		fresh = append(fresh, want)
	}
	// Earlier results must not have been clobbered by later reuse.
	for i := range kept {
		analysesEqual(t, kept[i], fresh[i], fmt.Sprintf("retained result %d", i))
	}

	// Reset drops storage but the analyzer stays usable.
	a.Reset()
	if _, err := a.Analyze(traces[0], opts); err != nil {
		t.Fatalf("analyze after Reset: %v", err)
	}
}

// TestParallelMetricsMatchSerial forces the chunked parallel metric
// pass (the 1-CPU default would gate it off) and checks bit-identical
// results against the serial pass. Run under -race this also proves
// the worker partitioning is sound.
func TestParallelMetricsMatchSerial(t *testing.T) {
	tr := convoyTrace(30000, 12)
	opts := DefaultOptions()

	metricsWorkersOverride = 1
	serial, err := Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 12, 32} {
		metricsWorkersOverride = workers
		parallel, err := Analyze(tr, opts)
		metricsWorkersOverride = 0
		if err != nil {
			t.Fatal(err)
		}
		analysesEqual(t, parallel, serial, fmt.Sprintf("workers=%d", workers))
	}
	metricsWorkersOverride = 0
}

// TestAnalyzerRejectsEmpty mirrors package Analyze semantics.
func TestAnalyzerRejectsEmpty(t *testing.T) {
	if _, err := NewAnalyzer().Analyze(nil, DefaultOptions()); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewAnalyzer().Analyze(&trace.Trace{}, DefaultOptions()); err == nil {
		t.Error("empty trace accepted")
	}
}
