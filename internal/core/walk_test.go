package core

import (
	"math"
	"testing"

	"critlock/internal/trace"
)

// fig1Trace reconstructs the paper's Fig. 1 illustrative execution: a
// 33-unit critical path where lock L2 guards four 3-unit hot critical
// sections (36.36% of the path, 75% contended on it), L1 guards one
// 1-unit hot critical section (3.03%, uncontended), L3 is an
// uncontended critical lock, and L4 — the lock with the longest idle
// time, which prior idleness-based methods would flag — is entirely
// off the critical path.
func fig1Trace() *trace.Trace {
	b := trace.NewBuilder()
	t1 := b.Thread("T1", trace.NoThread)
	t2 := b.Thread("T2", t1)
	t3 := b.Thread("T3", t1)
	t4 := b.Thread("T4", t1)
	l1 := b.Mutex("L1")
	l2 := b.Mutex("L2")
	l3 := b.Mutex("L3")
	l4 := b.Mutex("L4")

	b.Start(0, t1)
	b.Start(0, t2)
	b.Start(0, t3)
	b.Start(0, t4)

	// T1: CS1 under L1, then the first CS2 under L2.
	b.CS(t1, l1, 2, 2, 3)
	b.CS(t1, l2, 8, 8, 11)
	b.Exit(14, t1)

	// T2: contended CS2.
	b.CS(t2, l2, 9, 11, 14)
	b.Exit(20, t2)

	// T3: long CS4 under L4 (blocking T4), then contended CS2.
	b.CS(t3, l4, 4, 4, 13)
	b.CS(t3, l2, 13, 14, 17)
	b.Exit(20, t3)

	// T4: blocks 8 units on L4 (the longest idle time in the run),
	// then contended CS2, then uncontended CS3 under L3, then a long
	// tail of computation. T4 finishes last and anchors the walk.
	b.CS(t4, l4, 5, 13, 14)
	b.CS(t4, l2, 16, 17, 20)
	b.CS(t4, l3, 20, 20, 24)
	b.Exit(33, t4)

	return b.Trace()
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 0.01 {
		t.Errorf("%s = %.4f, want %.4f", name, got, want)
	}
}

func TestFig1CriticalPath(t *testing.T) {
	tr := fig1Trace()
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("fig1 trace invalid: %v", err)
	}
	an, err := AnalyzeDefault(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	if an.CP.Length != 33 {
		t.Errorf("CP length = %d, want 33", an.CP.Length)
	}
	if an.CP.WaitTime != 0 {
		t.Errorf("CP wait time = %d, want 0", an.CP.WaitTime)
	}
	if an.CP.LastThread != 3 {
		t.Errorf("last thread = %d, want 3 (T4)", an.CP.LastThread)
	}
	if an.CP.Jumps != 3 {
		t.Errorf("jumps = %d, want 3 (the L2 chain)", an.CP.Jumps)
	}
	approx(t, "coverage", an.CP.Coverage(), 1.0)

	l2 := an.Lock("L2")
	if l2 == nil {
		t.Fatal("no stats for L2")
	}
	if !l2.Critical {
		t.Error("L2 not marked critical")
	}
	if l2.HoldOnCP != 12 {
		t.Errorf("L2 hold on CP = %d, want 12", l2.HoldOnCP)
	}
	approx(t, "L2 CP time %", l2.CPTimePct, 100*12.0/33.0) // 36.36% as in the paper
	if l2.InvocationsOnCP != 4 {
		t.Errorf("L2 invocations on CP = %d, want 4", l2.InvocationsOnCP)
	}
	approx(t, "L2 cont prob on CP", l2.ContProbOnCP, 75.0) // 3 of 4, as in the paper

	l1 := an.Lock("L1")
	if !l1.Critical || l1.HoldOnCP != 1 {
		t.Errorf("L1: critical=%v holdOnCP=%d, want true/1", l1.Critical, l1.HoldOnCP)
	}
	approx(t, "L1 CP time %", l1.CPTimePct, 100*1.0/33.0) // 3.03%
	approx(t, "L1 cont prob on CP", l1.ContProbOnCP, 0)

	l3 := an.Lock("L3")
	if !l3.Critical || l3.HoldOnCP != 4 {
		t.Errorf("L3: critical=%v holdOnCP=%d, want true/4 (uncontended critical lock)", l3.Critical, l3.HoldOnCP)
	}
	if l3.ContendedOnCP != 0 {
		t.Errorf("L3 contended on CP = %d, want 0", l3.ContendedOnCP)
	}

	l4 := an.Lock("L4")
	if l4.Critical {
		t.Error("L4 marked critical although it is off the critical path")
	}
	if l4.MaxWait != 8 {
		t.Errorf("L4 max wait = %d, want 8 (longest idle time in the run)", l4.MaxWait)
	}
	if l4.TotalWait <= l2.TotalWait {
		t.Errorf("L4 total wait %d not above L2's %d: the misleading-idleness setup broke", l4.TotalWait, l2.TotalWait)
	}

	// The paper's headline: idleness ranks L4 first, critical lock
	// analysis ranks L2 first.
	if an.Locks[0].Name != "L2" {
		t.Errorf("top lock by CP time = %s, want L2", an.Locks[0].Name)
	}
	byWait := an.Locks[0]
	for _, l := range an.Locks {
		if l.TotalWait > byWait.TotalWait {
			byWait = l
		}
	}
	if byWait.Name != "L4" {
		t.Errorf("top lock by idleness = %s, want L4", byWait.Name)
	}
}

func TestFig1ThreadStats(t *testing.T) {
	an, err := AnalyzeDefault(fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	if got := an.Threads[3].Lifetime; got != 33 {
		t.Errorf("T4 lifetime = %d, want 33", got)
	}
	if got := an.Threads[3].TimeOnCP; got != 16 {
		t.Errorf("T4 time on CP = %d, want 16", got)
	}
	if got := an.Threads[0].TimeOnCP; got != 11 {
		t.Errorf("T1 time on CP = %d, want 11", got)
	}
	if got := an.Threads[3].LockWait; got != 9 { // 8 on L4 + 1 on L2
		t.Errorf("T4 lock wait = %d, want 9", got)
	}
	if an.Totals.Invocations != 8 {
		t.Errorf("total invocations = %d, want 8", an.Totals.Invocations)
	}
	if an.Totals.Mutexes != 4 {
		t.Errorf("mutexes = %d, want 4", an.Totals.Mutexes)
	}
}

// TestSingleThread checks the degenerate case: one thread, everything
// on the critical path.
func TestSingleThread(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	m := b.Mutex("only")
	b.Start(0, main)
	b.CS(main, m, 10, 10, 25)
	b.Exit(100, main)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if an.CP.Length != 100 {
		t.Errorf("CP length = %d, want 100", an.CP.Length)
	}
	l := an.Lock("only")
	if !l.Critical || l.HoldOnCP != 15 {
		t.Errorf("lock: critical=%v hold=%d, want true/15", l.Critical, l.HoldOnCP)
	}
	approx(t, "CP time %", l.CPTimePct, 15.0)
	if l.ContProbOnCP != 0 || l.AvgContProb != 0 {
		t.Error("uncontended lock reported contention")
	}
}

// TestBarrierWalk: the critical path must run through the last arriver
// of a barrier, not through the threads that waited.
func TestBarrierWalk(t *testing.T) {
	b := trace.NewBuilder()
	t0 := b.Thread("fast", trace.NoThread)
	t1 := b.Thread("slow", t0)
	bar := b.Barrier("phase", 2)
	b.Start(0, t0)
	b.Start(0, t1)
	// Fast thread arrives at 10, departs when slow arrives at 50.
	b.BarrierWait(t0, bar, 10, 50, false)
	b.BarrierWait(t1, bar, 50, 50, true)
	b.Exit(80, t0) // fast thread finishes last after the barrier
	b.Exit(60, t1)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	// Path: t0 [50,80] + jump to t1's arrive → t1 [0,50] = 80, with no
	// barrier wait on it.
	if an.CP.Length != 80 {
		t.Errorf("CP length = %d, want 80", an.CP.Length)
	}
	if an.CP.WaitTime != 0 {
		t.Errorf("CP wait = %d, want 0 (wait must be jumped over)", an.CP.WaitTime)
	}
	if an.CP.Jumps == 0 {
		t.Error("no jumps: walk did not follow the barrier dependency")
	}
	if got := an.Threads[1].TimeOnCP; got != 50 {
		t.Errorf("slow thread time on CP = %d, want 50", got)
	}
	if got := an.Threads[0].BarrierWait; got != 40 {
		t.Errorf("fast thread barrier wait = %d, want 40", got)
	}
	if got := an.Threads[1].BarrierWait; got != 0 {
		t.Errorf("slow (last) thread barrier wait = %d, want 0", got)
	}
}

// TestCondWalk: a thread blocked on a condition variable depends on
// its signaller.
func TestCondWalk(t *testing.T) {
	b := trace.NewBuilder()
	prod := b.Thread("producer", trace.NoThread)
	cons := b.Thread("consumer", prod)
	cv := b.Cond("nonempty")
	m := b.Mutex("qmu")
	b.Start(0, prod)
	b.Start(0, cons)
	// Consumer waits from 5; producer computes until 40 and signals.
	b.CS(cons, m, 5, 5, 5) // lock around wait entry (released at wait)
	b.Event(5, cons, trace.EvCondWaitBegin, cv, int64(m))
	b.Event(40, prod, trace.EvCondSignal, cv, 0)
	b.Event(40, cons, trace.EvCondWaitEnd, cv, int64(m))
	b.Exit(45, prod)
	b.Exit(70, cons)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	// Path: cons [40,70] + jump to producer's signal → prod [0,40].
	if an.CP.Length != 70 {
		t.Errorf("CP length = %d, want 70", an.CP.Length)
	}
	if an.CP.WaitTime != 0 {
		t.Errorf("CP wait = %d, want 0", an.CP.WaitTime)
	}
	if got := an.Threads[0].TimeOnCP; got != 40 {
		t.Errorf("producer time on CP = %d, want 40", got)
	}
	if got := an.Threads[1].CondWait; got != 35 {
		t.Errorf("consumer cond wait = %d, want 35", got)
	}
}

// TestBroadcastWalk: all waiters woken by one broadcast depend on the
// broadcaster.
func TestBroadcastWalk(t *testing.T) {
	b := trace.NewBuilder()
	boss := b.Thread("boss", trace.NoThread)
	w1 := b.Thread("w1", boss)
	w2 := b.Thread("w2", boss)
	cv := b.Cond("go")
	b.Start(0, boss)
	b.Start(0, w1)
	b.Start(0, w2)
	b.Event(1, w1, trace.EvCondWaitBegin, cv, -1)
	b.Event(2, w2, trace.EvCondWaitBegin, cv, -1)
	b.Event(30, boss, trace.EvCondBroadcast, cv, 0)
	b.Event(30, w1, trace.EvCondWaitEnd, cv, -1)
	b.Event(30, w2, trace.EvCondWaitEnd, cv, -1)
	b.Exit(35, boss)
	b.Exit(50, w1)
	b.Exit(90, w2)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	// Path: w2 [30,90] + boss [0,30].
	if an.CP.Length != 90 {
		t.Errorf("CP length = %d, want 90", an.CP.Length)
	}
	if got := an.Threads[0].TimeOnCP; got != 30 {
		t.Errorf("boss time on CP = %d, want 30", got)
	}
}

// TestJoinWalk: a joiner blocked on a child depends on the child's
// exit; an already-exited child does not redirect the path.
func TestJoinWalk(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	kid := b.Thread("kid", main)
	b.Start(0, main)
	b.Start(0, kid)
	b.Exit(60, kid)
	b.Join(main, kid, 10, 60)
	b.Exit(75, main)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	// Path: main [60,75] + kid [0,60] = 75.
	if an.CP.Length != 75 {
		t.Errorf("CP length = %d, want 75", an.CP.Length)
	}
	if got := an.Threads[1].TimeOnCP; got != 60 {
		t.Errorf("kid time on CP = %d, want 60", got)
	}
	if got := an.Threads[0].JoinWait; got != 50 {
		t.Errorf("main join wait = %d, want 50", got)
	}
}

func TestJoinAlreadyExited(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	kid := b.Thread("kid", main)
	b.Start(0, main)
	b.Start(0, kid)
	b.Exit(5, kid)
	b.Join(main, kid, 30, 30) // join returns immediately
	b.Exit(50, main)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	// The whole path stays on main: [0,50].
	if an.CP.Length != 50 {
		t.Errorf("CP length = %d, want 50", an.CP.Length)
	}
	if got := an.Threads[0].TimeOnCP; got != 50 {
		t.Errorf("main time on CP = %d, want 50", got)
	}
	if got := an.Threads[0].JoinWait; got != 0 {
		t.Errorf("join wait = %d, want 0", got)
	}
}

// TestThreadStartDependency: a late-created thread that finishes last
// pulls the path through its creator's prefix.
func TestThreadStartDependency(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	late := b.Thread("late", main)
	b.Start(0, main)
	b.Start(40, late) // created at 40 (Builder emits create on main)
	b.Exit(45, main)
	b.Exit(100, late)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	// Path: late [40,100] + main [0,40] = 100.
	if an.CP.Length != 100 {
		t.Errorf("CP length = %d, want 100", an.CP.Length)
	}
	if got := an.Threads[0].TimeOnCP; got != 40 {
		t.Errorf("main time on CP = %d, want 40", got)
	}
}

// TestUnknownWakerBecomesWaitPiece: a contended obtain whose releaser
// is absent from the trace (e.g. truncated) keeps the wait on the
// path, classified as PieceWait.
func TestUnknownWakerBecomesWaitPiece(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	m := b.Mutex("ghost")
	b.Start(0, main)
	// Contended obtain (obt > acq) but no prior holder in the trace.
	b.CS(main, m, 10, 30, 40)
	b.Exit(50, main)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if an.CP.Length != 50 {
		t.Errorf("CP length = %d, want 50", an.CP.Length)
	}
	if an.CP.WaitTime != 20 {
		t.Errorf("CP wait = %d, want 20", an.CP.WaitTime)
	}
	if an.CP.ExecTime != 30 {
		t.Errorf("CP exec = %d, want 30", an.CP.ExecTime)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	if _, err := AnalyzeDefault(&trace.Trace{}); err == nil {
		t.Error("Analyze accepted empty trace")
	}
	if _, err := AnalyzeDefault(nil); err == nil {
		t.Error("Analyze accepted nil trace")
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	m := b.Mutex("L")
	b.Start(0, main)
	b.Event(1, main, trace.EvLockRelease, m, 0)
	b.Exit(2, main)
	if _, err := AnalyzeDefault(b.Trace()); err == nil {
		t.Error("Analyze accepted invalid trace with Validate on")
	}
	// With validation off the analyzer must still not panic (release
	// without hold is an indexing error).
	if _, err := Analyze(b.Trace(), Options{ClipHold: true}); err == nil {
		t.Error("Analyze(no-validate) accepted unpaired release")
	}
}

// TestLockChainDifferentThreads: the L2-style convoy where each obtain
// jumps to the previous holder, hopping across three threads.
func TestLockChainAcrossThreads(t *testing.T) {
	b := trace.NewBuilder()
	a := b.Thread("A", trace.NoThread)
	c := b.Thread("B", a)
	d := b.Thread("C", a)
	m := b.Mutex("conv")
	b.Start(0, a)
	b.Start(0, c)
	b.Start(0, d)
	b.CS(a, m, 0, 0, 10)
	b.CS(c, m, 1, 10, 20)
	b.CS(d, m, 2, 20, 30)
	b.Exit(12, a)
	b.Exit(22, c)
	b.Exit(31, d)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	// Path: C [20,31], jump→B [10,20], jump→A [0,10] = 31.
	if an.CP.Length != 31 {
		t.Errorf("CP length = %d, want 31", an.CP.Length)
	}
	l := an.Lock("conv")
	if l.InvocationsOnCP != 3 || l.HoldOnCP != 30 {
		t.Errorf("conv: inv on CP=%d hold=%d, want 3/30", l.InvocationsOnCP, l.HoldOnCP)
	}
	approx(t, "conv cont prob on CP", l.ContProbOnCP, 100.0*2/3)
}

// TestCondReacquireRouting: when a signalled thread must re-acquire a
// contended mutex, the binding dependency is the mutex releaser (later
// than the signal); the walk must route through it without losing
// time.
func TestCondReacquireRouting(t *testing.T) {
	b := trace.NewBuilder()
	waiter := b.Thread("waiter", trace.NoThread)
	signaler := b.Thread("signaler", waiter)
	holder := b.Thread("holder", waiter)
	cv := b.Cond("cv")
	m := b.Mutex("m")
	b.Start(0, waiter)
	b.Start(0, signaler)
	b.Start(0, holder)

	// Waiter: lock m at 0, wait on cv (releases m at 5).
	b.Event(0, waiter, trace.EvLockAcquire, m, 0)
	b.Event(0, waiter, trace.EvLockObtain, m, 0)
	b.Event(5, waiter, trace.EvCondWaitBegin, cv, int64(m))
	b.Event(5, waiter, trace.EvLockRelease, m, 0)
	// Holder grabs m 5..40.
	b.CS(holder, m, 5, 5, 40)
	b.Exit(41, holder)
	// Signal arrives at 20, but the waiter can only re-acquire m when
	// the holder releases at 40.
	b.Event(20, signaler, trace.EvCondSignal, cv, 0)
	b.Exit(25, signaler)
	b.Event(20, waiter, trace.EvLockAcquire, m, 0)
	b.Event(40, waiter, trace.EvLockObtain, m, trace.LockArgContended)
	b.Event(40, waiter, trace.EvCondWaitEnd, cv, int64(m))
	b.Event(45, waiter, trace.EvLockRelease, m, 0)
	b.Exit(60, waiter)

	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	// Path: waiter [40,60] ← jump via the OBTAIN (not the signal) to
	// holder's release@40 ← holder [0,40] (its own obtain at 5 was
	// uncontended, so the walk stays on the holder's prefix). Total
	// 60, gap-free.
	if an.CP.Length != 60 {
		t.Errorf("CP length = %d, want 60 (routing through the mutex releaser)", an.CP.Length)
	}
	if an.CP.WaitTime != 0 {
		t.Errorf("CP wait = %d, want 0", an.CP.WaitTime)
	}
	if got := an.Threads[2].TimeOnCP; got != 40 {
		t.Errorf("holder time on CP = %d, want 40", got)
	}
	if got := an.Threads[0].TimeOnCP; got != 20 {
		t.Errorf("waiter time on CP = %d, want 20", got)
	}
	// The signaler's prefix is NOT on the path (its signal was not the
	// binding dependency).
	if got := an.Threads[1].TimeOnCP; got != 0 {
		t.Errorf("signaler time on CP = %d, want 0", got)
	}
}

// TestJumpLog: the fig1 walk's jump chain, in forward order.
func TestJumpLog(t *testing.T) {
	an, err := AnalyzeDefault(fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(an.CP.JumpLog); got != 3 {
		t.Fatalf("jump log = %+v, want 3 entries", an.CP.JumpLog)
	}
	// Forward order: T2←T1 at 11, T3←T2 at 14, T4←T3 at 17 — all via L2.
	wantFrom := []trace.ThreadID{1, 2, 3}
	wantT := []trace.Time{11, 14, 17}
	for i, j := range an.CP.JumpLog {
		if j.Kind != JumpLock {
			t.Errorf("jump %d kind = %v, want lock", i, j.Kind)
		}
		if j.From != wantFrom[i] || j.T != wantT[i] {
			t.Errorf("jump %d = %+v, want from=%d t=%d", i, j, wantFrom[i], wantT[i])
		}
		if an.Trace.ObjName(j.Obj) != "L2" {
			t.Errorf("jump %d through %s, want L2", i, an.Trace.ObjName(j.Obj))
		}
	}
	for _, k := range []JumpKind{JumpLock, JumpBarrier, JumpCond, JumpJoin, JumpStart, JumpKind(99)} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}
