package core

import (
	"fmt"
	"sync"

	"critlock/internal/trace"
)

// Analyzer runs critical lock analysis with reusable internal storage.
//
// A single Analyze call allocates several event-count-sized index
// arrays (waker edges, per-thread positions, invocation records). For
// pipelines that analyze many traces — experiment sweeps, what-if
// loops, online re-analysis — that allocation dominates; an Analyzer
// keeps the storage between calls and re-derives everything from the
// next trace, so a warm analysis is allocation-lean.
//
// The returned *Analysis never aliases the Analyzer's internal
// buffers: results remain valid after further Analyze calls. An
// Analyzer is NOT safe for concurrent use; use one per goroutine (the
// package-level Analyze does this automatically via an internal pool).
type Analyzer struct {
	idx index
}

// NewAnalyzer returns an empty analyzer. The zero value is also ready
// to use.
func NewAnalyzer() *Analyzer { return &Analyzer{} }

// Analyze runs critical lock analysis on tr, reusing the analyzer's
// internal buffers. Semantics are identical to the package-level
// Analyze.
func (a *Analyzer) Analyze(tr *trace.Trace, opts Options) (*Analysis, error) {
	return a.analyzeTrace(tr, Config{Options: opts})
}

// analyzeTrace is the in-memory pipeline behind TraceSource: validate
// (optional) → index → walk → metrics, with per-phase observation.
func (a *Analyzer) analyzeTrace(tr *trace.Trace, cfg Config) (*Analysis, error) {
	if tr == nil || len(tr.Events) == 0 {
		return nil, trace.ErrEmptyTrace
	}
	h := newObsHook(cfg.Observer, len(tr.Events))
	n := int64(len(tr.Events))
	if cfg.Validate {
		start := h.phaseStart("validate")
		if err := trace.Validate(tr); err != nil {
			return nil, fmt.Errorf("core: invalid trace: %w", err)
		}
		h.phaseDone("validate", start, n)
	}
	start := h.phaseStart("index")
	if err := buildIndexInto(&a.idx, tr); err != nil {
		return nil, err
	}
	h.phaseDone("index", start, n)
	start = h.phaseStart("walk")
	cp, err := walk(tr, &a.idx)
	if err != nil {
		return nil, err
	}
	h.phaseDone("walk", start, n)
	start = h.phaseStart("metrics")
	an := &Analysis{Trace: tr, CP: *cp}
	computeMetrics(an, &a.idx, cfg.Options)
	h.phaseDone("metrics", start, n)
	return an, nil
}

// Reset releases the retained buffers, returning the analyzer to its
// initial footprint. Useful for long-lived holders after analyzing an
// unusually large trace; not required between Analyze calls.
func (a *Analyzer) Reset() { a.idx.release() }

// analyzerPool recycles warm Analyzers across package-level Analyze
// calls (safe under concurrency: Get hands out distinct instances).
var analyzerPool = sync.Pool{New: func() any { return NewAnalyzer() }}
