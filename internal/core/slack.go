package core

import (
	"math"
	"sort"

	"critlock/internal/trace"
)

// SlackAnalysis ranks locks by how close they are to the critical
// path. The paper's walk yields *one* critical path; a lock just off
// it (optimize the top lock and this one takes over) is invisible to
// CP Time %. Slack fills that gap.
//
// Classic PERT on the event graph: late(e) is the latest time event e
// could have occurred without delaying completion, computed backward
// over (a) intra-thread edges, whose execution time is fixed, and (b)
// cross-thread wake edges (release→obtain, last-arrive→depart,
// signal→wait-end, exit→join-end, create→start), which bind only
// while the woken side actually waited. slack(e) = late(e) − t(e); an
// event on the critical path has slack 0, and a lock's slack is the
// minimum over its release events — how much *all* of its critical
// sections could collectively slip before completion moves.
type SlackAnalysis struct {
	// Locks is sorted by ascending slack (most critical first).
	Locks []LockSlack
	// slackOf maps every event index to its slack (diagnostics).
	slackOf []trace.Time
}

// LockSlack is one lock's distance from the critical path.
type LockSlack struct {
	Lock trace.ObjID
	Name string
	// MinSlack is the smallest slack over the lock's critical-section
	// releases: 0 for critical locks, small for near-critical ones.
	MinSlack trace.Time
	// OnCP mirrors the walk result for cross-checking: true when the
	// full analysis marked the lock critical.
	OnCP bool
}

// Slack computes slack for every lock in the analyzed trace.
func (a *Analysis) Slack() *SlackAnalysis {
	tr := a.Trace
	n := len(tr.Events)
	idx, err := buildIndex(tr)
	if err != nil || n == 0 {
		return &SlackAnalysis{}
	}

	const inf = math.MaxInt64
	late := make([]int64, n)
	for i := range late {
		late[i] = inf
	}

	// Sinks: each thread's exit event may be as late as the program's
	// completion time.
	endT := int64(tr.End())
	for tid := range idx.exitIdx {
		if ei := idx.exitIdx[tid]; ei >= 0 {
			late[ei] = endT
		}
	}

	// wakes[i] lists events woken by event i (inverted waker map).
	wakes := make([][]int32, n)
	for i := 0; i < n; i++ {
		if w := idx.waker[i]; w >= 0 {
			wakes[w] = append(wakes[w], int32(i))
		}
	}

	// Backward pass in reverse (T, Seq) order — a valid reverse
	// topological order since every edge points forward in time.
	for i := n - 1; i >= 0; i-- {
		e := tr.Events[i]
		// Intra-thread successor: the executed interval between the
		// two events has fixed duration, so e can slip exactly as much
		// as its successor can.
		pos := idx.posInThread[i]
		seq := idx.thrEvents[e.Thread]
		if int(pos)+1 < len(seq) {
			succ := seq[pos+1]
			d := int64(tr.Events[succ].T - e.T)
			if idx.blocked[succ] && idx.waker[succ] >= 0 {
				// The interval before an attributed unblock event is
				// wait: it absorbs slippage, so the edge only orders
				// (weight 0) — the successor's timing is bound by its
				// waker, not by us.
				d = 0
			}
			if late[succ] != inf {
				late[i] = min64(late[i], late[succ]-d)
			}
		}
		// Cross-thread wake edges: the woken event cannot happen
		// before this one, so e may slip to the woken event's late
		// time (the edge itself has zero duration).
		for _, w := range wakes[i] {
			if late[w] != inf {
				late[i] = min64(late[i], late[w])
			}
		}
		if late[i] == inf {
			// No successors constrain this event (e.g. the tail of a
			// thread that exits before the program ends): bounded by
			// its own thread's exit, which was seeded above; as a
			// final fallback use program end.
			late[i] = endT
		}
	}

	sa := &SlackAnalysis{slackOf: make([]trace.Time, n)}
	for i := range late {
		s := late[i] - int64(tr.Events[i].T)
		if s < 0 {
			s = 0
		}
		sa.slackOf[i] = trace.Time(s)
	}

	// Per-lock minimum over release events.
	minSlack := map[trace.ObjID]trace.Time{}
	for i, e := range tr.Events {
		if e.Kind != trace.EvLockRelease {
			continue
		}
		cur, seen := minSlack[e.Obj]
		if !seen || sa.slackOf[i] < cur {
			minSlack[e.Obj] = sa.slackOf[i]
		}
	}
	critical := map[trace.ObjID]bool{}
	for _, l := range a.Locks {
		if l.Critical {
			critical[l.Lock] = true
		}
	}
	for lock, s := range minSlack {
		sa.Locks = append(sa.Locks, LockSlack{
			Lock: lock, Name: tr.ObjName(lock), MinSlack: s, OnCP: critical[lock],
		})
	}
	sort.Slice(sa.Locks, func(i, j int) bool {
		if sa.Locks[i].MinSlack != sa.Locks[j].MinSlack {
			return sa.Locks[i].MinSlack < sa.Locks[j].MinSlack
		}
		return sa.Locks[i].Name < sa.Locks[j].Name
	})
	return sa
}

// NearCritical returns locks that are off the walked critical path but
// within eps of it — the "next bottleneck" candidates.
func (sa *SlackAnalysis) NearCritical(eps trace.Time) []LockSlack {
	var out []LockSlack
	for _, l := range sa.Locks {
		if !l.OnCP && l.MinSlack <= eps {
			out = append(out, l)
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
