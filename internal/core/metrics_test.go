package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"critlock/internal/trace"
)

func TestAccessors(t *testing.T) {
	an, err := AnalyzeDefault(fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	if an.Lock("nope") != nil {
		t.Error("Lock(nope) != nil")
	}
	crit := an.CriticalLocks()
	if len(crit) != 3 { // L1, L2, L3
		t.Fatalf("critical locks = %d, want 3", len(crit))
	}
	for _, l := range crit {
		if !l.Critical {
			t.Errorf("CriticalLocks returned non-critical %s", l.Name)
		}
		if l.Name == "L4" {
			t.Error("L4 in critical set")
		}
	}
	top := an.TopLocks(2)
	if len(top) != 2 || top[0].Name != "L2" {
		t.Errorf("TopLocks(2) = %v", top)
	}
	if got := an.TopLocks(100); len(got) != 4 {
		t.Errorf("TopLocks(100) returned %d locks, want 4", len(got))
	}
}

// TestIncreaseFactors checks the paper's "Incr. Times" columns: a
// convoyed lock appears far more often on the critical path than the
// per-thread average.
func TestIncreaseFactors(t *testing.T) {
	an, err := AnalyzeDefault(fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	l2 := an.Lock("L2")
	// 4 invocations on the CP, 4 invocations / 4 threads = 1 average:
	// a 4x increase, exactly the Fig. 1 discussion in the paper.
	approx(t, "L2 invocation increase", l2.InvIncrease, 4.0)
	if l2.SizeIncrease <= 1 {
		t.Errorf("L2 size increase = %.2f, want > 1", l2.SizeIncrease)
	}
	l4 := an.Lock("L4")
	if l4.InvIncrease != 0 {
		t.Errorf("off-path L4 invocation increase = %.2f, want 0", l4.InvIncrease)
	}
}

// TestClippingAblation compares clipped vs full-hold accounting: with
// clipping off, an invocation that merely touches the path is credited
// with its entire hold time, inflating CP Time.
func TestClippingAblation(t *testing.T) {
	b := trace.NewBuilder()
	a := b.Thread("A", trace.NoThread)
	c := b.Thread("B", a)
	m := b.Mutex("edge")
	l := b.Mutex("lateblock")
	b.Start(0, a)
	b.Start(0, c)
	// A holds "edge" from 0 to 80; B blocks on "lateblock" held by A
	// from 40, so the walk jumps into A's release at 50 and only
	// [0,50] of A is walked; edge's hold is clipped to 50 of 80.
	b.Event(0, a, trace.EvLockAcquire, m, 0)
	b.Event(0, a, trace.EvLockObtain, m, 0)
	b.CS(a, l, 10, 10, 50)
	b.Event(80, a, trace.EvLockRelease, m, 0)
	b.Exit(85, a)
	b.CS(c, l, 40, 50, 55)
	b.Exit(100, c)
	tr := b.Trace()

	clipped, err := Analyze(tr, Options{ClipHold: true, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Analyze(tr, Options{ClipHold: false, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	ec, ef := clipped.Lock("edge"), full.Lock("edge")
	if ec.HoldOnCP != 50 {
		t.Errorf("clipped hold = %d, want 50", ec.HoldOnCP)
	}
	if ef.HoldOnCP != 80 {
		t.Errorf("full hold = %d, want 80", ef.HoldOnCP)
	}
	if ef.CPTimePct <= ec.CPTimePct {
		t.Error("full accounting did not inflate CP time")
	}
}

// TestWaitTimePct verifies the TYPE 2 percentage definition: average
// over threads of per-thread wait fraction.
func TestWaitTimePct(t *testing.T) {
	b := trace.NewBuilder()
	a := b.Thread("A", trace.NoThread)
	c := b.Thread("B", a)
	m := b.Mutex("m")
	b.Start(0, a)
	b.Start(0, c)
	b.CS(a, m, 0, 0, 50)  // A holds 50 of its 100-unit lifetime
	b.CS(c, m, 0, 50, 60) // B waits 50 of its 100-unit lifetime
	b.Exit(100, a)
	b.Exit(100, c)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	l := an.Lock("m")
	approx(t, "wait time %", l.WaitTimePct, 25.0)        // (0% + 50%) / 2
	approx(t, "avg hold time %", l.AvgHoldTimePct, 30.0) // (50% + 10%) / 2
	approx(t, "avg cont prob", l.AvgContProb, 50.0)
	approx(t, "avg invocations", l.AvgInvPerThread, 1.0)
	if l.MaxHold != 50 || l.MaxWait != 50 {
		t.Errorf("max hold/wait = %d/%d, want 50/50", l.MaxHold, l.MaxWait)
	}
}

// TestPropertySerializedChain: for a randomly generated serial convoy
// on one lock, the whole hold chain must be on the critical path and
// CP length must equal the last exit time.
func TestPropertySerializedChain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		b := trace.NewBuilder()
		root := b.Thread("T0", trace.NoThread)
		threads := []trace.ThreadID{root}
		for i := 1; i < n; i++ {
			threads = append(threads, b.Thread("", root))
		}
		m := b.Mutex("chain")
		for _, th := range threads {
			b.Start(0, th)
		}
		// Everyone requests at time 0; thread i holds during
		// [r_{i-1}, r_i), so all but the first are contended.
		rel := trace.Time(0)
		var lastRel trace.Time
		for _, th := range threads {
			hold := trace.Time(1 + rng.Intn(20))
			obt := rel
			rel = obt + hold
			b.CS(th, m, 0, obt, rel)
			lastRel = rel
		}
		for _, th := range threads {
			b.Exit(lastRel+1, th)
		}
		an, err := AnalyzeDefault(b.Trace())
		if err != nil {
			return false
		}
		l := an.Lock("chain")
		if l.InvocationsOnCP != n {
			return false
		}
		if an.CP.Coverage() > 1.0001 {
			return false
		}
		// All invocations but the first are contended, on and off CP.
		return l.TotalContended == n-1 && l.ContendedOnCP == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCPLengthBounds: on arbitrary fork-join computations the
// walked critical path is at least as long as any single thread's
// lifetime share on it and never exceeds wall time by more than
// rounding.
func TestPropertyCPBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := trace.NewBuilder()
		main := b.Thread("main", trace.NoThread)
		b.Start(0, main)
		n := 1 + rng.Intn(6)
		var kids []trace.ThreadID
		var exits []trace.Time
		for i := 0; i < n; i++ {
			kid := b.Thread("", main)
			kids = append(kids, kid)
			start := trace.Time(rng.Intn(10))
			b.Start(start, kid)
			end := start + trace.Time(1+rng.Intn(100))
			b.Exit(end, kid)
			exits = append(exits, end)
		}
		// Main joins all children in order.
		tm := trace.Time(10)
		for i, kid := range kids {
			end := exits[i]
			if end < tm {
				end = tm
			}
			b.Join(main, kid, tm, end)
			tm = end
		}
		b.Exit(tm+5, main)
		an, err := AnalyzeDefault(b.Trace())
		if err != nil {
			return false
		}
		if an.CP.Length <= 0 {
			return false
		}
		return an.CP.Length <= an.CP.WallTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestZeroLengthCriticalSection: point CSes inside a walked piece
// count as invocations on the CP without adding hold time.
func TestZeroLengthCriticalSection(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	m := b.Mutex("pt")
	b.Start(0, main)
	b.CS(main, m, 50, 50, 50)
	b.Exit(100, main)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	l := an.Lock("pt")
	if !l.Critical || l.InvocationsOnCP != 1 {
		t.Errorf("point CS: critical=%v invOnCP=%d, want true/1", l.Critical, l.InvocationsOnCP)
	}
	if l.HoldOnCP != 0 {
		t.Errorf("point CS hold on CP = %d, want 0", l.HoldOnCP)
	}
}

// TestUnusedMutexListed: registered but never-locked mutexes appear in
// the report with zero stats (the paper's tables list every lock).
func TestUnusedMutexListed(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	b.Mutex("never")
	b.Start(0, main)
	b.Exit(10, main)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	l := an.Lock("never")
	if l == nil {
		t.Fatal("unused mutex missing from stats")
	}
	if l.Critical || l.TotalInvocations != 0 {
		t.Errorf("unused mutex has stats: %+v", l)
	}
}
