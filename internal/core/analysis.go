// Package core implements critical lock analysis, the contribution of
// "Critical Lock Analysis: Diagnosing Critical Section Bottlenecks in
// Multithreaded Applications" (Chen & Stenström, SC 2012).
//
// Given a synchronization-event trace (internal/trace), the analyzer
//
//  1. resolves, for every blocking event, the remote event that
//     released the blocked thread (the "waker": the previous lock
//     holder's release, a barrier's last arriver, a condition
//     variable's signaller, a joinee's exit, or a creator's create),
//  2. walks the execution backwards from the last-finishing thread
//     along those dependencies — the algorithm of Fig. 2 in the paper —
//     yielding the critical path as a set of per-thread time intervals,
//  3. marks every critical-section hold interval intersecting the
//     critical path as a hot critical section and its mutex as a
//     critical lock, and
//  4. computes the paper's TYPE 1 metrics (CP Time %, invocations on
//     CP, contention probability on CP) alongside the classical TYPE 2
//     metrics (wait time %, average invocations, average contention
//     probability, average hold time %) that prior tools report.
package core

import (
	"sort"

	"critlock/internal/obs"
	"critlock/internal/trace"
)

// Options tunes the analysis.
type Options struct {
	// ClipHold, when true (the default used by DefaultOptions),
	// credits a hot critical section only with the part of its hold
	// interval that lies on walked critical-path intervals. When false,
	// any invocation touching the critical path is credited with its
	// full hold time — the coarser accounting some prior tools use;
	// kept as an ablation knob (experiment "ablation-clipping").
	ClipHold bool
	// Validate runs trace.Validate before analyzing and fails on
	// malformed traces. Analyses of traces from unknown provenance
	// should keep this on.
	Validate bool
	// Workers caps the parallel metric pass's worker count; 0 means
	// GOMAXPROCS. Results are identical at any worker count.
	Workers int
	// Observer, when non-nil, receives self-instrumentation callbacks:
	// per-phase timings and cumulative Progress snapshots. Observation
	// never changes analysis results.
	Observer obs.Observer
}

// DefaultOptions returns the recommended options: clipped hold
// accounting with validation enabled.
func DefaultOptions() Options { return Options{ClipHold: true, Validate: true} }

// Analysis is the result of critical lock analysis on one trace.
type Analysis struct {
	// Trace is the analyzed trace.
	Trace *trace.Trace
	// CP describes the reconstructed critical path.
	CP CriticalPath
	// Locks holds per-lock statistics, sorted by descending CP Time
	// (critical locks first, exactly the ordering the paper's case
	// study tables use).
	Locks []LockStats
	// Chans holds per-channel statistics, sorted by descending wait
	// time on the critical path (hot channels first).
	Chans []ChanStats
	// Threads holds per-thread summaries indexed by ThreadID.
	Threads []ThreadStats
	// Totals aggregates whole-run figures.
	Totals Totals

	// holdsByThread holds raw critical-section intervals per thread
	// and hotByLock the on-path (clipped) hold intervals per lock;
	// both feed Composition and Windows.
	holdsByThread [][]interval
	hotByLock     map[trace.ObjID][]interval
}

// CriticalPath is the walked critical path.
type CriticalPath struct {
	// Pieces are the walked per-thread intervals in forward time
	// order. Executed and wait pieces are distinguished by Kind.
	Pieces []Piece
	// Length is the total walked time (sum of piece durations); the
	// denominator of every "CP Time %" figure.
	Length trace.Time
	// ExecTime is the executed (non-wait) time on the path.
	ExecTime trace.Time
	// WaitTime is wait time that could not be jumped over (waker
	// unknown); zero for simulator traces.
	WaitTime trace.Time
	// WallTime is last event time minus first event time.
	WallTime trace.Time
	// LastThread is the thread whose exit anchors the walk.
	LastThread trace.ThreadID
	// Steps is the number of walk iterations (diagnostics).
	Steps int
	// Jumps is the number of cross-thread jumps taken.
	Jumps int
	// JumpLog records each cross-thread jump in forward time order
	// (the dependency chain the path follows).
	JumpLog []Jump
}

// JumpKind classifies a cross-thread dependency on the critical path.
type JumpKind uint8

const (
	// JumpLock: blocked on a mutex, released by the previous holder.
	JumpLock JumpKind = iota + 1
	// JumpBarrier: released by the episode's last arriver.
	JumpBarrier
	// JumpCond: woken by a signal/broadcast.
	JumpCond
	// JumpJoin: unblocked by the joinee's exit.
	JumpJoin
	// JumpStart: a thread's existence depends on its creator.
	JumpStart
	// JumpChan: blocked on a channel operation, released by the peer
	// that delivered a value (for receives), freed a buffer slot (for
	// sends) or closed the channel.
	JumpChan
)

// String names the jump kind.
func (k JumpKind) String() string {
	switch k {
	case JumpLock:
		return "lock"
	case JumpBarrier:
		return "barrier"
	case JumpCond:
		return "cond"
	case JumpJoin:
		return "join"
	case JumpStart:
		return "start"
	case JumpChan:
		return "chan"
	}
	return "unknown"
}

// Jump is one cross-thread hop of the critical path: at T the path
// leaves From (which was blocked) and continues on To (which released
// it), through the named object when applicable.
type Jump struct {
	T    trace.Time
	From trace.ThreadID
	To   trace.ThreadID
	Kind JumpKind
	// Obj is the mutex/barrier/cond/chan involved, or NoObj.
	Obj trace.ObjID
	// Wait is how long From was blocked before the jump (the interval
	// between its previous event and the unblock); zero for
	// thread-start jumps.
	Wait trace.Time
}

// Coverage returns Length/WallTime — 1.0 when the walked intervals
// tile the whole execution, as they do for simulator traces.
func (cp *CriticalPath) Coverage() float64 {
	if cp.WallTime <= 0 {
		return 0
	}
	return float64(cp.Length) / float64(cp.WallTime)
}

// PieceKind classifies critical-path pieces.
type PieceKind uint8

const (
	// PieceExec is executed code on the critical path.
	PieceExec PieceKind = iota
	// PieceWait is blocked time on the critical path that the walk
	// could not attribute to a waker.
	PieceWait
)

// Piece is one contiguous per-thread interval on the critical path.
type Piece struct {
	Thread   trace.ThreadID
	From, To trace.Time
	Kind     PieceKind
}

// Dur returns the piece duration.
func (p Piece) Dur() trace.Time { return p.To - p.From }

// LockStats carries both metric families for one mutex.
type LockStats struct {
	Lock trace.ObjID
	Name string

	// TYPE 1 — along the critical path (this paper's metrics).

	// Critical reports whether any hot critical section of this lock
	// lies on the critical path.
	Critical bool
	// HoldOnCP is total hot-critical-section time on the path.
	HoldOnCP trace.Time
	// CPTimePct is HoldOnCP / CP.Length (the paper's "CP Time %").
	CPTimePct float64
	// InvocationsOnCP counts critical-section invocations whose hold
	// interval intersects the critical path ("Invocation # on CP").
	InvocationsOnCP int
	// ContendedOnCP counts contended invocations among those.
	ContendedOnCP int
	// ContProbOnCP is ContendedOnCP/InvocationsOnCP ("Cont. Prob. on
	// CP %").
	ContProbOnCP float64
	// InvIncrease is InvocationsOnCP divided by the average number of
	// invocations per thread (the paper's "Incr. Times of Invo. #").
	InvIncrease float64
	// SizeIncrease is CPTimePct divided by AvgHoldTimePct (the paper's
	// "Incr. Times of Critical Section Size").
	SizeIncrease float64

	// TYPE 2 — per-lock statistics as reported by prior tools.

	// TotalInvocations counts all critical sections of the lock.
	TotalInvocations int
	// SharedInvocations counts reader (shared) acquisitions among
	// them (read-write mutexes).
	SharedInvocations int
	// TotalContended counts contended ones.
	TotalContended int
	// AvgInvPerThread is TotalInvocations / thread count.
	AvgInvPerThread float64
	// AvgContProb is TotalContended / TotalInvocations ("Avg. Cont.
	// Prob %").
	AvgContProb float64
	// TotalWait is the summed wait (acquire→obtain) time.
	TotalWait trace.Time
	// TotalHold is the summed hold (obtain→release) time.
	TotalHold trace.Time
	// WaitTimePct is the average over threads of (thread's wait on
	// this lock / thread lifetime) — the paper's "Wait Time %".
	WaitTimePct float64
	// AvgHoldTimePct is the average over threads of (thread's hold of
	// this lock / thread lifetime) — the paper's "Avg. Hold Time %".
	AvgHoldTimePct float64
	// MaxWait and MaxHold are the longest single wait and hold.
	MaxWait trace.Time
	MaxHold trace.Time
}

// ChanStats carries per-channel statistics. Channels are waker edges
// rather than critical sections: the on-path figures count the
// cross-thread jumps the walked critical path takes through the
// channel and the blocked time those jumps absorbed, the analogue of
// a lock's CP Time for handoff-style synchronization.
type ChanStats struct {
	Chan trace.ObjID
	Name string
	// Capacity is the buffer capacity (0 = unbuffered).
	Capacity int

	// Sends, Recvs and Closes count completed operations.
	Sends  int
	Recvs  int
	Closes int
	// BlockedSends / BlockedRecvs count operations that parked.
	BlockedSends int
	BlockedRecvs int
	// SendWait / RecvWait are summed blocked durations per direction.
	SendWait trace.Time
	RecvWait trace.Time
	// MaxWait is the longest single blocked operation.
	MaxWait trace.Time

	// JumpsOnCP counts critical-path jumps through this channel.
	JumpsOnCP int
	// WaitOnCP is the blocked time those jumps absorbed — the time the
	// critical path spent waiting on this channel.
	WaitOnCP trace.Time
	// TotalWait is SendWait + RecvWait.
	TotalWait trace.Time
}

// ThreadStats summarizes one thread.
type ThreadStats struct {
	Thread   trace.ThreadID
	Name     string
	Start    trace.Time
	End      trace.Time
	Lifetime trace.Time
	// LockWait is total time blocked on mutexes.
	LockWait trace.Time
	// LockHold is total time inside critical sections (sums nested
	// holds independently).
	LockHold trace.Time
	// BarrierWait is total time blocked at barriers.
	BarrierWait trace.Time
	// CondWait is total time blocked in condition waits.
	CondWait trace.Time
	// ChanWait is total time blocked in channel sends and receives.
	ChanWait trace.Time
	// JoinWait is total time blocked joining other threads.
	JoinWait trace.Time
	// Invocations counts critical sections executed.
	Invocations int
	// TimeOnCP is walked critical-path time attributed to the thread.
	TimeOnCP trace.Time
}

// Totals aggregates whole-run figures.
type Totals struct {
	Threads          int
	Mutexes          int
	Channels         int
	Events           int
	Invocations      int
	ContendedInvs    int
	TotalLockWait    trace.Time
	TotalLockHold    trace.Time
	TotalBarrierWait trace.Time
	TotalCondWait    trace.Time
	TotalChanWait    trace.Time
}

// Analyze runs critical lock analysis with the given options. Internal
// index storage is recycled through a pool of Analyzers, so repeated
// calls (sweeps, what-if loops) are allocation-lean; hold an Analyzer
// directly for explicit reuse control.
func Analyze(tr *trace.Trace, opts Options) (*Analysis, error) {
	a := analyzerPool.Get().(*Analyzer)
	defer analyzerPool.Put(a)
	return a.Analyze(tr, opts)
}

// AnalyzeDefault runs Analyze with DefaultOptions.
func AnalyzeDefault(tr *trace.Trace) (*Analysis, error) {
	return Analyze(tr, DefaultOptions())
}

// Lock returns the stats for the lock with the given name, or nil.
func (a *Analysis) Lock(name string) *LockStats {
	for i := range a.Locks {
		if a.Locks[i].Name == name {
			return &a.Locks[i]
		}
	}
	return nil
}

// Chan returns the stats for the channel with the given name, or nil.
func (a *Analysis) Chan(name string) *ChanStats {
	for i := range a.Chans {
		if a.Chans[i].Name == name {
			return &a.Chans[i]
		}
	}
	return nil
}

// CriticalLocks returns the subset of locks on the critical path, most
// critical first.
func (a *Analysis) CriticalLocks() []LockStats {
	var out []LockStats
	for _, l := range a.Locks {
		if l.Critical {
			out = append(out, l)
		}
	}
	return out
}

// TopLocks returns up to n locks ranked by CP Time (the paper's
// ordering); if fewer locks exist, all are returned.
func (a *Analysis) TopLocks(n int) []LockStats {
	if n > len(a.Locks) {
		n = len(a.Locks)
	}
	return a.Locks[:n]
}

// sortChans orders channels by descending critical-path wait, breaking
// ties by descending total wait and then by name for determinism.
func sortChans(chans []ChanStats) {
	sort.Slice(chans, func(i, j int) bool {
		a, b := &chans[i], &chans[j]
		if a.WaitOnCP != b.WaitOnCP {
			return a.WaitOnCP > b.WaitOnCP
		}
		if a.TotalWait != b.TotalWait {
			return a.TotalWait > b.TotalWait
		}
		return a.Name < b.Name
	})
}

// sortLocks orders locks by descending CP time, breaking ties by
// descending wait time and then by name for determinism.
func sortLocks(locks []LockStats) {
	sort.Slice(locks, func(i, j int) bool {
		a, b := &locks[i], &locks[j]
		if a.HoldOnCP != b.HoldOnCP {
			return a.HoldOnCP > b.HoldOnCP
		}
		if a.TotalWait != b.TotalWait {
			return a.TotalWait > b.TotalWait
		}
		return a.Name < b.Name
	})
}
