package core

import (
	"testing"

	"critlock/internal/trace"
)

func TestSlackFig1(t *testing.T) {
	an, err := AnalyzeDefault(fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	sa := an.Slack()
	byName := map[string]LockSlack{}
	for _, l := range sa.Locks {
		byName[l.Name] = l
	}
	// Critical locks have zero slack.
	for _, name := range []string{"L1", "L2", "L3"} {
		l := byName[name]
		if l.MinSlack != 0 {
			t.Errorf("%s slack = %d, want 0 (it is on the CP)", name, l.MinSlack)
		}
		if !l.OnCP {
			t.Errorf("%s not flagged OnCP", name)
		}
	}
	// L4 is off the path with positive slack: its last release (T4 at
	// 14, in fig1 microsecond units) precedes T4's contended L2 obtain
	// at 17 — the wait absorbs 3 units of slippage... but T3's release
	// at 13 feeds T4's obtain at 13 directly, making the chain tight;
	// the exact number matters less than: positive and finite.
	l4 := byName["L4"]
	if l4.MinSlack <= 0 {
		t.Errorf("L4 slack = %d, want > 0 (off the critical path)", l4.MinSlack)
	}
	if l4.OnCP {
		t.Error("L4 flagged OnCP")
	}
	// L4 must be the *only* near-critical candidate set at a generous
	// epsilon, and absent at epsilon below its slack.
	if nc := sa.NearCritical(l4.MinSlack); len(nc) != 1 || nc[0].Name != "L4" {
		t.Errorf("NearCritical(big) = %+v, want [L4]", nc)
	}
	if nc := sa.NearCritical(l4.MinSlack - 1); len(nc) != 0 {
		t.Errorf("NearCritical(small) = %+v, want empty", nc)
	}
}

// TestSlackTightChain: in a pure serial convoy everything has zero
// slack.
func TestSlackSerialChain(t *testing.T) {
	b := trace.NewBuilder()
	a := b.Thread("A", trace.NoThread)
	c := b.Thread("B", a)
	m := b.Mutex("chain")
	b.Start(0, a)
	b.Start(0, c)
	b.CS(a, m, 0, 0, 50)
	b.CS(c, m, 0, 50, 100)
	b.Exit(50, a)
	b.Exit(100, c)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	sa := an.Slack()
	if len(sa.Locks) != 1 || sa.Locks[0].MinSlack != 0 {
		t.Errorf("serial chain slack = %+v, want single lock at 0", sa.Locks)
	}
}

// TestSlackParallelBranch: a short side branch has slack equal to the
// time it finishes before the long branch.
func TestSlackParallelBranch(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	side := b.Thread("side", main)
	long := b.Mutex("long")
	short := b.Mutex("short")
	b.Start(0, main)
	b.Start(0, side)
	b.CS(main, long, 0, 0, 100) // the spine
	b.CS(side, short, 0, 0, 30) // finishes 70 before the end
	b.Exit(100, main)
	b.Exit(30, side)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	sa := an.Slack()
	byName := map[string]LockSlack{}
	for _, l := range sa.Locks {
		byName[l.Name] = l
	}
	if got := byName["long"].MinSlack; got != 0 {
		t.Errorf("long slack = %d, want 0", got)
	}
	// side's release at 30 can slip until its thread's exit slips to
	// 100: slack = 70.
	if got := byName["short"].MinSlack; got != 70 {
		t.Errorf("short slack = %d, want 70", got)
	}
}

// TestSlackWaitAbsorbs: a lock feeding a wait that has room to shrink
// gets that room as slack.
func TestSlackWaitAbsorption(t *testing.T) {
	b := trace.NewBuilder()
	a := b.Thread("A", trace.NoThread)
	c := b.Thread("B", a)
	feeder := b.Mutex("feeder")
	tail := b.Mutex("tail")
	b.Start(0, a)
	b.Start(0, c)
	// A releases feeder at 20; B blocked on feeder from 5, obtains at
	// 20, then computes to 100. A meanwhile computes to 60 and exits.
	b.CS(a, feeder, 0, 0, 20)
	b.Exit(60, a)
	b.CS(c, feeder, 5, 20, 30)
	b.CS(c, tail, 30, 30, 100)
	b.Exit(100, c)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	sa := an.Slack()
	byName := map[string]LockSlack{}
	for _, l := range sa.Locks {
		byName[l.Name] = l
	}
	// feeder's release feeds B's obtain directly (B was already
	// waiting): zero slack — it IS the binding dependency.
	if got := byName["feeder"].MinSlack; got != 0 {
		t.Errorf("feeder slack = %d, want 0", got)
	}
	if got := byName["tail"].MinSlack; got != 0 {
		t.Errorf("tail slack = %d, want 0", got)
	}
}
