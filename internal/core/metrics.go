package core

import (
	"slices"

	"critlock/internal/trace"
)

// computeMetrics fills Analysis.Locks, Analysis.Threads and
// Analysis.Totals from the walked critical path.
func computeMetrics(an *Analysis, idx *index, opts Options) {
	tr := an.Trace
	nThreads := len(tr.Threads)

	an.Threads = make([]ThreadStats, nThreads)
	for tid := 0; tid < nThreads; tid++ {
		ts := &an.Threads[tid]
		ts.Thread = trace.ThreadID(tid)
		ts.Name = tr.Threads[tid].Name
		if si := idx.startIdx[tid]; si >= 0 {
			ts.Start = tr.Events[si].T
		}
		if ei := idx.exitIdx[tid]; ei >= 0 {
			ts.End = tr.Events[ei].T
		} else {
			ts.End = tr.End()
		}
		ts.Lifetime = ts.End - ts.Start
	}

	// Blocking-time accounting per thread (barrier, cond, join waits).
	// Condition waits are matched begin→end because the backend may
	// emit mutex-reacquisition events between them.
	for tid := 0; tid < nThreads; tid++ {
		evs := idx.thrEvents[tid]
		ts := &an.Threads[tid]
		condBegin := map[trace.ObjID]trace.Time{}
		for pos, gi := range evs {
			e := tr.Events[gi]
			if pos == 0 {
				continue
			}
			prevT := tr.Events[evs[pos-1]].T
			switch e.Kind {
			case trace.EvBarrierDepart:
				if e.Arg == 0 {
					ts.BarrierWait += e.T - prevT
				}
			case trace.EvCondWaitBegin:
				condBegin[e.Obj] = e.T
			case trace.EvCondWaitEnd:
				if begin, ok := condBegin[e.Obj]; ok {
					ts.CondWait += e.T - begin
					delete(condBegin, e.Obj)
				}
			case trace.EvJoinEnd:
				if idx.blocked[gi] {
					ts.JoinWait += e.T - prevT
				}
			}
		}
	}

	// Critical-path pieces per thread, sorted by time, for clipping.
	piecesByThread := make([][]Piece, nThreads)
	for _, p := range an.CP.Pieces {
		piecesByThread[p.Thread] = append(piecesByThread[p.Thread], p)
		an.Threads[p.Thread].TimeOnCP += p.Dur()
	}
	for tid := range piecesByThread {
		slices.SortFunc(piecesByThread[tid], func(a, b Piece) int {
			switch {
			case a.From < b.From:
				return -1
			case a.From > b.From:
				return 1
			}
			return 0
		})
	}

	// Per-lock accumulation.
	type lockAcc struct {
		stats LockStats
		// waitByThread / holdByThread accumulate per-thread totals for
		// the TYPE 2 percentage averages (dense by ThreadID).
		waitByThread []trace.Time
		holdByThread []trace.Time
	}
	accs := map[trace.ObjID]*lockAcc{}
	accOf := func(lock trace.ObjID) *lockAcc {
		a := accs[lock]
		if a == nil {
			a = &lockAcc{
				stats:        LockStats{Lock: lock, Name: tr.ObjName(lock)},
				waitByThread: make([]trace.Time, nThreads),
				holdByThread: make([]trace.Time, nThreads),
			}
			accs[lock] = a
		}
		return a
	}
	// Register every mutex, even unused ones, so reports list them.
	for _, o := range tr.Objects {
		if o.Kind == trace.ObjMutex {
			accOf(o.ID)
		}
	}

	// Clip invocations against critical-path pieces with a per-thread
	// two-pointer sweep (invocations are in obtain order per thread).
	an.holdsByThread = make([][]interval, nThreads)
	an.hotByLock = map[trace.ObjID][]interval{}
	cursor := make([]int, nThreads)
	for tid := 0; tid < nThreads; tid++ {
		for _, pi := range idx.invsByThread[tid] {
			inv := &idx.invocations[pi]
			a := accOf(inv.lock)
			st := &a.stats

			w, h := inv.wait(), inv.hold()
			st.TotalInvocations++
			if inv.shared {
				st.SharedInvocations++
			}
			if inv.contended {
				st.TotalContended++
			}
			st.TotalWait += w
			st.TotalHold += h
			if w > st.MaxWait {
				st.MaxWait = w
			}
			if h > st.MaxHold {
				st.MaxHold = h
			}
			a.waitByThread[tid] += w
			a.holdByThread[tid] += h

			ts := &an.Threads[tid]
			ts.LockWait += w
			ts.LockHold += h
			ts.Invocations++

			an.holdsByThread[tid] = append(an.holdsByThread[tid], interval{inv.obtT, inv.relT})

			onCP, clipped := clipAgainst(piecesByThread[tid], &cursor[tid], inv.obtT, inv.relT,
				func(lo, hi trace.Time) {
					an.hotByLock[inv.lock] = append(an.hotByLock[inv.lock], interval{lo, hi})
				})
			if !onCP {
				continue
			}
			st.Critical = true
			st.InvocationsOnCP++
			if inv.contended {
				st.ContendedOnCP++
			}
			if opts.ClipHold {
				st.HoldOnCP += clipped
			} else {
				st.HoldOnCP += h
			}
		}
	}

	// Totals.
	an.Totals = Totals{
		Threads: nThreads,
		Events:  len(tr.Events),
	}
	for _, o := range tr.Objects {
		if o.Kind == trace.ObjMutex {
			an.Totals.Mutexes++
		}
	}
	for tid := range an.Threads {
		ts := &an.Threads[tid]
		an.Totals.TotalLockWait += ts.LockWait
		an.Totals.TotalLockHold += ts.LockHold
		an.Totals.TotalBarrierWait += ts.BarrierWait
		an.Totals.TotalCondWait += ts.CondWait
		an.Totals.Invocations += ts.Invocations
	}

	// Sort the per-lock on-path intervals (a mutex is held by one
	// thread at a time, so they never overlap and merging just sorts).
	for lock, ivs := range an.hotByLock {
		an.hotByLock[lock] = mergeIntervals(ivs)
	}

	// Finalize percentages.
	cpLen := an.CP.Length
	for _, a := range accs {
		st := &a.stats
		an.Totals.ContendedInvs += st.TotalContended
		if cpLen > 0 {
			st.CPTimePct = 100 * float64(st.HoldOnCP) / float64(cpLen)
		}
		if st.InvocationsOnCP > 0 {
			st.ContProbOnCP = 100 * float64(st.ContendedOnCP) / float64(st.InvocationsOnCP)
		}
		if st.TotalInvocations > 0 {
			st.AvgContProb = 100 * float64(st.TotalContended) / float64(st.TotalInvocations)
		}
		if nThreads > 0 {
			st.AvgInvPerThread = float64(st.TotalInvocations) / float64(nThreads)
		}
		var waitPct, holdPct float64
		for tid := 0; tid < nThreads; tid++ {
			lt := an.Threads[tid].Lifetime
			if lt <= 0 {
				continue
			}
			waitPct += 100 * float64(a.waitByThread[tid]) / float64(lt)
			holdPct += 100 * float64(a.holdByThread[tid]) / float64(lt)
		}
		if nThreads > 0 {
			st.WaitTimePct = waitPct / float64(nThreads)
			st.AvgHoldTimePct = holdPct / float64(nThreads)
		}
		if st.AvgInvPerThread > 0 {
			st.InvIncrease = float64(st.InvocationsOnCP) / st.AvgInvPerThread
		}
		if st.AvgHoldTimePct > 0 {
			st.SizeIncrease = st.CPTimePct / st.AvgHoldTimePct
		}
		an.Locks = append(an.Locks, *st)
	}
	sortLocks(an.Locks)
}

// clipAgainst intersects [from, to] with the sorted pieces, advancing
// the caller's cursor (invocations arrive in increasing obtain order,
// so the sweep is O(pieces + invocations) per thread). It returns
// whether the interval touches the critical path and the total
// intersection length; each nonzero intersection is also reported to
// emit (used to build the per-lock on-path interval index).
func clipAgainst(pieces []Piece, cursor *int, from, to trace.Time, emit func(lo, hi trace.Time)) (bool, trace.Time) {
	// Advance past pieces that end before this invocation begins. The
	// cursor only moves forward: a later invocation can never overlap
	// a piece that ended before an earlier one began.
	for *cursor < len(pieces) && pieces[*cursor].To < from {
		*cursor++
	}
	onCP := false
	var total trace.Time
	for i := *cursor; i < len(pieces); i++ {
		p := pieces[i]
		if p.From > to {
			break
		}
		lo, hi := p.From, p.To
		if from > lo {
			lo = from
		}
		if to < hi {
			hi = to
		}
		if hi > lo {
			onCP = true
			total += hi - lo
			if emit != nil {
				emit(lo, hi)
			}
		} else if from == to && p.From <= from && from <= p.To {
			// Zero-length critical section at a point the walked path
			// passes through.
			onCP = true
		}
	}
	return onCP, total
}
