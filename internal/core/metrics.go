package core

import (
	"runtime"
	"slices"

	"critlock/internal/par"
	"critlock/internal/trace"
)

// lockAcc accumulates one mutex's statistics during the metric pass.
type lockAcc struct {
	stats LockStats
	// waitByThread / holdByThread accumulate per-thread totals for
	// the TYPE 2 percentage averages (dense by ThreadID).
	waitByThread []trace.Time
	holdByThread []trace.Time
}

// merge folds src (accumulated over a disjoint set of threads) into a.
func (a *lockAcc) merge(src *lockAcc) {
	d, s := &a.stats, &src.stats
	d.Critical = d.Critical || s.Critical
	d.HoldOnCP += s.HoldOnCP
	d.InvocationsOnCP += s.InvocationsOnCP
	d.ContendedOnCP += s.ContendedOnCP
	d.TotalInvocations += s.TotalInvocations
	d.SharedInvocations += s.SharedInvocations
	d.TotalContended += s.TotalContended
	d.TotalWait += s.TotalWait
	d.TotalHold += s.TotalHold
	if s.MaxWait > d.MaxWait {
		d.MaxWait = s.MaxWait
	}
	if s.MaxHold > d.MaxHold {
		d.MaxHold = s.MaxHold
	}
	for tid, w := range src.waitByThread {
		a.waitByThread[tid] += w
	}
	for tid, h := range src.holdByThread {
		a.holdByThread[tid] += h
	}
}

// mergeChan folds src (accumulated over a disjoint set of threads)
// into dst; every quantity is an integer sum or maximum.
func mergeChan(dst, src *ChanStats) {
	dst.Sends += src.Sends
	dst.Recvs += src.Recvs
	dst.Closes += src.Closes
	dst.BlockedSends += src.BlockedSends
	dst.BlockedRecvs += src.BlockedRecvs
	dst.SendWait += src.SendWait
	dst.RecvWait += src.RecvWait
	if src.MaxWait > dst.MaxWait {
		dst.MaxWait = src.MaxWait
	}
}

// lockSink is one accumulation domain: the serial pass uses a single
// sink; the parallel pass gives each worker its own and merges them in
// chunk order afterwards, so results are bit-identical either way (all
// merged quantities are integer sums, maxima or bools).
type lockSink struct {
	nThreads int
	// Object IDs are dense (0..nObjs), so the per-object accumulators
	// are plain slices — the metric pass touches one per critical
	// section, and a map lookup there costs more than the whole
	// arithmetic update. A nil entry means the object was never hit.
	accs  []*lockAcc
	chans []*ChanStats
	hot   [][]interval
}

func newLockSink(nThreads, nObjs int) *lockSink {
	return &lockSink{
		nThreads: nThreads,
		accs:     make([]*lockAcc, nObjs),
		chans:    make([]*ChanStats, nObjs),
		hot:      make([][]interval, nObjs),
	}
}

func (s *lockSink) accOf(lock trace.ObjID, name string) *lockAcc {
	a := s.accs[lock]
	if a == nil {
		a = &lockAcc{
			stats:        LockStats{Lock: lock, Name: name},
			waitByThread: make([]trace.Time, s.nThreads),
			holdByThread: make([]trace.Time, s.nThreads),
		}
		s.accs[lock] = a
	}
	return a
}

func (s *lockSink) chanOf(ch trace.ObjID, name string) *ChanStats {
	c := s.chans[ch]
	if c == nil {
		c = &ChanStats{Chan: ch, Name: name}
		s.chans[ch] = c
	}
	return c
}

// metricsParallelMin is the invocation count below which the parallel
// metric pass is not worth its goroutine and merge overhead.
const metricsParallelMin = 4096

// metricsWorkersOverride forces the worker count (test hook; 0 = off).
var metricsWorkersOverride int

func metricsWorkers(nInvocations, nThreads, capWorkers int) int {
	if metricsWorkersOverride > 0 {
		return metricsWorkersOverride
	}
	if capWorkers > 0 {
		// An explicit Options.Workers cap overrides the size heuristic:
		// the caller is budgeting CPU (a serving layer running analyses
		// concurrently), and results are worker-count independent.
		return capWorkers
	}
	if nThreads < 2 || nInvocations < metricsParallelMin {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// computeMetrics fills Analysis.Locks, Analysis.Threads and
// Analysis.Totals from the walked critical path. The per-thread
// accumulation (blocking-time accounting, per-lock sums, critical-path
// clipping) runs on a bounded worker group when the trace is large
// enough to pay for it; the output is independent of the worker count.
func computeMetrics(an *Analysis, idx *index, opts Options) {
	tr := an.Trace
	nThreads := len(tr.Threads)

	an.Threads = make([]ThreadStats, nThreads)
	for tid := 0; tid < nThreads; tid++ {
		ts := &an.Threads[tid]
		ts.Thread = trace.ThreadID(tid)
		ts.Name = tr.Threads[tid].Name
		if si := idx.startIdx[tid]; si >= 0 {
			ts.Start = tr.Events[si].T
		}
		if ei := idx.exitIdx[tid]; ei >= 0 {
			ts.End = tr.Events[ei].T
		} else {
			ts.End = tr.End()
		}
		ts.Lifetime = ts.End - ts.Start
	}

	// Critical-path pieces per thread, for clipping — packed (From, To)
	// pairs rather than indices into CP.Pieces, so the clip sweep scans
	// a dense 16-byte stride with no pointer chase; sorted by time in
	// the per-thread pass below.
	clipsByThread := make([][]interval, nThreads)
	clipCounts := make([]int, nThreads)
	for pi := range an.CP.Pieces {
		clipCounts[an.CP.Pieces[pi].Thread]++
	}
	for tid, n := range clipCounts {
		if n > 0 {
			clipsByThread[tid] = make([]interval, 0, n)
		}
	}
	for pi := range an.CP.Pieces {
		p := &an.CP.Pieces[pi]
		clipsByThread[p.Thread] = append(clipsByThread[p.Thread], interval{p.From, p.To})
		an.Threads[p.Thread].TimeOnCP += p.Dur()
	}

	// Per-thread accumulation, chunked across workers. Each worker
	// owns a disjoint thread range: ThreadStats and holdsByThread are
	// indexed by tid (no sharing), per-lock sums go to the worker's
	// private sink and merge below.
	an.holdsByThread = make([][]interval, nThreads)
	an.hotByLock = map[trace.ObjID][]interval{}
	nObjs := len(tr.Objects)
	workers := metricsWorkers(len(idx.invocations), nThreads, opts.Workers)
	sinks := make([]*lockSink, min(workers, nThreads))
	par.Chunks(nThreads, workers, func(chunk, lo, hi int) {
		sink := newLockSink(nThreads, nObjs)
		sinks[chunk] = sink
		for tid := lo; tid < hi; tid++ {
			accumulateThread(an, idx, opts, tid, clipsByThread[tid], sink)
		}
	})

	// Merge the workers' sinks in chunk (= thread) order.
	merged := newLockSink(nThreads, nObjs)
	if len(sinks) > 0 && sinks[0] != nil {
		merged = sinks[0]
	}
	for _, sink := range sinks[1:] {
		foldSink(merged, sink)
	}
	finalizeMetrics(an, merged, len(tr.Events))
}

// finalizeMetrics turns the merged accumulation sink into the
// analysis's Locks, Totals and hot-interval index: it registers unused
// mutexes, sums totals, merges per-lock on-path intervals and computes
// the derived percentages. Shared by the in-memory and streaming
// passes — every merged input is an integer sum/maximum/bool and every
// float is computed here exactly once, which is what makes the two
// passes bit-identical.
func finalizeMetrics(an *Analysis, merged *lockSink, nEvents int) {
	tr := an.Trace
	nThreads := len(tr.Threads)

	// Register every mutex and channel, even unused ones, so reports
	// list them.
	for _, o := range tr.Objects {
		switch o.Kind {
		case trace.ObjMutex:
			merged.accOf(o.ID, o.Name)
		case trace.ObjChan:
			merged.chanOf(o.ID, o.Name)
		}
	}

	// Totals.
	an.Totals = Totals{
		Threads: nThreads,
		Events:  nEvents,
	}
	for _, o := range tr.Objects {
		switch o.Kind {
		case trace.ObjMutex:
			an.Totals.Mutexes++
		case trace.ObjChan:
			an.Totals.Channels++
		}
	}
	for tid := range an.Threads {
		ts := &an.Threads[tid]
		an.Totals.TotalLockWait += ts.LockWait
		an.Totals.TotalLockHold += ts.LockHold
		an.Totals.TotalBarrierWait += ts.BarrierWait
		an.Totals.TotalCondWait += ts.CondWait
		an.Totals.TotalChanWait += ts.ChanWait
		an.Totals.Invocations += ts.Invocations
	}

	// Sort the per-lock on-path intervals (a mutex is held by one
	// thread at a time, so they never overlap and merging just sorts).
	for lock, ivs := range merged.hot {
		if len(ivs) > 0 {
			an.hotByLock[trace.ObjID(lock)] = mergeIntervals(ivs)
		}
	}

	// Finalize percentages.
	cpLen := an.CP.Length
	for _, a := range merged.accs {
		if a == nil {
			continue
		}
		st := &a.stats
		an.Totals.ContendedInvs += st.TotalContended
		if cpLen > 0 {
			st.CPTimePct = 100 * float64(st.HoldOnCP) / float64(cpLen)
		}
		if st.InvocationsOnCP > 0 {
			st.ContProbOnCP = 100 * float64(st.ContendedOnCP) / float64(st.InvocationsOnCP)
		}
		if st.TotalInvocations > 0 {
			st.AvgContProb = 100 * float64(st.TotalContended) / float64(st.TotalInvocations)
		}
		if nThreads > 0 {
			st.AvgInvPerThread = float64(st.TotalInvocations) / float64(nThreads)
		}
		var waitPct, holdPct float64
		for tid := 0; tid < nThreads; tid++ {
			lt := an.Threads[tid].Lifetime
			if lt <= 0 {
				continue
			}
			waitPct += 100 * float64(a.waitByThread[tid]) / float64(lt)
			holdPct += 100 * float64(a.holdByThread[tid]) / float64(lt)
		}
		if nThreads > 0 {
			st.WaitTimePct = waitPct / float64(nThreads)
			st.AvgHoldTimePct = holdPct / float64(nThreads)
		}
		if st.AvgInvPerThread > 0 {
			st.InvIncrease = float64(st.InvocationsOnCP) / st.AvgInvPerThread
		}
		if st.AvgHoldTimePct > 0 {
			st.SizeIncrease = st.CPTimePct / st.AvgHoldTimePct
		}
		an.Locks = append(an.Locks, *st)
	}
	sortLocks(an.Locks)

	// Channel critical-path attribution comes straight from the jump
	// log: every jump through a channel carries the blocked interval it
	// absorbed.
	for _, j := range an.CP.JumpLog {
		if j.Kind != JumpChan {
			continue
		}
		cs := merged.chanOf(j.Obj, tr.ObjName(j.Obj))
		cs.JumpsOnCP++
		cs.WaitOnCP += j.Wait
	}
	for _, cs := range merged.chans {
		if cs == nil {
			continue
		}
		cs.Capacity = tr.Object(cs.Chan).Parties
		cs.TotalWait = cs.SendWait + cs.RecvWait
		an.Chans = append(an.Chans, *cs)
	}
	sortChans(an.Chans)
}

// accumulateThread runs the full per-thread metric pass for tid:
// blocking-time accounting, per-lock accumulation into sink, and
// critical-path clipping of the thread's invocations. It writes only
// tid-indexed analysis state and the sink, so disjoint thread ranges
// accumulate concurrently.
func accumulateThread(an *Analysis, idx *index, opts Options, tid int, clips []interval, sink *lockSink) {
	tr := an.Trace
	evs := idx.thrEvents[tid]
	ts := &an.Threads[tid]

	// Blocking-time accounting (barrier, cond, join waits). Condition
	// waits are matched begin→end because the backend may emit
	// mutex-reacquisition events between them.
	var condBegin map[trace.ObjID]trace.Time
	for pos, gi := range evs {
		e := tr.Events[gi]
		if pos == 0 {
			continue
		}
		switch e.Kind {
		case trace.EvBarrierDepart:
			if e.Arg == 0 {
				ts.BarrierWait += e.T - tr.Events[evs[pos-1]].T
			}
		case trace.EvCondWaitBegin:
			if condBegin == nil {
				condBegin = map[trace.ObjID]trace.Time{}
			}
			condBegin[e.Obj] = e.T
		case trace.EvCondWaitEnd:
			if begin, ok := condBegin[e.Obj]; ok {
				ts.CondWait += e.T - begin
				delete(condBegin, e.Obj)
			}
		case trace.EvChanSend:
			cs := sink.chanOf(e.Obj, tr.ObjName(e.Obj))
			cs.Sends++
			if e.Arg&trace.ChanArgBlocked != 0 {
				w := e.T - tr.Events[evs[pos-1]].T
				cs.BlockedSends++
				cs.SendWait += w
				if w > cs.MaxWait {
					cs.MaxWait = w
				}
				ts.ChanWait += w
			}
		case trace.EvChanRecv:
			cs := sink.chanOf(e.Obj, tr.ObjName(e.Obj))
			cs.Recvs++
			if e.Arg&trace.ChanArgBlocked != 0 {
				w := e.T - tr.Events[evs[pos-1]].T
				cs.BlockedRecvs++
				cs.RecvWait += w
				if w > cs.MaxWait {
					cs.MaxWait = w
				}
				ts.ChanWait += w
			}
		case trace.EvChanClose:
			sink.chanOf(e.Obj, tr.ObjName(e.Obj)).Closes++
		case trace.EvJoinEnd:
			if idx.blocked[gi] {
				ts.JoinWait += e.T - tr.Events[evs[pos-1]].T
			}
		}
	}

	sortClipIndex(clips)

	// Clip invocations against critical-path pieces with a two-pointer
	// sweep (invocations are in obtain order per thread).
	invs := idx.invsByThread[tid]
	if len(invs) > 0 {
		an.holdsByThread[tid] = make([]interval, 0, len(invs))
	}
	cursor := 0
	for _, pi := range invs {
		inv := &idx.invocations[pi]
		an.holdsByThread[tid] = append(an.holdsByThread[tid], interval{inv.obtT, inv.relT})
		accumulateInvocation(sink, ts, inv, tr.ObjName(inv.lock), opts, clips, &cursor)
	}
}

// sortClipIndex time-orders one thread's clip index by piece start.
// The comparator consults only From, exactly like the []Piece sort it
// replaced, so the resulting clip order is unchanged (ties keep their
// emit order only by accident of the sort, but clipAgainst sums over
// overlapping pieces and mergeIntervals canonicalizes the emitted
// intervals, so tie order cannot reach the output).
func sortClipIndex(clips []interval) {
	// The walk emits pieces in forward time order, so a thread's index
	// subsequence is nearly always sorted already; verify in one scan
	// before paying for a sort.
	sorted := true
	for k := 1; k < len(clips); k++ {
		if clips[k].From < clips[k-1].From {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	slices.SortFunc(clips, func(a, b interval) int {
		switch {
		case a.From < b.From:
			return -1
		case a.From > b.From:
			return 1
		}
		return 0
	})
}

// accumulateInvocation folds one obtained invocation into the sink and
// its thread's stats, clipping the hold interval against the thread's
// time-sorted critical-path clip index (indices into cp) via the
// caller's advancing cursor. Invocations of a thread must arrive in
// obtain order. Shared by the in-memory and streaming metric passes.
func accumulateInvocation(sink *lockSink, ts *ThreadStats, inv *invocation, name string, opts Options, clips []interval, cursor *int) {
	a := sink.accOf(inv.lock, name)
	st := &a.stats
	tid := int(inv.thread)

	w, h := inv.wait(), inv.hold()
	st.TotalInvocations++
	if inv.shared {
		st.SharedInvocations++
	}
	if inv.contended {
		st.TotalContended++
	}
	st.TotalWait += w
	st.TotalHold += h
	if w > st.MaxWait {
		st.MaxWait = w
	}
	if h > st.MaxHold {
		st.MaxHold = h
	}
	a.waitByThread[tid] += w
	a.holdByThread[tid] += h

	ts.LockWait += w
	ts.LockHold += h
	ts.Invocations++

	onCP, clipped := clipAgainst(clips, cursor, inv.obtT, inv.relT,
		func(lo, hi trace.Time) {
			sink.hot[inv.lock] = append(sink.hot[inv.lock], interval{lo, hi})
		})
	if !onCP {
		return
	}
	st.Critical = true
	st.InvocationsOnCP++
	if inv.contended {
		st.ContendedOnCP++
	}
	if opts.ClipHold {
		st.HoldOnCP += clipped
	} else {
		st.HoldOnCP += h
	}
}

// clipAgainst intersects [from, to] with the sorted clip intervals,
// advancing the caller's cursor (invocations arrive in increasing
// obtain order, so the sweep is O(pieces + invocations) per thread).
// It returns whether the interval touches the critical path and the
// total intersection length; each nonzero intersection is also
// reported to emit (used to build the per-lock on-path interval
// index).
func clipAgainst(clips []interval, cursor *int, from, to trace.Time, emit func(lo, hi trace.Time)) (bool, trace.Time) {
	// Advance past pieces that end before this invocation begins. The
	// cursor only moves forward: a later invocation can never overlap
	// a piece that ended before an earlier one began.
	for *cursor < len(clips) && clips[*cursor].To < from {
		*cursor++
	}
	onCP := false
	var total trace.Time
	for i := *cursor; i < len(clips); i++ {
		p := clips[i]
		if p.From > to {
			break
		}
		lo, hi := p.From, p.To
		if from > lo {
			lo = from
		}
		if to < hi {
			hi = to
		}
		if hi > lo {
			onCP = true
			total += hi - lo
			if emit != nil {
				emit(lo, hi)
			}
		} else if from == to && p.From <= from && from <= p.To {
			// Zero-length critical section at a point the walked path
			// passes through.
			onCP = true
		}
	}
	return onCP, total
}
