package core

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"critlock/internal/trace"
)

// Annotations: the streaming stand-in for the in-memory index's
// posInThread/waker/blocked arrays, stored as two per-event planes with
// different lifetimes:
//
//   - links — prev (int32 LE, previous event on the same thread or -1)
//     and waker (int32 LE or -1), 8 bytes per event. Only the backward
//     walk reads them, so the whole plane is released the moment the
//     walk finishes — before pass 3's output peaks.
//   - flags — 1 byte per event (bit 0 = blocked). Pass 3 still needs
//     it, and at a ninth of the record it stays cheap to keep.
const (
	annLinkSize = 8
	annRecSize  = annLinkSize + 1 // both planes, for budget/spill sizing
)

const annBlocked = 1 << 0

type annRec struct {
	prev  int32
	waker int32
	flags byte
}

func putAnnLink(dst []byte, prev, waker int32) {
	binary.LittleEndian.PutUint32(dst[0:4], uint32(prev))
	binary.LittleEndian.PutUint32(dst[4:8], uint32(waker))
}

func getAnnLink(src []byte) (prev, waker int32) {
	return int32(binary.LittleEndian.Uint32(src[0:4])),
		int32(binary.LittleEndian.Uint32(src[4:8]))
}

// DefaultAnnotationBudget is the resident-annotation ceiling below
// which pass 1 keeps its per-segment shards in memory: 9 bytes per
// event, so the default covers traces up to ~29M events before
// spilling to a temp file.
const DefaultAnnotationBudget int64 = 256 << 20

// annStore holds pass 1's per-event annotations, sharded by segment.
// When the whole run fits the budget (9 bytes × events) the shards live
// in memory and passes 2 and 3 read them with zero copies; otherwise
// every shard spills to a temp file (links at idx*8, flags at
// n*8 + idx), restoring PR 2's bounded-memory behavior. The choice is
// all-or-nothing and known up front, so both modes behave identically —
// including the patches that land after deferred wakers resolve.
//
// Concurrency: shard/commit touch only segment s's slots, so parallel
// pass-1 workers over disjoint segment ranges never race; patches and
// reads happen in single-threaded phases.
type annStore struct {
	firsts []int // global first event index per segment
	counts []int
	n      int      // total events (spill-file plane offsets)
	links  [][]byte // memory mode: per-segment link records
	flags  [][]byte // memory mode: per-segment flag bytes
	f      *os.File // spill mode
}

// newAnnStore sizes the store for src's n events under budget
// (0 = DefaultAnnotationBudget, negative = always spill).
func newAnnStore(src SegmentSource, n int, tmpDir string, budget int64) (*annStore, error) {
	if budget == 0 {
		budget = DefaultAnnotationBudget
	}
	nSegs := src.NumSegments()
	a := &annStore{firsts: make([]int, nSegs), counts: make([]int, nSegs), n: n}
	for s := 0; s < nSegs; s++ {
		a.firsts[s], a.counts[s] = src.SegmentBounds(s)
	}
	if int64(n)*annRecSize <= budget {
		a.links = make([][]byte, nSegs)
		a.flags = make([][]byte, nSegs)
		return a, nil
	}
	f, err := os.CreateTemp(tmpDir, "cla-ann-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("core: creating annotation file: %w", err)
	}
	a.f = f
	return a, nil
}

// inMemory reports whether shards stay resident.
func (a *annStore) inMemory() bool { return a.f == nil }

// shard returns link and flag buffers for segment s, reusing the
// scratch buffers where the store does not take ownership (spill
// mode). The caller fills every record, then commits.
func (a *annStore) shard(s int, lkScratch, flScratch []byte) (links, flags []byte) {
	count := a.counts[s]
	if a.inMemory() || cap(lkScratch) < count*annLinkSize {
		links = make([]byte, count*annLinkSize)
	} else {
		links = lkScratch[:count*annLinkSize]
	}
	if a.inMemory() || cap(flScratch) < count {
		flags = make([]byte, count)
	} else {
		flags = flScratch[:count]
	}
	return links, flags
}

// commit stores segment s's filled shard, returning how many bytes
// were spilled (0 in memory mode). In memory mode the store takes
// ownership of the buffers.
func (a *annStore) commit(s int, links, flags []byte) (int64, error) {
	if a.inMemory() {
		a.links[s] = links
		a.flags[s] = flags
		return 0, nil
	}
	first := int64(a.firsts[s])
	if _, err := a.f.WriteAt(links, first*annLinkSize); err != nil {
		return 0, fmt.Errorf("core: writing annotations: %w", err)
	}
	if _, err := a.f.WriteAt(flags, int64(a.n)*annLinkSize+first); err != nil {
		return 0, fmt.Errorf("core: writing annotations: %w", err)
	}
	return int64(len(links) + len(flags)), nil
}

// releaseLinks drops the resident link plane — prev/waker are only read
// by the backward walk, so once it finishes the links are dead weight
// (a no-op in spill mode).
func (a *annStore) releaseLinks() {
	if a.inMemory() {
		for s := range a.links {
			a.links[s] = nil
		}
	}
}

// release drops segment s's resident shards once the final pass has
// consumed them, shrinking the live heap as pass 3 advances (a no-op in
// spill mode, where the deferred remove reclaims the file).
func (a *annStore) release(s int) {
	if a.inMemory() {
		a.links[s] = nil
		a.flags[s] = nil
	}
}

// segOf locates the segment containing global event index idx.
func (a *annStore) segOf(idx int32) int {
	return sort.SearchInts(a.firsts, int(idx)+1) - 1
}

// patch overwrites the waker and flags of record idx (its prev is
// never patched by the sequential pass). Only valid after the owning
// shard was committed.
func (a *annStore) patch(idx int32, waker int32, flags byte) error {
	if a.inMemory() {
		s := a.segOf(idx)
		off := int(idx) - a.firsts[s]
		binary.LittleEndian.PutUint32(a.links[s][off*annLinkSize+4:], uint32(waker))
		a.flags[s][off] = flags
		return nil
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(waker))
	if _, err := a.f.WriteAt(b[:], int64(idx)*annLinkSize+4); err != nil {
		return fmt.Errorf("core: patching annotation %d: %w", idx, err)
	}
	if _, err := a.f.WriteAt([]byte{flags}, int64(a.n)*annLinkSize+int64(idx)); err != nil {
		return fmt.Errorf("core: patching annotation %d: %w", idx, err)
	}
	return nil
}

// patchPrev overwrites the prev link of record idx — the cross-range
// stitch the parallel pass applies at merge time.
func (a *annStore) patchPrev(idx int32, prev int32) error {
	if a.inMemory() {
		s := a.segOf(idx)
		off := (int(idx) - a.firsts[s]) * annLinkSize
		binary.LittleEndian.PutUint32(a.links[s][off:off+4], uint32(prev))
		return nil
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(prev))
	if _, err := a.f.WriteAt(b[:], int64(idx)*annLinkSize); err != nil {
		return fmt.Errorf("core: patching annotation %d: %w", idx, err)
	}
	return nil
}

// readLinks returns the link records [first, first+count). Whole-segment
// ranges — the only ranges the walk requests — come straight out of the
// resident shard with no copy in memory mode; buf is reused otherwise.
func (a *annStore) readLinks(first, count int, buf []byte) ([]byte, error) {
	if a.inMemory() {
		s := a.segOf(int32(first))
		if a.firsts[s] == first && a.counts[s] == count {
			return a.links[s], nil
		}
		// Unaligned range (defensive; no current caller): copy out.
		buf = sizeBuf(buf, count*annLinkSize)
		for i := 0; i < count; i++ {
			s := a.segOf(int32(first + i))
			off := (first + i - a.firsts[s]) * annLinkSize
			copy(buf[i*annLinkSize:], a.links[s][off:off+annLinkSize])
		}
		return buf, nil
	}
	buf = sizeBuf(buf, count*annLinkSize)
	if _, err := a.f.ReadAt(buf, int64(first)*annLinkSize); err != nil {
		return nil, fmt.Errorf("core: reading annotations: %w", err)
	}
	return buf, nil
}

// readFlags returns the flag bytes [first, first+count), with the same
// zero-copy fast path as readLinks.
func (a *annStore) readFlags(first, count int, buf []byte) ([]byte, error) {
	if a.inMemory() {
		s := a.segOf(int32(first))
		if a.firsts[s] == first && a.counts[s] == count {
			return a.flags[s], nil
		}
		buf = sizeBuf(buf, count)
		for i := 0; i < count; i++ {
			s := a.segOf(int32(first + i))
			buf[i] = a.flags[s][first+i-a.firsts[s]]
		}
		return buf, nil
	}
	buf = sizeBuf(buf, count)
	if _, err := a.f.ReadAt(buf, int64(a.n)*annLinkSize+int64(first)); err != nil {
		return nil, fmt.Errorf("core: reading annotations: %w", err)
	}
	return buf, nil
}

func sizeBuf(buf []byte, need int) []byte {
	if cap(buf) < need {
		return make([]byte, need)
	}
	return buf[:need]
}

// remove releases the spill file, if any.
func (a *annStore) remove() {
	if a.f != nil {
		name := a.f.Name()
		a.f.Close()
		os.Remove(name)
		a.f = nil
	}
	a.links = nil
	a.flags = nil
}

// columnAdapter lifts a plain SegmentSource (test stubs, custom
// sources) into a ColumnSource by materializing events per call. Real
// segment directories implement ColumnSource natively (segment.Reader
// batch-decodes straight from the mapped file).
type columnAdapter struct{ SegmentSource }

func (a columnAdapter) LoadColumns(i int, cols *trace.Columns) (int64, error) {
	evs, err := a.SegmentSource.LoadSegment(i, nil)
	if err != nil {
		return 0, err
	}
	cols.Reset(len(evs))
	cols.AppendEvents(evs)
	return 0, nil
}

// asColumnSource returns src's columnar view, wrapping it if needed.
func asColumnSource(src SegmentSource) ColumnSource {
	if cs, ok := src.(ColumnSource); ok {
		return cs
	}
	return columnAdapter{src}
}
