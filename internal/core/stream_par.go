package core

import (
	"fmt"
	"slices"

	"critlock/internal/par"
	"critlock/internal/trace"
)

// Parallel streaming passes: 1 and 3 run over disjoint contiguous
// segment ranges on worker goroutines, then a sequential merge stitches
// the per-range results back into exactly the sequential passes' output.
// The merge is exact, not approximate, because everything crossing a
// range boundary is either
//
//   - resolvable locally with a carried prefix (lock wakers: the waker
//     of a contended obtain is the latest earlier release, so an
//     in-range release settles it and only range-head obtains wait for
//     the carry), or
//   - rare enough to relay verbatim and replay through the sequential
//     state machine in global order (thread lifecycle, barriers,
//     condition variables, channels, joins — pass1Sync; orphaned
//     obtain/release pairs and first-in-range accounting — pass 3's
//     merge), or
//   - commutative (per-lock sums, maxima and bools fold in fixed range
//     order; hot intervals are normalized by mergeIntervals; composition
//     intervals sort by acquire index).
//
// The walk stays sequential: it is a pointer chase along the critical
// path with no independent subproblems.

// syncEv relays one synchronization event from a pass-1 range worker to
// the merge replay.
type syncEv struct {
	idx    int32
	t      trace.Time
	seq    uint64
	arg    int64
	obj    trace.ObjID
	thread trace.ThreadID
	kind   trace.EventKind
}

// boundaryObtain is a contended obtain whose waker (the latest earlier
// release of its lock) lies before the worker's range.
type boundaryObtain struct {
	idx int32
	obj trace.ObjID
}

// p1Range is one pass-1 worker's output.
type p1Range struct {
	err           error
	firstT, lastT trace.Time
	hasEvents     bool
	firstOfThread []int32 // thread's first in-range event (prev patched at merge)
	lastOfThread  []int32 // carry-out prev-chain tails
	lastRelease   []int32 // carry-out last release per lock, -1 = none
	boundary      []boundaryObtain
	sync          []syncEv
	segments      int
	events        int64
	bytes         int64
	spilled       int64
}

// streamPass1Par is streamPass1 over parallel segment ranges. Workers
// decode and annotate their segments, resolving lock wakers and prev
// chains locally where the range suffices; the merge then replays the
// relayed synchronization events through pass1Sync in global order and
// patches everything that crossed a boundary. Bit-identical to the
// sequential pass at any worker count.
func streamPass1Par(src ColumnSource, skel *trace.Trace, ann *annStore, workers int, h *obsHook) (*pass1Result, error) {
	nThreads := len(skel.Threads)
	nObjs := len(skel.Objects)
	nSegs := src.NumSegments()
	ranges := make([]p1Range, min(workers, nSegs))

	par.Chunks(nSegs, workers, func(chunk, lo, hi int) {
		r := &ranges[chunk]
		r.firstOfThread = make([]int32, nThreads)
		r.lastOfThread = make([]int32, nThreads)
		for tid := 0; tid < nThreads; tid++ {
			r.firstOfThread[tid] = -1
			r.lastOfThread[tid] = -1
		}
		r.lastRelease = make([]int32, nObjs)
		for o := range r.lastRelease {
			r.lastRelease[o] = -1
		}
		var cols trace.Columns
		var lkScratch, flScratch []byte
		for s := lo; s < hi; s++ {
			first, _ := src.SegmentBounds(s)
			bytes, err := src.LoadColumns(s, &cols)
			if err != nil {
				r.err = err
				return
			}
			count := cols.Len()
			lk, fl := ann.shard(s, lkScratch, flScratch)
			cT, cSeq, cTh, cKind, cObj, cArg := cols.T, cols.Seq, cols.Thread, cols.Kind, cols.Obj, cols.Arg
			for k := 0; k < count; k++ {
				gi := int32(first + k)
				th := cTh[k]
				if th < 0 || int(th) >= nThreads {
					r.err = fmt.Errorf("core: event %d references thread %d out of range", gi, th)
					return
				}
				t := cT[k]
				if !r.hasEvents {
					r.firstT = t
					r.hasEvents = true
				}
				r.lastT = t
				rec := annRec{prev: r.lastOfThread[th], waker: -1}
				if r.lastOfThread[th] < 0 {
					r.firstOfThread[th] = gi
				}
				r.lastOfThread[th] = gi

				switch kind := trace.EventKind(cKind[k]); kind {
				case trace.EvLockObtain:
					if cArg[k]&trace.LockArgContended != 0 {
						rec.flags |= annBlocked
						if obj := cObj[k]; obj >= 0 && int(obj) < nObjs {
							if lr := r.lastRelease[obj]; lr >= 0 {
								rec.waker = lr
							} else {
								r.boundary = append(r.boundary, boundaryObtain{idx: gi, obj: trace.ObjID(obj)})
							}
						}
					}
				case trace.EvLockRelease:
					if obj := cObj[k]; obj >= 0 && int(obj) < nObjs {
						r.lastRelease[obj] = gi
					}
				default:
					if isSyncKind(kind) {
						r.sync = append(r.sync, syncEv{
							idx: gi, t: t, seq: cSeq[k], arg: cArg[k],
							obj: trace.ObjID(cObj[k]), thread: trace.ThreadID(th), kind: kind,
						})
					}
				}

				putAnnLink(lk[k*annLinkSize:], rec.prev, rec.waker)
				fl[k] = rec.flags
			}
			spilled, err := ann.commit(s, lk, fl)
			if err != nil {
				r.err = err
				return
			}
			if !ann.inMemory() {
				lkScratch, flScratch = lk, fl
			}
			r.spilled += spilled
			r.segments++
			r.events += int64(count)
			r.bytes += bytes
		}
	})
	for i := range ranges {
		if ranges[i].err != nil {
			return nil, ranges[i].err
		}
	}

	// Merge, in range order. Boundary obtains resolve against the
	// carried global release tails; sync events replay through the
	// sequential machine; prev chains stitch across boundaries.
	p1 := newPass1Result(nThreads)
	sync := newPass1Sync(skel, p1)
	lastOf := make([]int32, nThreads)
	for tid := range lastOf {
		lastOf[tid] = -1
	}
	lastRel := make([]int32, nObjs)
	for o := range lastRel {
		lastRel[o] = -1
	}
	sawEvents := false
	segments := 0
	var events, bytes, spilled int64
	for ri := range ranges {
		r := &ranges[ri]
		for th, fi := range r.firstOfThread {
			if fi >= 0 && lastOf[th] >= 0 {
				if err := ann.patchPrev(fi, lastOf[th]); err != nil {
					return nil, err
				}
			}
		}
		// Boundary obtains saw no in-range release, so they all resolve
		// against the pre-range state — no interleaving with the
		// range's own releases is needed.
		for _, b := range r.boundary {
			if w := lastRel[b.obj]; w >= 0 {
				if err := ann.patch(b.idx, w, annBlocked); err != nil {
					return nil, err
				}
			}
		}
		for _, se := range r.sync {
			rec := annRec{prev: -1, waker: -1}
			sync.step(se.idx, se.kind, se.thread, se.obj, se.arg, se.t, se.seq, &rec)
			// Workers write sync records with zero flags; whenever the
			// sequential machine blocks one, patch the resolution in.
			if rec.flags != 0 {
				if err := ann.patch(se.idx, rec.waker, rec.flags); err != nil {
					return nil, err
				}
			}
		}
		for th := range r.lastOfThread {
			if r.lastOfThread[th] >= 0 {
				lastOf[th] = r.lastOfThread[th]
			}
		}
		for o := range r.lastRelease {
			if r.lastRelease[o] >= 0 {
				lastRel[o] = r.lastRelease[o]
			}
		}
		if r.hasEvents {
			if !sawEvents {
				p1.firstT = r.firstT
				sawEvents = true
			}
			p1.lastT = r.lastT
		}
		segments += r.segments
		events += r.events
		bytes += r.bytes
		spilled += r.spilled
	}
	for _, p := range sync.finish() {
		if err := ann.patch(p.idx, p.waker, annBlocked); err != nil {
			return nil, err
		}
	}
	if spilled > 0 {
		h.spilled(spilled)
	}
	h.scannedBulk(segments, events, bytes)
	return p1, nil
}

// acctEv relays per-thread accounting a pass-3 worker could not settle
// locally: the thread's first event in the range (first=true; accounted
// at merge against the thread's cross-range predecessor) or a
// condition-wait end whose begin lies in an earlier range.
type acctEv struct {
	idx     int32
	t       trace.Time
	arg     int64
	obj     trace.ObjID
	thread  trace.ThreadID
	kind    trace.EventKind
	first   bool
	blocked bool // JoinEnd: its waker annotation's blocked flag
}

// lockEv relays an obtain or release whose acquire lies before the
// worker's range.
type lockEv struct {
	idx    int32
	t      trace.Time
	arg    int64
	obj    trace.ObjID
	thread trace.ThreadID
	kind   trace.EventKind
}

// condMark is a worker's final condition-wait begin state for one
// (thread, cond) pair it touched: pending with its begin time, or
// settled.
type condMark struct {
	t   trace.Time
	has bool
}

// holdRec tags a composition hold interval with its acquire index so
// concatenated per-range interval runs sort back into the sequential
// delivery order.
type holdRec struct {
	acq int32
	iv  interval
}

// p3Range is one pass-3 worker's output.
type p3Range struct {
	err       error
	sink      *lockSink
	ts        []ThreadStats // accumulable fields only; folded at merge
	acct      []acctEv
	locks     []lockEv
	carry     [][]invocation // undelivered queue tail per thread
	condFinal []map[trace.ObjID]condMark
	lastT     []trace.Time
	saw       []bool
	holds     [][]holdRec
	segments  int
	events    int64
	bytes     int64
}

func (r *p3Range) markCond(tid int, obj trace.ObjID, m condMark) {
	cf := r.condFinal[tid]
	if cf == nil {
		cf = map[trace.ObjID]condMark{}
		r.condFinal[tid] = cf
	}
	cf[obj] = m
}

// streamPass3Par is streamPass3 over parallel segment ranges. Workers
// accumulate into private sinks and thread-stat deltas, deliver the
// invocations wholly inside their range, and relay range-head orphans;
// the merge replays the relays in global order against carried queues
// and folds the sinks in range order. Every folded quantity is an
// integer sum, maximum or bool (floats happen once, in
// finalizeMetrics), composition intervals sort by acquire index, and
// hot intervals normalize in mergeIntervals — so the output is
// bit-identical to the sequential pass at any worker count.
func streamPass3Par(src ColumnSource, skel *trace.Trace, ann *annStore, p1 *pass1Result, an *Analysis, cfg Config, workers int, h *obsHook) error {
	nThreads := len(skel.Threads)
	nSegs := src.NumSegments()
	threads := initStreamThreads(an, skel, p1)

	an.hotByLock = map[trace.ObjID][]interval{}
	if cfg.Composition {
		an.holdsByThread = make([][]interval, nThreads)
	}

	ranges := make([]p3Range, min(workers, nSegs))
	par.Chunks(nSegs, workers, func(chunk, lo, hi int) {
		r := &ranges[chunk]
		r.sink = newLockSink(nThreads, len(skel.Objects))
		r.ts = make([]ThreadStats, nThreads)
		r.condFinal = make([]map[trace.ObjID]condMark, nThreads)
		r.lastT = make([]trace.Time, nThreads)
		r.saw = make([]bool, nThreads)
		r.carry = make([][]invocation, nThreads)
		if cfg.Composition {
			r.holds = make([][]holdRec, nThreads)
		}
		wt := make([]streamThread, nThreads)
		for tid := range wt {
			wt[tid].clips = threads[tid].clips // read-only shared clip index
		}
		deliver := func(tid int, inv *invocation) {
			if cfg.Composition {
				r.holds[tid] = append(r.holds[tid], holdRec{inv.acquireIdx, interval{inv.obtT, inv.relT}})
			}
			st := &wt[tid]
			accumulateInvocation(r.sink, &r.ts[tid], inv, skel.ObjName(inv.lock), cfg.Options, st.clips, &st.cursor)
		}

		var cols trace.Columns
		var flagsBuf []byte
		for s := lo; s < hi; s++ {
			first, count := src.SegmentBounds(s)
			bytes, err := src.LoadColumns(s, &cols)
			if err != nil {
				r.err = err
				return
			}
			flagsBuf, err = ann.readFlags(first, count, flagsBuf)
			if err != nil {
				r.err = err
				return
			}
			cT, cTh, cKind, cObj, cArg := cols.T, cols.Thread, cols.Kind, cols.Obj, cols.Arg
			for k := 0; k < count; k++ {
				gi := int32(first + k)
				tid := int(cTh[k])
				st := &wt[tid]
				kind := trace.EventKind(cKind[k])
				t := cT[k]
				obj := trace.ObjID(cObj[k])
				arg := cArg[k]

				if st.seen {
					ts := &r.ts[tid]
					switch kind {
					case trace.EvBarrierDepart:
						if arg == 0 {
							ts.BarrierWait += t - st.prevT
						}
					case trace.EvCondWaitBegin:
						if st.condBegin == nil {
							st.condBegin = map[trace.ObjID]trace.Time{}
						}
						st.condBegin[obj] = t
						r.markCond(tid, obj, condMark{t: t, has: true})
					case trace.EvCondWaitEnd:
						if begin, ok := st.condBegin[obj]; ok {
							ts.CondWait += t - begin
							delete(st.condBegin, obj)
						} else {
							// Begin (if any) lies before the range.
							r.acct = append(r.acct, acctEv{idx: gi, t: t, obj: obj, thread: trace.ThreadID(tid), kind: kind})
						}
						r.markCond(tid, obj, condMark{})
					case trace.EvChanSend:
						cs := r.sink.chanOf(obj, skel.ObjName(obj))
						cs.Sends++
						if arg&trace.ChanArgBlocked != 0 {
							w := t - st.prevT
							cs.BlockedSends++
							cs.SendWait += w
							if w > cs.MaxWait {
								cs.MaxWait = w
							}
							ts.ChanWait += w
						}
					case trace.EvChanRecv:
						cs := r.sink.chanOf(obj, skel.ObjName(obj))
						cs.Recvs++
						if arg&trace.ChanArgBlocked != 0 {
							w := t - st.prevT
							cs.BlockedRecvs++
							cs.RecvWait += w
							if w > cs.MaxWait {
								cs.MaxWait = w
							}
							ts.ChanWait += w
						}
					case trace.EvChanClose:
						r.sink.chanOf(obj, skel.ObjName(obj)).Closes++
					case trace.EvJoinEnd:
						if flagsBuf[k]&annBlocked != 0 {
							ts.JoinWait += t - st.prevT
						}
					}
				} else {
					st.seen = true
					// Relay the range-head event when it needs the
					// thread's cross-range predecessor to account (or,
					// for the thread's globally first event, to be
					// skipped — the merge knows which it is).
					switch kind {
					case trace.EvBarrierDepart, trace.EvCondWaitBegin, trace.EvCondWaitEnd,
						trace.EvChanSend, trace.EvChanRecv, trace.EvChanClose, trace.EvJoinEnd:
						ae := acctEv{idx: gi, t: t, arg: arg, obj: obj, thread: trace.ThreadID(tid), kind: kind, first: true}
						if kind == trace.EvJoinEnd {
							ae.blocked = flagsBuf[k]&annBlocked != 0
						}
						r.acct = append(r.acct, ae)
					}
				}
				st.prevT = t

				switch kind {
				case trace.EvLockAcquire:
					pos := st.push(invocation{
						lock: obj, thread: trace.ThreadID(tid),
						acquireIdx: gi, obtainIdx: -1, releaseIdx: -1,
						acqT: t,
					})
					st.open.set(obj, pos)

				case trace.EvLockObtain:
					pos, ok := st.open.get(obj)
					if !ok {
						// Acquire lies before the range (or the trace is
						// malformed — the merge replay decides, with the
						// sequential pass's exact error).
						r.locks = append(r.locks, lockEv{idx: gi, t: t, arg: arg, obj: obj, thread: trace.ThreadID(tid), kind: kind})
						break
					}
					inv := st.at(pos)
					inv.obtainIdx = gi
					inv.obtT = t
					inv.contended = arg&trace.LockArgContended != 0
					inv.shared = arg&trace.LockArgShared != 0

				case trace.EvLockRelease:
					pos, ok := st.open.get(obj)
					if !ok {
						r.locks = append(r.locks, lockEv{idx: gi, t: t, arg: arg, obj: obj, thread: trace.ThreadID(tid), kind: kind})
						break
					}
					inv := st.at(pos)
					inv.releaseIdx = gi
					inv.relT = t
					st.open.del(obj)
					for st.head < len(st.pend) && st.pend[st.head].releaseIdx >= 0 {
						if st.pend[st.head].obtainIdx >= 0 {
							deliver(tid, &st.pend[st.head])
						}
						st.head++
					}
					st.compact()
				}
			}
			r.segments++
			r.events += int64(count)
			r.bytes += bytes
			// Pass 3 is the last annotation consumer, and each worker
			// owns its segments exclusively; shed shards as it goes.
			ann.release(s)
		}
		for tid := range wt {
			st := &wt[tid]
			if st.seen {
				r.saw[tid] = true
				r.lastT[tid] = st.prevT
			}
			if st.head < len(st.pend) {
				r.carry[tid] = append([]invocation(nil), st.pend[st.head:]...)
			}
		}
	})
	for i := range ranges {
		if ranges[i].err != nil {
			return ranges[i].err
		}
	}

	// Merge, in range order: replay relays against carried global
	// state, fold queues, stats and sinks.
	mergeSink := newLockSink(nThreads, len(skel.Objects))
	gSeen := make([]bool, nThreads)
	gPrevT := make([]trace.Time, nThreads)
	gCond := make([]map[trace.ObjID]trace.Time, nThreads)
	gq := make([]streamThread, nThreads)
	for tid := range gq {
		gq[tid].clips = threads[tid].clips
	}
	var holdsAcc [][]holdRec
	if cfg.Composition {
		holdsAcc = make([][]holdRec, nThreads)
	}
	mergeDeliver := func(tid int, inv *invocation) {
		if cfg.Composition {
			holdsAcc[tid] = append(holdsAcc[tid], holdRec{inv.acquireIdx, interval{inv.obtT, inv.relT}})
		}
		st := &gq[tid]
		accumulateInvocation(mergeSink, &an.Threads[tid], inv, skel.ObjName(inv.lock), cfg.Options, st.clips, &st.cursor)
	}

	segments := 0
	var events, bytes int64
	for ri := range ranges {
		r := &ranges[ri]
		for ai := range r.acct {
			ae := &r.acct[ai]
			tid := int(ae.thread)
			if ae.first && !gSeen[tid] {
				continue // the thread's globally first event: no accounting
			}
			ts := &an.Threads[tid]
			prevT := gPrevT[tid]
			switch ae.kind {
			case trace.EvBarrierDepart:
				if ae.arg == 0 {
					ts.BarrierWait += ae.t - prevT
				}
			case trace.EvCondWaitBegin:
				if gCond[tid] == nil {
					gCond[tid] = map[trace.ObjID]trace.Time{}
				}
				gCond[tid][ae.obj] = ae.t
			case trace.EvCondWaitEnd:
				if m := gCond[tid]; m != nil {
					if begin, ok := m[ae.obj]; ok {
						ts.CondWait += ae.t - begin
						delete(m, ae.obj)
					}
				}
			case trace.EvChanSend:
				cs := mergeSink.chanOf(ae.obj, skel.ObjName(ae.obj))
				cs.Sends++
				if ae.arg&trace.ChanArgBlocked != 0 {
					w := ae.t - prevT
					cs.BlockedSends++
					cs.SendWait += w
					if w > cs.MaxWait {
						cs.MaxWait = w
					}
					ts.ChanWait += w
				}
			case trace.EvChanRecv:
				cs := mergeSink.chanOf(ae.obj, skel.ObjName(ae.obj))
				cs.Recvs++
				if ae.arg&trace.ChanArgBlocked != 0 {
					w := ae.t - prevT
					cs.BlockedRecvs++
					cs.RecvWait += w
					if w > cs.MaxWait {
						cs.MaxWait = w
					}
					ts.ChanWait += w
				}
			case trace.EvChanClose:
				mergeSink.chanOf(ae.obj, skel.ObjName(ae.obj)).Closes++
			case trace.EvJoinEnd:
				if ae.blocked {
					ts.JoinWait += ae.t - prevT
				}
			}
		}

		for li := range r.locks {
			le := &r.locks[li]
			tid := int(le.thread)
			st := &gq[tid]
			switch le.kind {
			case trace.EvLockObtain:
				pos, ok := st.open.get(le.obj)
				if !ok {
					return fmt.Errorf("core: event %d: obtain of %q without acquire", le.idx, skel.ObjName(le.obj))
				}
				inv := st.at(pos)
				inv.obtainIdx = le.idx
				inv.obtT = le.t
				inv.contended = le.arg&trace.LockArgContended != 0
				inv.shared = le.arg&trace.LockArgShared != 0
			case trace.EvLockRelease:
				pos, ok := st.open.get(le.obj)
				if !ok {
					return fmt.Errorf("core: event %d: release of %q without hold", le.idx, skel.ObjName(le.obj))
				}
				inv := st.at(pos)
				inv.releaseIdx = le.idx
				inv.relT = le.t
				st.open.del(le.obj)
				for st.head < len(st.pend) && st.pend[st.head].releaseIdx >= 0 {
					if st.pend[st.head].obtainIdx >= 0 {
						mergeDeliver(tid, &st.pend[st.head])
					}
					st.head++
				}
				st.compact()
			}
		}

		for tid := range r.carry {
			st := &gq[tid]
			for ci := range r.carry[tid] {
				inv := r.carry[tid][ci]
				pos := st.push(inv)
				if inv.releaseIdx < 0 {
					// Rebuilding open in queue order reproduces the
					// same-lock overwrite the workers applied.
					st.open.set(inv.lock, pos)
				}
			}
		}

		for tid := 0; tid < nThreads; tid++ {
			if r.saw[tid] {
				gSeen[tid] = true
				gPrevT[tid] = r.lastT[tid]
			}
			if cf := r.condFinal[tid]; cf != nil {
				for obj, cm := range cf {
					if cm.has {
						if gCond[tid] == nil {
							gCond[tid] = map[trace.ObjID]trace.Time{}
						}
						gCond[tid][obj] = cm.t
					} else if gCond[tid] != nil {
						delete(gCond[tid], obj)
					}
				}
			}
			ts, d := &an.Threads[tid], &r.ts[tid]
			ts.LockWait += d.LockWait
			ts.LockHold += d.LockHold
			ts.BarrierWait += d.BarrierWait
			ts.CondWait += d.CondWait
			ts.ChanWait += d.ChanWait
			ts.JoinWait += d.JoinWait
			ts.Invocations += d.Invocations
		}

		foldSink(mergeSink, r.sink)
		segments += r.segments
		events += r.events
		bytes += r.bytes
	}

	// End of trace: same as the sequential pass, over the carried
	// global queues.
	for tid := range gq {
		st := &gq[tid]
		for k := st.head; k < len(st.pend); k++ {
			inv := &st.pend[k]
			if inv.obtainIdx < 0 {
				continue
			}
			if inv.releaseIdx < 0 {
				inv.relT = p1.lastT
			}
			mergeDeliver(tid, inv)
		}
	}

	if cfg.Composition {
		for tid := 0; tid < nThreads; tid++ {
			var recs []holdRec
			for ri := range ranges {
				recs = append(recs, ranges[ri].holds[tid]...)
			}
			recs = append(recs, holdsAcc[tid]...)
			if len(recs) == 0 {
				continue
			}
			// Sequential delivery per thread is acquire order; acquire
			// indices are unique, so this sort restores it exactly.
			slices.SortFunc(recs, func(a, b holdRec) int {
				switch {
				case a.acq < b.acq:
					return -1
				case a.acq > b.acq:
					return 1
				}
				return 0
			})
			ivs := make([]interval, len(recs))
			for i := range recs {
				ivs[i] = recs[i].iv
			}
			an.holdsByThread[tid] = ivs
		}
	}

	h.scannedBulk(segments, events, bytes)
	finalizeMetrics(an, mergeSink, src.NumEvents())
	return nil
}

// foldSink merges src into dst entry-by-entry; all quantities are
// integer sums, maxima or bools, so the result does not depend on the
// order sinks are folded in.
func foldSink(dst, src *lockSink) {
	for lock, acc := range src.accs {
		if acc == nil {
			continue
		}
		if d := dst.accs[lock]; d != nil {
			d.merge(acc)
		} else {
			dst.accs[lock] = acc
		}
	}
	for ch, cs := range src.chans {
		if cs == nil {
			continue
		}
		if d := dst.chans[ch]; d != nil {
			mergeChan(d, cs)
		} else {
			dst.chans[ch] = cs
		}
	}
	for lock, ivs := range src.hot {
		if len(ivs) > 0 {
			dst.hot[lock] = append(dst.hot[lock], ivs...)
		}
	}
}
