package core

import (
	"errors"
	"time"

	"critlock/internal/obs"
	"critlock/internal/trace"
)

// ErrNeedsRawEvents marks an operation that replays the raw event
// stream (Gantt timelines, lock-order graphs, the online predictor)
// applied to a streamed analysis, which keeps only the registration
// skeleton. Re-run the operation on a full in-memory trace.
var ErrNeedsRawEvents = errors.New("needs raw events (streamed analysis keeps only the trace skeleton)")

// HasEvents reports whether the analysis retained the raw event
// stream. Streamed analyses hold only the skeleton, so event-replay
// consumers (timeline renderers, lock-order graphs) must check this —
// or propagate ErrNeedsRawEvents.
func (a *Analysis) HasEvents() bool {
	return a.Trace != nil && len(a.Trace.Events) > 0
}

// Config is the unified analysis configuration: the Options both
// pipelines share plus the streaming-only knobs. The zero value means
// unclipped holds and no validation; start from DefaultConfig for the
// recommended defaults.
type Config struct {
	Options
	// CacheSegments is the streaming backward walk's window: how many
	// decoded segments stay resident at once (0 = default, minimum 1).
	// Ignored by the in-memory pipeline.
	CacheSegments int
	// TmpDir hosts the streaming waker-annotation spill file
	// ("" = os.TempDir). Ignored by the in-memory pipeline.
	TmpDir string
	// Composition retains per-thread hold intervals during streaming
	// analysis so Analysis.Composition works; it costs O(invocations)
	// memory, so it is off by default there. The in-memory pipeline
	// always retains them.
	Composition bool
	// ParallelSegments runs streaming passes 1 and 3 over disjoint
	// segment ranges on up to this many goroutines, merged
	// deterministically (0 or 1 = sequential). Results are
	// bit-identical at any setting. Ignored by the in-memory pipeline.
	ParallelSegments int
	// NoMmap forces buffered reads of segment files instead of
	// memory-mapping them. Consulted by sources that open segment
	// directories (the facade's SegmentDirSource, the server), not by
	// the passes themselves.
	NoMmap bool
	// AnnotationBudget caps the resident waker-annotation shards
	// (9 bytes per event); a run over budget spills them to a TmpDir
	// temp file instead. 0 = DefaultAnnotationBudget, negative =
	// always spill. Ignored by the in-memory pipeline.
	AnnotationBudget int64
}

// DefaultConfig returns the recommended configuration: clipped hold
// accounting with validation enabled.
func DefaultConfig() Config { return Config{Options: DefaultOptions()} }

// Source is where the unified Analyze entry point reads a trace from:
// an in-memory event array, an open segmented-trace reader, or any
// other provider that knows which pipeline fits it. The two built-in
// constructors are TraceSource and StreamSource; callers with custom
// acquisition (open a directory lazily, download first) implement Run
// and delegate to one of them.
type Source interface {
	// Run executes the analysis pipeline appropriate for this source
	// on a, which retains reusable scratch storage across calls.
	Run(a *Analyzer, cfg Config) (*Analysis, error)
}

// traceSource analyzes an in-memory trace.
type traceSource struct{ tr *trace.Trace }

// TraceSource adapts an in-memory trace: Analyze runs the indexed
// pipeline (index → walk → metrics) over the event array.
func TraceSource(tr *trace.Trace) Source { return traceSource{tr} }

func (s traceSource) Run(a *Analyzer, cfg Config) (*Analysis, error) {
	return a.analyzeTrace(s.tr, cfg)
}

// streamSource analyzes a segmented trace in bounded memory.
type streamSource struct{ src SegmentSource }

// StreamSource adapts a segmented trace (an open segment.Reader, a
// spiller's result, or any SegmentSource): Analyze runs the
// three-pass bounded-memory pipeline.
func StreamSource(src SegmentSource) Source { return streamSource{src} }

func (s streamSource) Run(a *Analyzer, cfg Config) (*Analysis, error) {
	return a.analyzeStream(s.src, cfg)
}

// AnalyzeSource is the unified entry point both pipelines share: every
// consumer — the facade, the CLIs, the serving layer — dispatches
// through it, so options and instrumentation behave identically
// everywhere. Internal storage is recycled through the analyzer pool.
func AnalyzeSource(src Source, cfg Config) (*Analysis, error) {
	a := analyzerPool.Get().(*Analyzer)
	defer analyzerPool.Put(a)
	return a.AnalyzeSource(src, cfg)
}

// AnalyzeSource is the Analyzer form of the package-level
// AnalyzeSource, for pipelines holding an Analyzer for reuse.
func (a *Analyzer) AnalyzeSource(src Source, cfg Config) (*Analysis, error) {
	return src.Run(a, cfg)
}

// obsHook adapts an obs.Observer for the analysis hot path: nil-safe
// (a nil hook is free), and it owns the run's cumulative Progress
// snapshot. Events count per phase (each pass re-reads the trace);
// Segments and BytesSpilled accumulate over the whole run.
type obsHook struct {
	o obs.Observer
	p obs.Progress
}

// newObsHook returns nil — the free hook — when o is nil.
func newObsHook(o obs.Observer, totalEvents int) *obsHook {
	if o == nil {
		return nil
	}
	return &obsHook{o: o, p: obs.Progress{TotalEvents: int64(totalEvents)}}
}

// phaseStart begins a phase, resetting the per-phase event cursor.
func (h *obsHook) phaseStart(name string) time.Time {
	if h == nil {
		return time.Time{}
	}
	h.p.Phase = name
	h.p.Events = 0
	h.o.PhaseStart(name)
	return time.Now()
}

// phaseDone completes a phase: a final snapshot with the phase's full
// event count (pass events < 0 to keep whatever the phase's scanned
// calls accumulated — the walk touches only the segments the path
// crosses), then the duration callback. The snapshot lands first so
// per-phase throughput derived at PhaseDone (bytes since PhaseStart
// over the duration) sees the phase's complete byte count.
func (h *obsHook) phaseDone(name string, start time.Time, events int64) {
	if h == nil {
		return
	}
	if events >= 0 {
		h.p.Events = events
	}
	h.o.OnProgress(h.p)
	h.o.PhaseDone(name, time.Since(start))
}

// scanned records one segment load of n events (bytes encoded body
// bytes, 0 if unknown) and emits a snapshot. Must be called from one
// goroutine; parallel passes accumulate locally and report through
// scannedBulk after their barrier.
func (h *obsHook) scanned(n int, bytes int64) {
	if h == nil {
		return
	}
	h.p.Segments++
	h.p.Events += int64(n)
	h.p.BytesRead += bytes
	h.o.OnProgress(h.p)
}

// scannedBulk folds a parallel pass's totals into the snapshot in one
// step — workers must not touch the hook concurrently.
func (h *obsHook) scannedBulk(segments int, events int64, bytes int64) {
	if h == nil {
		return
	}
	h.p.Segments += int64(segments)
	h.p.Events += events
	h.p.BytesRead += bytes
	h.o.OnProgress(h.p)
}

// spilled records n bytes written to spill storage (snapshot emitted
// with the next scanned/phaseDone, not per write).
func (h *obsHook) spilled(n int64) {
	if h != nil {
		h.p.BytesSpilled += n
	}
}
