package core

import (
	"fmt"
	"sort"

	"critlock/internal/trace"
)

// LockOrderEdge records that some thread acquired To while holding
// From, with how often that nesting occurred.
type LockOrderEdge struct {
	From, To trace.ObjID
	FromName string
	ToName   string
	Count    int
}

// LockOrder is the aggregated lock acquisition-order graph of a trace
// plus its cyclic components. A cycle (e.g. A→B and B→A observed on
// different threads) is a potential deadlock: the trace happened to
// complete, but another interleaving could hang.
type LockOrder struct {
	// Edges in deterministic (FromName, ToName) order.
	Edges []LockOrderEdge
	// Cycles lists the strongly connected components with more than
	// one lock (or a self-loop), each sorted by name.
	Cycles [][]trace.ObjID

	names map[trace.ObjID]string
}

// HasCycle reports whether any potential deadlock cycle exists.
func (lo *LockOrder) HasCycle() bool { return len(lo.Cycles) > 0 }

// CycleNames renders each cycle as lock names.
func (lo *LockOrder) CycleNames() [][]string {
	out := make([][]string, len(lo.Cycles))
	for i, cyc := range lo.Cycles {
		for _, id := range cyc {
			out[i] = append(out[i], lo.names[id])
		}
	}
	return out
}

// LockOrderOf scans a trace and builds the acquisition-order graph:
// one pass, tracking each thread's currently-held set.
func LockOrderOf(tr *trace.Trace) *LockOrder {
	type key struct{ from, to trace.ObjID }
	counts := map[key]int{}
	held := map[trace.ThreadID][]trace.ObjID{}

	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvLockObtain:
			for _, h := range held[e.Thread] {
				if h != e.Obj {
					counts[key{h, e.Obj}]++
				}
			}
			held[e.Thread] = append(held[e.Thread], e.Obj)
		case trace.EvLockRelease:
			hs := held[e.Thread]
			for i := len(hs) - 1; i >= 0; i-- {
				if hs[i] == e.Obj {
					held[e.Thread] = append(hs[:i], hs[i+1:]...)
					break
				}
			}
		}
	}

	lo := &LockOrder{names: map[trace.ObjID]string{}}
	adj := map[trace.ObjID][]trace.ObjID{}
	for k, n := range counts {
		lo.names[k.from] = tr.ObjName(k.from)
		lo.names[k.to] = tr.ObjName(k.to)
		lo.Edges = append(lo.Edges, LockOrderEdge{
			From: k.from, To: k.to,
			FromName: tr.ObjName(k.from), ToName: tr.ObjName(k.to),
			Count: n,
		})
		adj[k.from] = append(adj[k.from], k.to)
	}
	sort.Slice(lo.Edges, func(i, j int) bool {
		if lo.Edges[i].FromName != lo.Edges[j].FromName {
			return lo.Edges[i].FromName < lo.Edges[j].FromName
		}
		return lo.Edges[i].ToName < lo.Edges[j].ToName
	})

	lo.Cycles = stronglyConnected(adj, lo.names)
	return lo
}

// stronglyConnected runs Tarjan's algorithm and returns components of
// size > 1 (two-lock inversions and larger rings), sorted by name.
func stronglyConnected(adj map[trace.ObjID][]trace.ObjID, names map[trace.ObjID]string) [][]trace.ObjID {
	index := map[trace.ObjID]int{}
	low := map[trace.ObjID]int{}
	onStack := map[trace.ObjID]bool{}
	var stack []trace.ObjID
	var cycles [][]trace.ObjID
	next := 0

	// Iterative Tarjan to avoid recursion-depth concerns on large
	// graphs.
	type frame struct {
		node trace.ObjID
		ei   int
	}
	var nodes []trace.ObjID
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return names[nodes[i]] < names[nodes[j]] })

	for _, start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		frames := []frame{{node: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.node]) {
				child := adj[f.node][f.ei]
				f.ei++
				if _, seen := index[child]; !seen {
					index[child] = next
					low[child] = next
					next++
					stack = append(stack, child)
					onStack[child] = true
					frames = append(frames, frame{node: child})
				} else if onStack[child] && index[child] < low[f.node] {
					low[f.node] = index[child]
				}
				continue
			}
			// Done with this node: pop an SCC if it is a root.
			if low[f.node] == index[f.node] {
				var comp []trace.ObjID
				for {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[n] = false
					comp = append(comp, n)
					if n == f.node {
						break
					}
				}
				if len(comp) > 1 {
					sort.Slice(comp, func(i, j int) bool { return names[comp[i]] < names[comp[j]] })
					cycles = append(cycles, comp)
				}
			}
			node := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[node] < low[parent.node] {
					low[parent.node] = low[node]
				}
			}
		}
	}
	sort.Slice(cycles, func(i, j int) bool {
		return fmt.Sprint(cycles[i]) < fmt.Sprint(cycles[j])
	})
	return cycles
}
