package core

import (
	"testing"

	"critlock/internal/trace"
)

func TestCompositionFig1(t *testing.T) {
	an, err := AnalyzeDefault(fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	c := an.Composition()
	if c.Total != 33 {
		t.Errorf("total = %d, want 33", c.Total)
	}
	// Hot CS time on the path: CS1(1) + 4×CS2(3) + CS3(4) = 17.
	if c.LockHold != 17 {
		t.Errorf("lock hold = %d, want 17", c.LockHold)
	}
	if c.Compute != 16 {
		t.Errorf("compute = %d, want 16", c.Compute)
	}
	if c.Wait != 0 {
		t.Errorf("wait = %d, want 0", c.Wait)
	}
	approx(t, "lock hold pct", c.LockHoldPct(), 100*17.0/33.0)
}

// TestCompositionNestedNoDoubleCount: overlapping (nested) holds must
// count once.
func TestCompositionNestedHolds(t *testing.T) {
	b := trace.NewBuilder()
	main := b.Thread("main", trace.NoThread)
	outer := b.Mutex("outer")
	inner := b.Mutex("inner")
	b.Start(0, main)
	b.Event(10, main, trace.EvLockAcquire, outer, 0)
	b.Event(10, main, trace.EvLockObtain, outer, 0)
	b.CS(main, inner, 20, 20, 40) // nested inside outer's 10..60
	b.Event(60, main, trace.EvLockRelease, outer, 0)
	b.Exit(100, main)
	an, err := AnalyzeDefault(b.Trace())
	if err != nil {
		t.Fatal(err)
	}
	c := an.Composition()
	if c.LockHold != 50 { // outer's 10..60, inner fully inside
		t.Errorf("lock hold = %d, want 50 (no double counting)", c.LockHold)
	}
	if c.Compute != 50 {
		t.Errorf("compute = %d, want 50", c.Compute)
	}
}

func TestWindowsFig1(t *testing.T) {
	an, err := AnalyzeDefault(fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	wins := an.Windows(3)
	if len(wins) != 3 {
		t.Fatalf("got %d windows", len(wins))
	}
	// Window boundaries tile [0, 33].
	if wins[0].From != 0 || wins[2].To != 33 {
		t.Errorf("bounds: [%d..%d] .. [%d..%d]", wins[0].From, wins[0].To, wins[2].From, wins[2].To)
	}
	// Path time per window sums to the full path.
	var sum trace.Time
	for _, w := range wins {
		sum += w.PathTime
	}
	if sum != an.CP.Length {
		t.Errorf("window path time sums to %d, want %d", sum, an.CP.Length)
	}
	// Early window: L1 era; middle: L2 convoy; final window dominated
	// by L3/compute. The L2 convoy runs 8..20, so window 1 (11..22)
	// must be topped by L2.
	if top := wins[1].Top(); top.Name != "L2" {
		t.Errorf("middle window top = %s, want L2", top.Name)
	}
	// The last window (22..33) contains CS3's tail (20..24 clipped to
	// 22..24 = 2 units of L3) and no L2.
	for _, wl := range wins[2].Locks {
		if wl.Name == "L2" {
			t.Errorf("L2 present in final window: %+v", wl)
		}
	}
}

func TestWindowsDegenerate(t *testing.T) {
	an, err := AnalyzeDefault(fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	if got := an.Windows(0); got != nil {
		t.Errorf("Windows(0) = %v", got)
	}
	if got := an.Windows(-3); got != nil {
		t.Errorf("Windows(-3) = %v", got)
	}
	// One window reproduces the whole-run shares.
	w := an.Windows(1)
	if len(w) != 1 || w[0].PathTime != an.CP.Length {
		t.Fatalf("Windows(1) = %+v", w)
	}
	if w[0].Top().Name != "L2" {
		t.Errorf("whole-run top = %s, want L2", w[0].Top().Name)
	}
	empty := Window{}
	if empty.Top().Name != "<none>" {
		t.Errorf("empty window top = %q", empty.Top().Name)
	}
}

func TestIntervalHelpers(t *testing.T) {
	merged := mergeIntervals([]interval{{5, 10}, {1, 3}, {9, 12}, {3, 4}})
	want := []interval{{1, 4}, {5, 12}}
	if len(merged) != len(want) {
		t.Fatalf("merged = %v", merged)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Errorf("merged[%d] = %v, want %v", i, merged[i], want[i])
		}
	}
	if got := intersectLen([]interval{{0, 10}, {20, 30}}, []interval{{5, 25}}); got != 10 {
		t.Errorf("intersectLen = %d, want 10", got)
	}
	if got := clipToWindow([]interval{{0, 10}, {20, 30}}, 5, 25); got != 10 {
		t.Errorf("clipToWindow = %d, want 10", got)
	}
}

func TestLockOrderGraph(t *testing.T) {
	// Thread 1: A then nested B. Thread 2: B then nested A → cycle.
	b := trace.NewBuilder()
	t1 := b.Thread("t1", trace.NoThread)
	t2 := b.Thread("t2", t1)
	a := b.Mutex("A")
	bb := b.Mutex("B")
	c := b.Mutex("C")
	b.Start(0, t1)
	b.Start(0, t2)
	// t1: A[1..10] containing B[2..5], then C alone.
	b.Event(1, t1, trace.EvLockAcquire, a, 0)
	b.Event(1, t1, trace.EvLockObtain, a, 0)
	b.CS(t1, bb, 2, 2, 5)
	b.Event(10, t1, trace.EvLockRelease, a, 0)
	b.CS(t1, c, 11, 11, 12)
	b.Exit(20, t1)
	// t2: B[30..40] containing A[32..35] (inverted order).
	b.Event(30, t2, trace.EvLockAcquire, bb, 0)
	b.Event(30, t2, trace.EvLockObtain, bb, 0)
	b.CS(t2, a, 32, 32, 35)
	b.Event(40, t2, trace.EvLockRelease, bb, 0)
	b.Exit(50, t2)

	lo := LockOrderOf(b.Trace())
	if len(lo.Edges) != 2 {
		t.Fatalf("edges = %+v, want 2", lo.Edges)
	}
	if lo.Edges[0].FromName != "A" || lo.Edges[0].ToName != "B" || lo.Edges[0].Count != 1 {
		t.Errorf("edge[0] = %+v", lo.Edges[0])
	}
	if !lo.HasCycle() {
		t.Fatal("A↔B inversion not detected")
	}
	names := lo.CycleNames()
	if len(names) != 1 || len(names[0]) != 2 || names[0][0] != "A" || names[0][1] != "B" {
		t.Errorf("cycles = %v", names)
	}
}

func TestLockOrderNoCycle(t *testing.T) {
	// Consistent A→B ordering on two threads: no cycle.
	b := trace.NewBuilder()
	t1 := b.Thread("t1", trace.NoThread)
	a := b.Mutex("A")
	bb := b.Mutex("B")
	b.Start(0, t1)
	b.Event(1, t1, trace.EvLockAcquire, a, 0)
	b.Event(1, t1, trace.EvLockObtain, a, 0)
	b.CS(t1, bb, 2, 2, 5)
	b.Event(10, t1, trace.EvLockRelease, a, 0)
	b.Exit(20, t1)
	lo := LockOrderOf(b.Trace())
	if lo.HasCycle() {
		t.Errorf("false cycle: %v", lo.CycleNames())
	}
	if len(lo.Edges) != 1 {
		t.Errorf("edges = %+v", lo.Edges)
	}
}

func TestLockOrderThreeRing(t *testing.T) {
	// A→B, B→C, C→A ring across three threads.
	b := trace.NewBuilder()
	threads := []trace.ThreadID{b.Thread("t1", trace.NoThread)}
	threads = append(threads, b.Thread("t2", threads[0]), b.Thread("t3", threads[0]))
	locks := []trace.ObjID{b.Mutex("A"), b.Mutex("B"), b.Mutex("C")}
	for _, th := range threads {
		b.Start(0, th)
	}
	tm := trace.Time(1)
	for i, th := range threads {
		outer, inner := locks[i], locks[(i+1)%3]
		b.Event(tm, th, trace.EvLockAcquire, outer, 0)
		b.Event(tm, th, trace.EvLockObtain, outer, 0)
		b.CS(th, inner, tm+1, tm+1, tm+2)
		b.Event(tm+3, th, trace.EvLockRelease, outer, 0)
		tm += 10
	}
	for _, th := range threads {
		b.Exit(tm, th)
	}
	lo := LockOrderOf(b.Trace())
	if !lo.HasCycle() {
		t.Fatal("three-lock ring not detected")
	}
	if got := lo.CycleNames(); len(got) != 1 || len(got[0]) != 3 {
		t.Errorf("cycles = %v", got)
	}
}

func TestCompare(t *testing.T) {
	// Before: single lock dominating. After: split into two smaller
	// locks (the rename-split pattern of the paper's optimization).
	mk := func(split bool) (*Analysis, trace.Time) {
		b := trace.NewBuilder()
		t1 := b.Thread("t1", trace.NoThread)
		t2 := b.Thread("t2", t1)
		b.Start(0, t1)
		b.Start(0, t2)
		var end trace.Time
		if !split {
			m := b.Mutex("qlock")
			b.CS(t1, m, 0, 0, 50)
			b.CS(t2, m, 1, 50, 100)
			end = 100
		} else {
			h := b.Mutex("q_head_lock")
			tl := b.Mutex("q_tail_lock")
			b.CS(t1, h, 0, 0, 50)
			b.CS(t2, tl, 1, 1, 51)
			end = 51
		}
		b.Exit(end, t1)
		b.Exit(end, t2)
		an, err := AnalyzeDefault(b.Trace())
		if err != nil {
			t.Fatal(err)
		}
		return an, end
	}
	before, bt := mk(false)
	after, at := mk(true)
	cmp := Compare(before, after, bt, at)
	if cmp.Speedup < 1.9 || cmp.Speedup > 2.0 {
		t.Errorf("speedup = %.2f, want ≈1.96", cmp.Speedup)
	}
	if cmp.ImprovementPct < 48 || cmp.ImprovementPct > 50 {
		t.Errorf("improvement = %.1f%%", cmp.ImprovementPct)
	}
	byName := map[string]LockDelta{}
	for _, d := range cmp.Locks {
		byName[d.Name] = d
	}
	if d := byName["qlock"]; !d.InBefore || d.InAfter || d.CPTimeDelta >= 0 {
		t.Errorf("qlock delta = %+v, want removed with negative delta", d)
	}
	if d := byName["q_head_lock"]; d.InBefore || !d.InAfter {
		t.Errorf("q_head_lock delta = %+v, want new", d)
	}
	if cmp.TopMover().Name != "qlock" {
		t.Errorf("top mover = %s, want qlock", cmp.TopMover().Name)
	}
}

func TestCompareEmpty(t *testing.T) {
	cmp := Compare(&Analysis{}, &Analysis{}, 0, 0)
	if cmp.TopMover().Name != "<none>" {
		t.Errorf("empty top mover = %q", cmp.TopMover().Name)
	}
}

func TestPhases(t *testing.T) {
	an, err := AnalyzeDefault(fig1Trace())
	if err != nil {
		t.Fatal(err)
	}
	phases := an.Phases(11) // 3-unit windows over the 33-unit run (core fig1 uses unit timestamps)
	if len(phases) < 2 {
		t.Fatalf("phases = %+v, want several", phases)
	}
	// Phases tile the run.
	if phases[0].From != 0 || phases[len(phases)-1].To != 33 {
		t.Errorf("phase bounds: %+v", phases)
	}
	for i := 1; i < len(phases); i++ {
		if phases[i].From != phases[i-1].To {
			t.Errorf("gap between phases %d and %d", i-1, i)
		}
		if phases[i].Top == phases[i-1].Top {
			t.Errorf("adjacent phases %d/%d share top %q (not merged)", i-1, i, phases[i].Top)
		}
	}
	// The L2 convoy (8..20) must appear as an L2-dominated phase.
	foundL2 := false
	for _, p := range phases {
		if p.Top == "L2" && p.TopPct > 50 {
			foundL2 = true
		}
	}
	if !foundL2 {
		t.Errorf("no L2-dominated phase found: %+v", phases)
	}
	if got := an.Phases(0); got != nil {
		t.Errorf("Phases(0) = %v", got)
	}
}
