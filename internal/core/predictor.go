package core

import (
	"sort"

	"critlock/internal/trace"
)

// Predictor estimates lock criticality online — processing events in
// arrival order with O(1) work per event and O(locks + threads) state,
// no backward pass. It is the building block the paper's future work
// calls for (§VII): runtime mechanisms such as accelerated critical
// sections, speculative lock reordering or transactional memory need
// to know which lock is critical *while the program runs*, when the
// full critical-path walk is not yet possible.
//
// Heuristic (inverse-parallelism-weighted holds): at any instant the
// critical path runs through exactly one of the currently-running
// threads, so a running thread is on it with probability ≈ 1/running.
// A lock therefore accrues ∫ dt / running(t) over each of its hold
// intervals — hold time while most other threads are blocked or gone
// counts nearly in full, hold time under high parallelism is
// discounted. This scores both convoyed locks (the convoy suppresses
// `running`) and uncontended locks held by a straggler thread (the
// paper's stackLock[5] case), which plain idleness metrics miss.
//
// Implementation trick: a single global accumulator S(t) = ∫ dt /
// max(1, running) is advanced once per event; a hold's credit is
// S(release) − S(obtain).
type Predictor struct {
	locks   map[trace.ObjID]*predictorLock
	threads map[trace.ThreadID]*predictorThread

	lastT   trace.Time
	started bool
	alive   int
	blocked int
	// s is the global inverse-parallelism integral.
	s float64
}

type predictorLock struct {
	id trace.ObjID
	// sAtObtain snapshots the integral when each thread's current
	// hold began (read-write locks allow concurrent holders).
	sAtObtain map[trace.ThreadID]float64
	// score is the accumulated inverse-parallelism-weighted hold.
	score float64
	// waitSum accumulates plain wait time (the naive baseline).
	waitSum trace.Time
	// acquireT tracks each waiter's request time.
	acquireT map[trace.ThreadID]trace.Time
}

type predictorThread struct {
	alive bool
	// blockedDepth counts nested blocking reasons (a cond wait whose
	// mutex re-acquisition also blocks overlaps two).
	blockedDepth int
}

// NewPredictor returns an empty predictor.
func NewPredictor() *Predictor {
	return &Predictor{
		locks:   map[trace.ObjID]*predictorLock{},
		threads: map[trace.ThreadID]*predictorThread{},
	}
}

func (p *Predictor) lockState(id trace.ObjID) *predictorLock {
	l := p.locks[id]
	if l == nil {
		l = &predictorLock{
			id:        id,
			acquireT:  map[trace.ThreadID]trace.Time{},
			sAtObtain: map[trace.ThreadID]float64{},
		}
		p.locks[id] = l
	}
	return l
}

func (p *Predictor) threadState(id trace.ThreadID) *predictorThread {
	t := p.threads[id]
	if t == nil {
		t = &predictorThread{}
		p.threads[id] = t
	}
	return t
}

// advance integrates 1/running up to t.
func (p *Predictor) advance(t trace.Time) {
	if p.started && t > p.lastT {
		running := p.alive - p.blocked
		if running < 1 {
			running = 1
		}
		p.s += float64(t-p.lastT) / float64(running)
	}
	p.lastT = t
	p.started = true
}

func (p *Predictor) block(tid trace.ThreadID) {
	th := p.threadState(tid)
	th.blockedDepth++
	if th.blockedDepth == 1 {
		p.blocked++
	}
}

func (p *Predictor) unblock(tid trace.ThreadID) {
	th := p.threadState(tid)
	if th.blockedDepth > 0 {
		th.blockedDepth--
		if th.blockedDepth == 0 {
			p.blocked--
		}
	}
}

// Observe consumes one event. Events must arrive in trace order.
func (p *Predictor) Observe(e trace.Event) {
	p.advance(e.T)
	switch e.Kind {
	case trace.EvThreadStart:
		th := p.threadState(e.Thread)
		if !th.alive {
			th.alive = true
			p.alive++
		}
	case trace.EvThreadExit:
		th := p.threadState(e.Thread)
		if th.alive {
			th.alive = false
			p.alive--
		}
		if th.blockedDepth > 0 {
			th.blockedDepth = 0
			p.blocked--
		}

	case trace.EvLockAcquire:
		l := p.lockState(e.Obj)
		l.acquireT[e.Thread] = e.T
		p.block(e.Thread)
	case trace.EvLockObtain:
		l := p.lockState(e.Obj)
		if req, ok := l.acquireT[e.Thread]; ok {
			l.waitSum += e.T - req
			delete(l.acquireT, e.Thread)
		}
		p.unblock(e.Thread)
		l.sAtObtain[e.Thread] = p.s
	case trace.EvLockRelease:
		l := p.lockState(e.Obj)
		if s0, held := l.sAtObtain[e.Thread]; held {
			l.score += p.s - s0
			delete(l.sAtObtain, e.Thread)
		}

	case trace.EvBarrierArrive:
		p.block(e.Thread)
	case trace.EvBarrierDepart:
		p.unblock(e.Thread)
	case trace.EvCondWaitBegin:
		p.block(e.Thread)
	case trace.EvCondWaitEnd:
		p.unblock(e.Thread)
	case trace.EvJoinBegin:
		p.block(e.Thread)
	case trace.EvJoinEnd:
		p.unblock(e.Thread)
	}
}

// ObserveAll feeds an entire trace (offline evaluation of the online
// heuristic).
func (p *Predictor) ObserveAll(tr *trace.Trace) {
	for _, e := range tr.Events {
		p.Observe(e)
	}
}

// PredictedLock is one lock's online score.
type PredictedLock struct {
	Lock trace.ObjID
	// Score is the inverse-parallelism-weighted hold time (ns on the
	// estimated critical path).
	Score float64
	// WaitSum is the naive total-wait metric, kept for comparison.
	WaitSum trace.Time
}

// Ranking returns locks by descending criticality score.
func (p *Predictor) Ranking() []PredictedLock {
	out := make([]PredictedLock, 0, len(p.locks))
	for _, l := range p.locks {
		out = append(out, PredictedLock{Lock: l.id, Score: l.score, WaitSum: l.waitSum})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Lock < out[j].Lock
	})
	return out
}

// WaitRanking returns locks by descending plain wait time — the
// idleness metric of prior tools, used as the evaluation baseline.
func (p *Predictor) WaitRanking() []PredictedLock {
	out := p.Ranking()
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitSum != out[j].WaitSum {
			return out[i].WaitSum > out[j].WaitSum
		}
		return out[i].Lock < out[j].Lock
	})
	return out
}

// Top returns the highest-scored lock (NoObj when nothing observed).
func (p *Predictor) Top() trace.ObjID {
	r := p.Ranking()
	if len(r) == 0 {
		return trace.NoObj
	}
	return r[0].Lock
}
