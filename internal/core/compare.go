package core

import (
	"sort"

	"critlock/internal/trace"
)

// Comparison is the structured before/after diff of two analyses —
// the paper's validation workflow (§V.D.3: optimize the critical lock,
// re-run, inspect what moved onto the critical path) as a first-class
// result.
type Comparison struct {
	// BeforeTime and AfterTime are the two completion times.
	BeforeTime trace.Time
	AfterTime  trace.Time
	// Speedup is BeforeTime/AfterTime.
	Speedup float64
	// ImprovementPct is the relative completion-time reduction.
	ImprovementPct float64
	// Locks pairs every lock name appearing in either analysis.
	Locks []LockDelta
}

// LockDelta is one lock's movement between two runs. Locks are
// matched by name, so an optimization that renames or splits a lock
// (qlock → q_head_lock/q_tail_lock) shows the old name disappearing
// and the new names appearing.
type LockDelta struct {
	Name string
	// InBefore/InAfter report presence in each run.
	InBefore, InAfter bool
	// CPTimeBefore/After are the CP Time % values (0 when absent).
	CPTimeBefore, CPTimeAfter float64
	// CPTimeDelta is After − Before.
	CPTimeDelta float64
	// ContOnCPBefore/After are the contention probabilities on the CP.
	ContOnCPBefore, ContOnCPAfter float64
}

// Compare diffs two analyses (typically original vs optimized runs of
// the same workload). beforeTime/afterTime are the completion times of
// the corresponding runs.
func Compare(before, after *Analysis, beforeTime, afterTime trace.Time) *Comparison {
	c := &Comparison{BeforeTime: beforeTime, AfterTime: afterTime}
	if afterTime > 0 {
		c.Speedup = float64(beforeTime) / float64(afterTime)
	}
	if beforeTime > 0 {
		c.ImprovementPct = 100 * float64(beforeTime-afterTime) / float64(beforeTime)
	}

	names := map[string]*LockDelta{}
	deltaOf := func(name string) *LockDelta {
		d := names[name]
		if d == nil {
			d = &LockDelta{Name: name}
			names[name] = d
		}
		return d
	}
	for _, l := range before.Locks {
		d := deltaOf(l.Name)
		d.InBefore = true
		d.CPTimeBefore = l.CPTimePct
		d.ContOnCPBefore = l.ContProbOnCP
	}
	for _, l := range after.Locks {
		d := deltaOf(l.Name)
		d.InAfter = true
		d.CPTimeAfter = l.CPTimePct
		d.ContOnCPAfter = l.ContProbOnCP
	}
	for _, d := range names {
		d.CPTimeDelta = d.CPTimeAfter - d.CPTimeBefore
		c.Locks = append(c.Locks, *d)
	}
	// Largest movement first; ties by name.
	sort.Slice(c.Locks, func(i, j int) bool {
		ai, aj := abs(c.Locks[i].CPTimeDelta), abs(c.Locks[j].CPTimeDelta)
		if ai != aj {
			return ai > aj
		}
		return c.Locks[i].Name < c.Locks[j].Name
	})
	return c
}

// TopMover returns the lock with the largest CP-share change (zero
// value when there are no locks).
func (c *Comparison) TopMover() LockDelta {
	if len(c.Locks) == 0 {
		return LockDelta{Name: "<none>"}
	}
	return c.Locks[0]
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
