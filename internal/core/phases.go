package core

import "critlock/internal/trace"

// PhaseSpan is a contiguous stretch of the run dominated by one lock
// (or by none).
type PhaseSpan struct {
	From, To trace.Time
	// Top is the dominant lock's name, or "<none>" when no lock holds
	// path time in the span.
	Top string
	// TopPct is the dominant lock's share of the span's path time.
	TopPct float64
	// PathTime is critical-path time inside the span.
	PathTime trace.Time
}

// Phases segments the run into spans by dominant critical lock: the
// run is cut into `resolution` windows and adjacent windows with the
// same dominant lock are merged, with the share recomputed over the
// merged span. This turns the paper's single whole-run ranking into a
// phase story ("the barrier region is freeInter-bound, the tail is a
// tq[0].qlock convoy") without hand-picking window boundaries.
func (a *Analysis) Phases(resolution int) []PhaseSpan {
	wins := a.Windows(resolution)
	if len(wins) == 0 {
		return nil
	}
	type acc struct {
		from, to trace.Time
		top      string
		hold     trace.Time
		path     trace.Time
	}
	var spans []acc
	for _, w := range wins {
		top := w.Top()
		if len(spans) > 0 && spans[len(spans)-1].top == top.Name {
			last := &spans[len(spans)-1]
			last.to = w.To
			last.hold += top.HoldOnCP
			last.path += w.PathTime
			continue
		}
		spans = append(spans, acc{from: w.From, to: w.To, top: top.Name, hold: top.HoldOnCP, path: w.PathTime})
	}
	out := make([]PhaseSpan, 0, len(spans))
	for _, s := range spans {
		p := PhaseSpan{From: s.from, To: s.to, Top: s.top, PathTime: s.path}
		if s.path > 0 {
			p.TopPct = 100 * float64(s.hold) / float64(s.path)
		}
		out = append(out, p)
	}
	return out
}
