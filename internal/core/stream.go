package core

import (
	"fmt"
	"math"
	"sort"

	"critlock/internal/trace"
)

// SegmentSource is the streaming analyzer's view of a segmented trace
// (implemented by segment.Reader): the registration skeleton plus
// random access to whole decoded segments. Segments partition the
// canonically ordered event sequence into contiguous runs.
type SegmentSource interface {
	// Skeleton returns threads, objects and metadata with a nil event
	// slice.
	Skeleton() *trace.Trace
	// NumEvents is the total event count.
	NumEvents() int
	// NumSegments is the number of segments.
	NumSegments() int
	// SegmentBounds returns the global index of segment i's first
	// event and its event count.
	SegmentBounds(i int) (first, count int)
	// LoadSegment decodes segment i into buf, reusing its capacity.
	LoadSegment(i int, buf []trace.Event) ([]trace.Event, error)
}

// ColumnSource is a SegmentSource that can decode segments straight
// into a columnar layout — the streaming passes' fast path (no
// per-event struct materialization; segment.Reader batch-decodes from
// the mapped file). LoadColumns resets cols and reports the encoded
// body bytes consumed (0 if unknown). Distinct segments must be
// loadable from distinct goroutines concurrently.
//
// Plain SegmentSources are adapted automatically (asColumnSource).
type ColumnSource interface {
	SegmentSource
	LoadColumns(i int, cols *trace.Columns) (int64, error)
}

// DefaultCacheSegments is the default backward-walk window.
const DefaultCacheSegments = 4

// AnalyzeStream runs critical lock analysis over a segmented trace in
// bounded memory. The result is bit-identical to Analyze on the same
// events (Analysis.Trace holds the skeleton rather than the events,
// and holdsByThread is only populated with cfg.Composition).
//
// Options.Validate is not consulted: whole-trace validation would
// defeat the memory bound, and the streaming passes already enforce
// the invariants the analysis depends on (canonical ordering and
// checksums in the segment reader, thread ranges and
// acquire/obtain/release pairing in the passes).
//
// Three passes, per the paper's structure:
//
//  1. forward over segments — waker resolution (§IV.B) written as a
//     fixed-size annotation record per event to per-segment shards
//     (in memory under cfg.AnnotationBudget, spilled to a temp file
//     over it), plus the incremental per-thread lifecycle state;
//  2. backward — the critical-path walk of Fig. 2 over segments loaded
//     window-by-window in reverse through an LRU cache;
//  3. forward again — TYPE 1/TYPE 2 metric accumulation, streaming
//     invocations per thread in acquire order against the walked path.
//
// With cfg.ParallelSegments > 1, passes 1 and 3 run over disjoint
// segment ranges concurrently and merge deterministically; the result
// is bit-identical at any setting.
func AnalyzeStream(src SegmentSource, cfg Config) (*Analysis, error) {
	return NewAnalyzer().AnalyzeStream(src, cfg)
}

// AnalyzeStream is the Analyzer form of the package-level
// AnalyzeStream. The streaming passes keep no event-count-sized state,
// so unlike Analyze there is no retained storage to reuse; the method
// exists so pipelines can drive both modes through one Analyzer.
func (a *Analyzer) AnalyzeStream(src SegmentSource, cfg Config) (*Analysis, error) {
	return a.analyzeStream(src, cfg)
}

// analyzeStream is the bounded-memory pipeline behind StreamSource:
// pass1 (waker annotation) → walk → pass3 (metrics), with per-phase
// observation.
func (a *Analyzer) analyzeStream(src SegmentSource, cfg Config) (*Analysis, error) {
	n := src.NumEvents()
	if n == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if n > math.MaxInt32-1 {
		return nil, fmt.Errorf("core: trace has %d events, beyond the streaming index range", n)
	}
	if cfg.CacheSegments <= 0 {
		cfg.CacheSegments = DefaultCacheSegments
	}
	workers := cfg.ParallelSegments
	if workers > src.NumSegments() {
		workers = src.NumSegments()
	}
	if workers < 1 {
		workers = 1
	}
	skel := src.Skeleton()
	cs := asColumnSource(src)
	h := newObsHook(cfg.Observer, n)

	ann, err := newAnnStore(src, n, cfg.TmpDir, cfg.AnnotationBudget)
	if err != nil {
		return nil, err
	}
	defer ann.remove()

	start := h.phaseStart("pass1")
	var p1 *pass1Result
	if workers > 1 {
		p1, err = streamPass1Par(cs, skel, ann, workers, h)
	} else {
		p1, err = streamPass1(cs, skel, ann, h)
	}
	if err != nil {
		return nil, err
	}
	h.phaseDone("pass1", start, int64(n))

	start = h.phaseStart("walk")
	loader := newSegLoader(cs, ann, cfg.CacheSegments)
	loader.hook = h
	cp, err := streamWalk(loader, p1, n)
	if err != nil {
		return nil, err
	}
	h.phaseDone("walk", start, -1)

	start = h.phaseStart("pass3")
	an := &Analysis{Trace: skel, CP: *cp}
	if workers > 1 {
		err = streamPass3Par(cs, skel, ann, p1, an, cfg, workers, h)
	} else {
		err = streamPass3(cs, skel, ann, p1, an, cfg, h)
	}
	if err != nil {
		return nil, err
	}
	h.phaseDone("pass3", start, int64(n))
	return an, nil
}

// pass1Result carries the O(threads) lifecycle state pass 1 derives.
type pass1Result struct {
	firstT, lastT trace.Time
	startIdx      []int32
	startT        []trace.Time
	exitIdx       []int32
	exitT         []trace.Time
	exitSeq       []uint64
}

func newPass1Result(nThreads int) *pass1Result {
	p1 := &pass1Result{
		startIdx: make([]int32, nThreads),
		startT:   make([]trace.Time, nThreads),
		exitIdx:  make([]int32, nThreads),
		exitT:    make([]trace.Time, nThreads),
		exitSeq:  make([]uint64, nThreads),
	}
	for tid := 0; tid < nThreads; tid++ {
		p1.startIdx[tid] = -1
		p1.exitIdx[tid] = -1
	}
	return p1
}

// barEpisode tracks one barrier episode until its wakers resolve.
type barEpisode struct {
	lastArrive       int32
	lastArriveThread trace.ThreadID
	arrives          int
	departs          int
	// pending are blocked departs seen before the episode completed
	// (with equal timestamps a depart can sort before the last
	// arrive, exactly why the in-memory pass defers them too).
	pending []pendingDepart
}

// barStream is the per-barrier streaming state: live episodes plus the
// per-thread FIFO pairing each thread's k-th arrive with its k-th
// depart. Completed, fully departed episodes are pruned, so memory is
// O(open episodes), not O(trace).
type barStream struct {
	parties  int
	arrivals int
	episodes map[int]*barEpisode
	arriveEp map[trace.ThreadID]*intQueue
}

// intQueue is a FIFO of ints with amortized O(1) pops.
type intQueue struct {
	vals []int
	head int
}

func (q *intQueue) push(v int) { q.vals = append(q.vals, v) }

func (q *intQueue) pop() (int, bool) {
	if q.head >= len(q.vals) {
		return 0, false
	}
	v := q.vals[q.head]
	q.head++
	if q.head == len(q.vals) {
		q.vals, q.head = q.vals[:0], 0
	} else if q.head > 64 && q.head*2 >= len(q.vals) {
		q.vals = q.vals[:copy(q.vals, q.vals[q.head:])]
		q.head = 0
	}
	return v, true
}

// condStream mirrors the in-memory per-cond state: FIFO of blocked
// waiters plus resolved wakers.
type condStream struct {
	waiting []trace.ThreadID
	wakerOf map[trace.ThreadID]int32
}

// annPatch is a deferred waker resolution applied after the scan.
type annPatch struct {
	idx   int32
	waker int32
}

// pass1Sync is the sequential waker state machine for every
// synchronization kind whose resolution needs global order: thread
// lifecycle, barriers, conds, channels and joins. The sequential pass
// feeds it every event inline; the parallel pass replays only the
// (rare) sync events through it at merge time, in global order, so
// both produce identical wakers and patches. Lock release→obtain
// wakers are NOT handled here — they are the per-range case the
// parallel workers resolve locally (see streamPass1Par).
type pass1Sync struct {
	skel         *trace.Trace
	p1           *pass1Result
	createIdx    []int32
	pendingStart []int32
	joinBeginT   []trace.Time
	// exit tracking lives here (not in p1) for the parallel pass: a
	// JoinEnd's waker must consult only exits that precede it, and in
	// the parallel pass p1.exitIdx is filled by workers out of order.
	exitIdx  []int32
	exitT    []trace.Time
	barriers map[trace.ObjID]*barStream
	conds    map[trace.ObjID]*condStream
	chans    map[trace.ObjID]*chanPairing
	patches  []annPatch
}

func newPass1Sync(skel *trace.Trace, p1 *pass1Result) *pass1Sync {
	nThreads := len(skel.Threads)
	m := &pass1Sync{
		skel:         skel,
		p1:           p1,
		createIdx:    make([]int32, nThreads),
		pendingStart: make([]int32, nThreads),
		joinBeginT:   make([]trace.Time, nThreads),
		exitIdx:      make([]int32, nThreads),
		exitT:        make([]trace.Time, nThreads),
		barriers:     map[trace.ObjID]*barStream{},
		conds:        map[trace.ObjID]*condStream{},
		chans:        map[trace.ObjID]*chanPairing{},
	}
	for tid := 0; tid < nThreads; tid++ {
		m.createIdx[tid] = -1
		m.pendingStart[tid] = -1
		m.exitIdx[tid] = -1
	}
	return m
}

func (m *pass1Sync) barOf(o trace.ObjID) *barStream {
	bs := m.barriers[o]
	if bs == nil {
		bs = &barStream{
			parties:  m.skel.Object(o).Parties,
			episodes: map[int]*barEpisode{},
			arriveEp: map[trace.ThreadID]*intQueue{},
		}
		m.barriers[o] = bs
	}
	return bs
}

func (m *pass1Sync) condOf(o trace.ObjID) *condStream {
	cs := m.conds[o]
	if cs == nil {
		cs = &condStream{wakerOf: map[trace.ThreadID]int32{}}
		m.conds[o] = cs
	}
	return cs
}

func (m *pass1Sync) chanOf(o trace.ObjID) *chanPairing {
	cs := m.chans[o]
	if cs == nil {
		cs = newChanPairing(m.skel.Object(o).Parties)
		m.chans[o] = cs
	}
	return cs
}

// step advances the sync machine by one event, mutating rec's waker
// and blocked flag where this event is a resolution site and queueing
// patches where the resolution is deferred.
func (m *pass1Sync) step(i int32, kind trace.EventKind, thread trace.ThreadID,
	obj trace.ObjID, arg int64, t trace.Time, seq uint64, rec *annRec) {
	switch kind {
	case trace.EvThreadStart:
		m.p1.startIdx[thread] = i
		m.p1.startT[thread] = t
		if c := m.createIdx[thread]; c >= 0 {
			rec.flags |= annBlocked
			rec.waker = c
		} else {
			m.pendingStart[thread] = i
		}

	case trace.EvThreadExit:
		m.p1.exitIdx[thread] = i
		m.p1.exitT[thread] = t
		m.p1.exitSeq[thread] = seq
		m.exitIdx[thread] = i
		m.exitT[thread] = t

	case trace.EvThreadCreate:
		child := trace.ThreadID(arg)
		if int(child) >= 0 && int(child) < len(m.createIdx) && m.createIdx[child] == -1 {
			m.createIdx[child] = i
			if ps := m.pendingStart[child]; ps >= 0 {
				m.patches = append(m.patches, annPatch{idx: ps, waker: i})
				m.pendingStart[child] = -1
			}
		}

	case trace.EvBarrierArrive:
		bs := m.barOf(obj)
		ep := 0
		if bs.parties > 0 {
			ep = bs.arrivals / bs.parties
		}
		bs.arrivals++
		epi := bs.episodes[ep]
		if epi == nil {
			epi = &barEpisode{}
			bs.episodes[ep] = epi
		}
		epi.lastArrive = i
		epi.lastArriveThread = thread
		epi.arrives++
		q := bs.arriveEp[thread]
		if q == nil {
			q = &intQueue{}
			bs.arriveEp[thread] = q
		}
		q.push(ep)
		if bs.parties > 0 && epi.arrives == bs.parties {
			// Episode complete: its last arrive is final, so
			// deferred departs resolve now.
			for _, d := range epi.pending {
				if epi.lastArriveThread != d.thread {
					m.patches = append(m.patches, annPatch{idx: d.idx, waker: epi.lastArrive})
				}
			}
			epi.pending = nil
			if epi.departs >= bs.parties {
				delete(bs.episodes, ep)
			}
		}

	case trace.EvBarrierDepart:
		bs := m.barOf(obj)
		var epi *barEpisode
		ep := -1
		if q := bs.arriveEp[thread]; q != nil {
			if v, ok := q.pop(); ok {
				ep = v
				epi = bs.episodes[ep]
			}
		}
		if epi != nil {
			epi.departs++
		}
		if arg == 0 && epi != nil {
			rec.flags |= annBlocked
			if bs.parties > 0 && epi.arrives >= bs.parties {
				if epi.lastArriveThread != thread {
					rec.waker = epi.lastArrive
				}
			} else {
				epi.pending = append(epi.pending, pendingDepart{idx: i, obj: obj, thread: thread, episode: ep})
			}
		}
		if epi != nil && bs.parties > 0 && epi.arrives >= bs.parties &&
			epi.departs >= bs.parties && len(epi.pending) == 0 {
			delete(bs.episodes, ep)
		}

	case trace.EvCondWaitBegin:
		cs := m.condOf(obj)
		cs.waiting = append(cs.waiting, thread)

	case trace.EvCondSignal:
		cs := m.condOf(obj)
		if len(cs.waiting) > 0 {
			cs.wakerOf[cs.waiting[0]] = i
			cs.waiting = cs.waiting[1:]
		}

	case trace.EvCondBroadcast:
		cs := m.condOf(obj)
		for _, th := range cs.waiting {
			cs.wakerOf[th] = i
		}
		cs.waiting = cs.waiting[:0]

	case trace.EvCondWaitEnd:
		cs := m.condOf(obj)
		rec.flags |= annBlocked
		if w, ok := cs.wakerOf[thread]; ok {
			rec.waker = w
			delete(cs.wakerOf, thread)
		} else {
			// Spurious wakeup or unmatched signal: drop from
			// the waiting queue, leave the waker unknown.
			for j, th := range cs.waiting {
				if th == thread {
					cs.waiting = append(cs.waiting[:j], cs.waiting[j+1:]...)
					break
				}
			}
		}

	case trace.EvChanSend:
		blocked := arg&trace.ChanArgBlocked != 0
		w := m.chanOf(obj).send(i, blocked)
		if blocked {
			rec.flags |= annBlocked
			rec.waker = w
		}

	case trace.EvChanRecv:
		blocked := arg&trace.ChanArgBlocked != 0
		w := m.chanOf(obj).recv(i, blocked, arg&trace.ChanArgClosed != 0)
		if blocked {
			rec.flags |= annBlocked
			rec.waker = w
		}

	case trace.EvChanClose:
		m.chanOf(obj).close(i)

	case trace.EvJoinBegin:
		m.joinBeginT[thread] = t

	case trace.EvJoinEnd:
		target := trace.ThreadID(arg)
		if int(target) >= 0 && int(target) < len(m.exitIdx) && m.exitIdx[target] >= 0 &&
			m.exitT[target] > m.joinBeginT[thread] {
			rec.flags |= annBlocked
			rec.waker = m.exitIdx[target]
		}
	}
}

// finish resolves barrier episodes that never completed (truncated
// traces, zero-party barriers): their last arrive so far is the waker,
// as in the in-memory post-pass. Returns all deferred patches.
func (m *pass1Sync) finish() []annPatch {
	for _, bs := range m.barriers {
		for _, epi := range bs.episodes {
			for _, d := range epi.pending {
				if epi.lastArriveThread != d.thread {
					m.patches = append(m.patches, annPatch{idx: d.idx, waker: epi.lastArrive})
				}
			}
		}
	}
	return m.patches
}

// isSyncKind reports whether kind routes through pass1Sync. Lock
// events are excluded: obtain wakers resolve against lastRelease
// per-range in the parallel pass.
func isSyncKind(kind trace.EventKind) bool {
	switch kind {
	case trace.EvThreadStart, trace.EvThreadExit, trace.EvThreadCreate,
		trace.EvBarrierArrive, trace.EvBarrierDepart,
		trace.EvCondWaitBegin, trace.EvCondWaitEnd, trace.EvCondSignal, trace.EvCondBroadcast,
		trace.EvChanSend, trace.EvChanRecv, trace.EvChanClose,
		trace.EvJoinBegin, trace.EvJoinEnd:
		return true
	}
	return false
}

// streamPass1 is the forward waker-resolution pass: one annotation
// record per event written to per-segment shards, deferred
// resolutions applied as patches. Its working set is O(threads +
// objects + open barrier episodes + waiting cond threads + one
// decoded segment) — independent of trace length.
func streamPass1(src ColumnSource, skel *trace.Trace, ann *annStore, h *obsHook) (*pass1Result, error) {
	nThreads := len(skel.Threads)
	p1 := newPass1Result(nThreads)
	sync := newPass1Sync(skel, p1)
	lastOfThread := make([]int32, nThreads)
	for tid := 0; tid < nThreads; tid++ {
		lastOfThread[tid] = -1
	}
	lastRelease := make([]int32, len(skel.Objects))
	for i := range lastRelease {
		lastRelease[i] = -1
	}

	var cols trace.Columns
	var lkScratch, flScratch []byte
	i := int32(0)
	for s := 0; s < src.NumSegments(); s++ {
		bytes, err := src.LoadColumns(s, &cols)
		if err != nil {
			return nil, err
		}
		count := cols.Len()
		lk, fl := ann.shard(s, lkScratch, flScratch)
		cT, cSeq, cTh, cKind, cObj, cArg := cols.T, cols.Seq, cols.Thread, cols.Kind, cols.Obj, cols.Arg
		for k := 0; k < count; k++ {
			th := cTh[k]
			if th < 0 || int(th) >= nThreads {
				return nil, fmt.Errorf("core: event %d references thread %d out of range", i, th)
			}
			t := cT[k]
			if i == 0 {
				p1.firstT = t
			}
			p1.lastT = t
			rec := annRec{prev: lastOfThread[th], waker: -1}
			lastOfThread[th] = i

			switch kind := trace.EventKind(cKind[k]); kind {
			case trace.EvLockObtain:
				if cArg[k]&trace.LockArgContended != 0 {
					rec.flags |= annBlocked
					if obj := cObj[k]; obj >= 0 && int(obj) < len(lastRelease) {
						rec.waker = lastRelease[obj]
					}
				}
			case trace.EvLockRelease:
				if obj := cObj[k]; obj >= 0 && int(obj) < len(lastRelease) {
					lastRelease[obj] = i
				}
			default:
				if isSyncKind(kind) {
					sync.step(i, kind, trace.ThreadID(th), trace.ObjID(cObj[k]), cArg[k], t, cSeq[k], &rec)
				}
			}

			putAnnLink(lk[k*annLinkSize:], rec.prev, rec.waker)
			fl[k] = rec.flags
			i++
		}
		spilled, err := ann.commit(s, lk, fl)
		if err != nil {
			return nil, err
		}
		if !ann.inMemory() {
			lkScratch, flScratch = lk, fl
		}
		if spilled > 0 {
			h.spilled(spilled)
		}
		h.scanned(count, bytes)
	}

	for _, p := range sync.finish() {
		if err := ann.patch(p.idx, p.waker, annBlocked); err != nil {
			return nil, err
		}
	}
	return p1, nil
}

// segLoader serves random event/annotation lookups for the backward
// walk from an LRU cache of decoded segments. The most recent window
// short-circuits: the walk steps through one segment at a time, so
// nearly every lookup hits it without the binary search or LRU scan.
type segLoader struct {
	src    ColumnSource
	ann    *annStore
	firsts []int // global index of each segment's first event
	total  int
	cache  map[int]*segWindow
	lru    []int // segment ids, least recent first
	max    int
	cur    *segWindow // most recently used window
	hook   *obsHook   // cache-miss load accounting (nil = none)
}

type segWindow struct {
	first int
	end   int // first + count
	cols  trace.Columns
	links []byte
	flags []byte
}

func newSegLoader(src ColumnSource, ann *annStore, cacheSegments int) *segLoader {
	n := src.NumSegments()
	l := &segLoader{
		src:    src,
		ann:    ann,
		firsts: make([]int, n),
		cache:  map[int]*segWindow{},
		max:    cacheSegments,
	}
	for i := 0; i < n; i++ {
		first, count := src.SegmentBounds(i)
		l.firsts[i] = first
		l.total = first + count
	}
	return l
}

// window returns the cached window containing global event index i,
// loading (and evicting) as needed.
func (l *segLoader) window(i int32) (*segWindow, error) {
	if w := l.cur; w != nil && w.first <= int(i) && int(i) < w.end {
		return w, nil
	}
	seg := sort.SearchInts(l.firsts, int(i)+1) - 1
	if w := l.cache[seg]; w != nil {
		// Refresh LRU position.
		for k, s := range l.lru {
			if s == seg {
				copy(l.lru[k:], l.lru[k+1:])
				l.lru[len(l.lru)-1] = seg
				break
			}
		}
		l.cur = w
		return w, nil
	}
	var reuse *segWindow
	if len(l.lru) >= l.max {
		victim := l.lru[0]
		copy(l.lru, l.lru[1:])
		l.lru = l.lru[:len(l.lru)-1]
		reuse = l.cache[victim]
		delete(l.cache, victim)
	} else {
		reuse = &segWindow{}
	}
	first, count := l.src.SegmentBounds(seg)
	bytes, err := l.src.LoadColumns(seg, &reuse.cols)
	if err != nil {
		return nil, err
	}
	links, err := l.ann.readLinks(first, count, reuse.links)
	if err != nil {
		return nil, err
	}
	flags, err := l.ann.readFlags(first, count, reuse.flags)
	if err != nil {
		return nil, err
	}
	reuse.first, reuse.end, reuse.links, reuse.flags = first, first+count, links, flags
	l.cache[seg] = reuse
	l.lru = append(l.lru, seg)
	l.cur = reuse
	l.hook.scanned(count, bytes)
	return reuse, nil
}

func (l *segLoader) timeAt(i int32) (trace.Time, error) {
	w, err := l.window(i)
	if err != nil {
		return 0, err
	}
	return w.cols.T[int(i)-w.first], nil
}

func (l *segLoader) threadAt(i int32) (trace.ThreadID, error) {
	w, err := l.window(i)
	if err != nil {
		return 0, err
	}
	return trace.ThreadID(w.cols.Thread[int(i)-w.first]), nil
}

// revChunks collects values emitted back-to-front into fixed-size
// chunks, then assembles them into one exact-size forward-ordered
// slice — a single final copy instead of append-doubling over a slice
// whose length is unknown until the walk ends.
type revChunks[T any] struct {
	chunks [][]T
	cur    []T
	n      int
}

func (r *revChunks[T]) push(v T) {
	if len(r.cur) == cap(r.cur) {
		c := 2 * cap(r.cur)
		if c < 64 {
			c = 64
		}
		if c > 1<<13 {
			c = 1 << 13
		}
		if r.cur != nil {
			r.chunks = append(r.chunks, r.cur)
		}
		r.cur = make([]T, 0, c)
	}
	r.cur = append(r.cur, v)
	r.n++
}

// forward returns the pushed values in reverse push order (the walk
// pushes newest-first, so this is forward time order).
func (r *revChunks[T]) forward() []T {
	out := make([]T, r.n)
	k := r.n - 1
	fill := func(ch []T) {
		for _, v := range ch {
			out[k] = v
			k--
		}
	}
	for i, ch := range r.chunks {
		fill(ch)
		r.chunks[i] = nil // shed each chunk as it is copied out
	}
	fill(r.cur)
	r.chunks, r.cur = nil, nil
	return out
}

// streamWalk is the backward critical-path walk (paper Fig. 2) over
// windowed segments. It mirrors walk() step for step — anchor choice,
// the condition-wait re-acquisition special case, piece emission — but
// reads events and waker edges through the loader instead of in-memory
// arrays. The differential oracle in the test suite holds the two
// implementations identical.
func streamWalk(l *segLoader, p1 *pass1Result, n int) (*CriticalPath, error) {
	// Anchor: the exit event of the last-finishing thread; fall back
	// to the globally last event for truncated traces.
	anchor := int32(-1)
	var anchorT trace.Time
	var anchorSeq uint64
	for tid := range p1.exitIdx {
		ei := p1.exitIdx[tid]
		if ei < 0 {
			continue
		}
		if anchor < 0 || p1.exitT[tid] > anchorT ||
			(p1.exitT[tid] == anchorT && p1.exitSeq[tid] > anchorSeq) {
			anchor, anchorT, anchorSeq = ei, p1.exitT[tid], p1.exitSeq[tid]
		}
	}
	if anchor < 0 {
		anchor = int32(n - 1)
	}

	anchorThread, err := l.threadAt(anchor)
	if err != nil {
		return nil, err
	}
	cp := &CriticalPath{
		LastThread: anchorThread,
		WallTime:   p1.lastT - p1.firstT,
	}
	var pieces revChunks[Piece]
	var jumps revChunks[Jump]

	cur := anchor
	maxSteps := 2*n + 2
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("core: critical-path walk did not terminate after %d steps", steps)
		}
		cp.Steps = steps
		// Copy the current event's fields out of its window before
		// touching any other index: a later load may evict and reuse
		// the window's backing storage.
		w, err := l.window(cur)
		if err != nil {
			return nil, err
		}
		j := int(cur) - w.first
		kind := trace.EventKind(w.cols.Kind[j])
		t := w.cols.T[j]
		thread := trace.ThreadID(w.cols.Thread[j])
		obj := trace.ObjID(w.cols.Obj[j])
		var rec annRec
		rec.prev, rec.waker = getAnnLink(w.links[j*annLinkSize : j*annLinkSize+annLinkSize])
		rec.flags = w.flags[j]

		if kind == trace.EvThreadStart {
			if rec.waker < 0 {
				break // root thread's start: the program's beginning
			}
			weThread, err := l.threadAt(rec.waker)
			if err != nil {
				return nil, err
			}
			cp.Jumps++
			jumps.push(Jump{
				T: t, From: thread, To: weThread,
				Kind: JumpStart, Obj: trace.NoObj,
			})
			cur = rec.waker
			continue
		}

		prev := rec.prev
		if prev < 0 {
			break // malformed thread without a start event
		}

		if rec.flags&annBlocked != 0 && rec.waker >= 0 {
			// A condition wait that had to re-acquire a contended
			// mutex has two dependencies: the signaller and the
			// previous mutex holder. The binding one is whichever
			// released the thread last; when that is the mutex (its
			// obtain directly precedes the wait-end, at or after the
			// signal), step back so the obtain's own jump routes the
			// path through the releaser without losing time.
			if kind == trace.EvCondWaitEnd {
				pw, err := l.window(prev)
				if err != nil {
					return nil, err
				}
				pj := int(prev) - pw.first
				peKind := trace.EventKind(pw.cols.Kind[pj])
				peT := pw.cols.T[pj]
				var prec annRec
				prec.prev, prec.waker = getAnnLink(pw.links[pj*annLinkSize : pj*annLinkSize+annLinkSize])
				prec.flags = pw.flags[pj]
				weT, err := l.timeAt(rec.waker)
				if err != nil {
					return nil, err
				}
				if peKind == trace.EvLockObtain && prec.flags&annBlocked != 0 && prec.waker >= 0 &&
					peT >= weT {
					cur = prev
					continue
				}
			}
			weThread, err := l.threadAt(rec.waker)
			if err != nil {
				return nil, err
			}
			peT, err := l.timeAt(prev)
			if err != nil {
				return nil, err
			}
			cp.Jumps++
			jumps.push(Jump{
				T: t, From: thread, To: weThread,
				Kind: jumpKindOf(kind), Obj: obj,
				Wait: t - peT,
			})
			cur = rec.waker
			continue
		}

		peT, err := l.timeAt(prev)
		if err != nil {
			return nil, err
		}
		from, to := peT, t
		if to > from {
			kind := PieceExec
			if rec.flags&annBlocked != 0 {
				// Blocked but waker unknown: the wait itself sits on
				// the critical path.
				kind = PieceWait
			}
			pieces.push(Piece{Thread: thread, From: from, To: to, Kind: kind})
		}
		cur = prev
	}

	// Pieces and jumps were generated back-to-front; assemble into
	// forward order. The window cache and the annotation link plane
	// (prev/waker — only the walk reads them) are dead weight from here
	// on — drop both first so the assembly's transient (chunks plus the
	// final slices) replaces them in the live set instead of stacking
	// on top of them.
	l.cache, l.lru, l.cur = nil, nil, nil
	l.ann.releaseLinks()
	cp.Pieces = pieces.forward()
	if jumps.n > 0 {
		cp.JumpLog = jumps.forward()
	}
	for i := range cp.Pieces {
		p := &cp.Pieces[i]
		cp.Length += p.Dur()
		switch p.Kind {
		case PieceExec:
			cp.ExecTime += p.Dur()
		case PieceWait:
			cp.WaitTime += p.Dur()
		}
	}
	return cp, nil
}

// streamThread is pass 3's per-thread state: the previous event's
// timestamp, matched cond-wait begins, the FIFO of in-flight lock
// invocations (acquire order) and the thread's critical-path clip
// cursor. Everything is O(in-flight), not O(history).
type streamThread struct {
	seen      bool
	prevT     trace.Time
	condBegin map[trace.ObjID]trace.Time
	pend      []invocation
	head      int
	base      int        // absolute queue position of pend[0]
	open      openSet    // lock → absolute queue position
	clips     []interval // clip index: (From, To) of this thread's CP pieces
	cursor    int
}

// openSet maps a held lock to its queue position with map semantics —
// one entry per lock, a later acquire overwriting an earlier one — over
// a linear scan. A thread holds very few locks at once, so the scan
// beats a hash map's assign/delete per critical section.
type openSet struct {
	objs []trace.ObjID
	pos  []int
}

func (o *openSet) set(obj trace.ObjID, p int) {
	for k, oo := range o.objs {
		if oo == obj {
			o.pos[k] = p
			return
		}
	}
	o.objs = append(o.objs, obj)
	o.pos = append(o.pos, p)
}

func (o *openSet) get(obj trace.ObjID) (int, bool) {
	for k, oo := range o.objs {
		if oo == obj {
			return o.pos[k], true
		}
	}
	return 0, false
}

func (o *openSet) del(obj trace.ObjID) {
	for k, oo := range o.objs {
		if oo == obj {
			last := len(o.objs) - 1
			o.objs[k], o.pos[k] = o.objs[last], o.pos[last]
			o.objs, o.pos = o.objs[:last], o.pos[:last]
			return
		}
	}
}

// push appends an in-flight invocation, returning its absolute
// position.
func (st *streamThread) push(inv invocation) int {
	st.pend = append(st.pend, inv)
	return st.base + len(st.pend) - 1
}

// at returns the invocation at absolute position pos.
func (st *streamThread) at(pos int) *invocation { return &st.pend[pos-st.base] }

// compact reclaims delivered queue space once it dominates.
func (st *streamThread) compact() {
	if st.head == len(st.pend) {
		st.base += st.head
		st.pend, st.head = st.pend[:0], 0
	} else if st.head > 64 && st.head*2 >= len(st.pend) {
		st.base += st.head
		st.pend = st.pend[:copy(st.pend, st.pend[st.head:])]
		st.head = 0
	}
}

// initStreamThreads fills the analysis's ThreadStats from pass 1 and
// builds the per-thread clip index from the walked path — shared by
// the sequential and parallel metric passes.
func initStreamThreads(an *Analysis, skel *trace.Trace, p1 *pass1Result) []streamThread {
	nThreads := len(skel.Threads)
	an.Threads = make([]ThreadStats, nThreads)
	for tid := 0; tid < nThreads; tid++ {
		ts := &an.Threads[tid]
		ts.Thread = trace.ThreadID(tid)
		ts.Name = skel.Threads[tid].Name
		if p1.startIdx[tid] >= 0 {
			ts.Start = p1.startT[tid]
		}
		if p1.exitIdx[tid] >= 0 {
			ts.End = p1.exitT[tid]
		} else {
			ts.End = p1.lastT
		}
		ts.Lifetime = ts.End - ts.Start
	}

	// Critical-path pieces per thread, packed as (From, To) pairs and
	// sorted by time for clipping — the same construction and sort the
	// in-memory pass uses, so tie orders match exactly.
	threads := make([]streamThread, nThreads)
	counts := make([]int, nThreads)
	for pi := range an.CP.Pieces {
		counts[an.CP.Pieces[pi].Thread]++
	}
	for tid, n := range counts {
		if n > 0 {
			threads[tid].clips = make([]interval, 0, n)
		}
	}
	for pi := range an.CP.Pieces {
		p := &an.CP.Pieces[pi]
		threads[p.Thread].clips = append(threads[p.Thread].clips, interval{p.From, p.To})
		an.Threads[p.Thread].TimeOnCP += p.Dur()
	}
	for tid := range threads {
		sortClipIndex(threads[tid].clips)
	}
	return threads
}

// streamPass3 is the forward metric pass: per-thread blocking-time
// accounting and per-lock accumulation, delivering each thread's
// invocations in acquire order (identical to the in-memory
// invsByThread order) as their critical sections close.
func streamPass3(src ColumnSource, skel *trace.Trace, ann *annStore, p1 *pass1Result, an *Analysis, cfg Config, h *obsHook) error {
	nThreads := len(skel.Threads)
	threads := initStreamThreads(an, skel, p1)

	an.hotByLock = map[trace.ObjID][]interval{}
	if cfg.Composition {
		an.holdsByThread = make([][]interval, nThreads)
	}
	sink := newLockSink(nThreads, len(skel.Objects))

	deliver := func(tid int, inv *invocation) {
		if cfg.Composition {
			an.holdsByThread[tid] = append(an.holdsByThread[tid], interval{inv.obtT, inv.relT})
		}
		st := &threads[tid]
		accumulateInvocation(sink, &an.Threads[tid], inv, skel.ObjName(inv.lock), cfg.Options, st.clips, &st.cursor)
	}

	var cols trace.Columns
	var flagsBuf []byte
	i := int32(0)
	for s := 0; s < src.NumSegments(); s++ {
		first, count := src.SegmentBounds(s)
		bytes, err := src.LoadColumns(s, &cols)
		if err != nil {
			return err
		}
		flagsBuf, err = ann.readFlags(first, count, flagsBuf)
		if err != nil {
			return err
		}
		cT, cTh, cKind, cObj, cArg := cols.T, cols.Thread, cols.Kind, cols.Obj, cols.Arg
		for k := 0; k < count; k++ {
			tid := int(cTh[k])
			st := &threads[tid]
			kind := trace.EventKind(cKind[k])
			t := cT[k]
			obj := trace.ObjID(cObj[k])
			arg := cArg[k]

			// Blocking-time accounting skips each thread's first event
			// (as the in-memory pass does: there is no preceding
			// interval to account).
			if st.seen {
				ts := &an.Threads[tid]
				switch kind {
				case trace.EvBarrierDepart:
					if arg == 0 {
						ts.BarrierWait += t - st.prevT
					}
				case trace.EvCondWaitBegin:
					if st.condBegin == nil {
						st.condBegin = map[trace.ObjID]trace.Time{}
					}
					st.condBegin[obj] = t
				case trace.EvCondWaitEnd:
					if begin, ok := st.condBegin[obj]; ok {
						ts.CondWait += t - begin
						delete(st.condBegin, obj)
					}
				case trace.EvChanSend:
					cs := sink.chanOf(obj, skel.ObjName(obj))
					cs.Sends++
					if arg&trace.ChanArgBlocked != 0 {
						w := t - st.prevT
						cs.BlockedSends++
						cs.SendWait += w
						if w > cs.MaxWait {
							cs.MaxWait = w
						}
						ts.ChanWait += w
					}
				case trace.EvChanRecv:
					cs := sink.chanOf(obj, skel.ObjName(obj))
					cs.Recvs++
					if arg&trace.ChanArgBlocked != 0 {
						w := t - st.prevT
						cs.BlockedRecvs++
						cs.RecvWait += w
						if w > cs.MaxWait {
							cs.MaxWait = w
						}
						ts.ChanWait += w
					}
				case trace.EvChanClose:
					sink.chanOf(obj, skel.ObjName(obj)).Closes++
				case trace.EvJoinEnd:
					if flagsBuf[k]&annBlocked != 0 {
						ts.JoinWait += t - st.prevT
					}
				}
			} else {
				st.seen = true
			}
			st.prevT = t

			switch kind {
			case trace.EvLockAcquire:
				pos := st.push(invocation{
					lock: obj, thread: trace.ThreadID(tid),
					acquireIdx: i, obtainIdx: -1, releaseIdx: -1,
					acqT: t,
				})
				st.open.set(obj, pos)

			case trace.EvLockObtain:
				pos, ok := st.open.get(obj)
				if !ok {
					return fmt.Errorf("core: event %d: obtain of %q without acquire", i, skel.ObjName(obj))
				}
				inv := st.at(pos)
				inv.obtainIdx = i
				inv.obtT = t
				inv.contended = arg&trace.LockArgContended != 0
				inv.shared = arg&trace.LockArgShared != 0

			case trace.EvLockRelease:
				pos, ok := st.open.get(obj)
				if !ok {
					return fmt.Errorf("core: event %d: release of %q without hold", i, skel.ObjName(obj))
				}
				inv := st.at(pos)
				inv.releaseIdx = i
				inv.relT = t
				st.open.del(obj)
				// Deliver the closed prefix of the queue — acquire
				// order, matching the in-memory pass.
				for st.head < len(st.pend) && st.pend[st.head].releaseIdx >= 0 {
					if st.pend[st.head].obtainIdx >= 0 {
						deliver(tid, &st.pend[st.head])
					}
					st.head++
				}
				st.compact()
			}
			i++
		}
		h.scanned(count, bytes)
		// Pass 3 is the last annotation consumer; shed each segment's
		// shard as soon as it is behind us.
		ann.release(s)
	}

	// End of trace: invocations still open get the trace's end as
	// their release (as the in-memory pass does), then deliver the
	// rest of every queue in acquire order.
	for tid := range threads {
		st := &threads[tid]
		for k := st.head; k < len(st.pend); k++ {
			inv := &st.pend[k]
			if inv.obtainIdx < 0 {
				continue // acquire without obtain (truncated); skip
			}
			if inv.releaseIdx < 0 {
				inv.relT = p1.lastT
			}
			deliver(tid, inv)
		}
	}

	finalizeMetrics(an, sink, src.NumEvents())
	return nil
}
