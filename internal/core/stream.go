package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"slices"
	"sort"

	"critlock/internal/trace"
)

// SegmentSource is the streaming analyzer's view of a segmented trace
// (implemented by segment.Reader): the registration skeleton plus
// random access to whole decoded segments. Segments partition the
// canonically ordered event sequence into contiguous runs.
type SegmentSource interface {
	// Skeleton returns threads, objects and metadata with a nil event
	// slice.
	Skeleton() *trace.Trace
	// NumEvents is the total event count.
	NumEvents() int
	// NumSegments is the number of segments.
	NumSegments() int
	// SegmentBounds returns the global index of segment i's first
	// event and its event count.
	SegmentBounds(i int) (first, count int)
	// LoadSegment decodes segment i into buf, reusing its capacity.
	LoadSegment(i int, buf []trace.Event) ([]trace.Event, error)
}

// StreamOptions tunes AnalyzeStream.
//
// Options.Validate is not consulted by the streaming pipeline:
// whole-trace validation would defeat the memory bound, and the
// streaming passes already enforce the invariants the analysis depends
// on (canonical ordering and checksums in the segment reader, thread
// ranges and acquire/obtain/release pairing in the passes).
//
// Deprecated: StreamOptions is the unified Config under its historical
// name; new code should build a Config and call AnalyzeSource with a
// StreamSource.
type StreamOptions = Config

// DefaultCacheSegments is the default backward-walk window.
const DefaultCacheSegments = 4

// DefaultStreamOptions returns the recommended streaming options.
func DefaultStreamOptions() StreamOptions {
	return StreamOptions{Options: Options{ClipHold: true}}
}

// AnalyzeStream runs critical lock analysis over a segmented trace in
// bounded memory. The result is bit-identical to Analyze on the same
// events (Analysis.Trace holds the skeleton rather than the events,
// and holdsByThread is only populated with opts.Composition).
//
// Three passes, per the paper's structure:
//
//  1. forward over segments — waker resolution (§IV.B) written as a
//     fixed-size annotation record per event to a temp file, plus the
//     incremental per-thread lifecycle state;
//  2. backward — the critical-path walk of Fig. 2 over segments loaded
//     window-by-window in reverse through an LRU cache;
//  3. forward again — TYPE 1/TYPE 2 metric accumulation, streaming
//     invocations per thread in acquire order against the walked path.
func AnalyzeStream(src SegmentSource, opts StreamOptions) (*Analysis, error) {
	return NewAnalyzer().AnalyzeStream(src, opts)
}

// AnalyzeStream is the Analyzer form of the package-level
// AnalyzeStream. The streaming passes keep no event-count-sized state,
// so unlike Analyze there is no retained storage to reuse; the method
// exists so pipelines can drive both modes through one Analyzer.
func (a *Analyzer) AnalyzeStream(src SegmentSource, opts StreamOptions) (*Analysis, error) {
	return a.analyzeStream(src, opts)
}

// analyzeStream is the bounded-memory pipeline behind StreamSource:
// pass1 (waker annotation) → walk → pass3 (metrics), with per-phase
// observation.
func (a *Analyzer) analyzeStream(src SegmentSource, cfg Config) (*Analysis, error) {
	n := src.NumEvents()
	if n == 0 {
		return nil, trace.ErrEmptyTrace
	}
	if n > math.MaxInt32-1 {
		return nil, fmt.Errorf("core: trace has %d events, beyond the streaming index range", n)
	}
	if cfg.CacheSegments <= 0 {
		cfg.CacheSegments = DefaultCacheSegments
	}
	skel := src.Skeleton()
	h := newObsHook(cfg.Observer, n)

	ann, err := newAnnFile(cfg.TmpDir, n)
	if err != nil {
		return nil, err
	}
	defer ann.remove()
	ann.hook = h

	start := h.phaseStart("pass1")
	p1, err := streamPass1(src, skel, ann, h)
	if err != nil {
		return nil, err
	}
	h.phaseDone("pass1", start, int64(n))

	start = h.phaseStart("walk")
	loader := newSegLoader(src, ann, cfg.CacheSegments)
	loader.hook = h
	cp, err := streamWalk(loader, p1, n)
	if err != nil {
		return nil, err
	}
	h.phaseDone("walk", start, -1)

	start = h.phaseStart("pass3")
	an := &Analysis{Trace: skel, CP: *cp}
	if err := streamPass3(src, skel, ann, p1, an, cfg, h); err != nil {
		return nil, err
	}
	h.phaseDone("pass3", start, int64(n))
	return an, nil
}

// Annotation records: one fixed-size record per event in a temp file,
// the streaming stand-in for the index's posInThread/waker/blocked
// arrays. 9 bytes: prev (int32 LE, previous event on the same thread
// or -1), waker (int32 LE or -1), flags (bit 0 = blocked).
const annRecSize = 9

const annBlocked = 1 << 0

type annRec struct {
	prev  int32
	waker int32
	flags byte
}

func putAnnRec(dst []byte, r annRec) {
	binary.LittleEndian.PutUint32(dst[0:4], uint32(r.prev))
	binary.LittleEndian.PutUint32(dst[4:8], uint32(r.waker))
	dst[8] = r.flags
}

func getAnnRec(src []byte) annRec {
	return annRec{
		prev:  int32(binary.LittleEndian.Uint32(src[0:4])),
		waker: int32(binary.LittleEndian.Uint32(src[4:8])),
		flags: src[8],
	}
}

// annFile is the annotation spill file: sequential buffered writes
// during pass 1, point patches once deferred wakers resolve, random
// chunk reads during passes 2 and 3.
type annFile struct {
	f    *os.File
	buf  []byte
	off  int64    // file offset of buf[0]
	hook *obsHook // spill-byte accounting (nil = none)
}

func newAnnFile(dir string, n int) (*annFile, error) {
	f, err := os.CreateTemp(dir, "cla-ann-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("core: creating annotation file: %w", err)
	}
	bufRecs := 1 << 16
	if n < bufRecs {
		bufRecs = n
	}
	return &annFile{f: f, buf: make([]byte, 0, bufRecs*annRecSize)}, nil
}

func (a *annFile) append(r annRec) error {
	if len(a.buf) == cap(a.buf) {
		if err := a.flush(); err != nil {
			return err
		}
	}
	a.buf = a.buf[:len(a.buf)+annRecSize]
	putAnnRec(a.buf[len(a.buf)-annRecSize:], r)
	return nil
}

func (a *annFile) flush() error {
	if len(a.buf) == 0 {
		return nil
	}
	if _, err := a.f.WriteAt(a.buf, a.off); err != nil {
		return fmt.Errorf("core: writing annotations: %w", err)
	}
	// Patches later rewrite these bytes in place, so flushed bytes are
	// exactly the file's growth.
	a.hook.spilled(int64(len(a.buf)))
	a.off += int64(len(a.buf))
	a.buf = a.buf[:0]
	return nil
}

// patch overwrites the waker and flags of record idx. Only valid after
// flush (pass 1 applies all patches at its end).
func (a *annFile) patch(idx int32, waker int32, flags byte) error {
	var b [5]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(waker))
	b[4] = flags
	if _, err := a.f.WriteAt(b[:], int64(idx)*annRecSize+4); err != nil {
		return fmt.Errorf("core: patching annotation %d: %w", idx, err)
	}
	return nil
}

// readRange reads the records [first, first+count) into buf.
func (a *annFile) readRange(first, count int, buf []byte) ([]byte, error) {
	need := count * annRecSize
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if _, err := a.f.ReadAt(buf, int64(first)*annRecSize); err != nil {
		return nil, fmt.Errorf("core: reading annotations: %w", err)
	}
	return buf, nil
}

func (a *annFile) remove() {
	name := a.f.Name()
	a.f.Close()
	os.Remove(name)
}

// pass1Result carries the O(threads) lifecycle state pass 1 derives.
type pass1Result struct {
	firstT, lastT trace.Time
	startIdx      []int32
	startT        []trace.Time
	exitIdx       []int32
	exitT         []trace.Time
	exitSeq       []uint64
}

// barEpisode tracks one barrier episode until its wakers resolve.
type barEpisode struct {
	lastArrive       int32
	lastArriveThread trace.ThreadID
	arrives          int
	departs          int
	// pending are blocked departs seen before the episode completed
	// (with equal timestamps a depart can sort before the last
	// arrive, exactly why the in-memory pass defers them too).
	pending []pendingDepart
}

// barStream is the per-barrier streaming state: live episodes plus the
// per-thread FIFO pairing each thread's k-th arrive with its k-th
// depart. Completed, fully departed episodes are pruned, so memory is
// O(open episodes), not O(trace).
type barStream struct {
	parties  int
	arrivals int
	episodes map[int]*barEpisode
	arriveEp map[trace.ThreadID]*intQueue
}

// intQueue is a FIFO of ints with amortized O(1) pops.
type intQueue struct {
	vals []int
	head int
}

func (q *intQueue) push(v int) { q.vals = append(q.vals, v) }

func (q *intQueue) pop() (int, bool) {
	if q.head >= len(q.vals) {
		return 0, false
	}
	v := q.vals[q.head]
	q.head++
	if q.head == len(q.vals) {
		q.vals, q.head = q.vals[:0], 0
	} else if q.head > 64 && q.head*2 >= len(q.vals) {
		q.vals = q.vals[:copy(q.vals, q.vals[q.head:])]
		q.head = 0
	}
	return v, true
}

// condStream mirrors the in-memory per-cond state: FIFO of blocked
// waiters plus resolved wakers.
type condStream struct {
	waiting []trace.ThreadID
	wakerOf map[trace.ThreadID]int32
}

// streamPass1 is the forward waker-resolution pass: one annotation
// record per event, deferred resolutions applied as patches. Its
// working set is O(threads + objects + open barrier episodes + waiting
// cond threads) — independent of trace length.
func streamPass1(src SegmentSource, skel *trace.Trace, ann *annFile, h *obsHook) (*pass1Result, error) {
	nThreads := len(skel.Threads)
	p1 := &pass1Result{
		startIdx: make([]int32, nThreads),
		startT:   make([]trace.Time, nThreads),
		exitIdx:  make([]int32, nThreads),
		exitT:    make([]trace.Time, nThreads),
		exitSeq:  make([]uint64, nThreads),
	}
	lastOfThread := make([]int32, nThreads)
	createIdx := make([]int32, nThreads)
	pendingStart := make([]int32, nThreads)
	joinBeginT := make([]trace.Time, nThreads)
	for tid := 0; tid < nThreads; tid++ {
		p1.startIdx[tid] = -1
		p1.exitIdx[tid] = -1
		lastOfThread[tid] = -1
		createIdx[tid] = -1
		pendingStart[tid] = -1
	}
	lastRelease := make([]int32, len(skel.Objects))
	for i := range lastRelease {
		lastRelease[i] = -1
	}
	barriers := map[trace.ObjID]*barStream{}
	barOf := func(o trace.ObjID) *barStream {
		bs := barriers[o]
		if bs == nil {
			bs = &barStream{
				parties:  skel.Object(o).Parties,
				episodes: map[int]*barEpisode{},
				arriveEp: map[trace.ThreadID]*intQueue{},
			}
			barriers[o] = bs
		}
		return bs
	}
	conds := map[trace.ObjID]*condStream{}
	condOf := func(o trace.ObjID) *condStream {
		cs := conds[o]
		if cs == nil {
			cs = &condStream{wakerOf: map[trace.ThreadID]int32{}}
			conds[o] = cs
		}
		return cs
	}
	// Channel waker pairing: the same chanPairing the in-memory index
	// uses, with O(outstanding operations) state. Wakers precede their
	// blocked completions in the trace, so no patches arise.
	chans := map[trace.ObjID]*chanPairing{}
	chanOf := func(o trace.ObjID) *chanPairing {
		cs := chans[o]
		if cs == nil {
			cs = newChanPairing(skel.Object(o).Parties)
			chans[o] = cs
		}
		return cs
	}
	type patch struct {
		idx   int32
		waker int32
	}
	var patches []patch

	var buf []trace.Event
	i := int32(0)
	for s := 0; s < src.NumSegments(); s++ {
		var err error
		buf, err = src.LoadSegment(s, buf)
		if err != nil {
			return nil, err
		}
		for k := range buf {
			e := &buf[k]
			if e.Thread < 0 || int(e.Thread) >= nThreads {
				return nil, fmt.Errorf("core: event %d references thread %d out of range", i, e.Thread)
			}
			if i == 0 {
				p1.firstT = e.T
			}
			p1.lastT = e.T
			rec := annRec{prev: lastOfThread[e.Thread], waker: -1}
			lastOfThread[e.Thread] = i

			switch e.Kind {
			case trace.EvThreadStart:
				p1.startIdx[e.Thread] = i
				p1.startT[e.Thread] = e.T
				if c := createIdx[e.Thread]; c >= 0 {
					rec.flags |= annBlocked
					rec.waker = c
				} else {
					pendingStart[e.Thread] = i
				}

			case trace.EvThreadExit:
				p1.exitIdx[e.Thread] = i
				p1.exitT[e.Thread] = e.T
				p1.exitSeq[e.Thread] = e.Seq

			case trace.EvThreadCreate:
				child := trace.ThreadID(e.Arg)
				if int(child) >= 0 && int(child) < nThreads && createIdx[child] == -1 {
					createIdx[child] = i
					if ps := pendingStart[child]; ps >= 0 {
						patches = append(patches, patch{idx: ps, waker: i})
						pendingStart[child] = -1
					}
				}

			case trace.EvLockObtain:
				if e.Contended() {
					rec.flags |= annBlocked
					if e.Obj >= 0 && int(e.Obj) < len(lastRelease) {
						rec.waker = lastRelease[e.Obj]
					}
				}

			case trace.EvLockRelease:
				if e.Obj >= 0 && int(e.Obj) < len(lastRelease) {
					lastRelease[e.Obj] = i
				}

			case trace.EvBarrierArrive:
				bs := barOf(e.Obj)
				ep := 0
				if bs.parties > 0 {
					ep = bs.arrivals / bs.parties
				}
				bs.arrivals++
				epi := bs.episodes[ep]
				if epi == nil {
					epi = &barEpisode{}
					bs.episodes[ep] = epi
				}
				epi.lastArrive = i
				epi.lastArriveThread = e.Thread
				epi.arrives++
				q := bs.arriveEp[e.Thread]
				if q == nil {
					q = &intQueue{}
					bs.arriveEp[e.Thread] = q
				}
				q.push(ep)
				if bs.parties > 0 && epi.arrives == bs.parties {
					// Episode complete: its last arrive is final, so
					// deferred departs resolve now.
					for _, d := range epi.pending {
						if epi.lastArriveThread != d.thread {
							patches = append(patches, patch{idx: d.idx, waker: epi.lastArrive})
						}
					}
					epi.pending = nil
					if epi.departs >= bs.parties {
						delete(bs.episodes, ep)
					}
				}

			case trace.EvBarrierDepart:
				bs := barOf(e.Obj)
				var epi *barEpisode
				ep := -1
				if q := bs.arriveEp[e.Thread]; q != nil {
					if v, ok := q.pop(); ok {
						ep = v
						epi = bs.episodes[ep]
					}
				}
				if epi != nil {
					epi.departs++
				}
				if e.Arg == 0 && epi != nil {
					rec.flags |= annBlocked
					if bs.parties > 0 && epi.arrives >= bs.parties {
						if epi.lastArriveThread != e.Thread {
							rec.waker = epi.lastArrive
						}
					} else {
						epi.pending = append(epi.pending, pendingDepart{idx: i, obj: e.Obj, thread: e.Thread, episode: ep})
					}
				}
				if epi != nil && bs.parties > 0 && epi.arrives >= bs.parties &&
					epi.departs >= bs.parties && len(epi.pending) == 0 {
					delete(bs.episodes, ep)
				}

			case trace.EvCondWaitBegin:
				cs := condOf(e.Obj)
				cs.waiting = append(cs.waiting, e.Thread)

			case trace.EvCondSignal:
				cs := condOf(e.Obj)
				if len(cs.waiting) > 0 {
					cs.wakerOf[cs.waiting[0]] = i
					cs.waiting = cs.waiting[1:]
				}

			case trace.EvCondBroadcast:
				cs := condOf(e.Obj)
				for _, th := range cs.waiting {
					cs.wakerOf[th] = i
				}
				cs.waiting = cs.waiting[:0]

			case trace.EvCondWaitEnd:
				cs := condOf(e.Obj)
				rec.flags |= annBlocked
				if w, ok := cs.wakerOf[e.Thread]; ok {
					rec.waker = w
					delete(cs.wakerOf, e.Thread)
				} else {
					// Spurious wakeup or unmatched signal: drop from
					// the waiting queue, leave the waker unknown.
					for j, th := range cs.waiting {
						if th == e.Thread {
							cs.waiting = append(cs.waiting[:j], cs.waiting[j+1:]...)
							break
						}
					}
				}

			case trace.EvChanSend:
				blocked := e.Arg&trace.ChanArgBlocked != 0
				w := chanOf(e.Obj).send(i, blocked)
				if blocked {
					rec.flags |= annBlocked
					rec.waker = w
				}

			case trace.EvChanRecv:
				blocked := e.Arg&trace.ChanArgBlocked != 0
				w := chanOf(e.Obj).recv(i, blocked, e.Arg&trace.ChanArgClosed != 0)
				if blocked {
					rec.flags |= annBlocked
					rec.waker = w
				}

			case trace.EvChanClose:
				chanOf(e.Obj).close(i)

			case trace.EvJoinBegin:
				joinBeginT[e.Thread] = e.T

			case trace.EvJoinEnd:
				target := trace.ThreadID(e.Arg)
				if int(target) >= 0 && int(target) < nThreads && p1.exitIdx[target] >= 0 &&
					p1.exitT[target] > joinBeginT[e.Thread] {
					rec.flags |= annBlocked
					rec.waker = p1.exitIdx[target]
				}
			}

			if err := ann.append(rec); err != nil {
				return nil, err
			}
			i++
		}
		h.scanned(len(buf))
	}
	if err := ann.flush(); err != nil {
		return nil, err
	}

	// End-of-trace resolution for barrier episodes that never
	// completed (truncated traces, zero-party barriers): their last
	// arrive so far is the waker, as in the in-memory post-pass.
	for _, bs := range barriers {
		for _, epi := range bs.episodes {
			for _, d := range epi.pending {
				if epi.lastArriveThread != d.thread {
					patches = append(patches, patch{idx: d.idx, waker: epi.lastArrive})
				}
			}
		}
	}
	for _, p := range patches {
		if err := ann.patch(p.idx, p.waker, annBlocked); err != nil {
			return nil, err
		}
	}
	return p1, nil
}

// segLoader serves random event/annotation lookups for the backward
// walk from an LRU cache of decoded segments.
type segLoader struct {
	src    SegmentSource
	ann    *annFile
	firsts []int // global index of each segment's first event
	total  int
	cache  map[int]*segWindow
	lru    []int // segment ids, least recent first
	max    int
	hook   *obsHook // cache-miss load accounting (nil = none)
}

type segWindow struct {
	first  int
	events []trace.Event
	ann    []byte
}

func newSegLoader(src SegmentSource, ann *annFile, cacheSegments int) *segLoader {
	n := src.NumSegments()
	l := &segLoader{
		src:    src,
		ann:    ann,
		firsts: make([]int, n),
		cache:  map[int]*segWindow{},
		max:    cacheSegments,
	}
	for i := 0; i < n; i++ {
		first, count := src.SegmentBounds(i)
		l.firsts[i] = first
		l.total = first + count
	}
	return l
}

// window returns the cached window containing global event index i,
// loading (and evicting) as needed.
func (l *segLoader) window(i int32) (*segWindow, error) {
	seg := sort.SearchInts(l.firsts, int(i)+1) - 1
	if w := l.cache[seg]; w != nil {
		// Refresh LRU position.
		for k, s := range l.lru {
			if s == seg {
				copy(l.lru[k:], l.lru[k+1:])
				l.lru[len(l.lru)-1] = seg
				break
			}
		}
		return w, nil
	}
	var reuse *segWindow
	if len(l.lru) >= l.max {
		victim := l.lru[0]
		copy(l.lru, l.lru[1:])
		l.lru = l.lru[:len(l.lru)-1]
		reuse = l.cache[victim]
		delete(l.cache, victim)
	} else {
		reuse = &segWindow{}
	}
	first, count := l.src.SegmentBounds(seg)
	events, err := l.src.LoadSegment(seg, reuse.events)
	if err != nil {
		return nil, err
	}
	ann, err := l.ann.readRange(first, count, reuse.ann)
	if err != nil {
		return nil, err
	}
	w := &segWindow{first: first, events: events, ann: ann}
	l.cache[seg] = w
	l.lru = append(l.lru, seg)
	l.hook.scanned(len(events))
	return w, nil
}

func (l *segLoader) eventAt(i int32) (trace.Event, error) {
	w, err := l.window(i)
	if err != nil {
		return trace.Event{}, err
	}
	return w.events[int(i)-w.first], nil
}

func (l *segLoader) annAt(i int32) (annRec, error) {
	w, err := l.window(i)
	if err != nil {
		return annRec{}, err
	}
	off := (int(i) - w.first) * annRecSize
	return getAnnRec(w.ann[off : off+annRecSize]), nil
}

// streamWalk is the backward critical-path walk (paper Fig. 2) over
// windowed segments. It mirrors walk() step for step — anchor choice,
// the condition-wait re-acquisition special case, piece emission — but
// reads events and waker edges through the loader instead of in-memory
// arrays. The differential oracle in the test suite holds the two
// implementations identical.
func streamWalk(l *segLoader, p1 *pass1Result, n int) (*CriticalPath, error) {
	// Anchor: the exit event of the last-finishing thread; fall back
	// to the globally last event for truncated traces.
	anchor := int32(-1)
	var anchorT trace.Time
	var anchorSeq uint64
	for tid := range p1.exitIdx {
		ei := p1.exitIdx[tid]
		if ei < 0 {
			continue
		}
		if anchor < 0 || p1.exitT[tid] > anchorT ||
			(p1.exitT[tid] == anchorT && p1.exitSeq[tid] > anchorSeq) {
			anchor, anchorT, anchorSeq = ei, p1.exitT[tid], p1.exitSeq[tid]
		}
	}
	if anchor < 0 {
		anchor = int32(n - 1)
	}

	anchorEv, err := l.eventAt(anchor)
	if err != nil {
		return nil, err
	}
	cp := &CriticalPath{
		LastThread: anchorEv.Thread,
		WallTime:   p1.lastT - p1.firstT,
		Pieces:     make([]Piece, 0, n/3+8),
	}

	cur := anchor
	maxSteps := 2*n + 2
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("core: critical-path walk did not terminate after %d steps", steps)
		}
		cp.Steps = steps
		e, err := l.eventAt(cur)
		if err != nil {
			return nil, err
		}
		rec, err := l.annAt(cur)
		if err != nil {
			return nil, err
		}

		if e.Kind == trace.EvThreadStart {
			if rec.waker < 0 {
				break // root thread's start: the program's beginning
			}
			we, err := l.eventAt(rec.waker)
			if err != nil {
				return nil, err
			}
			cp.Jumps++
			cp.JumpLog = append(cp.JumpLog, Jump{
				T: e.T, From: e.Thread, To: we.Thread,
				Kind: JumpStart, Obj: trace.NoObj,
			})
			cur = rec.waker
			continue
		}

		prev := rec.prev
		if prev < 0 {
			break // malformed thread without a start event
		}

		if rec.flags&annBlocked != 0 && rec.waker >= 0 {
			we, err := l.eventAt(rec.waker)
			if err != nil {
				return nil, err
			}
			// A condition wait that had to re-acquire a contended
			// mutex has two dependencies: the signaller and the
			// previous mutex holder. The binding one is whichever
			// released the thread last; when that is the mutex (its
			// obtain directly precedes the wait-end, at or after the
			// signal), step back so the obtain's own jump routes the
			// path through the releaser without losing time.
			if e.Kind == trace.EvCondWaitEnd {
				pe, err := l.eventAt(prev)
				if err != nil {
					return nil, err
				}
				prec, err := l.annAt(prev)
				if err != nil {
					return nil, err
				}
				if pe.Kind == trace.EvLockObtain && prec.flags&annBlocked != 0 && prec.waker >= 0 &&
					pe.T >= we.T {
					cur = prev
					continue
				}
			}
			pe, err := l.eventAt(prev)
			if err != nil {
				return nil, err
			}
			cp.Jumps++
			cp.JumpLog = append(cp.JumpLog, Jump{
				T: e.T, From: e.Thread, To: we.Thread,
				Kind: jumpKindOf(e.Kind), Obj: e.Obj,
				Wait: e.T - pe.T,
			})
			cur = rec.waker
			continue
		}

		pe, err := l.eventAt(prev)
		if err != nil {
			return nil, err
		}
		from, to := pe.T, e.T
		if to > from {
			kind := PieceExec
			if rec.flags&annBlocked != 0 {
				// Blocked but waker unknown: the wait itself sits on
				// the critical path.
				kind = PieceWait
			}
			cp.Pieces = append(cp.Pieces, Piece{Thread: e.Thread, From: from, To: to, Kind: kind})
		}
		cur = prev
	}

	// Pieces and jumps were generated back-to-front; reverse into
	// forward order.
	for i, j := 0, len(cp.Pieces)-1; i < j; i, j = i+1, j-1 {
		cp.Pieces[i], cp.Pieces[j] = cp.Pieces[j], cp.Pieces[i]
	}
	for i, j := 0, len(cp.JumpLog)-1; i < j; i, j = i+1, j-1 {
		cp.JumpLog[i], cp.JumpLog[j] = cp.JumpLog[j], cp.JumpLog[i]
	}
	for _, p := range cp.Pieces {
		cp.Length += p.Dur()
		switch p.Kind {
		case PieceExec:
			cp.ExecTime += p.Dur()
		case PieceWait:
			cp.WaitTime += p.Dur()
		}
	}
	return cp, nil
}

// streamThread is pass 3's per-thread state: the previous event's
// timestamp, matched cond-wait begins, the FIFO of in-flight lock
// invocations (acquire order) and the thread's critical-path clip
// cursor. Everything is O(in-flight), not O(history).
type streamThread struct {
	seen      bool
	prevT     trace.Time
	condBegin map[trace.ObjID]trace.Time
	pend      []invocation
	head      int
	base      int                 // absolute queue position of pend[0]
	open      map[trace.ObjID]int // lock → absolute queue position
	pieces    []Piece
	cursor    int
}

// push appends an in-flight invocation, returning its absolute
// position.
func (st *streamThread) push(inv invocation) int {
	st.pend = append(st.pend, inv)
	return st.base + len(st.pend) - 1
}

// at returns the invocation at absolute position pos.
func (st *streamThread) at(pos int) *invocation { return &st.pend[pos-st.base] }

// compact reclaims delivered queue space once it dominates.
func (st *streamThread) compact() {
	if st.head == len(st.pend) {
		st.base += st.head
		st.pend, st.head = st.pend[:0], 0
	} else if st.head > 64 && st.head*2 >= len(st.pend) {
		st.base += st.head
		st.pend = st.pend[:copy(st.pend, st.pend[st.head:])]
		st.head = 0
	}
}

// streamPass3 is the forward metric pass: per-thread blocking-time
// accounting and per-lock accumulation, delivering each thread's
// invocations in acquire order (identical to the in-memory
// invsByThread order) as their critical sections close.
func streamPass3(src SegmentSource, skel *trace.Trace, ann *annFile, p1 *pass1Result, an *Analysis, cfg Config, h *obsHook) error {
	nThreads := len(skel.Threads)

	an.Threads = make([]ThreadStats, nThreads)
	for tid := 0; tid < nThreads; tid++ {
		ts := &an.Threads[tid]
		ts.Thread = trace.ThreadID(tid)
		ts.Name = skel.Threads[tid].Name
		if p1.startIdx[tid] >= 0 {
			ts.Start = p1.startT[tid]
		}
		if p1.exitIdx[tid] >= 0 {
			ts.End = p1.exitT[tid]
		} else {
			ts.End = p1.lastT
		}
		ts.Lifetime = ts.End - ts.Start
	}

	// Critical-path pieces per thread, sorted by time for clipping —
	// the same construction and sort the in-memory pass uses, so tie
	// orders match exactly.
	threads := make([]streamThread, nThreads)
	for _, p := range an.CP.Pieces {
		threads[p.Thread].pieces = append(threads[p.Thread].pieces, p)
		an.Threads[p.Thread].TimeOnCP += p.Dur()
	}
	for tid := range threads {
		slices.SortFunc(threads[tid].pieces, func(a, b Piece) int {
			switch {
			case a.From < b.From:
				return -1
			case a.From > b.From:
				return 1
			}
			return 0
		})
	}

	an.hotByLock = map[trace.ObjID][]interval{}
	if cfg.Composition {
		an.holdsByThread = make([][]interval, nThreads)
	}
	sink := newLockSink(nThreads)

	deliver := func(tid int, inv *invocation) {
		if cfg.Composition {
			an.holdsByThread[tid] = append(an.holdsByThread[tid], interval{inv.obtT, inv.relT})
		}
		st := &threads[tid]
		accumulateInvocation(sink, &an.Threads[tid], inv, skel.ObjName(inv.lock), cfg.Options, st.pieces, &st.cursor)
	}

	var buf []trace.Event
	var annBuf []byte
	i := int32(0)
	for s := 0; s < src.NumSegments(); s++ {
		first, count := src.SegmentBounds(s)
		var err error
		buf, err = src.LoadSegment(s, buf)
		if err != nil {
			return err
		}
		annBuf, err = ann.readRange(first, count, annBuf)
		if err != nil {
			return err
		}
		for k := range buf {
			e := &buf[k]
			tid := int(e.Thread)
			st := &threads[tid]

			// Blocking-time accounting skips each thread's first event
			// (as the in-memory pass does: there is no preceding
			// interval to account).
			if st.seen {
				ts := &an.Threads[tid]
				switch e.Kind {
				case trace.EvBarrierDepart:
					if e.Arg == 0 {
						ts.BarrierWait += e.T - st.prevT
					}
				case trace.EvCondWaitBegin:
					if st.condBegin == nil {
						st.condBegin = map[trace.ObjID]trace.Time{}
					}
					st.condBegin[e.Obj] = e.T
				case trace.EvCondWaitEnd:
					if begin, ok := st.condBegin[e.Obj]; ok {
						ts.CondWait += e.T - begin
						delete(st.condBegin, e.Obj)
					}
				case trace.EvChanSend:
					cs := sink.chanOf(e.Obj, skel.ObjName(e.Obj))
					cs.Sends++
					if e.Arg&trace.ChanArgBlocked != 0 {
						w := e.T - st.prevT
						cs.BlockedSends++
						cs.SendWait += w
						if w > cs.MaxWait {
							cs.MaxWait = w
						}
						ts.ChanWait += w
					}
				case trace.EvChanRecv:
					cs := sink.chanOf(e.Obj, skel.ObjName(e.Obj))
					cs.Recvs++
					if e.Arg&trace.ChanArgBlocked != 0 {
						w := e.T - st.prevT
						cs.BlockedRecvs++
						cs.RecvWait += w
						if w > cs.MaxWait {
							cs.MaxWait = w
						}
						ts.ChanWait += w
					}
				case trace.EvChanClose:
					sink.chanOf(e.Obj, skel.ObjName(e.Obj)).Closes++
				case trace.EvJoinEnd:
					rec := getAnnRec(annBuf[k*annRecSize : k*annRecSize+annRecSize])
					if rec.flags&annBlocked != 0 {
						ts.JoinWait += e.T - st.prevT
					}
				}
			} else {
				st.seen = true
			}
			st.prevT = e.T

			switch e.Kind {
			case trace.EvLockAcquire:
				pos := st.push(invocation{
					lock: e.Obj, thread: e.Thread,
					acquireIdx: i, obtainIdx: -1, releaseIdx: -1,
					acqT: e.T,
				})
				if st.open == nil {
					st.open = map[trace.ObjID]int{}
				}
				st.open[e.Obj] = pos

			case trace.EvLockObtain:
				pos, ok := st.open[e.Obj]
				if !ok {
					return fmt.Errorf("core: event %d: obtain of %q without acquire", i, skel.ObjName(e.Obj))
				}
				inv := st.at(pos)
				inv.obtainIdx = i
				inv.obtT = e.T
				inv.contended = e.Contended()
				inv.shared = e.Shared()

			case trace.EvLockRelease:
				pos, ok := st.open[e.Obj]
				if !ok {
					return fmt.Errorf("core: event %d: release of %q without hold", i, skel.ObjName(e.Obj))
				}
				inv := st.at(pos)
				inv.releaseIdx = i
				inv.relT = e.T
				delete(st.open, e.Obj)
				// Deliver the closed prefix of the queue — acquire
				// order, matching the in-memory pass.
				for st.head < len(st.pend) && st.pend[st.head].releaseIdx >= 0 {
					if st.pend[st.head].obtainIdx >= 0 {
						deliver(tid, &st.pend[st.head])
					}
					st.head++
				}
				st.compact()
			}
			i++
		}
		h.scanned(len(buf))
	}

	// End of trace: invocations still open get the trace's end as
	// their release (as the in-memory pass does), then deliver the
	// rest of every queue in acquire order.
	for tid := range threads {
		st := &threads[tid]
		for k := st.head; k < len(st.pend); k++ {
			inv := &st.pend[k]
			if inv.obtainIdx < 0 {
				continue // acquire without obtain (truncated); skip
			}
			if inv.releaseIdx < 0 {
				inv.relT = p1.lastT
			}
			deliver(tid, inv)
		}
	}

	finalizeMetrics(an, sink, src.NumEvents())
	return nil
}
