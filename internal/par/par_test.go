package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		var hits [100]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

func TestChunksPartition(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 16} {
		n := 23
		var hits [23]atomic.Int32
		seen := make([]atomic.Int32, 16)
		Chunks(n, workers, func(chunk, lo, hi int) {
			if lo >= hi {
				t.Errorf("workers=%d: empty chunk [%d,%d)", workers, lo, hi)
			}
			if chunk < 0 || chunk >= 16 || seen[chunk].Add(1) != 1 {
				t.Errorf("workers=%d: bad or repeated chunk index %d", workers, chunk)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d covered %d times", workers, i, got)
			}
		}
	}
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	if FirstError([]error{nil, nil}) != nil {
		t.Error("nil errs")
	}
	if FirstError([]error{nil, e1, e2}) != e1 {
		t.Error("want first error in item order")
	}
}
