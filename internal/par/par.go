// Package par provides the tiny bounded-parallelism primitives the
// analysis pipeline shares: a parallel for over indexed work items and
// a chunked variant for workers that carry per-worker state. Both are
// deterministic in the sense that callers index results by item, so
// output order never depends on completion order.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers
// goroutines. Work items are handed out dynamically (an atomic
// counter), so uneven item costs still balance. workers <= 1 runs
// inline with zero goroutine overhead. fn must be safe for concurrent
// invocation with distinct i.
func ForEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks splits [0, n) into at most workers contiguous ranges and runs
// fn(chunk, lo, hi) for each range on its own goroutine (inline when a
// single chunk suffices); chunk is the dense range index, 0 <= chunk <
// min(workers, n). Each fn call owns its range exclusively, so workers
// can keep per-chunk state (indexed by chunk) without synchronization
// and merge it after Chunks returns. The split is deterministic:
// ranges are assigned in order and differ in size by at most one item.
func Chunks(n, workers int, fn func(chunk, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := n / workers
		if w < n%workers {
			size++
		}
		hi := lo + size
		go func(chunk, lo, hi int) {
			defer wg.Done()
			fn(chunk, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// FirstError returns the first non-nil error in errs — the helper for
// fan-outs that collect one error per work item and must report
// deterministically (first in item order, not completion order).
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
