package workloads

import (
	"fmt"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// LDAP models the paper's OpenLDAP experiment (§V.C): a directory
// server handling 10k search requests from a load generator (SLAMD in
// the paper; a generator thread here). The server's locking is
// deliberately fine-grained, as the paper found after a decade of
// tuning:
//
//   - connections_mutex + a condition variable hand requests from the
//     listener to the worker pool;
//   - per-bucket cache locks cache.c_lock[i] guard entry lookups with
//     tens-of-nanoseconds critical sections;
//   - slap_counters_mutex guards operation statistics.
//
// The expected (and reproduced) result is a negative one: no lock
// accumulates meaningful CP time, confirming the tool correctly
// reports the *absence* of critical section bottlenecks.
type ldapModel struct {
	p      Params
	connMu harness.Mutex
	connCv harness.Cond
	cache  []harness.Mutex
	stats  harness.Mutex

	// Guarded by connMu.
	pending []int64
	closed  bool

	parseWork  trace.Time
	encodeWork trace.Time
	cacheCS    trace.Time
	statsCS    trace.Time
	interArr   trace.Time
	requests   int
}

const (
	ldapParseWork  = 1400 // ns to decode a search request
	ldapEncodeWork = 900  // ns to encode the response
	ldapCacheCS    = 40   // ns inside a cache bucket lock
	ldapStatsCS    = 20   // ns inside the counters lock
	ldapInterArr   = 290  // ns between generated requests
	ldapRequests   = 1500 // search operations (scaled-down 10k of the paper)
	ldapCacheWays  = 64
)

func newLDAP(rt harness.Runtime, p Params) *ldapModel {
	m := &ldapModel{
		p:          p,
		connMu:     rt.NewMutex("connections_mutex"),
		connCv:     rt.NewCond("new_conn_cond"),
		stats:      rt.NewMutex("slap_counters_mutex"),
		parseWork:  ldapParseWork,
		encodeWork: ldapEncodeWork,
		cacheCS:    scaled(p, ldapCacheCS),
		statsCS:    scaled(p, ldapStatsCS),
		interArr:   ldapInterArr,
		requests:   ldapRequests,
	}
	for i := 0; i < ldapCacheWays; i++ {
		m.cache = append(m.cache, rt.NewMutex(fmt.Sprintf("cache.c_lock[%d]", i)))
	}
	return m
}

func (m *ldapModel) worker(q harness.Proc, _ int) {
	for {
		q.Lock(m.connMu)
		for len(m.pending) == 0 && !m.closed {
			q.Wait(m.connCv, m.connMu)
		}
		if len(m.pending) == 0 && m.closed {
			q.Unlock(m.connMu)
			return
		}
		req := m.pending[0]
		m.pending = m.pending[1:]
		q.Unlock(m.connMu)

		// Decode, look up in the entry cache (reads share the bucket
		// lock; ~10% of operations update the entry and need it
		// exclusively), encode the response.
		q.Compute(jittered(q, m.p, m.parseWork))
		bucket := m.cache[int(req)%len(m.cache)]
		if q.Rand().Float64() < 0.1 {
			q.Lock(bucket)
			q.Compute(m.cacheCS * 2)
			q.Unlock(bucket)
		} else {
			q.RLock(bucket)
			q.Compute(m.cacheCS)
			q.RUnlock(bucket)
		}
		q.Compute(jittered(q, m.p, m.encodeWork))

		q.Lock(m.stats)
		q.Compute(m.statsCS)
		q.Unlock(m.stats)
	}
}

func buildLDAP(rt harness.Runtime, p Params) func(harness.Proc) {
	m := newLDAP(rt, p)
	return func(main harness.Proc) {
		kids := make([]harness.Thread, 0, p.Threads)
		for i := 0; i < p.Threads; i++ {
			i := i
			kids = append(kids, main.Go(fmt.Sprintf("slapd-%d", i), func(q harness.Proc) {
				m.worker(q, i)
			}))
		}
		// The load generator (SLAMD's role).
		for r := 0; r < m.requests; r++ {
			main.Compute(jittered(main, m.p, m.interArr))
			main.Lock(m.connMu)
			m.pending = append(m.pending, int64(main.Rand().Intn(1<<16)))
			main.Signal(m.connCv)
			main.Unlock(m.connMu)
		}
		main.Lock(m.connMu)
		m.closed = true
		main.Broadcast(m.connCv)
		main.Unlock(m.connMu)
		for _, k := range kids {
			main.Join(k)
		}
	}
}

func init() {
	register(Spec{
		Name:           "ldap",
		Desc:           "directory server with fine-grained locking under a request generator",
		Paper:          "§V.C / Fig. 8: no significant critical section bottleneck",
		DefaultThreads: 16,
		Build:          buildLDAP,
	})
}
