package workloads

import (
	"fmt"

	"critlock/internal/harness"
	"critlock/internal/queue"
	"critlock/internal/trace"
)

// Radiosity models the SPLASH-2 radiosity application's lock
// structure (paper §V.D):
//
//   - per-thread task queues tq[i], each guarded by tq[i].qlock; tasks
//     are dequeued by the owner or stolen by other threads, and most
//     task production lands on tq[0] — so tq[0].qlock becomes a
//     convoy as the thread count grows, exactly the paper's finding;
//   - freeInter, one global lock protecting the free list of
//     interaction records, taken twice per task (allocate + free) with
//     a critical section comparable to a task's share of computation —
//     the dominant lock at low thread counts;
//   - pbar_lock, protecting the progress counters used for
//     termination, with a tiny critical section.
//
// Task processing computes "visibility interactions" (pure virtual
// compute with seeded jitter) and spawns child tasks up to a fixed
// refinement depth, biased toward tq[0] as the real program biases
// toward the master queue.
//
// Params.TwoLock replaces every tq[i].qlock with the two-lock
// Michael–Scott queue (tq[i].q_head_lock / tq[i].q_tail_lock),
// reproducing the paper's optimization (§V.D.3, Figs. 12–14).
type radiosityModel struct {
	p      Params
	queues []queue.TaskQueue
	free   harness.Mutex // freeInter
	pool   *workPool     // pbar_lock + task_available

	// Tunables (pre-scaled).
	taskWork   trace.Time
	freeCS     trace.Time
	queueCost  queue.CostModel
	seedsTotal int
	maxDepth   int
}

const (
	radTaskWork = 3400 // ns of visibility computation per task
	radFreeCS   = 48   // ns inside freeInter per alloc/free
	radEnqCS    = 130  // ns inside a queue lock per enqueue
	radDeqCS    = 150  // ns inside a queue lock per successful dequeue
	radMissCS   = 15   // ns inside a queue lock for an empty probe
	radPbarCS   = 10   // ns inside pbar_lock
	radSeeds    = 40   // initial tasks, all on tq[0]
	radMaxDepth = 5    // refinement depth (BF-style task spawning)
)

// masterBias is the probability a spawned task is published on the
// master queue tq[0] instead of the spawner's own queue. It grows with
// the thread count, modelling the redistribution/steal traffic of the
// real application: with more threads the fixed task tree spreads
// thinner, local queues run dry sooner, and ever more tasks flow
// through tq[0]. This is the mechanism behind the paper's Fig. 9
// crossover (freeInter dominates at 8 threads, tq[0].qlock from 16).
func masterBias(threads int) float64 {
	b := 0.03 + 0.022*float64(threads)
	if b > 0.8 {
		b = 0.8
	}
	return b
}

func newRadiosity(rt harness.Runtime, p Params) *radiosityModel {
	m := &radiosityModel{
		p:          p,
		free:       rt.NewMutex("freeInter"),
		pool:       newWorkPool(rt, "pbar_lock", "task_available", scaled(p, radPbarCS)),
		taskWork:   radTaskWork,
		freeCS:     scaled(p, radFreeCS),
		seedsTotal: radSeeds,
		maxDepth:   radMaxDepth,
	}
	m.queueCost = queue.CostModel{
		EnqueueCost: scaled(p, radEnqCS),
		DequeueCost: scaled(p, radDeqCS),
		MissCost:    scaled(p, radMissCS),
	}
	for i := 0; i < p.Threads; i++ {
		name := fmt.Sprintf("tq[%d]", i)
		if p.TwoLock {
			m.queues = append(m.queues, queue.NewTwoLock(rt, name, m.queueCost))
		} else {
			m.queues = append(m.queues, queue.NewSingleLock(rt, name, m.queueCost))
		}
	}
	return m
}

// fetch gets a task: own queue first, then the master queue tq[0],
// then a sweep over the remaining queues — the work-stealing order of
// the modelled application.
func (m *radiosityModel) fetch(q harness.Proc, self int) (int64, bool) {
	if v, ok := m.queues[self].TryDequeue(q); ok {
		return v, true
	}
	if self != 0 {
		if v, ok := m.queues[0].TryDequeue(q); ok {
			return v, true
		}
	}
	for d := 1; d < len(m.queues); d++ {
		victim := (self + d) % len(m.queues)
		if victim == 0 {
			continue
		}
		if v, ok := m.queues[victim].TryDequeue(q); ok {
			return v, true
		}
	}
	return 0, false
}

// process executes one task: allocate interactions from the free
// list, compute visibility, spawn refinements, release interactions.
func (m *radiosityModel) process(q harness.Proc, self int, task int64) {
	depth := int(task & 0xff)

	// Allocate interaction records.
	q.Lock(m.free)
	q.Compute(m.freeCS)
	q.Unlock(m.free)

	// Visibility computation.
	q.Compute(jittered(q, m.p, m.taskWork))

	// Spawn refinement tasks, biased toward the master queue. The
	// spawn credit precedes publication (one pbar_lock critical
	// section per task), so the outstanding count can never reach
	// zero while children are in flight.
	children := 0
	if depth < m.maxDepth {
		children = 1 + q.Rand().Intn(2) // 1–2 children, E=1.5
	}
	m.pool.complete(q, children)

	bias := masterBias(m.p.Threads)
	for c := 0; c < children; c++ {
		child := int64(depth + 1)
		target := self
		if q.Rand().Float64() < bias {
			target = 0
		}
		m.queues[target].Enqueue(q, child)
		m.pool.announce(q)
	}

	// Return interaction records to the free list.
	q.Lock(m.free)
	q.Compute(m.freeCS)
	q.Unlock(m.free)
}

func (m *radiosityModel) worker(q harness.Proc, self int) {
	for {
		task, ok := m.fetch(q, self)
		if ok {
			m.process(q, self, task)
			continue
		}
		if m.pool.idle(q) {
			return
		}
	}
}

func buildRadiosity(rt harness.Runtime, p Params) func(harness.Proc) {
	m := newRadiosity(rt, p)
	return func(main harness.Proc) {
		m.pool.seed(main, m.seedsTotal)
		for i := 0; i < m.seedsTotal; i++ {
			m.queues[i%len(m.queues)].Enqueue(main, 0)
		}
		spawnWorkers(main, p.Threads, "rad", m.worker)
	}
}

func init() {
	register(Spec{
		Name:            "radiosity",
		Desc:            "task-queue global illumination: tq[i].qlock, freeInter, pbar_lock",
		Paper:           "§V.D, Figs. 8–14: the main case study",
		DefaultThreads:  24,
		SupportsTwoLock: true,
		Build:           buildRadiosity,
	})
}
