package workloads

import (
	"fmt"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// fanin models a select-driven aggregator: each producer owns a
// capacity-1 channel, sends a fixed number of items into it and closes
// it; a single aggregator thread selects across all the source
// channels, consuming items as they arrive and retiring each arm when
// its channel reports closed.
//
// Unlike pipeline, the bottleneck is the consumer: producers park on
// their full source channels waiting for the aggregator's selects to
// free the slot, so blocked time spreads across the sources and the
// critical path alternates between the aggregator and whichever
// producer it admits.
func init() {
	register(Spec{
		Name:           "fanin",
		Desc:           "producers with private capacity-1 channels drained by one select-based aggregator",
		Paper:          "extension: select across channels on the critical path",
		DefaultThreads: 4,
		Build:          buildFanin,
	})
}

const (
	faninItemsPerProducer = 10
	faninProduceCost      = trace.Time(30_000)
	faninAggregateCost    = trace.Time(60_000)
	faninTallyCost        = trace.Time(4_000)
)

func buildFanin(rt harness.Runtime, p Params) func(harness.Proc) {
	producers := p.Threads
	srcs := make([]harness.Chan, producers)
	for i := range srcs {
		srcs[i] = rt.NewChan(fmt.Sprintf("src-%d", i), 1)
	}
	tallyMu := rt.NewMutex("tally.mu")

	return func(main harness.Proc) {
		agg := main.Go("aggregator", func(q harness.Proc) {
			open := append([]harness.Chan(nil), srcs...)
			for len(open) > 0 {
				cases := make([]harness.SelectCase, len(open))
				for i, ch := range open {
					cases[i] = harness.SelectCase{Ch: ch}
				}
				idx, ok := q.Select(cases, false)
				if !ok {
					open = append(open[:idx], open[idx+1:]...)
					continue
				}
				q.Compute(jittered(q, p, faninAggregateCost))
				q.Lock(tallyMu)
				q.Compute(scaled(p, faninTallyCost))
				q.Unlock(tallyMu)
			}
		})
		spawnWorkers(main, producers, "producer", func(q harness.Proc, i int) {
			for k := 0; k < faninItemsPerProducer; k++ {
				q.Compute(jittered(q, p, faninProduceCost))
				q.Send(srcs[i])
			}
			q.Close(srcs[i])
		})
		main.Join(agg)
	}
}
