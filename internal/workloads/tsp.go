package workloads

import (
	"critlock/internal/harness"
	"critlock/internal/queue"
	"critlock/internal/trace"
)

// TSP models the Pthreads travelling-salesman branch-and-bound used in
// the paper (§V.E): one global task queue of partial tours that every
// thread enqueues to and dequeues from, protected by Qlock, plus
// MinLock protecting the global best-tour bound.
//
// Tour evaluation is cheap relative to the queue traffic it generates,
// so Qlock dominates the critical path (the paper measures 68% CP
// time at 24 threads) even though its per-invocation wait is modest.
// Params.TwoLock splits Qlock into Q.q_head_lock/Q.q_tail_lock — the
// optimization the paper reports a 19% end-to-end improvement for.
type tspModel struct {
	p     Params
	queue queue.TaskQueue
	pool  *workPool // MinLock: global bound + termination counter

	// Guarded by the pool's MinLock.
	best int64

	evalWork trace.Time
	maxDepth int
}

const (
	tspEvalWork = 2500 // ns to evaluate/extend a partial tour
	tspEnqCS    = 65   // ns inside the queue lock per enqueue
	tspDeqCS    = 72   // ns inside the queue lock per dequeue
	tspMissCS   = 15   // ns inside the queue lock for an empty probe
	tspMinCS    = 12   // ns inside MinLock
	tspSeeds    = 64   // initial partial tours (cities-1 fan-out)
	tspMaxDepth = 5
)

func newTSP(rt harness.Runtime, p Params) *tspModel {
	m := &tspModel{
		p:        p,
		pool:     newWorkPool(rt, "MinLock", "Q_nonempty", scaled(p, tspMinCS)),
		evalWork: tspEvalWork,
		maxDepth: tspMaxDepth,
		best:     1 << 30,
	}
	cost := queue.CostModel{EnqueueCost: scaled(p, tspEnqCS), DequeueCost: scaled(p, tspDeqCS), MissCost: scaled(p, tspMissCS)}
	if p.TwoLock {
		m.queue = queue.NewTwoLock(rt, "Q", cost)
	} else {
		m.queue = queue.NewSingleLock(rt, "Q", cost)
	}
	return m
}

func (m *tspModel) process(q harness.Proc, task int64) {
	depth := int(task & 0xff)

	// Evaluate the partial tour.
	q.Compute(jittered(q, m.p, m.evalWork))

	// Decide expansion: deeper tours are pruned more aggressively by
	// the bound, shrinking the expected branching below 1 as depth
	// grows so the search terminates.
	children := 0
	if depth < m.maxDepth {
		r := q.Rand().Float64()
		keep := 1.9 - 0.35*float64(depth)
		children = int(keep)
		if r < keep-float64(children) {
			children++
		}
	}

	if children == 0 && q.Rand().Float64() < 0.3 {
		// Complete tour: try to improve the global bound.
		m.pool.withLock(q, func() {
			if v := int64(q.Rand().Intn(1 << 20)); v < m.best {
				m.best = v
			}
		})
	}

	// Credit the spawns before publishing them.
	m.pool.complete(q, children)
	for c := 0; c < children; c++ {
		m.queue.Enqueue(q, int64(depth+1))
		m.pool.announce(q)
	}
}

func (m *tspModel) worker(q harness.Proc, _ int) {
	for {
		task, ok := m.queue.TryDequeue(q)
		if ok {
			m.process(q, task)
			continue
		}
		if m.pool.idle(q) {
			return
		}
	}
}

func buildTSP(rt harness.Runtime, p Params) func(harness.Proc) {
	m := newTSP(rt, p)
	return func(main harness.Proc) {
		m.pool.seed(main, tspSeeds)
		for i := 0; i < tspSeeds; i++ {
			m.queue.Enqueue(main, 1)
		}
		spawnWorkers(main, p.Threads, "tsp", m.worker)
	}
}

func init() {
	register(Spec{
		Name:            "tsp",
		Desc:            "branch-and-bound TSP with one global task queue (Qlock, MinLock)",
		Paper:           "§V.E and Fig. 8: Qlock ≈ 68% of the critical path",
		DefaultThreads:  24,
		SupportsTwoLock: true,
		Build:           buildTSP,
	})
}
