package workloads

import (
	"strings"
	"testing"

	"critlock/internal/core"
	"critlock/internal/livetrace"
	"critlock/internal/sim"
	"critlock/internal/trace"
)

// analyzeRun executes a workload on the simulator and analyzes it.
func analyzeRun(t *testing.T, name string, p Params) (*core.Analysis, trace.Time) {
	t.Helper()
	spec, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{Contexts: 24, Seed: p.Seed})
	tr, elapsed, err := Run(s, spec, p)
	if err != nil {
		t.Fatalf("running %s: %v", name, err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("%s produced invalid trace: %v", name, err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatalf("analyzing %s: %v", name, err)
	}
	return an, elapsed
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"deadlockprone", "fanin", "ldap", "lostsignal", "micro", "pipeline", "radiosity", "raytrace", "tsp", "uts", "volrend", "waternsq"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("Names() = %v, want %v", names, want)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) succeeded")
	}
	for _, n := range names {
		s, err := Get(n)
		if err != nil || s.Build == nil || s.Desc == "" || s.Paper == "" || s.DefaultThreads <= 0 {
			t.Errorf("spec %q incomplete: %+v err=%v", n, s, err)
		}
	}
}

// TestAllWorkloadsRunClean: every model runs to completion at a small
// and at its default thread count, produces a valid trace with full
// critical-path coverage and no unattributed waits.
func TestAllWorkloadsRunClean(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, threads := range []int{2, 0} { // 0 → spec default
				an, elapsed := analyzeRun(t, name, Params{Threads: threads, Seed: 7})
				if elapsed <= 0 {
					t.Fatalf("threads=%d: elapsed = %d", threads, elapsed)
				}
				if an.CP.Length != elapsed {
					t.Errorf("threads=%d: CP length %d != elapsed %d", threads, an.CP.Length, elapsed)
				}
				if an.CP.WaitTime != 0 {
					t.Errorf("threads=%d: unattributed CP wait %d", threads, an.CP.WaitTime)
				}
				if an.Totals.Invocations == 0 {
					t.Errorf("threads=%d: no lock invocations traced", threads)
				}
			}
		})
	}
}

// TestWorkloadsDeterministic: same seed → identical virtual completion
// time; different seed → (almost surely) different time.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range []string{"radiosity", "tsp", "uts"} {
		name := name
		t.Run(name, func(t *testing.T) {
			_, e1 := analyzeRun(t, name, Params{Threads: 6, Seed: 11})
			_, e2 := analyzeRun(t, name, Params{Threads: 6, Seed: 11})
			if e1 != e2 {
				t.Errorf("same seed: %d vs %d", e1, e2)
			}
			_, e3 := analyzeRun(t, name, Params{Threads: 6, Seed: 12})
			if e3 == e1 {
				t.Logf("different seed gave same elapsed %d (possible but suspicious)", e1)
			}
		})
	}
}

// TestMicroGolden reproduces Fig. 6's identification result exactly:
// at 4 threads, CP Time is 16.67% for L1 and 83.33% for L2, while
// Wait Time ranks L1 first.
func TestMicroGolden(t *testing.T) {
	an, elapsed := analyzeRun(t, "micro", Params{Threads: 4, Seed: 1})
	if elapsed != 12_000_000 {
		t.Errorf("elapsed = %d, want 12ms (4 threads serialize 2ms+2.5ms CSes)", elapsed)
	}
	l1, l2 := an.Lock("L1"), an.Lock("L2")
	if l1 == nil || l2 == nil {
		t.Fatal("L1/L2 missing")
	}
	approxPct(t, "L1 CP time", l1.CPTimePct, 16.67)
	approxPct(t, "L2 CP time", l2.CPTimePct, 83.33)
	if l1.WaitTimePct <= l2.WaitTimePct {
		t.Errorf("Wait Time must (misleadingly) rank L1 over L2: %.2f vs %.2f",
			l1.WaitTimePct, l2.WaitTimePct)
	}
	approxPct(t, "L2 cont prob on CP", l2.ContProbOnCP, 75)
}

func approxPct(t *testing.T, what string, got, want float64) {
	t.Helper()
	if got < want-0.5 || got > want+0.5 {
		t.Errorf("%s = %.2f%%, want ≈%.2f%%", what, got, want)
	}
}

// TestRadiosityShape checks the Fig. 9 shape: freeInter leads at 8
// threads; tq[0].qlock dominates at 24 with a CP share near the
// paper's 39% and high contention on the path.
func TestRadiosityShape(t *testing.T) {
	an8, _ := analyzeRun(t, "radiosity", Params{Threads: 8, Seed: 1})
	free8 := an8.Lock("freeInter")
	tq8 := an8.Lock("tq[0].qlock")
	if free8.CPTimePct <= tq8.CPTimePct {
		t.Errorf("at 8T freeInter (%.2f%%) must lead tq[0].qlock (%.2f%%)",
			free8.CPTimePct, tq8.CPTimePct)
	}

	an24, _ := analyzeRun(t, "radiosity", Params{Threads: 24, Seed: 1})
	if an24.Locks[0].Name != "tq[0].qlock" {
		t.Fatalf("top lock at 24T = %s, want tq[0].qlock", an24.Locks[0].Name)
	}
	tq24 := an24.Lock("tq[0].qlock")
	if tq24.CPTimePct < 25 || tq24.CPTimePct > 60 {
		t.Errorf("tq[0].qlock CP share = %.2f%%, want ~39%% (25–60)", tq24.CPTimePct)
	}
	if tq24.ContProbOnCP < 60 {
		t.Errorf("tq[0].qlock cont prob on CP = %.2f%%, want high (paper 78.69%%)", tq24.ContProbOnCP)
	}
	if tq24.InvIncrease < 3 {
		t.Errorf("tq[0].qlock invocation increase = %.2f, want ≫1 (paper 7.01)", tq24.InvIncrease)
	}
	// CP Time must dwarf Wait Time for this lock (the paper's point).
	if tq24.CPTimePct < 3*tq24.WaitTimePct {
		t.Errorf("CP Time (%.2f%%) should dwarf Wait Time (%.2f%%)", tq24.CPTimePct, tq24.WaitTimePct)
	}
}

// TestRadiosityOptimization reproduces Figs. 12–14: the two-lock
// queue improves completion time at high thread counts, and
// tq[0].q_head_lock becomes the (much smaller) top lock.
func TestRadiosityOptimization(t *testing.T) {
	_, orig := analyzeRun(t, "radiosity", Params{Threads: 24, Seed: 1})
	anOpt, opt := analyzeRun(t, "radiosity", Params{Threads: 24, Seed: 1, TwoLock: true})
	if opt >= orig {
		t.Errorf("two-lock queue not faster: %d vs %d", opt, orig)
	}
	head := anOpt.Lock("tq[0].q_head_lock")
	if head == nil {
		t.Fatal("optimized run lacks tq[0].q_head_lock")
	}
	if head.CPTimePct > 15 {
		t.Errorf("optimized head lock CP share = %.2f%%, want far below the original 39%%", head.CPTimePct)
	}
	// At a single thread the variants must be equivalent (no contention
	// to remove).
	_, o1 := analyzeRun(t, "radiosity", Params{Threads: 1, Seed: 1})
	_, n1 := analyzeRun(t, "radiosity", Params{Threads: 1, Seed: 1, TwoLock: true})
	if o1 != n1 {
		t.Errorf("1-thread variants differ: %d vs %d", o1, n1)
	}
}

// TestTSPShape: Qlock around the paper's 68% of the critical path at
// 24 threads, and the two-lock split gives a double-digit improvement.
func TestTSPShape(t *testing.T) {
	an, orig := analyzeRun(t, "tsp", Params{Threads: 24, Seed: 1})
	q := an.Lock("Q.qlock")
	if q == nil {
		t.Fatal("Q.qlock missing")
	}
	if q.CPTimePct < 50 || q.CPTimePct > 85 {
		t.Errorf("Q.qlock CP share = %.2f%%, want ~68%%", q.CPTimePct)
	}
	_, opt := analyzeRun(t, "tsp", Params{Threads: 24, Seed: 1, TwoLock: true})
	impr := 100 * float64(orig-opt) / float64(orig)
	if impr < 8 {
		t.Errorf("two-lock improvement = %.1f%%, want double digits (paper 19%%)", impr)
	}
}

// TestUTSShape: stackLock[5] is the top lock by CP time with
// negligible wait time — the uncontended-but-critical case.
func TestUTSShape(t *testing.T) {
	an, _ := analyzeRun(t, "uts", Params{Threads: 24, Seed: 1})
	if an.Locks[0].Name != "stackLock[5]" {
		t.Fatalf("top lock = %s, want stackLock[5]", an.Locks[0].Name)
	}
	s5 := an.Locks[0]
	if s5.CPTimePct < 2 || s5.CPTimePct > 12 {
		t.Errorf("stackLock[5] CP share = %.2f%%, want ~5%%", s5.CPTimePct)
	}
	if s5.WaitTimePct > 0.5 {
		t.Errorf("stackLock[5] wait time = %.2f%%, want negligible", s5.WaitTimePct)
	}
}

// TestRaytraceShape: mem dominates and Wait Time underestimates it.
func TestRaytraceShape(t *testing.T) {
	an, _ := analyzeRun(t, "raytrace", Params{Threads: 24, Seed: 1})
	mem := an.Lock("mem")
	if an.Locks[0].Name != "mem" {
		t.Fatalf("top lock = %s, want mem", an.Locks[0].Name)
	}
	if mem.CPTimePct < 15 {
		t.Errorf("mem CP share = %.2f%%, want substantial", mem.CPTimePct)
	}
	if mem.CPTimePct < 3*mem.WaitTimePct {
		t.Errorf("Wait Time (%.2f%%) must underestimate mem vs CP Time (%.2f%%)",
			mem.WaitTimePct, mem.CPTimePct)
	}
}

// TestLDAPShape: the negative result — no lock above 2% of the
// critical path.
func TestLDAPShape(t *testing.T) {
	an, _ := analyzeRun(t, "ldap", Params{Threads: 16, Seed: 1})
	for _, l := range an.TopLocks(3) {
		if l.CPTimePct > 2 {
			t.Errorf("lock %s at %.2f%% CP — LDAP should have no critical section bottleneck", l.Name, l.CPTimePct)
		}
	}
}

// TestWaterShape: tiny scattered critical sections, nothing dominant.
func TestWaterShape(t *testing.T) {
	an, _ := analyzeRun(t, "waternsq", Params{Threads: 16, Seed: 1})
	if top := an.Locks[0]; top.CPTimePct > 10 {
		t.Errorf("top water lock %s at %.2f%%, want small", top.Name, top.CPTimePct)
	}
	// Barrier waits must exist (it is a barrier-stepped code).
	if an.Totals.TotalBarrierWait == 0 {
		t.Error("no barrier waits recorded")
	}
}

// TestVolrendShape: QLock on the path with little contention at low
// thread counts.
func TestVolrendShape(t *testing.T) {
	an, _ := analyzeRun(t, "volrend", Params{Threads: 8, Seed: 1})
	q := an.Lock("Global->QLock")
	if q == nil || !q.Critical {
		t.Fatalf("Global->QLock missing or not critical: %+v", q)
	}
}

// TestPipelineShape: the stage channel is the hot channel — it absorbs
// at least 90% of all channel blocked time, sits on the critical path,
// and the amply-buffered results channel never blocks anyone.
func TestPipelineShape(t *testing.T) {
	an, _ := analyzeRun(t, "pipeline", Params{Threads: 4, Seed: 1})
	stage := an.Chan("stage1")
	results := an.Chan("results")
	if stage == nil || results == nil {
		t.Fatalf("channels missing: stage=%v results=%v", stage, results)
	}
	if an.Totals.TotalChanWait == 0 {
		t.Fatal("no channel wait recorded")
	}
	share := float64(stage.TotalWait) / float64(an.Totals.TotalChanWait)
	if share < 0.9 {
		t.Errorf("stage1 holds %.1f%% of channel blocked time, want ≥90%%", 100*share)
	}
	if stage.JumpsOnCP == 0 || stage.WaitOnCP == 0 {
		t.Errorf("stage1 not on critical path: jumps=%d wait=%d", stage.JumpsOnCP, stage.WaitOnCP)
	}
	if an.Chans[0].Name != "stage1" {
		t.Errorf("hot channel = %s, want stage1", an.Chans[0].Name)
	}
	if results.BlockedSends != 0 || results.BlockedRecvs != 0 {
		t.Errorf("results channel blocked: %d sends, %d recvs", results.BlockedSends, results.BlockedRecvs)
	}
	if stage.Closes != 1 {
		t.Errorf("stage1 closes = %d, want 1", stage.Closes)
	}
}

// TestFaninShape: the consumer-limited select aggregator leaves the
// producers' source channels holding the blocked sends.
func TestFaninShape(t *testing.T) {
	an, _ := analyzeRun(t, "fanin", Params{Threads: 4, Seed: 1})
	if an.Totals.Channels != 4 {
		t.Fatalf("channels = %d, want 4", an.Totals.Channels)
	}
	var blockedSends, closes int
	for _, cs := range an.Chans {
		blockedSends += cs.BlockedSends
		closes += cs.Closes
	}
	if blockedSends == 0 {
		t.Error("no blocked sends — producers should outpace the aggregator")
	}
	if closes != 4 {
		t.Errorf("closes = %d, want one per source", closes)
	}
	var cpJumps int
	for _, j := range an.CP.JumpLog {
		if j.Kind == core.JumpChan {
			cpJumps++
		}
	}
	if cpJumps == 0 {
		t.Error("critical path never jumps through a channel")
	}
}

// TestScaleParameter: doubling Scale roughly doubles virtual time.
func TestScaleParameter(t *testing.T) {
	_, e1 := analyzeRun(t, "micro", Params{Threads: 4, Seed: 1, Scale: 1})
	_, e2 := analyzeRun(t, "micro", Params{Threads: 4, Seed: 1, Scale: 2})
	ratio := float64(e2) / float64(e1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("scale 2 ratio = %.2f, want ≈2", ratio)
	}
}

// TestWorkloadOnLiveBackend: the same model code runs unchanged on
// real goroutines.
func TestWorkloadOnLiveBackend(t *testing.T) {
	spec, err := Get("radiosity")
	if err != nil {
		t.Fatal(err)
	}
	rt := livetrace.New(livetrace.Config{Seed: 3})
	tr, elapsed, err := Run(rt, spec, Params{Threads: 2, Seed: 3})
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("live trace invalid: %v", err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	if an.Lock("tq[0].qlock") == nil {
		t.Error("tq[0].qlock missing from live trace")
	}
}

// TestMetaPropagated: Run stamps workload metadata.
func TestMetaPropagated(t *testing.T) {
	spec, _ := Get("tsp")
	s := sim.New(sim.Config{Contexts: 8, Seed: 1})
	tr, _, err := Run(s, spec, Params{Threads: 4, Seed: 1, TwoLock: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta["workload"] != "tsp" || tr.Meta["threads"] != "4" || tr.Meta["variant"] != "twolock" {
		t.Errorf("meta = %v", tr.Meta)
	}
}
