package workloads

import (
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// MicroConfig parameterizes the paper's micro-benchmark (Fig. 5): each
// thread executes two consecutive critical sections, CS1 under L1 and
// CS2 under L2. In the paper the loop bodies run 2.0 and 2.5 billion
// iterations; here an iteration count of 1 billion maps to 1ms of
// virtual time, preserving the 2.0 : 2.5 ratio that drives the result.
type MicroConfig struct {
	Threads int
	// CS1 and CS2 are the critical-section durations.
	CS1, CS2 trace.Time
}

// DefaultMicroConfig returns the Fig. 5 parameters at n threads.
func DefaultMicroConfig(n int) MicroConfig {
	return MicroConfig{Threads: n, CS1: 2_000_000, CS2: 2_500_000}
}

// BuildMicro constructs the micro-benchmark with explicit
// critical-section sizes (the fig6 validation runs shrunken variants).
func BuildMicro(cfg MicroConfig) BuildFunc {
	return func(rt harness.Runtime, p Params) func(harness.Proc) {
		l1 := rt.NewMutex("L1")
		l2 := rt.NewMutex("L2")
		n := cfg.Threads
		if p.Threads > 0 {
			n = p.Threads
		}
		cs1 := scaled(p, cfg.CS1)
		cs2 := scaled(p, cfg.CS2)
		return func(main harness.Proc) {
			spawnWorkers(main, n, "micro", func(q harness.Proc, i int) {
				q.Lock(l1)
				q.Compute(cs1) // for (i=0; i<2e9; i++) a++
				q.Unlock(l1)
				q.Lock(l2)
				q.Compute(cs2) // for (j=0; j<2.5e9; j++) b++
				q.Unlock(l2)
			})
		}
	}
}

func init() {
	register(Spec{
		Name:           "micro",
		Desc:           "two consecutive locks with 2.0ms and 2.5ms critical sections per thread",
		Paper:          "Fig. 5–7: the motivating micro-benchmark",
		DefaultThreads: 4,
		Build: func(rt harness.Runtime, p Params) func(harness.Proc) {
			return BuildMicro(DefaultMicroConfig(p.Threads))(rt, p)
		},
	})
}
