package workloads

import (
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// pipeline models a producer-limited channel pipeline: one slow
// producer feeds a small-capacity stage channel, a pool of fast
// workers drains it and forwards results into an amply-buffered
// results channel the main thread collects at the end.
//
// The structure is deliberately lopsided: the workers spend nearly all
// their time parked on the stage channel, so essentially all channel
// blocked time accrues to "stage1" and the critical path runs through
// the producer's sends — the channel analogue of a critical lock. The
// results channel never blocks (its capacity covers every item) and
// should rank cold.
func init() {
	register(Spec{
		Name:           "pipeline",
		Desc:           "slow producer feeding fast workers through a capacity-1 stage channel",
		Paper:          "extension: channel handoffs as critical-path dependencies",
		DefaultThreads: 4,
		Build:          buildPipeline,
	})
}

const (
	pipelineItemsPerWorker = 12
	pipelineProduceCost    = trace.Time(400_000)
	pipelineWorkCost       = trace.Time(40_000)
	pipelineTallyCost      = trace.Time(5_000)
)

func buildPipeline(rt harness.Runtime, p Params) func(harness.Proc) {
	workers := p.Threads
	items := pipelineItemsPerWorker * workers
	stage := rt.NewChan("stage1", 1)
	results := rt.NewChan("results", items) // ample: sends never block
	statsMu := rt.NewMutex("stats.mu")

	return func(main harness.Proc) {
		producer := main.Go("producer", func(q harness.Proc) {
			for i := 0; i < items; i++ {
				q.Compute(jittered(q, p, pipelineProduceCost))
				q.Send(stage)
			}
			q.Close(stage)
		})
		spawnWorkers(main, workers, "worker", func(q harness.Proc, _ int) {
			for q.Recv(stage) {
				q.Compute(jittered(q, p, pipelineWorkCost))
				q.Lock(statsMu)
				q.Compute(scaled(p, pipelineTallyCost))
				q.Unlock(statsMu)
				q.Send(results)
			}
		})
		main.Join(producer)
		for i := 0; i < items; i++ {
			main.Recv(results)
		}
	}
}
