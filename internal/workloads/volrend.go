package workloads

import (
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// Volrend models SPLASH-2 volrend (ray-casting volume rendering of the
// "head" dataset): threads self-schedule image tiles by incrementing a
// shared tile counter under Global->QLock, render the tile without
// locks, and occasionally update the global image histogram under
// Global->IndexLock.
//
// The tile counter's critical section is a few tens of nanoseconds
// against milliseconds of rendering, so — like UTS's stackLock[5] in
// the paper — QLock shows almost no wait time yet still sits on the
// critical path with a small but nonzero CP share.
type volrendModel struct {
	p     Params
	qlock harness.Mutex // Global->QLock: tile counter
	index harness.Mutex // Global->IndexLock: image/histogram updates

	tileWork trace.Time
	qCS      trace.Time
	indexCS  trace.Time
	tiles    int

	// next is the tile counter, guarded by qlock.
	next int
}

const (
	volTileWork = 2300 // ns to ray-cast one tile
	volQCS      = 35   // ns inside QLock
	volIndexCS  = 30   // ns inside IndexLock
	volTiles    = 400  // fixed image size
)

func newVolrend(rt harness.Runtime, p Params) *volrendModel {
	return &volrendModel{
		p:        p,
		qlock:    rt.NewMutex("Global->QLock"),
		index:    rt.NewMutex("Global->IndexLock"),
		tileWork: volTileWork,
		qCS:      scaled(p, volQCS),
		indexCS:  scaled(p, volIndexCS),
		tiles:    volTiles,
	}
}

func (m *volrendModel) worker(q harness.Proc, _ int) {
	for {
		q.Lock(m.qlock)
		q.Compute(m.qCS)
		tile := m.next
		m.next++
		q.Unlock(m.qlock)
		if tile >= m.tiles {
			return
		}
		// Ray-cast the tile.
		q.Compute(jittered(q, m.p, m.tileWork))
		// Sparse histogram updates.
		if tile%8 == 0 {
			q.Lock(m.index)
			q.Compute(m.indexCS)
			q.Unlock(m.index)
		}
	}
}

func buildVolrend(rt harness.Runtime, p Params) func(harness.Proc) {
	m := newVolrend(rt, p)
	return func(main harness.Proc) {
		spawnWorkers(main, p.Threads, "vol", m.worker)
	}
}

func init() {
	register(Spec{
		Name:           "volrend",
		Desc:           "self-scheduled tile rendering: Global->QLock, Global->IndexLock",
		Paper:          "§V.C / Fig. 8",
		DefaultThreads: 24,
		Build:          buildVolrend,
	})
}
