package workloads

import (
	"fmt"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// WaterNsq models SPLASH-2 water-nsquared (512 molecules in the
// paper): a barrier-synchronized molecular-dynamics step loop where
//
//   - force computation is the bulk of the time (no locks),
//   - cross-molecule force accumulation takes one of the per-molecule
//     locks MolLock[j] for a very short critical section, and
//   - the kinetic-energy reduction at the end of a step takes the
//     global KinetiSumLock once per thread.
//
// Critical sections are tiny and scattered over many locks, so no lock
// dominates the critical path — water's row in the paper's Fig. 8 is
// small, and the interesting observation is that CP Time still ranks
// the (uncontended) locks that are on the path.
type waterModel struct {
	p        Params
	molLocks []harness.Mutex
	kineti   harness.Mutex
	interf   harness.Mutex
	stepBar  harness.Barrier

	pairWork  trace.Time
	molCS     trace.Time
	reduceCS  trace.Time
	steps     int
	pairChunk int // pair-computation chunks per step (fixed problem size)
}

const (
	waterPairWork  = 1500 // ns per pair-interaction chunk
	waterMolCS     = 45   // ns inside a molecule lock
	waterReduceCS  = 60   // ns inside the reduction locks
	waterSteps     = 3
	waterChunks    = 480 // total chunks per step, divided among threads
	waterNumLocks  = 64  // molecule lock array (hashed)
	waterChunkMols = 2   // molecule-lock updates per chunk
)

func newWater(rt harness.Runtime, p Params) *waterModel {
	m := &waterModel{
		p:         p,
		kineti:    rt.NewMutex("KinetiSumLock"),
		interf:    rt.NewMutex("InterfVirLock"),
		stepBar:   rt.NewBarrier("step-barrier", p.Threads),
		pairWork:  waterPairWork,
		molCS:     scaled(p, waterMolCS),
		reduceCS:  scaled(p, waterReduceCS),
		steps:     waterSteps,
		pairChunk: waterChunks,
	}
	for i := 0; i < waterNumLocks; i++ {
		m.molLocks = append(m.molLocks, rt.NewMutex(fmt.Sprintf("MolLock[%d]", i)))
	}
	return m
}

func (m *waterModel) worker(q harness.Proc, self int) {
	n := m.p.Threads
	lo := self * m.pairChunk / n
	hi := (self + 1) * m.pairChunk / n
	for step := 0; step < m.steps; step++ {
		// INTERF: pair forces over this thread's chunk range, with
		// per-molecule locked accumulation.
		for c := lo; c < hi; c++ {
			q.Compute(jittered(q, m.p, m.pairWork))
			for u := 0; u < waterChunkMols; u++ {
				l := m.molLocks[q.Rand().Intn(len(m.molLocks))]
				q.Lock(l)
				q.Compute(m.molCS)
				q.Unlock(l)
			}
		}
		// Accumulate the intermolecular virial once per thread.
		q.Lock(m.interf)
		q.Compute(m.reduceCS)
		q.Unlock(m.interf)
		q.BarrierWait(m.stepBar)

		// KINETI: kinetic-energy reduction.
		q.Compute(jittered(q, m.p, m.pairWork/4))
		q.Lock(m.kineti)
		q.Compute(m.reduceCS)
		q.Unlock(m.kineti)
		q.BarrierWait(m.stepBar)
	}
}

func buildWater(rt harness.Runtime, p Params) func(harness.Proc) {
	m := newWater(rt, p)
	return func(main harness.Proc) {
		spawnWorkers(main, p.Threads, "water", m.worker)
	}
}

func init() {
	register(Spec{
		Name:           "waternsq",
		Desc:           "barrier-stepped molecular dynamics: MolLock[i], KinetiSumLock, InterfVirLock",
		Paper:          "§V.C / Fig. 8: tiny scattered critical sections",
		DefaultThreads: 24,
		Build:          buildWater,
	})
}
