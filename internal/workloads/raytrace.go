package workloads

import (
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// Raytrace models SPLASH-2 raytrace ("car" scene): threads
// self-schedule ray jobs via the ray-ID counter under ridlock, and the
// renderer allocates intersection/ray records from a single global
// memory arena protected by the "mem" lock several times per job.
//
// The mem lock is the paper's example of a bottleneck the Wait Time
// metric significantly underestimates (Fig. 8): its critical section
// is short enough that waits look harmless, but at 24 threads the
// allocation traffic serializes and its hold chain dominates the
// critical path.
type raytraceModel struct {
	p   Params
	mem harness.Mutex // mem: global memory arena
	rid harness.Mutex // ridlock: ray-ID counter

	jobWork trace.Time
	memCS   trace.Time
	ridCS   trace.Time
	jobs    int
	allocs  int
	next    int // guarded by rid
}

const (
	rayJobWork = 1900 // ns of traversal/shading per job
	rayMemCS   = 42   // ns inside mem per allocation
	rayRidCS   = 12   // ns inside ridlock
	rayJobs    = 1600 // fixed scene size
	rayAllocs  = 2    // arena allocations per job
)

func newRaytrace(rt harness.Runtime, p Params) *raytraceModel {
	return &raytraceModel{
		p:       p,
		mem:     rt.NewMutex("mem"),
		rid:     rt.NewMutex("ridlock"),
		jobWork: rayJobWork,
		memCS:   scaled(p, rayMemCS),
		ridCS:   scaled(p, rayRidCS),
		jobs:    rayJobs,
		allocs:  rayAllocs,
	}
}

func (m *raytraceModel) worker(q harness.Proc, _ int) {
	for {
		q.Lock(m.rid)
		q.Compute(m.ridCS)
		job := m.next
		m.next++
		q.Unlock(m.rid)
		if job >= m.jobs {
			return
		}
		// Trace the ray bundle, allocating records as the tree grows.
		per := jittered(q, m.p, m.jobWork) / trace.Time(m.allocs)
		for a := 0; a < m.allocs; a++ {
			q.Lock(m.mem)
			q.Compute(m.memCS)
			q.Unlock(m.mem)
			q.Compute(per)
		}
	}
}

func buildRaytrace(rt harness.Runtime, p Params) func(harness.Proc) {
	m := newRaytrace(rt, p)
	return func(main harness.Proc) {
		spawnWorkers(main, p.Threads, "ray", m.worker)
	}
}

func init() {
	register(Spec{
		Name:           "raytrace",
		Desc:           "self-scheduled ray tracing with a global allocator: mem, ridlock",
		Paper:          "§V.C / Fig. 8: Wait Time underestimates mem",
		DefaultThreads: 24,
		Build:          buildRaytrace,
	})
}
