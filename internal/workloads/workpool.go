package workloads

import (
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// workPool is the termination protocol shared by the task-parallel
// models (radiosity, tsp, uts): a count of outstanding tasks guarded
// by a workload-named mutex, plus a condition variable idle workers
// block on. Spawners signal after publishing work; the worker that
// completes the final task broadcasts completion.
//
// Blocking (rather than poll-spinning) matters for critical-path
// fidelity: a blocked idler's wait is jumped over by the analyzer's
// backward walk, exactly as a Pthreads cond_wait would be, so the
// critical path follows the threads doing work.
type workPool struct {
	mu harness.Mutex
	cv harness.Cond
	cs trace.Time

	// Guarded by mu.
	remaining int
	done      bool
}

// newWorkPool names the mutex after the application's real lock
// (pbar_lock, MinLock, cb_lock, ...).
func newWorkPool(rt harness.Runtime, lockName, condName string, cs trace.Time) *workPool {
	return &workPool{
		mu: rt.NewMutex(lockName),
		cv: rt.NewCond(condName),
		cs: cs,
	}
}

// seed credits the initial tasks. Call before workers start.
func (w *workPool) seed(q harness.Proc, k int) {
	q.Lock(w.mu)
	q.Compute(w.cs)
	w.remaining += k
	q.Unlock(w.mu)
}

// announce wakes one idle worker after new work was published.
func (w *workPool) announce(q harness.Proc) {
	q.Signal(w.cv)
}

// complete records that a task finished after spawning `spawned` new
// tasks; the final completion broadcasts termination.
func (w *workPool) complete(q harness.Proc, spawned int) {
	q.Lock(w.mu)
	q.Compute(w.cs)
	w.remaining += spawned - 1
	if w.remaining == 0 {
		w.done = true
		q.Broadcast(w.cv)
	}
	q.Unlock(w.mu)
}

// withLock runs fn inside the pool's critical section (for workloads
// that fold extra shared state, like TSP's bound, into the same lock).
func (w *workPool) withLock(q harness.Proc, fn func()) {
	q.Lock(w.mu)
	q.Compute(w.cs)
	fn()
	q.Unlock(w.mu)
}

// idle blocks until either new work may be available or the pool is
// finished. It returns true when the worker should exit. Callers must
// re-sweep their queues after a false return (the signal only means
// "look again").
func (w *workPool) idle(q harness.Proc) bool {
	q.Lock(w.mu)
	q.Compute(w.cs)
	if w.done {
		q.Unlock(w.mu)
		return true
	}
	//lint:ignore waitloop callers re-sweep their queues after every false return (see doc comment)
	q.Wait(w.cv, w.mu)
	done := w.done
	q.Unlock(w.mu)
	return done
}
