package workloads

import (
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// deadlockprone and lostsignal are planted-hazard workloads: each run
// completes normally, but the trace realizes a synchronization
// structure that another interleaving would turn into a hang. They
// exist so the dynamic hazard pass (internal/hazard) has ground truth
// to detect end to end — deadlockprone must yield exactly one feasible
// deadlock cycle {locks.A, locks.B}, lostsignal exactly one lost
// signal on ls.cv — and so regressions in the cross-thread
// critical-section rules surface immediately.
func init() {
	register(Spec{
		Name:            "deadlockprone",
		Desc:            "A→B / B→A lock inversion realized without hanging; default variant routes the A→B edge across a channel hand-off",
		Paper:           "extension: feasible-deadlock prediction from the dynamic lock-order graph",
		DefaultThreads:  2,
		SupportsTwoLock: true,
		Build:           buildDeadlockProne,
	})
	register(Spec{
		Name:           "lostsignal",
		Desc:           "condition variable signaled again after its only waiter exited",
		Paper:          "extension: lost-signal prediction",
		DefaultThreads: 2,
		Build:          buildLostSignal,
	})
}

const (
	hazardStepCost = trace.Time(50_000)
	// deadlockHoldCost keeps locks.A held long after the gate hand-off,
	// so the woken goroutine's B acquisition lands inside A's extended
	// critical section.
	deadlockHoldCost = trace.Time(2_000_000)
)

// buildDeadlockProne realizes both directions of an A/B lock inversion
// in one run, guarded so the run completes.
//
// Default variant (cross-thread): g1 locks A and, still holding it,
// sends on the capacity-1 channel "gate", then keeps A for a long
// compute. g2 receives from gate — inheriting A's still-open critical
// section — and locks B (the cross-thread edge A→B), then blocks on A
// until g1 releases it (the ordinary edge B→A). Per-thread lock sets
// never see A and B held together by one thread; only the cross-thread
// extension closes the cycle.
//
// TwoLock variant (intra-thread): the classical serialized inversion —
// g1 nests A→B, hands the turn over an unlocked channel, g2 nests B→A.
// Both edges are ordinary nesting edges.
func buildDeadlockProne(rt harness.Runtime, p Params) func(harness.Proc) {
	a := rt.NewMutex("locks.A")
	b := rt.NewMutex("locks.B")
	gate := rt.NewChan("gate", 1)

	if p.TwoLock {
		return func(main harness.Proc) {
			g1 := main.Go("g1", func(q harness.Proc) {
				q.Lock(a)
				//lint:ignore lockorder planted inversion: this workload exists to seed the dynamic deadlock detector
				q.Lock(b)
				q.Compute(scaled(p, hazardStepCost))
				q.Unlock(b)
				q.Unlock(a)
				q.Send(gate) // hand the turn over, holding nothing
			})
			g2 := main.Go("g2", func(q harness.Proc) {
				q.Recv(gate)
				q.Lock(b)
				q.Lock(a)
				q.Compute(scaled(p, hazardStepCost))
				q.Unlock(a)
				q.Unlock(b)
			})
			main.Join(g1)
			main.Join(g2)
		}
	}

	return func(main harness.Proc) {
		g1 := main.Go("g1", func(q harness.Proc) {
			q.Lock(a)
			q.Compute(scaled(p, hazardStepCost))
			//lint:ignore blockheld planted: the cross-thread hand-off must carry locks.A across the send
			q.Send(gate) // capacity 1: does not block, A stays held
			q.Compute(scaled(p, deadlockHoldCost))
			q.Unlock(a)
		})
		g2 := main.Go("g2", func(q harness.Proc) {
			q.Recv(gate) // A's critical section extends to here
			q.Lock(b)    // cross-thread edge A→B
			q.Compute(scaled(p, hazardStepCost))
			q.Lock(a) // blocks until g1 releases: edge B→A
			q.Compute(scaled(p, hazardStepCost))
			q.Unlock(a)
			q.Unlock(b)
		})
		main.Join(g1)
		main.Join(g2)
	}
}

// buildLostSignal signals a condition variable whose only ever-waiter
// has already exited: the first signal is consumed normally, the
// second can never be.
func buildLostSignal(rt harness.Runtime, p Params) func(harness.Proc) {
	mu := rt.NewMutex("ls.mu")
	cv := rt.NewCond("ls.cv")

	return func(main harness.Proc) {
		waiter := main.Go("waiter", func(q harness.Proc) {
			q.Lock(mu)
			//lint:ignore waitloop planted: the one-shot wait is what makes the second signal provably lost
			q.Wait(cv, mu)
			q.Unlock(mu)
		})
		// Let the waiter park before signaling.
		main.Compute(scaled(p, hazardStepCost))
		main.Lock(mu)
		main.Signal(cv) // consumed by the waiter
		main.Unlock(mu)
		main.Join(waiter)
		main.Lock(mu)
		main.Signal(cv) // nobody can ever consume this one
		main.Unlock(mu)
	}
}
