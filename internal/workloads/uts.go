package workloads

import (
	"fmt"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// UTS models the Unbalanced Tree Search benchmark (-T8 -c 2 ST3 in the
// paper): each thread expands tree nodes from its own stack guarded by
// stackLock[i], stealing from other stacks only when its own runs dry;
// termination uses the cancellable-barrier lock cb_lock.
//
// Because each thread mostly locks its *own* stack, the stack locks
// are nearly uncontended — yet whichever thread carries the deep
// spine of the unbalanced tree puts its stackLock on the critical
// path. This reproduces the paper's UTS observation: Wait Time says
// stackLock[5] is not a bottleneck, CP Time shows it occupying ~5% of
// the critical path.
type utsModel struct {
	p          Params
	stackLocks []harness.Mutex
	stacks     [][]int64 // stacks[i] guarded by stackLocks[i]
	pool       *workPool // cb_lock (the cancellable barrier's lock)

	nodeWork trace.Time
	stackCS  trace.Time
	emptyCS  trace.Time
	maxDepth int
}

const (
	utsNodeWork  = 950 // ns to evaluate one tree node
	utsStackCS   = 45  // ns inside a stack lock per push/pop batch
	utsEmptyCS   = 12  // ns inside a stack lock for a failed (empty) pop
	utsCbCS      = 10  // ns inside cb_lock
	utsSeeds     = 96  // root nodes, dealt round-robin to the stacks
	utsMaxDepth  = 9   // depth cap for ordinary subtrees
	utsSpineLen  = 380 // length of the deep spine (the tree's imbalance)
	utsSpineHome = 5   // the stack the spine seed lands on: stackLock[5]

	// Node payload encoding: low 16 bits depth, bit 16 marks spine
	// nodes.
	utsSpineBit = 1 << 16
)

func newUTS(rt harness.Runtime, p Params) *utsModel {
	m := &utsModel{
		p:        p,
		pool:     newWorkPool(rt, "cb_lock", "cb_cv", scaled(p, utsCbCS)),
		nodeWork: utsNodeWork,
		stackCS:  scaled(p, utsStackCS),
		emptyCS:  scaled(p, utsEmptyCS),
		maxDepth: utsMaxDepth,
	}
	for i := 0; i < p.Threads; i++ {
		m.stackLocks = append(m.stackLocks, rt.NewMutex(fmt.Sprintf("stackLock[%d]", i)))
		m.stacks = append(m.stacks, nil)
	}
	return m
}

// pop takes a node from stack i (LIFO, depth-first as in UTS). An
// empty pop is much cheaper than a successful one: checking the shared
// counter costs little, which keeps steal probes from contending the
// victim's lock.
func (m *utsModel) pop(q harness.Proc, i int) (int64, bool) {
	q.Lock(m.stackLocks[i])
	st := m.stacks[i]
	if len(st) == 0 {
		q.Compute(m.emptyCS)
		q.Unlock(m.stackLocks[i])
		return 0, false
	}
	q.Compute(m.stackCS)
	v := st[len(st)-1]
	m.stacks[i] = st[:len(st)-1]
	q.Unlock(m.stackLocks[i])
	return v, true
}

// steal takes the *oldest* node from stack i (work-first stealing, as
// UTS does): thieves harvest the big old subtrees at the bottom and
// leave the owner's current spine at the top alone.
func (m *utsModel) steal(q harness.Proc, i int) (int64, bool) {
	q.Lock(m.stackLocks[i])
	st := m.stacks[i]
	if len(st) < 2 {
		q.Compute(m.emptyCS)
		q.Unlock(m.stackLocks[i])
		return 0, false
	}
	q.Compute(m.stackCS)
	v := st[0]
	m.stacks[i] = st[1:]
	q.Unlock(m.stackLocks[i])
	return v, true
}

// push puts nodes on stack i in one locked batch.
func (m *utsModel) push(q harness.Proc, i int, nodes []int64) {
	q.Lock(m.stackLocks[i])
	q.Compute(m.stackCS)
	m.stacks[i] = append(m.stacks[i], nodes...)
	q.Unlock(m.stackLocks[i])
}

// expand evaluates a node and returns its children. Ordinary subtrees
// are shallow and geometric; spine nodes chain one spine child each,
// forming the deep imbalanced branch that gives UTS its name. Because
// LIFO pops keep the spine child on top of its home stack, the spine
// tends to stay on one thread — putting that thread's stackLock on
// the critical path without contention.
func (m *utsModel) expand(q harness.Proc, node int64) []int64 {
	depth := int(node & 0xffff)
	q.Compute(jittered(q, m.p, m.nodeWork))

	if node&utsSpineBit != 0 {
		var children []int64
		if q.Rand().Float64() < 0.25 {
			children = append(children, int64(0)) // ordinary side subtree
		}
		if depth+1 < utsSpineLen {
			// Push the spine child last so the LIFO pop keeps the
			// spine on its home thread.
			children = append(children, int64(depth+1)|utsSpineBit)
		}
		return children
	}

	if depth >= m.maxDepth {
		return nil
	}
	r := q.Rand().Float64()
	var n int
	switch {
	case r < 0.27:
		n = 3
	case r < 0.57:
		n = 1
	default:
		n = 0
	}
	children := make([]int64, 0, n)
	for c := 0; c < n; c++ {
		children = append(children, int64(depth+1))
	}
	return children
}

func (m *utsModel) worker(q harness.Proc, self int) {
	n := len(m.stacks)
	idleSweeps := 0
	for {
		node, ok := m.pop(q, self)
		if !ok && n > 1 {
			// Try a few random victims (UTS's randomized stealing).
			for a := 0; a < 3 && !ok; a++ {
				victim := q.Rand().Intn(n)
				if victim == self {
					continue
				}
				node, ok = m.steal(q, victim)
			}
			// Before sleeping, sweep every stack once so no published
			// node can be missed by unlucky random probes.
			if !ok && idleSweeps > 0 {
				for d := 1; d < n && !ok; d++ {
					node, ok = m.steal(q, (self+d)%n)
				}
			}
		}
		if ok {
			idleSweeps = 0
			children := m.expand(q, node)
			m.pool.complete(q, len(children))
			if len(children) > 0 {
				m.push(q, self, children)
				m.pool.announce(q)
			}
			continue
		}
		idleSweeps++
		if m.pool.idle(q) {
			return
		}
	}
}

func buildUTS(rt harness.Runtime, p Params) func(harness.Proc) {
	m := newUTS(rt, p)
	return func(main harness.Proc) {
		m.pool.seed(main, utsSeeds+1)
		for i := 0; i < utsSeeds; i++ {
			m.push(main, i%len(m.stacks), []int64{0})
		}
		// The deep spine seed: the source of the tree's imbalance.
		m.push(main, utsSpineHome%len(m.stacks), []int64{utsSpineBit})
		spawnWorkers(main, p.Threads, "uts", m.worker)
	}
}

func init() {
	register(Spec{
		Name:           "uts",
		Desc:           "unbalanced tree search with per-thread stacks: stackLock[i], cb_lock",
		Paper:          "§V.C / Fig. 8: uncontended stackLock[5] still on the CP",
		DefaultThreads: 24,
		Build:          buildUTS,
	})
}
