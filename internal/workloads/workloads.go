// Package workloads models the multithreaded applications of the
// paper's case study (§V): a micro-benchmark plus Radiosity,
// Water-nsquared, Volrend and Raytrace from SPLASH-2, TSP, UTS and
// OpenLDAP.
//
// The models are not source ports; they are faithful reproductions of
// each application's *lock structure* — which locks exist, what they
// protect, how big the critical sections are relative to the work, and
// how traffic shifts with the thread count — because that structure is
// what the paper's results are statements about. Lock names match the
// paper's tables (tq[0].qlock, freeInter, Qlock, mem, stackLock[5],
// ...). Every model is written against the harness API and therefore
// runs identically on the simulator and the live backend.
//
// All compute durations are virtual nanoseconds and are multiplied by
// Params.Scale, so experiment running time can be traded against
// trace size without changing contention ratios.
package workloads

import (
	"fmt"
	"sort"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// Params configures a workload run.
type Params struct {
	// Threads is the number of worker threads (the paper sweeps 4–24).
	Threads int
	// Seed drives all randomness; equal seeds give equal simulator
	// traces.
	Seed int64
	// Scale multiplies every compute duration; 1.0 (or 0, treated as
	// 1.0) is the calibrated default.
	Scale float64
	// TwoLock switches workloads with a central task queue (radiosity,
	// tsp) to the Michael–Scott two-lock queue — the paper's
	// optimization under validation.
	TwoLock bool
}

func (p Params) withDefaults(defThreads int) Params {
	if p.Threads <= 0 {
		p.Threads = defThreads
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	return p
}

// scaled multiplies a base duration by the scale factor (zero or
// negative scale means 1.0).
func scaled(p Params, d trace.Time) trace.Time {
	if p.Scale <= 0 || p.Scale == 1 {
		return d
	}
	v := trace.Time(float64(d) * p.Scale)
	if v < 1 && d > 0 {
		v = 1
	}
	return v
}

// jittered returns a duration uniformly in [d/2, 3d/2), scaled.
func jittered(p harness.Proc, params Params, d trace.Time) trace.Time {
	base := scaled(params, d)
	if base <= 1 {
		return base
	}
	return base/2 + trace.Time(p.Rand().Int63n(int64(base)))
}

// BuildFunc constructs a workload's main-thread body against a
// runtime.
type BuildFunc func(rt harness.Runtime, p Params) func(harness.Proc)

// Spec describes one registered workload.
type Spec struct {
	// Name is the registry key (e.g. "radiosity").
	Name string
	// Desc is a one-line description.
	Desc string
	// Paper notes which part of the paper the model reproduces.
	Paper string
	// DefaultThreads is used when Params.Threads is zero.
	DefaultThreads int
	// SupportsTwoLock reports whether Params.TwoLock changes anything.
	SupportsTwoLock bool
	// Build constructs the workload.
	Build BuildFunc
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workloads: duplicate registration of " + s.Name)
	}
	registry[s.Name] = s
}

// Get returns the workload registered under name.
func Get(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists registered workloads alphabetically.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run builds the workload on rt with params (applying its default
// thread count), runs it and returns the trace and elapsed time.
func Run(rt harness.Runtime, spec Spec, p Params) (*trace.Trace, trace.Time, error) {
	p = p.withDefaults(spec.DefaultThreads)
	rt.SetMeta("workload", spec.Name)
	rt.SetMeta("threads", fmt.Sprint(p.Threads))
	if p.TwoLock {
		rt.SetMeta("variant", "twolock")
	}
	return rt.Run(spec.Build(rt, p))
}

// spawnWorkers launches n worker threads named prefix-0..n-1 and joins
// them all — the fork/join skeleton every model shares.
func spawnWorkers(p harness.Proc, n int, prefix string, body func(harness.Proc, int)) {
	kids := make([]harness.Thread, 0, n)
	for i := 0; i < n; i++ {
		i := i
		kids = append(kids, p.Go(fmt.Sprintf("%s-%d", prefix, i), func(q harness.Proc) {
			body(q, i)
		}))
	}
	for _, k := range kids {
		p.Join(k)
	}
}
