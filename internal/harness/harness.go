// Package harness defines the backend-independent runtime API that
// workloads are written against.
//
// It plays the role of the Pthreads API in the paper: a workload
// creates mutexes, barriers, condition variables and channels, spawns
// threads and performs computation, and the backend records every
// synchronization event. Two backends implement the API:
//
//   - internal/sim, a deterministic discrete-event simulator with
//     virtual time (the substrate for all reproduced experiments), and
//   - internal/livetrace, which runs threads as real goroutines with
//     instrumented sync primitives and wall-clock timestamps.
//
// Both produce identical trace formats, so the analyzer never knows
// which backend a trace came from.
package harness

import (
	"math/rand"

	"critlock/internal/trace"
)

// Mutex is an opaque handle to a backend mutex.
type Mutex interface {
	// Name returns the user-visible lock name, as it will appear in
	// analysis tables.
	Name() string
}

// Barrier is an opaque handle to a backend barrier.
type Barrier interface {
	Name() string
	// Parties returns the number of threads that must arrive.
	Parties() int
}

// Cond is an opaque handle to a backend condition variable.
type Cond interface {
	Name() string
}

// Chan is an opaque handle to a backend channel. Channels carry
// anonymous tokens: workloads model the synchronization (who waits on
// whom, and for how long), not the payload.
type Chan interface {
	Name() string
	// Cap returns the buffer capacity (0 for unbuffered channels).
	Cap() int
}

// SelectCase is one arm of Proc.Select.
type SelectCase struct {
	Ch Chan
	// Send selects between sending on Ch (true) and receiving from it
	// (false).
	Send bool
}

// Thread is a handle to a spawned thread, usable for joining.
type Thread interface {
	// ID returns the trace thread ID.
	ID() trace.ThreadID
}

// Proc is the execution context passed to every thread body. All
// methods must be called from the owning thread only.
type Proc interface {
	// ID returns this thread's trace ID.
	ID() trace.ThreadID
	// Compute performs d nanoseconds of computation (virtual time on
	// the simulator, busy-spinning on the live backend).
	Compute(d trace.Time)
	// Lock blocks until m is held exclusively by this thread.
	Lock(m Mutex)
	// TryLock attempts to take m exclusively without blocking. On
	// success it returns true with the lock held (release with
	// Unlock). On failure it returns false and emits no trace events:
	// a failed try never enters the lock's wait queue, so it is
	// invisible to contention analysis by design.
	TryLock(m Mutex) bool
	// Unlock releases an exclusive hold of m.
	Unlock(m Mutex)
	// RLock blocks until m is held shared (reader mode); multiple
	// threads may read-hold concurrently, writers exclude everyone.
	RLock(m Mutex)
	// RUnlock releases a shared hold of m.
	RUnlock(m Mutex)
	// BarrierWait blocks until all parties have arrived at b.
	BarrierWait(b Barrier)
	// Wait atomically releases m and blocks until signalled on c,
	// reacquiring m before returning (condition-variable semantics).
	// The caller must hold m.
	Wait(c Cond, m Mutex)
	// Signal wakes one waiter on c, if any.
	Signal(c Cond)
	// Broadcast wakes all waiters on c.
	Broadcast(c Cond)
	// Send delivers one token on ch, blocking while the buffer is full
	// (or until a receiver arrives, for unbuffered channels). Sending
	// on a closed channel panics.
	Send(ch Chan)
	// Recv takes one token from ch, blocking while it is empty. It
	// returns false when ch is closed and drained.
	Recv(ch Chan) bool
	// Close closes ch: blocked and subsequent receivers drain the
	// buffer, then observe Recv == false. Closing an already-closed
	// channel panics, as does sending on a closed one.
	Close(ch Chan)
	// Select blocks until one of the cases can proceed, performs it
	// and returns its index; when several are ready the lowest index
	// wins (the deterministic stand-in for Go's random choice). With
	// def true it never blocks, returning -1 when no case is ready.
	// The second result is the chosen receive's value-ok flag (true
	// for sends and the default case).
	Select(cases []SelectCase, def bool) (int, bool)
	// Go spawns a new thread running fn and returns its handle.
	Go(name string, fn func(Proc)) Thread
	// Join blocks until t has finished.
	Join(t Thread)
	// Rand returns this thread's deterministic PRNG (seeded from the
	// runtime seed and the thread ID).
	Rand() *rand.Rand
}

// Runtime creates synchronization objects and runs the root thread.
type Runtime interface {
	// NewMutex registers a mutex under the given name.
	NewMutex(name string) Mutex
	// NewBarrier registers a barrier for the given number of parties.
	NewBarrier(name string, parties int) Barrier
	// NewCond registers a condition variable.
	NewCond(name string) Cond
	// NewChan registers a channel with the given buffer capacity
	// (0 = unbuffered).
	NewChan(name string, capacity int) Chan
	// Run executes main as the root thread and blocks until every
	// spawned thread has finished. It returns the collected trace and
	// the elapsed (virtual or wall) time.
	Run(main func(Proc)) (*trace.Trace, trace.Time, error)
	// SetMeta attaches metadata to the resulting trace.
	SetMeta(key, value string)
}
