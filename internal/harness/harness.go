// Package harness defines the backend-independent runtime API that
// workloads are written against.
//
// It plays the role of the Pthreads API in the paper: a workload
// creates mutexes, barriers and condition variables, spawns threads
// and performs computation, and the backend records every
// synchronization event. Two backends implement the API:
//
//   - internal/sim, a deterministic discrete-event simulator with
//     virtual time (the substrate for all reproduced experiments), and
//   - internal/livetrace, which runs threads as real goroutines with
//     instrumented sync primitives and wall-clock timestamps.
//
// Both produce identical trace formats, so the analyzer never knows
// which backend a trace came from.
package harness

import (
	"math/rand"

	"critlock/internal/trace"
)

// Mutex is an opaque handle to a backend mutex.
type Mutex interface {
	// Name returns the user-visible lock name, as it will appear in
	// analysis tables.
	Name() string
}

// Barrier is an opaque handle to a backend barrier.
type Barrier interface {
	Name() string
	// Parties returns the number of threads that must arrive.
	Parties() int
}

// Cond is an opaque handle to a backend condition variable.
type Cond interface {
	Name() string
}

// Thread is a handle to a spawned thread, usable for joining.
type Thread interface {
	// ID returns the trace thread ID.
	ID() trace.ThreadID
}

// Proc is the execution context passed to every thread body. All
// methods must be called from the owning thread only.
type Proc interface {
	// ID returns this thread's trace ID.
	ID() trace.ThreadID
	// Compute performs d nanoseconds of computation (virtual time on
	// the simulator, busy-spinning on the live backend).
	Compute(d trace.Time)
	// Lock blocks until m is held exclusively by this thread.
	Lock(m Mutex)
	// TryLock attempts to take m exclusively without blocking. On
	// success it returns true with the lock held (release with
	// Unlock). On failure it returns false and emits no trace events:
	// a failed try never enters the lock's wait queue, so it is
	// invisible to contention analysis by design.
	TryLock(m Mutex) bool
	// Unlock releases an exclusive hold of m.
	Unlock(m Mutex)
	// RLock blocks until m is held shared (reader mode); multiple
	// threads may read-hold concurrently, writers exclude everyone.
	RLock(m Mutex)
	// RUnlock releases a shared hold of m.
	RUnlock(m Mutex)
	// BarrierWait blocks until all parties have arrived at b.
	BarrierWait(b Barrier)
	// Wait atomically releases m and blocks until signalled on c,
	// reacquiring m before returning (condition-variable semantics).
	// The caller must hold m.
	Wait(c Cond, m Mutex)
	// Signal wakes one waiter on c, if any.
	Signal(c Cond)
	// Broadcast wakes all waiters on c.
	Broadcast(c Cond)
	// Go spawns a new thread running fn and returns its handle.
	Go(name string, fn func(Proc)) Thread
	// Join blocks until t has finished.
	Join(t Thread)
	// Rand returns this thread's deterministic PRNG (seeded from the
	// runtime seed and the thread ID).
	Rand() *rand.Rand
}

// Runtime creates synchronization objects and runs the root thread.
type Runtime interface {
	// NewMutex registers a mutex under the given name.
	NewMutex(name string) Mutex
	// NewBarrier registers a barrier for the given number of parties.
	NewBarrier(name string, parties int) Barrier
	// NewCond registers a condition variable.
	NewCond(name string) Cond
	// Run executes main as the root thread and blocks until every
	// spawned thread has finished. It returns the collected trace and
	// the elapsed (virtual or wall) time.
	Run(main func(Proc)) (*trace.Trace, trace.Time, error)
	// SetMeta attaches metadata to the resulting trace.
	SetMeta(key, value string)
}
