package harness_test

// Channel conformance suite: the simulator and the live runtime must
// implement the harness channel contract identically — rendezvous
// handoff, buffered admission, close-and-drain semantics, select arm
// choice, and misuse panics with matching messages. Every check runs
// against both backends, and every resulting trace must validate and
// analyze (which exercises channel waker resolution end to end).

import (
	"strings"
	"sync/atomic"
	"testing"

	"critlock/internal/core"
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// chanEventCounts tallies channel completion and close events.
func chanEventCounts(tr *trace.Trace) (sends, recvs, closes int) {
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvChanSend:
			sends++
		case trace.EvChanRecv:
			recvs++
		case trace.EvChanClose:
			closes++
		}
	}
	return
}

// TestConformanceChanRendezvous: every token sent on an unbuffered
// channel is received exactly once, and the analysis pairs each
// delivery (sends == recvs, nothing lost or duplicated).
func TestConformanceChanRendezvous(t *testing.T) {
	const items = 25
	var got atomic.Int64
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		ch := rt.NewChan("rdv", 0)
		got.Store(0)
		return func(p harness.Proc) {
			cons := p.Go("consumer", func(q harness.Proc) {
				for q.Recv(ch) {
					got.Add(1)
					q.Compute(500)
				}
			})
			for i := 0; i < items; i++ {
				p.Compute(200)
				p.Send(ch)
			}
			p.Close(ch)
			p.Join(cons)
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if got.Load() != items {
			t.Errorf("received %d, want %d", got.Load(), items)
		}
		cs := an.Chan("rdv")
		if cs == nil {
			t.Fatal("channel \"rdv\" missing from analysis")
		}
		if cs.Capacity != 0 {
			t.Errorf("capacity = %d, want 0", cs.Capacity)
		}
		if cs.Sends != items {
			t.Errorf("sends = %d, want %d", cs.Sends, items)
		}
		// items value receives plus the final closed receive.
		if cs.Recvs != items+1 {
			t.Errorf("recvs = %d, want %d", cs.Recvs, items+1)
		}
		if cs.Closes != 1 {
			t.Errorf("closes = %d, want 1", cs.Closes)
		}
	})
}

// TestConformanceChanBuffered: sends within capacity complete without
// blocking even with no receiver in existence, and a receiver finding
// a stocked buffer takes tokens without blocking.
func TestConformanceChanBuffered(t *testing.T) {
	const capacity = 3
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		ch := rt.NewChan("buf", capacity)
		return func(p harness.Proc) {
			p.Compute(100) // advance the clock so the run has extent
			// No consumer exists yet: these must all be admitted by the
			// buffer alone.
			for i := 0; i < capacity; i++ {
				p.Send(ch)
			}
			// The consumer starts after every send completed, so each
			// of its receives finds a stocked buffer.
			cons := p.Go("consumer", func(q harness.Proc) {
				for i := 0; i < capacity; i++ {
					if !q.Recv(ch) {
						panic("recv reported closed on an open channel")
					}
				}
			})
			p.Join(cons)
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		cs := an.Chan("buf")
		if cs == nil {
			t.Fatal("channel \"buf\" missing from analysis")
		}
		if cs.Capacity != capacity {
			t.Errorf("capacity = %d, want %d", cs.Capacity, capacity)
		}
		if cs.Sends != capacity || cs.BlockedSends != 0 {
			t.Errorf("sends = %d (blocked %d), want %d (blocked 0)", cs.Sends, cs.BlockedSends, capacity)
		}
		if cs.Recvs != capacity || cs.BlockedRecvs != 0 {
			t.Errorf("recvs = %d (blocked %d), want %d (blocked 0)", cs.Recvs, cs.BlockedRecvs, capacity)
		}
	})
}

// TestConformanceChanCloseDrain: closing a stocked channel lets
// receivers drain the buffer before observing closed, and the closed
// observation is itself a traced receive.
func TestConformanceChanCloseDrain(t *testing.T) {
	const stock = 3
	var drained atomic.Int64
	var sawClosed atomic.Bool
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		ch := rt.NewChan("drain", stock+1)
		drained.Store(0)
		sawClosed.Store(false)
		return func(p harness.Proc) {
			p.Compute(100) // advance the clock so the run has extent
			for i := 0; i < stock; i++ {
				p.Send(ch)
			}
			p.Close(ch)
			cons := p.Go("consumer", func(q harness.Proc) {
				for q.Recv(ch) {
					drained.Add(1)
				}
				sawClosed.Store(true)
			})
			p.Join(cons)
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if drained.Load() != stock {
			t.Errorf("drained %d, want %d (close must not discard the buffer)", drained.Load(), stock)
		}
		if !sawClosed.Load() {
			t.Error("consumer never observed the close")
		}
		cs := an.Chan("drain")
		if cs == nil {
			t.Fatal("channel \"drain\" missing from analysis")
		}
		if cs.Recvs != stock+1 {
			t.Errorf("recvs = %d, want %d (drain plus closed observation)", cs.Recvs, stock+1)
		}
		if cs.Closes != 1 {
			t.Errorf("closes = %d, want 1", cs.Closes)
		}
	})
}

// TestConformanceChanSelect: a select with a ready arm takes the
// lowest ready index; a select with a default and nothing ready takes
// the default without emitting channel operations; a select arm on a
// closed channel reports ok == false.
func TestConformanceChanSelect(t *testing.T) {
	var chose, defaulted, closedArm atomic.Int64
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		a := rt.NewChan("sel-a", 1)
		b := rt.NewChan("sel-b", 1)
		chose.Store(-2)
		defaulted.Store(-2)
		closedArm.Store(-2)
		return func(p harness.Proc) {
			p.Compute(100) // advance the clock so the run has extent
			// Nothing is ready: the default must fire.
			idx, ok := p.Select([]harness.SelectCase{{Ch: a}, {Ch: b}}, true)
			if ok {
				defaulted.Store(int64(idx))
			}
			// Stock b only: the receive arm for b must win.
			p.Send(b)
			idx, ok = p.Select([]harness.SelectCase{{Ch: a}, {Ch: b}}, false)
			if ok {
				chose.Store(int64(idx))
			}
			// Close a: its receive arm is permanently ready with
			// ok == false and, at equal readiness, the lowest index wins.
			p.Close(a)
			idx, ok = p.Select([]harness.SelectCase{{Ch: a}, {Ch: b}}, false)
			if !ok {
				closedArm.Store(int64(idx))
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if defaulted.Load() != -1 {
			t.Errorf("default select returned %d, want -1", defaulted.Load())
		}
		if chose.Load() != 1 {
			t.Errorf("select chose arm %d, want 1 (the stocked channel)", chose.Load())
		}
		if closedArm.Load() != 0 {
			t.Errorf("select on closed channel chose arm %d with ok=false, want 0", closedArm.Load())
		}
		// The defaulted select performed no channel operation.
		if cs := an.Chan("sel-a"); cs == nil || cs.Recvs != 1 || cs.Sends != 0 {
			t.Errorf("sel-a stats = %+v, want exactly one (closed) receive", cs)
		}
		if cs := an.Chan("sel-b"); cs == nil || cs.Sends != 1 || cs.Recvs != 1 {
			t.Errorf("sel-b stats = %+v, want one send and one receive", cs)
		}
	})
}

// TestConformanceChanSelectSend: a select send arm against a full
// channel parks until a receiver frees the slot.
func TestConformanceChanSelectSend(t *testing.T) {
	var sentVia atomic.Int64
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		ch := rt.NewChan("sel-send", 1)
		sentVia.Store(-2)
		return func(p harness.Proc) {
			p.Send(ch) // fill the buffer
			kid := p.Go("sender", func(q harness.Proc) {
				idx, ok := q.Select([]harness.SelectCase{{Ch: ch, Send: true}}, false)
				if ok {
					sentVia.Store(int64(idx))
				}
			})
			p.Compute(20_000_000) // let the select park on the full channel
			if !p.Recv(ch) {
				panic("recv reported closed on an open channel")
			}
			p.Join(kid)
			if !p.Recv(ch) {
				panic("the select's send never landed")
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if sentVia.Load() != 0 {
			t.Errorf("select send arm = %d, want 0", sentVia.Load())
		}
		cs := an.Chan("sel-send")
		if cs == nil {
			t.Fatal("channel \"sel-send\" missing from analysis")
		}
		if cs.Sends != 2 || cs.Recvs != 2 {
			t.Errorf("sends/recvs = %d/%d, want 2/2", cs.Sends, cs.Recvs)
		}
	})
}

// TestConformanceChanMisusePanics: sending on or re-closing a closed
// channel must fail the run loudly — on BOTH backends, with the same
// message shape — before any completion event reaches the trace.
func TestConformanceChanMisusePanics(t *testing.T) {
	cases := []struct {
		name      string
		body      func(p harness.Proc, ch harness.Chan)
		wantErr   string
		wantSends int
	}{
		{
			name: "send-on-closed",
			body: func(p harness.Proc, ch harness.Chan) {
				p.Close(ch)
				p.Send(ch)
			},
			wantErr:   `sends on closed channel "ch"`,
			wantSends: 0,
		},
		{
			name: "close-of-closed",
			body: func(p harness.Proc, ch harness.Chan) {
				p.Close(ch)
				p.Close(ch)
			},
			wantErr:   `closes already-closed channel "ch"`,
			wantSends: 0,
		},
		{
			name: "select-send-on-closed",
			body: func(p harness.Proc, ch harness.Chan) {
				p.Close(ch)
				p.Select([]harness.SelectCase{{Ch: ch, Send: true}}, false)
			},
			wantErr:   `sends on closed channel "ch"`,
			wantSends: 0,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, bc := range backends() {
				bc := bc
				t.Run(bc.name, func(t *testing.T) {
					rt := bc.make()
					ch := rt.NewChan("ch", 1)
					tr, _, err := rt.Run(func(p harness.Proc) { tc.body(p, ch) })
					if err == nil {
						t.Fatalf("%s: run succeeded, want loud failure", bc.name)
					}
					if !strings.Contains(err.Error(), tc.wantErr) {
						t.Fatalf("%s: err = %v, want it to contain %q", bc.name, err, tc.wantErr)
					}
					if tr == nil {
						return
					}
					sends, _, _ := chanEventCounts(tr)
					if sends != tc.wantSends {
						t.Errorf("%s: %d send completions reached the trace, want %d",
							bc.name, sends, tc.wantSends)
					}
				})
			}
		})
	}
}

// TestConformanceChanNegativeCapacity: constructing a channel with a
// negative capacity panics immediately on both backends.
func TestConformanceChanNegativeCapacity(t *testing.T) {
	for _, bc := range backends() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("NewChan(-1) did not panic")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "negative channel capacity") {
					t.Fatalf("panic = %v, want a negative-capacity message", r)
				}
			}()
			bc.make().NewChan("bad", -1)
		})
	}
}
