package harness_test

// Backend conformance suite: the simulator and the live runtime must
// implement the harness contract identically — mutual exclusion,
// barrier episodes, condition-variable semantics, join ordering, and
// trace well-formedness. Every check runs against both backends.

import (
	"strings"
	"sync/atomic"
	"testing"

	"critlock/internal/core"
	"critlock/internal/harness"
	"critlock/internal/livetrace"
	"critlock/internal/sim"
	"critlock/internal/trace"
)

type backendCase struct {
	name string
	make func() harness.Runtime
}

func backends() []backendCase {
	return []backendCase{
		{"sim", func() harness.Runtime { return sim.New(sim.Config{Contexts: 8, Seed: 1}) }},
		{"live", func() harness.Runtime { return livetrace.New(livetrace.Config{Seed: 1}) }},
	}
}

// runBoth executes body on every backend and validates + analyzes the
// resulting trace.
func runBoth(t *testing.T, body func(rt harness.Runtime) func(harness.Proc), check func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis)) {
	t.Helper()
	for _, bc := range backends() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			rt := bc.make()
			main := body(rt)
			tr, elapsed, err := rt.Run(main)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if elapsed <= 0 {
				t.Fatal("no time elapsed")
			}
			if err := trace.Validate(tr); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			an, err := core.AnalyzeDefault(tr)
			if err != nil {
				t.Fatalf("analysis failed: %v", err)
			}
			if check != nil {
				check(t, bc.name, tr, an)
			}
		})
	}
}

// TestConformanceMutualExclusion: a counter incremented only under a
// mutex must end exact; the critical-section count must match.
func TestConformanceMutualExclusion(t *testing.T) {
	const workers, iters = 4, 50
	var counter int64 // guarded by m below
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("counter")
		counter = 0
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < workers; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					for j := 0; j < iters; j++ {
						q.Lock(m)
						counter++
						q.Compute(100)
						q.Unlock(m)
					}
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if counter != workers*iters {
			t.Errorf("counter = %d, want %d (mutual exclusion broken)", counter, workers*iters)
		}
		l := an.Lock("counter")
		if l == nil || l.TotalInvocations != workers*iters {
			t.Errorf("invocations = %+v, want %d", l, workers*iters)
		}
	})
}

// TestConformanceBarrierEpisodes: no thread may enter episode k+1
// before every thread finished episode k.
func TestConformanceBarrierEpisodes(t *testing.T) {
	const workers, episodes = 4, 5
	var maxSkew atomic.Int64
	var arrived [episodes]atomic.Int64
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		bar := rt.NewBarrier("phase", workers)
		maxSkew.Store(0)
		for i := range arrived {
			arrived[i].Store(0)
		}
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < workers; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					for ep := 0; ep < episodes; ep++ {
						q.Compute(trace.Time(100 * (1 + q.Rand().Intn(5))))
						arrived[ep].Add(1)
						q.BarrierWait(bar)
						// After departing, every thread must have
						// arrived at this episode.
						if got := arrived[ep].Load(); got != workers {
							maxSkew.Store(int64(ep + 1))
						}
					}
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if maxSkew.Load() != 0 {
			t.Errorf("barrier episode overlap detected (episode %d)", maxSkew.Load())
		}
	})
}

// TestConformanceCondHandoff: condition-variable handoff delivers
// every produced item exactly once, and the mutex is held when Wait
// returns.
func TestConformanceCondHandoff(t *testing.T) {
	const items = 30
	var got int
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("q")
		cv := rt.NewCond("nonempty")
		queue := 0
		closed := false
		got = 0
		return func(p harness.Proc) {
			cons := p.Go("consumer", func(q harness.Proc) {
				for {
					q.Lock(m)
					for queue == 0 && !closed {
						q.Wait(cv, m)
					}
					if queue > 0 {
						queue--
						got++
						q.Unlock(m)
						continue
					}
					q.Unlock(m)
					return
				}
			})
			for i := 0; i < items; i++ {
				p.Compute(50)
				p.Lock(m)
				queue++
				p.Signal(cv)
				p.Unlock(m)
			}
			p.Lock(m)
			closed = true
			p.Broadcast(cv)
			p.Unlock(m)
			p.Join(cons)
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if got != items {
			t.Errorf("consumed %d, want %d", got, items)
		}
	})
}

// TestConformanceJoinOrdering: Join must not return before the
// joinee's side effects are visible.
func TestConformanceJoinOrdering(t *testing.T) {
	var done bool
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		done = false
		return func(p harness.Proc) {
			k := p.Go("kid", func(q harness.Proc) {
				q.Compute(500)
				done = true
			})
			p.Join(k)
			if !done {
				panic("join returned before kid finished")
			}
		}
	}, nil)
}

// TestConformanceTryLock: a TryLock against a held mutex must fail
// without leaving any trace of the attempt; a TryLock against a free,
// unqueued mutex must succeed as an ordinary uncontended acquisition.
func TestConformanceTryLock(t *testing.T) {
	var failedHeld, succeededFree atomic.Bool
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("try")
		tried := rt.NewBarrier("tried", 2)
		released := rt.NewBarrier("released", 2)
		failedHeld.Store(false)
		succeededFree.Store(false)
		return func(p harness.Proc) {
			p.Lock(m)
			kid := p.Go("w", func(q harness.Proc) {
				// Main holds m: the try must fail.
				if !q.TryLock(m) {
					failedHeld.Store(true)
				}
				q.BarrierWait(tried)
				q.BarrierWait(released)
				// Main has released m and will not touch it again:
				// the try must succeed and take a real hold.
				if q.TryLock(m) {
					succeededFree.Store(true)
					q.Compute(1000)
					q.Unlock(m)
				}
			})
			p.BarrierWait(tried)
			p.Unlock(m)
			p.BarrierWait(released)
			p.Join(kid)
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if !failedHeld.Load() {
			t.Error("TryLock succeeded against a held mutex")
		}
		if !succeededFree.Load() {
			t.Error("TryLock failed against a free mutex")
		}
		// The failed try must be invisible: main's hold plus the
		// worker's successful try, nothing contended.
		l := an.Lock("try")
		if l == nil {
			t.Fatal("lock \"try\" missing from analysis")
		}
		if l.TotalInvocations != 2 {
			t.Errorf("invocations = %d, want 2 (failed try must emit nothing)", l.TotalInvocations)
		}
		if l.TotalContended != 0 {
			t.Errorf("contended = %d, want 0 (a successful try is uncontended)", l.TotalContended)
		}
	})
}

// TestConformanceRWLockFairness: both backends implement
// write-preferring reader/writer locks — a reader arriving while a
// writer waits must queue behind it — while readers with no writer in
// sight share the lock concurrently.
func TestConformanceRWLockFairness(t *testing.T) {
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("rw")
		inside := rt.NewBarrier("inside", 2)
		return func(p harness.Proc) {
			// Phase 1: main read-holds; a writer blocks on it; a late
			// reader must queue behind the waiting writer.
			p.RLock(m)
			w := p.Go("writer", func(q harness.Proc) {
				q.Lock(m)
				q.Compute(2_000_000)
				q.Unlock(m)
			})
			p.Compute(20_000_000) // let the writer reach its Lock and block
			r2 := p.Go("late-reader", func(q harness.Proc) {
				q.RLock(m)
				q.Compute(1_000_000)
				q.RUnlock(m)
			})
			p.Compute(20_000_000) // let the late reader queue
			p.RUnlock(m)
			p.Join(w)
			p.Join(r2)

			// Phase 2: two readers must hold the lock at the same
			// time — each arrives at a barrier inside its read-side
			// critical section, which deadlocks unless read holds
			// overlap.
			var kids []harness.Thread
			for i := 0; i < 2; i++ {
				kids = append(kids, p.Go("reader", func(q harness.Proc) {
					q.RLock(m)
					q.BarrierWait(inside)
					q.Compute(1_000_000)
					q.RUnlock(m)
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		l := an.Lock("rw")
		if l == nil {
			t.Fatal("lock \"rw\" missing from analysis")
		}
		if l.TotalInvocations != 5 {
			t.Errorf("invocations = %d, want 5", l.TotalInvocations)
		}
		if l.SharedInvocations != 4 {
			t.Errorf("shared invocations = %d, want 4", l.SharedInvocations)
		}
		if l.TotalContended != 2 {
			t.Errorf("contended = %d, want 2 (writer and late reader)", l.TotalContended)
		}
		// Write preference: the obtain order must be main's read
		// hold, then the writer, then the late reader.
		var obj trace.ObjID = trace.NoObj
		for _, o := range tr.Objects {
			if o.Name == "rw" {
				obj = o.ID
			}
		}
		var kinds []string
		for _, e := range tr.Events {
			if e.Kind == trace.EvLockObtain && e.Obj == obj && len(kinds) < 3 {
				switch {
				case e.Shared() && !e.Contended():
					kinds = append(kinds, "r")
				case !e.Shared() && e.Contended():
					kinds = append(kinds, "W")
				case e.Shared() && e.Contended():
					kinds = append(kinds, "q") // queued reader
				default:
					kinds = append(kinds, "w")
				}
			}
		}
		if want := []string{"r", "W", "q"}; len(kinds) != 3 ||
			kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
			t.Errorf("obtain order = %v, want %v (reader, then writer, then queued reader)", kinds, want)
		}
	})
}

// TestConformanceBroadcastWakesAll: one Broadcast must wake every
// waiter; no Signal events may appear and every wait ends at or after
// the broadcast.
func TestConformanceBroadcastWakesAll(t *testing.T) {
	const waiters = 4
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("flagmu")
		cv := rt.NewCond("flagcv")
		parked := 0 // guarded by m
		ready := false
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < waiters; i++ {
				kids = append(kids, p.Go("waiter", func(q harness.Proc) {
					q.Lock(m)
					parked++
					for !ready {
						q.Wait(cv, m)
					}
					q.Unlock(m)
				}))
			}
			// Wait until every waiter has parked: each increments
			// under m immediately before Wait releases m, so seeing
			// parked == waiters under m means all are registered.
			for {
				p.Lock(m)
				if parked == waiters {
					ready = true
					p.Broadcast(cv)
					p.Unlock(m)
					break
				}
				p.Unlock(m)
				p.Compute(1_000_000)
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		var obj trace.ObjID = trace.NoObj
		for _, o := range tr.Objects {
			if o.Name == "flagcv" {
				obj = o.ID
			}
		}
		var broadcasts, signals, ends int
		var broadcastT trace.Time
		lateEnds := 0
		for _, e := range tr.Events {
			if e.Obj != obj {
				continue
			}
			switch e.Kind {
			case trace.EvCondBroadcast:
				broadcasts++
				broadcastT = e.T
			case trace.EvCondSignal:
				signals++
			case trace.EvCondWaitEnd:
				ends++
				if broadcasts > 0 && e.T >= broadcastT {
					lateEnds++
				}
			}
		}
		if broadcasts != 1 {
			t.Errorf("broadcasts = %d, want 1", broadcasts)
		}
		if signals != 0 {
			t.Errorf("signals = %d, want 0", signals)
		}
		if ends != waiters {
			t.Errorf("wait-ends = %d, want %d (broadcast must wake all)", ends, waiters)
		}
		if lateEnds != ends {
			t.Errorf("%d of %d wait-ends precede the broadcast", ends-lateEnds, ends)
		}
	})
}

// TestConformanceContendedFlag: a lock held across a handshake must
// produce exactly the contended obtains the structure dictates.
func TestConformanceConvoyShape(t *testing.T) {
	const workers = 3
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("conv")
		return func(p harness.Proc) {
			// Main seeds the convoy by holding the lock while workers
			// start (sleep-scale durations so the live backend yields).
			p.Lock(m)
			var kids []harness.Thread
			for i := 0; i < workers; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					q.Lock(m)
					q.Compute(2_000_000)
					q.Unlock(m)
				}))
			}
			p.Compute(20_000_000) // hold long enough for all to queue
			p.Unlock(m)
			for _, k := range kids {
				p.Join(k)
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		l := an.Lock("conv")
		if l.TotalInvocations != workers+1 {
			t.Errorf("invocations = %d, want %d", l.TotalInvocations, workers+1)
		}
		if l.TotalContended != workers {
			t.Errorf("contended = %d, want %d (every worker queued)", l.TotalContended, workers)
		}
		if !l.Critical {
			t.Error("convoy lock not critical")
		}
	})
}

// countLockEvents tallies acquire/obtain/release events for mutexes.
func countLockEvents(tr *trace.Trace) (acq, obt, rel int) {
	for _, ev := range tr.Events {
		switch ev.Kind {
		case trace.EvLockAcquire:
			acq++
		case trace.EvLockObtain:
			obt++
		case trace.EvLockRelease:
			rel++
		}
	}
	return
}

// TestConformanceUnlockViolationsFailLoudly: releasing a mutex the
// thread does not hold must fail the run with a recovered panic — on
// BOTH backends, with the same message shape — and must never emit a
// release event first (a dangling release would silently corrupt the
// analysis; a loud error cannot be mistaken for data).
func TestConformanceUnlockViolationsFailLoudly(t *testing.T) {
	cases := []struct {
		name    string
		body    func(p harness.Proc, m harness.Mutex)
		wantErr string
		wantRel int
	}{
		{
			name: "unlock-of-unheld",
			body: func(p harness.Proc, m harness.Mutex) {
				p.Lock(m)
				p.Unlock(m)
				p.Unlock(m) // second release: not owned
			},
			wantErr: `unlocks "m" it does not own`,
			wantRel: 1, // only the legitimate release reached the trace
		},
		{
			name: "runlock-without-rlock",
			body: func(p harness.Proc, m harness.Mutex) {
				p.RUnlock(m)
			},
			wantErr: `read-unlocks "m" with no readers`,
			wantRel: 0,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, bc := range backends() {
				bc := bc
				t.Run(bc.name, func(t *testing.T) {
					rt := bc.make()
					m := rt.NewMutex("m")
					tr, _, err := rt.Run(func(p harness.Proc) { tc.body(p, m) })
					if err == nil {
						t.Fatalf("%s: run succeeded, want loud failure", bc.name)
					}
					if !strings.Contains(err.Error(), tc.wantErr) {
						t.Fatalf("%s: err = %v, want it to contain %q", bc.name, err, tc.wantErr)
					}
					if tr == nil {
						return
					}
					_, _, rel := countLockEvents(tr)
					if rel != tc.wantRel {
						t.Errorf("%s: %d release events reached the trace, want %d (no dangling release)",
							bc.name, rel, tc.wantRel)
					}
				})
			}
		})
	}
}
