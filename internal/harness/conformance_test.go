package harness_test

// Backend conformance suite: the simulator and the live runtime must
// implement the harness contract identically — mutual exclusion,
// barrier episodes, condition-variable semantics, join ordering, and
// trace well-formedness. Every check runs against both backends.

import (
	"sync/atomic"
	"testing"

	"critlock/internal/core"
	"critlock/internal/harness"
	"critlock/internal/livetrace"
	"critlock/internal/sim"
	"critlock/internal/trace"
)

type backendCase struct {
	name string
	make func() harness.Runtime
}

func backends() []backendCase {
	return []backendCase{
		{"sim", func() harness.Runtime { return sim.New(sim.Config{Contexts: 8, Seed: 1}) }},
		{"live", func() harness.Runtime { return livetrace.New(livetrace.Config{Seed: 1}) }},
	}
}

// runBoth executes body on every backend and validates + analyzes the
// resulting trace.
func runBoth(t *testing.T, body func(rt harness.Runtime) func(harness.Proc), check func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis)) {
	t.Helper()
	for _, bc := range backends() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			rt := bc.make()
			main := body(rt)
			tr, elapsed, err := rt.Run(main)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if elapsed <= 0 {
				t.Fatal("no time elapsed")
			}
			if err := trace.Validate(tr); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			an, err := core.AnalyzeDefault(tr)
			if err != nil {
				t.Fatalf("analysis failed: %v", err)
			}
			if check != nil {
				check(t, bc.name, tr, an)
			}
		})
	}
}

// TestConformanceMutualExclusion: a counter incremented only under a
// mutex must end exact; the critical-section count must match.
func TestConformanceMutualExclusion(t *testing.T) {
	const workers, iters = 4, 50
	var counter int64 // guarded by m below
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("counter")
		counter = 0
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < workers; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					for j := 0; j < iters; j++ {
						q.Lock(m)
						counter++
						q.Compute(100)
						q.Unlock(m)
					}
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if counter != workers*iters {
			t.Errorf("counter = %d, want %d (mutual exclusion broken)", counter, workers*iters)
		}
		l := an.Lock("counter")
		if l == nil || l.TotalInvocations != workers*iters {
			t.Errorf("invocations = %+v, want %d", l, workers*iters)
		}
	})
}

// TestConformanceBarrierEpisodes: no thread may enter episode k+1
// before every thread finished episode k.
func TestConformanceBarrierEpisodes(t *testing.T) {
	const workers, episodes = 4, 5
	var maxSkew atomic.Int64
	var arrived [episodes]atomic.Int64
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		bar := rt.NewBarrier("phase", workers)
		maxSkew.Store(0)
		for i := range arrived {
			arrived[i].Store(0)
		}
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < workers; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					for ep := 0; ep < episodes; ep++ {
						q.Compute(trace.Time(100 * (1 + q.Rand().Intn(5))))
						arrived[ep].Add(1)
						q.BarrierWait(bar)
						// After departing, every thread must have
						// arrived at this episode.
						if got := arrived[ep].Load(); got != workers {
							maxSkew.Store(int64(ep + 1))
						}
					}
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if maxSkew.Load() != 0 {
			t.Errorf("barrier episode overlap detected (episode %d)", maxSkew.Load())
		}
	})
}

// TestConformanceCondHandoff: condition-variable handoff delivers
// every produced item exactly once, and the mutex is held when Wait
// returns.
func TestConformanceCondHandoff(t *testing.T) {
	const items = 30
	var got int
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("q")
		cv := rt.NewCond("nonempty")
		queue := 0
		closed := false
		got = 0
		return func(p harness.Proc) {
			cons := p.Go("consumer", func(q harness.Proc) {
				for {
					q.Lock(m)
					for queue == 0 && !closed {
						q.Wait(cv, m)
					}
					if queue > 0 {
						queue--
						got++
						q.Unlock(m)
						continue
					}
					q.Unlock(m)
					return
				}
			})
			for i := 0; i < items; i++ {
				p.Compute(50)
				p.Lock(m)
				queue++
				p.Signal(cv)
				p.Unlock(m)
			}
			p.Lock(m)
			closed = true
			p.Broadcast(cv)
			p.Unlock(m)
			p.Join(cons)
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		if got != items {
			t.Errorf("consumed %d, want %d", got, items)
		}
	})
}

// TestConformanceJoinOrdering: Join must not return before the
// joinee's side effects are visible.
func TestConformanceJoinOrdering(t *testing.T) {
	var done bool
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		done = false
		return func(p harness.Proc) {
			k := p.Go("kid", func(q harness.Proc) {
				q.Compute(500)
				done = true
			})
			p.Join(k)
			if !done {
				panic("join returned before kid finished")
			}
		}
	}, nil)
}

// TestConformanceContendedFlag: a lock held across a handshake must
// produce exactly the contended obtains the structure dictates.
func TestConformanceConvoyShape(t *testing.T) {
	const workers = 3
	runBoth(t, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("conv")
		return func(p harness.Proc) {
			// Main seeds the convoy by holding the lock while workers
			// start (sleep-scale durations so the live backend yields).
			p.Lock(m)
			var kids []harness.Thread
			for i := 0; i < workers; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					q.Lock(m)
					q.Compute(2_000_000)
					q.Unlock(m)
				}))
			}
			p.Compute(20_000_000) // hold long enough for all to queue
			p.Unlock(m)
			for _, k := range kids {
				p.Join(k)
			}
		}
	}, func(t *testing.T, name string, tr *trace.Trace, an *core.Analysis) {
		l := an.Lock("conv")
		if l.TotalInvocations != workers+1 {
			t.Errorf("invocations = %d, want %d", l.TotalInvocations, workers+1)
		}
		if l.TotalContended != workers {
			t.Errorf("contended = %d, want %d (every worker queued)", l.TotalContended, workers)
		}
		if !l.Critical {
			t.Error("convoy lock not critical")
		}
	})
}
