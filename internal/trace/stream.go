package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Streaming trace format.
//
// The batch format (WriteBinary) requires the whole trace in memory
// and is written once at the end of a run — fine for the simulator,
// wasteful for long live recordings. The stream format interleaves
// registration and event records in emission order so a recording can
// be spilled to disk continuously and survives truncation (a crash
// loses only the tail):
//
//	magic "CLTS", uvarint version
//	records, each starting with a tag byte:
//	  1 meta    (string key, string value)
//	  2 thread  (string name, varint creator)
//	  3 object  (byte kind, string name, uvarint parties)
//	  4 event   (varint delta-T vs previous event record, uvarint
//	             thread, byte kind, varint obj, varint arg)
//	  5 end
//
// Event sequence numbers are assigned by arrival order at the stream
// (they are a tie-breaker, not a causality record). ReadStream sorts
// by (T, Seq) and tolerates a missing end record.

const (
	streamMagic   = "CLTS"
	streamVersion = 1

	recMeta   = 1
	recThread = 2
	recObject = 3
	recEvent  = 4
	recEnd    = 5
)

// StreamWriter spills trace records to w as they happen. It is safe
// for concurrent use (the live backend emits from many goroutines).
// Attach to a Collector with Collector.SetSink.
type StreamWriter struct {
	mu    sync.Mutex
	w     *bufio.Writer
	prevT Time
	err   error
	ended bool
}

// NewStreamWriter writes the stream header and returns the writer.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(streamMagic); err != nil {
		return nil, err
	}
	sw := &StreamWriter{w: bw}
	writeUvarint(bw, streamVersion)
	return sw, sw.w.Flush()
}

func (sw *StreamWriter) record(tag byte, fill func()) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return sw.err
	}
	if sw.ended {
		sw.err = fmt.Errorf("trace: stream already closed")
		return sw.err
	}
	if err := sw.w.WriteByte(tag); err != nil {
		sw.err = err
		return err
	}
	fill()
	return sw.err
}

// Meta records a metadata pair.
func (sw *StreamWriter) Meta(key, value string) error {
	return sw.record(recMeta, func() {
		writeString(sw.w, key)
		writeString(sw.w, value)
	})
}

// Thread records a thread registration. Threads must be registered in
// ID order (the Collector guarantees this).
func (sw *StreamWriter) Thread(name string, creator ThreadID) error {
	return sw.record(recThread, func() {
		writeString(sw.w, name)
		writeVarint(sw.w, int64(creator))
	})
}

// Object records a synchronization object registration in ID order.
func (sw *StreamWriter) Object(kind ObjKind, name string, parties int) error {
	return sw.record(recObject, func() {
		sw.w.WriteByte(byte(kind))
		writeString(sw.w, name)
		writeUvarint(sw.w, uint64(parties))
	})
}

// Event records one event.
func (sw *StreamWriter) Event(e Event) error {
	return sw.record(recEvent, func() {
		writeVarint(sw.w, int64(e.T-sw.prevT))
		sw.prevT = e.T
		writeUvarint(sw.w, uint64(e.Thread))
		sw.w.WriteByte(byte(e.Kind))
		writeVarint(sw.w, int64(e.Obj))
		writeVarint(sw.w, e.Arg)
	})
}

// Close writes the end record and flushes. The underlying writer is
// not closed.
func (sw *StreamWriter) Close() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return sw.err
	}
	if sw.ended {
		return nil
	}
	sw.ended = true
	if err := sw.w.WriteByte(recEnd); err != nil {
		sw.err = err
		return err
	}
	sw.err = sw.w.Flush()
	return sw.err
}

// Flush forces buffered records out (checkpointing a live recording).
func (sw *StreamWriter) Flush() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// ReadStream reconstructs a Trace from a stream. A truncated stream
// (no end record, or a record cut mid-way) yields the prefix that was
// durably written, with Truncated reported via the error
// ErrTruncatedStream wrapped — callers may choose to proceed with the
// partial trace.
func ReadStream(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading stream magic: %w", err)
	}
	if string(magic) != streamMagic {
		return nil, fmt.Errorf("trace: bad stream magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading stream version: %w", err)
	}
	if version != streamVersion {
		return nil, fmt.Errorf("trace: unsupported stream version %d", version)
	}

	tr := &Trace{Meta: map[string]string{}}
	var prevT Time
	seq := uint64(0)
	ended := false

loop:
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch tag {
		case recMeta:
			k, err := readString(br)
			if err != nil {
				return partialStream(tr, err)
			}
			v, err := readString(br)
			if err != nil {
				return partialStream(tr, err)
			}
			tr.Meta[k] = v
		case recThread:
			name, err := readString(br)
			if err != nil {
				return partialStream(tr, err)
			}
			creator, err := binary.ReadVarint(br)
			if err != nil {
				return partialStream(tr, err)
			}
			tr.Threads = append(tr.Threads, ThreadInfo{
				ID: ThreadID(len(tr.Threads)), Name: name, Creator: ThreadID(creator),
			})
		case recObject:
			kind, err := br.ReadByte()
			if err != nil {
				return partialStream(tr, err)
			}
			name, err := readString(br)
			if err != nil {
				return partialStream(tr, err)
			}
			parties, err := binary.ReadUvarint(br)
			if err != nil {
				return partialStream(tr, err)
			}
			tr.Objects = append(tr.Objects, ObjectInfo{
				ID: ObjID(len(tr.Objects)), Kind: ObjKind(kind), Name: name, Parties: int(parties),
			})
		case recEvent:
			dt, err := binary.ReadVarint(br)
			if err != nil {
				return partialStream(tr, err)
			}
			thread, err := binary.ReadUvarint(br)
			if err != nil {
				return partialStream(tr, err)
			}
			kind, err := br.ReadByte()
			if err != nil {
				return partialStream(tr, err)
			}
			obj, err := binary.ReadVarint(br)
			if err != nil {
				return partialStream(tr, err)
			}
			arg, err := binary.ReadVarint(br)
			if err != nil {
				return partialStream(tr, err)
			}
			if !EventKind(kind).Valid() {
				return nil, fmt.Errorf("trace: stream event %d: invalid kind %d", seq, kind)
			}
			if thread >= uint64(len(tr.Threads)) {
				return nil, fmt.Errorf("trace: stream event %d: thread %d not registered", seq, thread)
			}
			seq++
			prevT += Time(dt)
			tr.Events = append(tr.Events, Event{
				T: prevT, Seq: seq, Thread: ThreadID(thread),
				Kind: EventKind(kind), Obj: ObjID(obj), Arg: arg,
			})
		case recEnd:
			ended = true
			break loop
		default:
			return nil, fmt.Errorf("trace: unknown stream record tag %d", tag)
		}
	}

	SortEvents(tr.Events)
	if !ended {
		return tr, fmt.Errorf("trace: %w", ErrTruncatedStream)
	}
	return tr, nil
}

// ErrTruncatedStream marks a stream without an end record; the
// returned trace holds the durable prefix.
var ErrTruncatedStream = fmt.Errorf("stream %w (no end record)", ErrTruncated)

// partialStream is returned when a record was cut mid-way.
func partialStream(tr *Trace, cause error) (*Trace, error) {
	SortEvents(tr.Events)
	return tr, fmt.Errorf("trace: %w (last record cut: %v)", ErrTruncatedStream, cause)
}
