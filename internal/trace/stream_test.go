package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// streamOf pipes a trace's content through a StreamWriter in the same
// order a collector would.
func streamOf(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range tr.Meta {
		if err := sw.Meta(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, th := range tr.Threads {
		if err := sw.Thread(th.Name, th.Creator); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range tr.Objects {
		if err := sw.Object(o.Kind, o.Name, o.Parties); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range tr.Events {
		if err := sw.Event(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamRoundTrip(t *testing.T) {
	tr := buildSampleTrace()
	raw := streamOf(t, tr)
	got, err := ReadStream(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if !reflect.DeepEqual(got.Threads, tr.Threads) {
		t.Errorf("threads differ: %+v vs %+v", got.Threads, tr.Threads)
	}
	if !reflect.DeepEqual(got.Objects, tr.Objects) {
		t.Errorf("objects differ")
	}
	if !reflect.DeepEqual(got.Meta, tr.Meta) {
		t.Errorf("meta differ: %v vs %v", got.Meta, tr.Meta)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(tr.Events))
	}
	// Sequence numbers are re-assigned by arrival, but (T, kind,
	// thread, obj, arg) must survive in order.
	for i := range tr.Events {
		a, b := tr.Events[i], got.Events[i]
		if a.T != b.T || a.Kind != b.Kind || a.Thread != b.Thread || a.Obj != b.Obj || a.Arg != b.Arg {
			t.Fatalf("event %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestStreamTruncationTolerated(t *testing.T) {
	tr := buildSampleTrace()
	raw := streamOf(t, tr)
	// Cut off the end record and a bit more: the prefix must load.
	cut := raw[:len(raw)-8]
	got, err := ReadStream(bytes.NewReader(cut))
	if err == nil || !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("err = %v, want ErrTruncatedStream", err)
	}
	if got == nil || len(got.Events) == 0 {
		t.Fatal("no durable prefix returned")
	}
	if len(got.Events) >= len(tr.Events) {
		t.Fatalf("prefix has %d events, original %d", len(got.Events), len(tr.Events))
	}
}

func TestStreamRejectsGarbage(t *testing.T) {
	if _, err := ReadStream(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sw.Close()
	raw := append(buf.Bytes()[:len(buf.Bytes())-1], 99) // unknown tag instead of end
	if _, err := ReadStream(bytes.NewReader(raw)); err == nil {
		t.Error("unknown record tag accepted")
	}
}

func TestStreamWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := sw.Meta("k", "v"); err == nil {
		t.Error("write after close accepted")
	}
}

// TestCollectorSinkMirrors: a collector with an attached sink produces
// a stream equivalent to its Finish() trace, including registrations
// replayed from before the attach.
func TestCollectorSinkMirrors(t *testing.T) {
	c := NewCollector()
	c.SetMeta("workload", "stream-unit")
	early := c.RegisterThread("early", NoThread) // registered before the sink attaches

	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetSink(sw); err != nil {
		t.Fatal(err)
	}

	late := c.RegisterThread("late", early.Thread())
	m := c.RegisterObject(ObjMutex, "m", 0)
	c.SetMeta("phase", "2")

	early.Emit(0, EvThreadStart, NoObj, int64(NoThread))
	late.Emit(1, EvThreadStart, NoObj, int64(early.Thread()))
	early.Emit(2, EvLockAcquire, m, 0)
	early.Emit(2, EvLockObtain, m, 0)
	early.Emit(5, EvLockRelease, m, 0)
	late.Emit(6, EvThreadExit, NoObj, 0)
	early.Emit(7, EvThreadExit, NoObj, 0)

	batch := c.Finish()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	streamed, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if !reflect.DeepEqual(streamed.Threads, batch.Threads) {
		t.Errorf("threads: %+v vs %+v", streamed.Threads, batch.Threads)
	}
	if !reflect.DeepEqual(streamed.Meta, batch.Meta) {
		t.Errorf("meta: %v vs %v", streamed.Meta, batch.Meta)
	}
	if len(streamed.Events) != len(batch.Events) {
		t.Fatalf("events: %d vs %d", len(streamed.Events), len(batch.Events))
	}
	for i := range batch.Events {
		a, b := batch.Events[i], streamed.Events[i]
		if a.T != b.T || a.Kind != b.Kind || a.Thread != b.Thread || a.Obj != b.Obj || a.Arg != b.Arg {
			t.Fatalf("event %d: %v vs %v", i, a, b)
		}
	}
}
