package trace

import (
	"errors"
	"fmt"
)

// ValidationError aggregates all problems found in a trace.
type ValidationError struct {
	Problems []string
}

// Error joins the first few problems into one message.
func (e *ValidationError) Error() string {
	const show = 5
	msg := fmt.Sprintf("trace: %d validation problem(s)", len(e.Problems))
	for i, p := range e.Problems {
		if i == show {
			msg += fmt.Sprintf("; ... and %d more", len(e.Problems)-show)
			break
		}
		msg += "; " + p
	}
	return msg
}

// Validate checks the structural well-formedness of a trace:
//
//   - events sorted by (T, Seq), with thread/object IDs in range;
//   - per thread: starts with thread-start, ends with thread-exit, and
//     no events outside that window;
//   - per (thread, mutex): acquire → obtain → release sequences, with
//     no release of a lock the thread does not hold;
//   - per (thread, barrier/cond): arrive/depart and wait-begin/wait-end
//     correctly bracketed;
//   - per (thread, chan): send/recv begin → completion sequences, with
//     select-chosen completions preceded by a select event, and no
//     channel closed twice;
//   - lock events reference mutex objects, barrier events barriers,
//     cond events condvars, channel events channels;
//   - thread-create/thread-start and join-begin/join-end reference
//     existing threads.
//
// A nil return means the trace can safely be fed to the analyzer.
func Validate(tr *Trace) error {
	var v validator
	v.run(tr)
	if len(v.problems) == 0 {
		return nil
	}
	return &ValidationError{Problems: v.problems}
}

type validator struct {
	problems []string
}

func (v *validator) errf(format string, args ...any) {
	if len(v.problems) < 1000 { // cap memory on pathological traces
		v.problems = append(v.problems, fmt.Sprintf(format, args...))
	}
}

type threadState struct {
	started bool
	exited  bool
	// held maps mutex → hold mode (LockArgShared bit) while the
	// thread holds it.
	held map[ObjID]int64
	// pendingAcquire maps mutex → true between acquire and obtain.
	pendingAcquire map[ObjID]bool
	// inBarrier maps barrier → true between arrive and depart.
	inBarrier map[ObjID]bool
	// inCondWait maps cond → true between wait-begin and wait-end.
	inCondWait map[ObjID]bool
	// pendingSend/pendingRecv map chan → true between a channel op's
	// begin and its completion.
	pendingSend map[ObjID]bool
	pendingRecv map[ObjID]bool
	// inSelect is true between a select event and the completion of
	// its chosen case (a select resolved by default leaves it set; the
	// next select-chosen completion still needs a fresh select event,
	// which simply re-arms the flag).
	inSelect bool
}

func (v *validator) run(tr *Trace) {
	states := make([]threadState, len(tr.Threads))
	for i := range states {
		states[i] = threadState{
			held:           make(map[ObjID]int64),
			pendingAcquire: make(map[ObjID]bool),
			inBarrier:      make(map[ObjID]bool),
			inCondWait:     make(map[ObjID]bool),
			pendingSend:    make(map[ObjID]bool),
			pendingRecv:    make(map[ObjID]bool),
		}
	}
	closedChans := make(map[ObjID]bool)

	objKind := func(id ObjID) (ObjKind, bool) {
		if id < 0 || int(id) >= len(tr.Objects) {
			return 0, false
		}
		return tr.Objects[id].Kind, true
	}

	var prevT Time
	var prevSeq uint64
	for i, e := range tr.Events {
		if i > 0 && (e.T < prevT || (e.T == prevT && e.Seq <= prevSeq)) {
			v.errf("event %d out of order (t=%d seq=%d after t=%d seq=%d)", i, e.T, e.Seq, prevT, prevSeq)
		}
		prevT, prevSeq = e.T, e.Seq
		if !e.Kind.Valid() {
			v.errf("event %d: invalid kind %d", i, e.Kind)
			continue
		}
		if e.Thread < 0 || int(e.Thread) >= len(tr.Threads) {
			v.errf("event %d: thread %d out of range", i, e.Thread)
			continue
		}
		st := &states[e.Thread]
		if e.Kind != EvThreadStart && !st.started {
			v.errf("event %d: thread %d has %s before thread-start", i, e.Thread, e.Kind)
		}
		if st.exited {
			v.errf("event %d: thread %d has %s after thread-exit", i, e.Thread, e.Kind)
		}

		switch e.Kind {
		case EvThreadStart:
			if st.started {
				v.errf("event %d: duplicate thread-start for thread %d", i, e.Thread)
			}
			st.started = true
			if e.Thread != 0 {
				creator := ThreadID(e.Arg)
				if creator < 0 || int(creator) >= len(tr.Threads) {
					v.errf("event %d: thread-start creator %d out of range", i, e.Arg)
				}
			}
		case EvThreadExit:
			st.exited = true
			for m := range st.held {
				v.errf("event %d: thread %d exits holding mutex %q", i, e.Thread, tr.ObjName(m))
			}
		case EvThreadCreate, EvJoinBegin, EvJoinEnd:
			target := ThreadID(e.Arg)
			if target < 0 || int(target) >= len(tr.Threads) {
				v.errf("event %d: %s target thread %d out of range", i, e.Kind, e.Arg)
			}
		case EvLockAcquire, EvLockObtain, EvLockRelease:
			kind, ok := objKind(e.Obj)
			if !ok || kind != ObjMutex {
				v.errf("event %d: %s on non-mutex object %d", i, e.Kind, e.Obj)
				continue
			}
			switch e.Kind {
			case EvLockAcquire:
				if st.pendingAcquire[e.Obj] {
					v.errf("event %d: thread %d double-acquire of %q", i, e.Thread, tr.ObjName(e.Obj))
				}
				if _, holds := st.held[e.Obj]; holds {
					v.errf("event %d: thread %d recursive acquire of %q", i, e.Thread, tr.ObjName(e.Obj))
				}
				st.pendingAcquire[e.Obj] = true
			case EvLockObtain:
				if !st.pendingAcquire[e.Obj] {
					v.errf("event %d: thread %d obtain of %q without acquire", i, e.Thread, tr.ObjName(e.Obj))
				}
				delete(st.pendingAcquire, e.Obj)
				st.held[e.Obj] = e.Arg & LockArgShared
			case EvLockRelease:
				mode, holds := st.held[e.Obj]
				if !holds {
					v.errf("event %d: thread %d releases %q it does not hold", i, e.Thread, tr.ObjName(e.Obj))
				} else if mode != e.Arg&LockArgShared {
					v.errf("event %d: thread %d releases %q in the wrong mode", i, e.Thread, tr.ObjName(e.Obj))
				}
				delete(st.held, e.Obj)
			}
		case EvBarrierArrive, EvBarrierDepart:
			kind, ok := objKind(e.Obj)
			if !ok || kind != ObjBarrier {
				v.errf("event %d: %s on non-barrier object %d", i, e.Kind, e.Obj)
				continue
			}
			if e.Kind == EvBarrierArrive {
				if st.inBarrier[e.Obj] {
					v.errf("event %d: thread %d re-arrives at barrier %q", i, e.Thread, tr.ObjName(e.Obj))
				}
				st.inBarrier[e.Obj] = true
			} else {
				if !st.inBarrier[e.Obj] {
					v.errf("event %d: thread %d departs barrier %q without arriving", i, e.Thread, tr.ObjName(e.Obj))
				}
				delete(st.inBarrier, e.Obj)
			}
		case EvCondWaitBegin, EvCondWaitEnd, EvCondSignal, EvCondBroadcast:
			kind, ok := objKind(e.Obj)
			if !ok || kind != ObjCond {
				v.errf("event %d: %s on non-cond object %d", i, e.Kind, e.Obj)
				continue
			}
			switch e.Kind {
			case EvCondWaitBegin:
				if st.inCondWait[e.Obj] {
					v.errf("event %d: thread %d nested cond-wait on %q", i, e.Thread, tr.ObjName(e.Obj))
				}
				st.inCondWait[e.Obj] = true
			case EvCondWaitEnd:
				if !st.inCondWait[e.Obj] {
					v.errf("event %d: thread %d cond-wait-end on %q without begin", i, e.Thread, tr.ObjName(e.Obj))
				}
				delete(st.inCondWait, e.Obj)
			}
		case EvChanSendBegin, EvChanSend, EvChanRecvBegin, EvChanRecv, EvChanClose:
			kind, ok := objKind(e.Obj)
			if !ok || kind != ObjChan {
				v.errf("event %d: %s on non-chan object %d", i, e.Kind, e.Obj)
				continue
			}
			switch e.Kind {
			case EvChanSendBegin:
				if st.pendingSend[e.Obj] {
					v.errf("event %d: thread %d nested send on %q", i, e.Thread, tr.ObjName(e.Obj))
				}
				st.pendingSend[e.Obj] = true
			case EvChanSend:
				if e.Arg&ChanArgSelect != 0 {
					if !st.inSelect {
						v.errf("event %d: thread %d select-chosen send on %q without select", i, e.Thread, tr.ObjName(e.Obj))
					}
					st.inSelect = false
				} else {
					if !st.pendingSend[e.Obj] {
						v.errf("event %d: thread %d send on %q without begin", i, e.Thread, tr.ObjName(e.Obj))
					}
					delete(st.pendingSend, e.Obj)
				}
			case EvChanRecvBegin:
				if st.pendingRecv[e.Obj] {
					v.errf("event %d: thread %d nested recv on %q", i, e.Thread, tr.ObjName(e.Obj))
				}
				st.pendingRecv[e.Obj] = true
			case EvChanRecv:
				if e.Arg&ChanArgSelect != 0 {
					if !st.inSelect {
						v.errf("event %d: thread %d select-chosen recv on %q without select", i, e.Thread, tr.ObjName(e.Obj))
					}
					st.inSelect = false
				} else {
					if !st.pendingRecv[e.Obj] {
						v.errf("event %d: thread %d recv on %q without begin", i, e.Thread, tr.ObjName(e.Obj))
					}
					delete(st.pendingRecv, e.Obj)
				}
			case EvChanClose:
				if closedChans[e.Obj] {
					v.errf("event %d: channel %q closed twice", i, tr.ObjName(e.Obj))
				}
				closedChans[e.Obj] = true
			}
		case EvSelect:
			if e.Obj != NoObj {
				v.errf("event %d: select with object %d (want none)", i, e.Obj)
			}
			st.inSelect = true
		}
	}

	for id := range states {
		st := &states[id]
		if !st.started && !st.exited {
			// Thread registered but never ran: tolerated (e.g. snapshot
			// mid-run), but flag threads that started and never exited.
			continue
		}
		if st.started && !st.exited {
			v.errf("thread %d started but never exited", id)
		}
		for m := range st.pendingAcquire {
			v.errf("thread %d has unresolved acquire of %q", id, tr.ObjName(m))
		}
		for c := range st.pendingSend {
			v.errf("thread %d has unresolved send on %q", id, tr.ObjName(c))
		}
		for c := range st.pendingRecv {
			v.errf("thread %d has unresolved recv on %q", id, tr.ObjName(c))
		}
	}
}

// ErrEmptyTrace is returned by analyses on traces with no events.
var ErrEmptyTrace = errors.New("trace: empty trace")
