package trace

import (
	"strings"
	"testing"
)

func validTrace() *Trace { return buildSampleTrace() }

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := Validate(validTrace()); err != nil {
		t.Fatalf("Validate(valid) = %v", err)
	}
}

func mustInvalid(t *testing.T, tr *Trace, wantSubstr string) {
	t.Helper()
	err := Validate(tr)
	if err == nil {
		t.Fatalf("Validate accepted trace, want error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("Validate error = %v, want substring %q", err, wantSubstr)
	}
}

func TestValidateOutOfOrder(t *testing.T) {
	tr := validTrace()
	tr.Events[0], tr.Events[1] = tr.Events[1], tr.Events[0]
	mustInvalid(t, tr, "out of order")
}

func TestValidateReleaseWithoutHold(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	m := b.Mutex("L1")
	b.Start(0, main)
	b.Event(5, main, EvLockRelease, m, 0)
	b.Exit(10, main)
	mustInvalid(t, b.Trace(), "does not hold")
}

func TestValidateObtainWithoutAcquire(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	m := b.Mutex("L1")
	b.Start(0, main)
	b.Event(5, main, EvLockObtain, m, 0)
	b.Event(6, main, EvLockRelease, m, 0)
	b.Exit(10, main)
	mustInvalid(t, b.Trace(), "without acquire")
}

func TestValidateExitHoldingLock(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	m := b.Mutex("L1")
	b.Start(0, main)
	b.Event(5, main, EvLockAcquire, m, 0)
	b.Event(5, main, EvLockObtain, m, 0)
	b.Exit(10, main)
	mustInvalid(t, b.Trace(), "exits holding")
}

func TestValidateEventBeforeStart(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	m := b.Mutex("L1")
	b.CS(main, m, 0, 0, 1)
	b.Start(2, main)
	b.Exit(10, main)
	mustInvalid(t, b.Trace(), "before thread-start")
}

func TestValidateEventAfterExit(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	b.Start(0, main)
	b.Exit(5, main)
	b.Event(6, main, EvThreadCreate, NoObj, 0)
	mustInvalid(t, b.Trace(), "after thread-exit")
}

func TestValidateNeverExits(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	b.Start(0, main)
	mustInvalid(t, b.Trace(), "never exited")
}

func TestValidateLockOnBarrier(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	bar := b.Barrier("bar", 2)
	b.Start(0, main)
	b.CS(main, bar, 1, 1, 2)
	b.Exit(3, main)
	mustInvalid(t, b.Trace(), "non-mutex")
}

func TestValidateBarrierOnMutex(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	m := b.Mutex("L1")
	b.Start(0, main)
	b.BarrierWait(main, m, 1, 2, true)
	b.Exit(3, main)
	mustInvalid(t, b.Trace(), "non-barrier")
}

func TestValidateCondOnMutex(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	m := b.Mutex("L1")
	b.Start(0, main)
	b.Event(1, main, EvCondSignal, m, 0)
	b.Exit(3, main)
	mustInvalid(t, b.Trace(), "non-cond")
}

func TestValidateDepartWithoutArrive(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	bar := b.Barrier("bar", 1)
	b.Start(0, main)
	b.Event(1, main, EvBarrierDepart, bar, 1)
	b.Exit(3, main)
	mustInvalid(t, b.Trace(), "without arriving")
}

func TestValidateWaitEndWithoutBegin(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	cv := b.Cond("cv")
	b.Start(0, main)
	b.Event(1, main, EvCondWaitEnd, cv, 0)
	b.Exit(3, main)
	mustInvalid(t, b.Trace(), "without begin")
}

func TestValidateBadJoinTarget(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	b.Start(0, main)
	b.Join(main, 42, 1, 2)
	b.Exit(3, main)
	mustInvalid(t, b.Trace(), "out of range")
}

func TestValidateRecursiveAcquire(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	m := b.Mutex("L1")
	b.Start(0, main)
	b.Event(1, main, EvLockAcquire, m, 0)
	b.Event(1, main, EvLockObtain, m, 0)
	b.Event(2, main, EvLockAcquire, m, 0)
	b.Event(2, main, EvLockObtain, m, 0)
	b.Event(3, main, EvLockRelease, m, 0)
	b.Event(4, main, EvLockRelease, m, 0)
	b.Exit(5, main)
	mustInvalid(t, b.Trace(), "recursive")
}

func TestValidationErrorMessageCapped(t *testing.T) {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	m := b.Mutex("L1")
	b.Start(0, main)
	for i := Time(1); i <= 10; i++ {
		b.Event(i, main, EvLockRelease, m, 0)
	}
	b.Exit(20, main)
	err := Validate(b.Trace())
	if err == nil {
		t.Fatal("expected error")
	}
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type %T, want *ValidationError", err)
	}
	if len(ve.Problems) != 10 {
		t.Errorf("got %d problems, want 10", len(ve.Problems))
	}
	if !strings.Contains(err.Error(), "and 5 more") {
		t.Errorf("message not truncated: %v", err)
	}
}

func TestValidateSharedHolds(t *testing.T) {
	// Two threads read-holding simultaneously is legal.
	b := NewBuilder()
	t1 := b.Thread("t1", NoThread)
	t2 := b.Thread("t2", t1)
	m := b.Mutex("rw")
	b.Start(0, t1)
	b.Start(0, t2)
	b.SharedCS(t1, m, 1, 1, 10)
	b.SharedCS(t2, m, 2, 2, 8)
	b.Exit(20, t1)
	b.Exit(20, t2)
	if err := Validate(b.Trace()); err != nil {
		t.Fatalf("concurrent shared holds rejected: %v", err)
	}
}

func TestValidateWrongModeRelease(t *testing.T) {
	b := NewBuilder()
	t1 := b.Thread("t1", NoThread)
	m := b.Mutex("rw")
	b.Start(0, t1)
	b.Event(1, t1, EvLockAcquire, m, LockArgShared)
	b.Event(1, t1, EvLockObtain, m, LockArgShared)
	b.Event(5, t1, EvLockRelease, m, 0) // exclusive release of a shared hold
	b.Exit(10, t1)
	mustInvalid(t, b.Trace(), "wrong mode")
}

func TestSharedEventAccessors(t *testing.T) {
	e := Event{Kind: EvLockObtain, Arg: LockArgShared | LockArgContended}
	if !e.Shared() || !e.Contended() {
		t.Errorf("shared contended obtain misread: shared=%v contended=%v", e.Shared(), e.Contended())
	}
	e = Event{Kind: EvLockObtain, Arg: LockArgShared}
	if e.Contended() {
		t.Error("shared uncontended obtain reported contended")
	}
	e = Event{Kind: EvBarrierArrive, Arg: LockArgShared}
	if e.Shared() {
		t.Error("non-lock event reported shared")
	}
}
