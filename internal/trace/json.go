package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonTrace is the JSON wire form of a Trace. The JSON codec is meant
// for interoperability and debugging; the binary codec is the compact
// production format.
type jsonTrace struct {
	Meta    map[string]string `json:"meta,omitempty"`
	Threads []jsonThread      `json:"threads"`
	Objects []jsonObject      `json:"objects"`
	Events  []jsonEvent       `json:"events"`
}

type jsonThread struct {
	ID      ThreadID `json:"id"`
	Name    string   `json:"name"`
	Creator ThreadID `json:"creator"`
}

type jsonObject struct {
	ID      ObjID  `json:"id"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Parties int    `json:"parties,omitempty"`
}

type jsonEvent struct {
	T      Time     `json:"t"`
	Seq    uint64   `json:"seq"`
	Thread ThreadID `json:"thread"`
	Kind   string   `json:"kind"`
	Obj    ObjID    `json:"obj"`
	Arg    int64    `json:"arg,omitempty"`
}

var kindByName = func() map[string]EventKind {
	m := make(map[string]EventKind)
	for k := EvThreadStart; k < evKindMax; k++ {
		m[k.String()] = k
	}
	return m
}()

var objKindByName = map[string]ObjKind{
	"mutex":   ObjMutex,
	"barrier": ObjBarrier,
	"cond":    ObjCond,
	"chan":    ObjChan,
}

// WriteJSON encodes tr as indented JSON.
func WriteJSON(w io.Writer, tr *Trace) error {
	jt := jsonTrace{
		Meta:    tr.Meta,
		Threads: make([]jsonThread, len(tr.Threads)),
		Objects: make([]jsonObject, len(tr.Objects)),
		Events:  make([]jsonEvent, len(tr.Events)),
	}
	for i, th := range tr.Threads {
		jt.Threads[i] = jsonThread{ID: th.ID, Name: th.Name, Creator: th.Creator}
	}
	for i, o := range tr.Objects {
		jt.Objects[i] = jsonObject{ID: o.ID, Kind: o.Kind.String(), Name: o.Name, Parties: o.Parties}
	}
	for i, e := range tr.Events {
		jt.Events[i] = jsonEvent{T: e.T, Seq: e.Seq, Thread: e.Thread, Kind: e.Kind.String(), Obj: e.Obj, Arg: e.Arg}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	tr := &Trace{
		Meta:    jt.Meta,
		Threads: make([]ThreadInfo, len(jt.Threads)),
		Objects: make([]ObjectInfo, len(jt.Objects)),
		Events:  make([]Event, len(jt.Events)),
	}
	if tr.Meta == nil {
		tr.Meta = make(map[string]string)
	}
	for i, th := range jt.Threads {
		tr.Threads[i] = ThreadInfo{ID: th.ID, Name: th.Name, Creator: th.Creator}
	}
	for i, o := range jt.Objects {
		kind, ok := objKindByName[o.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: object %d: unknown kind %q", i, o.Kind)
		}
		tr.Objects[i] = ObjectInfo{ID: o.ID, Kind: kind, Name: o.Name, Parties: o.Parties}
	}
	for i, e := range jt.Events {
		kind, ok := kindByName[e.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: event %d: unknown kind %q", i, e.Kind)
		}
		tr.Events[i] = Event{T: e.T, Seq: e.Seq, Thread: e.Thread, Kind: kind, Obj: e.Obj, Arg: e.Arg}
	}
	return tr, nil
}
