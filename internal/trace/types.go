// Package trace defines the synchronization event model of critlock.
//
// A trace is the on-disk / in-memory record of one execution of a
// multithreaded program: every synchronization event that may block a
// thread (lock acquire/obtain/release, barrier arrive/depart, condition
// variable wait/signal, channel send/recv/close/select, thread
// create/start/exit/join) is recorded with a timestamp, the executing
// thread and the synchronization object.
//
// These are exactly the MAGIC() instrumentation points of the paper
// "Critical Lock Analysis" (Chen & Stenström, SC 2012), Fig. 4. The
// analysis module (internal/core) consumes traces produced by either
// the deterministic simulator (internal/sim) or the live-execution
// backend (internal/livetrace); both emit the same event stream.
package trace

import "fmt"

// Time is a timestamp in nanoseconds. The origin is arbitrary (virtual
// time zero for the simulator, process start for live traces); only
// differences and ordering matter to the analysis.
type Time int64

// ThreadID identifies a thread within one trace. IDs are dense and
// start at 0; thread 0 is the root (main) thread.
type ThreadID int32

// NoThread is the sentinel for "no thread" (e.g. the creator of the
// root thread).
const NoThread ThreadID = -1

// ObjID identifies a synchronization object (mutex, barrier or
// condition variable) within one trace. IDs are dense and start at 0.
type ObjID int32

// NoObj is the sentinel for "no object".
const NoObj ObjID = -1

// EventKind enumerates the recorded synchronization event types.
type EventKind uint8

const (
	// EvThreadStart is the first event of every thread. For non-root
	// threads Arg holds the creator's ThreadID.
	EvThreadStart EventKind = iota + 1
	// EvThreadExit is the last event of every thread.
	EvThreadExit
	// EvThreadCreate is recorded by the creating thread; Arg holds the
	// created thread's ThreadID.
	EvThreadCreate
	// EvJoinBegin is recorded when a thread starts joining another
	// thread; Arg holds the joinee's ThreadID.
	EvJoinBegin
	// EvJoinEnd is recorded when the join returns; Arg holds the
	// joinee's ThreadID.
	EvJoinEnd
	// EvLockAcquire is recorded immediately before attempting to take a
	// lock (the paper's "acquire the lock" point). Obj is the mutex;
	// Arg carries LockArgShared for reader acquisitions.
	EvLockAcquire
	// EvLockObtain is recorded when the lock has been granted (the
	// paper's "obtain the lock" point). Obj is the mutex; Arg is a
	// bitmask of LockArgContended and LockArgShared.
	EvLockObtain
	// EvLockRelease is recorded after releasing a lock. Obj is the
	// mutex; Arg carries LockArgShared for reader releases.
	EvLockRelease
	// EvBarrierArrive is recorded when the thread reaches a barrier
	// (before possibly blocking). Obj is the barrier.
	EvBarrierArrive
	// EvBarrierDepart is recorded when the thread leaves the barrier
	// (after the last thread arrived). Obj is the barrier; Arg is 1 if
	// this thread was the last arriver (and therefore did not block).
	EvBarrierDepart
	// EvCondWaitBegin is recorded when a thread starts waiting on a
	// condition variable. Obj is the condvar; Arg is the associated
	// mutex's ObjID.
	EvCondWaitBegin
	// EvCondWaitEnd is recorded when the wait returns. Obj is the
	// condvar; Arg is the associated mutex's ObjID.
	EvCondWaitEnd
	// EvCondSignal is recorded by the signalling thread. Obj is the
	// condvar.
	EvCondSignal
	// EvCondBroadcast is recorded by the broadcasting thread. Obj is
	// the condvar.
	EvCondBroadcast
	// EvChanSendBegin is recorded immediately before a channel send
	// (the thread may block). Obj is the channel.
	EvChanSendBegin
	// EvChanSend is recorded when a send has completed — the value was
	// handed to a receiver or buffered. Obj is the channel; Arg is a
	// bitmask of ChanArgBlocked and ChanArgSelect.
	EvChanSend
	// EvChanRecvBegin is recorded immediately before a channel receive
	// (the thread may block). Obj is the channel.
	EvChanRecvBegin
	// EvChanRecv is recorded when a receive has completed. Obj is the
	// channel; Arg is a bitmask of ChanArgBlocked, ChanArgClosed (the
	// receive returned because the channel was closed and drained, not
	// because a value arrived) and ChanArgSelect.
	EvChanRecv
	// EvChanClose is recorded by the closing thread. Obj is the channel.
	EvChanClose
	// EvSelect is recorded when a thread enters a select. Obj is NoObj;
	// Arg is 1 when the select has a default case. The chosen operation
	// completes with an EvChanSend/EvChanRecv carrying ChanArgSelect; a
	// select resolved by its default case completes with no further
	// event.
	EvSelect

	evKindMax
)

var evKindNames = [...]string{
	EvThreadStart:   "thread-start",
	EvThreadExit:    "thread-exit",
	EvThreadCreate:  "thread-create",
	EvJoinBegin:     "join-begin",
	EvJoinEnd:       "join-end",
	EvLockAcquire:   "lock-acquire",
	EvLockObtain:    "lock-obtain",
	EvLockRelease:   "lock-release",
	EvBarrierArrive: "barrier-arrive",
	EvBarrierDepart: "barrier-depart",
	EvCondWaitBegin: "cond-wait-begin",
	EvCondWaitEnd:   "cond-wait-end",
	EvCondSignal:    "cond-signal",
	EvCondBroadcast: "cond-broadcast",
	EvChanSendBegin: "chan-send-begin",
	EvChanSend:      "chan-send",
	EvChanRecvBegin: "chan-recv-begin",
	EvChanRecv:      "chan-recv",
	EvChanClose:     "chan-close",
	EvSelect:        "select",
}

// String returns the lowercase dashed name of the event kind.
func (k EventKind) String() string {
	if int(k) < len(evKindNames) && evKindNames[k] != "" {
		return evKindNames[k]
	}
	return fmt.Sprintf("event-kind-%d", uint8(k))
}

// Valid reports whether k is a defined event kind.
func (k EventKind) Valid() bool { return k >= EvThreadStart && k < evKindMax }

// Event is one synchronization event.
type Event struct {
	// T is the event timestamp.
	T Time
	// Seq is a globally unique, monotonically assigned sequence number
	// used to break timestamp ties deterministically.
	Seq uint64
	// Thread is the executing thread.
	Thread ThreadID
	// Kind is the event type.
	Kind EventKind
	// Obj is the synchronization object, or NoObj for thread lifecycle
	// events.
	Obj ObjID
	// Arg carries kind-specific data (see the EventKind docs).
	Arg int64
}

// Lock event Arg bits.
const (
	// LockArgContended marks an obtain whose thread blocked first.
	LockArgContended = 1 << 0
	// LockArgShared marks reader (shared) lock operations on a
	// read-write mutex.
	LockArgShared = 1 << 1
)

// Channel event Arg bits (EvChanSend / EvChanRecv completions).
const (
	// ChanArgBlocked marks a completion whose thread blocked first.
	ChanArgBlocked = 1 << 0
	// ChanArgClosed marks a receive that returned the closed-and-empty
	// indication rather than a value.
	ChanArgClosed = 1 << 1
	// ChanArgSelect marks a completion chosen inside a select.
	ChanArgSelect = 1 << 2
)

// Contended reports whether a lock-obtain event records a contended
// invocation. It is false for all other kinds.
func (e Event) Contended() bool { return e.Kind == EvLockObtain && e.Arg&LockArgContended != 0 }

// ChanBlocked reports whether a channel completion event records an
// operation that blocked first. It is false for all other kinds.
func (e Event) ChanBlocked() bool {
	return (e.Kind == EvChanSend || e.Kind == EvChanRecv) && e.Arg&ChanArgBlocked != 0
}

// ChanClosed reports whether a channel receive completed because the
// channel was closed and drained.
func (e Event) ChanClosed() bool { return e.Kind == EvChanRecv && e.Arg&ChanArgClosed != 0 }

// Shared reports whether a lock event is a reader (shared) operation.
func (e Event) Shared() bool {
	switch e.Kind {
	case EvLockAcquire, EvLockObtain, EvLockRelease:
		return e.Arg&LockArgShared != 0
	}
	return false
}

// String renders the event for debugging.
func (e Event) String() string {
	return fmt.Sprintf("%d ns t%d %s obj=%d arg=%d", e.T, e.Thread, e.Kind, e.Obj, e.Arg)
}

// ObjKind enumerates synchronization object types.
type ObjKind uint8

const (
	ObjMutex ObjKind = iota + 1
	ObjBarrier
	ObjCond
	ObjChan
)

// String returns the object kind name.
func (k ObjKind) String() string {
	switch k {
	case ObjMutex:
		return "mutex"
	case ObjBarrier:
		return "barrier"
	case ObjCond:
		return "cond"
	case ObjChan:
		return "chan"
	}
	return fmt.Sprintf("obj-kind-%d", uint8(k))
}

// ObjectInfo describes one synchronization object.
type ObjectInfo struct {
	ID   ObjID
	Kind ObjKind
	// Name is the user-visible name, e.g. "tq[0].qlock".
	Name string
	// Parties is the participant count for barriers and the buffer
	// capacity for channels (0 otherwise, and 0 for unbuffered
	// channels).
	Parties int
}

// ThreadInfo describes one thread.
type ThreadInfo struct {
	ID   ThreadID
	Name string
	// Creator is the creating thread, or NoThread for the root.
	Creator ThreadID
}

// Trace is a complete execution record.
type Trace struct {
	// Events are sorted by (T, Seq).
	Events []Event
	// Objects is indexed by ObjID.
	Objects []ObjectInfo
	// Threads is indexed by ThreadID.
	Threads []ThreadInfo
	// Meta carries free-form metadata (workload name, parameters, ...).
	Meta map[string]string
}

// Object returns the info for id, or a zero ObjectInfo if out of range.
func (t *Trace) Object(id ObjID) ObjectInfo {
	if id < 0 || int(id) >= len(t.Objects) {
		return ObjectInfo{ID: NoObj, Name: "<unknown>"}
	}
	return t.Objects[id]
}

// ObjName returns the name of object id, or a placeholder.
func (t *Trace) ObjName(id ObjID) string { return t.Object(id).Name }

// Thread returns the info for id, or a zero ThreadInfo if out of range.
func (t *Trace) Thread(id ThreadID) ThreadInfo {
	if id < 0 || int(id) >= len(t.Threads) {
		return ThreadInfo{ID: NoThread, Name: "<unknown>", Creator: NoThread}
	}
	return t.Threads[id]
}

// NumThreads returns the number of threads in the trace.
func (t *Trace) NumThreads() int { return len(t.Threads) }

// Start returns the timestamp of the first event (0 for empty traces).
func (t *Trace) Start() Time {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[0].T
}

// End returns the timestamp of the last event (0 for empty traces).
func (t *Trace) End() Time {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].T
}

// Duration returns End−Start.
func (t *Trace) Duration() Time { return t.End() - t.Start() }

// FindObject returns the first object with the given name, or NoObj.
func (t *Trace) FindObject(name string) ObjID {
	for _, o := range t.Objects {
		if o.Name == name {
			return o.ID
		}
	}
	return NoObj
}
