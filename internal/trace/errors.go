package trace

import "errors"

// Sentinel error kinds shared by the trace codecs and the segment
// store, so callers can classify failures with errors.Is instead of
// string-matching messages. Sites wrap them with context via %w:
//
//	errors.Is(err, trace.ErrTruncated) // input cut short
//	errors.Is(err, trace.ErrChecksum)  // CRC mismatch: corruption
//
// The facade re-exports them as critlock.ErrTruncated and
// critlock.ErrChecksum.
var (
	// ErrTruncated marks input that ends before the format says it
	// should: short event records, segment files cut mid-frame,
	// manifests missing their tail. ErrTruncatedStream (a stream with
	// no end record) wraps it too.
	ErrTruncated = errors.New("truncated")

	// ErrChecksum marks a CRC mismatch: the bytes were all there but
	// do not hash to the recorded value — corruption, not truncation.
	ErrChecksum = errors.New("checksum mismatch")
)
