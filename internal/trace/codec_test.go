package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildSampleTrace constructs a small but representative trace using
// every event kind.
func buildSampleTrace() *Trace {
	b := NewBuilder()
	main := b.Thread("main", NoThread)
	w1 := b.Thread("worker-1", main)
	m := b.Mutex("L1")
	bar := b.Barrier("phase", 2)
	cv := b.Cond("queue-nonempty")

	b.Meta("workload", "sample")
	b.Start(0, main)
	b.Start(5, w1)
	b.CS(main, m, 10, 10, 20)
	b.CS(w1, m, 12, 20, 30)
	b.BarrierWait(main, bar, 25, 35, false)
	b.BarrierWait(w1, bar, 35, 35, true)
	b.Event(40, w1, EvCondWaitBegin, cv, int64(m))
	b.Event(45, main, EvCondSignal, cv, 0)
	b.Event(46, main, EvCondBroadcast, cv, 0)
	b.Event(47, w1, EvCondWaitEnd, cv, int64(m))
	b.Exit(50, w1)
	b.Join(main, w1, 48, 50)
	b.Exit(60, main)
	return b.Trace()
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("NOPE....."))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("err = %v, want bad magic", err)
	}
}

func TestBinaryRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.WriteByte(99) // version uvarint 99
	_, err := ReadBinary(&buf)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("err = %v, want version error", err)
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncating at any prefix must produce an error, never a panic.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestBinaryRejectsOutOfRangeThread(t *testing.T) {
	tr := buildSampleTrace()
	tr.Events[3].Thread = 99 // beyond registered threads
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("decoder accepted out-of-range thread")
	}
}

func TestJSONRejectsUnknownKind(t *testing.T) {
	in := `{"threads":[],"objects":[],"events":[{"t":0,"seq":1,"thread":0,"kind":"bogus","obj":-1}]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("decoder accepted unknown event kind")
	}
	in = `{"threads":[],"objects":[{"id":0,"kind":"widget","name":"x"}],"events":[]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("decoder accepted unknown object kind")
	}
}

// TestBinaryRoundTripRandom is a property test: arbitrary valid event
// streams survive a binary round trip bit-exactly.
func TestBinaryRoundTripRandom(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		main := b.Thread("main", NoThread)
		m := b.Mutex("m")
		b.Meta("seed", "x")
		var tm Time
		b.Start(tm, main)
		for i := 0; i < int(n%40); i++ {
			tm += Time(rng.Intn(1000))
			hold := tm + Time(rng.Intn(50))
			rel := hold + Time(rng.Intn(100))
			b.CS(main, m, tm, hold, rel)
			tm = rel
		}
		b.Exit(tm+1, main)
		tr := b.Trace()

		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	tr := buildSampleTrace()
	var bin, js bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&js, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Errorf("binary %d bytes not smaller than JSON %d bytes", bin.Len(), js.Len())
	}
}
