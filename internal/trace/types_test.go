package trace

import (
	"strings"
	"testing"
)

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EvThreadStart:   "thread-start",
		EvThreadExit:    "thread-exit",
		EvThreadCreate:  "thread-create",
		EvJoinBegin:     "join-begin",
		EvJoinEnd:       "join-end",
		EvLockAcquire:   "lock-acquire",
		EvLockObtain:    "lock-obtain",
		EvLockRelease:   "lock-release",
		EvBarrierArrive: "barrier-arrive",
		EvBarrierDepart: "barrier-depart",
		EvCondWaitBegin: "cond-wait-begin",
		EvCondWaitEnd:   "cond-wait-end",
		EvCondSignal:    "cond-signal",
		EvCondBroadcast: "cond-broadcast",
	}
	for kind, want := range cases {
		if got := kind.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", kind, got, want)
		}
		if !kind.Valid() {
			t.Errorf("EventKind(%d).Valid() = false, want true", kind)
		}
	}
}

func TestEventKindInvalid(t *testing.T) {
	for _, k := range []EventKind{0, evKindMax, 200} {
		if k.Valid() {
			t.Errorf("EventKind(%d).Valid() = true, want false", k)
		}
		if !strings.Contains(k.String(), "event-kind-") {
			t.Errorf("EventKind(%d).String() = %q, want placeholder", k, k.String())
		}
	}
}

func TestObjKindString(t *testing.T) {
	if ObjMutex.String() != "mutex" || ObjBarrier.String() != "barrier" || ObjCond.String() != "cond" {
		t.Fatalf("unexpected ObjKind names: %v %v %v", ObjMutex, ObjBarrier, ObjCond)
	}
	if got := ObjKind(99).String(); !strings.Contains(got, "obj-kind-") {
		t.Errorf("ObjKind(99).String() = %q", got)
	}
}

func TestEventContended(t *testing.T) {
	e := Event{Kind: EvLockObtain, Arg: 1}
	if !e.Contended() {
		t.Error("contended obtain not reported")
	}
	e.Arg = 0
	if e.Contended() {
		t.Error("uncontended obtain reported contended")
	}
	e = Event{Kind: EvLockAcquire, Arg: 1}
	if e.Contended() {
		t.Error("non-obtain event reported contended")
	}
}

func TestTraceAccessors(t *testing.T) {
	b := NewBuilder()
	t0 := b.Thread("main", NoThread)
	m := b.Mutex("L1")
	b.Start(0, t0)
	b.CS(t0, m, 10, 10, 20)
	b.Exit(30, t0)
	tr := b.Trace()

	if tr.Start() != 0 {
		t.Errorf("Start() = %d, want 0", tr.Start())
	}
	if tr.End() != 30 {
		t.Errorf("End() = %d, want 30", tr.End())
	}
	if tr.Duration() != 30 {
		t.Errorf("Duration() = %d, want 30", tr.Duration())
	}
	if tr.NumThreads() != 1 {
		t.Errorf("NumThreads() = %d, want 1", tr.NumThreads())
	}
	if got := tr.ObjName(m); got != "L1" {
		t.Errorf("ObjName(%d) = %q, want L1", m, got)
	}
	if got := tr.ObjName(99); got != "<unknown>" {
		t.Errorf("ObjName(99) = %q, want <unknown>", got)
	}
	if got := tr.Thread(t0).Name; got != "main" {
		t.Errorf("Thread(0).Name = %q, want main", got)
	}
	if got := tr.Thread(42); got.Creator != NoThread {
		t.Errorf("Thread(42) = %+v, want placeholder", got)
	}
	if tr.FindObject("L1") != m {
		t.Errorf("FindObject(L1) = %d, want %d", tr.FindObject("L1"), m)
	}
	if tr.FindObject("missing") != NoObj {
		t.Error("FindObject(missing) != NoObj")
	}
}

func TestEmptyTraceAccessors(t *testing.T) {
	tr := &Trace{}
	if tr.Start() != 0 || tr.End() != 0 || tr.Duration() != 0 {
		t.Errorf("empty trace times: start=%d end=%d dur=%d", tr.Start(), tr.End(), tr.Duration())
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: 5, Thread: 2, Kind: EvLockObtain, Obj: 1, Arg: 1}
	s := e.String()
	if !strings.Contains(s, "lock-obtain") || !strings.Contains(s, "t2") {
		t.Errorf("Event.String() = %q", s)
	}
}
