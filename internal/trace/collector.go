package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Collector accumulates events during an execution.
//
// It mirrors the paper's instrumentation module: each thread appends
// events to a private buffer (no cross-thread synchronization on the
// hot path beyond one atomic sequence counter), and the buffers are
// merged into a single time-ordered Trace when the run completes.
//
// Thread and object registration take a mutex; they are rare compared
// to event emission.
type Collector struct {
	seq atomic.Uint64

	mu      sync.Mutex
	threads []ThreadInfo
	objects []ObjectInfo
	buffers []*ThreadBuffer
	meta    map[string]string
	sink    atomic.Pointer[StreamWriter]
	spill   atomic.Pointer[spillConfig]
}

// SpillSink receives per-thread event runs when a buffer crosses the
// spill threshold. Runs arrive in the emitting thread's order, so each
// run is canonically (T, Seq) sorted; runs of different threads
// interleave arbitrarily. The events slice is only valid for the
// duration of the call. Implementations must latch their own I/O
// errors (Emit cannot surface them) and report the first one when
// their results are collected — segment.Spiller does exactly that.
type SpillSink interface {
	SpillRun(thread ThreadID, events []Event) error
}

// spillConfig pairs a sink with its threshold so Emit reads both with
// one atomic load.
type spillConfig struct {
	sink      SpillSink
	threshold int
}

// SetSpill attaches a spill sink: from now on, any per-thread buffer
// reaching thresholdEvents is flushed to the sink and cleared, so the
// collector's memory stays bounded by threads × threshold regardless
// of trace length. Attach before the run starts; call DrainSpill after
// it completes to push out the partial buffers.
func (c *Collector) SetSpill(sink SpillSink, thresholdEvents int) {
	if thresholdEvents < 1 {
		thresholdEvents = 1
	}
	c.spill.Store(&spillConfig{sink: sink, threshold: thresholdEvents})
}

// DrainSpill flushes every non-empty per-thread buffer to the spill
// sink and clears it. Call once emission has stopped; a Finish after
// DrainSpill returns the registration skeleton with no events.
func (c *Collector) DrainSpill() error {
	cfg := c.spill.Load()
	if cfg == nil {
		return nil
	}
	c.mu.Lock()
	bufs := append([]*ThreadBuffer(nil), c.buffers...)
	c.mu.Unlock()
	var first error
	for _, b := range bufs {
		b.mu.Lock()
		if len(b.events) > 0 {
			if err := cfg.sink.SpillRun(b.thread, b.events); err != nil && first == nil {
				first = err
			}
			b.events = b.events[:0]
		}
		b.mu.Unlock()
	}
	return first
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{meta: make(map[string]string)}
}

// SetMeta records a metadata key/value pair on the resulting trace.
func (c *Collector) SetMeta(key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.meta[key] = value
	if sink := c.sink.Load(); sink != nil {
		sink.Meta(key, value)
	}
}

// SetSink attaches a streaming writer: registrations and metadata
// recorded so far are replayed to it, and everything from now on is
// forwarded as it happens. Attach before the run starts — events
// already buffered are not replayed. Close the sink after Finish.
func (c *Collector) SetSink(sw *StreamWriter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sink.Store(sw)
	for k, v := range c.meta {
		if err := sw.Meta(k, v); err != nil {
			return err
		}
	}
	for _, th := range c.threads {
		if err := sw.Thread(th.Name, th.Creator); err != nil {
			return err
		}
	}
	for _, o := range c.objects {
		if err := sw.Object(o.Kind, o.Name, o.Parties); err != nil {
			return err
		}
	}
	return nil
}

// RegisterThread allocates a ThreadID and its event buffer. creator is
// the creating thread (NoThread for the root thread).
func (c *Collector) RegisterThread(name string, creator ThreadID) *ThreadBuffer {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := ThreadID(len(c.threads))
	if name == "" {
		name = fmt.Sprintf("thread-%d", id)
	}
	c.threads = append(c.threads, ThreadInfo{ID: id, Name: name, Creator: creator})
	buf := &ThreadBuffer{collector: c, thread: id}
	c.buffers = append(c.buffers, buf)
	if sink := c.sink.Load(); sink != nil {
		sink.Thread(name, creator)
	}
	return buf
}

// RegisterObject allocates an ObjID for a synchronization object.
func (c *Collector) RegisterObject(kind ObjKind, name string, parties int) ObjID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := ObjID(len(c.objects))
	if name == "" {
		name = fmt.Sprintf("%s-%d", kind, id)
	}
	c.objects = append(c.objects, ObjectInfo{ID: id, Kind: kind, Name: name, Parties: parties})
	if sink := c.sink.Load(); sink != nil {
		sink.Object(kind, name, parties)
	}
	return id
}

// NumThreads returns the number of registered threads.
func (c *Collector) NumThreads() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.threads)
}

// Finish merges all per-thread buffers into a Trace in canonical
// (T, Seq) order via a k-way merge — the buffers are already ordered,
// so no global sort is needed. The collector remains usable; Finish
// may be called repeatedly to snapshot progress.
func (c *Collector) Finish() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, b := range c.buffers {
		total += b.len()
	}
	// Snapshot every buffer into one flat scratch slice and merge the
	// per-thread runs. (If a buffer grows between the count above and
	// its snapshot, append reallocates; earlier runs keep pointing at
	// the old backing, which is correct — they are copies either way.)
	flat := make([]Event, 0, total)
	runs := make([][]Event, 0, len(c.buffers))
	for _, b := range c.buffers {
		start := len(flat)
		flat = b.appendEvents(flat)
		runs = append(runs, flat[start:len(flat):len(flat)])
	}
	events := MergeSorted(runs)
	tr := &Trace{
		Events:  events,
		Objects: append([]ObjectInfo(nil), c.objects...),
		Threads: append([]ThreadInfo(nil), c.threads...),
		Meta:    make(map[string]string, len(c.meta)),
	}
	for k, v := range c.meta {
		tr.Meta[k] = v
	}
	return tr
}

// ThreadBuffer is the per-thread event sink. It must only be used from
// the owning thread (the backends guarantee this), so appends are
// lock-free; the sequence number comes from one shared atomic.
type ThreadBuffer struct {
	collector *Collector
	thread    ThreadID

	mu     sync.Mutex // guards events against concurrent Finish snapshots
	events []Event
}

// Thread returns the owning thread's ID.
func (b *ThreadBuffer) Thread() ThreadID { return b.thread }

// Emit appends an event, stamping thread and sequence number, and
// forwards it to the streaming sink if one is attached. With a spill
// sink attached, a buffer reaching the threshold is flushed as one run
// and cleared while still under the buffer lock, so Finish snapshots
// never see half-spilled state.
func (b *ThreadBuffer) Emit(t Time, kind EventKind, obj ObjID, arg int64) {
	seq := b.collector.seq.Add(1)
	e := Event{T: t, Seq: seq, Thread: b.thread, Kind: kind, Obj: obj, Arg: arg}
	b.mu.Lock()
	b.events = append(b.events, e)
	if cfg := b.collector.spill.Load(); cfg != nil && len(b.events) >= cfg.threshold {
		cfg.sink.SpillRun(b.thread, b.events) // errors latch in the sink
		b.events = b.events[:0]
	}
	b.mu.Unlock()
	if sink := b.collector.sink.Load(); sink != nil {
		sink.Event(e)
	}
}

func (b *ThreadBuffer) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// appendEvents appends a snapshot of the buffer to dst.
func (b *ThreadBuffer) appendEvents(dst []Event) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append(dst, b.events...)
}
