package trace

import (
	"strings"
	"testing"
)

// frameFor encodes evs as one frame payload (delta chain reset at the
// frame start), the layout AppendFrame decodes.
func frameFor(evs []Event) []byte {
	var buf []byte
	prev := Event{}
	for _, e := range evs {
		buf = AppendEvent(buf, e, prev)
		prev = e
	}
	return buf
}

func syntheticEvents(n int) []Event {
	evs := make([]Event, n)
	t := Time(0)
	for i := range evs {
		t += Time(1 + i%3)
		evs[i] = Event{
			T:      t,
			Seq:    uint64(i),
			Thread: ThreadID(i % 7),
			Kind:   EventKind(1 + i%int(evKindMax-1)),
			Obj:    ObjID(i % 5),
			Arg:    int64(i%11) - 5,
		}
	}
	return evs
}

func TestAppendFrameMatchesDecodeEvent(t *testing.T) {
	evs := syntheticEvents(1000)
	// Mix in records that force the general path: multi-byte varints.
	evs[100].T = evs[99].T + 1<<40
	for i := 101; i < len(evs); i++ {
		evs[i].T += 1 << 40
	}
	evs[500].Arg = 1 << 50
	evs[700].Thread = 90
	buf := frameFor(evs)

	var cols Columns
	used, err := cols.AppendFrame(buf, len(evs))
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	if used != len(buf) {
		t.Fatalf("AppendFrame used %d bytes, want %d", used, len(buf))
	}
	if cols.Len() != len(evs) {
		t.Fatalf("AppendFrame decoded %d events, want %d", cols.Len(), len(evs))
	}
	for i, want := range evs {
		if got := cols.Event(i); got != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestAppendFrameInvalid(t *testing.T) {
	evs := syntheticEvents(4)
	tests := []struct {
		name   string
		mutate func([]Event)
		want   string
	}{
		{"bad kind", func(e []Event) { e[2].Kind = evKindMax }, "invalid event kind"},
		{"bad obj", func(e []Event) { e[2].Obj = NoObj - 1 }, "out of range"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mut := make([]Event, len(evs))
			copy(mut, evs)
			tc.mutate(mut)
			var cols Columns
			_, err := cols.AppendFrame(frameFor(mut), len(mut))
			if err == nil {
				t.Fatalf("AppendFrame accepted %s", tc.name)
			}
			if got := err.Error(); !strings.Contains(got, tc.want) {
				t.Fatalf("error %q, want substring %q", got, tc.want)
			}
			// The decoded prefix must stay consistent across columns.
			if cols.Len() != 2 {
				t.Fatalf("prefix length %d, want 2", cols.Len())
			}
			for i := 0; i < cols.Len(); i++ {
				if got := cols.Event(i); got != evs[i] {
					t.Fatalf("prefix event %d: got %+v, want %+v", i, got, evs[i])
				}
			}
		})
	}
}

func TestAppendFrameTruncated(t *testing.T) {
	evs := syntheticEvents(16)
	buf := frameFor(evs)
	var cols Columns
	if _, err := cols.AppendFrame(buf[:len(buf)-3], len(evs)); err == nil {
		t.Fatal("AppendFrame accepted a truncated frame")
	}
}

func BenchmarkAppendFrame(b *testing.B) {
	const n = 4096
	evs := syntheticEvents(n)
	buf := frameFor(evs)
	var cols Columns
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols.Reset(n)
		if _, err := cols.AppendFrame(buf, n); err != nil {
			b.Fatal(err)
		}
	}
}
