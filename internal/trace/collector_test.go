package trace

import (
	"sync"
	"testing"
)

func TestCollectorBasics(t *testing.T) {
	c := NewCollector()
	c.SetMeta("workload", "test")
	main := c.RegisterThread("main", NoThread)
	if main.Thread() != 0 {
		t.Fatalf("first thread id = %d, want 0", main.Thread())
	}
	w := c.RegisterThread("", main.Thread())
	if w.Thread() != 1 {
		t.Fatalf("second thread id = %d, want 1", w.Thread())
	}
	m := c.RegisterObject(ObjMutex, "L1", 0)
	bar := c.RegisterObject(ObjBarrier, "", 4)

	main.Emit(0, EvThreadStart, NoObj, int64(NoThread))
	main.Emit(10, EvLockAcquire, m, 0)
	main.Emit(10, EvLockObtain, m, 0)
	main.Emit(20, EvLockRelease, m, 0)
	main.Emit(30, EvThreadExit, NoObj, 0)
	w.Emit(5, EvThreadStart, NoObj, 0)
	w.Emit(25, EvThreadExit, NoObj, 0)

	tr := c.Finish()
	if len(tr.Events) != 7 {
		t.Fatalf("got %d events, want 7", len(tr.Events))
	}
	// Events must be globally time-sorted after merging buffers.
	for i := 1; i < len(tr.Events); i++ {
		a, b := tr.Events[i-1], tr.Events[i]
		if b.T < a.T || (b.T == a.T && b.Seq <= a.Seq) {
			t.Errorf("events %d,%d out of order: %v then %v", i-1, i, a, b)
		}
	}
	if tr.Meta["workload"] != "test" {
		t.Errorf("meta not propagated: %v", tr.Meta)
	}
	if tr.Objects[m].Name != "L1" {
		t.Errorf("object name = %q", tr.Objects[m].Name)
	}
	if tr.Objects[bar].Parties != 4 {
		t.Errorf("barrier parties = %d, want 4", tr.Objects[bar].Parties)
	}
	if tr.Objects[bar].Name == "" {
		t.Error("auto-generated object name empty")
	}
	if tr.Threads[1].Name == "" {
		t.Error("auto-generated thread name empty")
	}
	if c.NumThreads() != 2 {
		t.Errorf("NumThreads = %d, want 2", c.NumThreads())
	}
	if err := Validate(tr); err != nil {
		t.Errorf("collector output invalid: %v", err)
	}
}

// TestCollectorConcurrent exercises concurrent emission from many
// goroutines (the live backend's usage pattern) under the race
// detector.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	const workers = 8
	const eventsEach = 200
	var wg sync.WaitGroup
	bufs := make([]*ThreadBuffer, workers)
	for i := range bufs {
		bufs[i] = c.RegisterThread("", NoThread)
	}
	m := c.RegisterObject(ObjMutex, "shared", 0)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(buf *ThreadBuffer) {
			defer wg.Done()
			for j := 0; j < eventsEach; j++ {
				buf.Emit(Time(j), EvLockAcquire, m, 0)
			}
		}(bufs[i])
	}
	wg.Wait()
	tr := c.Finish()
	if got := len(tr.Events); got != workers*eventsEach {
		t.Fatalf("got %d events, want %d", got, workers*eventsEach)
	}
	// Sequence numbers must be unique.
	seen := make(map[uint64]bool, len(tr.Events))
	for _, e := range tr.Events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestCollectorFinishSnapshot(t *testing.T) {
	c := NewCollector()
	b := c.RegisterThread("main", NoThread)
	b.Emit(0, EvThreadStart, NoObj, 0)
	tr1 := c.Finish()
	b.Emit(1, EvThreadExit, NoObj, 0)
	tr2 := c.Finish()
	if len(tr1.Events) != 1 || len(tr2.Events) != 2 {
		t.Errorf("snapshots: %d then %d events, want 1 then 2", len(tr1.Events), len(tr2.Events))
	}
}
