package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary: arbitrary bytes must never panic the decoder, and
// anything it accepts must re-encode and decode to the same trace.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, buildSampleTrace()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CLTR"))
	f.Add(valid[:len(valid)/2])
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 10 {
		mutated[8] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) || len(tr2.Threads) != len(tr.Threads) {
			t.Fatalf("round trip changed shape: %d/%d events, %d/%d threads",
				len(tr.Events), len(tr2.Events), len(tr.Threads), len(tr2.Threads))
		}
	})
}

// FuzzDecodeEvent: arbitrary bytes must never panic the per-event
// decoder, and whatever it accepts must re-encode to bytes that decode
// to the same event (the round-trip segment files depend on).
func FuzzDecodeEvent(f *testing.F) {
	prev := Event{T: 100, Seq: 5, Thread: 1}
	f.Add(AppendEvent(nil, Event{T: 107, Seq: 6, Thread: 2, Kind: EvLockObtain, Obj: 3, Arg: LockArgContended}, prev))
	f.Add(AppendEvent(nil, Event{T: 107, Seq: 9, Thread: 0, Kind: EvThreadStart, Obj: NoObj}, prev))
	f.Add(AppendEvent(nil, Event{T: 109, Seq: 7, Thread: 1, Kind: EvChanSend, Obj: 4, Arg: ChanArgBlocked | ChanArgSelect}, prev))
	f.Add(AppendEvent(nil, Event{T: 112, Seq: 8, Thread: 2, Kind: EvChanRecv, Obj: 4, Arg: ChanArgClosed}, prev))
	f.Add(AppendEvent(nil, Event{T: 113, Seq: 10, Thread: 0, Kind: EvSelect, Obj: NoObj, Arg: 1}, prev))
	chanEnc := AppendEvent(nil, Event{T: 115, Seq: 11, Thread: 1, Kind: EvChanClose, Obj: 5}, prev)
	f.Add(chanEnc)
	f.Add(chanEnc[:len(chanEnc)/2]) // truncated channel frame
	chanFlip := append([]byte(nil), chanEnc...)
	chanFlip[0] ^= 0x80 // bit-flipped channel frame
	f.Add(chanFlip)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := DecodeEvent(data, prev)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeEvent consumed %d of %d bytes", n, len(data))
		}
		enc := AppendEvent(nil, e, prev)
		e2, n2, err := DecodeEvent(enc, prev)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if n2 != len(enc) || e2 != e {
			t.Fatalf("round trip changed event: %+v -> %+v", e, e2)
		}
	})
}

// FuzzValidate: the validator must never panic, whatever the events.
func FuzzValidate(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2))
	f.Add(int64(42), uint8(14), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, kinds uint8, objs uint8) {
		tr := &Trace{
			Threads: []ThreadInfo{{ID: 0, Name: "t0", Creator: NoThread}},
			Objects: []ObjectInfo{
				{ID: 0, Kind: ObjMutex, Name: "m"},
				{ID: 1, Kind: ObjBarrier, Name: "b", Parties: 2},
				{ID: 2, Kind: ObjCond, Name: "c"},
				{ID: 3, Kind: ObjChan, Name: "ch", Parties: 1},
			},
			Meta: map[string]string{},
		}
		// Generate a pseudo-random event soup from the fuzz inputs.
		x := uint64(seed)
		next := func() uint64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x
		}
		n := int(kinds)%40 + 1
		var tm Time
		for i := 0; i < n; i++ {
			tm += Time(next() % 10)
			tr.Events = append(tr.Events, Event{
				T:      tm,
				Seq:    uint64(i + 1),
				Thread: ThreadID(next() % 2), // may be out of range (1)
				Kind:   EventKind(next() % uint64(objs%20+1)),
				Obj:    ObjID(int64(next()%5) - 1),
				Arg:    int64(next() % 8),
			})
		}
		_ = Validate(tr) // must not panic
	})
}
