package trace

import (
	"math/rand"
	"sort"
	"testing"
)

// refSort is the pre-merge reference ordering: a global comparison
// sort with the canonical comparator. Every merge/sort path must
// reproduce it event-for-event.
func refSort(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// genBuffers simulates a Collector run: nThreads per-thread buffers,
// each with non-decreasing timestamps, sequence numbers assigned by a
// global counter in interleaved emission order, and deliberately many
// cross-thread timestamp ties.
func genBuffers(rng *rand.Rand, nThreads, nEvents int) [][]Event {
	buffers := make([][]Event, nThreads)
	clocks := make([]Time, nThreads)
	seq := uint64(0)
	for i := 0; i < nEvents; i++ {
		tid := rng.Intn(nThreads)
		// Advance the thread clock by 0..3 so equal timestamps are
		// common, both within and across threads.
		clocks[tid] += Time(rng.Intn(4))
		seq++
		buffers[tid] = append(buffers[tid], Event{
			T: clocks[tid], Seq: seq, Thread: ThreadID(tid),
			Kind: EvLockAcquire, Obj: ObjID(rng.Intn(3)),
		})
	}
	return buffers
}

func flatten(buffers [][]Event) []Event {
	var all []Event
	for _, b := range buffers {
		all = append(all, b...)
	}
	return all
}

func eventsEqual(t *testing.T, got, want []Event, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestMergeSortedMatchesSort is the property test of the k-way merge:
// for random per-thread buffers presented in shuffled order, the merge
// must equal the old global sort result event-for-event.
func TestMergeSortedMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 200; round++ {
		nThreads := 1 + rng.Intn(12)
		nEvents := rng.Intn(400)
		buffers := genBuffers(rng, nThreads, nEvents)
		want := refSort(flatten(buffers))

		// The merge must not depend on buffer presentation order.
		rng.Shuffle(len(buffers), func(i, j int) {
			buffers[i], buffers[j] = buffers[j], buffers[i]
		})
		got := MergeSorted(buffers)
		eventsEqual(t, got, want, "merge")
	}
}

// TestMergeSortedUnsortedBuffer: a buffer violating per-thread order
// (possible with hand-built traces) is detected and sorted, so the
// result is still canonical.
func TestMergeSortedUnsortedBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	buffers := genBuffers(rng, 4, 100)
	// Scramble one buffer.
	b := buffers[2]
	rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	want := refSort(flatten(buffers))
	got := MergeSorted(buffers)
	eventsEqual(t, got, want, "merge with unsorted buffer")
}

// TestSortEventsMatchesSort: the partition-and-merge SortEvents equals
// a plain comparison sort on arbitrary interleavings.
func TestSortEventsMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for round := 0; round < 200; round++ {
		nThreads := 1 + rng.Intn(8)
		events := flatten(genBuffers(rng, nThreads, rng.Intn(300)))
		rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
		want := refSort(events)
		SortEvents(events)
		eventsEqual(t, events, want, "SortEvents")
	}
}

// TestSortEventsNegativeThread: out-of-range thread IDs take the
// comparison-sort fallback rather than indexing out of bounds.
func TestSortEventsNegativeThread(t *testing.T) {
	events := []Event{
		{T: 5, Seq: 2, Thread: NoThread},
		{T: 1, Seq: 1, Thread: 0},
		{T: 5, Seq: 1, Thread: 3},
	}
	want := refSort(events)
	SortEvents(events)
	eventsEqual(t, events, want, "fallback sort")
}

// TestLessTieBreak pins the canonical order: time first, then sequence
// (emission causality), then thread.
func TestLessTieBreak(t *testing.T) {
	a := Event{T: 10, Seq: 7, Thread: 5}
	b := Event{T: 10, Seq: 8, Thread: 1}
	if !Less(a, b) || Less(b, a) {
		t.Error("sequence must dominate thread at equal timestamps")
	}
	c := Event{T: 10, Seq: 7, Thread: 6}
	if !Less(a, c) || Less(c, a) {
		t.Error("thread breaks duplicate-sequence ties")
	}
	if Less(a, a) {
		t.Error("Less must be irreflexive")
	}
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Error("Compare disagrees with Less")
	}
}

// TestCollectorFinishMerges: end-to-end through the Collector, the
// merged trace is canonically ordered with all events present.
func TestCollectorFinishMerges(t *testing.T) {
	c := NewCollector()
	rng := rand.New(rand.NewSource(44))
	var bufs []*ThreadBuffer
	for i := 0; i < 6; i++ {
		creator := NoThread
		if i > 0 {
			creator = 0
		}
		bufs = append(bufs, c.RegisterThread("", creator))
	}
	m := c.RegisterObject(ObjMutex, "m", 0)
	clocks := make([]Time, len(bufs))
	total := 500
	for i := 0; i < total; i++ {
		tid := rng.Intn(len(bufs))
		clocks[tid] += Time(rng.Intn(3))
		bufs[tid].Emit(clocks[tid], EvLockAcquire, m, 0)
	}
	tr := c.Finish()
	if len(tr.Events) != total {
		t.Fatalf("%d events, want %d", len(tr.Events), total)
	}
	if !EventsSorted(tr.Events) {
		t.Fatal("Finish produced unsorted events")
	}
	eventsEqual(t, tr.Events, refSort(tr.Events), "collector merge")
}
