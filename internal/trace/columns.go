package trace

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Columns is a struct-of-arrays view of an event run. The streaming
// analyzer decodes segment frames straight into this layout so that
// the forward passes can scan one field per branch without
// materializing an Event struct per record, and so that batch varint
// decoding can run over a contiguous byte slice (e.g. an mmapped
// segment body).
//
// All slices share the same length; entry i is event i of the run.
type Columns struct {
	T      []Time
	Seq    []uint64
	Thread []int32
	Kind   []uint8
	Obj    []int32
	Arg    []int64
}

// Len reports the number of decoded events.
func (c *Columns) Len() int { return len(c.T) }

// Reset empties the columns, keeping capacity for about n events.
func (c *Columns) Reset(n int) {
	if cap(c.T) < n {
		c.T = make([]Time, 0, n)
		c.Seq = make([]uint64, 0, n)
		c.Thread = make([]int32, 0, n)
		c.Kind = make([]uint8, 0, n)
		c.Obj = make([]int32, 0, n)
		c.Arg = make([]int64, 0, n)
		return
	}
	c.T = c.T[:0]
	c.Seq = c.Seq[:0]
	c.Thread = c.Thread[:0]
	c.Kind = c.Kind[:0]
	c.Obj = c.Obj[:0]
	c.Arg = c.Arg[:0]
}

// extend grows every column by n entries and returns the first new
// index. The new entries are written by index — one bounds check the
// compiler can hoist, instead of six per-append capacity tests per
// event.
func (c *Columns) extend(n int) int {
	base := len(c.T)
	c.T = extendCol(c.T, base+n)
	c.Seq = extendCol(c.Seq, base+n)
	c.Thread = extendCol(c.Thread, base+n)
	c.Kind = extendCol(c.Kind, base+n)
	c.Obj = extendCol(c.Obj, base+n)
	c.Arg = extendCol(c.Arg, base+n)
	return base
}

// extendCol sets s's length to n, reallocating with headroom if its
// capacity is short.
func extendCol[E any](s []E, n int) []E {
	if cap(s) < n {
		t := make([]E, n, n+n/4)
		copy(t, s)
		return t
	}
	return s[:n]
}

// setLen sets every column's length to n (capacity permitting).
func (c *Columns) setLen(n int) {
	c.T = c.T[:n]
	c.Seq = c.Seq[:n]
	c.Thread = c.Thread[:n]
	c.Kind = c.Kind[:n]
	c.Obj = c.Obj[:n]
	c.Arg = c.Arg[:n]
}

// Event materializes entry i as an Event value.
func (c *Columns) Event(i int) Event {
	return Event{
		T:      c.T[i],
		Seq:    c.Seq[i],
		Thread: ThreadID(c.Thread[i]),
		Kind:   EventKind(c.Kind[i]),
		Obj:    ObjID(c.Obj[i]),
		Arg:    c.Arg[i],
	}
}

// AppendEvents appends events to the columns.
func (c *Columns) AppendEvents(evs []Event) {
	for i := range evs {
		e := &evs[i]
		c.T = append(c.T, e.T)
		c.Seq = append(c.Seq, e.Seq)
		c.Thread = append(c.Thread, int32(e.Thread))
		c.Kind = append(c.Kind, uint8(e.Kind))
		c.Obj = append(c.Obj, int32(e.Obj))
		c.Arg = append(c.Arg, e.Arg)
	}
}

// fastMask selects the high (continuation) bits of the five varint
// fields in an event record when every field fits in one byte: offsets
// 0 (ΔT), 1 (ΔSeq), 2 (thread), 4 (obj) and 5 (arg). Offset 3 is the
// raw kind byte and has no continuation bit.
const fastMask = 0x0000_8080_0080_8080

// AppendFrame batch-decodes count delta-encoded event records from the
// front of buf — the segment frame payload layout, where the delta
// chain resets at the frame start — appends them to the columns, and
// returns the number of bytes consumed. Validation matches DecodeEvent:
// invalid kinds and out-of-range thread/obj IDs are rejected, and a
// record that runs past buf reports ErrTruncated.
//
// The hot path notices that nearly all records encode every varint
// field in a single byte (small deltas, small IDs): one 8-byte load and
// a mask test then decode the whole 6-byte record without looping.
func (c *Columns) AppendFrame(buf []byte, count int) (int, error) {
	base := c.extend(count)
	T := c.T[base : base+count]
	Seq := c.Seq[base : base+count]
	Th := c.Thread[base : base+count]
	K := c.Kind[base : base+count]
	O := c.Obj[base : base+count]
	A := c.Arg[base : base+count]
	var prevT Time
	var prevSeq uint64
	b := buf
	for n := 0; n < count; {
		// Paired fast path: with two single-byte records ahead and
		// enough frame left to load both 8-byte windows, decode the
		// pair in one iteration. Validity checks run before any store;
		// on failure fall through to the single-record path, which
		// re-checks and reports the error at the right index.
		if n+1 < count && len(b) >= 14 {
			w1 := binary.LittleEndian.Uint64(b)
			w2 := binary.LittleEndian.Uint64(b[6:])
			if (w1|w2)&fastMask == 0 {
				k1 := uint8(w1 >> 24)
				k2 := uint8(w2 >> 24)
				o1 := int64((w1 >> 32) & 0x7f)
				o1 = o1>>1 ^ -(o1 & 1)
				o2 := int64((w2 >> 32) & 0x7f)
				o2 = o2>>1 ^ -(o2 & 1)
				if EventKind(k1).Valid() && EventKind(k2).Valid() &&
					o1 >= int64(NoObj) && o2 >= int64(NoObj) {
					d := int64(w1 & 0x7f)
					a := int64((w1 >> 40) & 0x7f)
					prevT += Time(d>>1 ^ -(d & 1))
					prevSeq += (w1 >> 8) & 0x7f
					T[n] = prevT
					Seq[n] = prevSeq
					Th[n] = int32((w1 >> 16) & 0x7f)
					K[n] = k1
					O[n] = int32(o1)
					A[n] = a>>1 ^ -(a & 1)
					d = int64(w2 & 0x7f)
					a = int64((w2 >> 40) & 0x7f)
					prevT += Time(d>>1 ^ -(d & 1))
					prevSeq += (w2 >> 8) & 0x7f
					T[n+1] = prevT
					Seq[n+1] = prevSeq
					Th[n+1] = int32((w2 >> 16) & 0x7f)
					K[n+1] = k2
					O[n+1] = int32(o2)
					A[n+1] = a>>1 ^ -(a & 1)
					b = b[12:]
					n += 2
					continue
				}
			}
		}
		if len(b) >= 8 {
			if w := binary.LittleEndian.Uint64(b); w&fastMask == 0 {
				kind := uint8(w >> 24)
				if !EventKind(kind).Valid() {
					c.setLen(base + n)
					return 0, fmt.Errorf("trace: invalid event kind %d", kind)
				}
				b0 := int64(w & 0x7f)
				b4 := int64((w >> 32) & 0x7f)
				b5 := int64((w >> 40) & 0x7f)
				obj := b4>>1 ^ -(b4 & 1)
				if obj < int64(NoObj) {
					c.setLen(base + n)
					return 0, fmt.Errorf("trace: event obj %d out of range", obj)
				}
				prevT += Time(b0>>1 ^ -(b0 & 1))
				prevSeq += (w >> 8) & 0x7f
				T[n] = prevT
				Seq[n] = prevSeq
				Th[n] = int32((w >> 16) & 0x7f)
				K[n] = kind
				O[n] = int32(obj)
				A[n] = b5>>1 ^ -(b5 & 1)
				b = b[6:]
				n++
				continue
			}
		}
		// General path: retract to the decoded prefix, append one
		// record the slow way, then restore the frame's length.
		c.setLen(base + n)
		m, err := c.appendSlow(b, prevT, prevSeq)
		if err != nil {
			return 0, err
		}
		b = b[m:]
		prevT = c.T[base+n]
		prevSeq = c.Seq[base+n]
		c.setLen(base + count)
		n++
	}
	return len(buf) - len(b), nil
}

// appendSlow decodes one record the general way: any field may span
// multiple varint bytes, or the record may sit within 8 bytes of the
// end of the frame (where the 8-byte fast-path load cannot reach).
func (c *Columns) appendSlow(buf []byte, prevT Time, prevSeq uint64) (int, error) {
	pos := 0
	next := func() (int64, error) {
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return 0, errShortEvent
		}
		pos += n
		return v, nil
	}
	dt, err := next()
	if err != nil {
		return 0, err
	}
	dseq, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return 0, errShortEvent
	}
	pos += n
	thread, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return 0, errShortEvent
	}
	pos += n
	if pos >= len(buf) {
		return 0, errShortEvent
	}
	kind := buf[pos]
	pos++
	obj, err := next()
	if err != nil {
		return 0, err
	}
	arg, err := next()
	if err != nil {
		return 0, err
	}
	if !EventKind(kind).Valid() {
		return 0, fmt.Errorf("trace: invalid event kind %d", kind)
	}
	if thread > math.MaxInt32 {
		return 0, fmt.Errorf("trace: event thread %d out of range", thread)
	}
	if obj < int64(NoObj) || obj > math.MaxInt32 {
		return 0, fmt.Errorf("trace: event obj %d out of range", obj)
	}
	c.T = append(c.T, prevT+Time(dt))
	c.Seq = append(c.Seq, prevSeq+dseq)
	c.Thread = append(c.Thread, int32(thread))
	c.Kind = append(c.Kind, kind)
	c.Obj = append(c.Obj, int32(obj))
	c.Arg = append(c.Arg, arg)
	return pos, nil
}
