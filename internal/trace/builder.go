package trace

// Builder constructs traces by hand, with explicit timestamps. It is
// used by tests and by the fig1 experiment, which reproduces the
// paper's illustrative execution exactly.
//
// The builder assigns sequence numbers in call order, so events with
// equal timestamps are ordered by emission order. Call Trace to
// finalize; the builder stays usable.
type Builder struct {
	threads []ThreadInfo
	objects []ObjectInfo
	events  []Event
	meta    map[string]string
	seq     uint64
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{meta: make(map[string]string)}
}

// Meta sets a metadata entry.
func (b *Builder) Meta(key, value string) *Builder {
	b.meta[key] = value
	return b
}

// Thread registers a thread and returns its ID.
func (b *Builder) Thread(name string, creator ThreadID) ThreadID {
	id := ThreadID(len(b.threads))
	b.threads = append(b.threads, ThreadInfo{ID: id, Name: name, Creator: creator})
	return id
}

// Mutex registers a mutex and returns its ID.
func (b *Builder) Mutex(name string) ObjID { return b.object(ObjMutex, name, 0) }

// Barrier registers a barrier for n parties and returns its ID.
func (b *Builder) Barrier(name string, n int) ObjID { return b.object(ObjBarrier, name, n) }

// Cond registers a condition variable and returns its ID.
func (b *Builder) Cond(name string) ObjID { return b.object(ObjCond, name, 0) }

// Chan registers a channel with the given buffer capacity (carried in
// Parties, as the live runtimes record it) and returns its ID.
func (b *Builder) Chan(name string, capacity int) ObjID { return b.object(ObjChan, name, capacity) }

func (b *Builder) object(kind ObjKind, name string, parties int) ObjID {
	id := ObjID(len(b.objects))
	b.objects = append(b.objects, ObjectInfo{ID: id, Kind: kind, Name: name, Parties: parties})
	return id
}

// Event appends a raw event.
func (b *Builder) Event(t Time, thread ThreadID, kind EventKind, obj ObjID, arg int64) *Builder {
	b.seq++
	b.events = append(b.events, Event{T: t, Seq: b.seq, Thread: thread, Kind: kind, Obj: obj, Arg: arg})
	return b
}

// Start records a thread-start at t. For non-root threads pass the
// creator; the creator's thread-create event is appended as well (at
// the same timestamp, just before the start).
func (b *Builder) Start(t Time, thread ThreadID) *Builder {
	creator := NoThread
	if int(thread) < len(b.threads) {
		creator = b.threads[thread].Creator
	}
	if creator != NoThread {
		b.Event(t, creator, EvThreadCreate, NoObj, int64(thread))
	}
	return b.Event(t, thread, EvThreadStart, NoObj, int64(creator))
}

// Exit records a thread-exit at t.
func (b *Builder) Exit(t Time, thread ThreadID) *Builder {
	return b.Event(t, thread, EvThreadExit, NoObj, 0)
}

// CS records a full critical section: acquire at acq, obtain at obt
// (contended iff obt > acq), release at rel.
func (b *Builder) CS(thread ThreadID, m ObjID, acq, obt, rel Time) *Builder {
	contended := int64(0)
	if obt > acq {
		contended = LockArgContended
	}
	b.Event(acq, thread, EvLockAcquire, m, 0)
	b.Event(obt, thread, EvLockObtain, m, contended)
	b.Event(rel, thread, EvLockRelease, m, 0)
	return b
}

// SharedCS records a reader (shared) critical section on a read-write
// mutex.
func (b *Builder) SharedCS(thread ThreadID, m ObjID, acq, obt, rel Time) *Builder {
	arg := int64(LockArgShared)
	obtArg := arg
	if obt > acq {
		obtArg |= LockArgContended
	}
	b.Event(acq, thread, EvLockAcquire, m, arg)
	b.Event(obt, thread, EvLockObtain, m, obtArg)
	b.Event(rel, thread, EvLockRelease, m, arg)
	return b
}

// BarrierWait records arrive at `arrive` and depart at `depart`; last
// marks the thread as the final arriver (which does not block).
func (b *Builder) BarrierWait(thread ThreadID, bar ObjID, arrive, depart Time, last bool) *Builder {
	b.Event(arrive, thread, EvBarrierArrive, bar, 0)
	arg := int64(0)
	if last {
		arg = 1
	}
	b.Event(depart, thread, EvBarrierDepart, bar, arg)
	return b
}

// Join records a join-begin/join-end pair on target.
func (b *Builder) Join(thread ThreadID, target ThreadID, begin, end Time) *Builder {
	b.Event(begin, thread, EvJoinBegin, NoObj, int64(target))
	b.Event(end, thread, EvJoinEnd, NoObj, int64(target))
	return b
}

// Trace finalizes the builder into a canonically ordered Trace.
func (b *Builder) Trace() *Trace {
	events := append([]Event(nil), b.events...)
	SortEvents(events)
	meta := make(map[string]string, len(b.meta))
	for k, v := range b.meta {
		meta[k] = v
	}
	return &Trace{
		Events:  events,
		Objects: append([]ObjectInfo(nil), b.objects...),
		Threads: append([]ThreadInfo(nil), b.threads...),
		Meta:    meta,
	}
}
