package trace

import "slices"

// Canonical event ordering.
//
// Every trace finalization path (Collector.Finish, Builder.Trace,
// ReadStream) must order events identically, or the same execution
// would analyze differently depending on how its trace was produced.
// The canonical order is (T, Seq, Thread):
//
//   - T first: the analysis walks time.
//   - Seq second: sequence numbers are assigned in emission order, so
//     at equal timestamps they preserve causality — the release that
//     grants a contended lock is emitted before the woken thread's
//     obtain, and waker resolution (internal/core) depends on seeing
//     them in that order. Breaking ties by ThreadID instead would
//     reorder a same-timestamp handoff whenever the waiter has the
//     smaller ID, corrupting the critical-path walk.
//   - Thread last: a defensive total-order fallback for degenerate
//     traces with duplicate sequence numbers (e.g. hand-merged
//     streams); never reached for traces from our own backends.
//
// Less is the single source of truth; the k-way merge and every sort
// fall back to it.

// Less reports whether a precedes b in the canonical (T, Seq, Thread)
// event order.
func Less(a, b Event) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.Thread < b.Thread
}

// Compare is the three-way form of Less (for slices.SortFunc and
// friends).
func Compare(a, b Event) int {
	switch {
	case a.T < b.T:
		return -1
	case a.T > b.T:
		return 1
	case a.Seq < b.Seq:
		return -1
	case a.Seq > b.Seq:
		return 1
	case a.Thread < b.Thread:
		return -1
	case a.Thread > b.Thread:
		return 1
	}
	return 0
}

// EventsSorted reports whether events are in canonical order.
func EventsSorted(events []Event) bool {
	for i := 1; i < len(events); i++ {
		if Less(events[i], events[i-1]) {
			return false
		}
	}
	return true
}

// MergeSorted merges per-thread event buffers into one canonically
// ordered slice with a k-way heap merge: O(E log k) comparisons over
// already-sorted runs instead of the O(E log E) of re-sorting the
// concatenation, and no comparator closures on the per-event path.
//
// Each buffer is expected to be canonically ordered already (per-thread
// buffers are: a thread's timestamps are non-decreasing and its
// sequence numbers increase with emission order). A buffer that is not
// — possible only for hand-built traces — is sorted in place first, so
// the result is always exactly the canonical order of the union.
//
// MergeSorted takes ownership of the buffers (they may be sorted in
// place); the returned slice is freshly allocated.
func MergeSorted(buffers [][]Event) []Event {
	total := 0
	runs := buffers[:0]
	for _, b := range buffers {
		if len(b) == 0 {
			continue
		}
		if !EventsSorted(b) {
			slices.SortFunc(b, Compare)
		}
		total += len(b)
		runs = append(runs, b)
	}
	out := make([]Event, 0, total)
	return mergeInto(out, runs)
}

// mergeInto appends the k-way merge of the sorted runs to out and
// returns it. Runs must be non-empty and canonically ordered.
func mergeInto(out []Event, runs [][]Event) []Event {
	switch len(runs) {
	case 0:
		return out
	case 1:
		return append(out, runs[0]...)
	case 2:
		return merge2(out, runs[0], runs[1])
	}

	// Binary min-heap of runs keyed by their head event. sift-down
	// compares head events directly — no interface or closure calls.
	h := runs
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	for len(h) > 1 {
		out = append(out, h[0][0])
		if h[0] = h[0][1:]; len(h[0]) == 0 {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(h, 0)
	}
	return append(out, h[0]...)
}

// merge2 is the two-way fast path.
func merge2(out, a, b []Event) []Event {
	for len(a) > 0 && len(b) > 0 {
		if Less(b[0], a[0]) {
			out = append(out, b[0])
			b = b[1:]
		} else {
			out = append(out, a[0])
			a = a[1:]
		}
	}
	out = append(out, a...)
	return append(out, b...)
}

// siftDown restores the heap property at i, ordering runs by their
// head event.
func siftDown(h [][]Event, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && Less(h[l][0], h[min][0]) {
			min = l
		}
		if r < len(h) && Less(h[r][0], h[min][0]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// SortEvents puts events into canonical order in place.
//
// The fast path exploits that event streams are a time-ordered
// interleaving of per-thread runs: it partitions events by thread (one
// flat scratch allocation), verifies each run — per-thread runs are
// almost always already ordered — and k-way merges them back, which is
// O(E log T) instead of the O(E log E) comparison sort. Events with
// out-of-range thread IDs, or a genuinely unordered run, fall back to
// a comparison sort of the affected part.
func SortEvents(events []Event) {
	if EventsSorted(events) {
		return
	}
	const maxDenseThreads = 1 << 20
	maxThread := ThreadID(-1)
	for i := range events {
		if events[i].Thread < 0 || events[i].Thread > maxDenseThreads {
			slices.SortFunc(events, Compare)
			return
		}
		if events[i].Thread > maxThread {
			maxThread = events[i].Thread
		}
	}
	nThreads := int(maxThread) + 1

	// Partition into per-thread runs carved out of one scratch slice.
	counts := make([]int, nThreads+1)
	for i := range events {
		counts[events[i].Thread+1]++
	}
	for t := 1; t <= nThreads; t++ {
		counts[t] += counts[t-1]
	}
	scratch := make([]Event, len(events))
	fill := make([]int, nThreads)
	for i := range events {
		t := events[i].Thread
		scratch[counts[t]+fill[t]] = events[i]
		fill[t]++
	}
	runs := make([][]Event, 0, nThreads)
	for t := 0; t < nThreads; t++ {
		run := scratch[counts[t] : counts[t]+fill[t]]
		if len(run) == 0 {
			continue
		}
		if !EventsSorted(run) {
			slices.SortFunc(run, Compare)
		}
		runs = append(runs, run)
	}
	mergeInto(events[:0], runs)
}
