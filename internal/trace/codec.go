package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary trace format.
//
// The format is a compact varint encoding, analogous to the flat event
// records the paper's instrumentation module flushes to disk when the
// instrumented application completes:
//
//	magic   "CLTR"            4 bytes
//	version uvarint           currently 1
//	meta    uvarint count, then (string key, string value) pairs
//	threads uvarint count, then (string name, varint creator) per thread
//	objects uvarint count, then (byte kind, string name, uvarint parties)
//	events  uvarint count, then per event:
//	        varint  delta-T (vs previous event's T)
//	        uvarint delta-Seq (vs previous event's Seq)
//	        uvarint thread
//	        byte    kind
//	        varint  obj
//	        varint  arg
//
// Strings are uvarint length + bytes. Events must already be sorted by
// (T, Seq), which Collector.Finish guarantees; the decoder verifies it.

const (
	binaryMagic   = "CLTR"
	binaryVersion = 1
)

// maxDecodeCount caps decoded collection sizes to defend against
// corrupt or hostile inputs claiming absurd lengths.
const maxDecodeCount = 1 << 30

// WriteBinary encodes tr to w in the binary trace format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	writeUvarint(bw, binaryVersion)

	writeUvarint(bw, uint64(len(tr.Meta)))
	// Deterministic meta order: sort keys.
	for _, k := range sortedKeys(tr.Meta) {
		writeString(bw, k)
		writeString(bw, tr.Meta[k])
	}

	writeUvarint(bw, uint64(len(tr.Threads)))
	for _, th := range tr.Threads {
		writeString(bw, th.Name)
		writeVarint(bw, int64(th.Creator))
	}

	writeUvarint(bw, uint64(len(tr.Objects)))
	for _, o := range tr.Objects {
		if err := bw.WriteByte(byte(o.Kind)); err != nil {
			return err
		}
		writeString(bw, o.Name)
		writeUvarint(bw, uint64(o.Parties))
	}

	writeUvarint(bw, uint64(len(tr.Events)))
	var prevT Time
	var prevSeq uint64
	for _, e := range tr.Events {
		writeVarint(bw, int64(e.T-prevT))
		writeUvarint(bw, e.Seq-prevSeq)
		writeUvarint(bw, uint64(e.Thread))
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		writeVarint(bw, int64(e.Obj))
		writeVarint(bw, e.Arg)
		prevT, prevSeq = e.T, e.Seq
	}
	return bw.Flush()
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}

	tr := &Trace{Meta: make(map[string]string)}

	nMeta, err := readCount(br, "meta")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nMeta; i++ {
		k, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("trace: meta key: %w", err)
		}
		v, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("trace: meta value: %w", err)
		}
		tr.Meta[k] = v
	}

	nThreads, err := readCount(br, "threads")
	if err != nil {
		return nil, err
	}
	tr.Threads = make([]ThreadInfo, 0, min(nThreads, 1<<16))
	for i := uint64(0); i < nThreads; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("trace: thread name: %w", err)
		}
		creator, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: thread creator: %w", err)
		}
		tr.Threads = append(tr.Threads, ThreadInfo{ID: ThreadID(i), Name: name, Creator: ThreadID(creator)})
	}

	nObjects, err := readCount(br, "objects")
	if err != nil {
		return nil, err
	}
	tr.Objects = make([]ObjectInfo, 0, min(nObjects, 1<<16))
	for i := uint64(0); i < nObjects; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: object kind: %w", err)
		}
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("trace: object name: %w", err)
		}
		parties, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: object parties: %w", err)
		}
		if parties > math.MaxInt32 {
			return nil, fmt.Errorf("trace: object parties %d out of range", parties)
		}
		tr.Objects = append(tr.Objects, ObjectInfo{ID: ObjID(i), Kind: ObjKind(kind), Name: name, Parties: int(parties)})
	}

	nEvents, err := readCount(br, "events")
	if err != nil {
		return nil, err
	}
	tr.Events = make([]Event, 0, min(nEvents, 1<<20))
	var prevT Time
	var prevSeq uint64
	for i := uint64(0); i < nEvents; i++ {
		dt, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d time: %w", i, err)
		}
		dseq, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d seq: %w", i, err)
		}
		thread, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d thread: %w", i, err)
		}
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: event %d kind: %w", i, err)
		}
		obj, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d obj: %w", i, err)
		}
		arg, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d arg: %w", i, err)
		}
		if !EventKind(kind).Valid() {
			return nil, fmt.Errorf("trace: event %d: invalid kind %d", i, kind)
		}
		if thread >= nThreads {
			return nil, fmt.Errorf("trace: event %d: thread %d out of range", i, thread)
		}
		e := Event{
			T:      prevT + Time(dt),
			Seq:    prevSeq + dseq,
			Thread: ThreadID(thread),
			Kind:   EventKind(kind),
			Obj:    ObjID(obj),
			Arg:    arg,
		}
		if i > 0 && (e.T < prevT || (e.T == prevT && e.Seq <= prevSeq)) {
			return nil, fmt.Errorf("trace: event %d out of order", i)
		}
		prevT, prevSeq = e.T, e.Seq
		tr.Events = append(tr.Events, e)
	}
	return tr, nil
}

// AppendEvent appends the event-record encoding of e — the same varint
// layout WriteBinary uses — to dst, with T and Seq delta-encoded
// against prev. Pass the zero Event as prev at the start of an
// independently decodable block (the segment format resets deltas per
// frame so frames decode without upstream context).
func AppendEvent(dst []byte, e, prev Event) []byte {
	dst = binary.AppendVarint(dst, int64(e.T-prev.T))
	dst = binary.AppendUvarint(dst, e.Seq-prev.Seq)
	dst = binary.AppendUvarint(dst, uint64(e.Thread))
	dst = append(dst, byte(e.Kind))
	dst = binary.AppendVarint(dst, int64(e.Obj))
	return binary.AppendVarint(dst, e.Arg)
}

// DecodeEvent decodes one event record from the front of buf, undoing
// the delta encoding against prev, and returns the event and the
// number of bytes consumed. It rejects invalid kinds and out-of-range
// IDs but does not know the trace's thread table; callers that do must
// range-check Thread themselves.
func DecodeEvent(buf []byte, prev Event) (Event, int, error) {
	pos := 0
	next := func() (int64, error) {
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return 0, errShortEvent
		}
		pos += n
		return v, nil
	}
	nextU := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, errShortEvent
		}
		pos += n
		return v, nil
	}
	dt, err := next()
	if err != nil {
		return Event{}, 0, err
	}
	dseq, err := nextU()
	if err != nil {
		return Event{}, 0, err
	}
	thread, err := nextU()
	if err != nil {
		return Event{}, 0, err
	}
	if pos >= len(buf) {
		return Event{}, 0, errShortEvent
	}
	kind := EventKind(buf[pos])
	pos++
	obj, err := next()
	if err != nil {
		return Event{}, 0, err
	}
	arg, err := next()
	if err != nil {
		return Event{}, 0, err
	}
	if !kind.Valid() {
		return Event{}, 0, fmt.Errorf("trace: invalid event kind %d", kind)
	}
	if thread > math.MaxInt32 {
		return Event{}, 0, fmt.Errorf("trace: event thread %d out of range", thread)
	}
	if obj < int64(NoObj) || obj > math.MaxInt32 {
		return Event{}, 0, fmt.Errorf("trace: event obj %d out of range", obj)
	}
	e := Event{
		T:      prev.T + Time(dt),
		Seq:    prev.Seq + dseq,
		Thread: ThreadID(thread),
		Kind:   kind,
		Obj:    ObjID(obj),
		Arg:    arg,
	}
	return e, pos, nil
}

var errShortEvent = fmt.Errorf("trace: %w event record", ErrTruncated)

var errStringTooLong = errors.New("trace: string too long")

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", errStringTooLong
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func readCount(r *bufio.Reader, what string) (uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("trace: reading %s count: %w", what, err)
	}
	if n > maxDecodeCount {
		return 0, fmt.Errorf("trace: %s count %d too large", what, n)
	}
	return n, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; meta maps are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
