//go:build unix

package segment

import (
	"os"
	"syscall"
)

// mmapFile maps the whole of f read-only. Returns the mapping, which
// must be released with munmapFile. Fails (and the caller falls back
// to buffered reads) for empty files or on platforms/filesystems that
// refuse the mapping.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
