package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"
	"sort"

	"critlock/internal/trace"
)

// FileWriter writes one segment file. Events must be appended in
// canonical (T, Seq) order; the writer frames them, maintains the
// footer index and finishes the file with footer and trailer on Close.
type FileWriter struct {
	f    *os.File
	bw   *bufio.Writer
	crc  hash.Hash32
	path string
	off  int64 // bytes emitted into the body (header + frames)

	frame       []byte // current frame's encoded payload
	frameCount  int
	framePrev   trace.Event
	frameEvents int

	ftr       Footer
	prev      trace.Event
	thrCounts map[trace.ThreadID]int
	locks     map[trace.ObjID]*LockSummary
	chans     map[trace.ObjID]*ChanSummary
	err       error
}

// NewFileWriter creates (truncating) a segment file at path.
func NewFileWriter(path string, opts Options) (*FileWriter, error) {
	opts = opts.withDefaults()
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &FileWriter{
		f:           f,
		bw:          bufio.NewWriter(f),
		crc:         crc32.NewIEEE(),
		path:        path,
		frameEvents: opts.FrameEvents,
		thrCounts:   map[trace.ThreadID]int{},
		locks:       map[trace.ObjID]*LockSummary{},
		chans:       map[trace.ObjID]*ChanSummary{},
	}
	w.body([]byte(segMagic))
	w.body(binary.AppendUvarint(nil, segVersion))
	return w, nil
}

// body writes p to the file and folds it into the body CRC.
func (w *FileWriter) body(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(p); err != nil {
		w.err = err
		return
	}
	w.crc.Write(p)
	w.off += int64(len(p))
}

// Path returns the file's path.
func (w *FileWriter) Path() string { return w.path }

// Count returns the number of events appended so far.
func (w *FileWriter) Count() int { return w.ftr.Count }

// Append adds one event. Events must arrive in strictly increasing
// (T, Seq) order.
func (w *FileWriter) Append(e trace.Event) error {
	if w.err != nil {
		return w.err
	}
	if w.ftr.Count > 0 && !trace.Less(w.prev, e) {
		w.err = fmt.Errorf("segment: %s: event out of order (t=%d seq=%d after t=%d seq=%d)",
			filepath.Base(w.path), e.T, e.Seq, w.prev.T, w.prev.Seq)
		return w.err
	}
	if w.frameCount == 0 {
		w.framePrev = trace.Event{}
	}
	w.frame = trace.AppendEvent(w.frame, e, w.framePrev)
	w.framePrev = e
	w.frameCount++

	if w.ftr.Count == 0 {
		w.ftr.MinT, w.ftr.FirstSeq = e.T, e.Seq
	}
	w.ftr.MaxT, w.ftr.LastSeq = e.T, e.Seq
	w.ftr.Count++
	w.prev = e
	w.thrCounts[e.Thread]++
	switch e.Kind {
	case trace.EvLockAcquire:
		w.lockSum(e.Obj).Acquires++
	case trace.EvLockObtain:
		ls := w.lockSum(e.Obj)
		ls.Obtains++
		if e.Contended() {
			ls.Contended++
		}
	case trace.EvLockRelease:
		w.lockSum(e.Obj).Releases++
	case trace.EvChanSend:
		cs := w.chanSum(e.Obj)
		cs.Sends++
		if e.ChanBlocked() {
			cs.BlockedSends++
		}
	case trace.EvChanRecv:
		cs := w.chanSum(e.Obj)
		cs.Recvs++
		if e.ChanBlocked() {
			cs.BlockedRecvs++
		}
	case trace.EvChanClose:
		w.chanSum(e.Obj).Closes++
	}

	if w.frameCount >= w.frameEvents {
		w.flushFrame()
	}
	return w.err
}

func (w *FileWriter) lockSum(obj trace.ObjID) *LockSummary {
	ls := w.locks[obj]
	if ls == nil {
		ls = &LockSummary{Obj: obj}
		w.locks[obj] = ls
	}
	return ls
}

func (w *FileWriter) chanSum(obj trace.ObjID) *ChanSummary {
	cs := w.chans[obj]
	if cs == nil {
		cs = &ChanSummary{Obj: obj}
		w.chans[obj] = cs
	}
	return cs
}

func (w *FileWriter) flushFrame() {
	if w.frameCount == 0 {
		return
	}
	var hdr [1 + 2*binary.MaxVarintLen64]byte
	hdr[0] = frameTag
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(w.frameCount))
	n += binary.PutUvarint(hdr[n:], uint64(len(w.frame)))
	w.body(hdr[:n])
	w.body(w.frame)
	w.frame = w.frame[:0]
	w.frameCount = 0
}

// Close flushes the last frame, writes footer and trailer and closes
// the file, returning the final footer.
func (w *FileWriter) Close() (*Footer, error) {
	if w.err != nil {
		w.f.Close()
		return nil, w.err
	}
	w.flushFrame()

	w.ftr.ThreadCounts = w.ftr.ThreadCounts[:0]
	for tid, c := range w.thrCounts {
		w.ftr.ThreadCounts = append(w.ftr.ThreadCounts, ThreadCount{Thread: tid, Count: c})
	}
	slices.SortFunc(w.ftr.ThreadCounts, func(a, b ThreadCount) int { return int(a.Thread) - int(b.Thread) })
	w.ftr.Locks = w.ftr.Locks[:0]
	for _, ls := range w.locks {
		w.ftr.Locks = append(w.ftr.Locks, *ls)
	}
	slices.SortFunc(w.ftr.Locks, func(a, b LockSummary) int { return int(a.Obj) - int(b.Obj) })
	w.ftr.Chans = w.ftr.Chans[:0]
	for _, cs := range w.chans {
		w.ftr.Chans = append(w.ftr.Chans, *cs)
	}
	slices.SortFunc(w.ftr.Chans, func(a, b ChanSummary) int { return int(a.Obj) - int(b.Obj) })

	footerOff := w.off
	payload := appendFooter(nil, &w.ftr)
	out := make([]byte, 0, 1+binary.MaxVarintLen64+len(payload)+trailerSize)
	out = append(out, footerTag)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, w.crc.Sum32())
	out = binary.LittleEndian.AppendUint32(out, crcOf(payload))
	out = binary.LittleEndian.AppendUint64(out, uint64(footerOff))
	out = append(out, segEndMagic...)
	if w.err == nil {
		if _, err := w.bw.Write(out); err != nil {
			w.err = err
		}
	}
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	if w.err != nil {
		return nil, w.err
	}
	return &w.ftr, nil
}

// SegmentInfo is one manifest entry: a segment file and its index
// summary. First is the global index of the segment's first event,
// derived cumulatively by the reader.
type SegmentInfo struct {
	Name     string
	First    int
	Count    int
	MinT     trace.Time
	MaxT     trace.Time
	FirstSeq uint64
	LastSeq  uint64
}

// Writer writes a complete segmented trace directory: events in
// canonical order, rolled into segment files of opts.SegmentEvents
// each, plus the manifest on Close.
type Writer struct {
	dir    string
	opts   Options
	meta   map[string]string
	thrs   []trace.ThreadInfo
	objs   []trace.ObjectInfo
	cur    *FileWriter
	segs   []SegmentInfo
	prev   trace.Event
	total  int
	closed bool
	err    error
}

// NewWriter creates dir (if needed) and returns a Writer into it.
func NewWriter(dir string, opts Options) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Writer{dir: dir, opts: opts.withDefaults(), meta: map[string]string{}}, nil
}

// SetMeta records a metadata pair for the manifest.
func (w *Writer) SetMeta(key, value string) { w.meta[key] = value }

// SetSkeleton records the thread/object registrations and metadata the
// manifest will carry. Call any time before Close.
func (w *Writer) SetSkeleton(threads []trace.ThreadInfo, objects []trace.ObjectInfo, meta map[string]string) {
	w.thrs = append(w.thrs[:0], threads...)
	w.objs = append(w.objs[:0], objects...)
	for k, v := range meta {
		w.meta[k] = v
	}
}

// Append adds one event. Events must arrive in strictly increasing
// (T, Seq) order across the whole directory.
func (w *Writer) Append(e trace.Event) error {
	if w.err != nil {
		return w.err
	}
	if w.total > 0 && !trace.Less(w.prev, e) {
		w.err = fmt.Errorf("segment: event out of order (t=%d seq=%d after t=%d seq=%d)",
			e.T, e.Seq, w.prev.T, w.prev.Seq)
		return w.err
	}
	if w.cur == nil {
		name := fmt.Sprintf("seg-%06d.clsg", len(w.segs))
		fw, err := NewFileWriter(filepath.Join(w.dir, name), w.opts)
		if err != nil {
			w.err = err
			return err
		}
		w.cur = fw
	}
	if err := w.cur.Append(e); err != nil {
		w.err = err
		return err
	}
	w.prev = e
	w.total++
	if w.cur.Count() >= w.opts.SegmentEvents {
		w.err = w.rollSegment()
	}
	return w.err
}

func (w *Writer) rollSegment() error {
	ftr, err := w.cur.Close()
	if err != nil {
		return err
	}
	w.segs = append(w.segs, SegmentInfo{
		Name:     filepath.Base(w.cur.Path()),
		First:    w.total - ftr.Count,
		Count:    ftr.Count,
		MinT:     ftr.MinT,
		MaxT:     ftr.MaxT,
		FirstSeq: ftr.FirstSeq,
		LastSeq:  ftr.LastSeq,
	})
	w.cur = nil
	return nil
}

// Close finishes the open segment and writes the manifest.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		if w.cur != nil {
			w.cur.Close()
		}
		return w.err
	}
	if w.cur != nil && w.cur.Count() > 0 {
		w.err = w.rollSegment()
	} else if w.cur != nil {
		w.cur.Close()
		os.Remove(w.cur.Path())
		w.cur = nil
	}
	if w.err != nil {
		return w.err
	}
	return w.writeManifest()
}

func (w *Writer) writeManifest() error {
	buf := append([]byte(nil), manifestMagic...)
	buf = binary.AppendUvarint(buf, manifestVersion)

	keys := make([]string, 0, len(w.meta))
	for k := range w.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, w.meta[k])
	}

	buf = binary.AppendUvarint(buf, uint64(len(w.thrs)))
	for _, th := range w.thrs {
		buf = appendString(buf, th.Name)
		buf = binary.AppendVarint(buf, int64(th.Creator))
	}
	buf = binary.AppendUvarint(buf, uint64(len(w.objs)))
	for _, o := range w.objs {
		buf = append(buf, byte(o.Kind))
		buf = appendString(buf, o.Name)
		buf = binary.AppendUvarint(buf, uint64(o.Parties))
	}
	buf = binary.AppendUvarint(buf, uint64(len(w.segs)))
	for _, s := range w.segs {
		buf = appendString(buf, s.Name)
		buf = binary.AppendUvarint(buf, uint64(s.Count))
		buf = binary.AppendVarint(buf, int64(s.MinT))
		buf = binary.AppendVarint(buf, int64(s.MaxT))
		buf = binary.AppendUvarint(buf, s.FirstSeq)
		buf = binary.AppendUvarint(buf, s.LastSeq)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crcOf(buf))
	return os.WriteFile(filepath.Join(w.dir, ManifestName), buf, 0o644)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// WriteTrace writes an in-memory trace as a segmented directory — the
// bulk conversion path (cla -segdir on an existing .cltr file, tests).
func WriteTrace(dir string, tr *trace.Trace, opts Options) error {
	w, err := NewWriter(dir, opts)
	if err != nil {
		return err
	}
	w.SetSkeleton(tr.Threads, tr.Objects, tr.Meta)
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
