package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"critlock/internal/trace"
)

// fuzzSeedSegment builds a valid single-segment image for seeding.
func fuzzSeedSegment(f *testing.F) []byte {
	f.Helper()
	tr := sampleTrace(80)
	path := filepath.Join(f.TempDir(), "seed.clsg")
	w, err := NewFileWriter(path, Options{FrameEvents: 16})
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzSegmentFile: arbitrary bytes must never panic the segment
// decoder, and any event stream it accepts must be safe to hand to
// trace.Validate.
func FuzzSegmentFile(f *testing.F) {
	valid := fuzzSeedSegment(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(valid[:len(valid)/2])
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 10 {
		mutated[len(mutated)/2] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := NewFileReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // rejection is fine; panics are not
		}
		events, err := fr.ReadAll(nil)
		if err != nil {
			return
		}
		// Accepted events must be safely validatable: build a skeleton
		// wide enough for every referenced ID.
		maxThr, maxObj := trace.ThreadID(-1), trace.ObjID(-1)
		for _, e := range events {
			if e.Thread > maxThr {
				maxThr = e.Thread
			}
			if e.Obj > maxObj {
				maxObj = e.Obj
			}
		}
		tr := &trace.Trace{Events: events}
		for i := trace.ThreadID(0); i <= maxThr; i++ {
			tr.Threads = append(tr.Threads, trace.ThreadInfo{ID: i, Creator: trace.NoThread})
		}
		for i := trace.ObjID(0); i <= maxObj; i++ {
			tr.Objects = append(tr.Objects, trace.ObjectInfo{ID: i, Kind: trace.ObjMutex})
		}
		_ = trace.Validate(tr) // must not panic
	})
}

// FuzzManifest: arbitrary manifest bytes must never panic Open.
func FuzzManifest(f *testing.F) {
	tr := sampleTrace(60)
	dir := filepath.Join(f.TempDir(), "segs")
	if err := WriteTrace(dir, tr, Options{SegmentEvents: 16}); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(manifestMagic))
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		mdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(mdir, ManifestName), data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(mdir)
		if err != nil {
			return
		}
		// A manifest that parses references segment files that do not
		// exist here; loading must error cleanly, not panic.
		var buf []trace.Event
		for i := 0; i < r.NumSegments(); i++ {
			if buf, err = r.LoadSegment(i, buf); err != nil {
				return
			}
		}
	})
}
