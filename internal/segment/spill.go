package segment

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"critlock/internal/trace"
)

// Spiller bounds trace-generation memory: it implements
// trace.SpillSink by appending each thread's spilled runs to a
// per-thread run file (a thread's events are already canonically
// ordered, so a run file is one long sorted run), then Finish k-way
// merges the runs into a sorted segment directory.
//
// Usage:
//
//	sp, _ := segment.NewSpiller(dir, opts)
//	col.SetSpill(sp, threshold)
//	... run the workload ...
//	rdr, err := sp.Finish(col)
//
// Spiller latches the first I/O error (Emit cannot propagate one) and
// Finish reports it.
type Spiller struct {
	dir  string
	opts Options

	mu   sync.Mutex
	runs map[trace.ThreadID]*FileWriter
	err  error
	done bool
}

// NewSpiller creates dir (if needed) and returns a Spiller writing
// run files into it.
func NewSpiller(dir string, opts Options) (*Spiller, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Spiller{dir: dir, opts: opts.withDefaults(), runs: map[trace.ThreadID]*FileWriter{}}, nil
}

// SpillRun appends one thread's buffered events to its run file.
func (s *Spiller) SpillRun(thread trace.ThreadID, events []trace.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.done {
		s.err = fmt.Errorf("segment: spill after Finish")
		return s.err
	}
	w := s.runs[thread]
	if w == nil {
		var err error
		w, err = NewFileWriter(filepath.Join(s.dir, fmt.Sprintf("run-t%d.clsg", thread)), s.opts)
		if err != nil {
			s.err = err
			return err
		}
		s.runs[thread] = w
	}
	for _, e := range events {
		if err := w.Append(e); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// Err returns the latched error, if any.
func (s *Spiller) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Finish drains the collector's remaining buffers, merges all run
// files into a sorted segment directory with the collector's
// registrations and metadata, deletes the run files and returns a
// Reader over the result. Call once, after the run has completed.
func (s *Spiller) Finish(c *trace.Collector) (*Reader, error) {
	if err := c.DrainSpill(); err != nil {
		return nil, err
	}
	skel := c.Finish() // buffers are drained: registrations only

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("segment: Finish called twice")
	}
	s.done = true
	if s.err != nil {
		s.closeRunsLocked()
		return nil, s.err
	}

	// Close run writers and reopen them as readers in thread order.
	paths := make([]string, 0, len(s.runs))
	for _, w := range s.runs {
		if _, err := w.Close(); err != nil {
			s.err = err
		}
		paths = append(paths, w.Path())
	}
	s.runs = nil
	if s.err != nil {
		return nil, s.err
	}

	w, err := NewWriter(s.dir, s.opts)
	if err != nil {
		return nil, err
	}
	w.SetSkeleton(skel.Threads, skel.Objects, skel.Meta)
	if err := mergeRuns(w, paths); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	for _, p := range paths {
		os.Remove(p)
	}
	return Open(s.dir)
}

func (s *Spiller) closeRunsLocked() {
	for _, w := range s.runs {
		w.Close()
		os.Remove(w.Path())
	}
	s.runs = nil
}

// runHead is one source in the k-way merge heap.
type runHead struct {
	head trace.Event
	fr   *FileReader
}

// mergeRuns streams the k-way merge of the sorted run files into w.
func mergeRuns(w *Writer, paths []string) error {
	h := make([]runHead, 0, len(paths))
	defer func() {
		for _, rh := range h {
			rh.fr.Close()
		}
	}()
	for _, p := range paths {
		fr, err := OpenFile(p)
		if err != nil {
			return err
		}
		e, err := fr.Next()
		if err == io.EOF {
			fr.Close()
			continue
		}
		if err != nil {
			fr.Close()
			return err
		}
		h = append(h, runHead{head: e, fr: fr})
	}
	// Binary min-heap keyed by head event (same shape as
	// trace.MergeSorted, but pulling from file readers).
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownRuns(h, i)
	}
	for len(h) > 0 {
		if err := w.Append(h[0].head); err != nil {
			return err
		}
		e, err := h[0].fr.Next()
		if err == io.EOF {
			h[0].fr.Close()
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		} else if err != nil {
			return err
		} else {
			h[0].head = e
		}
		siftDownRuns(h, 0)
	}
	return nil
}

func siftDownRuns(h []runHead, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && trace.Less(h[l].head, h[min].head) {
			min = l
		}
		if r < len(h) && trace.Less(h[r].head, h[min].head) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
