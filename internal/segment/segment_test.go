package segment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"critlock/internal/trace"
)

// sampleTrace builds a small canonical trace exercising every record
// shape the codec has: multiple threads and objects, equal-timestamp
// runs (delta 0), contended and shared obtains, channel operations
// (blocked and select-tagged), negative Obj (NoObj on thread events)
// and large Arg values.
func sampleTrace(n int) *trace.Trace {
	tr := &trace.Trace{
		Threads: []trace.ThreadInfo{
			{ID: 0, Name: "main", Creator: trace.NoThread},
			{ID: 1, Name: "w-0", Creator: 0},
			{ID: 2, Name: "w-1", Creator: 0},
		},
		Objects: []trace.ObjectInfo{
			{ID: 0, Kind: trace.ObjMutex, Name: "m0"},
			{ID: 1, Kind: trace.ObjMutex, Name: "m1"},
			{ID: 2, Kind: trace.ObjBarrier, Name: "b", Parties: 2},
			{ID: 3, Kind: trace.ObjChan, Name: "ch", Parties: 1},
		},
		Meta: map[string]string{"workload": "sample", "threads": "3"},
	}
	seq := uint64(0)
	t := trace.Time(0)
	emit := func(tid trace.ThreadID, kind trace.EventKind, obj trace.ObjID, arg int64, dt trace.Time) {
		seq++
		t += dt
		tr.Events = append(tr.Events, trace.Event{
			T: t, Seq: seq, Thread: tid, Kind: kind, Obj: obj, Arg: arg,
		})
	}
	emit(0, trace.EvThreadStart, trace.NoObj, 0, 0)
	emit(0, trace.EvThreadCreate, trace.NoObj, 1, 1)
	emit(1, trace.EvThreadStart, trace.NoObj, 0, 0) // equal-T run
	emit(0, trace.EvThreadCreate, trace.NoObj, 2, 2)
	emit(2, trace.EvThreadStart, trace.NoObj, 0, 0)
	for i := 0; len(tr.Events) < n; i++ {
		tid := trace.ThreadID(i%2 + 1)
		obj := trace.ObjID(i % 2)
		emit(tid, trace.EvLockAcquire, obj, 0, 3)
		arg := int64(0)
		if i%3 == 0 {
			arg = trace.LockArgContended
		}
		if i%5 == 0 {
			arg |= trace.LockArgShared
		}
		emit(tid, trace.EvLockObtain, obj, arg, trace.Time(i%4))
		emit(tid, trace.EvLockRelease, obj, 0, 1000003) // large delta
		if i%4 == 0 {
			emit(1, trace.EvChanSendBegin, 3, 0, 2)
			emit(1, trace.EvChanSend, 3, 0, 1)
			carg := int64(0)
			if i%8 == 0 {
				carg = trace.ChanArgBlocked
			}
			emit(2, trace.EvChanRecvBegin, 3, 0, 1)
			emit(2, trace.EvChanRecv, 3, carg, trace.Time(i%3))
		}
		if i%6 == 0 {
			emit(2, trace.EvSelect, trace.NoObj, 0, 1)
			emit(2, trace.EvChanRecvBegin, 3, 0, 0)
			emit(2, trace.EvChanRecv, 3, trace.ChanArgSelect|trace.ChanArgClosed, 1)
		}
	}
	emit(1, trace.EvChanClose, 3, 0, 1)
	emit(1, trace.EvThreadExit, trace.NoObj, 0, 1)
	emit(2, trace.EvThreadExit, trace.NoObj, 0, 1)
	emit(0, trace.EvThreadExit, trace.NoObj, 0, 1)
	return tr
}

func TestFileWriterRoundTrip(t *testing.T) {
	tr := sampleTrace(100)
	path := filepath.Join(t.TempDir(), "one.clsg")
	w, err := NewFileWriter(path, Options{FrameEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	ftr, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}

	if ftr.Count != len(tr.Events) {
		t.Errorf("footer count = %d, want %d", ftr.Count, len(tr.Events))
	}
	first, last := tr.Events[0], tr.Events[len(tr.Events)-1]
	if ftr.MinT != first.T || ftr.FirstSeq != first.Seq || ftr.MaxT != last.T || ftr.LastSeq != last.Seq {
		t.Errorf("footer range = (%d,%d)..(%d,%d), want (%d,%d)..(%d,%d)",
			ftr.MinT, ftr.FirstSeq, ftr.MaxT, ftr.LastSeq, first.T, first.Seq, last.T, last.Seq)
	}

	// Footer per-thread counts and per-lock summaries must match a
	// direct tally of the input.
	wantThr := map[trace.ThreadID]int{}
	wantLock := map[trace.ObjID]LockSummary{}
	wantChan := map[trace.ObjID]ChanSummary{}
	for _, e := range tr.Events {
		wantThr[e.Thread]++
		switch e.Kind {
		case trace.EvChanSend:
			cs := wantChan[e.Obj]
			cs.Obj = e.Obj
			cs.Sends++
			if e.ChanBlocked() {
				cs.BlockedSends++
			}
			wantChan[e.Obj] = cs
		case trace.EvChanRecv:
			cs := wantChan[e.Obj]
			cs.Obj = e.Obj
			cs.Recvs++
			if e.ChanBlocked() {
				cs.BlockedRecvs++
			}
			wantChan[e.Obj] = cs
		case trace.EvChanClose:
			cs := wantChan[e.Obj]
			cs.Obj = e.Obj
			cs.Closes++
			wantChan[e.Obj] = cs
		}
		switch e.Kind {
		case trace.EvLockAcquire:
			ls := wantLock[e.Obj]
			ls.Obj = e.Obj
			ls.Acquires++
			wantLock[e.Obj] = ls
		case trace.EvLockObtain:
			ls := wantLock[e.Obj]
			ls.Obj = e.Obj
			ls.Obtains++
			if e.Contended() {
				ls.Contended++
			}
			wantLock[e.Obj] = ls
		case trace.EvLockRelease:
			ls := wantLock[e.Obj]
			ls.Obj = e.Obj
			ls.Releases++
			wantLock[e.Obj] = ls
		}
	}
	if len(ftr.ThreadCounts) != len(wantThr) {
		t.Errorf("footer has %d thread counts, want %d", len(ftr.ThreadCounts), len(wantThr))
	}
	for _, tc := range ftr.ThreadCounts {
		if tc.Count != wantThr[tc.Thread] {
			t.Errorf("thread %d count = %d, want %d", tc.Thread, tc.Count, wantThr[tc.Thread])
		}
	}
	for _, ls := range ftr.Locks {
		if ls != wantLock[ls.Obj] {
			t.Errorf("lock %d summary = %+v, want %+v", ls.Obj, ls, wantLock[ls.Obj])
		}
	}
	if len(ftr.Chans) != len(wantChan) {
		t.Errorf("footer has %d chan summaries, want %d", len(ftr.Chans), len(wantChan))
	}
	for _, cs := range ftr.Chans {
		if cs != wantChan[cs.Obj] {
			t.Errorf("chan %d summary = %+v, want %+v", cs.Obj, cs, wantChan[cs.Obj])
		}
	}

	fr, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	got, err := fr.ReadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Fatalf("round trip changed events: got %d, want %d", len(got), len(tr.Events))
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	tr := sampleTrace(500)
	dir := filepath.Join(t.TempDir(), "segs")
	if err := WriteTrace(dir, tr, Options{SegmentEvents: 64, FrameEvents: 16}); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEvents() != len(tr.Events) {
		t.Fatalf("NumEvents = %d, want %d", r.NumEvents(), len(tr.Events))
	}
	if want := (len(tr.Events) + 63) / 64; r.NumSegments() != want {
		t.Fatalf("NumSegments = %d, want %d", r.NumSegments(), want)
	}

	// Segment bounds must tile [0, n) contiguously and LoadSegment
	// must return exactly the corresponding slice.
	next := 0
	var buf []trace.Event
	for i := 0; i < r.NumSegments(); i++ {
		first, count := r.SegmentBounds(i)
		if first != next || count <= 0 {
			t.Fatalf("segment %d bounds = (%d,%d), want first=%d", i, first, count, next)
		}
		buf, err = r.LoadSegment(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(buf, tr.Events[first:first+count]) {
			t.Fatalf("segment %d contents differ", i)
		}
		next = first + count
	}
	if next != len(tr.Events) {
		t.Fatalf("segments cover %d events, want %d", next, len(tr.Events))
	}

	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Error("ReadAll events differ")
	}
	if !reflect.DeepEqual(got.Threads, tr.Threads) {
		t.Error("ReadAll threads differ")
	}
	if !reflect.DeepEqual(got.Objects, tr.Objects) {
		t.Error("ReadAll objects differ")
	}
	if !reflect.DeepEqual(got.Meta, tr.Meta) {
		t.Errorf("ReadAll meta = %v, want %v", got.Meta, tr.Meta)
	}
}

func TestAppendOutOfOrder(t *testing.T) {
	w, err := NewFileWriter(filepath.Join(t.TempDir(), "x.clsg"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(trace.Event{T: 10, Seq: 2, Kind: trace.EvThreadStart}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(trace.Event{T: 10, Seq: 2, Kind: trace.EvThreadExit}); err == nil {
		t.Fatal("duplicate (T,Seq) accepted")
	}
}

// segBytes writes the sample trace into one segment file and returns
// its raw bytes.
func segBytes(t *testing.T, n int) []byte {
	t.Helper()
	tr := sampleTrace(n)
	path := filepath.Join(t.TempDir(), "one.clsg")
	w, err := NewFileWriter(path, Options{FrameEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// drainBytes fully decodes a segment image, returning the first error.
func drainBytes(raw []byte) error {
	fr, err := NewFileReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return err
	}
	_, err = fr.ReadAll(nil)
	return err
}

// TestSegmentTruncation: every proper prefix of a segment file must be
// rejected — the trailer-anchored layout cannot mistake a cut for a
// shorter valid file.
func TestSegmentTruncation(t *testing.T) {
	raw := segBytes(t, 120)
	for cut := 0; cut < len(raw); cut++ {
		if err := drainBytes(raw[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", cut, len(raw))
		}
	}
}

// TestSegmentBitFlips: every single-byte corruption must be rejected —
// the body and footer CRCs leave no unprotected region.
func TestSegmentBitFlips(t *testing.T) {
	raw := segBytes(t, 120)
	mut := make([]byte, len(raw))
	for i := 0; i < len(raw); i++ {
		copy(mut, raw)
		mut[i] ^= 0xff
		if err := drainBytes(mut); err == nil {
			t.Fatalf("flip at byte %d/%d accepted", i, len(raw))
		}
	}
}

// TestManifestMutation: truncations and single-byte corruptions of the
// manifest must all be rejected by Open.
func TestManifestMutation(t *testing.T) {
	tr := sampleTrace(200)
	dir := filepath.Join(t.TempDir(), "segs")
	if err := WriteTrace(dir, tr, Options{SegmentEvents: 64}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	check := func(img []byte, what string) {
		t.Helper()
		mdir := filepath.Join(t.TempDir(), "m")
		if err := os.MkdirAll(mdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(mdir, ManifestName), img, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(mdir); err == nil {
			t.Fatalf("%s accepted", what)
		}
	}
	for cut := 0; cut < len(raw); cut += 7 {
		check(raw[:cut], fmt.Sprintf("truncation to %d bytes", cut))
	}
	mut := make([]byte, len(raw))
	for i := 0; i < len(raw); i++ {
		copy(mut, raw)
		mut[i] ^= 0xff
		check(mut, fmt.Sprintf("flip at byte %d", i))
	}
}

// TestSpillerMergesRuns drives the spill path directly: interleaved
// per-thread runs must merge back into the canonical order.
func TestSpillerMergesRuns(t *testing.T) {
	tr := sampleTrace(300)
	byThread := map[trace.ThreadID][]trace.Event{}
	for _, e := range tr.Events {
		byThread[e.Thread] = append(byThread[e.Thread], e)
	}

	dir := filepath.Join(t.TempDir(), "spill")
	sp, err := NewSpiller(dir, Options{SegmentEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Spill each thread's events in several chunks, interleaved across
	// threads, as the collector would.
	for len(byThread) > 0 {
		for tid, evs := range byThread {
			k := len(evs)
			if k > 20 {
				k = 20
			}
			if err := sp.SpillRun(tid, evs[:k]); err != nil {
				t.Fatal(err)
			}
			if k == len(evs) {
				delete(byThread, tid)
			} else {
				byThread[tid] = evs[k:]
			}
		}
	}

	col := trace.NewCollector()
	for _, th := range tr.Threads {
		col.RegisterThread(th.Name, th.Creator)
	}
	for _, o := range tr.Objects {
		col.RegisterObject(o.Kind, o.Name, o.Parties)
	}
	for k, v := range tr.Meta {
		col.SetMeta(k, v)
	}
	r, err := sp.Finish(col)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("merged events differ: got %d, want %d", len(got.Events), len(tr.Events))
	}
	// Run files must be cleaned up.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) >= 4 && e.Name()[:4] == "run-" {
			t.Errorf("run file %s left behind", e.Name())
		}
	}
}
