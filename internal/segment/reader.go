package segment

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"critlock/internal/trace"
)

// FileReader decodes one segment file. The footer is parsed and
// CRC-verified up front; events then stream out frame by frame via
// Next, with the body CRC verified when the last frame is consumed —
// so a fully drained reader guarantees the file was intact.
type FileReader struct {
	ftr       *Footer
	footerOff int64
	crcBody   uint32

	br        *bufio.Reader
	crc       hash.Hash32
	decoded   int
	frame     []byte
	framePos  int
	frameLeft int
	framePrev trace.Event
	prev      trace.Event
	done      bool

	closer io.Closer
}

// NewFileReader parses the trailer and footer of a segment held by r.
func NewFileReader(r io.ReaderAt, size int64) (*FileReader, error) {
	if size < int64(len(segMagic))+1+trailerSize {
		return nil, fmt.Errorf("segment: file %w (%d bytes)", trace.ErrTruncated, size)
	}
	var tr [trailerSize]byte
	if _, err := r.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("segment: reading trailer: %w", err)
	}
	if string(tr[16:20]) != segEndMagic {
		return nil, fmt.Errorf("segment: bad end magic %q", tr[16:20])
	}
	crcBody := binary.LittleEndian.Uint32(tr[0:4])
	crcFooter := binary.LittleEndian.Uint32(tr[4:8])
	footerOff := int64(binary.LittleEndian.Uint64(tr[8:16]))
	if footerOff < int64(len(segMagic))+1 || footerOff >= size-trailerSize {
		return nil, fmt.Errorf("segment: footer offset %d out of range", footerOff)
	}

	// Footer region: [footerOff, size-trailerSize).
	fbuf := make([]byte, size-trailerSize-footerOff)
	if _, err := r.ReadAt(fbuf, footerOff); err != nil {
		return nil, fmt.Errorf("segment: reading footer: %w", err)
	}
	if fbuf[0] != footerTag {
		return nil, fmt.Errorf("segment: bad footer tag 0x%02x", fbuf[0])
	}
	plen, n := binary.Uvarint(fbuf[1:])
	if n <= 0 || plen > maxCount {
		return nil, errors.New("segment: bad footer length")
	}
	payload := fbuf[1+n:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("segment: footer length %d does not match region %d", plen, len(payload))
	}
	if crcOf(payload) != crcFooter {
		return nil, fmt.Errorf("segment: footer %w", trace.ErrChecksum)
	}
	ftr, err := decodeFooter(payload)
	if err != nil {
		return nil, err
	}

	body := io.NewSectionReader(r, 0, footerOff)
	fr := &FileReader{
		ftr:       ftr,
		footerOff: footerOff,
		crcBody:   crcBody,
		crc:       crc32.NewIEEE(),
	}
	fr.br = bufio.NewReaderSize(io.TeeReader(body, fr.crc), 1<<16)

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(fr.br, magic); err != nil || string(magic) != segMagic {
		return nil, fmt.Errorf("segment: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return nil, fmt.Errorf("segment: reading version: %w", err)
	}
	if version != segVersion {
		return nil, fmt.Errorf("segment: unsupported version %d", version)
	}
	return fr, nil
}

// OpenFile opens a segment file from disk.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fr, err := NewFileReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	fr.closer = f
	return fr, nil
}

// Footer returns the segment's index.
func (fr *FileReader) Footer() *Footer { return fr.ftr }

// Next returns the next event, or io.EOF after the last one. The
// final Next that returns io.EOF also verifies the event count and
// the body checksum.
func (fr *FileReader) Next() (trace.Event, error) {
	if fr.done {
		return trace.Event{}, io.EOF
	}
	for fr.frameLeft == 0 {
		if err := fr.nextFrame(); err != nil {
			return trace.Event{}, err
		}
		if fr.done {
			return trace.Event{}, io.EOF
		}
	}
	e, n, err := trace.DecodeEvent(fr.frame[fr.framePos:], fr.framePrev)
	if err != nil {
		return trace.Event{}, fmt.Errorf("segment: event %d: %w", fr.decoded, err)
	}
	fr.framePos += n
	fr.framePrev = e
	fr.frameLeft--
	if fr.frameLeft == 0 && fr.framePos != len(fr.frame) {
		return trace.Event{}, fmt.Errorf("segment: frame has %d trailing bytes", len(fr.frame)-fr.framePos)
	}
	if fr.decoded == 0 {
		if e.T != fr.ftr.MinT || e.Seq != fr.ftr.FirstSeq {
			return trace.Event{}, errors.New("segment: first event disagrees with footer range")
		}
	} else if !trace.Less(fr.prev, e) {
		return trace.Event{}, fmt.Errorf("segment: event %d out of order", fr.decoded)
	}
	fr.prev = e
	fr.decoded++
	if fr.decoded > fr.ftr.Count {
		return trace.Event{}, fmt.Errorf("segment: more events than footer count %d", fr.ftr.Count)
	}
	return e, nil
}

// nextFrame reads the next frame header+payload, or detects the clean
// end of the body and verifies count and CRC.
func (fr *FileReader) nextFrame() error {
	tag, err := fr.br.ReadByte()
	if err == io.EOF {
		// End of body: everything must check out.
		if fr.decoded != fr.ftr.Count {
			return fmt.Errorf("segment: decoded %d events, footer says %d", fr.decoded, fr.ftr.Count)
		}
		if fr.decoded > 0 && (fr.prev.T != fr.ftr.MaxT || fr.prev.Seq != fr.ftr.LastSeq) {
			return errors.New("segment: last event disagrees with footer range")
		}
		if fr.crc.Sum32() != fr.crcBody {
			return fmt.Errorf("segment: body %w", trace.ErrChecksum)
		}
		fr.done = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("segment: reading frame tag: %w", err)
	}
	if tag != frameTag {
		return fmt.Errorf("segment: bad frame tag 0x%02x", tag)
	}
	count, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return fmt.Errorf("segment: reading frame count: %w", err)
	}
	size, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return fmt.Errorf("segment: reading frame size: %w", err)
	}
	if count == 0 || count > maxCount {
		return fmt.Errorf("segment: bad frame count %d", count)
	}
	if size > uint64(fr.footerOff) {
		return fmt.Errorf("segment: frame size %d exceeds body", size)
	}
	if cap(fr.frame) < int(size) {
		fr.frame = make([]byte, size)
	}
	fr.frame = fr.frame[:size]
	if _, err := io.ReadFull(fr.br, fr.frame); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("segment: frame payload %w: %v", trace.ErrTruncated, err)
		}
		return fmt.Errorf("segment: reading frame payload: %w", err)
	}
	fr.framePos = 0
	fr.frameLeft = int(count)
	fr.framePrev = trace.Event{}
	return nil
}

// ReadAll appends every remaining event to buf and fully verifies the
// file.
func (fr *FileReader) ReadAll(buf []trace.Event) ([]trace.Event, error) {
	for {
		e, err := fr.Next()
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
		buf = append(buf, e)
	}
}

// Close releases the underlying file, if the reader owns one.
func (fr *FileReader) Close() error {
	if fr.closer != nil {
		return fr.closer.Close()
	}
	return nil
}

// Reader reads a segmented trace directory. It implements the
// streaming analyzer's SegmentSource: the skeleton (registrations,
// metadata, no events) plus random access to whole decoded segments —
// as events (LoadSegment) or as a columnar view (LoadColumns).
//
// Segment files open lazily on first access and stay open —
// memory-mapped unless ReadOptions.NoMmap or the platform forbids it
// — so repeated passes over the same segment never reopen, reseek or
// re-verify the file. Checksums, the footer-vs-manifest cross-check
// and the magic/version header are verified exactly once per segment.
// Distinct segments may be loaded from distinct goroutines
// concurrently; Close releases every mapping and buffer.
type Reader struct {
	dir     string
	opts    ReadOptions
	skel    *trace.Trace
	segs    []SegmentInfo
	total   int
	handles []segHandle
}

// ReadOptions configures how a Reader accesses segment files.
type ReadOptions struct {
	// NoMmap forces buffered reads of segment bodies. The zero value
	// memory-maps each file where the platform supports it and falls
	// back to reading it into memory where it does not.
	NoMmap bool
}

// segHandle is the lazily initialized per-segment state: the raw file
// image (mapped or read) with its verified frame region.
type segHandle struct {
	once   sync.Once
	data   []byte // whole file image
	mapped bool   // data is an mmap and needs munmapFile
	body   []byte // frame region: data[after magic+version : footerOff]
	err    error

	// verified flips once LoadColumns has checked event ordering,
	// thread ranges and the footer range against this handle's
	// immutable bytes; later loads of the same segment skip those
	// scans. Atomic because parallel passes may load concurrently.
	verified atomic.Bool
}

// Open reads and verifies dir's manifest with default options.
// Segment files themselves are opened lazily on first load.
func Open(dir string) (*Reader, error) { return OpenWith(dir, ReadOptions{}) }

// OpenWith is Open with explicit access options.
func OpenWith(dir string, opts ReadOptions) (*Reader, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	if len(buf) < len(manifestMagic)+1+4 {
		return nil, fmt.Errorf("segment: manifest %w (%d bytes)", trace.ErrTruncated, len(buf))
	}
	if string(buf[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("segment: bad manifest magic %q", buf[:len(manifestMagic)])
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crcOf(body) != sum {
		return nil, fmt.Errorf("segment: manifest %w", trace.ErrChecksum)
	}

	d := byteDecoder{buf: body, pos: len(manifestMagic)}
	if v := d.uvarint(); d.err == nil && v != manifestVersion {
		return nil, fmt.Errorf("segment: unsupported manifest version %d", v)
	}
	skel := &trace.Trace{Meta: map[string]string{}}
	nMeta := d.count("meta")
	for i := uint64(0); i < nMeta && d.err == nil; i++ {
		k := d.string("meta key")
		v := d.string("meta value")
		if d.err == nil {
			skel.Meta[k] = v
		}
	}
	nThreads := d.count("thread")
	for i := uint64(0); i < nThreads && d.err == nil; i++ {
		name := d.string("thread name")
		creator := d.varint()
		if d.err == nil {
			skel.Threads = append(skel.Threads, trace.ThreadInfo{
				ID: trace.ThreadID(i), Name: name, Creator: trace.ThreadID(creator),
			})
		}
	}
	nObjects := d.count("object")
	for i := uint64(0); i < nObjects && d.err == nil; i++ {
		kind := trace.ObjKind(d.byte())
		name := d.string("object name")
		parties := d.count("parties")
		if d.err == nil {
			skel.Objects = append(skel.Objects, trace.ObjectInfo{
				ID: trace.ObjID(i), Kind: kind, Name: name, Parties: int(parties),
			})
		}
	}
	r := &Reader{dir: dir, opts: opts, skel: skel}
	nSegs := d.count("segment")
	for i := uint64(0); i < nSegs && d.err == nil; i++ {
		s := SegmentInfo{
			Name:     d.string("segment name"),
			Count:    int(d.count("segment event")),
			MinT:     trace.Time(d.varint()),
			MaxT:     trace.Time(d.varint()),
			FirstSeq: d.uvarint(),
			LastSeq:  d.uvarint(),
		}
		if d.err != nil {
			break
		}
		if s.Count <= 0 {
			return nil, fmt.Errorf("segment: manifest entry %d (%s) is empty", i, s.Name)
		}
		if filepath.Base(s.Name) != s.Name || s.Name == "." {
			return nil, fmt.Errorf("segment: manifest entry %d has invalid name %q", i, s.Name)
		}
		s.First = r.total
		if len(r.segs) > 0 {
			p := &r.segs[len(r.segs)-1]
			if s.MinT < p.MaxT || (s.MinT == p.MaxT && s.FirstSeq <= p.LastSeq) {
				return nil, fmt.Errorf("segment: %s out of order after %s", s.Name, p.Name)
			}
		}
		r.segs = append(r.segs, s)
		r.total += s.Count
	}
	if d.err != nil {
		return nil, fmt.Errorf("segment: manifest: %w", d.err)
	}
	if d.pos != len(body) {
		return nil, fmt.Errorf("segment: manifest has %d trailing bytes", len(body)-d.pos)
	}
	r.handles = make([]segHandle, len(r.segs))
	return r, nil
}

// Skeleton returns the trace's registrations and metadata with a nil
// event slice. Callers must not mutate it.
func (r *Reader) Skeleton() *trace.Trace { return r.skel }

// NumEvents returns the total event count across all segments.
func (r *Reader) NumEvents() int { return r.total }

// NumSegments returns the number of segments.
func (r *Reader) NumSegments() int { return len(r.segs) }

// Segment returns the i-th segment's manifest entry.
func (r *Reader) Segment(i int) SegmentInfo { return r.segs[i] }

// SegmentBounds returns the global index of segment i's first event
// and its event count.
func (r *Reader) SegmentBounds(i int) (first, count int) {
	return r.segs[i].First, r.segs[i].Count
}

// handle returns segment i's verified file image, opening and
// checking it on first access. Safe for concurrent use.
func (r *Reader) handle(i int) (*segHandle, error) {
	h := &r.handles[i]
	h.once.Do(func() { h.err = r.openSegment(i, h) })
	if h.err != nil {
		return nil, h.err
	}
	return h, nil
}

// openSegment maps (or reads) segment i's file and verifies, once for
// the reader's lifetime: trailer, footer CRC, body CRC, magic/version
// header and the footer-vs-manifest cross-check.
func (r *Reader) openSegment(i int, h *segHandle) error {
	s := r.segs[i]
	f, err := os.Open(filepath.Join(r.dir, s.Name))
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size < int64(len(segMagic))+1+trailerSize {
		return fmt.Errorf("segment: file %w (%d bytes)", trace.ErrTruncated, size)
	}
	if size > int64(maxCount) {
		return fmt.Errorf("segment: %s is implausibly large (%d bytes)", s.Name, size)
	}
	if !r.opts.NoMmap {
		if data, merr := mmapFile(f, size); merr == nil {
			h.data, h.mapped = data, true
		}
	}
	if h.data == nil {
		h.data = make([]byte, size)
		if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), h.data); err != nil {
			h.data = nil
			return fmt.Errorf("segment: reading %s: %w", s.Name, err)
		}
	}
	ftr, body, err := verifyImage(h.data)
	if err != nil {
		r.dropHandle(h)
		return err
	}
	if ftr.Count != s.Count || ftr.MinT != s.MinT || ftr.MaxT != s.MaxT ||
		ftr.FirstSeq != s.FirstSeq || ftr.LastSeq != s.LastSeq {
		r.dropHandle(h)
		return fmt.Errorf("segment: %s footer disagrees with manifest", s.Name)
	}
	h.body = body
	return nil
}

// dropHandle releases a handle whose verification failed.
func (r *Reader) dropHandle(h *segHandle) {
	if h.mapped && h.data != nil {
		munmapFile(h.data)
	}
	h.data, h.body, h.mapped = nil, nil, false
}

// verifyImage checks a whole segment file image — trailer, footer CRC
// and decode, body CRC, magic and version — and returns the decoded
// footer plus the frame region.
func verifyImage(data []byte) (*Footer, []byte, error) {
	size := int64(len(data))
	tr := data[size-trailerSize:]
	if string(tr[16:20]) != segEndMagic {
		return nil, nil, fmt.Errorf("segment: bad end magic %q", tr[16:20])
	}
	crcBody := binary.LittleEndian.Uint32(tr[0:4])
	crcFooter := binary.LittleEndian.Uint32(tr[4:8])
	footerOff := int64(binary.LittleEndian.Uint64(tr[8:16]))
	if footerOff < int64(len(segMagic))+1 || footerOff >= size-trailerSize {
		return nil, nil, fmt.Errorf("segment: footer offset %d out of range", footerOff)
	}
	fbuf := data[footerOff : size-trailerSize]
	if fbuf[0] != footerTag {
		return nil, nil, fmt.Errorf("segment: bad footer tag 0x%02x", fbuf[0])
	}
	plen, n := binary.Uvarint(fbuf[1:])
	if n <= 0 || plen > maxCount {
		return nil, nil, errors.New("segment: bad footer length")
	}
	payload := fbuf[1+n:]
	if uint64(len(payload)) != plen {
		return nil, nil, fmt.Errorf("segment: footer length %d does not match region %d", plen, len(payload))
	}
	if crcOf(payload) != crcFooter {
		return nil, nil, fmt.Errorf("segment: footer %w", trace.ErrChecksum)
	}
	ftr, err := decodeFooter(payload)
	if err != nil {
		return nil, nil, err
	}
	if crcOf(data[:footerOff]) != crcBody {
		return nil, nil, fmt.Errorf("segment: body %w", trace.ErrChecksum)
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, nil, fmt.Errorf("segment: bad magic %q", data[:len(segMagic)])
	}
	version, n := binary.Uvarint(data[len(segMagic):footerOff])
	if n <= 0 {
		return nil, nil, fmt.Errorf("segment: reading version: %w", trace.ErrTruncated)
	}
	if version != segVersion {
		return nil, nil, fmt.Errorf("segment: unsupported version %d", version)
	}
	return ftr, data[len(segMagic)+n : footerOff], nil
}

// LoadColumns batch-decodes segment i into cols (reusing its
// capacity), verifying frame structure, event ordering, the footer
// range and that every event's thread is registered. Checksums were
// already verified when the segment's file image was first opened. It
// returns the number of encoded body bytes decoded (for throughput
// accounting).
func (r *Reader) LoadColumns(i int, cols *trace.Columns) (int64, error) {
	s := r.segs[i]
	h, err := r.handle(i)
	if err != nil {
		return 0, err
	}
	cols.Reset(s.Count)
	body, pos := h.body, 0
	for pos < len(body) {
		if body[pos] != frameTag {
			return 0, fmt.Errorf("segment: bad frame tag 0x%02x", body[pos])
		}
		pos++
		count, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("segment: frame header %w", trace.ErrTruncated)
		}
		pos += n
		fsize, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("segment: frame header %w", trace.ErrTruncated)
		}
		pos += n
		if count == 0 || count > maxCount {
			return 0, fmt.Errorf("segment: bad frame count %d", count)
		}
		if fsize > uint64(len(body)-pos) {
			return 0, fmt.Errorf("segment: frame size %d exceeds body", fsize)
		}
		if cols.Len()+int(count) > s.Count {
			return 0, fmt.Errorf("segment: more events than footer count %d", s.Count)
		}
		used, err := cols.AppendFrame(body[pos:pos+int(fsize)], int(count))
		if err != nil {
			return 0, fmt.Errorf("segment: %s: %w", s.Name, err)
		}
		if used != int(fsize) {
			return 0, fmt.Errorf("segment: frame has %d trailing bytes", int(fsize)-used)
		}
		pos += int(fsize)
	}
	if cols.Len() != s.Count {
		return 0, fmt.Errorf("segment: decoded %d events, footer says %d", cols.Len(), s.Count)
	}
	if !h.verified.Load() {
		// First decode of this handle: scan-verify ordering, thread
		// ranges and the footer range. The bytes are immutable for the
		// reader's lifetime, so repeat loads skip these scans.
		if cols.T[0] != s.MinT || cols.Seq[0] != s.FirstSeq {
			return 0, errors.New("segment: first event disagrees with footer range")
		}
		if cols.T[s.Count-1] != s.MaxT || cols.Seq[s.Count-1] != s.LastSeq {
			return 0, errors.New("segment: last event disagrees with footer range")
		}
		for j := 1; j < s.Count; j++ {
			// Canonical (T, Seq, Thread) order, matching trace.Less.
			if cols.T[j] < cols.T[j-1] ||
				(cols.T[j] == cols.T[j-1] && (cols.Seq[j] < cols.Seq[j-1] ||
					(cols.Seq[j] == cols.Seq[j-1] && cols.Thread[j] <= cols.Thread[j-1]))) {
				return 0, fmt.Errorf("segment: event %d out of order", j)
			}
		}
		nThreads := int32(len(r.skel.Threads))
		for j, th := range cols.Thread {
			if th < 0 || th >= nThreads {
				return 0, fmt.Errorf("segment: %s event %d: thread %d out of range",
					s.Name, s.First+j, th)
			}
		}
		h.verified.Store(true)
	}
	return int64(len(body)), nil
}

// LoadSegment decodes segment i into buf (reusing its capacity) with
// the same verification as LoadColumns.
func (r *Reader) LoadSegment(i int, buf []trace.Event) ([]trace.Event, error) {
	var cols trace.Columns
	if _, err := r.LoadColumns(i, &cols); err != nil {
		return buf[:0], err
	}
	n := cols.Len()
	if cap(buf) < n {
		buf = make([]trace.Event, 0, n)
	}
	buf = buf[:0]
	for j := 0; j < n; j++ {
		buf = append(buf, cols.Event(j))
	}
	return buf, nil
}

// Close releases every mapped or cached segment image. The Reader
// must not load segments afterwards.
func (r *Reader) Close() error {
	var first error
	for i := range r.handles {
		h := &r.handles[i]
		h.once.Do(func() { h.err = errors.New("segment: reader closed") })
		if h.mapped && h.data != nil {
			if err := munmapFile(h.data); err != nil && first == nil {
				first = err
			}
		}
		h.data, h.body, h.mapped = nil, nil, false
	}
	return first
}

// ReadAll loads the entire directory back into one in-memory Trace —
// the bridge for consumers that need full-trace features (Gantt
// timelines, lock-order graphs).
func (r *Reader) ReadAll() (*trace.Trace, error) {
	tr := &trace.Trace{
		Objects: append([]trace.ObjectInfo(nil), r.skel.Objects...),
		Threads: append([]trace.ThreadInfo(nil), r.skel.Threads...),
		Meta:    map[string]string{},
		Events:  make([]trace.Event, 0, r.total),
	}
	for k, v := range r.skel.Meta {
		tr.Meta[k] = v
	}
	for i := range r.segs {
		evs, err := r.LoadSegment(i, nil)
		if err != nil {
			return nil, err
		}
		tr.Events = append(tr.Events, evs...)
	}
	return tr, nil
}
