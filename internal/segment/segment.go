// Package segment implements the spillable on-disk trace layout that
// backs bounded-memory analysis (internal/core AnalyzeStream).
//
// A segmented trace is a directory:
//
//	manifest.clsm      registrations + per-segment index
//	seg-000000.clsg    events [0, k)
//	seg-000001.clsg    events [k, 2k)
//	...
//
// Every segment file holds a contiguous, canonically (T, Seq) ordered
// slice of the trace's events, framed so it can be decoded without any
// other file:
//
//	magic   "CLSG"          4 bytes
//	version uvarint         currently 1
//	frames  repeated:
//	        byte    0xF1
//	        uvarint event count (≥ 1)
//	        uvarint payload byte length
//	        payload — event records in the internal/trace binary
//	                  layout (trace.AppendEvent), with the T/Seq delta
//	                  chain reset at the frame start so each frame
//	                  decodes independently
//	footer  byte 0xF2, uvarint payload length, payload:
//	        uvarint event count
//	        varint  minT, varint maxT
//	        uvarint firstSeq, uvarint lastSeq
//	        uvarint thread-count entries: (uvarint thread, uvarint n)
//	        uvarint lock-summary entries: (uvarint obj, uvarint
//	                acquires, uvarint obtains, uvarint contended,
//	                uvarint releases)
//	        uvarint chan-summary entries: (uvarint obj, uvarint sends,
//	                uvarint blockedSends, uvarint recvs, uvarint
//	                blockedRecvs, uvarint closes)
//	trailer fixed 20 bytes:
//	        uint32 LE crc32/IEEE of bytes [0, footer offset)
//	        uint32 LE crc32/IEEE of the footer payload
//	        uint64 LE footer offset
//	        magic "GSLC"
//
// The footer is the per-segment index: readers locate it via the
// trailer, learn the segment's time/sequence range and per-thread and
// per-lock event counts without touching the frames, and the two CRCs
// turn any truncation or bit corruption into an error instead of a
// silently wrong analysis.
//
// The manifest carries what the trace carries besides events
// (metadata, thread and object registrations) plus the segment list:
//
//	magic   "CLSM"
//	version uvarint         currently 1
//	meta    uvarint count, (string key, string value) sorted by key
//	threads uvarint count, (string name, varint creator)
//	objects uvarint count, (byte kind, string name, uvarint parties)
//	segs    uvarint count, (string filename, uvarint events,
//	        varint minT, varint maxT, uvarint firstSeq, uvarint lastSeq)
//	crc     uint32 LE crc32/IEEE of everything before it
//
// Strings are uvarint length + bytes, as in internal/trace.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"critlock/internal/trace"
)

const (
	segMagic    = "CLSG"
	segEndMagic = "GSLC"
	// segVersion 2 added channel summaries to the footer.
	segVersion = 2

	manifestMagic   = "CLSM"
	manifestVersion = 1

	// ManifestName is the manifest's filename within a segment
	// directory.
	ManifestName = "manifest.clsm"

	frameTag  = 0xF1
	footerTag = 0xF2

	// trailerSize is the fixed byte size of the segment trailer.
	trailerSize = 4 + 4 + 8 + 4

	// maxCount caps decoded collection sizes against corrupt or
	// hostile inputs (mirrors internal/trace's limit).
	maxCount = 1 << 30
	// maxStringLen caps decoded string lengths.
	maxStringLen = 1 << 20
)

// Options tunes segment generation.
type Options struct {
	// SegmentEvents is the number of events per segment file — the
	// streaming analyzer's window unit. 0 means DefaultSegmentEvents.
	SegmentEvents int
	// FrameEvents is the number of events per frame within a segment.
	// 0 means DefaultFrameEvents.
	FrameEvents int
}

const (
	// DefaultSegmentEvents keeps a decoded segment around 2 MiB
	// (32 bytes per Event), small enough that a handful of cached
	// windows stay cheap.
	DefaultSegmentEvents = 1 << 16
	// DefaultFrameEvents bounds the frame assembly buffer.
	DefaultFrameEvents = 1 << 12
)

func (o Options) withDefaults() Options {
	if o.SegmentEvents <= 0 {
		o.SegmentEvents = DefaultSegmentEvents
	}
	if o.FrameEvents <= 0 {
		o.FrameEvents = DefaultFrameEvents
	}
	return o
}

// ThreadCount is one footer entry: how many of a segment's events
// belong to a thread.
type ThreadCount struct {
	Thread trace.ThreadID
	Count  int
}

// LockSummary is one footer entry: a segment's lock-event counts for
// one mutex — enough to aggregate classical (TYPE 2) invocation and
// contention counts without decoding frames.
type LockSummary struct {
	Obj       trace.ObjID
	Acquires  int
	Obtains   int
	Contended int
	Releases  int
}

// ChanSummary is one footer entry: a segment's channel-event counts
// for one channel — completed operations and how many of them parked.
type ChanSummary struct {
	Obj          trace.ObjID
	Sends        int
	BlockedSends int
	Recvs        int
	BlockedRecvs int
	Closes       int
}

// Footer is the per-segment index.
type Footer struct {
	// Count is the number of events in the segment.
	Count int
	// MinT/MaxT bound the segment's timestamps, FirstSeq/LastSeq its
	// sequence numbers (all zero for an empty segment).
	MinT, MaxT        trace.Time
	FirstSeq, LastSeq uint64
	// ThreadCounts lists per-thread event counts, ascending by thread.
	ThreadCounts []ThreadCount
	// Locks lists per-mutex event summaries, ascending by object.
	Locks []LockSummary
	// Chans lists per-channel event summaries, ascending by object.
	Chans []ChanSummary
}

// appendFooter encodes f's payload (without tag/length) to dst.
func appendFooter(dst []byte, f *Footer) []byte {
	dst = binary.AppendUvarint(dst, uint64(f.Count))
	dst = binary.AppendVarint(dst, int64(f.MinT))
	dst = binary.AppendVarint(dst, int64(f.MaxT))
	dst = binary.AppendUvarint(dst, f.FirstSeq)
	dst = binary.AppendUvarint(dst, f.LastSeq)
	dst = binary.AppendUvarint(dst, uint64(len(f.ThreadCounts)))
	for _, tc := range f.ThreadCounts {
		dst = binary.AppendUvarint(dst, uint64(tc.Thread))
		dst = binary.AppendUvarint(dst, uint64(tc.Count))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Locks)))
	for _, ls := range f.Locks {
		dst = binary.AppendUvarint(dst, uint64(ls.Obj))
		dst = binary.AppendUvarint(dst, uint64(ls.Acquires))
		dst = binary.AppendUvarint(dst, uint64(ls.Obtains))
		dst = binary.AppendUvarint(dst, uint64(ls.Contended))
		dst = binary.AppendUvarint(dst, uint64(ls.Releases))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Chans)))
	for _, cs := range f.Chans {
		dst = binary.AppendUvarint(dst, uint64(cs.Obj))
		dst = binary.AppendUvarint(dst, uint64(cs.Sends))
		dst = binary.AppendUvarint(dst, uint64(cs.BlockedSends))
		dst = binary.AppendUvarint(dst, uint64(cs.Recvs))
		dst = binary.AppendUvarint(dst, uint64(cs.BlockedRecvs))
		dst = binary.AppendUvarint(dst, uint64(cs.Closes))
	}
	return dst
}

// decodeFooter parses a footer payload.
func decodeFooter(buf []byte) (*Footer, error) {
	d := byteDecoder{buf: buf}
	f := &Footer{}
	f.Count = int(d.count("event"))
	f.MinT = trace.Time(d.varint())
	f.MaxT = trace.Time(d.varint())
	f.FirstSeq = d.uvarint()
	f.LastSeq = d.uvarint()
	nThreads := d.count("thread")
	for i := uint64(0); i < nThreads && d.err == nil; i++ {
		f.ThreadCounts = append(f.ThreadCounts, ThreadCount{
			Thread: trace.ThreadID(d.id("thread")),
			Count:  int(d.count("thread event")),
		})
	}
	nLocks := d.count("lock")
	for i := uint64(0); i < nLocks && d.err == nil; i++ {
		f.Locks = append(f.Locks, LockSummary{
			Obj:       trace.ObjID(d.id("lock")),
			Acquires:  int(d.count("acquire")),
			Obtains:   int(d.count("obtain")),
			Contended: int(d.count("contended")),
			Releases:  int(d.count("release")),
		})
	}
	nChans := d.count("chan")
	for i := uint64(0); i < nChans && d.err == nil; i++ {
		f.Chans = append(f.Chans, ChanSummary{
			Obj:          trace.ObjID(d.id("chan")),
			Sends:        int(d.count("send")),
			BlockedSends: int(d.count("blocked send")),
			Recvs:        int(d.count("recv")),
			BlockedRecvs: int(d.count("blocked recv")),
			Closes:       int(d.count("close")),
		})
	}
	if d.err != nil {
		return nil, fmt.Errorf("segment: footer: %w", d.err)
	}
	if d.pos != len(buf) {
		return nil, fmt.Errorf("segment: footer has %d trailing bytes", len(buf)-d.pos)
	}
	return f, nil
}

// byteDecoder reads varint fields off a byte slice, latching the first
// error so decode sequences read linearly.
type byteDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *byteDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *byteDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail(fmt.Errorf("truncated uvarint at byte %d", d.pos))
		return 0
	}
	d.pos += n
	return v
}

func (d *byteDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail(fmt.Errorf("truncated varint at byte %d", d.pos))
		return 0
	}
	d.pos += n
	return v
}

func (d *byteDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.fail(fmt.Errorf("truncated byte at %d", d.pos))
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

// count reads a uvarint bounded by maxCount.
func (d *byteDecoder) count(what string) uint64 {
	v := d.uvarint()
	if d.err == nil && v > maxCount {
		d.fail(fmt.Errorf("%s count %d too large", what, v))
		return 0
	}
	return v
}

// id reads a uvarint bounded to the int32 ID space.
func (d *byteDecoder) id(what string) uint64 {
	v := d.uvarint()
	if d.err == nil && v > 1<<31-1 {
		d.fail(fmt.Errorf("%s id %d out of range", what, v))
		return 0
	}
	return v
}

func (d *byteDecoder) string(what string) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail(fmt.Errorf("%s length %d too large", what, n))
		return ""
	}
	if d.pos+int(n) > len(d.buf) {
		d.fail(fmt.Errorf("truncated %s at byte %d", what, d.pos))
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
