package clean

import "sync"

var setupMu sync.Mutex

// pinForInit models a lock held past return on purpose; the justified
// directive keeps the corpus finding-free while counting as one
// suppression in the golden output.
func pinForInit() {
	//lint:ignore missingunlock held for the process lifetime; releaseSetup unpins it
	setupMu.Lock()
}

func releaseSetup() {
	setupMu.Unlock()
}
