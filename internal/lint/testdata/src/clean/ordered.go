package clean

// accounts exercises nested locking with a consistent global order:
// every function acquires ledger before audit, so the lock-order
// graph is acyclic.
type accounts struct {
	ledger, audit Mutex
}

func newAccounts(rt Runtime) *accounts {
	return &accounts{ledger: rt.NewMutex("ledger"), audit: rt.NewMutex("audit")}
}

func (a *accounts) transfer(p Proc) {
	p.Lock(a.ledger)
	p.Lock(a.audit)
	p.Unlock(a.audit)
	p.Unlock(a.ledger)
}

func (a *accounts) review(p Proc) {
	p.Lock(a.ledger)
	p.RLock(a.audit)
	p.RUnlock(a.audit)
	p.Unlock(a.ledger)
}

// consume exercises the correct harness Wait idiom: re-check in a
// loop, signal after mutating.
func consume(p Proc, c Cond, m Mutex, ready func() bool) {
	p.Lock(m)
	for !ready() {
		p.Wait(c, m)
	}
	p.Unlock(m)
}
