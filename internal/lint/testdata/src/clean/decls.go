// Package clean is clalint's zero-findings corpus: every idiom here
// is correct lock usage, and the golden test pins that the analyzer
// stays silent on all of it.
package clean

// Mutex mirrors harness.Mutex.
type Mutex interface{ Name() string }

// Cond mirrors harness.Cond.
type Cond interface{ Name() string }

// Chan mirrors harness.Chan.
type Chan interface {
	Name() string
	Cap() int
}

// Proc mirrors the harness.Proc lock surface.
type Proc interface {
	Lock(m Mutex)
	TryLock(m Mutex) bool
	Unlock(m Mutex)
	RLock(m Mutex)
	RUnlock(m Mutex)
	Wait(c Cond, m Mutex)
	Signal(c Cond)
	Send(ch Chan)
	Recv(ch Chan) bool
}

// handoff is correct channel usage: the critical section ends before
// the potentially-blocking Send/Recv run, so no blockheld finding.
func handoff(p Proc, m Mutex, ch Chan) {
	p.Lock(m)
	p.Unlock(m)
	p.Send(ch)
	for p.Recv(ch) {
	}
}

// Runtime mirrors the harness.Runtime constructor surface.
type Runtime interface {
	NewMutex(name string) Mutex
	NewCond(name string) Cond
}
