package clean

import "sync"

// registry exercises the full correct sync.Cond idiom: defer-paired
// unlock and a Wait guarded by a re-checking loop.
type registry struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []int
}

func newRegistry() *registry {
	r := &registry{}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *registry) pop() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.items) == 0 {
		r.cond.Wait()
	}
	v := r.items[0]
	r.items = r.items[1:]
	return v
}

func (r *registry) push(v int) {
	r.mu.Lock()
	r.items = append(r.items, v)
	r.cond.Signal()
	r.mu.Unlock()
}

// table exercises mode-matched RWMutex pairing and a guarded TryLock.
type table struct {
	mu   sync.RWMutex
	data map[string]int
}

func (t *table) get(k string) (int, bool) {
	t.mu.RLock()
	v, ok := t.data[k]
	t.mu.RUnlock()
	return v, ok
}

func (t *table) set(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.data == nil {
		t.data = map[string]int{}
	}
	t.data[k] = v
}

func (t *table) tryBump(k string) bool {
	if t.mu.TryLock() {
		t.data[k]++
		t.mu.Unlock()
		return true
	}
	return false
}

// drain exercises a non-blocking select inside a critical section: a
// default clause means the section never waits on channel peers.
func drain(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}
