// Package clrtbuggy seeds hazards written against the clrt runtime
// API — the shape clainstr-instrumented code has: clrt.Mutex methods,
// clrt.Chan Send/Recv/Recv1, clrt.WaitGroup, clrt.Select.
package clrtbuggy

import "critlock/clrt"

type server struct {
	mu   clrt.Mutex
	rw   clrt.RWMutex
	jobs clrt.Chan[int]
	wg   clrt.WaitGroup
}

// setup binds the mutex to its dynamic trace name, the join key
// clalint -report / -dynamic cross-references against.
func (s *server) setup() {
	s.mu.SetName("srv.mu")
}

// enqueue seeds a channel send inside the critical section.
func (s *server) enqueue(v int) {
	s.mu.Lock()
	s.jobs.Send(v)
	s.mu.Unlock()
}

// drain seeds a channel receive (the rewritten <-ch form) inside the
// critical section.
func (s *server) drain() int {
	s.mu.Lock()
	v := s.jobs.Recv1()
	s.mu.Unlock()
	return v
}

// flush seeds a WaitGroup wait inside the critical section: every
// worker's Done gates the lock holder.
func (s *server) flush() {
	s.mu.Lock()
	s.wg.Wait()
	s.mu.Unlock()
}

// pick seeds a rewritten select inside the critical section.
func (s *server) pick() {
	s.mu.Lock()
	clrt.Select(false, clrt.RecvCase(s.jobs))
	s.mu.Unlock()
}

// redouble seeds a double lock through the sync-style 0-arg methods.
func (s *server) redouble() {
	s.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
}

// mispair seeds an RWMutex mode mismatch: read acquisition, write
// release.
func (s *server) mispair() {
	s.rw.RLock()
	s.rw.Unlock()
}

// byValue seeds a copied lock: a clrt.Mutex holds registration state
// (the trace handle), so a copy is a different, unregistered lock.
func byValue(m clrt.Mutex) {
	m.Lock()
	m.Unlock()
}
