// Package buggy is clalint's hazard corpus: every file seeds exactly
// the findings its name says, and the golden test pins them. The
// harness API is mirrored as interfaces — the analyzer's detection is
// shape-based (method names and arities), so these stubs are all the
// corpus needs to stay dependency-free.
package buggy

// Mutex mirrors harness.Mutex.
type Mutex interface{ Name() string }

// Barrier mirrors harness.Barrier.
type Barrier interface {
	Name() string
	Parties() int
}

// Cond mirrors harness.Cond.
type Cond interface{ Name() string }

// Chan mirrors harness.Chan.
type Chan interface {
	Name() string
	Cap() int
}

// SelectCase mirrors harness.SelectCase.
type SelectCase struct {
	Ch   Chan
	Send bool
}

// Proc mirrors the harness.Proc lock surface.
type Proc interface {
	Lock(m Mutex)
	TryLock(m Mutex) bool
	Unlock(m Mutex)
	RLock(m Mutex)
	RUnlock(m Mutex)
	BarrierWait(b Barrier)
	Wait(c Cond, m Mutex)
	Signal(c Cond)
	Broadcast(c Cond)
	Send(ch Chan)
	Recv(ch Chan) bool
	Close(ch Chan)
	Select(cases []SelectCase, def bool) (int, bool)
}

// Runtime mirrors the harness.Runtime constructor surface.
type Runtime interface {
	NewMutex(name string) Mutex
	NewBarrier(name string, parties int) Barrier
	NewCond(name string) Cond
	NewChan(name string, capacity int) Chan
}
