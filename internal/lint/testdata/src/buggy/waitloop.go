package buggy

import "sync"

// queue seeds Wait-not-in-a-loop in sync.Cond style: the emptiness
// check is an if, so a spurious or stale wakeup pops from an empty
// queue.
type queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []int
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		q.cond.Wait()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// popHarness seeds the same hazard in harness style.
func popHarness(p Proc, c Cond, m Mutex) {
	p.Lock(m)
	p.Wait(c, m)
	p.Unlock(m)
}
