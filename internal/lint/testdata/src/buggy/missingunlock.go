package buggy

import "sync"

// store seeds a missing-unlock-on-path: the not-found early return
// leaks s.mu.
type store struct {
	mu    sync.Mutex
	items map[string]int
}

func (s *store) get(key string) (int, bool) {
	s.mu.Lock()
	v, ok := s.items[key]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}
