package buggy

import (
	"sync"
	"time"
)

// pipeline seeds blocking-while-holding: channel operations inside
// the pl.mu critical section serialize every peer on the channel
// peer's pace.
type pipeline struct {
	mu  sync.Mutex
	out chan int
}

func (pl *pipeline) publish(v int) {
	pl.mu.Lock()
	pl.out <- v
	pl.mu.Unlock()
}

func (pl *pipeline) poll() int {
	pl.mu.Lock()
	v := <-pl.out
	pl.mu.Unlock()
	return v
}

// stall seeds barrier-wait and sleep inside a held region (harness
// style).
func stall(p Proc, m Mutex, b Barrier) {
	p.Lock(m)
	p.BarrierWait(b)
	time.Sleep(time.Millisecond)
	p.Unlock(m)
}

// relay seeds harness-style channel operations inside held regions:
// Send, Recv and Select all park the thread while m stays held.
func relay(p Proc, m Mutex, ch Chan) {
	p.Lock(m)
	p.Send(ch)
	p.Unlock(m)

	p.Lock(m)
	p.Recv(ch)
	p.Unlock(m)

	p.Lock(m)
	p.Select([]SelectCase{{Ch: ch}}, false)
	p.Unlock(m)
}
