package buggy

import "sync"

// counter seeds copied-mutex-value hazards: a mutex passed or
// returned by value guards nothing (each copy is its own lock).
type counter struct {
	mu sync.Mutex
	n  int
}

func snapshot(mu sync.Mutex) int {
	mu.Lock()
	defer mu.Unlock()
	return 0
}

func capture(c *counter) sync.Mutex {
	held := c.mu
	return held
}
