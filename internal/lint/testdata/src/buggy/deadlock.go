package buggy

// inversion seeds the classic two-lock order inversion: forward nests
// A then B, backward nests B then A.
type inversion struct {
	a, b Mutex
}

func newInversion(rt Runtime) *inversion {
	return &inversion{a: rt.NewMutex("A"), b: rt.NewMutex("B")}
}

func (s *inversion) forward(p Proc) {
	p.Lock(s.a)
	p.Lock(s.b)
	p.Unlock(s.b)
	p.Unlock(s.a)
}

func (s *inversion) backward(p Proc) {
	p.Lock(s.b)
	p.Lock(s.a)
	p.Unlock(s.a)
	p.Unlock(s.b)
}

// nested seeds the same inversion with one side hidden behind a call:
// cd holds C and calls takeD, which acquires D; dc nests D then C
// inline.
type nested struct {
	c, d Mutex
}

func newNested(rt Runtime) *nested {
	return &nested{c: rt.NewMutex("C"), d: rt.NewMutex("D")}
}

func (n *nested) takeD(p Proc) {
	p.Lock(n.d)
	p.Unlock(n.d)
}

func (n *nested) cd(p Proc) {
	p.Lock(n.c)
	n.takeD(p)
	p.Unlock(n.c)
}

func (n *nested) dc(p Proc) {
	p.Lock(n.d)
	p.Lock(n.c)
	p.Unlock(n.c)
	p.Unlock(n.d)
}
