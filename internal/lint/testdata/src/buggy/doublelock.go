package buggy

// update seeds a self-deadlocking double lock in harness style.
func update(p Proc, m Mutex) {
	p.Lock(m)
	p.Lock(m)
	p.Unlock(m)
}
