package buggy

import "sync"

// table seeds both RLock/RUnlock pairing violations: badRead releases
// a read hold with Unlock, badWrite releases an exclusive hold with
// RUnlock.
type table struct {
	mu sync.RWMutex
	n  int
}

func (t *table) badRead() int {
	t.mu.RLock()
	v := t.n
	t.mu.Unlock()
	return v
}

func (t *table) badWrite() {
	t.mu.Lock()
	t.n++
	t.mu.RUnlock()
}
