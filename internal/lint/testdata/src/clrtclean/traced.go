// Package clrtclean exercises correct clrt runtime API usage: the
// linter must stay silent on well-formed instrumented code.
package clrtclean

import "critlock/clrt"

type pool struct {
	mu   clrt.Mutex
	wg   *clrt.WaitGroup
	jobs clrt.Chan[int]
	done int
}

// name binds the dynamic trace name outside any critical section.
func (p *pool) name() {
	p.mu.SetName("pool.mu")
}

// record pairs Lock with a deferred Unlock and blocks on nothing while
// holding it.
func (p *pool) record() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
}

// submit sends outside the critical section: the counter update and
// the potentially blocking hand-off are separate.
func (p *pool) submit(v int) {
	p.mu.Lock()
	p.done++
	p.mu.Unlock()
	p.jobs.Send(v)
}

// run spawns traced workers and waits for them with no lock held.
func (p *pool) run() {
	p.wg.Add(1)
	clrt.Go("worker", func() {
		defer p.wg.Done()
		for {
			v, ok := p.jobs.Recv()
			if !ok {
				return
			}
			p.mu.Lock()
			p.done += v
			p.mu.Unlock()
		}
	})
	p.wg.Wait()
}

// poll selects with no lock held; the default arm keeps it
// non-blocking anyway.
func (p *pool) poll() int {
	i, v, _ := clrt.Select(true, clrt.RecvCase(p.jobs))
	if i < 0 {
		return 0
	}
	return clrt.Val[int](v)
}

// tryBump pairs a guarded TryLock with its release.
func (p *pool) tryBump() bool {
	if p.mu.TryLock() {
		p.done++
		p.mu.Unlock()
		return true
	}
	return false
}
