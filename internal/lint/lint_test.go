package lint_test

import (
	"strings"
	"testing"

	"critlock/internal/lint"
)

// lintSnippet runs the analyzer over one in-memory file.
func lintSnippet(t *testing.T, src string) *lint.Result {
	t.Helper()
	res, err := lint.LintSource("snippet.go", []byte(src))
	if err != nil {
		t.Fatalf("LintSource: %v", err)
	}
	return res
}

func checks(res *lint.Result) []string {
	var out []string
	for _, f := range res.Findings {
		out = append(out, f.Check)
	}
	return out
}

func TestTryLockPatterns(t *testing.T) {
	// All three guarded TryLock forms release on the held branch only:
	// no findings.
	clean := `package p
import "sync"
var mu sync.Mutex
func a() {
	if mu.TryLock() {
		mu.Unlock()
	}
}
func b() {
	if ok := mu.TryLock(); ok {
		mu.Unlock()
	}
}
func c() {
	for !mu.TryLock() {
	}
	mu.Unlock()
}`
	if res := lintSnippet(t, clean); len(res.Findings) != 0 {
		t.Errorf("guarded TryLock: unexpected findings %v", checks(res))
	}

	// Holding the then-branch without release leaks.
	leak := `package p
import "sync"
var mu sync.Mutex
func a() {
	if mu.TryLock() {
		println("held")
	}
}`
	res := lintSnippet(t, leak)
	if got := checks(res); len(got) != 1 || got[0] != lint.CheckMissingUnlock {
		t.Errorf("leaky TryLock: got %v, want [missingunlock]", got)
	}
}

func TestSuppressionRequiresReason(t *testing.T) {
	src := `package p
import "sync"
var mu sync.Mutex
func f() {
	//lint:ignore missingunlock
	mu.Lock()
}`
	res := lintSnippet(t, src)
	if len(res.Findings) != 1 || res.Suppressed != 0 {
		t.Errorf("bare directive must not suppress: findings=%v suppressed=%d",
			checks(res), res.Suppressed)
	}

	justified := strings.Replace(src, "//lint:ignore missingunlock",
		"//lint:ignore missingunlock held on purpose", 1)
	res = lintSnippet(t, justified)
	if len(res.Findings) != 0 || res.Suppressed != 1 {
		t.Errorf("justified directive must suppress: findings=%v suppressed=%d",
			checks(res), res.Suppressed)
	}
}

func TestPanicPathsNotMissingUnlock(t *testing.T) {
	// Holding across a panic-terminated path is an invariant-violation
	// handler, not a leak.
	src := `package p
import "sync"
var mu sync.Mutex
func f(bad bool) {
	mu.Lock()
	if bad {
		panic("invariant")
	}
	mu.Unlock()
}`
	if res := lintSnippet(t, src); len(res.Findings) != 0 {
		t.Errorf("panic path flagged: %v", checks(res))
	}
}

func TestDeferFuncLitUnlock(t *testing.T) {
	src := `package p
import "sync"
var mu sync.Mutex
func f() {
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
	println("work")
}`
	if res := lintSnippet(t, src); len(res.Findings) != 0 {
		t.Errorf("deferred closure unlock flagged: %v", checks(res))
	}
}

func TestUnlockOfCallerHeldIsSilent(t *testing.T) {
	// Releasing a lock this function never acquired is the
	// caller-holds idiom; the dataflow stays silent (documented
	// soundness caveat).
	src := `package p
import "sync"
var mu sync.Mutex
func releaseLocked() {
	mu.Unlock()
}`
	if res := lintSnippet(t, src); len(res.Findings) != 0 {
		t.Errorf("caller-held release flagged: %v", checks(res))
	}
}

func TestGoroutineBodiesAnalyzedSeparately(t *testing.T) {
	// The lock leak inside the goroutine must be found there, and the
	// spawning function must not inherit the literal's held set.
	src := `package p
import "sync"
var mu sync.Mutex
func f() {
	go func() {
		mu.Lock()
	}()
	mu.Lock()
	mu.Unlock()
}`
	res := lintSnippet(t, src)
	if got := checks(res); len(got) != 1 || got[0] != lint.CheckMissingUnlock {
		t.Errorf("got %v, want exactly [missingunlock] inside the goroutine", got)
	}
}
