package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"critlock/internal/lint"
)

// FuzzLint asserts the error-never-panic contract of the fuzzing
// entry point: arbitrary bytes must produce a result or an error,
// never a crash (parse errors, half-typed programs, pathological
// nesting, bogus lock idioms).
func FuzzLint(f *testing.F) {
	for _, dir := range []string{"testdata/src/buggy", "testdata/src/clean"} {
		ents, err := os.ReadDir(dir)
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range ents {
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(src)
		}
	}
	f.Add([]byte("package p\nfunc f(){for !m.TryLock(){};m.Unlock()}"))
	f.Add([]byte("package p\nimport \"sync\"\nvar m sync.Mutex\nfunc f(){defer func(){m.Unlock()}();m.Lock()}"))
	f.Add([]byte("package p\nfunc f(p P){goto l;l:p.Lock(m);select{}}"))
	f.Fuzz(func(t *testing.T, src []byte) {
		res, err := lint.LintSource("fuzz.go", src)
		if err == nil && res == nil {
			t.Fatal("nil result with nil error")
		}
	})
}
