package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"

	"critlock/internal/core"
	"critlock/internal/hazard"
	"critlock/internal/report"
	"critlock/internal/segment"
	"critlock/internal/trace"
)

// Package is one loaded, best-effort type-checked directory package,
// exposed for consumers beyond the linter's own passes (the
// source-to-source instrumenter in internal/instr). The type
// information carries the linter's tolerance guarantees: lookups must
// handle missing entries, and imports outside the resolved stdlib
// subset appear as empty stub packages.
type Package struct {
	// Name is the package clause name.
	Name string
	// Dir is the display directory (slash-separated, relative to the
	// load root when possible).
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed sources, in deterministic order.
	Files []*File
	// Info is the partial type information for the package.
	Info *types.Info
	// Types is the checked package object; an object in Info with
	// Pkg() == Types is declared in this package. May be nil when
	// checking panicked.
	Types *types.Package
}

// File is one parsed source file of a Package.
type File struct {
	// Path is the display path (slash-separated, relative to the load
	// root when possible) — for files under the root it doubles as the
	// relative output path when writing a rewritten tree.
	Path string
	// AST is the parsed file, with comments.
	AST *ast.File
	// SyncName is the local import name of "sync" ("" if not
	// imported); TimeName likewise for "time".
	SyncName string
	TimeName string
}

// LoadReport reads a report.Export JSON file — the `clalint -report`
// input. It is the narrow half of the shared export-loading path;
// `clalint -dynamic` goes through LoadDynamic, which accepts raw
// traces and segment directories too and funnels JSON files here.
func LoadReport(path string) (*report.Export, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := report.ReadExport(f)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return rep, nil
}

// LoadDynamic loads a dynamic analysis for cross-referencing from any
// producer format, sniffed from the argument:
//
//   - a segment directory: the bounded-memory analysis pipeline plus
//     the segment-range hazard pass stream it,
//   - a JSON analysis report (cla -jsonreport / clasrv): parsed as-is —
//     it carries a hazards section only if its producer ran the pass
//     (cla -hazards -jsonreport, clasrv /v1/hazards),
//   - a trace file (binary .cltr or JSON): analyzed in memory, with
//     the hazard pass.
//
// Traces and segment directories always yield a freshly computed
// hazards section, so `clalint -dynamic` on either joins both the
// criticality ranking and the dynamic hazard findings.
func LoadDynamic(path string) (*report.Export, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		rdr, err := segment.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open segment directory %s: %w", path, err)
		}
		defer rdr.Close()
		an, err := core.AnalyzeSource(core.StreamSource(rdr), core.Config{Options: core.DefaultOptions()})
		if err != nil {
			return nil, fmt.Errorf("analyze %s: %w", path, err)
		}
		hz, err := hazard.FromSegments(rdr, 0)
		if err != nil {
			return nil, fmt.Errorf("hazard analysis of %s: %w", path, err)
		}
		rep := report.BuildExport("", "segments:"+path, true, an)
		rep.Hazards = hz
		return rep, nil
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr *trace.Trace
	if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		// JSON: an analysis report has a "summary" object, a JSON trace
		// has "events" — disambiguate before committing to a decoder.
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(data, &probe); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		if _, ok := probe["summary"]; ok {
			return LoadReport(path)
		}
		tr, err = trace.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
	} else {
		tr, err = trace.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", path, err)
		}
	}
	an, err := core.AnalyzeSource(core.TraceSource(tr), core.Config{Options: core.DefaultOptions()})
	if err != nil {
		return nil, fmt.Errorf("analyze %s: %w", path, err)
	}
	hz, err := hazard.FromTrace(tr)
	if err != nil {
		return nil, fmt.Errorf("hazard analysis of %s: %w", path, err)
	}
	rep := report.BuildExport("", path, false, an)
	rep.Hazards = hz
	return rep, nil
}

// LoadPackages expands opts.Patterns, parses and best-effort
// type-checks every matched file, and returns the result grouped into
// directory packages. It is the loader behind Run, exported so the
// instrumenter resolves names with exactly the linter's semantics.
func LoadPackages(opts Options) ([]*Package, error) {
	pkgs, err := load(opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(pkgs))
	for _, p := range pkgs {
		ep := &Package{Name: p.name, Dir: p.dir, Fset: p.fset, Info: p.info, Types: p.tpkg}
		for _, f := range p.files {
			ep.Files = append(ep.Files, &File{
				Path: f.path, AST: f.ast, SyncName: f.syncName, TimeName: f.timeName,
			})
		}
		out = append(out, ep)
	}
	return out, nil
}
