package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Package is one loaded, best-effort type-checked directory package,
// exposed for consumers beyond the linter's own passes (the
// source-to-source instrumenter in internal/instr). The type
// information carries the linter's tolerance guarantees: lookups must
// handle missing entries, and imports outside the resolved stdlib
// subset appear as empty stub packages.
type Package struct {
	// Name is the package clause name.
	Name string
	// Dir is the display directory (slash-separated, relative to the
	// load root when possible).
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed sources, in deterministic order.
	Files []*File
	// Info is the partial type information for the package.
	Info *types.Info
	// Types is the checked package object; an object in Info with
	// Pkg() == Types is declared in this package. May be nil when
	// checking panicked.
	Types *types.Package
}

// File is one parsed source file of a Package.
type File struct {
	// Path is the display path (slash-separated, relative to the load
	// root when possible) — for files under the root it doubles as the
	// relative output path when writing a rewritten tree.
	Path string
	// AST is the parsed file, with comments.
	AST *ast.File
	// SyncName is the local import name of "sync" ("" if not
	// imported); TimeName likewise for "time".
	SyncName string
	TimeName string
}

// LoadPackages expands opts.Patterns, parses and best-effort
// type-checks every matched file, and returns the result grouped into
// directory packages. It is the loader behind Run, exported so the
// instrumenter resolves names with exactly the linter's semantics.
func LoadPackages(opts Options) ([]*Package, error) {
	pkgs, err := load(opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(pkgs))
	for _, p := range pkgs {
		ep := &Package{Name: p.name, Dir: p.dir, Fset: p.fset, Info: p.info, Types: p.tpkg}
		for _, f := range p.files {
			ep.Files = append(ep.Files, &File{
				Path: f.path, AST: f.ast, SyncName: f.syncName, TimeName: f.timeName,
			})
		}
		out = append(out, ep)
	}
	return out, nil
}
