package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"critlock"
	"critlock/internal/lint"
	"critlock/internal/segment"
)

// corroboratingSrc statically realizes the same A→B / B→A inversion
// the deadlockprone workload realizes dynamically, bound to the same
// dynamic lock names, so the dynamic cycle can name its static
// counterpart.
const corroboratingSrc = `package demo

type Mutex interface{ Name() string }
type Proc interface {
	Lock(m Mutex)
	Unlock(m Mutex)
}
type Runtime interface {
	NewMutex(name string) Mutex
}

type pair struct{ a, b Mutex }

func build(rt Runtime) *pair {
	return &pair{a: rt.NewMutex("locks.A"), b: rt.NewMutex("locks.B")}
}

func (s *pair) ab(p Proc) {
	p.Lock(s.a)
	p.Lock(s.b)
	p.Unlock(s.b)
	p.Unlock(s.a)
}

func (s *pair) ba(p Proc) {
	p.Lock(s.b)
	p.Lock(s.a)
	p.Unlock(s.a)
	p.Unlock(s.b)
}
`

func deadlockProneTrace(t *testing.T) *critlock.Trace {
	t.Helper()
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, "deadlockprone", critlock.WorkloadParams{Seed: 1})
	if err != nil {
		t.Fatalf("running deadlockprone: %v", err)
	}
	return tr
}

func lintCorroborating(t *testing.T) *lint.Result {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(corroboratingSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := lint.Run(lint.Options{Patterns: []string{dir}, StdlibTypes: true})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	return res
}

// TestCrossReferenceHazardsDeadlock: the full static↔dynamic hazard
// join. The deadlockprone trace yields one feasible-deadlock cycle on
// {locks.A, locks.B}; the static corpus realizes the same inversion;
// the merged view must contain a dyndeadlock finding that names the
// static corroboration, anchored at a static acquisition site, joined
// to the measured report.
func TestCrossReferenceHazardsDeadlock(t *testing.T) {
	tr := deadlockProneTrace(t)
	path := filepath.Join(t.TempDir(), "trace.cltr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := critlock.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := lint.LoadDynamic(path)
	if err != nil {
		t.Fatalf("LoadDynamic(trace): %v", err)
	}
	if rep.Hazards == nil || len(rep.Hazards.Cycles) != 1 {
		t.Fatalf("trace hazards = %+v, want exactly one cycle", rep.Hazards)
	}

	res := lintCorroborating(t)
	lint.CrossReferenceHazards(res, rep)

	var dyn *lint.Finding
	for i := range res.Findings {
		if res.Findings[i].Check == lint.CheckDynDeadlock {
			if dyn != nil {
				t.Fatal("more than one dyndeadlock finding")
			}
			dyn = &res.Findings[i]
		}
	}
	if dyn == nil {
		t.Fatal("no dyndeadlock finding after CrossReferenceHazards")
	}
	if !strings.Contains(dyn.Message, "corroborates the static lockorder cycle") {
		t.Errorf("dyndeadlock message lacks corroboration: %q", dyn.Message)
	}
	if dyn.File == "" || dyn.Line == 0 {
		t.Errorf("dyndeadlock finding not anchored at a static site: %s", dyn.Pos())
	}
	if !dyn.Matched {
		t.Error("dyndeadlock finding not joined to the measured report")
	}
	if len(dyn.CycleDyn) != 2 {
		t.Errorf("dyndeadlock CycleDyn = %v, want both locks", dyn.CycleDyn)
	}
}

// TestLoadDynamicSegdir: the streaming input path yields the identical
// hazards section as the in-memory trace.
func TestLoadDynamicSegdir(t *testing.T) {
	tr := deadlockProneTrace(t)
	dir := filepath.Join(t.TempDir(), "segs")
	if err := segment.WriteTrace(dir, tr, segment.Options{SegmentEvents: 64}); err != nil {
		t.Fatal(err)
	}
	rep, err := lint.LoadDynamic(dir)
	if err != nil {
		t.Fatalf("LoadDynamic(segdir): %v", err)
	}
	if !rep.Streamed {
		t.Error("segdir report not marked streamed")
	}
	if rep.Hazards == nil || len(rep.Hazards.Cycles) != 1 {
		t.Fatalf("segdir hazards = %+v, want exactly one cycle", rep.Hazards)
	}
	if rep.Summary.CPLength <= 0 {
		t.Errorf("segdir analysis summary empty: %+v", rep.Summary)
	}
}

// TestCrossReferenceHazardsLostSignal: the lostsignal workload's
// finding lands in the merged list as a lostsignal check.
func TestCrossReferenceHazardsLostSignal(t *testing.T) {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 8, Seed: 1})
	tr, _, err := critlock.RunWorkload(sim, "lostsignal", critlock.WorkloadParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.cltr")
	var buf bytes.Buffer
	if err := critlock.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := lint.LoadDynamic(path)
	if err != nil {
		t.Fatal(err)
	}

	res := lintCorroborating(t)
	before := len(res.Findings)
	lint.CrossReferenceHazards(res, rep)

	var lost int
	for _, f := range res.Findings {
		if f.Check == lint.CheckLostSignal {
			lost++
			if !strings.Contains(f.Message, "ls.cv") {
				t.Errorf("lostsignal message lacks the cond name: %q", f.Message)
			}
			if f.Severity != lint.SevError {
				t.Errorf("lostsignal severity = %s", f.Severity)
			}
		}
	}
	if lost != 1 {
		t.Errorf("lostsignal findings = %d, want 1 (had %d findings before merge)", lost, before)
	}
}
