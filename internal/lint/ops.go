package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// opKind classifies the lock-relevant effect of an expression.
type opKind int

const (
	opLock opKind = iota
	opTryLock
	opUnlock
	opRLock
	opRUnlock
	opWaitHarness // p.Wait(c, m): release m, block, reacquire m
	opWaitCond    // c.Wait() on a sync.Cond
	opWgWait      // wg.Wait() on a clrt.WaitGroup (blocking, lock-free)
	opBarrierWait // blocking, lock-free
	opSleep       // time.Sleep
	opChanSend
	opChanRecv
	opSelect
	opCall // candidate call for lock-order propagation
)

// blocking reports whether the op can block the thread.
func (k opKind) blocking() bool {
	switch k {
	case opWaitHarness, opWaitCond, opWgWait, opBarrierWait, opSleep, opChanSend, opChanRecv, opSelect:
		return true
	}
	return false
}

// describe names the op for finding messages.
func (k opKind) describe() string {
	switch k {
	case opWaitHarness, opWaitCond:
		return "condition wait"
	case opWgWait:
		return "WaitGroup wait"
	case opBarrierWait:
		return "barrier wait"
	case opSleep:
		return "time.Sleep"
	case opChanSend:
		return "channel send"
	case opChanRecv:
		return "channel receive"
	case opSelect:
		return "select"
	}
	return "operation"
}

// op is one classified operation inside a CFG node.
type op struct {
	kind opKind
	// key is the canonical lock key ("" = untracked expression; the
	// op is then invisible to the held-set dataflow).
	key    string
	recv   bool // key went through receiver substitution ("Type.field")
	shared bool // opTryLock: TryRLock rather than TryLock
	pos    token.Position
	assoc  string // waits: mutex released/reacquired around the block
	callee string // opCall: qualified callee key
	expr   ast.Node
}

// function is one analyzed FuncDecl or FuncLit.
type function struct {
	pkg  *pkgInfo
	file *fileInfo
	name string
	// recvName/recvType drive receiver substitution in lock keys.
	recvName string
	recvType string
	body     *ast.BlockStmt
	typ      *ast.FuncType

	cfg    *cfgGraph
	sites  []*site
	nLits  int
	parent *function

	// Dataflow products consumed by the cross-function lock-order
	// pass.
	callsHolding   []callHolding
	directAcquires map[string]*site
}

// site is one static lock acquisition site.
type site struct {
	id     int
	fn     *function
	key    string
	recv   bool
	dyn    string
	shared bool
	try    bool
	pos    token.Position
	weight int
}

// globalKey renders the whole-program identity of a lock key: the
// dynamic name when known, a package-qualified "Type.field" for
// receiver fields, and a function-scoped name otherwise (two local
// variables in different functions are never the same lock).
func (fn *function) globalKey(key string, recv bool, dyn string) string {
	if dyn != "" {
		return dyn
	}
	if recv {
		return fn.pkg.dir + ":" + key
	}
	return fn.pkg.dir + ":" + fn.rootName() + ":" + key
}

// rootName is the enclosing FuncDecl's name (lits share their
// parent's lock scope: closures capture the parent's variables).
func (fn *function) rootName() string {
	f := fn
	for f.parent != nil {
		f = f.parent
	}
	return f.name
}

// prepass learns package-level facts consulted by every later pass:
// dynamic lock names from NewMutex("name") calls and cond->mutex
// association from sync.NewCond(&mu), composite literals and
// harness Wait(c, m) call sites.
func (p *pkgInfo) prepass() {
	p.dynNames = map[string]string{}
	p.condMutex = map[string]string{}
	for _, f := range p.files {
		for _, decl := range f.ast.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				p.prepassNode(d, "", "")
			case *ast.FuncDecl:
				recvName, recvType := recvInfo(d)
				if d.Body != nil {
					p.prepassNode(d.Body, recvName, recvType)
				}
			}
		}
	}
}

// prepassNode records name bindings under one receiver context.
func (p *pkgInfo) prepassNode(root ast.Node, recvName, recvType string) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		if name, ok := newMutexName(rhs); ok {
			if key, _ := p.typedCanon(lhs, recvName, recvType); key != "" {
				p.dynNames[key] = name
			}
		}
		if mu, ok := newCondTarget(rhs); ok {
			ckey, _ := p.typedCanon(lhs, recvName, recvType)
			mkey, _ := p.typedCanon(mu, recvName, recvType)
			if ckey != "" && mkey != "" {
				p.condMutex[ckey] = mkey
			}
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch nd := n.(type) {
		case *ast.AssignStmt:
			if len(nd.Lhs) == len(nd.Rhs) {
				for i := range nd.Lhs {
					record(nd.Lhs[i], nd.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(nd.Names) == len(nd.Values) {
				for i := range nd.Names {
					record(nd.Names[i], nd.Values[i])
				}
			}
		case *ast.CompositeLit:
			tname := litTypeName(nd.Type)
			if tname == "" {
				return true
			}
			for _, el := range nd.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				fld, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if name, ok := newMutexName(kv.Value); ok {
					p.dynNames[tname+"."+fld.Name] = name
				}
				if mu, ok := newCondTarget(kv.Value); ok {
					if mkey, mrecv := canonKey(mu, recvName, recvType); mkey != "" {
						p.condMutex[tname+"."+fld.Name] = dynScope(mkey, mrecv)
					}
				}
			}
		case *ast.CallExpr:
			// p.Wait(c, m) associates cond c with mutex m.
			if sel, ok := nd.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(nd.Args) == 2 {
				ckey, crecv := canonKey(nd.Args[0], recvName, recvType)
				mkey, mrecv := canonKey(nd.Args[1], recvName, recvType)
				if ckey != "" && mkey != "" {
					p.condMutex[dynScope(ckey, crecv)] = dynScope(mkey, mrecv)
				}
			}
			// mu.SetName("name") binds a clrt.Mutex/RWMutex to its
			// dynamic trace name — the same join key NewMutex("name")
			// yields for harness code.
			if sel, ok := nd.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SetName" && len(nd.Args) == 1 {
				if lit, ok := ast.Unparen(nd.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING && len(lit.Value) >= 2 {
					if key, _ := p.typedCanon(sel.X, recvName, recvType); key != "" {
						p.dynNames[key] = strings.Trim(lit.Value, "`\"")
					}
				}
			}
		}
		return true
	})
}

// dynScope is the dynNames/condMutex map key: receiver-substituted
// keys ("Type.field") are package-scoped, plain names file-scoped
// enough in practice (workload setup and use share one function).
func dynScope(key string, _ bool) string { return key }

// typedCanon resolves e like canonKey, but when the root identifier
// is not the receiver it additionally tries go/types: a root whose
// type is a named struct declared in this package is replaced by the
// type name ("q.cond" -> "queue.cond"), so constructor-pattern
// bindings line up with the receiver-substituted keys used in method
// bodies. Bare identifiers keep their function-scoped name.
func (p *pkgInfo) typedCanon(e ast.Expr, recvName, recvType string) (string, bool) {
	key, recv := canonKey(e, recvName, recvType)
	if key == "" || recv {
		return key, recv
	}
	i := strings.Index(key, ".")
	if i < 0 {
		return key, false
	}
	if root := rootIdent(e); root != nil {
		if tn := p.localTypeName(root); tn != "" {
			return tn + key[i:], true
		}
	}
	return key, false
}

// rootIdent finds the leftmost identifier of a selector chain.
func rootIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return rootIdent(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return rootIdent(x.X)
		}
	case *ast.StarExpr:
		return rootIdent(x.X)
	}
	return nil
}

// localTypeName resolves id's type to the name of a struct type
// declared in this package, or "".
func (p *pkgInfo) localTypeName(id *ast.Ident) string {
	t := p.typeOf(id)
	if t == nil && p.info != nil {
		if obj, ok := p.info.Uses[id]; ok && obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != p.name {
		return ""
	}
	return obj.Name()
}

// newMutexName matches X.NewMutex("name") / NewMutex("name").
func newMutexName(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return "", false
	}
	name := calleeName(call)
	if name != "NewMutex" {
		return "", false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || len(lit.Value) < 2 {
		return "", false
	}
	return strings.Trim(lit.Value, "`\""), true
}

// newCondTarget matches sync.NewCond(&mu) and returns mu.
func newCondTarget(e ast.Expr) (ast.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || calleeName(call) != "NewCond" {
		return nil, false
	}
	if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X, true
	}
	return call.Args[0], true
}

// calleeName extracts the called method/function name.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// recvInfo returns the receiver name and base type name of a method.
func recvInfo(d *ast.FuncDecl) (string, string) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", ""
	}
	fld := d.Recv.List[0]
	name := ""
	if len(fld.Names) == 1 {
		name = fld.Names[0].Name
	}
	return name, litTypeName(fld.Type)
}

// litTypeName names a (possibly pointered/generic) type expression.
func litTypeName(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return litTypeName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.IndexExpr:
		return litTypeName(t.X)
	case *ast.IndexListExpr:
		return litTypeName(t.X)
	}
	return ""
}

// canonKey canonicalizes a lock expression: parens and & stripped,
// the method receiver replaced by its type name. It returns "" for
// expressions the dataflow cannot track soundly (index expressions,
// call results), and whether receiver substitution happened.
func canonKey(e ast.Expr, recvName, recvType string) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if recvName != "" && x.Name == recvName && recvType != "" {
			return recvType, true
		}
		return x.Name, false
	case *ast.SelectorExpr:
		base, recv := canonKey(x.X, recvName, recvType)
		if base == "" {
			return "", false
		}
		return base + "." + x.Sel.Name, recv
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return canonKey(x.X, recvName, recvType)
		}
	case *ast.StarExpr:
		return canonKey(x.X, recvName, recvType)
	}
	return "", false
}

// functions collects every FuncDecl and (recursively) FuncLit body.
func (p *pkgInfo) functions() []*function {
	var fns []*function
	for _, f := range p.files {
		for _, decl := range f.ast.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			recvName, recvType := recvInfo(d)
			name := d.Name.Name
			if recvType != "" {
				name = recvType + "." + name
			}
			fn := &function{
				pkg: p, file: f, name: name,
				recvName: recvName, recvType: recvType,
				body: d.Body, typ: d.Type,
			}
			fns = append(fns, fn)
			fns = append(fns, collectLits(fn, d.Body)...)
		}
	}
	return fns
}

// collectLits pulls nested FuncLits out as their own functions (they
// run on other goroutines or at defer time; analyzing them inline
// would corrupt the parent's dataflow).
func collectLits(parent *function, root ast.Node) []*function {
	var fns []*function
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		parent.nLits++
		fn := &function{
			pkg: parent.pkg, file: parent.file,
			name:     parent.name + "·func" + itoa(parent.nLits),
			recvName: parent.recvName, recvType: parent.recvType,
			body: lit.Body, typ: lit.Type, parent: parent,
		}
		fns = append(fns, fn)
		fns = append(fns, collectLits(fn, lit.Body)...)
		return false // inner lits collected by the recursive call
	})
	return fns
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// classify extracts the lock-relevant ops of expression tree n in
// evaluation order, without descending into FuncLits.
func (fn *function) classify(n ast.Node, out *[]op) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			*out = append(*out, op{kind: opChanSend, pos: fn.pos(e.Arrow), expr: e})
			return true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				*out = append(*out, op{kind: opChanRecv, pos: fn.pos(e.OpPos), expr: e})
			}
			return true
		case *ast.CallExpr:
			fn.classifyCall(e, out)
			// Arguments were classified by classifyCall in eval
			// order; don't revisit.
			return false
		}
		return true
	})
}

// classifyCall classifies one call (arguments first — Go evaluates
// them before the call takes effect).
func (fn *function) classifyCall(call *ast.CallExpr, out *[]op) {
	for _, a := range call.Args {
		fn.classify(a, out)
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	name := calleeName(call)
	pos := fn.pos(call.Lparen)
	mk := func(kind opKind, lockExpr ast.Expr) op {
		o := op{kind: kind, pos: pos, expr: call}
		if lockExpr != nil {
			o.key, o.recv = canonKey(lockExpr, fn.recvName, fn.recvType)
		}
		return o
	}
	nargs := len(call.Args)
	switch {
	case isSel && nargs == 0:
		switch name {
		case "Lock":
			*out = append(*out, mk(opLock, sel.X))
			return
		case "Unlock":
			*out = append(*out, mk(opUnlock, sel.X))
			return
		case "RLock":
			*out = append(*out, mk(opRLock, sel.X))
			return
		case "RUnlock":
			*out = append(*out, mk(opRUnlock, sel.X))
			return
		case "TryLock", "TryRLock":
			o := mk(opTryLock, sel.X)
			o.shared = name == "TryRLock"
			*out = append(*out, o)
			return
		case "Wait":
			// Only a condition-variable Wait counts (not
			// sync.WaitGroup.Wait): the receiver must resolve to
			// *sync.Cond or be a tracked NewCond result. In a file using
			// the clrt runtime, a non-cond 0-arg Wait is a
			// clrt.WaitGroup (or sync.WaitGroup) wait — blocking.
			if fn.isCondRecv(sel.X) {
				o := mk(opWaitCond, sel.X)
				o.assoc = fn.pkg.condMutex[o.key]
				*out = append(*out, o)
				return
			}
			if fn.file.clrtName != "" {
				*out = append(*out, mk(opWgWait, nil))
				return
			}
		case "Recv", "Recv1":
			// clrt.Chan receive: ch.Recv() / ch.Recv1() (the rewritten
			// forms of <-ch), blocking while empty.
			if fn.file.clrtName != "" {
				*out = append(*out, mk(opChanRecv, nil))
				return
			}
		}
	case isSel && nargs == 1:
		switch name {
		case "Lock":
			*out = append(*out, mk(opLock, call.Args[0]))
			return
		case "TryLock":
			*out = append(*out, mk(opTryLock, call.Args[0]))
			return
		case "Unlock":
			*out = append(*out, mk(opUnlock, call.Args[0]))
			return
		case "RLock":
			*out = append(*out, mk(opRLock, call.Args[0]))
			return
		case "RUnlock":
			*out = append(*out, mk(opRUnlock, call.Args[0]))
			return
		case "BarrierWait":
			*out = append(*out, mk(opBarrierWait, nil))
			return
		case "Send":
			// p.Send(ch): harness channel send, blocks while the
			// buffer is full (or until a receiver, unbuffered).
			*out = append(*out, mk(opChanSend, nil))
			return
		case "Recv":
			// p.Recv(ch): harness channel receive, blocks while empty.
			*out = append(*out, mk(opChanRecv, nil))
			return
		case "Sleep":
			if id, ok := sel.X.(*ast.Ident); ok && fn.file.timeName != "" && id.Name == fn.file.timeName {
				*out = append(*out, mk(opSleep, nil))
				return
			}
		}
	case isSel && nargs == 2 && name == "Wait":
		// p.Wait(c, m): blocks with m released, reacquires m.
		o := mk(opWaitHarness, call.Args[1])
		o.assoc = o.key
		*out = append(*out, o)
		return
	case isSel && nargs == 2 && name == "Select":
		// p.Select(cases, def): blocks until an arm is ready (a true
		// def never blocks, but the conservative held-set pass treats
		// every select as a potential block).
		*out = append(*out, mk(opSelect, nil))
		return
	}
	// clrt.Select(def, cases...): the rewritten select statement,
	// package-qualified so any arity matches.
	if isSel && name == "Select" && fn.file.clrtName != "" {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == fn.file.clrtName {
			*out = append(*out, mk(opSelect, nil))
			return
		}
	}
	// Plain call: a lock-order propagation candidate.
	o := op{kind: opCall, pos: pos, expr: call, callee: fn.resolveCallee(call)}
	*out = append(*out, o)
}

// isCondRecv reports whether e is a condition variable: typed
// *sync.Cond (when type info resolved) or a tracked NewCond binding.
func (fn *function) isCondRecv(e ast.Expr) bool {
	key, _ := canonKey(e, fn.recvName, fn.recvType)
	if key != "" {
		if _, ok := fn.pkg.condMutex[key]; ok {
			return true
		}
	}
	if t := fn.pkg.typeOf(e); t != nil {
		if strings.TrimPrefix(t.String(), "*") == "sync.Cond" {
			return true
		}
	}
	return false
}

// typeOf looks up best-effort type info.
func (p *pkgInfo) typeOf(e ast.Expr) types.Type {
	if p.info == nil {
		return nil
	}
	if tv, ok := p.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// resolveCallee maps a call to an analyzed-function key: "pkg:Name"
// for package-level functions, "pkg:Type.Method" for methods whose
// receiver type resolves (same-package or via type info).
func (fn *function) resolveCallee(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.pkg.dir + ":" + f.Name
	case *ast.SelectorExpr:
		// Method call on a same-package value: resolve the receiver's
		// type name through go/types when available.
		if t := fn.pkg.typeOf(f.X); t != nil {
			tn := t.String()
			tn = strings.TrimPrefix(tn, "*")
			if i := strings.LastIndex(tn, "."); i >= 0 {
				tn = tn[i+1:]
			}
			if tn != "" && !strings.ContainsAny(tn, "[]{}() ") {
				return fn.pkg.dir + ":" + tn + "." + f.Sel.Name
			}
		}
		// Receiver is the method receiver itself: s.helper().
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok && id.Name == fn.recvName && fn.recvType != "" {
			return fn.pkg.dir + ":" + fn.recvType + "." + f.Sel.Name
		}
	}
	return ""
}

func (fn *function) pos(p token.Pos) token.Position {
	pp := fn.pkg.fset.Position(p)
	pp.Filename = fn.file.path
	return pp
}
