package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"critlock/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden file from current analyzer output")

func runCorpus(t *testing.T) *lint.Result {
	t.Helper()
	res, err := lint.Run(lint.Options{
		Dir:         ".",
		Patterns:    []string{"./testdata/src/..."},
		StdlibTypes: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestGoldenCorpus pins the analyzer's complete human-readable output
// over the hazard corpus: every seeded finding, every acquisition
// site with its weight. Regenerate with `go test -run Golden -update`.
func TestGoldenCorpus(t *testing.T) {
	res := runCorpus(t)
	var sb strings.Builder
	lint.WriteHuman(&sb, res, true)
	got := sb.String()

	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (rerun with -update if intended)\n--- got ---\n%s", golden, got)
	}
}

// TestCorpusCoverage asserts the acceptance criteria directly: every
// seeded hazard class is detected, and the clean files produce zero
// findings (no false positives).
func TestCorpusCoverage(t *testing.T) {
	res := runCorpus(t)

	byCheck := map[string]int{}
	for _, f := range res.Findings {
		byCheck[f.Check]++
		if strings.Contains(f.File, "/clean/") || strings.Contains(f.File, "/clrtclean/") {
			t.Errorf("false positive in clean corpus: %s", f.String())
		}
	}
	want := map[string]int{
		lint.CheckLockOrder:     2, // inline A/B inversion + via-call C/D inversion
		lint.CheckMissingUnlock: 1,
		lint.CheckDoubleLock:    2,  // sync style + clrt 0-arg style
		lint.CheckRWPair:        3,  // sync pair + clrt.RWMutex mismatch
		lint.CheckBlockHeld:     11, // chan send/recv (Go + harness + clrt), select (harness + clrt), barrier wait, sleep, WaitGroup wait
		lint.CheckWaitLoop:      2,  // sync.Cond style + harness style
		lint.CheckCopyLock:      4,  // value param (sync + clrt), value return, value assignment
	}
	for check, n := range want {
		if byCheck[check] != n {
			t.Errorf("check %s: got %d findings, want %d", check, byCheck[check], n)
		}
	}
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (clean/suppressed.go)", res.Suppressed)
	}
	if len(res.Cycles) != 2 {
		t.Errorf("cycles = %d, want 2", len(res.Cycles))
	}

	// The via-call cycle must carry the callee attribution.
	via := false
	for _, c := range res.Cycles {
		for _, e := range c.Edges {
			if e.Via == "nested.takeD" {
				via = true
			}
		}
	}
	if !via {
		t.Error("no cycle edge attributed via call to nested.takeD")
	}

	// Dynamic lock names resolved through NewMutex tracking ("A".."audit")
	// and clrt SetName tracking ("srv.mu").
	dyn := map[string]bool{}
	for _, s := range res.Sites {
		if s.DynName != "" {
			dyn[s.DynName] = true
		}
	}
	for _, name := range []string{"A", "B", "C", "D", "ledger", "audit", "srv.mu"} {
		if !dyn[name] {
			t.Errorf("dynamic lock name %q not resolved to any site", name)
		}
	}
}

// TestDeterministic pins that two runs produce identical output (the
// golden test's usefulness depends on it).
func TestDeterministic(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		lint.WriteHuman(&sb, runCorpus(t), true)
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("two identical runs rendered differently")
	}
}
