package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// blockingExtras runs the AST-shaped checks that need no dataflow:
// condition Wait calls outside a re-checking loop.
func (fn *function) blockingExtras() []Finding {
	var findings []Finding
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch st := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // analyzed as its own function
		case *ast.ForStmt:
			walk(st.Init, inLoop)
			walk(st.Cond, inLoop)
			walk(st.Post, inLoop)
			walk(st.Body, true)
			return
		case *ast.RangeStmt:
			walk(st.X, inLoop)
			walk(st.Body, true)
			return
		case *ast.CallExpr:
			if kind, pos, key := fn.waitCall(st); kind != "" && !inLoop {
				f := Finding{
					Check: CheckWaitLoop, Severity: SevWarn,
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Lock:    key,
					DynName: fn.pkg.dynNames[key],
					Message: fmt.Sprintf("%s not guarded by a re-checking loop: wakeups are advisory and spurious", kind),
				}
				findings = append(findings, f)
			}
		}
		// Generic descent.
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				children = append(children, c)
			}
			return false
		})
		for _, c := range children {
			walk(c, inLoop)
		}
	}
	walk(fn.body, false)
	return findings
}

// waitCall classifies a condition-variable wait: harness p.Wait(c, m)
// or sync.Cond c.Wait(). It returns a description, position and the
// guarded mutex key ("" when unknown).
func (fn *function) waitCall(call *ast.CallExpr) (string, token.Position, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return "", token.Position{}, ""
	}
	switch len(call.Args) {
	case 2:
		key, _ := canonKey(call.Args[1], fn.recvName, fn.recvType)
		return "condition Wait(cond, mutex)", fn.pos(call.Lparen), key
	case 0:
		if fn.isCondRecv(sel.X) {
			ckey, _ := canonKey(sel.X, fn.recvName, fn.recvType)
			return "sync.Cond Wait", fn.pos(call.Lparen), fn.pkg.condMutex[ckey]
		}
	}
	return "", token.Position{}, ""
}

// copyLockPass flags sync.Mutex/sync.RWMutex values copied by value:
// parameters and results declared as mutex values, and assignments
// whose right-hand side is an existing mutex value (composite
// literals — zero-value initialization — are fine).
func (p *pkgInfo) copyLockPass() []Finding {
	var findings []Finding
	emit := func(pos token.Position, what string) {
		findings = append(findings, Finding{
			Check: CheckCopyLock, Severity: SevError,
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: what,
		})
	}
	for _, f := range p.files {
		f := f
		ast.Inspect(f.ast, func(n ast.Node) bool {
			switch nd := n.(type) {
			case *ast.FuncType:
				for _, fieldList := range []*ast.FieldList{nd.Params, nd.Results} {
					if fieldList == nil {
						continue
					}
					for _, fld := range fieldList.List {
						if name := p.syncMutexValueType(f, fld.Type); name != "" {
							pos := p.fset.Position(fld.Type.Pos())
							pos.Filename = f.path
							emit(pos, fmt.Sprintf("%s passed by value: a copied %s is a different lock (use a pointer)", name, name))
						}
					}
				}
			case *ast.AssignStmt:
				if len(nd.Lhs) != len(nd.Rhs) {
					return true
				}
				for i, rhs := range nd.Rhs {
					if name := p.mutexValueCopy(rhs); name != "" {
						pos := p.fset.Position(nd.Lhs[i].Pos())
						pos.Filename = f.path
						emit(pos, fmt.Sprintf("assignment copies %s value of %s: the copy is a different lock", name, exprText(rhs)))
					}
				}
			}
			return true
		})
	}
	return findings
}

// syncMutexValueType reports "sync.Mutex"/"sync.RWMutex" when the
// type expression is a mutex VALUE (pointers are fine). Works
// syntactically off the file's sync import name, with go/types as
// backup.
func (p *pkgInfo) syncMutexValueType(f *fileInfo, t ast.Expr) string {
	t = ast.Unparen(t)
	if sel, ok := t.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if f.syncName != "" && id.Name == f.syncName &&
				(sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex") {
				return "sync." + sel.Sel.Name
			}
			// clrt.Mutex/RWMutex/WaitGroup hold registration state (a
			// sync.Once and the trace handle): a copy is a different,
			// unregistered lock, exactly like a copied sync.Mutex.
			if f.clrtName != "" && id.Name == f.clrtName &&
				(sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex" || sel.Sel.Name == "WaitGroup") {
				return "clrt." + sel.Sel.Name
			}
		}
	}
	if tt := p.typeOf(t); tt != nil {
		if s := mutexTypeName(tt); s != "" {
			return s
		}
	}
	return ""
}

// mutexValueCopy reports the mutex type name when rhs evaluates to a
// mutex value that already exists elsewhere (identifier, selector, or
// pointer dereference — not a fresh composite literal).
func (p *pkgInfo) mutexValueCopy(rhs ast.Expr) string {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return ""
	}
	tt := p.typeOf(ast.Unparen(rhs))
	if tt == nil {
		return ""
	}
	return mutexTypeName(tt)
}

// mutexTypeName matches the named types sync.Mutex, sync.RWMutex and
// their clrt replacements exactly (a pointer to any returns "").
func mutexTypeName(t types.Type) string {
	if _, isPtr := t.(*types.Pointer); isPtr {
		return ""
	}
	switch s := t.String(); s {
	case "sync.Mutex", "sync.RWMutex":
		return s
	case "critlock/clrt.Mutex", "critlock/clrt.RWMutex", "critlock/clrt.WaitGroup":
		return "clrt." + s[strings.LastIndexByte(s, '.')+1:]
	}
	return ""
}

// exprText renders a short expression for messages.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.IndexExpr:
		return exprText(x.X) + "[…]"
	}
	return "expression"
}
