// Package lint is clalint's engine: a dependency-free static
// analyzer (stdlib go/ast, go/parser, go/token, go/types only — no
// golang.org/x/tools) that finds lock-usage hazards in Go source
// written against either the internal/harness Proc API
// (p.Lock(m)/p.Unlock(m), one-argument calls) or plain
// sync.Mutex/sync.RWMutex (m.Lock(), zero-argument calls).
//
// Four passes run over every linted package:
//
//  1. a per-function control-flow graph with a held-lock-set dataflow
//     (missing-unlock-on-path, double lock, RLock/RUnlock pairing),
//  2. a whole-program static lock-order graph with SCC cycle
//     detection (potential deadlock inversions, both acquisition
//     stacks reported),
//  3. a blocking-while-holding pass (channel send/recv, select,
//     BarrierWait, time.Sleep, condition Wait inside a held region;
//     Wait-not-in-a-loop; copied mutex values), and
//  4. a static critical-section weight estimate (statements + calls
//     executed while each acquisition site's lock is held).
//
// A finding at a source line is suppressed by a justified directive
// on that line or the line above:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory; an ignore without one does not suppress.
// Check "all" matches every check.
//
// CrossReference joins findings with a dynamic analysis report
// (report.Export JSON from cla -jsonreport or clasrv): static lock
// sites resolve to dynamic lock names through NewMutex("name") call
// tracking, each finding is annotated with the lock's CP Time % and
// contention probability on the critical path, and findings re-rank
// by dynamic criticality.
package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Check identifiers, usable in //lint:ignore directives.
const (
	CheckDoubleLock    = "doublelock"    // lock acquired while already held
	CheckMissingUnlock = "missingunlock" // held lock not released on some path
	CheckRWPair        = "rwpair"        // Unlock/RUnlock mode mismatch
	CheckLockOrder     = "lockorder"     // lock-order cycle (deadlock inversion)
	CheckBlockHeld     = "blockheld"     // blocking operation inside a held region
	CheckWaitLoop      = "waitloop"      // condition Wait not guarded by a loop
	CheckCopyLock      = "copylock"      // sync mutex copied by value
	CheckHotLock       = "hotlock"       // critical lock with static hazards (cross-ref)

	// Dynamic checks, emitted by CrossReferenceHazards from a trace's
	// hazard report (clalint -dynamic) rather than from source.
	CheckDynDeadlock = "dyndeadlock" // feasible deadlock cycle observed in a trace
	CheckLostSignal  = "lostsignal"  // wakeup/send with provably no consumer
	CheckDynGuard    = "dynguard"    // object guarded by inconsistent lock sets
)

// Severity buckets findings for display; every check has a fixed one.
type Severity string

const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
)

func severityOf(check string) Severity {
	switch check {
	case CheckBlockHeld, CheckWaitLoop, CheckHotLock, CheckDynGuard:
		return SevWarn
	}
	return SevError
}

// Finding is one reported hazard.
type Finding struct {
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	// File:Line:Col anchor the finding; File is slash-separated and
	// relative to the linting root when possible.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Lock is the canonical static lock key ("s.mu", "Type.field"),
	// DynName the dynamic lock name when a NewMutex("name") call
	// resolved it — the join key against the analysis report.
	Lock    string `json:"lock,omitempty"`
	DynName string `json:"dyn_name,omitempty"`
	// CycleDyn lists every dynamically named lock of a lock-order
	// cycle finding; CrossReference joins on the hottest of them.
	CycleDyn []string `json:"cycle_locks,omitempty"`
	Message  string   `json:"message"`
	// Weight is the static critical-section weight of the acquisition
	// site the finding belongs to (0 when not applicable).
	Weight int `json:"weight,omitempty"`

	// Dynamic annotations, populated by CrossReference.
	Matched      bool    `json:"matched,omitempty"`
	Critical     bool    `json:"critical,omitempty"`
	CPTimePct    float64 `json:"cp_time_pct,omitempty"`
	ContProbOnCP float64 `json:"cont_prob_on_cp,omitempty"`
}

// Pos renders the finding anchor.
func (f *Finding) Pos() string { return fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col) }

// String renders the human-readable single-line form.
func (f *Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s [%s] %s", f.Pos(), f.Severity, f.Check, f.Message)
	if f.Matched {
		fmt.Fprintf(&b, " {CP %.1f%%, cont %.1f%%", f.CPTimePct, f.ContProbOnCP)
		if f.Critical {
			b.WriteString(", critical")
		}
		b.WriteString("}")
	}
	return b.String()
}

// Site is one static lock acquisition site with its weight estimate.
type Site struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Func    string `json:"func"`
	Lock    string `json:"lock"`
	DynName string `json:"dyn_name,omitempty"`
	// Shared marks reader (RLock) acquisitions.
	Shared bool `json:"shared,omitempty"`
	// Try marks conditional (TryLock) acquisitions.
	Try bool `json:"try,omitempty"`
	// Weight estimates the critical-section size: statements plus
	// calls reachable while the lock is held.
	Weight int `json:"weight"`
}

// Edge is one lock-order graph edge: To was acquired while From was
// held. FromPos/ToPos are the two acquisition stacks.
type Edge struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Func    string `json:"func"`
	FromPos string `json:"from_pos"`
	ToPos   string `json:"to_pos"`
	// Via names the callee chain when the inner acquisition happens
	// in a called function rather than inline.
	Via string `json:"via,omitempty"`
}

// Cycle is a strongly connected component of the lock-order graph.
type Cycle struct {
	Locks []string `json:"locks"`
	Edges []Edge   `json:"edges"`
}

// Result is a full linter run.
type Result struct {
	Findings []Finding `json:"findings"`
	Sites    []Site    `json:"sites"`
	Edges    []Edge    `json:"lock_order_edges,omitempty"`
	Cycles   []Cycle   `json:"cycles,omitempty"`
	// Suppressed counts findings silenced by lint:ignore directives.
	Suppressed int `json:"suppressed,omitempty"`
	Packages   int `json:"packages"`
	Files      int `json:"files"`
	Funcs      int `json:"funcs"`
}

// Options configure a run.
type Options struct {
	// Dir is the base directory patterns resolve against ("." when
	// empty).
	Dir string
	// Patterns are file paths, directories, or "dir/..." recursive
	// patterns (the go tool's testdata/vendor/_*/.* pruning applies
	// below, but never to, the pattern root).
	Patterns []string
	// IncludeTests lints _test.go files too (off by default: tests
	// routinely misuse locks on purpose).
	IncludeTests bool
	// StdlibTypes type-checks against stdlib source (go/importer
	// "source" mode) so sync.Mutex values, *sync.Cond receivers and
	// channel types resolve. Disable for hermetic runs (fuzzing).
	StdlibTypes bool
	// NoCallGraph disables cross-function lock-order edge
	// propagation.
	NoCallGraph bool
}

// Run lints the packages matched by opts.
func Run(opts Options) (*Result, error) {
	pkgs, err := load(opts)
	if err != nil {
		return nil, err
	}
	return analyze(pkgs, opts), nil
}

// LintSource lints a single in-memory file (no filesystem access, no
// stdlib type information). It is the fuzzing entry point and must
// return an error — never panic — on arbitrary input.
func LintSource(filename string, src []byte) (*Result, error) {
	pkg, err := loadSource(filename, src)
	if err != nil {
		return nil, err
	}
	return analyze([]*pkgInfo{pkg}, Options{}), nil
}

// analyze runs every pass over the loaded packages and assembles the
// sorted, suppression-filtered result.
func analyze(pkgs []*pkgInfo, opts Options) *Result {
	res := &Result{Packages: len(pkgs)}
	var fns []*function
	for _, p := range pkgs {
		res.Files += len(p.files)
		p.prepass()
		fns = append(fns, p.functions()...)
	}
	res.Funcs = len(fns)

	var findings []Finding
	var edges []Edge
	for _, fn := range fns {
		fn.buildCFG()
		ff, ee := fn.heldSetPass()
		findings = append(findings, ff...)
		edges = append(edges, ee...)
		findings = append(findings, fn.blockingExtras()...)
	}
	for _, p := range pkgs {
		findings = append(findings, p.copyLockPass()...)
	}
	if !opts.NoCallGraph {
		edges = append(edges, callGraphEdges(fns)...)
	}
	edges = dedupeEdges(edges)
	cycles, cycleFindings := lockOrderCycles(edges)
	findings = append(findings, cycleFindings...)

	res.Edges = edges
	res.Cycles = cycles
	for _, fn := range fns {
		for _, s := range fn.sites {
			res.Sites = append(res.Sites, Site{
				File: s.pos.Filename, Line: s.pos.Line, Col: s.pos.Column,
				Func: fn.name, Lock: s.key, DynName: s.dyn,
				Shared: s.shared, Try: s.try, Weight: s.weight,
			})
		}
	}

	// Suppression: a justified //lint:ignore on the finding line or
	// the line above.
	sup := newSuppressions(pkgs)
	kept := findings[:0]
	for _, f := range findings {
		if sup.matches(f.File, f.Line, f.Check) {
			res.Suppressed++
			continue
		}
		kept = append(kept, f)
	}
	res.Findings = kept

	SortStatic(res.Findings)
	sort.Slice(res.Sites, func(i, j int) bool {
		a, b := res.Sites[i], res.Sites[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return res
}

// SortStatic orders findings by source position (the default order;
// CrossReference re-ranks by dynamic criticality).
func SortStatic(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}

// suppressions indexes lint:ignore directives by file and line.
type suppressions struct {
	// byLine maps file -> line -> set of suppressed check names.
	byLine map[string]map[int][]string
}

func newSuppressions(pkgs []*pkgInfo) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]string{}}
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, cg := range f.ast.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, "lint:ignore") {
						continue
					}
					rest := strings.TrimPrefix(text, "lint:ignore")
					fields := strings.Fields(rest)
					// A check name AND a justification are both
					// mandatory; a bare directive suppresses nothing.
					if len(fields) < 2 {
						continue
					}
					pos := p.fset.Position(c.Pos())
					file := f.path
					m := s.byLine[file]
					if m == nil {
						m = map[int][]string{}
						s.byLine[file] = m
					}
					m[pos.Line] = append(m[pos.Line], fields[0])
				}
			}
		}
	}
	return s
}

// matches reports whether check is suppressed at file:line (directive
// on the same line or the one above).
func (s *suppressions) matches(file string, line int, check string) bool {
	m := s.byLine[file]
	if m == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		for _, c := range m[l] {
			if c == check || c == "all" {
				return true
			}
		}
	}
	return false
}
