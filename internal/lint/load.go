package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// fileInfo is one parsed source file.
type fileInfo struct {
	// path is the display path (slash-separated, relative to the
	// linting root when possible).
	path string
	ast  *ast.File
	// syncName / timeName / clrtName are the local import names of
	// "sync", "time" and "critlock/clrt" in this file ("" when not
	// imported). clrtName gates the traced-runtime API classification:
	// instrumented code (clainstr output) uses clrt.Mutex, clrt.Chan,
	// clrt.WaitGroup, clrt.Select in place of the sync/chan forms.
	syncName string
	timeName string
	clrtName string
}

// pkgInfo groups the files of one directory-package.
type pkgInfo struct {
	name  string
	dir   string // display dir, used to qualify global lock keys
	fset  *token.FileSet
	files []*fileInfo
	// info carries best-effort type information; lookups must
	// tolerate missing entries (imports outside stdlib resolve to
	// empty stubs).
	info *types.Info
	// dynNames maps canonical lock keys to dynamic lock names learned
	// from NewMutex("name") calls.
	dynNames map[string]string
	// condMutex maps canonical cond keys to the canonical key of the
	// mutex they guard, learned from sync.NewCond(&mu) and harness
	// p.Wait(c, m) pairings.
	condMutex map[string]string
	// tpkg is the (partial) checked package object; objects in info
	// with Pkg() == tpkg are declared in this package.
	tpkg *types.Package
}

// load expands patterns, parses every matched file and groups them
// into packages.
func load(opts Options) ([]*pkgInfo, error) {
	base := opts.Dir
	if base == "" {
		base = "."
	}
	dirFiles := map[string][]string{}
	for _, pat := range opts.Patterns {
		if err := expandPattern(base, pat, opts.IncludeTests, dirFiles); err != nil {
			return nil, err
		}
	}
	var dirs []string
	for d := range dirFiles {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	shared := newStubImporter(opts.StdlibTypes)
	var pkgs []*pkgInfo
	for _, dir := range dirs {
		files := dirFiles[dir]
		sort.Strings(files)
		byName := map[string]*pkgInfo{}
		var order []string
		fset := token.NewFileSet()
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil || f.Name == nil {
				// Unparseable files are skipped, not fatal: a linter
				// must degrade gracefully over hostile input.
				continue
			}
			name := f.Name.Name
			p := byName[name]
			if p == nil {
				p = &pkgInfo{name: name, dir: displayPath(base, dir), fset: fset}
				byName[name] = p
				order = append(order, name)
			}
			p.files = append(p.files, &fileInfo{path: displayPath(base, path), ast: f})
		}
		for _, name := range order {
			p := byName[name]
			p.typeCheck(shared)
			pkgs = append(pkgs, p)
		}
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no Go files matched %v", opts.Patterns)
	}
	return pkgs, nil
}

// loadSource wraps one in-memory file as a package (fuzzing entry).
func loadSource(filename string, src []byte) (*pkgInfo, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	if f.Name == nil {
		return nil, fmt.Errorf("%s: no package clause", filename)
	}
	p := &pkgInfo{name: f.Name.Name, dir: ".", fset: fset}
	p.files = []*fileInfo{{path: filename, ast: f}}
	p.typeCheck(newStubImporter(false))
	return p, nil
}

// expandPattern resolves one pattern into dir -> files. Patterns are
// a file path, a directory, or "dir/..." which walks recursively,
// pruning testdata, vendor, "_*" and ".*" directories strictly below
// the root (so `clalint ./internal/lint/testdata/...` does lint the
// corpus while `clalint ./...` skips it).
func expandPattern(base, pat string, includeTests bool, out map[string][]string) error {
	recursive := false
	if strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(pat, "/...")
	} else if pat == "..." {
		recursive = true
		pat = "."
	}
	root := pat
	if !filepath.IsAbs(root) {
		root = filepath.Join(base, root)
	}
	st, err := os.Stat(root)
	if err != nil {
		return fmt.Errorf("pattern %q: %w", pat, err)
	}
	addFile := func(path string) {
		if !strings.HasSuffix(path, ".go") {
			return
		}
		if !includeTests && strings.HasSuffix(path, "_test.go") {
			return
		}
		dir := filepath.Dir(path)
		out[dir] = append(out[dir], path)
	}
	if !st.IsDir() {
		if !strings.HasSuffix(root, ".go") {
			return fmt.Errorf("pattern %q: not a directory or .go file", pat)
		}
		out[filepath.Dir(root)] = append(out[filepath.Dir(root)], root)
		return nil
	}
	if !recursive {
		ents, err := os.ReadDir(root)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() {
				addFile(filepath.Join(root, e.Name()))
			}
		}
		return nil
	}
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil
			}
			name := d.Name()
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		addFile(path)
		return nil
	})
}

// displayPath renders path relative to base with forward slashes.
func displayPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// typeCheck runs go/types in maximum-tolerance mode: every error is
// collected and discarded, unresolvable imports become empty stub
// packages, and the resulting (partial) types.Info is only ever used
// as a hint.
func (p *pkgInfo) typeCheck(imp types.Importer) {
	p.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:         imp,
		Error:            func(error) {}, // best effort: never fail
		IgnoreFuncBodies: false,
		FakeImportC:      true,
	}
	var files []*ast.File
	for _, f := range p.files {
		files = append(files, f.ast)
		f.syncName = importName(f.ast, "sync")
		f.timeName = importName(f.ast, "time")
		f.clrtName = importName(f.ast, "critlock/clrt")
	}
	// Check can in principle panic on pathological trees; a linter
	// must never crash on its input, so treat type info as optional.
	defer func() { _ = recover() }()
	p.tpkg, _ = conf.Check(p.name, p.fset, files, p.info)
}

// importName returns the local name under which file imports path, or
// "" when it does not.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if imp.Path == nil || strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// stubImporter resolves stdlib packages from source when enabled and
// hands every other import an empty stub so type-checking proceeds.
type stubImporter struct {
	std   types.Importer
	stubs map[string]*types.Package
}

func newStubImporter(stdlib bool) *stubImporter {
	si := &stubImporter{stubs: map[string]*types.Package{}}
	if stdlib {
		si.std = importer.ForCompiler(token.NewFileSet(), "source", nil)
	}
	return si
}

func (si *stubImporter) Import(path string) (pkg *types.Package, err error) {
	if si.std != nil && isStdlibPath(path) {
		// The source importer can error or panic on odd GOROOTs;
		// fall back to a stub rather than aborting the lint.
		func() {
			defer func() { _ = recover() }()
			pkg, err = si.std.Import(path)
		}()
		if pkg != nil && err == nil {
			return pkg, nil
		}
	}
	if p, ok := si.stubs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	si.stubs[path] = p
	return p, nil
}

// isStdlibPath guesses: stdlib import paths have no dot in their
// first element and are not module-internal ("critlock/...", any
// path with a domain).
func isStdlibPath(path string) bool {
	first := path
	if i := strings.Index(path, "/"); i >= 0 {
		first = path[:i]
	}
	if strings.Contains(first, ".") {
		return false
	}
	// Only resolve the packages the passes actually consult; pulling
	// in arbitrary stdlib source is wasted work.
	switch first {
	case "sync", "time", "os", "context", "runtime":
		return true
	}
	return false
}
