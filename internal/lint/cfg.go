package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// cfgNode is one statement-granularity node of a function CFG.
// Compound statements contribute a node per evaluated part (an if's
// init+cond, a for's cond, a select header, …), never their bodies.
type cfgNode struct {
	id  int
	ops []op
	// deferred carries unlock ops registered by a defer at this node;
	// they take effect at function exits.
	deferred []op
	// weight is the node's static cost: one statement plus one per
	// contained call.
	weight int
	succs  []cfgEdge
	// selectComm suppresses channel-op blocking findings for comm
	// clauses (the enclosing select was already checked).
	selectComm bool
	pos        token.Position
}

// cfgEdge optionally carries a conditional TryLock acquisition taken
// only on this branch (`if m.TryLock() { … }`).
type cfgEdge struct {
	to     *cfgNode
	tryAcq *op
}

// cfgGraph is a function CFG with one normal exit; panic-like
// terminators flow to panicExit, which the missing-unlock check
// deliberately ignores (unwinding paths hold locks by design in
// invariant-violation handlers).
type cfgGraph struct {
	entry, exit, panicExit *cfgNode
	nodes                  []*cfgNode
}

type labelInfo struct {
	anchor *cfgNode
	brk    *cfgNode
	cont   *cfgNode
}

type cfgBuilder struct {
	fn     *function
	g      *cfgGraph
	labels map[string]*labelInfo
	gotos  []struct {
		from  *cfgNode
		label string
	}
}

// buildCFG constructs fn.cfg.
func (fn *function) buildCFG() {
	b := &cfgBuilder{fn: fn, g: &cfgGraph{}, labels: map[string]*labelInfo{}}
	b.g.entry = b.newNode(nil)
	b.g.exit = b.newNode(nil)
	b.g.panicExit = b.newNode(nil)
	cur := b.g.entry
	cur = b.stmts(fn.body.List, cur, "", nil, nil)
	b.link(cur, b.g.exit, nil)
	for _, g := range b.gotos {
		if li := b.labels[g.label]; li != nil && li.anchor != nil {
			b.link(g.from, li.anchor, nil)
		}
	}
	fn.cfg = b.g
}

func (b *cfgBuilder) newNode(stmtPart ast.Node) *cfgNode {
	n := &cfgNode{id: len(b.g.nodes), weight: 1}
	if stmtPart != nil {
		b.fn.classify(stmtPart, &n.ops)
		n.pos = b.fn.pos(stmtPart.Pos())
		for _, o := range n.ops {
			if o.kind == opCall {
				n.weight++
			}
		}
	}
	b.g.nodes = append(b.g.nodes, n)
	return n
}

// link adds an edge; nil from means the predecessor path was
// unreachable (after return/break/…).
func (b *cfgBuilder) link(from, to *cfgNode, tryAcq *op) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, cfgEdge{to: to, tryAcq: tryAcq})
}

// stmts builds a statement list; brk/cont are the innermost loop (or
// switch, for brk) targets. Returns the fallthrough-out node.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgNode, label string, brk, cont *cfgNode) *cfgNode {
	for i, s := range list {
		// A fallthrough at the end of a switch clause is handled by
		// the switch builder, which looks at the clause's last stmt.
		_ = i
		cur = b.stmt(s, cur, label, brk, cont)
		label = ""
	}
	return cur
}

// stmt builds one statement from cur and returns the new cur.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgNode, label string, brk, cont *cfgNode) *cfgNode {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(st.List, cur, "", brk, cont)

	case *ast.LabeledStmt:
		anchor := b.newNode(nil)
		anchor.pos = b.fn.pos(st.Pos())
		b.link(cur, anchor, nil)
		after := b.newNode(nil)
		li := &labelInfo{anchor: anchor, brk: after}
		b.labels[st.Label.Name] = li
		out := b.stmt(st.Stmt, anchor, st.Label.Name, brk, cont)
		b.link(out, after, nil)
		return after

	case *ast.ReturnStmt:
		n := b.newNode(st)
		b.link(cur, n, nil)
		b.link(n, b.g.exit, nil)
		return nil

	case *ast.BranchStmt:
		n := b.newNode(nil)
		n.pos = b.fn.pos(st.Pos())
		b.link(cur, n, nil)
		switch st.Tok {
		case token.BREAK:
			t := brk
			if st.Label != nil {
				if li := b.labels[st.Label.Name]; li != nil {
					t = li.brk
				}
			}
			b.link(n, t, nil)
		case token.CONTINUE:
			t := cont
			if st.Label != nil {
				if li := b.labels[st.Label.Name]; li != nil {
					t = li.cont
				}
			}
			b.link(n, t, nil)
		case token.GOTO:
			if st.Label != nil {
				b.gotos = append(b.gotos, struct {
					from  *cfgNode
					label string
				}{n, st.Label.Name})
			}
		case token.FALLTHROUGH:
			// Wired by the switch builder.
		}
		return nil

	case *ast.IfStmt:
		head := b.newNode(nil)
		head.pos = b.fn.pos(st.Pos())
		if st.Init != nil {
			b.fn.classify(st.Init, &head.ops)
		}
		var thenAcq, elseAcq *op
		if st.Cond != nil {
			cond, negated := unwrapNot(st.Cond)
			if acq := b.tryLockOp(cond, st.Init); acq != nil {
				if negated {
					elseAcq = acq
				} else {
					thenAcq = acq
				}
			} else {
				b.fn.classify(st.Cond, &head.ops)
			}
		}
		head.weight += countCalls(head.ops)
		b.link(cur, head, nil)
		after := b.newNode(nil)
		thenEntry := b.newNode(nil)
		b.link(head, thenEntry, thenAcq)
		out := b.stmts(st.Body.List, thenEntry, "", brk, cont)
		b.link(out, after, nil)
		if st.Else != nil {
			elseEntry := b.newNode(nil)
			b.link(head, elseEntry, elseAcq)
			out := b.stmt(st.Else, elseEntry, "", brk, cont)
			b.link(out, after, nil)
		} else {
			elseEntry := b.newNode(nil)
			b.link(head, elseEntry, elseAcq)
			b.link(elseEntry, after, nil)
		}
		return after

	case *ast.ForStmt:
		if st.Init != nil {
			n := b.newNode(st.Init)
			b.link(cur, n, nil)
			cur = n
		}
		head := b.newNode(nil)
		head.pos = b.fn.pos(st.Pos())
		after := b.newNode(nil)
		post := b.newNode(st.Post) // empty when st.Post == nil
		var bodyAcq, exitAcq *op
		if st.Cond != nil {
			cond, negated := unwrapNot(st.Cond)
			if acq := b.tryLockOp(cond, nil); acq != nil {
				// `for !m.TryLock() { … }` spins until acquisition:
				// the loop-exit edge holds the lock.
				if negated {
					exitAcq = acq
				} else {
					bodyAcq = acq
				}
			} else {
				b.fn.classify(st.Cond, &head.ops)
			}
		}
		head.weight += countCalls(head.ops)
		b.link(cur, head, nil)
		if label != "" {
			b.labels[label].cont = post
		}
		bodyEntry := b.newNode(nil)
		b.link(head, bodyEntry, bodyAcq)
		out := b.stmts(st.Body.List, bodyEntry, "", after, post)
		b.link(out, post, nil)
		b.link(post, head, nil)
		if st.Cond != nil {
			b.link(head, after, exitAcq)
		}
		return after

	case *ast.RangeStmt:
		head := b.newNode(nil)
		head.pos = b.fn.pos(st.Pos())
		b.fn.classify(st.X, &head.ops)
		if b.isChanType(st.X) {
			head.ops = append(head.ops, op{kind: opChanRecv, pos: b.fn.pos(st.Pos()), expr: st})
		}
		head.weight += countCalls(head.ops)
		b.link(cur, head, nil)
		after := b.newNode(nil)
		if label != "" {
			b.labels[label].cont = head
		}
		out := b.stmts(st.Body.List, head, "", after, head)
		b.link(out, head, nil)
		b.link(head, after, nil)
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init, tag ast.Node
		var body *ast.BlockStmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			init, tag, body = sw.Init, sw.Tag, sw.Body
		} else {
			ts := st.(*ast.TypeSwitchStmt)
			init, tag, body = ts.Init, ts.Assign, ts.Body
		}
		head := b.newNode(nil)
		head.pos = b.fn.pos(st.Pos())
		if init != nil {
			b.fn.classify(init, &head.ops)
		}
		if tag != nil {
			b.fn.classify(tag, &head.ops)
		}
		head.weight += countCalls(head.ops)
		b.link(cur, head, nil)
		after := b.newNode(nil)
		if label != "" {
			b.labels[label].brk = after
		}
		var entries []*cfgNode
		var clauses []*ast.CaseClause
		hasDefault := false
		for _, cs := range body.List {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			clauses = append(clauses, cc)
			entry := b.newNode(nil)
			entry.pos = b.fn.pos(cc.Pos())
			for _, e := range cc.List {
				b.fn.classify(e, &entry.ops)
			}
			if cc.List == nil {
				hasDefault = true
			}
			entries = append(entries, entry)
			b.link(head, entry, nil)
		}
		for i, cc := range clauses {
			body := cc.Body
			ft := false
			if n := len(body); n > 0 {
				if bs, ok := body[n-1].(*ast.BranchStmt); ok && bs.Tok == token.FALLTHROUGH {
					ft = true
					body = body[:n-1]
				}
			}
			out := b.stmts(body, entries[i], "", after, cont)
			if ft && i+1 < len(entries) {
				b.link(out, entries[i+1], nil)
			} else {
				b.link(out, after, nil)
			}
		}
		if !hasDefault {
			b.link(head, after, nil)
		}
		return after

	case *ast.SelectStmt:
		head := b.newNode(nil)
		head.pos = b.fn.pos(st.Pos())
		hasDefault := false
		for _, cs := range st.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			head.ops = append(head.ops, op{kind: opSelect, pos: head.pos, expr: st})
		}
		b.link(cur, head, nil)
		after := b.newNode(nil)
		if label != "" {
			b.labels[label].brk = after
		}
		for _, cs := range st.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			entry := b.newNode(cc.Comm)
			entry.selectComm = true
			entry.pos = b.fn.pos(cc.Pos())
			b.link(head, entry, nil)
			out := b.stmts(cc.Body, entry, "", after, cont)
			b.link(out, after, nil)
		}
		if len(st.Body.List) == 0 {
			// Empty select blocks forever; treat as terminator.
			b.link(head, b.g.panicExit, nil)
		}
		return after

	case *ast.DeferStmt:
		n := b.newNode(nil)
		n.pos = b.fn.pos(st.Pos())
		for _, a := range st.Call.Args {
			b.fn.classify(a, &n.ops)
		}
		n.deferred = deferredUnlocks(b.fn, st.Call)
		b.link(cur, n, nil)
		return n

	case *ast.GoStmt:
		n := b.newNode(nil)
		n.pos = b.fn.pos(st.Pos())
		for _, a := range st.Call.Args {
			b.fn.classify(a, &n.ops)
		}
		b.link(cur, n, nil)
		return n

	default:
		n := b.newNode(s)
		b.link(cur, n, nil)
		if terminates(s) {
			b.link(n, b.g.panicExit, nil)
			return nil
		}
		return n
	}
}

// tryLockOp matches a TryLock call condition (`m.TryLock()` sync
// style, `p.TryLock(m)` harness style, or `ok := …; ok` via init) and
// returns its acquisition op.
func (b *cfgBuilder) tryLockOp(cond ast.Expr, init ast.Stmt) *op {
	call, ok := ast.Unparen(cond).(*ast.CallExpr)
	if !ok {
		// `if ok := m.TryLock(); ok { … }`
		id, isID := ast.Unparen(cond).(*ast.Ident)
		as, isAssign := init.(*ast.AssignStmt)
		if !isID || !isAssign || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		lhs, isLhsID := as.Lhs[0].(*ast.Ident)
		if !isLhsID || lhs.Name != id.Name {
			return nil
		}
		call, ok = ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
	}
	name := calleeName(call)
	if name != "TryLock" && name != "TryRLock" {
		return nil
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil
	}
	var lockExpr ast.Expr
	switch len(call.Args) {
	case 0:
		lockExpr = sel.X
	case 1:
		lockExpr = call.Args[0]
	default:
		return nil
	}
	key, recv := canonKey(lockExpr, b.fn.recvName, b.fn.recvType)
	if key == "" {
		return nil
	}
	return &op{kind: opTryLock, key: key, recv: recv, shared: name == "TryRLock",
		pos: b.fn.pos(call.Lparen), expr: call}
}

// unwrapNot strips a leading ! and reports whether it was present.
func unwrapNot(e ast.Expr) (ast.Expr, bool) {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.NOT {
		return u.X, true
	}
	return ast.Unparen(e), false
}

// deferredUnlocks extracts the unlock effects of a deferred call:
// `defer mu.Unlock()`, `defer p.Unlock(m)`, or unlocks inside a
// directly deferred func literal.
func deferredUnlocks(fn *function, call *ast.CallExpr) []op {
	var ops []op
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		var all []op
		fn.classify(lit.Body, &all)
		for _, o := range all {
			if o.kind == opUnlock || o.kind == opRUnlock {
				ops = append(ops, o)
			}
		}
		return ops
	}
	var all []op
	fn.classifyCall(call, &all)
	for _, o := range all {
		if o.kind == opUnlock || o.kind == opRUnlock {
			ops = append(ops, o)
		}
	}
	return ops
}

// isChanType reports whether e resolves to a channel (best effort).
func (b *cfgBuilder) isChanType(e ast.Expr) bool {
	t := b.fn.pkg.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// terminates reports whether s never falls through (panic, os.Exit,
// log.Fatal*, runtime.Goexit).
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && f.Sel.Name == "Exit":
				return true
			case x.Name == "log" && strings.HasPrefix(f.Sel.Name, "Fatal"):
				return true
			case x.Name == "runtime" && f.Sel.Name == "Goexit":
				return true
			}
		}
	}
	return false
}

func countCalls(ops []op) int {
	n := 0
	for _, o := range ops {
		if o.kind == opCall {
			n++
		}
	}
	return n
}
