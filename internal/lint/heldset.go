package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// hstate is the dataflow fact: the set of acquisition sites whose
// lock may be held, plus the set of deferred unlocks registered so
// far ("e:key" exclusive, "s:key" shared). Both are sorted.
type hstate struct {
	held []int
	def  []string
}

func (s *hstate) clone() *hstate {
	return &hstate{held: append([]int(nil), s.held...), def: append([]string(nil), s.def...)}
}

func (s *hstate) addSite(id int) {
	i := sort.SearchInts(s.held, id)
	if i < len(s.held) && s.held[i] == id {
		return
	}
	s.held = append(s.held, 0)
	copy(s.held[i+1:], s.held[i:])
	s.held[i] = id
}

func (s *hstate) removeSite(id int) {
	i := sort.SearchInts(s.held, id)
	if i < len(s.held) && s.held[i] == id {
		s.held = append(s.held[:i], s.held[i+1:]...)
	}
}

func (s *hstate) addDef(d string) {
	i := sort.SearchStrings(s.def, d)
	if i < len(s.def) && s.def[i] == d {
		return
	}
	s.def = append(s.def, "")
	copy(s.def[i+1:], s.def[i:])
	s.def[i] = d
}

// union merges o into s and reports whether s changed.
func (s *hstate) union(o *hstate) bool {
	changed := false
	for _, id := range o.held {
		if i := sort.SearchInts(s.held, id); i >= len(s.held) || s.held[i] != id {
			s.addSite(id)
			changed = true
		}
	}
	for _, d := range o.def {
		if i := sort.SearchStrings(s.def, d); i >= len(s.def) || s.def[i] != d {
			s.addDef(d)
			changed = true
		}
	}
	return changed
}

// callHolding records a call made while locks were held (input to the
// cross-function lock-order pass).
type callHolding struct {
	callee string
	held   []*site
	pos    token.Position
}

// passState carries the per-function dataflow artifacts.
type passState struct {
	fn *function
	// siteFor maps acquisition op pointers to their site.
	siteFor map[*op]*site
	in      []*hstate // by node id; nil = unreachable
	calls   []callHolding
	// acquires maps global lock keys this function acquires directly
	// to a representative site (for call-graph propagation).
	acquires map[string]*site
}

// heldSetPass runs the held-lock-set dataflow: fixpoint first, then a
// deterministic reporting sweep. It returns findings and the
// intra-function lock-order edges.
func (fn *function) heldSetPass() ([]Finding, []Edge) {
	ps := &passState{fn: fn, siteFor: map[*op]*site{}, acquires: map[string]*site{}}
	g := fn.cfg

	// Pre-create sites in node order so ids are deterministic.
	for _, n := range g.nodes {
		for i := range n.ops {
			o := &n.ops[i]
			if (o.kind == opLock || o.kind == opRLock) && o.key != "" {
				ps.newSite(o, o.kind == opRLock, false)
			}
		}
		for _, e := range n.succs {
			if e.tryAcq != nil {
				ps.newSite(e.tryAcq, e.tryAcq.shared, true)
			}
		}
	}

	// Fixpoint.
	ps.in = make([]*hstate, len(g.nodes))
	ps.in[g.entry.id] = &hstate{}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			in := ps.in[n.id]
			if in == nil {
				continue
			}
			out := ps.transfer(n, in, nil)
			for _, e := range n.succs {
				eff := out
				if e.tryAcq != nil {
					eff = out.clone()
					eff.addSite(ps.siteFor[e.tryAcq].id)
				}
				if ps.in[e.to.id] == nil {
					ps.in[e.to.id] = eff.clone()
					changed = true
				} else if ps.in[e.to.id].union(eff) {
					changed = true
				}
			}
		}
	}

	// Weights: a site's static critical-section weight is the summed
	// cost of every node entered while its lock may be held.
	for _, n := range g.nodes {
		if in := ps.in[n.id]; in != nil && n != g.exit && n != g.panicExit {
			for _, id := range in.held {
				fn.sites[id].weight += n.weight
			}
		}
	}

	// Reporting sweep.
	var findings []Finding
	var edges []Edge
	seen := map[string]bool{}
	emit := func(f Finding) {
		k := f.Check + "|" + f.Pos() + "|" + f.Message
		if !seen[k] {
			seen[k] = true
			findings = append(findings, f)
		}
	}
	for _, n := range g.nodes {
		if in := ps.in[n.id]; in != nil {
			rep := &reporter{ps: ps, emit: emit, edges: &edges}
			ps.transfer(n, in, rep)
		}
	}

	// Exit check: held sites without a matching deferred unlock are
	// missing-unlock findings; wrong-mode deferred unlocks are
	// pairing findings. panicExit is deliberately not checked.
	if exitIn := ps.in[g.exit.id]; exitIn != nil {
		for _, id := range exitIn.held {
			s := fn.sites[id]
			want, other := "e:"+s.key, "s:"+s.key
			if s.shared {
				want, other = other, want
			}
			if containsStr(exitIn.def, want) {
				continue
			}
			if containsStr(exitIn.def, other) {
				emit(ps.finding(CheckRWPair, s.pos, s,
					fmt.Sprintf("deferred unlock of %q uses the wrong mode for this %s acquisition", s.key, modeName(s.shared))))
				continue
			}
			emit(ps.finding(CheckMissingUnlock, s.pos, s,
				fmt.Sprintf("lock %q acquired here may not be released on every path to return", s.key)))
		}
	}

	for _, s := range fn.sites {
		if s.try {
			continue
		}
		gk := fn.globalKey(s.key, s.recv, s.dyn)
		if _, ok := ps.acquires[gk]; !ok {
			ps.acquires[gk] = s
		}
	}
	fn.callsHolding = ps.calls
	fn.directAcquires = ps.acquires
	return findings, edges
}

// reporter is non-nil only during the reporting sweep.
type reporter struct {
	ps    *passState
	emit  func(Finding)
	edges *[]Edge
}

// newSite registers an acquisition site for op.
func (ps *passState) newSite(o *op, shared, try bool) *site {
	if s, ok := ps.siteFor[o]; ok {
		return s
	}
	s := &site{
		id: len(ps.fn.sites), fn: ps.fn,
		key: o.key, recv: o.recv, dyn: ps.fn.pkg.dynNames[o.key],
		shared: shared, try: try, pos: o.pos,
	}
	ps.fn.sites = append(ps.fn.sites, s)
	ps.siteFor[o] = s
	return s
}

// heldWithKey returns held site ids whose key matches.
func (ps *passState) heldWithKey(st *hstate, key string) []*site {
	var out []*site
	for _, id := range st.held {
		if s := ps.fn.sites[id]; s.key == key {
			out = append(out, s)
		}
	}
	return out
}

func (ps *passState) finding(check string, pos token.Position, s *site, msg string) Finding {
	f := Finding{
		Check: check, Severity: severityOf(check),
		File: pos.Filename, Line: pos.Line, Col: pos.Column,
		Message: msg,
	}
	if s != nil {
		f.Lock = s.key
		f.DynName = s.dyn
		f.Weight = s.weight
	}
	return f
}

// transfer replays node n's effects over a copy of in. With rep set
// it also emits findings and lock-order edges (the reporting sweep).
func (ps *passState) transfer(n *cfgNode, in *hstate, rep *reporter) *hstate {
	st := in.clone()
	fn := ps.fn
	for i := range n.ops {
		o := &n.ops[i]
		switch o.kind {
		case opLock:
			if o.key == "" {
				break
			}
			held := ps.heldWithKey(st, o.key)
			if len(held) > 0 {
				if rep != nil {
					rep.emit(ps.finding(CheckDoubleLock, o.pos, held[0],
						fmt.Sprintf("lock %q acquired while already held (held since %s); this self-deadlocks", o.key, posString(held[0].pos))))
				}
				break
			}
			s := ps.siteFor[o]
			if rep != nil {
				ps.orderEdges(st, s, rep)
			}
			st.addSite(s.id)
		case opRLock:
			if o.key == "" {
				break
			}
			held := ps.heldWithKey(st, o.key)
			if len(held) > 0 {
				if rep != nil {
					kind := "recursive RLock of %q (held since %s) can deadlock with a queued writer"
					if !held[0].shared {
						kind = "RLock of %q while held exclusively (since %s); this self-deadlocks"
					}
					rep.emit(ps.finding(CheckDoubleLock, o.pos, held[0],
						fmt.Sprintf(kind, o.key, posString(held[0].pos))))
				}
				break
			}
			s := ps.siteFor[o]
			if rep != nil {
				ps.orderEdges(st, s, rep)
			}
			st.addSite(s.id)
		case opUnlock, opRUnlock:
			if o.key == "" {
				break
			}
			wantShared := o.kind == opRUnlock
			held := ps.heldWithKey(st, o.key)
			var match, wrong *site
			for _, s := range held {
				if s.shared == wantShared {
					match = s
				} else {
					wrong = s
				}
			}
			switch {
			case match != nil:
				st.removeSite(match.id)
			case wrong != nil:
				if rep != nil {
					msg := fmt.Sprintf("RUnlock of %q which is held exclusively (since %s); Unlock expected", o.key, posString(wrong.pos))
					if !wantShared {
						msg = fmt.Sprintf("Unlock of %q which is read-held (since %s); RUnlock expected", o.key, posString(wrong.pos))
					}
					rep.emit(ps.finding(CheckRWPair, o.pos, wrong, msg))
				}
				st.removeSite(wrong.id)
			}
			// Unlock of a lock this function never acquired is
			// silent: the caller may hold it (documented caveat).
		case opCall:
			if len(st.held) > 0 {
				if rep != nil && o.callee != "" {
					var held []*site
					for _, id := range st.held {
						held = append(held, fn.sites[id])
					}
					ps.calls = append(ps.calls, callHolding{callee: o.callee, held: held, pos: o.pos})
				}
			}
		default:
			if o.kind.blocking() && rep != nil {
				if n.selectComm && (o.kind == opChanSend || o.kind == opChanRecv) {
					break // the enclosing select was already checked
				}
				var names []string
				var first *site
				for _, id := range st.held {
					s := fn.sites[id]
					if o.assoc != "" && s.key == o.assoc {
						continue // the wait releases this mutex itself
					}
					names = append(names, fmt.Sprintf("%q (acquired at %s)", s.key, posString(s.pos)))
					if first == nil {
						first = s
					}
				}
				if len(names) > 0 {
					rep.emit(ps.finding(CheckBlockHeld, o.pos, first,
						fmt.Sprintf("%s while holding %s", o.kind.describe(), strings.Join(names, ", "))))
				}
			}
		}
	}
	for i := range n.deferred {
		d := &n.deferred[i]
		if d.key == "" {
			continue
		}
		if d.kind == opRUnlock {
			st.addDef("s:" + d.key)
		} else {
			st.addDef("e:" + d.key)
		}
	}
	return st
}

// orderEdges records lock-order edges from every currently held site
// to the new acquisition.
func (ps *passState) orderEdges(st *hstate, to *site, rep *reporter) {
	fn := ps.fn
	for _, id := range st.held {
		from := fn.sites[id]
		if from.key == to.key {
			continue
		}
		*rep.edges = append(*rep.edges, Edge{
			From:    fn.globalKey(from.key, from.recv, from.dyn),
			To:      fn.globalKey(to.key, to.recv, to.dyn),
			Func:    fn.name,
			FromPos: posString(from.pos),
			ToPos:   posString(to.pos),
		})
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

func modeName(shared bool) string {
	if shared {
		return "shared (RLock)"
	}
	return "exclusive (Lock)"
}

func containsStr(ss []string, s string) bool {
	i := sort.SearchStrings(ss, s)
	return i < len(ss) && ss[i] == s
}
