package lint

import (
	"fmt"
	"sort"
	"strings"

	"critlock/internal/report"
)

// CrossReference joins a static lint result with a dynamic analysis
// report (report.Export JSON, produced by `cla -jsonreport` or served
// by clasrv):
//
//   - every finding whose lock resolves to a dynamic lock name (via
//     NewMutex("name") tracking) is annotated with that lock's CP
//     Time % and contention probability on the critical path,
//   - findings re-rank by dynamic criticality (hottest lock first;
//     unmatched findings keep source order below the matched ones),
//   - each hot critical lock that carries at least one static hazard
//     gets a summary CheckHotLock finding — the static analyzer's
//     answer to "this TYPE-1 lock is hot: WHERE in the source is it
//     created and what is wrong there".
func CrossReference(res *Result, rep *report.Export) {
	type dyn struct {
		critical  bool
		cpTimePct float64
		contProb  float64
	}
	locks := map[string]dyn{}
	for _, l := range rep.Locks {
		locks[l.Name] = dyn{critical: l.Critical, cpTimePct: l.CPTimePct, contProb: l.ContProbOnCP}
	}

	// Static sites per dynamic name (for hot-lock summaries).
	sitesByDyn := map[string][]Site{}
	for _, s := range res.Sites {
		if s.DynName != "" {
			sitesByDyn[s.DynName] = append(sitesByDyn[s.DynName], s)
		}
	}

	hazards := map[string]int{} // dynamic name -> hazard finding count
	for i := range res.Findings {
		f := &res.Findings[i]
		// A lock-order cycle implicates every lock on it; join against
		// the hottest one the dynamic run knows about.
		for _, cand := range f.CycleDyn {
			d, ok := locks[cand]
			if !ok {
				continue
			}
			if cur, have := locks[f.DynName]; !have || d.cpTimePct > cur.cpTimePct {
				f.DynName = cand
			}
		}
		if f.DynName == "" {
			continue
		}
		d, ok := locks[f.DynName]
		if !ok {
			continue
		}
		f.Matched = true
		f.Critical = d.critical
		f.CPTimePct = d.cpTimePct
		f.ContProbOnCP = d.contProb
		hazards[f.DynName]++
	}

	// Hot critical locks with static hazards: one summary finding
	// each, anchored at the lock's first static acquisition site.
	var names []string
	for name := range hazards {
		if d := locks[name]; d.critical {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		d := locks[name]
		f := Finding{
			Check: CheckHotLock, Severity: SevWarn,
			Lock: name, DynName: name, Matched: true,
			Critical: true, CPTimePct: d.cpTimePct, ContProbOnCP: d.contProb,
			Message: fmt.Sprintf("critical lock %q (%.1f%% of the critical path, cont. prob %.1f%%) has %d static hazard finding(s): fixing them attacks the dominant bottleneck",
				name, d.cpTimePct, d.contProb, hazards[name]),
		}
		if sites := sitesByDyn[name]; len(sites) > 0 {
			f.File, f.Line, f.Col = sites[0].File, sites[0].Line, sites[0].Col
			f.Weight = sites[0].Weight
		}
		res.Findings = append(res.Findings, f)
	}

	SortByCriticality(res.Findings)
}

// SortByCriticality ranks matched findings by CP Time % (descending),
// then contention probability, with unmatched findings in source
// order below.
func SortByCriticality(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Matched != b.Matched {
			return a.Matched
		}
		if a.Matched {
			if a.CPTimePct != b.CPTimePct {
				return a.CPTimePct > b.CPTimePct
			}
			if a.ContProbOnCP != b.ContProbOnCP {
				return a.ContProbOnCP > b.ContProbOnCP
			}
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}

// CrossReferenceHazards merges a dynamic hazard report into the static
// result, then cross-references: every predicted hazard (feasible
// deadlock cycle, lost signal, guard inconsistency) becomes a finding
// in the same list as the static ones, each dynamic deadlock names the
// static lock-order cycle it corroborates (or is flagged as invisible
// to static analysis — cross-thread cycles are), and the merged view
// re-ranks by measured CP Time % exactly like CrossReference.
func CrossReferenceHazards(res *Result, rep *report.Export) {
	hz := rep.Hazards
	if hz == nil {
		CrossReference(res, rep)
		return
	}

	// Static lock-order cycles by their dynamic-name set, so a dynamic
	// cycle can say which static finding it confirms.
	staticCycles := map[string]bool{}
	for i := range res.Findings {
		f := &res.Findings[i]
		if f.Check == CheckLockOrder && len(f.CycleDyn) > 0 {
			staticCycles[cycleKey(f.CycleDyn)] = true
		}
	}
	// First static acquisition site per dynamic lock name, to anchor
	// dynamic findings in source when the lock is known statically.
	siteByDyn := map[string]Site{}
	for _, s := range res.Sites {
		if s.DynName == "" {
			continue
		}
		if _, ok := siteByDyn[s.DynName]; !ok {
			siteByDyn[s.DynName] = s
		}
	}
	anchor := func(f *Finding, dynNames []string) {
		for _, name := range dynNames {
			if s, ok := siteByDyn[name]; ok {
				f.File, f.Line, f.Col = s.File, s.Line, s.Col
				f.Weight = s.Weight
				return
			}
		}
	}

	for _, c := range hz.Cycles {
		var msg strings.Builder
		fmt.Fprintf(&msg, "feasible deadlock: dynamic lock-order cycle %s", strings.Join(c.Locks, " -> "))
		if c.CrossThread {
			msg.WriteString(" via a cross-thread critical section")
		}
		if len(c.Edges) > 0 {
			wit := c.Edges[0].Witness
			if c.Edges[0].CrossWitness != nil {
				wit = *c.Edges[0].CrossWitness
			}
			fmt.Fprintf(&msg, " (witness: %s obtained %q at t=%d", wit.ThreadName, c.Edges[0].To, wit.InnerT)
			if wit.CrossThread {
				fmt.Fprintf(&msg, " under %q held by %s, carried via %s", c.Edges[0].From, wit.OwnerName, wit.Via)
			}
			msg.WriteString(")")
		}
		if staticCycles[cycleKey(c.Locks)] {
			msg.WriteString("; corroborates the static lockorder cycle")
		} else if c.CrossThread {
			msg.WriteString("; invisible to per-thread static analysis")
		}
		f := Finding{
			Check: CheckDynDeadlock, Severity: severityOf(CheckDynDeadlock),
			Lock: strings.Join(c.Locks, ","), DynName: c.Locks[0], CycleDyn: c.Locks,
			Message: msg.String(),
		}
		anchor(&f, c.Locks)
		res.Findings = append(res.Findings, f)
	}
	for _, l := range hz.LostSignals {
		res.Findings = append(res.Findings, Finding{
			Check: CheckLostSignal, Severity: severityOf(CheckLostSignal),
			Lock: l.Object,
			Message: fmt.Sprintf("lost %s on %s: %s (by %s at t=%d)",
				l.Kind, l.Object, l.Detail, l.ThreadName, l.T),
		})
	}
	for _, g := range hz.GuardIssues {
		var guards []string
		for _, s := range g.Sites {
			if s.Mutex != "" {
				guards = append(guards, s.Mutex)
			}
		}
		f := Finding{
			Check: CheckDynGuard, Severity: severityOf(CheckDynGuard),
			Lock:    g.Object,
			Message: fmt.Sprintf("guard inconsistency on %s %s: %s", g.ObjKind, g.Object, g.Detail),
		}
		if len(guards) > 0 {
			f.DynName, f.CycleDyn = guards[0], guards
		}
		anchor(&f, guards)
		res.Findings = append(res.Findings, f)
	}

	CrossReference(res, rep)
}

// cycleKey canonicalizes a cycle's lock-name set for matching.
func cycleKey(locks []string) string {
	s := append([]string(nil), locks...)
	sort.Strings(s)
	return strings.Join(s, "\x00")
}

// WriteHuman renders the result in the human-readable one-line-per-
// finding form, followed by lock-order cycles and an optional weight
// table.
func WriteHuman(sb *strings.Builder, res *Result, weights bool) {
	for i := range res.Findings {
		sb.WriteString(res.Findings[i].String())
		sb.WriteByte('\n')
	}
	if weights {
		sb.WriteString(fmt.Sprintf("\n%d lock acquisition site(s):\n", len(res.Sites)))
		for _, s := range res.Sites {
			mode := "Lock"
			if s.Shared {
				mode = "RLock"
			}
			if s.Try {
				mode = "TryLock"
			}
			dyn := ""
			if s.DynName != "" {
				dyn = fmt.Sprintf(" dyn=%q", s.DynName)
			}
			sb.WriteString(fmt.Sprintf("  %s:%d:%d: %s %s(%s)%s weight=%d\n",
				s.File, s.Line, s.Col, s.Func, mode, s.Lock, dyn, s.Weight))
		}
	}
	if n := len(res.Findings); n == 0 {
		sb.WriteString(fmt.Sprintf("clalint: no findings in %d package(s), %d file(s), %d function(s)",
			res.Packages, res.Files, res.Funcs))
		if res.Suppressed > 0 {
			sb.WriteString(fmt.Sprintf(" (%d suppressed)", res.Suppressed))
		}
		sb.WriteByte('\n')
	}
}
