package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"critlock"
	"critlock/internal/lint"
	"critlock/internal/report"
)

// TestCrossReferenceEndToEnd drives the full static↔dynamic join: a
// simulated workload contends on locks named "A" and "B" (the same
// dynamic names the buggy corpus binds via NewMutex), the analysis
// exports the clasrv/cla JSON shape, and CrossReference must annotate
// the corpus's lock-order finding with the lock's CP Time %.
func TestCrossReferenceEndToEnd(t *testing.T) {
	sim := critlock.NewSimulator(critlock.SimConfig{Contexts: 4, Seed: 7})
	a := sim.NewMutex("A")
	b := sim.NewMutex("B")
	tr, _, err := sim.Run(func(p critlock.Proc) {
		var kids []critlock.Thread
		for i := 0; i < 3; i++ {
			kids = append(kids, p.Go("worker", func(q critlock.Proc) {
				for j := 0; j < 4; j++ {
					q.Lock(a)
					q.Compute(300)
					q.Unlock(a)
					q.Lock(b)
					q.Compute(40)
					q.Unlock(b)
					q.Compute(60)
				}
			}))
		}
		for _, k := range kids {
			p.Join(k)
		}
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	an, err := critlock.Analyze(critlock.TraceSource(tr))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	// Round-trip through the JSON file exactly as `clalint -report`
	// consumes it.
	path := filepath.Join(t.TempDir(), "analysis.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.WriteExport(f, report.BuildExport("test", "sim", false, an)); err != nil {
		t.Fatalf("WriteExport: %v", err)
	}
	f.Close()
	rep, err := lint.LoadReport(path)
	if err != nil {
		t.Fatalf("LoadReport: %v", err)
	}

	res, err := lint.Run(lint.Options{
		Dir:         ".",
		Patterns:    []string{"./testdata/src/buggy"},
		StdlibTypes: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	lint.CrossReference(res, rep)

	var matched *lint.Finding
	for i := range res.Findings {
		f := &res.Findings[i]
		if f.Check == lint.CheckLockOrder && f.Matched {
			matched = f
			break
		}
	}
	if matched == nil {
		t.Fatal("no lock-order finding matched a dynamic lock")
	}
	if matched.DynName != "A" && matched.DynName != "B" {
		t.Errorf("matched DynName = %q, want A or B", matched.DynName)
	}
	if matched.CPTimePct <= 0 {
		t.Errorf("matched CPTimePct = %v, want > 0", matched.CPTimePct)
	}

	// Both locks run critical in this workload, so the hazard-bearing
	// one must get a hot-lock summary.
	hot := false
	for _, f := range res.Findings {
		if f.Check == lint.CheckHotLock && f.DynName == matched.DynName {
			hot = true
			if !f.Critical {
				t.Errorf("hotlock finding for %s not marked critical", f.DynName)
			}
			if !strings.Contains(f.Message, "critical lock") {
				t.Errorf("hotlock message %q", f.Message)
			}
		}
	}
	if !hot {
		t.Errorf("no hotlock summary finding for critical lock %s", matched.DynName)
	}

	// Matched findings must rank above unmatched ones.
	seenUnmatched := false
	for _, f := range res.Findings {
		if !f.Matched {
			seenUnmatched = true
		} else if seenUnmatched {
			t.Error("matched finding ranked below an unmatched one")
			break
		}
	}
}
