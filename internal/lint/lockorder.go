package lint

import (
	"fmt"
	"sort"
	"strings"
)

// callGraphEdges propagates lock acquisitions through the static call
// graph: if f calls g while holding A and g (transitively) acquires
// B, the program may order A before B without any inline nesting.
// Function literals are excluded — they run on other goroutines or at
// defer time, where no ordering with the spawn site exists.
func callGraphEdges(fns []*function) []Edge {
	type summary struct {
		fn *function
		// acquires maps global lock key -> representative position.
		acquires map[string]*site
		callees  map[string]bool
	}
	sums := map[string]*summary{}
	for _, fn := range fns {
		if fn.parent != nil {
			continue
		}
		key := fn.pkg.dir + ":" + fn.name
		s := &summary{fn: fn, acquires: map[string]*site{}, callees: map[string]bool{}}
		for gk, st := range fn.directAcquires {
			s.acquires[gk] = st
		}
		for _, c := range fn.callsHolding {
			s.callees[c.callee] = true
		}
		// Calls made while holding nothing still propagate acquires
		// upward; collect them from the CFG ops.
		for _, n := range fn.cfg.nodes {
			for i := range n.ops {
				if o := &n.ops[i]; o.kind == opCall && o.callee != "" {
					s.callees[o.callee] = true
				}
			}
		}
		sums[key] = s
	}

	// Transitive-acquire fixpoint over the call graph.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for callee := range s.callees {
				cs, ok := sums[callee]
				if !ok {
					continue
				}
				for gk, st := range cs.acquires {
					if _, have := s.acquires[gk]; !have {
						s.acquires[gk] = st
						changed = true
					}
				}
			}
		}
	}

	var edges []Edge
	for _, fn := range fns {
		for _, call := range fn.callsHolding {
			cs, ok := sums[call.callee]
			if !ok {
				continue
			}
			calleeName := call.callee[strings.LastIndex(call.callee, ":")+1:]
			for gk, acq := range cs.acquires {
				for _, held := range call.held {
					if held.try {
						continue // TryLock never blocks: no deadlock edge
					}
					hk := fn.globalKey(held.key, held.recv, held.dyn)
					edges = append(edges, Edge{
						From: hk, To: gk, Func: fn.name,
						FromPos: posString(held.pos),
						ToPos:   posString(acq.pos),
						Via:     calleeName,
					})
				}
			}
		}
	}
	return edges
}

// dedupeEdges sorts and uniques edges by (From, To, ToPos, Via).
func dedupeEdges(edges []Edge) []Edge {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.ToPos != b.ToPos {
			return a.ToPos < b.ToPos
		}
		if a.FromPos != b.FromPos {
			return a.FromPos < b.FromPos
		}
		return a.Via < b.Via
	})
	out := edges[:0]
	var last Edge
	for i, e := range edges {
		if i > 0 && e.From == last.From && e.To == last.To && e.ToPos == last.ToPos && e.Via == last.Via {
			continue
		}
		out = append(out, e)
		last = e
	}
	return out
}

// lockOrderCycles finds strongly connected components of the
// lock-order graph (Tarjan) and reports each cycle — a potential
// deadlock inversion — with both acquisition stacks of every edge.
func lockOrderCycles(edges []Edge) ([]Cycle, []Finding) {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, e := range edges {
		nodes[e.From], nodes[e.To] = true, true
		adj[e.From] = append(adj[e.From], e.To)
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	// Iterative Tarjan (recursion depth is attacker-controlled under
	// fuzzing).
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	type frame struct {
		v  string
		ei int
	}
	for _, root := range order {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}

	var cycles []Cycle
	var findings []Finding
	for _, scc := range sccs {
		selfLoop := false
		if len(scc) == 1 {
			for _, to := range adj[scc[0]] {
				if to == scc[0] {
					selfLoop = true
				}
			}
			if !selfLoop {
				continue
			}
		}
		in := map[string]bool{}
		for _, n := range scc {
			in[n] = true
		}
		var cyc Cycle
		cyc.Locks = append(cyc.Locks, scc...)
		sort.Strings(cyc.Locks)
		for _, e := range edges {
			if in[e.From] && in[e.To] {
				cyc.Edges = append(cyc.Edges, e)
			}
		}
		if len(cyc.Edges) == 0 {
			continue
		}
		cycles = append(cycles, cyc)

		var parts []string
		for _, e := range cyc.Edges {
			p := fmt.Sprintf("%s then %s in %s at %s (%s held since %s)",
				displayLock(e.From), displayLock(e.To), e.Func, e.ToPos, displayLock(e.From), e.FromPos)
			if e.Via != "" {
				p += fmt.Sprintf(" via call to %s", e.Via)
			}
			parts = append(parts, p)
		}
		first := cyc.Edges[0]
		for _, e := range cyc.Edges[1:] {
			if e.ToPos < first.ToPos {
				first = e
			}
		}
		var disp []string
		for _, l := range cyc.Locks {
			disp = append(disp, displayLock(l))
		}
		f := Finding{
			Check: CheckLockOrder, Severity: SevError,
			Lock:    displayLock(first.To),
			Message: fmt.Sprintf("potential deadlock: lock-order cycle %s; %s", strings.Join(disp, " ↔ "), strings.Join(parts, "; ")),
		}
		if dyn := dynOnly(first.To); dyn != "" {
			f.DynName = dyn
		}
		for _, l := range cyc.Locks {
			if dyn := dynOnly(l); dyn != "" {
				f.CycleDyn = append(f.CycleDyn, dyn)
			}
		}
		f.File, f.Line, f.Col = splitPos(first.ToPos)
		findings = append(findings, f)
	}
	sort.Slice(cycles, func(i, j int) bool {
		return strings.Join(cycles[i].Locks, ",") < strings.Join(cycles[j].Locks, ",")
	})
	return cycles, findings
}

// displayLock strips the package/function qualifiers off a global
// lock key for messages.
func displayLock(gk string) string {
	if i := strings.LastIndex(gk, ":"); i >= 0 {
		return gk[i+1:]
	}
	return gk
}

// dynOnly returns gk when it is a bare dynamic lock name (global keys
// for static-only locks carry ":" qualifiers).
func dynOnly(gk string) string {
	if strings.Contains(gk, ":") {
		return ""
	}
	return gk
}

// splitPos parses "file:line:col" back apart (positions always render
// through posString).
func splitPos(p string) (string, int, int) {
	i := strings.LastIndex(p, ":")
	if i < 0 {
		return p, 0, 0
	}
	j := strings.LastIndex(p[:i], ":")
	if j < 0 {
		return p, 0, 0
	}
	var line, col int
	fmt.Sscanf(p[j+1:], "%d:%d", &line, &col)
	return p[:j], line, col
}
