package instr

import (
	"go/ast"
	"go/token"
	"go/types"

	"critlock/internal/lint"
)

// Channel instrumentation is gated on resolvability: the rewrite
// changes channel variables' types (chan T → clrt.Chan[T]), which is
// only sound when every flow between channels is visible to the
// best-effort type information. The classifier splits channel-typed
// expressions into
//
//   - instrumented: the type is spelled in the rewritten source, or
//     the value originates from a package-local construct (make, a
//     package-local function's result) — these get clrt types;
//   - raw: the value originates outside the target (time.After,
//     ctx.Done(), a field of an external struct) — these keep their
//     native chan type and their operations are left untouched;
//   - unknown: the classifier cannot tell.
//
// Any unknown operand on a guaranteed channel operation, any mixing of
// raw and instrumented values (assignment, select arms, call
// arguments into package-local functions), and any construct whose
// rewrite would change semantics (defined chan types, chan
// conversions or assertions) is a conflict: channel instrumentation
// is disabled for the whole target and every site is reported, so the
// produced trace is honest about what it does not see.

type lintPackage = lint.Package
type lintFile = lint.File

const (
	clUnknown = iota
	clRaw
	clInstr
	clNil
)

// chanClasses is the module-wide channel classification.
type chanClasses struct {
	obj map[types.Object]int
}

// classifyChannels builds the classification and decides the gate.
func (ins *instrumenter) classifyChannels(pkgs []*lintPackage) {
	ins.chanCls = &chanClasses{obj: map[types.Object]int{}}
	if ins.opts.NoChannels {
		return
	}
	cc := ins.chanCls
	for _, p := range pkgs {
		cc.markSpelled(p)
	}
	// Inference over `x := origin` chains; a few rounds reach fixpoint
	// on any realistic def-use depth.
	for range [3]int{} {
		for _, p := range pkgs {
			for _, f := range p.Files {
				cc.inferDefines(p, f)
			}
		}
	}
	ok := true
	for _, p := range pkgs {
		for _, f := range p.Files {
			if !cc.findConflicts(ins, p, f) {
				ok = false
			}
		}
	}
	ins.chansOn = ok
}

// markSpelled classifies every object declared with an explicit type
// that mentions a channel: its spelling will be rewritten, so the
// object is instrumented. Covers vars, params, results, struct
// fields.
func (cc *chanClasses) markSpelled(p *lintPackage) {
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ValueSpec:
				if v.Type != nil && astContainsChan(v.Type) {
					for _, name := range v.Names {
						if obj := p.Info.Defs[name]; obj != nil {
							cc.obj[obj] = clInstr
						}
					}
				}
			case *ast.Field:
				if v.Type != nil && astContainsChan(v.Type) {
					for _, name := range v.Names {
						if obj := p.Info.Defs[name]; obj != nil {
							cc.obj[obj] = clInstr
						}
					}
				}
			}
			return true
		})
	}
}

// inferDefines propagates classes through `x := expr` and
// `var x = expr` where the type is inferred from the initializer.
func (cc *chanClasses) inferDefines(p *lintPackage, f *lintFile) {
	mark := func(id ast.Expr, c int) {
		ident, ok := unparen(id).(*ast.Ident)
		if !ok || ident.Name == "_" {
			return
		}
		obj := p.Info.Defs[ident]
		if obj == nil {
			obj = p.Info.Uses[ident]
		}
		if obj == nil {
			return
		}
		if t := obj.Type(); t != nil && !typeContainsChan(t, 0) {
			return // not channel-ish: class is irrelevant
		}
		if _, have := cc.obj[obj]; !have && (c == clInstr || c == clRaw) {
			cc.obj[obj] = c
		}
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok != token.DEFINE {
				return true
			}
			if len(v.Rhs) == 1 && len(v.Lhs) > 1 {
				c := cc.class(p, f, v.Rhs[0])
				for _, lhs := range v.Lhs {
					mark(lhs, c)
				}
				return true
			}
			for i := range v.Lhs {
				if i < len(v.Rhs) {
					mark(v.Lhs[i], cc.class(p, f, v.Rhs[i]))
				}
			}
		case *ast.ValueSpec:
			if v.Type != nil {
				return true
			}
			if len(v.Values) == 1 && len(v.Names) > 1 {
				c := cc.class(p, f, v.Values[0])
				for _, name := range v.Names {
					mark(name, c)
				}
				return true
			}
			for i := range v.Names {
				if i < len(v.Values) {
					mark(v.Names[i], cc.class(p, f, v.Values[i]))
				}
			}
		}
		return true
	})
}

// class classifies one expression's channel provenance.
func (cc *chanClasses) class(p *lintPackage, f *lintFile, e ast.Expr) int {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		obj := objOf(p, v)
		if obj == nil {
			if v.Name == "nil" {
				return clNil
			}
			return clUnknown
		}
		if _, isNil := obj.(*types.Nil); isNil {
			return clNil
		}
		if c, ok := cc.obj[obj]; ok {
			return c
		}
		return clUnknown
	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			return cc.class(p, f, v.X) // element inherits the container's origin
		}
		return clUnknown
	case *ast.IndexExpr:
		return cc.class(p, f, v.X)
	case *ast.SelectorExpr:
		obj := p.Info.Uses[v.Sel]
		if obj == nil {
			return clRaw // field/method of a stubbed external type
		}
		if pkgLocal(p, obj) {
			if c, ok := cc.obj[obj]; ok {
				return c
			}
			return clUnknown
		}
		return clRaw // real external object (e.g. time.Ticker.C)
	case *ast.CallExpr:
		if isBuiltin(p, v.Fun, "make") && len(v.Args) >= 1 {
			if _, ok := unparen(v.Args[0]).(*ast.ChanType); ok {
				return clInstr
			}
			return clUnknown
		}
		switch fn := unparen(v.Fun).(type) {
		case *ast.Ident:
			if obj := objOf(p, fn); pkgLocal(p, obj) {
				return clInstr // result type is spelled in this package
			}
			return clRaw
		case *ast.SelectorExpr:
			if x, ok := fn.X.(*ast.Ident); ok && f.TimeName != "" && x.Name == f.TimeName && fn.Sel.Name == "After" {
				return clInstr // rewritten to the clrt.After shim
			}
			if obj := p.Info.Uses[fn.Sel]; pkgLocal(p, obj) {
				return clInstr
			}
			return clRaw
		case *ast.FuncLit:
			return clInstr
		}
		return clRaw
	case *ast.CompositeLit:
		return clInstr // literal elements are spelled in this package
	case *ast.TypeAssertExpr:
		return clUnknown
	default:
		return clUnknown
	}
}

// findConflicts scans one file for constructs that make channel
// rewriting unsound, reporting each; false means the gate must close.
func (cc *chanClasses) findConflicts(ins *instrumenter, p *lintPackage, f *lintFile) bool {
	ok := true
	conflict := func(n ast.Node, construct, reason string) {
		ins.report(f.Path, p.Fset.Position(n.Pos()).Line, construct, reason)
		ok = false
	}
	warn := func(n ast.Node, construct, reason string) {
		ins.report(f.Path, p.Fset.Position(n.Pos()).Line, construct, reason)
	}
	var stack []ast.Node
	ast.Inspect(f.AST, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch v := n.(type) {
		case *ast.TypeSpec:
			if v.Assign == token.NoPos {
				if _, isChan := unparen(v.Type).(*ast.ChanType); isChan {
					conflict(v, "named-chan-type",
						"a defined channel type would lose channel operations after rewriting; channel instrumentation disabled")
				}
			}
		case *ast.CallExpr:
			if _, isChan := unparen(v.Fun).(*ast.ChanType); isChan {
				conflict(v, "chan-conversion",
					"conversion to a channel type cannot be rewritten; channel instrumentation disabled")
			}
			cc.checkCallArgs(ins, p, f, v, conflict, warn)
			if isBuiltin(p, v.Fun, "close") && len(v.Args) == 1 {
				if cc.class(p, f, v.Args[0]) == clUnknown && exprMayBeChan(p, v.Args[0]) {
					conflict(v, "chan-close", "close of a channel with unresolvable provenance")
				}
			}
		case *ast.TypeAssertExpr:
			if v.Type != nil && astContainsChan(v.Type) {
				conflict(v, "chan-assert",
					"type assertion on a channel type cannot be rewritten; channel instrumentation disabled")
			}
		case *ast.TypeSwitchStmt:
			for _, s := range v.Body.List {
				if clause, isClause := s.(*ast.CaseClause); isClause {
					for _, t := range clause.List {
						if astContainsChan(t) {
							conflict(t, "chan-assert",
								"type switch over a channel type cannot be rewritten; channel instrumentation disabled")
						}
					}
				}
			}
		case *ast.ValueSpec:
			if v.Type != nil && astContainsChan(v.Type) {
				for _, val := range v.Values {
					if c := cc.class(p, f, val); c != clInstr {
						conflict(val, "chan-mixed",
							"initializer of a declared channel type is not an instrumentable channel")
					}
				}
			}
		case *ast.AssignStmt:
			cc.checkAssign(p, f, v, conflict)
		case *ast.SendStmt:
			if cc.class(p, f, v.Chan) == clUnknown {
				conflict(v, "chan-send", "send on a channel with unresolvable provenance")
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && cc.class(p, f, v.X) == clUnknown {
				conflict(v, "chan-recv", "receive from a channel with unresolvable provenance")
			}
		case *ast.SelectStmt:
			cc.checkSelect(p, f, v, conflict)
		case *ast.ReturnStmt:
			cc.checkReturn(p, f, v, stack, conflict)
		}
		return true
	})
	return ok
}

// exprMayBeChan guards builtin checks that are only channel ops for
// channel arguments.
func exprMayBeChan(p *lintPackage, e ast.Expr) bool {
	t := typeOf(p, e)
	return t == nil || isChanType(t)
}

// checkAssign flags raw↔instrumented assignment mixing and nil
// assignments the rewriter cannot express.
func (cc *chanClasses) checkAssign(p *lintPackage, f *lintFile, v *ast.AssignStmt, conflict func(ast.Node, string, string)) {
	if v.Tok == token.DEFINE {
		return // inference territory; types follow the initializer
	}
	if len(v.Lhs) != len(v.Rhs) {
		return // multi-value: result types follow the (checked) call
	}
	for i := range v.Lhs {
		lc := cc.class(p, f, v.Lhs[i])
		rc := cc.class(p, f, v.Rhs[i])
		switch {
		case lc == clInstr && rc == clNil:
			if !simpleAssignable(v.Lhs[i]) {
				conflict(v, "chan-nil",
					"nil assigned to an instrumented channel through an expression the rewriter cannot re-evaluate")
			}
		case lc == clInstr && rc != clInstr && rc != clUnknown:
			conflict(v, "chan-mixed",
				"external channel assigned to an instrumented channel variable")
		case lc == clRaw && rc == clInstr:
			conflict(v, "chan-mixed",
				"instrumented channel assigned to an external channel variable")
		}
	}
}

// simpleAssignable: identifiers and plain selector chains can be
// duplicated for the `ch = ch.Nil()` rewrite without repeating side
// effects.
func simpleAssignable(e ast.Expr) bool {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return simpleAssignable(v.X)
	}
	return false
}

// checkSelect enforces per-select homogeneity: all arms instrumented
// or all raw.
func (cc *chanClasses) checkSelect(p *lintPackage, f *lintFile, v *ast.SelectStmt, conflict func(ast.Node, string, string)) {
	instr, raw := 0, 0
	for _, s := range v.Body.List {
		clause, isClause := s.(*ast.CommClause)
		if !isClause || clause.Comm == nil {
			continue
		}
		ch := commChan(clause.Comm)
		if ch == nil {
			continue
		}
		switch cc.class(p, f, ch) {
		case clInstr:
			instr++
		case clRaw:
			raw++
		default:
			conflict(clause, "chan-select", "select arm channel has unresolvable provenance")
		}
	}
	if instr > 0 && raw > 0 {
		conflict(v, "chan-mixed-select",
			"select mixes instrumented and external channels; it cannot be rewritten faithfully")
	}
}

// commChan extracts the channel operand of a select comm clause.
func commChan(s ast.Stmt) ast.Expr {
	switch v := s.(type) {
	case *ast.SendStmt:
		return v.Chan
	case *ast.ExprStmt:
		if u, ok := unparen(v.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(v.Rhs) == 1 {
			if u, ok := unparen(v.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// checkCallArgs flags channel arguments that cross the
// instrumentation boundary in either direction.
func (cc *chanClasses) checkCallArgs(ins *instrumenter, p *lintPackage, f *lintFile, v *ast.CallExpr, conflict, warn func(ast.Node, string, string)) {
	var callee types.Object
	switch fn := unparen(v.Fun).(type) {
	case *ast.Ident:
		callee = objOf(p, fn)
		if _, isB := callee.(*types.Builtin); isB {
			return
		}
	case *ast.SelectorExpr:
		callee = p.Info.Uses[fn.Sel]
	default:
		return
	}
	if pkgLocal(p, callee) {
		fnObj, isFn := callee.(*types.Func)
		if !isFn {
			return
		}
		sig, isSig := fnObj.Type().(*types.Signature)
		if !isSig {
			return
		}
		for i, arg := range v.Args {
			pi := i
			if pi >= sig.Params().Len() {
				if !sig.Variadic() {
					break
				}
				pi = sig.Params().Len() - 1
			}
			if pi < 0 || !typeContainsChan(sig.Params().At(pi).Type(), 0) {
				continue
			}
			if c := cc.class(p, f, arg); c == clRaw || c == clNil {
				conflict(arg, "chan-arg",
					"external (or nil) channel passed to a package-local parameter whose type will be rewritten")
			}
		}
		return
	}
	// External callee: a rewritten channel passed out may not compile
	// against the real signature. The copy fails loudly if so; warn.
	for _, arg := range v.Args {
		if cc.class(p, f, arg) == clInstr && isChanType(typeOf(p, arg)) {
			warn(arg, "chan-external",
				"instrumented channel passed to an external call; if the instrumented copy fails to compile, rerun with -nochan")
		}
	}
}

// checkReturn verifies returned channels match the (rewritten)
// result types of the nearest enclosing function.
func (cc *chanClasses) checkReturn(p *lintPackage, f *lintFile, ret *ast.ReturnStmt, stack []ast.Node, conflict func(ast.Node, string, string)) {
	var results *ast.FieldList
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			results = fn.Type.Results
		case *ast.FuncDecl:
			results = fn.Type.Results
		}
		if results != nil || isFuncNode(stack[i]) {
			break
		}
	}
	if results == nil || len(ret.Results) == 0 {
		return
	}
	// Flatten result fields to positional types.
	var rtypes []ast.Expr
	for _, fld := range results.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			rtypes = append(rtypes, fld.Type)
		}
	}
	for i, expr := range ret.Results {
		if i >= len(rtypes) {
			break
		}
		if _, isChan := unparen(rtypes[i]).(*ast.ChanType); !isChan {
			continue
		}
		if c := cc.class(p, f, expr); c == clRaw || c == clNil || c == clUnknown {
			conflict(expr, "chan-return",
				"returned value does not match the function's rewritten channel result type")
		}
	}
}

func isFuncNode(n ast.Node) bool {
	switch n.(type) {
	case *ast.FuncLit, *ast.FuncDecl:
		return true
	}
	return false
}

// ---- rewrites (called from fileRewriter) ----

// chanClass is the rewriter's view: only meaningful when the gate is
// open.
func (rw *fileRewriter) chanClass(e ast.Expr) int {
	if !rw.ins.chansOn {
		return clRaw
	}
	return rw.ins.chanCls.class(rw.pkg, rw.file, e)
}

// recvExpr rewrites `<-ch` on instrumented channels to ch.Recv1().
// Two-value receives are intercepted earlier, in assignStmt.
func (rw *fileRewriter) recvExpr(v *ast.UnaryExpr) ast.Expr {
	if rw.chanClass(v.X) == clInstr {
		ch := rw.expr(v.X)
		rw.changed = true
		return call(sel(ch, "Recv1"))
	}
	v.X = rw.expr(v.X)
	return v
}

// nilCompare rewrites `ch == nil` / `ch != nil` on instrumented
// channels; returns nil when the comparison is not one.
func (rw *fileRewriter) nilCompare(v *ast.BinaryExpr) ast.Expr {
	if v.Op != token.EQL && v.Op != token.NEQ {
		return nil
	}
	var chExpr ast.Expr
	switch {
	case isNilIdent(v.Y) && rw.chanClass(v.X) == clInstr:
		chExpr = v.X
	case isNilIdent(v.X) && rw.chanClass(v.Y) == clInstr:
		chExpr = v.Y
	default:
		return nil
	}
	rw.changed = true
	isNil := ast.Expr(call(sel(rw.expr(chExpr), "IsNil")))
	if v.Op == token.NEQ {
		isNil = &ast.UnaryExpr{Op: token.NOT, X: isNil}
	}
	return isNil
}

// sendStmt rewrites `ch <- v` on instrumented channels.
func (rw *fileRewriter) sendStmt(v *ast.SendStmt) []ast.Stmt {
	if rw.chanClass(v.Chan) != clInstr {
		v.Chan = rw.expr(v.Chan)
		v.Value = rw.expr(v.Value)
		return []ast.Stmt{v}
	}
	ch := rw.expr(v.Chan)
	val := rw.expr(v.Value)
	rw.changed = true
	return []ast.Stmt{exprStmt(call(sel(ch, "Send"), val))}
}

// assignStmt intercepts two-value receives and nil stores before
// generic expression rewriting.
func (rw *fileRewriter) assignStmt(v *ast.AssignStmt) []ast.Stmt {
	if len(v.Lhs) == 2 && len(v.Rhs) == 1 {
		if u, ok := unparen(v.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW && rw.chanClass(u.X) == clInstr {
			ch := rw.expr(u.X)
			v.Rhs[0] = call(sel(ch, "Recv"))
			for i := range v.Lhs {
				v.Lhs[i] = rw.expr(v.Lhs[i])
			}
			rw.changed = true
			return []ast.Stmt{v}
		}
	}
	if v.Tok == token.ASSIGN && len(v.Lhs) == len(v.Rhs) {
		for i := range v.Rhs {
			if isNilIdent(v.Rhs[i]) && rw.chanClass(v.Lhs[i]) == clInstr && simpleAssignable(v.Lhs[i]) {
				v.Rhs[i] = call(sel(cloneSimple(v.Lhs[i]), "Nil"))
				rw.changed = true
			}
		}
	}
	for i := range v.Lhs {
		v.Lhs[i] = rw.expr(v.Lhs[i])
	}
	for i := range v.Rhs {
		v.Rhs[i] = rw.expr(v.Rhs[i])
	}
	return []ast.Stmt{v}
}

// cloneSimple duplicates an ident/selector chain (guarded by
// simpleAssignable) so the same l-value can appear on both sides.
func cloneSimple(e ast.Expr) ast.Expr {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return ident(v.Name)
	case *ast.SelectorExpr:
		return sel(cloneSimple(v.X), v.Sel.Name)
	}
	return e
}

// selectStmt rewrites a select whose arms are all instrumented into a
// clrt.Select switch; all-raw selects are left alone, and mixed ones
// were gated off during classification.
func (rw *fileRewriter) selectStmt(v *ast.SelectStmt) []ast.Stmt {
	type arm struct {
		clause  *ast.CommClause
		chExpr  ast.Expr
		send    bool
		sendVal ast.Expr
		recvLhs []ast.Expr // 0, 1 or 2 targets
		tok     token.Token
	}
	var arms []*arm
	var defaultClause *ast.CommClause
	allInstr := true
	for _, s := range v.Body.List {
		clause, isClause := s.(*ast.CommClause)
		if !isClause {
			continue
		}
		if clause.Comm == nil {
			defaultClause = clause
			continue
		}
		a := &arm{clause: clause, tok: token.DEFINE}
		switch c := clause.Comm.(type) {
		case *ast.SendStmt:
			a.chExpr, a.send, a.sendVal = c.Chan, true, c.Value
		case *ast.ExprStmt:
			u, isRecv := unparen(c.X).(*ast.UnaryExpr)
			if !isRecv || u.Op != token.ARROW {
				allInstr = false
				continue
			}
			a.chExpr = u.X
		case *ast.AssignStmt:
			u, isRecv := unparen(c.Rhs[0]).(*ast.UnaryExpr)
			if !isRecv || u.Op != token.ARROW {
				allInstr = false
				continue
			}
			a.chExpr, a.recvLhs, a.tok = u.X, c.Lhs, c.Tok
		default:
			allInstr = false
			continue
		}
		if rw.chanClass(a.chExpr) != clInstr {
			allInstr = false
		}
		arms = append(arms, a)
	}
	if !rw.ins.chansOn || !allInstr || len(arms) == 0 {
		// Raw (or empty `select{}`): only rewrite inside the bodies.
		for _, s := range v.Body.List {
			if clause, isClause := s.(*ast.CommClause); isClause {
				if clause.Comm != nil {
					rw.simpleStmt(&clause.Comm)
				}
				clause.Body = rw.stmtList(clause.Body)
			}
		}
		return []ast.Stmt{v}
	}

	rw.changed = true
	var pre []ast.Stmt
	var caseExprs []ast.Expr
	chTemp := make([]string, len(arms))
	for i, a := range arms {
		// Bind channel operands (and non-constant send values) in
		// source order, exactly as select evaluates them.
		chTemp[i] = rw.temp("C")
		pre = append(pre, define(chTemp[i], rw.expr(a.chExpr)))
		if a.send {
			valConst := isConstExpr(rw.pkg, a.sendVal)
			val := rw.expr(a.sendVal)
			if !valConst {
				sname := rw.temp("S")
				pre = append(pre, define(sname, val))
				val = ident(sname)
			}
			caseExprs = append(caseExprs, call(rw.clrtSel("SendCase"), ident(chTemp[i]), val))
		} else {
			caseExprs = append(caseExprs, call(rw.clrtSel("RecvCase"), ident(chTemp[i])))
		}
	}
	idxName, valName, okName := rw.temp("Idx"), rw.temp("Val"), rw.temp("Ok")
	selArgs := append([]ast.Expr{ident(boolName(defaultClause != nil))}, caseExprs...)
	pre = append(pre,
		assign(token.DEFINE,
			[]ast.Expr{ident(idxName), ident(valName), ident(okName)},
			[]ast.Expr{call(rw.clrtSel("Select"), selArgs...)}),
		assign(token.ASSIGN,
			[]ast.Expr{ident("_"), ident("_")},
			[]ast.Expr{ident(valName), ident(okName)}),
	)

	var cases []ast.Stmt
	for i, a := range arms {
		var body []ast.Stmt
		if len(a.recvLhs) > 0 {
			castCall := ast.Expr(call(sel(ident(chTemp[i]), "Cast"), ident(valName)))
			lhs := make([]ast.Expr, len(a.recvLhs))
			for j := range a.recvLhs {
				lhs[j] = rw.expr(a.recvLhs[j])
			}
			rhs := []ast.Expr{castCall}
			if len(lhs) == 2 {
				rhs = append(rhs, ident(okName))
			}
			body = append(body, assign(a.tok, lhs, rhs))
		}
		body = append(body, rw.stmtList(a.clause.Body)...)
		cases = append(cases, &ast.CaseClause{List: []ast.Expr{intLit(i)}, Body: body})
	}
	if defaultClause != nil {
		cases = append(cases, &ast.CaseClause{
			List: []ast.Expr{&ast.UnaryExpr{Op: token.SUB, X: intLit(1)}},
			Body: rw.stmtList(defaultClause.Body),
		})
	}
	sw := &ast.SwitchStmt{Tag: ident(idxName), Body: &ast.BlockStmt{List: cases}}
	return append(pre, sw)
}

func boolName(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// rangeStmt rewrites `for v := range ch` over instrumented channels
// into an explicit receive loop.
func (rw *fileRewriter) rangeStmt(v *ast.RangeStmt) []ast.Stmt {
	if rw.chanClass(v.X) != clInstr {
		if v.Key != nil {
			v.Key = rw.expr(v.Key)
		}
		if v.Value != nil {
			v.Value = rw.expr(v.Value)
		}
		v.X = rw.expr(v.X)
		v.Body.List = rw.stmtList(v.Body.List)
		return []ast.Stmt{v}
	}
	rw.changed = true
	cname := rw.temp("C")
	pre := define(cname, rw.expr(v.X))
	okName := rw.temp("Ok")

	useKey := v.Key != nil && !isBlank(v.Key)
	vName := "_"
	if useKey {
		vName = rw.temp("V")
	}
	body := []ast.Stmt{
		assign(token.DEFINE,
			[]ast.Expr{ident(vName), ident(okName)},
			[]ast.Expr{call(sel(ident(cname), "Recv"))}),
		&ast.IfStmt{
			Cond: &ast.UnaryExpr{Op: token.NOT, X: ident(okName)},
			Body: &ast.BlockStmt{List: []ast.Stmt{&ast.BranchStmt{Tok: token.BREAK}}},
		},
	}
	if useKey {
		body = append(body, assign(v.Tok, []ast.Expr{rw.expr(v.Key)}, []ast.Expr{ident(vName)}))
	}
	body = append(body, rw.stmtList(v.Body.List)...)
	loop := &ast.ForStmt{Body: &ast.BlockStmt{List: body}}
	return []ast.Stmt{pre, loop}
}

func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
