// Package instr is the source-to-source instrumenter behind
// cmd/clainstr: it rewrites a copy of a target Go module so that its
// synchronization lands on the critlock/clrt runtime and running the
// copy records a critical-lock trace.
//
// The rewrite strategy is type substitution, not call-site wrapping:
// sync.Mutex, sync.RWMutex and sync.WaitGroup type references become
// clrt.Mutex / clrt.RWMutex / clrt.WaitGroup, whose method sets match,
// so every call site — mu.Lock(), defer mu.Unlock(), struct-embedded
// mutexes with promoted methods, locks passed by pointer — compiles
// unchanged. Beyond types, the rewriter touches exactly four
// statement forms: go statements (wrapped in clrt.Go with eagerly
// bound arguments), func main (wrapped in clrt.Main so the trace is
// flushed on exit), os.Exit calls (clrt.Exit, which snapshots the
// trace first), and — where the package's channel usage is fully
// resolvable — channel operations (make/send/recv/close/select/range
// onto clrt.Chan[T]).
//
// Name resolution reuses the linter's tolerant loader
// (internal/lint.LoadPackages): best-effort go/types over each
// directory package with stdlib source resolution. Constructs the
// rewriter cannot handle faithfully are never rewritten silently
// wrong: each is reported as a Finding (per file and line), channel
// instrumentation degrades to off for the whole target when any
// channel flow is unresolvable, and Options.Strict turns findings
// into a hard error.
package instr

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"critlock/internal/lint"
)

// Options configures one instrumentation run.
type Options struct {
	// Dir is the root of the target module (or package tree). Required.
	Dir string
	// Out is the directory the instrumented copy is written to. It is
	// created if missing and must not be the target itself. Required.
	Out string
	// Patterns selects the packages to rewrite, relative to Dir, with
	// the linter's pattern syntax ("./...", a directory, a file).
	// Default: ["./..."]. Files outside the patterns are copied
	// verbatim.
	Patterns []string
	// CritlockDir is the critlock repository path used in the replace
	// directive the instrumented go.mod gets, so the copy resolves
	// "critlock/clrt". Empty means: locate it from this binary's own
	// source path (works for `go run`/`go test` builds of clainstr).
	CritlockDir string
	// IncludeTests rewrites _test.go files too. Off by default:
	// instrumented programs are run, not tested, and tests routinely
	// misuse locks on purpose.
	IncludeTests bool
	// NoChannels disables channel instrumentation outright instead of
	// letting the resolvability gate decide.
	NoChannels bool
	// Strict makes Run return an error when any finding was reported.
	Strict bool
	// ModulePath names the synthesized module when the target has no
	// go.mod. Empty means the base name of Dir.
	ModulePath string
}

// Finding is one construct the instrumenter skipped, rewrote only
// partially, or wants the user to know about. The rewriter's
// contract: anything it cannot rewrite faithfully is either left
// untouched (and reported) or disables the relevant rewrite class —
// never rewritten wrong.
type Finding struct {
	// File is the display path, relative to the target root.
	File string `json:"file"`
	// Line is the 1-based source line.
	Line int `json:"line"`
	// Construct identifies what was found: "sync.Cond", "log.Fatal",
	// "chan-conflict", "chan-external", "named-chan-type", ...
	Construct string `json:"construct"`
	// Reason says why the construct was skipped and what that means
	// for the recorded trace.
	Reason string `json:"reason"`
}

// Result summarizes an instrumentation run.
type Result struct {
	// Rewritten lists the display paths of files that were modified.
	Rewritten []string `json:"rewritten"`
	// Copied counts files copied verbatim into the output tree.
	Copied int `json:"copied"`
	// ChannelsOn reports whether channel instrumentation survived the
	// resolvability gate (false: channel ops left untouched, their
	// blocking invisible to the trace).
	ChannelsOn bool `json:"channels_on"`
	// Findings are the skipped/partial constructs, ordered by file and
	// line.
	Findings []Finding `json:"findings"`
}

// Run instruments the module at opts.Dir into opts.Out and returns
// what it did. The output tree is complete and self-contained: run it
// with `go run`/`go build` inside opts.Out; the trace lands where
// CRITLOCK_SEGDIR / CRITLOCK_OUT point (see package critlock/clrt).
func Run(opts Options) (*Result, error) {
	if opts.Dir == "" || opts.Out == "" {
		return nil, fmt.Errorf("instr: Dir and Out are required")
	}
	dir, err := filepath.Abs(opts.Dir)
	if err != nil {
		return nil, err
	}
	out, err := filepath.Abs(opts.Out)
	if err != nil {
		return nil, err
	}
	if out == dir {
		return nil, fmt.Errorf("instr: output directory equals the target")
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(lint.Options{
		Dir:          dir,
		Patterns:     patterns,
		IncludeTests: opts.IncludeTests,
		StdlibTypes:  true,
	})
	if err != nil {
		return nil, fmt.Errorf("instr: loading target: %w", err)
	}

	ins := &instrumenter{opts: opts, dir: dir}
	ins.classifyChannels(pkgs)

	rewritten := map[string][]byte{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			src, changed, err := ins.rewriteFile(p, f)
			if err != nil {
				return nil, fmt.Errorf("instr: %s: %w", f.Path, err)
			}
			if changed {
				rewritten[f.Path] = src
			}
		}
	}

	res := &Result{ChannelsOn: ins.chansOn, Findings: ins.findings}
	for path := range rewritten {
		res.Rewritten = append(res.Rewritten, path)
	}
	sort.Strings(res.Rewritten)
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})

	copied, err := writeTree(dir, out, rewritten)
	if err != nil {
		return nil, err
	}
	res.Copied = copied
	if err := fixGoMod(out, dir, opts); err != nil {
		return nil, err
	}
	if opts.Strict && len(res.Findings) > 0 {
		return res, fmt.Errorf("instr: %d finding(s) in strict mode", len(res.Findings))
	}
	return res, nil
}

// WriteReport prints the human-readable skip report, grouped by file.
func WriteReport(w io.Writer, res *Result) {
	if len(res.Findings) == 0 {
		return
	}
	last := ""
	for _, f := range res.Findings {
		if f.File != last {
			fmt.Fprintf(w, "%s:\n", f.File)
			last = f.File
		}
		fmt.Fprintf(w, "  line %d: [%s] %s\n", f.Line, f.Construct, f.Reason)
	}
}

// instrumenter carries run-wide state across files.
type instrumenter struct {
	opts     Options
	dir      string
	findings []Finding
	chansOn  bool
	chanCls  *chanClasses
}

func (ins *instrumenter) report(file string, line int, construct, reason string) {
	ins.findings = append(ins.findings, Finding{File: file, Line: line, Construct: construct, Reason: reason})
}

// writeTree mirrors src into dst: rewritten files get their rendered
// bytes, everything else is copied verbatim. VCS metadata and nested
// output dirs are skipped.
func writeTree(src, dst string, rewritten map[string][]byte) (int, error) {
	copied := 0
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, path)
		if rerr != nil {
			return rerr
		}
		if d.IsDir() {
			name := d.Name()
			if path != src && (name == ".git" || name == ".hg" || name == ".svn") {
				return filepath.SkipDir
			}
			if abs, _ := filepath.Abs(path); abs == dst {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !d.Type().IsRegular() {
			return nil // sockets, symlinks out of tree: not part of a module build
		}
		if body, ok := rewritten[filepath.ToSlash(rel)]; ok {
			copied++
			return os.WriteFile(filepath.Join(dst, rel), body, 0o644)
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		copied++
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		return 0, fmt.Errorf("instr: writing output tree: %w", err)
	}
	return copied - len(rewritten), nil
}

// fixGoMod makes the instrumented copy resolve "critlock/clrt": it
// appends a require + replace of the critlock module to the copy's
// go.mod, synthesizing a minimal one when the target has none.
func fixGoMod(out, dir string, opts Options) error {
	crit := opts.CritlockDir
	if crit == "" {
		crit = selfModuleDir()
	}
	if crit == "" {
		return fmt.Errorf("instr: cannot locate the critlock repository; pass -critlock")
	}
	if st, err := os.Stat(filepath.Join(crit, "clrt")); err != nil || !st.IsDir() {
		return fmt.Errorf("instr: %s does not look like the critlock repository (no clrt/)", crit)
	}
	modPath := filepath.Join(out, "go.mod")
	data, err := os.ReadFile(modPath)
	if os.IsNotExist(err) {
		name := opts.ModulePath
		if name == "" {
			name = filepath.Base(dir)
		}
		data = []byte(fmt.Sprintf("module %s\n\ngo 1.22\n", name))
	} else if err != nil {
		return err
	}
	if strings.Contains(string(data), "critlock") {
		return nil // already wired (re-instrumenting an output tree)
	}
	add := fmt.Sprintf("\nrequire critlock v0.0.0\n\nreplace critlock => %s\n", crit)
	return os.WriteFile(modPath, append(data, add...), 0o644)
}

// selfModuleDir finds the critlock repo root from this source file's
// compiled-in path — valid whenever clainstr runs via go run / go test
// from the repo, which is how the tool ships.
func selfModuleDir() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return ""
	}
	// file = <repo>/internal/instr/instr.go
	d := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(d, "go.mod")); err != nil {
		return ""
	}
	return d
}
