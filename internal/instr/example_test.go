package instr

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ExampleRun instruments a small fixture module into a temporary
// directory. The output tree is a complete Go module: build or run it
// there and the trace lands where CRITLOCK_SEGDIR / CRITLOCK_OUT
// point.
func ExampleRun() {
	tmp, err := os.MkdirTemp("", "clainstr-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(tmp)

	res, err := Run(Options{
		Dir: filepath.Join("testdata", "target"),
		Out: filepath.Join(tmp, "copy"),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("rewritten:", strings.Join(res.Rewritten, ", "))
	fmt.Println("channels instrumented:", res.ChannelsOn)
	fmt.Println("findings:", len(res.Findings))
	// Output:
	// rewritten: main.go, util.go
	// channels instrumented: true
	// findings: 0
}
