// This fixture collects the constructs the instrumenter refuses and
// reports instead of rewriting wrong: defined sync/chan types,
// sync.Cond, and log.Fatal paths that would lose the trace.
package main

import (
	"log"
	"sync"
)

// pipe is a defined channel type: rewriting its underlying type would
// strip channel operations from it.
type pipe chan int

// myMu is a defined mutex type: the rewritten form would not inherit
// the method set.
type myMu sync.Mutex

// gate relies on sync.Cond, which has no traced counterpart.
type gate struct {
	mu sync.Mutex
	cv *sync.Cond
}

func newGate() *gate {
	g := &gate{}
	g.cv = sync.NewCond(&g.mu)
	return g
}

func main() {
	g := newGate()
	if g == nil {
		log.Fatal("no gate")
	}
	g.cv.Signal()
}
