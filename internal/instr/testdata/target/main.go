// This fixture pins the instrumenter's rewrite rules: every construct
// here exercises one rule, and the golden files assert the exact
// output (refresh with `go test ./internal/instr -update`).
package main

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// Counter embeds its mutex; the promoted Lock/Unlock must keep
// working on the rewritten embedded field.
type Counter struct {
	sync.Mutex
	n int
}

func (c *Counter) Incr() {
	c.Lock()
	defer c.Unlock()
	c.n++
}

// global exercises the RWMutex read/write mix.
var global sync.RWMutex

var state int

func readState() int {
	global.RLock()
	defer global.RUnlock()
	return state
}

func writeState(v int) {
	global.Lock()
	state = v
	global.Unlock()
}

// lockThrough receives a lock by pointer.
func lockThrough(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

func produce(out chan int, n int) {
	for i := 0; i < n; i++ {
		out <- i
	}
	close(out)
}

func main() {
	var local sync.Mutex
	c := &Counter{}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.Incr()
		lockThrough(&local)
	}()
	go func() {
		defer wg.Done()
		writeState(readState() + 1)
	}()
	wg.Wait()

	work := make(chan int, 4)
	done := make(chan struct{})
	go produce(work, 8)
	go func() {
		defer close(done)
		total := 0
		for v := range work {
			total += v
		}
		writeState(total)
	}()

	timeout := time.After(50 * time.Millisecond)
loop:
	for {
		select {
		case _, ok := <-done:
			if !ok {
				done = nil
				continue
			}
		case <-timeout:
			break loop
		default:
			if done == nil {
				break loop
			}
		}
	}

	v, ok := <-work
	if ok {
		fmt.Println("unexpected value after close", v)
		os.Exit(1)
	}
	fmt.Println("state", readState(), c.n, len(work), cap(work))
}
