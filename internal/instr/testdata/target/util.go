package main

import "sync"

// poolMu lives in a second file: each file gets its own SetName init.
var poolMu sync.Mutex

var pool []int

func put(v int) {
	poolMu.Lock()
	defer poolMu.Unlock()
	pool = append(pool, v)
}
