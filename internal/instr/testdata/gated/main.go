// This fixture forces the channel gate shut: a channel laundered
// through the empty interface has unresolvable provenance, so channel
// instrumentation must turn off module-wide — while lock rewriting
// carries on.
package main

import (
	"fmt"
	"sync"
)

var mu sync.Mutex

// escape launders a channel through the empty interface.
func escape(x interface{}) chan int {
	return x.(chan int)
}

func main() {
	ch := make(chan int, 1)
	out := escape(ch)
	mu.Lock()
	out <- 1
	mu.Unlock()
	fmt.Println(<-out)
}
