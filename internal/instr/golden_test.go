package instr

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// runFixture instruments testdata/<name> into a temp dir and returns
// the result plus the output dir.
func runFixture(t *testing.T, name string, opts func(*Options)) (*Result, string) {
	t.Helper()
	o := Options{
		Dir: filepath.Join("testdata", name),
		Out: filepath.Join(t.TempDir(), "copy"),
	}
	if opts != nil {
		opts(&o)
	}
	res, err := Run(o)
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	return res, o.Out
}

// TestGoldenTarget pins the full rewrite of the edge-case fixture:
// embedded mutex fields, deferred unlocks, the RWMutex read/write
// mix, go closures capturing locks, pointer-passed locks, channel
// make/send/range/close, select with default, nil-channel disabling,
// time.After, os.Exit and main wrapping.
func TestGoldenTarget(t *testing.T) {
	res, out := runFixture(t, "target", nil)
	if !res.ChannelsOn {
		t.Fatalf("channel gate closed on the clean fixture; findings: %+v", res.Findings)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("unexpected findings: %+v", res.Findings)
	}
	if len(res.Rewritten) != 2 {
		t.Fatalf("rewritten = %v, want main.go and util.go", res.Rewritten)
	}
	for _, name := range res.Rewritten {
		got, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", "golden", name+".golden")
		if *update {
			if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run `go test ./internal/instr -update` after an intended rewrite change)", err)
		}
		if string(got) != string(want) {
			t.Errorf("%s drifted from %s — diff the files or refresh with -update\ngot:\n%s", name, golden, got)
		}
	}

	main := readOut(t, out, "main.go")
	for _, marker := range []string{
		"clrt.Mutex",                       // embedded field + local var
		"clrt.RWMutex",                     // read/write mix
		"clrt.WaitGroup",                   // waitgroup type
		`local.SetName("main.main.local")`, // local lock named after decl
		"clrt.MakeChan[int]",               // make(chan int, 4)
		`clrt.Go("produce@`,                // named-func go statement
		`clrt.Go("func@`,                   // closure go statement
		"clrt.After(",                      // time.After shim
		"clrt.Select(",                     // select statement
		"done.Nil()",                       // `done = nil` disabling
		".IsNil()",                         // `done == nil` comparison
		"clrt.Main(func()",                 // main wrapping
		"clrt.Exit(1)",                     // os.Exit
	} {
		if !strings.Contains(main, marker) {
			t.Errorf("rewritten main.go lacks %q", marker)
		}
	}
	util := readOut(t, out, "util.go")
	if !strings.Contains(util, `poolMu.SetName("main.poolMu")`) {
		t.Errorf("rewritten util.go lacks the package-lock SetName init:\n%s", util)
	}

	if testing.Short() {
		return
	}
	// The rewritten copy must compile against the real clrt package.
	cmd := exec.Command("go", "build", "./...")
	cmd.Dir = out
	if outb, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("instrumented fixture does not compile: %v\n%s\n-- main.go --\n%s", err, outb, main)
	}
}

// TestGatedFixture: unresolvable channel provenance closes the gate
// module-wide but lock rewriting continues.
func TestGatedFixture(t *testing.T) {
	res, out := runFixture(t, "gated", nil)
	if res.ChannelsOn {
		t.Error("channel gate stayed open despite a chan type assertion")
	}
	if !hasFinding(res, "chan-assert") {
		t.Errorf("missing chan-assert finding: %+v", res.Findings)
	}
	main := readOut(t, out, "main.go")
	if !strings.Contains(main, "clrt.Mutex") {
		t.Error("locks were not rewritten while channels are gated off")
	}
	if strings.Contains(main, "MakeChan") || strings.Contains(main, ".Send(") {
		t.Errorf("channel ops rewritten despite the closed gate:\n%s", main)
	}
}

// TestNoChannelsFlag: -nochan closes the gate without findings.
func TestNoChannelsFlag(t *testing.T) {
	res, out := runFixture(t, "target", func(o *Options) { o.NoChannels = true })
	if res.ChannelsOn {
		t.Error("NoChannels did not close the gate")
	}
	if len(res.Findings) != 0 {
		t.Errorf("NoChannels produced findings: %+v", res.Findings)
	}
	main := readOut(t, out, "main.go")
	if strings.Contains(main, "MakeChan") {
		t.Error("channel ops rewritten despite NoChannels")
	}
	if !strings.Contains(main, "clrt.Mutex") {
		t.Error("locks were not rewritten under NoChannels")
	}
}

// TestFindingsFixture: refused constructs are reported, never
// rewritten wrong.
func TestFindingsFixture(t *testing.T) {
	res, _ := runFixture(t, "findings", nil)
	for _, construct := range []string{
		"named-chan-type", // type pipe chan int
		"named-sync-type", // type myMu sync.Mutex
		"sync.Cond",       // the field type and sync.NewCond
		"log.Fatal",       // exits without flushing the trace
	} {
		if !hasFinding(res, construct) {
			t.Errorf("missing %q finding: %+v", construct, res.Findings)
		}
	}
	if res.ChannelsOn {
		t.Error("defined chan type did not close the gate")
	}
}

// TestStrict: findings become a hard error under Options.Strict.
func TestStrict(t *testing.T) {
	o := Options{
		Dir:    filepath.Join("testdata", "findings"),
		Out:    filepath.Join(t.TempDir(), "copy"),
		Strict: true,
	}
	res, err := Run(o)
	if err == nil {
		t.Fatal("Strict run with findings returned nil error")
	}
	if res == nil || len(res.Findings) == 0 {
		t.Fatalf("Strict error without the findings that caused it: %+v", res)
	}
}

func hasFinding(res *Result, construct string) bool {
	for _, f := range res.Findings {
		if strings.Contains(f.Construct, construct) {
			return true
		}
	}
	return false
}

func readOut(t *testing.T, out, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(out, name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
