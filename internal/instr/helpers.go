package instr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"critlock/internal/lint"
)

// Small AST construction helpers. Generated nodes carry no positions;
// go/format renders them fine interleaved with positioned source.

func ident(name string) *ast.Ident { return &ast.Ident{Name: name} }

func sel(x ast.Expr, name string) *ast.SelectorExpr {
	return &ast.SelectorExpr{X: x, Sel: ident(name)}
}

func strLit(s string) *ast.BasicLit {
	return &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(s)}
}

func intLit(n int) *ast.BasicLit {
	return &ast.BasicLit{Kind: token.INT, Value: strconv.Itoa(n)}
}

func call(fun ast.Expr, args ...ast.Expr) *ast.CallExpr {
	return &ast.CallExpr{Fun: fun, Args: args}
}

func exprStmt(e ast.Expr) *ast.ExprStmt { return &ast.ExprStmt{X: e} }

func assign(tok token.Token, lhs []ast.Expr, rhs []ast.Expr) *ast.AssignStmt {
	return &ast.AssignStmt{Lhs: lhs, Tok: tok, Rhs: rhs}
}

func define(name string, rhs ast.Expr) *ast.AssignStmt {
	return assign(token.DEFINE, []ast.Expr{ident(name)}, []ast.Expr{rhs})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// objOf resolves an identifier to its object, using or definition.
func objOf(p *lint.Package, id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// pkgLocal reports whether obj is declared in p itself (as opposed to
// an import, a stub, or the universe scope).
func pkgLocal(p *lint.Package, obj types.Object) bool {
	return obj != nil && p.Types != nil && obj.Pkg() == p.Types
}

// typeOf returns the best-effort static type of e, nil when unknown.
func typeOf(p *lint.Package, e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return nil
}

// isChanType reports whether t is directly a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// typeContainsChan reports whether t mentions a channel anywhere
// (elements of slices/arrays/maps, struct fields, pointers).
func typeContainsChan(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Slice:
		return typeContainsChan(u.Elem(), depth+1)
	case *types.Array:
		return typeContainsChan(u.Elem(), depth+1)
	case *types.Pointer:
		return typeContainsChan(u.Elem(), depth+1)
	case *types.Map:
		return typeContainsChan(u.Key(), depth+1) || typeContainsChan(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsChan(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// astContainsChan reports whether the spelled type expression mentions
// a chan anywhere.
func astContainsChan(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.ChanType); ok {
			found = true
		}
		return !found
	})
	return found
}

// isConstExpr reports whether e evaluated to a compile-time constant
// in the original program — such arguments are inlined rather than
// bound, so untyped constants keep their implicit conversions.
func isConstExpr(p *lint.Package, e ast.Expr) bool {
	switch unparen(e).(type) {
	case *ast.BasicLit:
		return true
	}
	if p.Info != nil {
		if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
			return true
		}
	}
	return false
}

// isBuiltin reports whether the call's callee resolves to (or, absent
// type info, is plausibly) the named builtin.
func isBuiltin(p *lint.Package, fun ast.Expr, name string) bool {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := objOf(p, id)
	if obj == nil {
		return true // unresolved: builtins usually are in partial info
	}
	_, isB := obj.(*types.Builtin)
	return isB
}

// importNameOf returns the local name under which file imports path,
// or "" when it does not.
func importNameOf(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if imp.Path == nil {
			continue
		}
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := lastSlash(p); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
