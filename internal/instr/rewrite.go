package instr

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"path"
	"strconv"
)

// fileRewriter rewrites one file. All rewrites funnel through
// stmtList/stmt/expr so every construct is visited exactly once.
type fileRewriter struct {
	ins  *instrumenter
	pkg  *lintPackage
	file *lintFile

	clrt     string // import alias chosen for critlock/clrt
	needClrt bool
	changed  bool

	syncName, osName, logName, timeName string

	tmp      int
	fn       string // innermost named function, for lock auto-names
	pkgLocks []string
}

// rewriteFile rewrites f in place and renders it; (nil, false, nil)
// means the file needs no changes and should be copied verbatim.
func (ins *instrumenter) rewriteFile(p *lintPackage, f *lintFile) ([]byte, bool, error) {
	rw := &fileRewriter{
		ins: ins, pkg: p, file: f,
		syncName: f.SyncName,
		timeName: f.TimeName,
		osName:   importNameOf(f.AST, "os"),
		logName:  importNameOf(f.AST, "log"),
		clrt:     chooseClrtAlias(f.AST),
	}
	for _, d := range f.AST.Decls {
		rw.decl(d)
	}
	if len(rw.pkgLocks) > 0 {
		rw.appendSetNameInit()
	}
	if !rw.changed {
		return nil, false, nil
	}
	rw.fixImports()
	var buf bytes.Buffer
	if err := format.Node(&buf, p.Fset, f.AST); err != nil {
		return nil, false, fmt.Errorf("rendering: %w", err)
	}
	return buf.Bytes(), true, nil
}

// chooseClrtAlias picks an import name for critlock/clrt that no
// identifier in the file collides with.
func chooseClrtAlias(f *ast.File) string {
	used := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	if !used["clrt"] {
		return "clrt"
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("clrt%d", i)
		if !used[name] {
			return name
		}
	}
}

func (rw *fileRewriter) clrtSel(name string) ast.Expr {
	rw.needClrt = true
	rw.changed = true
	return sel(ident(rw.clrt), name)
}

func (rw *fileRewriter) temp(label string) string {
	rw.tmp++
	return fmt.Sprintf("clrt%s%d", label, rw.tmp)
}

// posOf formats a node's position as "file.go:NN" for generated names.
func (rw *fileRewriter) posOf(n ast.Node) string {
	p := rw.pkg.Fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", path.Base(rw.file.Path), p.Line)
}

func (rw *fileRewriter) lineOf(n ast.Node) int {
	return rw.pkg.Fset.Position(n.Pos()).Line
}

func (rw *fileRewriter) report(n ast.Node, construct, reason string) {
	rw.ins.report(rw.file.Path, rw.lineOf(n), construct, reason)
}

// ---- declarations ----

func (rw *fileRewriter) decl(d ast.Decl) {
	switch v := d.(type) {
	case *ast.FuncDecl:
		prev := rw.fn
		rw.fn = v.Name.Name
		rw.funcType(v.Type)
		if v.Body != nil {
			v.Body.List = rw.stmtList(v.Body.List)
			if rw.file.AST.Name.Name == "main" && v.Recv == nil && v.Name.Name == "main" {
				rw.wrapMain(v)
			}
		}
		rw.fn = prev
	case *ast.GenDecl:
		for _, spec := range v.Specs {
			switch s := spec.(type) {
			case *ast.ValueSpec:
				rw.collectPkgLocks(s)
				if s.Type != nil {
					s.Type = rw.expr(s.Type)
				}
				for i := range s.Values {
					s.Values[i] = rw.expr(s.Values[i])
				}
			case *ast.TypeSpec:
				rw.typeSpec(s)
			}
		}
	}
}

// typeSpec rewrites the type of a type declaration. Defining a type
// directly off sync.Mutex would drop the method set after rewriting
// (defined types do not inherit methods), so those are skipped and
// reported instead.
func (rw *fileRewriter) typeSpec(s *ast.TypeSpec) {
	if s.Assign == token.NoPos { // not an alias
		if kind := rw.syncKind(s.Type); kind != "" {
			rw.report(s, "named-sync-type",
				fmt.Sprintf("type %s sync.%s defines a new type without sync.%s's methods after rewriting; left on raw sync (untraced)", s.Name.Name, kind, kind))
			return
		}
	}
	s.Type = rw.expr(s.Type)
}

// syncKind returns "Mutex", "RWMutex" or "WaitGroup" when e is a
// direct reference to that sync type, else "".
func (rw *fileRewriter) syncKind(e ast.Expr) string {
	se, ok := unparen(e).(*ast.SelectorExpr)
	if !ok || rw.syncName == "" {
		return ""
	}
	x, ok := se.X.(*ast.Ident)
	if !ok || x.Name != rw.syncName {
		return ""
	}
	if obj := objOf(rw.pkg, x); obj != nil {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			return "" // locally shadowed
		}
	}
	switch se.Sel.Name {
	case "Mutex", "RWMutex", "WaitGroup":
		return se.Sel.Name
	}
	return ""
}

// collectPkgLocks records top-level lock declarations for the
// generated init() that names them in analysis tables.
func (rw *fileRewriter) collectPkgLocks(s *ast.ValueSpec) {
	kind := ""
	if s.Type != nil {
		kind = rw.syncKind(s.Type)
	} else if len(s.Values) == len(s.Names) {
		// var mu = sync.Mutex{} style
		for _, v := range s.Values {
			if cl, ok := unparen(v).(*ast.CompositeLit); ok {
				kind = rw.syncKind(cl.Type)
			}
		}
	}
	if kind == "" {
		return
	}
	for _, n := range s.Names {
		if n.Name != "_" {
			rw.pkgLocks = append(rw.pkgLocks, n.Name)
		}
	}
}

// appendSetNameInit appends `func init() { mu.SetName("pkg.mu"); … }`
// so package-level locks report under their declared names.
func (rw *fileRewriter) appendSetNameInit() {
	var body []ast.Stmt
	for _, name := range rw.pkgLocks {
		body = append(body, exprStmt(call(
			sel(ident(name), "SetName"),
			strLit(rw.file.AST.Name.Name+"."+name),
		)))
	}
	rw.file.AST.Decls = append(rw.file.AST.Decls, &ast.FuncDecl{
		Name: ident("init"),
		Type: &ast.FuncType{Params: &ast.FieldList{}},
		Body: &ast.BlockStmt{List: body},
	})
	rw.changed = true
}

// wrapMain turns func main's body into clrt.Main(func() { … }) so the
// trace is flushed when the program exits.
func (rw *fileRewriter) wrapMain(fd *ast.FuncDecl) {
	inner := &ast.FuncLit{
		Type: &ast.FuncType{Params: &ast.FieldList{}},
		Body: &ast.BlockStmt{List: fd.Body.List},
	}
	fd.Body = &ast.BlockStmt{
		List: []ast.Stmt{exprStmt(call(rw.clrtSel("Main"), inner))},
	}
}

func (rw *fileRewriter) funcType(ft *ast.FuncType) {
	rw.fieldList(ft.TypeParams)
	rw.fieldList(ft.Params)
	rw.fieldList(ft.Results)
}

func (rw *fileRewriter) fieldList(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		if f.Type != nil {
			f.Type = rw.expr(f.Type)
		}
	}
}

// ---- statements ----

// stmtList rewrites a statement slice; individual statements may
// expand to several (temporaries are spliced in, not wrapped in
// blocks, so labeled statements keep working).
func (rw *fileRewriter) stmtList(list []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range list {
		out = append(out, rw.stmt(s)...)
	}
	return out
}

// stmt rewrites one statement into its replacement sequence. By
// convention the original statement's role is taken by the LAST
// element, so labels can re-attach to it.
func (rw *fileRewriter) stmt(s ast.Stmt) []ast.Stmt {
	switch v := s.(type) {
	case *ast.GoStmt:
		return rw.goStmt(v)
	case *ast.SelectStmt:
		return rw.selectStmt(v)
	case *ast.RangeStmt:
		return rw.rangeStmt(v)
	case *ast.SendStmt:
		return rw.sendStmt(v)
	case *ast.LabeledStmt:
		inner := rw.stmt(v.Stmt)
		v.Stmt = inner[len(inner)-1]
		return append(inner[:len(inner)-1:len(inner)-1], v)
	case *ast.DeclStmt:
		return rw.declStmt(v)
	case *ast.ExprStmt:
		v.X = rw.expr(v.X)
		return []ast.Stmt{v}
	case *ast.IncDecStmt:
		v.X = rw.expr(v.X)
		return []ast.Stmt{v}
	case *ast.AssignStmt:
		return rw.assignStmt(v)
	case *ast.DeferStmt:
		v.Call = rw.expr(v.Call).(*ast.CallExpr)
		return []ast.Stmt{v}
	case *ast.ReturnStmt:
		for i := range v.Results {
			v.Results[i] = rw.expr(v.Results[i])
		}
		return []ast.Stmt{v}
	case *ast.BlockStmt:
		v.List = rw.stmtList(v.List)
		return []ast.Stmt{v}
	case *ast.IfStmt:
		rw.simpleStmt(&v.Init)
		v.Cond = rw.expr(v.Cond)
		v.Body.List = rw.stmtList(v.Body.List)
		if v.Else != nil {
			el := rw.stmt(v.Else)
			v.Else = el[len(el)-1] // else is always a block or if: 1:1
		}
		return []ast.Stmt{v}
	case *ast.SwitchStmt:
		rw.simpleStmt(&v.Init)
		if v.Tag != nil {
			v.Tag = rw.expr(v.Tag)
		}
		v.Body.List = rw.stmtList(v.Body.List)
		return []ast.Stmt{v}
	case *ast.TypeSwitchStmt:
		rw.simpleStmt(&v.Init)
		rw.simpleStmt(&v.Assign)
		v.Body.List = rw.stmtList(v.Body.List)
		return []ast.Stmt{v}
	case *ast.CaseClause:
		for i := range v.List {
			v.List[i] = rw.expr(v.List[i])
		}
		v.Body = rw.stmtList(v.Body)
		return []ast.Stmt{v}
	case *ast.CommClause: // reached only inside un-rewritten selects
		if v.Comm != nil {
			rw.simpleStmt(&v.Comm)
		}
		v.Body = rw.stmtList(v.Body)
		return []ast.Stmt{v}
	case *ast.ForStmt:
		rw.simpleStmt(&v.Init)
		if v.Cond != nil {
			v.Cond = rw.expr(v.Cond)
		}
		rw.simpleStmt(&v.Post)
		v.Body.List = rw.stmtList(v.Body.List)
		return []ast.Stmt{v}
	default:
		return []ast.Stmt{s}
	}
}

// simpleStmt rewrites a grammar slot that holds at most one simple
// statement (if/for/switch init, comm clauses). The rewrites that
// expand cannot appear there.
func (rw *fileRewriter) simpleStmt(sp *ast.Stmt) {
	if *sp == nil {
		return
	}
	out := rw.stmt(*sp)
	*sp = out[len(out)-1]
}

// declStmt rewrites a local declaration and injects SetName calls
// after local lock declarations.
func (rw *fileRewriter) declStmt(v *ast.DeclStmt) []ast.Stmt {
	gd, ok := v.Decl.(*ast.GenDecl)
	if !ok {
		return []ast.Stmt{v}
	}
	var named []string
	for _, spec := range gd.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			if kind := ""; s.Type != nil {
				kind = rw.syncKind(s.Type)
				if kind != "" && len(s.Values) == 0 {
					for _, n := range s.Names {
						if n.Name != "_" {
							named = append(named, n.Name)
						}
					}
				}
			}
			if s.Type != nil {
				s.Type = rw.expr(s.Type)
			}
			for i := range s.Values {
				s.Values[i] = rw.expr(s.Values[i])
			}
		case *ast.TypeSpec:
			rw.typeSpec(s)
		}
	}
	out := []ast.Stmt{v}
	for _, name := range named {
		out = append(out, exprStmt(call(
			sel(ident(name), "SetName"),
			strLit(rw.file.AST.Name.Name+"."+rw.fn+"."+name),
		)))
		rw.changed = true
	}
	if len(out) > 1 {
		// Keep the declaration last-stmt convention irrelevant here
		// (declarations take no labels in practice), but preserve
		// ordering: decl first, then SetName calls.
		return out
	}
	return out
}

// goStmt rewrites `go f(args)` into eager bindings plus clrt.Go. The
// function expression and every non-constant argument are evaluated
// at the statement, exactly as the go statement would.
func (rw *fileRewriter) goStmt(g *ast.GoStmt) []ast.Stmt {
	name := goroutineName(g.Call) + "@" + rw.posOf(g)

	// Record constness from the original expressions before rewriting.
	constArg := make([]bool, len(g.Call.Args))
	for i, a := range g.Call.Args {
		constArg[i] = isConstExpr(rw.pkg, a)
	}
	callee := rw.expr(g.Call.Fun)
	args := make([]ast.Expr, len(g.Call.Args))
	for i, a := range g.Call.Args {
		args[i] = rw.expr(a)
	}

	// go func(){ … }() with no arguments: pass the literal directly.
	if lit, ok := callee.(*ast.FuncLit); ok && len(args) == 0 {
		return []ast.Stmt{exprStmt(call(rw.clrtSel("Go"), strLit(name), lit))}
	}

	var binds []ast.Stmt
	var fun ast.Expr
	if id, ok := unparen(callee).(*ast.Ident); ok && isBuiltin(rw.pkg, id, id.Name) && universeBuiltin(id.Name) {
		fun = callee // builtins cannot be bound to a variable
	} else {
		fname := rw.temp("F")
		binds = append(binds, define(fname, callee))
		fun = ident(fname)
	}
	inner := make([]ast.Expr, len(args))
	for i, a := range args {
		if constArg[i] {
			inner[i] = a
			continue
		}
		aname := rw.temp("A")
		binds = append(binds, define(aname, a))
		inner[i] = ident(aname)
	}
	innerCall := &ast.CallExpr{Fun: fun, Args: inner}
	if g.Call.Ellipsis != token.NoPos {
		innerCall.Ellipsis = 1 // any non-NoPos position renders "..."
	}
	body := &ast.FuncLit{
		Type: &ast.FuncType{Params: &ast.FieldList{}},
		Body: &ast.BlockStmt{List: []ast.Stmt{exprStmt(innerCall)}},
	}
	return append(binds, exprStmt(call(rw.clrtSel("Go"), strLit(name), body)))
}

func universeBuiltin(name string) bool {
	switch name {
	case "append", "cap", "close", "complex", "copy", "delete", "imag",
		"len", "make", "new", "panic", "print", "println", "real", "recover",
		"min", "max", "clear":
		return true
	}
	return false
}

// goroutineName derives a display name for a spawned thread from the
// call it runs.
func goroutineName(c *ast.CallExpr) string {
	switch f := unparen(c.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	default:
		return "func"
	}
}

// ---- expressions ----

func (rw *fileRewriter) exprList(list []ast.Expr) {
	for i := range list {
		list[i] = rw.expr(list[i])
	}
}

// expr rewrites an expression tree, returning the replacement.
func (rw *fileRewriter) expr(e ast.Expr) ast.Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case *ast.Ident, *ast.BasicLit, *ast.BadExpr:
		return e

	case *ast.SelectorExpr:
		if kind := rw.syncKind(v); kind != "" {
			return rw.clrtSel(kind)
		}
		if rw.syncName != "" {
			if x, ok := v.X.(*ast.Ident); ok && x.Name == rw.syncName &&
				(v.Sel.Name == "Cond" || v.Sel.Name == "NewCond") {
				rw.report(v, "sync.Cond",
					"sync.Cond has no traced counterpart; if it guards a rewritten mutex the copy will not compile — keep that mutex out of the instrumented patterns")
			}
		}
		v.X = rw.expr(v.X)
		return v

	case *ast.CallExpr:
		return rw.callExpr(v)

	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			return rw.recvExpr(v)
		}
		v.X = rw.expr(v.X)
		return v

	case *ast.BinaryExpr:
		if r := rw.nilCompare(v); r != nil {
			return r
		}
		v.X = rw.expr(v.X)
		v.Y = rw.expr(v.Y)
		return v

	case *ast.ParenExpr:
		v.X = rw.expr(v.X)
		return v
	case *ast.StarExpr:
		v.X = rw.expr(v.X)
		return v
	case *ast.IndexExpr:
		v.X = rw.expr(v.X)
		v.Index = rw.expr(v.Index)
		return v
	case *ast.IndexListExpr:
		v.X = rw.expr(v.X)
		rw.exprList(v.Indices)
		return v
	case *ast.SliceExpr:
		v.X = rw.expr(v.X)
		v.Low = rw.expr(v.Low)
		v.High = rw.expr(v.High)
		v.Max = rw.expr(v.Max)
		return v
	case *ast.TypeAssertExpr:
		v.X = rw.expr(v.X)
		if v.Type != nil {
			v.Type = rw.expr(v.Type)
		}
		return v
	case *ast.KeyValueExpr:
		v.Key = rw.expr(v.Key)
		v.Value = rw.expr(v.Value)
		return v
	case *ast.CompositeLit:
		if v.Type != nil {
			v.Type = rw.expr(v.Type)
		}
		rw.exprList(v.Elts)
		return v
	case *ast.FuncLit:
		prev := rw.fn
		if rw.fn == "" {
			rw.fn = "func"
		}
		rw.funcType(v.Type)
		v.Body.List = rw.stmtList(v.Body.List)
		rw.fn = prev
		return v
	case *ast.Ellipsis:
		if v.Elt != nil {
			v.Elt = rw.expr(v.Elt)
		}
		return v

	// Type expressions.
	case *ast.ChanType:
		if rw.ins.chansOn {
			elem := rw.expr(v.Value)
			rw.changed = true
			return &ast.IndexExpr{X: rw.clrtSel("Chan"), Index: elem}
		}
		v.Value = rw.expr(v.Value)
		return v
	case *ast.ArrayType:
		if v.Len != nil {
			v.Len = rw.expr(v.Len)
		}
		v.Elt = rw.expr(v.Elt)
		return v
	case *ast.MapType:
		v.Key = rw.expr(v.Key)
		v.Value = rw.expr(v.Value)
		return v
	case *ast.StructType:
		rw.fieldList(v.Fields)
		return v
	case *ast.InterfaceType:
		rw.fieldList(v.Methods)
		return v
	case *ast.FuncType:
		rw.funcType(v)
		return v
	default:
		return e
	}
}

// callExpr handles the call-shaped rewrites: os.Exit, time.After,
// make(chan …), close/len/cap on instrumented channels, log.Fatal
// findings; everything else just recurses.
func (rw *fileRewriter) callExpr(c *ast.CallExpr) ast.Expr {
	// os.Exit → clrt.Exit (flushes the trace before exiting).
	if se, ok := unparen(c.Fun).(*ast.SelectorExpr); ok {
		if x, ok := se.X.(*ast.Ident); ok {
			if rw.osName != "" && x.Name == rw.osName && se.Sel.Name == "Exit" && rw.isPkgRef(x) {
				c.Fun = rw.clrtSel("Exit")
				rw.exprList(c.Args)
				return c
			}
			if rw.logName != "" && x.Name == rw.logName && rw.isPkgRef(x) {
				switch se.Sel.Name {
				case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
					rw.report(c, "log."+se.Sel.Name,
						"exits/panics through the log package without flushing the trace; on this path the recording is lost")
				}
			}
			if rw.ins.chansOn && rw.timeName != "" && x.Name == rw.timeName && se.Sel.Name == "After" && rw.isPkgRef(x) {
				c.Fun = rw.clrtSel("After")
				rw.exprList(c.Args)
				return c
			}
		}
	}
	// make(chan T, n) → clrt.MakeChan[T](name, n)
	if rw.ins.chansOn && isBuiltin(rw.pkg, c.Fun, "make") && len(c.Args) >= 1 {
		if ct, ok := unparen(c.Args[0]).(*ast.ChanType); ok {
			elem := rw.expr(ct.Value)
			capacity := ast.Expr(intLit(0))
			if len(c.Args) >= 2 {
				capacity = rw.expr(c.Args[1])
			}
			name := "chan@" + rw.posOf(c)
			return call(
				&ast.IndexExpr{X: rw.clrtSel("MakeChan"), Index: elem},
				strLit(name), capacity,
			)
		}
	}
	// close/len/cap on instrumented channels become method calls.
	if len(c.Args) == 1 {
		for _, b := range [...]struct{ builtin, method string }{
			{"close", "Close"}, {"len", "Len"}, {"cap", "Cap"},
		} {
			if isBuiltin(rw.pkg, c.Fun, b.builtin) && rw.chanClass(c.Args[0]) == clInstr {
				arg := rw.expr(c.Args[0])
				rw.changed = true
				return call(sel(arg, b.method))
			}
		}
	}
	c.Fun = rw.expr(c.Fun)
	rw.exprList(c.Args)
	return c
}

// isPkgRef reports whether the identifier (syntactically an import
// name) is not shadowed by a local declaration.
func (rw *fileRewriter) isPkgRef(x *ast.Ident) bool {
	if obj := objOf(rw.pkg, x); obj != nil {
		_, isPkg := obj.(*types.PkgName)
		return isPkg
	}
	return true
}

// ---- imports ----

// fixImports adds the clrt import and drops imports the rewrite
// orphaned (sync/os/time with no remaining references).
func (rw *fileRewriter) fixImports() {
	f := rw.file.AST
	for _, name := range [...]string{rw.syncName, rw.osName, rw.timeName} {
		if name != "" && !rw.selectorRemains(name) {
			removeImport(f, map[string]string{
				rw.syncName: "sync", rw.osName: "os", rw.timeName: "time",
			}[name])
		}
	}
	if rw.needClrt {
		addImport(f, rw.clrt, "critlock/clrt")
	}
}

// selectorRemains reports whether any `name.X` reference survives in
// the rewritten file.
func (rw *fileRewriter) selectorRemains(name string) bool {
	found := false
	ast.Inspect(rw.file.AST, func(n ast.Node) bool {
		if se, ok := n.(*ast.SelectorExpr); ok {
			if x, ok := se.X.(*ast.Ident); ok && x.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

func addImport(f *ast.File, alias, path string) {
	spec := &ast.ImportSpec{Path: strLit(path)}
	if alias != "" && alias != path[lastSlash(path)+1:] {
		spec.Name = ident(alias)
	}
	for _, d := range f.Decls {
		if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			gd.Specs = append(gd.Specs, spec)
			if gd.Lparen == token.NoPos && len(gd.Specs) > 1 {
				gd.Lparen = gd.TokPos // force parenthesized form
			}
			f.Imports = append(f.Imports, spec)
			return
		}
	}
	gd := &ast.GenDecl{Tok: token.IMPORT, Specs: []ast.Spec{spec}}
	f.Decls = append([]ast.Decl{gd}, f.Decls...)
	f.Imports = append(f.Imports, spec)
}

func removeImport(f *ast.File, path string) {
	quoted := strconv.Quote(path)
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		for i, s := range gd.Specs {
			if is, ok := s.(*ast.ImportSpec); ok && is.Path != nil && is.Path.Value == quoted {
				if is.Name != nil && (is.Name.Name == "_" || is.Name.Name == ".") {
					return // blank/dot imports are load-bearing; keep
				}
				gd.Specs = append(gd.Specs[:i], gd.Specs[i+1:]...)
				for j, imp := range f.Imports {
					if imp == is {
						f.Imports = append(f.Imports[:j], f.Imports[j+1:]...)
						break
					}
				}
				return
			}
		}
	}
}
