package instr

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"

	"critlock/internal/core"
	"critlock/internal/trace"
)

// repoRoot locates the critlock repository from this source file.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate source file")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestInstrumentExampleEndToEnd is the instr-smoke gate: instrument
// examples/instr (an ordinary sync+chan program with a planted hot
// lock), run the copy with `go run`, and assert the resulting trace's
// analysis ranks the planted lock first.
func TestInstrumentExampleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run; skipped in -short")
	}
	repo := repoRoot(t)
	tmp := t.TempDir()
	out := filepath.Join(tmp, "copy")

	res, err := Run(Options{
		Dir: filepath.Join(repo, "examples", "instr"),
		Out: out,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.ChannelsOn {
		t.Fatalf("channel instrumentation gated off; findings: %+v", res.Findings)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("unexpected findings: %+v", res.Findings)
	}
	if len(res.Rewritten) != 1 || res.Rewritten[0] != "main.go" {
		t.Fatalf("rewritten = %v, want [main.go]", res.Rewritten)
	}

	tracePath := filepath.Join(tmp, "trace.cltr")
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = out
	cmd.Env = append(os.Environ(),
		"CRITLOCK_OUT="+tracePath,
		"CRITLOCK_QUIET=1",
		"CRITLOCK_SEED=1",
	)
	if outb, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go run instrumented copy: %v\n%s", err, outb)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("instrumented run wrote no trace: %v", err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(an.Locks) == 0 {
		t.Fatal("analysis found no locks")
	}
	if got := an.Locks[0].Name; got != "main.statsMu" {
		t.Errorf("top lock by CP time = %s, want main.statsMu\n%+v", got, an.Locks)
	}
	var stats, config *core.LockStats
	for i := range an.Locks {
		switch an.Locks[i].Name {
		case "main.statsMu":
			stats = &an.Locks[i]
		case "main.configMu":
			config = &an.Locks[i]
		}
	}
	if stats == nil || config == nil {
		t.Fatalf("expected both planted locks in the table: %+v", an.Locks)
	}
	if stats.CPTimePct <= config.CPTimePct {
		t.Errorf("planted hot lock not dominant: statsMu %.2f%% vs configMu %.2f%%",
			stats.CPTimePct, config.CPTimePct)
	}
	if stats.TotalInvocations != 401 { // one per item, plus main's final read
		t.Errorf("statsMu TotalInvocations = %d, want 401", stats.TotalInvocations)
	}
	if got := an.Trace.NumThreads(); got != 5 {
		t.Errorf("NumThreads = %d, want 5 (main + 4 workers)", got)
	}
}
