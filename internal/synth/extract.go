package synth

import (
	"fmt"
	"math"
	"sort"

	"critlock/internal/core"
)

// FromAnalysis extracts a declarative workload model from an analyzed
// trace: per-lock hold means, invocation rates (as per-iteration
// probabilities) and the average compute between lock operations. The
// extracted model is a statistical caricature — it preserves the
// *rates and sizes* that drive contention, not the exact dependency
// structure (barrier episodes and condvar handoffs are not inferred) —
// which is exactly what's needed to re-create a bottleneck in a
// sandbox, tweak it, and re-measure.
func FromAnalysis(an *core.Analysis) (*Config, error) {
	tr := an.Trace
	if tr == nil || an.Totals.Threads == 0 {
		return nil, fmt.Errorf("synth: empty analysis")
	}
	workers := an.Totals.Threads - 1 // by convention the root only forks/joins
	if workers < 1 {
		workers = 1
	}

	name := tr.Meta["workload"]
	if name == "" {
		name = "extracted"
	}

	// Locks with traffic, busiest first so the generated file reads
	// sensibly.
	locks := make([]core.LockStats, 0, len(an.Locks))
	for _, l := range an.Locks {
		if l.TotalInvocations > 0 {
			locks = append(locks, l)
		}
	}
	sort.Slice(locks, func(i, j int) bool {
		return locks[i].TotalInvocations > locks[j].TotalInvocations
	})
	if len(locks) == 0 {
		return nil, fmt.Errorf("synth: trace has no lock activity to model")
	}

	// Iterations: the busiest lock's per-thread invocation count (so
	// its step runs with probability ≈ 1 each iteration).
	iterations := int(math.Round(float64(locks[0].TotalInvocations) / float64(workers)))
	if iterations < 1 {
		iterations = 1
	}
	if iterations > 100000 {
		iterations = 100000
	}

	cfg := &Config{
		Name:    name + "-model",
		Threads: workers,
		Phases:  []Phase{{Name: "extracted", Iterations: iterations}},
	}

	// Average compute between iterations: per-thread non-lock time.
	var lifetime, waits, holds int64
	for _, ts := range an.Threads {
		lifetime += int64(ts.Lifetime)
		waits += int64(ts.LockWait + ts.BarrierWait + ts.CondWait + ts.JoinWait)
		holds += int64(ts.LockHold)
	}
	computePerIter := (lifetime - waits - holds) / int64(an.Totals.Threads) / int64(iterations)
	if computePerIter < 1 {
		computePerIter = 1
	}

	steps := []Step{{Compute: computePerIter}}
	for _, l := range locks {
		invPerIter := float64(l.TotalInvocations) / float64(workers) / float64(iterations)
		hold := int64(0)
		if l.TotalInvocations > 0 {
			hold = int64(l.TotalHold) / int64(l.TotalInvocations)
		}
		if hold < 1 {
			hold = 1
		}
		shared := l.SharedInvocations*2 > l.TotalInvocations
		for invPerIter > 0 {
			st := Step{Lock: l.Name, Hold: hold, Shared: shared}
			if invPerIter < 0.995 {
				st.Prob = math.Round(invPerIter*100) / 100
				if st.Prob <= 0 {
					break
				}
				invPerIter = 0
			} else {
				invPerIter -= 1
			}
			steps = append(steps, st)
			if len(steps) > 64 {
				break // cap pathological step counts
			}
		}
		cfg.Locks = append(cfg.Locks, l.Name)
	}
	cfg.Phases[0].Steps = steps
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("synth: extracted model invalid: %w", err)
	}
	return cfg, nil
}
