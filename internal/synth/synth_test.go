package synth

import (
	"strings"
	"testing"

	"critlock/internal/core"
	"critlock/internal/sim"
	"critlock/internal/workloads"
)

const microJSON = `{
  "name": "micro-dsl",
  "threads": 4,
  "locks": ["L1", "L2"],
  "phases": [{
    "iterations": 1,
    "steps": [
      {"lock": "L1", "hold": 2000000},
      {"lock": "L2", "hold": 2500000}
    ]
  }]
}`

// TestMicroFromJSON: the DSL reproduces the paper's micro-benchmark
// identification result. Holds here are jittered (±50%), so the CP
// shares land near — not exactly on — 16.67/83.33.
func TestMicroFromJSON(t *testing.T) {
	cfg, err := Load(strings.NewReader(microJSON))
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{Contexts: 8, Seed: 1})
	tr, elapsed, err := workloads.Run(s, cfg.Spec(), workloads.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no time elapsed")
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := an.Lock("L1"), an.Lock("L2")
	if l1 == nil || l2 == nil {
		t.Fatal("locks missing")
	}
	if l2.CPTimePct <= l1.CPTimePct {
		t.Errorf("L2 CP (%.2f%%) not above L1 (%.2f%%)", l2.CPTimePct, l1.CPTimePct)
	}
	if l1.WaitTimePct <= l2.WaitTimePct {
		t.Errorf("L1 wait (%.2f%%) not above L2 (%.2f%%)", l1.WaitTimePct, l2.WaitTimePct)
	}
	if tr.Meta["workload"] != "micro-dsl" {
		t.Errorf("meta workload = %q", tr.Meta["workload"])
	}
}

func TestSynthBarriersAndShared(t *testing.T) {
	in := `{
	  "name": "phased",
	  "threads": 6,
	  "locks": ["stats", "cache"],
	  "barriers": [{"name": "step"}],
	  "phases": [{
	    "iterations": 4,
	    "steps": [
	      {"compute": 5000},
	      {"lock": "cache", "hold": 100, "shared": true},
	      {"lock": "stats", "hold": 50, "prob": 0.5},
	      {"barrier": "step"}
	    ]
	  }]
	}`
	cfg, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{Contexts: 8, Seed: 3})
	tr, _, err := workloads.Run(s, cfg.Spec(), workloads.Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	cache := an.Lock("cache")
	if cache == nil || cache.SharedInvocations != cache.TotalInvocations {
		t.Errorf("cache: %+v, want all shared", cache)
	}
	if cache.TotalInvocations != 24 {
		t.Errorf("cache invocations = %d, want 24", cache.TotalInvocations)
	}
	stats := an.Lock("stats")
	if stats.TotalInvocations == 0 || stats.TotalInvocations == 24 {
		t.Errorf("stats invocations = %d, want probabilistic (0 < n < 24)", stats.TotalInvocations)
	}
	if an.Totals.TotalBarrierWait == 0 {
		t.Error("no barrier waits recorded")
	}
}

func TestSynthDeterminism(t *testing.T) {
	run := func() int64 {
		cfg, err := Load(strings.NewReader(microJSON))
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New(sim.Config{Contexts: 8, Seed: 9})
		_, elapsed, err := workloads.Run(s, cfg.Spec(), workloads.Params{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return int64(elapsed)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}

func TestLoadRejectsBadConfigs(t *testing.T) {
	cases := map[string]string{
		"no name":          `{"threads": 2, "phases": [{"steps": [{"compute": 1}]}]}`,
		"no phases":        `{"name": "x", "threads": 2}`,
		"empty phase":      `{"name": "x", "phases": [{"steps": []}]}`,
		"unknown lock":     `{"name": "x", "phases": [{"steps": [{"lock": "nope", "hold": 1}]}]}`,
		"unknown barrier":  `{"name": "x", "phases": [{"steps": [{"barrier": "nope"}]}]}`,
		"two actions":      `{"name": "x", "locks": ["a"], "phases": [{"steps": [{"compute": 1, "lock": "a"}]}]}`,
		"no action":        `{"name": "x", "phases": [{"steps": [{"prob": 0.5}]}]}`,
		"hold sans lock":   `{"name": "x", "phases": [{"steps": [{"compute": 1, "hold": 5}]}]}`,
		"bad prob":         `{"name": "x", "phases": [{"steps": [{"compute": 1, "prob": 2}]}]}`,
		"negative compute": `{"name": "x", "phases": [{"steps": [{"compute": -5}]}]}`,
		"duplicate lock":   `{"name": "x", "locks": ["a", "a"], "phases": [{"steps": [{"compute": 1}]}]}`,
		"unknown field":    `{"name": "x", "bogus": 1, "phases": [{"steps": [{"compute": 1}]}]}`,
		"negative threads": `{"name": "x", "threads": -1, "phases": [{"steps": [{"compute": 1}]}]}`,
	}
	for label, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %s", label, in)
		}
	}
}
