// Package synth builds workloads from declarative JSON descriptions,
// so an application's lock structure can be modelled and analyzed
// without writing Go. A description names the locks, barriers and
// condition-free phase structure; each worker thread executes the
// phases in order, each phase being a list of weighted steps (compute,
// lock/hold, shared lock, barrier).
//
// Example (the paper's micro-benchmark):
//
//	{
//	  "name": "micro",
//	  "threads": 4,
//	  "locks": ["L1", "L2"],
//	  "phases": [{
//	    "iterations": 1,
//	    "steps": [
//	      {"lock": "L1", "hold": 2000000},
//	      {"lock": "L2", "hold": 2500000}
//	    ]
//	  }]
//	}
//
// Compute and hold durations are mean nanoseconds, jittered ±50% with
// the workload's deterministic per-thread RNG. A step with "prob" set
// executes with that probability per iteration.
package synth

import (
	"encoding/json"
	"fmt"
	"io"

	"critlock/internal/harness"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// Config is a declarative workload description.
type Config struct {
	// Name labels the workload in traces and reports.
	Name string `json:"name"`
	// Threads is the default worker count (overridable by Params).
	Threads int `json:"threads"`
	// Locks declares the mutex names steps may reference.
	Locks []string `json:"locks,omitempty"`
	// Barriers declares barriers; parties 0 means "all workers".
	Barriers []BarrierDef `json:"barriers,omitempty"`
	// Phases run in order on every worker.
	Phases []Phase `json:"phases"`
}

// BarrierDef declares one barrier.
type BarrierDef struct {
	Name string `json:"name"`
	// Parties is the arrival count; 0 means every worker thread.
	Parties int `json:"parties,omitempty"`
}

// Phase is a repeated step sequence.
type Phase struct {
	// Name is optional, for readability.
	Name string `json:"name,omitempty"`
	// Iterations of the step list per thread (default 1).
	Iterations int `json:"iterations,omitempty"`
	// Steps run in order each iteration.
	Steps []Step `json:"steps"`
}

// Step is one action. Exactly one of Compute, Lock or Barrier must be
// set.
type Step struct {
	// Compute burns this many mean nanoseconds.
	Compute int64 `json:"compute,omitempty"`
	// Lock takes the named mutex for Hold mean nanoseconds.
	Lock string `json:"lock,omitempty"`
	Hold int64  `json:"hold,omitempty"`
	// Shared takes the lock in reader mode.
	Shared bool `json:"shared,omitempty"`
	// Barrier waits at the named barrier.
	Barrier string `json:"barrier,omitempty"`
	// Prob executes the step with this probability (default 1).
	Prob float64 `json:"prob,omitempty"`
}

// Load parses and validates a JSON description.
func Load(r io.Reader) (*Config, error) {
	var cfg Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("synth: parsing: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate checks structural consistency.
func (cfg *Config) Validate() error {
	if cfg.Name == "" {
		return fmt.Errorf("synth: missing workload name")
	}
	if cfg.Threads < 0 {
		return fmt.Errorf("synth: negative thread count")
	}
	if len(cfg.Phases) == 0 {
		return fmt.Errorf("synth: workload %q has no phases", cfg.Name)
	}
	locks := map[string]bool{}
	for _, l := range cfg.Locks {
		if l == "" {
			return fmt.Errorf("synth: empty lock name")
		}
		if locks[l] {
			return fmt.Errorf("synth: duplicate lock %q", l)
		}
		locks[l] = true
	}
	barriers := map[string]bool{}
	for _, b := range cfg.Barriers {
		if b.Name == "" {
			return fmt.Errorf("synth: empty barrier name")
		}
		if barriers[b.Name] {
			return fmt.Errorf("synth: duplicate barrier %q", b.Name)
		}
		if b.Parties < 0 {
			return fmt.Errorf("synth: barrier %q has negative parties", b.Name)
		}
		barriers[b.Name] = true
	}
	for pi, ph := range cfg.Phases {
		if len(ph.Steps) == 0 {
			return fmt.Errorf("synth: phase %d has no steps", pi)
		}
		if ph.Iterations < 0 {
			return fmt.Errorf("synth: phase %d has negative iterations", pi)
		}
		for si, st := range ph.Steps {
			set := 0
			if st.Compute != 0 {
				set++
			}
			if st.Lock != "" {
				set++
			}
			if st.Barrier != "" {
				set++
			}
			if set != 1 {
				return fmt.Errorf("synth: phase %d step %d must set exactly one of compute/lock/barrier", pi, si)
			}
			if st.Compute < 0 || st.Hold < 0 {
				return fmt.Errorf("synth: phase %d step %d has negative duration", pi, si)
			}
			if st.Lock != "" && !locks[st.Lock] {
				return fmt.Errorf("synth: phase %d step %d references undeclared lock %q", pi, si, st.Lock)
			}
			if st.Lock == "" && (st.Hold != 0 || st.Shared) {
				return fmt.Errorf("synth: phase %d step %d sets hold/shared without a lock", pi, si)
			}
			if st.Barrier != "" && !barriers[st.Barrier] {
				return fmt.Errorf("synth: phase %d step %d references undeclared barrier %q", pi, si, st.Barrier)
			}
			if st.Prob < 0 || st.Prob > 1 {
				return fmt.Errorf("synth: phase %d step %d probability %v out of [0,1]", pi, si, st.Prob)
			}
		}
	}
	return nil
}

// Spec adapts the description to the workload registry interface so it
// runs exactly like the built-in models.
func (cfg *Config) Spec() workloads.Spec {
	return workloads.Spec{
		Name:           cfg.Name,
		Desc:           "declarative synthetic workload",
		Paper:          "user-defined (synth DSL)",
		DefaultThreads: max(1, cfg.Threads),
		Build:          cfg.build,
	}
}

func (cfg *Config) build(rt harness.Runtime, p workloads.Params) func(harness.Proc) {
	threads := p.Threads
	if threads <= 0 {
		threads = max(1, cfg.Threads)
	}
	mutexes := map[string]harness.Mutex{}
	for _, name := range cfg.Locks {
		mutexes[name] = rt.NewMutex(name)
	}
	barriers := map[string]harness.Barrier{}
	for _, b := range cfg.Barriers {
		parties := b.Parties
		if parties == 0 {
			parties = threads
		}
		barriers[b.Name] = rt.NewBarrier(b.Name, parties)
	}

	jitter := func(q harness.Proc, mean int64) trace.Time {
		if mean <= 1 {
			return trace.Time(mean)
		}
		return trace.Time(mean/2 + q.Rand().Int63n(mean))
	}

	worker := func(q harness.Proc, _ int) {
		for _, ph := range cfg.Phases {
			iters := ph.Iterations
			if iters == 0 {
				iters = 1
			}
			for it := 0; it < iters; it++ {
				for _, st := range ph.Steps {
					if st.Prob > 0 && st.Prob < 1 && q.Rand().Float64() >= st.Prob {
						continue
					}
					switch {
					case st.Compute != 0:
						q.Compute(jitter(q, st.Compute))
					case st.Lock != "":
						m := mutexes[st.Lock]
						if st.Shared {
							q.RLock(m)
							q.Compute(jitter(q, st.Hold))
							q.RUnlock(m)
						} else {
							q.Lock(m)
							q.Compute(jitter(q, st.Hold))
							q.Unlock(m)
						}
					case st.Barrier != "":
						q.BarrierWait(barriers[st.Barrier])
					}
				}
			}
		}
	}

	return func(main harness.Proc) {
		kids := make([]harness.Thread, 0, threads)
		for i := 0; i < threads; i++ {
			i := i
			kids = append(kids, main.Go(fmt.Sprintf("%s-%d", cfg.Name, i), func(q harness.Proc) {
				worker(q, i)
			}))
		}
		for _, k := range kids {
			main.Join(k)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
