package synth

import (
	"fmt"

	"critlock/internal/core"
	"critlock/internal/par"
	"critlock/internal/sim"
	"critlock/internal/trace"
	"critlock/internal/workloads"
)

// SweepSpec describes a what-if study over a declarative model — the
// paper's evaluation methodology (thread sweeps like Fig. 9,
// optimization factors like Fig. 6/12) generalized to user models.
type SweepSpec struct {
	// Threads lists worker counts to run (empty = the model's own).
	Threads []int
	// ShrinkLock optionally names a lock whose hold times are scaled
	// by each factor in Factors (1.0 = unchanged, 0.5 = halved) — the
	// "same amount of optimization effort" experiment.
	ShrinkLock string
	// Factors are the hold-scale factors (empty with ShrinkLock set
	// means {1.0, 0.5}).
	Factors []float64
	// Contexts is the simulated hardware size (0 = 24).
	Contexts int
	// Seed drives the deterministic runs (0 = 1).
	Seed int64
	// Parallelism bounds concurrent simulations of the sweep grid
	// (0 or 1 = serial). Every cell is an independent deterministic
	// run, so rows are identical at any parallelism.
	Parallelism int
}

// SweepRow is one (threads, factor) cell of the study.
type SweepRow struct {
	Threads int
	Factor  float64
	// Completion is the virtual completion time.
	Completion trace.Time
	// Speedup is relative to the first row with the same factor
	// (thread-scaling view) — 0 until computed by Sweep.
	Speedup float64
	// TopLock and TopCPPct identify the critical lock of the cell.
	TopLock  string
	TopCPPct float64
}

// Sweep runs the study. Rows are ordered factor-major, threads-minor;
// speedups are normalized to each factor's smallest thread count.
func Sweep(cfg *Config, spec SweepSpec) ([]SweepRow, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	threads := spec.Threads
	if len(threads) == 0 {
		threads = []int{cfg.Threads}
	}
	factors := spec.Factors
	if len(factors) == 0 {
		if spec.ShrinkLock != "" {
			factors = []float64{1.0, 0.5}
		} else {
			factors = []float64{1.0}
		}
	}
	if spec.ShrinkLock != "" {
		found := false
		for _, l := range cfg.Locks {
			if l == spec.ShrinkLock {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("synth: sweep shrinks unknown lock %q", spec.ShrinkLock)
		}
	}
	contexts := spec.Contexts
	if contexts == 0 {
		contexts = 24
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}

	// Materialize the (factor, thread) grid, factor-major, and derive
	// each factor's config variant once up front.
	variants := make([]*Config, len(factors))
	for fi, f := range factors {
		variants[fi] = cfg
		if spec.ShrinkLock != "" && f != 1.0 {
			variants[fi] = shrinkLock(cfg, spec.ShrinkLock, f)
		}
	}
	rows := make([]SweepRow, len(factors)*len(threads))
	errs := make([]error, len(rows))

	// Every cell is an independent simulation+analysis: fan out on a
	// bounded worker pool, write results by cell index, normalize
	// speedups serially afterwards — row order and contents never
	// depend on completion order.
	par.ForEach(len(rows), spec.Parallelism, func(cell int) {
		fi, ti := cell/len(threads), cell%len(threads)
		f, n := factors[fi], threads[ti]
		s := sim.New(sim.Config{Contexts: contexts, Seed: seed})
		tr, elapsed, err := workloads.Run(s, variants[fi].Spec(), workloads.Params{Threads: n, Seed: seed})
		if err != nil {
			errs[cell] = fmt.Errorf("synth: sweep threads=%d factor=%v: %w", n, f, err)
			return
		}
		an, err := core.AnalyzeDefault(tr)
		if err != nil {
			errs[cell] = err
			return
		}
		row := SweepRow{Threads: n, Factor: f, Completion: elapsed}
		if len(an.Locks) > 0 {
			row.TopLock = an.Locks[0].Name
			row.TopCPPct = an.Locks[0].CPTimePct
		}
		rows[cell] = row
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	// Speedups are relative to each factor's first thread count.
	for fi := range factors {
		base := rows[fi*len(threads)].Completion
		for ti := range threads {
			row := &rows[fi*len(threads)+ti]
			if row.Completion > 0 {
				row.Speedup = float64(base) / float64(row.Completion)
			}
		}
	}
	return rows, nil
}

// shrinkLock deep-copies cfg with the named lock's holds scaled.
func shrinkLock(cfg *Config, lock string, factor float64) *Config {
	out := *cfg
	out.Locks = append([]string(nil), cfg.Locks...)
	out.Barriers = append([]BarrierDef(nil), cfg.Barriers...)
	out.Phases = make([]Phase, len(cfg.Phases))
	for pi, ph := range cfg.Phases {
		np := ph
		np.Steps = make([]Step, len(ph.Steps))
		for si, st := range ph.Steps {
			if st.Lock == lock {
				st.Hold = int64(float64(st.Hold) * factor)
				if st.Hold < 1 {
					st.Hold = 1
				}
			}
			np.Steps[si] = st
		}
		out.Phases[pi] = np
	}
	return &out
}
