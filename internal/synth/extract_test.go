package synth

import (
	"bytes"
	"encoding/json"
	"testing"

	"critlock/internal/core"
	"critlock/internal/sim"
	"critlock/internal/workloads"
)

func analyzeWorkload(t *testing.T, name string, threads int) *core.Analysis {
	t.Helper()
	spec, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{Contexts: 24, Seed: 1})
	tr, _, err := workloads.Run(s, spec, workloads.Params{Threads: threads, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// TestExtractMicroRoundTrip: extract a model from the micro-benchmark
// trace, re-run the model, and the identification result must
// survive: L2 tops CP Time, L1 tops Wait Time.
func TestExtractMicroRoundTrip(t *testing.T) {
	an := analyzeWorkload(t, "micro", 4)
	cfg, err := FromAnalysis(an)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Threads != 4 {
		t.Errorf("extracted threads = %d, want 4", cfg.Threads)
	}
	if len(cfg.Locks) != 2 {
		t.Fatalf("extracted locks = %v, want L1+L2", cfg.Locks)
	}

	// The model must serialize to valid JSON and load back.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(cfg); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("extracted model does not reload: %v", err)
	}

	s := sim.New(sim.Config{Contexts: 24, Seed: 2})
	tr, _, err := workloads.Run(s, reloaded.Spec(), workloads.Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	an2, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := an2.Lock("L1"), an2.Lock("L2")
	if l1 == nil || l2 == nil {
		t.Fatal("locks missing from model run")
	}
	if l2.CPTimePct <= l1.CPTimePct {
		t.Errorf("model lost the result: L2 %.2f%% vs L1 %.2f%%", l2.CPTimePct, l1.CPTimePct)
	}
}

// TestExtractRadiosity: the extracted model of the 24-thread radiosity
// run must keep tq[0].qlock as a (near-)dominant lock.
func TestExtractRadiosity(t *testing.T) {
	an := analyzeWorkload(t, "radiosity", 24)
	cfg, err := FromAnalysis(an)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sim.Config{Contexts: 24, Seed: 5})
	tr, _, err := workloads.Run(s, cfg.Spec(), workloads.Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	an2, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	// tq[0].qlock must be among the top two locks of the model run.
	topNames := []string{an2.Locks[0].Name}
	if len(an2.Locks) > 1 {
		topNames = append(topNames, an2.Locks[1].Name)
	}
	found := false
	for _, n := range topNames {
		if n == "tq[0].qlock" {
			found = true
		}
	}
	if !found {
		t.Errorf("tq[0].qlock not among top locks of the extracted model: %v", topNames)
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := FromAnalysis(&core.Analysis{}); err == nil {
		t.Error("empty analysis accepted")
	}
}
