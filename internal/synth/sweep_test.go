package synth

import (
	"strings"
	"testing"
)

func loadMicro(t *testing.T) *Config {
	t.Helper()
	cfg, err := Load(strings.NewReader(microJSON))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestSweepThreads: the micro model's completion time grows with the
// thread count (the critical sections serialize), so "speedup" over
// threads is below 1 — exactly the saturation the paper's micro
// benchmark demonstrates.
func TestSweepThreads(t *testing.T) {
	rows, err := Sweep(loadMicro(t), SweepSpec{Threads: []int{1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("base speedup = %v, want 1", rows[0].Speedup)
	}
	if !(rows[0].Completion < rows[1].Completion && rows[1].Completion < rows[2].Completion) {
		t.Errorf("completion not increasing with threads: %+v", rows)
	}
	for _, r := range rows {
		if r.TopLock == "" {
			t.Errorf("row missing top lock: %+v", r)
		}
	}
}

// TestSweepShrink reproduces the Fig. 6 validation through the sweep
// engine: halving L2 helps more than halving L1.
func TestSweepShrink(t *testing.T) {
	cfg := loadMicro(t)
	rowsL1, err := Sweep(cfg, SweepSpec{Threads: []int{4}, ShrinkLock: "L1", Factors: []float64{1.0, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	rowsL2, err := Sweep(cfg, SweepSpec{Threads: []int{4}, ShrinkLock: "L2", Factors: []float64{1.0, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsL1) != 2 || len(rowsL2) != 2 {
		t.Fatalf("rows: %d/%d, want 2/2", len(rowsL1), len(rowsL2))
	}
	gainL1 := float64(rowsL1[0].Completion) / float64(rowsL1[1].Completion)
	gainL2 := float64(rowsL2[0].Completion) / float64(rowsL2[1].Completion)
	if gainL2 <= gainL1 {
		t.Errorf("shrinking L2 (%.3fx) must beat shrinking L1 (%.3fx)", gainL2, gainL1)
	}
}

func TestSweepDefaultsAndErrors(t *testing.T) {
	cfg := loadMicro(t)
	rows, err := Sweep(cfg, SweepSpec{ShrinkLock: "L2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // default factors {1.0, 0.5} at the model's thread count
		t.Errorf("rows = %+v, want 2", rows)
	}
	if _, err := Sweep(cfg, SweepSpec{ShrinkLock: "nope"}); err == nil {
		t.Error("unknown shrink lock accepted")
	}
	bad := &Config{}
	if _, err := Sweep(bad, SweepSpec{}); err == nil {
		t.Error("invalid config accepted")
	}
}
