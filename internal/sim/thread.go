package sim

import (
	"fmt"
	"math/rand"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// thread is one simulated thread. It runs as a goroutine that holds
// control exclusively between a resume and the next yield, so thread
// code may mutate simulator state without locking.
type thread struct {
	sim  *Sim
	id   trace.ThreadID
	name string
	buf  *trace.ThreadBuffer
	rng  *rand.Rand
	fn   func(harness.Proc)

	resume chan struct{}

	hasContext bool
	started    bool
	done       bool
	blockedOn  string

	// condReacquire is set while the thread is inside Wait and must
	// emit cond-wait-end when its mutex is granted.
	condReacquire trace.ObjID

	joiners []*thread
}

var _ harness.Proc = (*thread)(nil)
var _ harness.Thread = (*thread)(nil)

// newThread registers a thread with the collector; its goroutine is
// started lazily on first dispatch. The thread-start event is stamped
// at creation time, so time spent queued for a hardware context shows
// up as (attributable) execution after the start rather than as a
// hole between the creator's create event and a late start.
func (s *Sim) newThread(name string, creator trace.ThreadID, fn func(harness.Proc)) *thread {
	buf := s.col.RegisterThread(name, creator)
	th := &thread{
		sim:           s,
		id:            buf.Thread(),
		name:          name,
		buf:           buf,
		rng:           rand.New(rand.NewSource(s.cfg.Seed*1000003 + int64(buf.Thread()) + 1)),
		fn:            fn,
		resume:        make(chan struct{}),
		condReacquire: trace.NoObj,
	}
	th.buf.Emit(s.now, trace.EvThreadStart, trace.NoObj, int64(creator))
	s.threads = append(s.threads, th)
	s.live++
	go th.run()
	return th
}

// abortSignal unwinds a thread goroutine when the simulation is being
// drained after an error.
type abortSignal struct{}

// run is the goroutine body: wait for first dispatch, execute the
// user function, then wind down.
func (th *thread) run() {
	<-th.resume
	s := th.sim
	if s.aborted {
		th.done = true
		s.live--
		s.yield <- struct{}{}
		return
	}
	th.started = true

	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortSignal); !isAbort && s.err == nil {
				s.err = fmt.Errorf("sim: thread %s panicked: %v", th.name, r)
			}
		}
		th.finish()
	}()
	th.fn(th)
}

// finish emits the exit event, wakes joiners and returns control to
// the scheduler for good.
func (th *thread) finish() {
	s := th.sim
	th.done = true
	if s.aborted {
		s.live--
		s.yield <- struct{}{}
		return
	}
	th.buf.Emit(s.now, trace.EvThreadExit, trace.NoObj, 0)
	for _, j := range th.joiners {
		j.buf.Emit(s.now, trace.EvJoinEnd, trace.NoObj, int64(th.id))
		j.blockedOn = ""
		s.makeReady(j)
	}
	th.joiners = nil
	s.releaseContext(th)
	s.live--
	s.yield <- struct{}{}
}

// yieldWait returns control to the scheduler and blocks until resumed.
// If the simulation is draining after an error, unwind immediately.
func (th *thread) yieldWait() {
	s := th.sim
	s.yield <- struct{}{}
	<-th.resume
	if s.aborted {
		panic(abortSignal{})
	}
}

// block releases the context and parks until woken.
func (th *thread) block(on string) {
	th.blockedOn = on
	th.sim.releaseContext(th)
	th.yieldWait()
	th.blockedOn = ""
}

// ID implements harness.Proc and harness.Thread.
func (th *thread) ID() trace.ThreadID { return th.id }

// Rand implements harness.Proc.
func (th *thread) Rand() *rand.Rand { return th.rng }

// Compute implements harness.Proc: advance virtual time by d while
// occupying the context. With Config.Quantum set, long computes are
// sliced and the context is offered to queued ready threads between
// slices (round-robin preemption).
func (th *thread) Compute(d trace.Time) {
	if d <= 0 {
		return
	}
	s := th.sim
	if !th.hasContext {
		panic("sim: Compute without a hardware context")
	}
	q := s.cfg.Quantum
	for q > 0 && d > q {
		s.after(q, func() { s.resume(th) })
		th.yieldWait()
		d -= q
		if len(s.readyQ) > 0 {
			// Preempt: go to the back of the ready queue.
			th.hasContext = false
			if !s.unlimited {
				s.freeCtx++
			}
			s.makeReady(th)
			th.yieldWait()
		}
	}
	s.after(d, func() { s.resume(th) })
	th.yieldWait()
}

// Go implements harness.Proc.
func (th *thread) Go(name string, fn func(harness.Proc)) harness.Thread {
	s := th.sim
	child := s.newThread(name, th.id, fn)
	th.buf.Emit(s.now, trace.EvThreadCreate, trace.NoObj, int64(child.id))
	s.makeReady(child)
	return child
}

// Join implements harness.Proc.
func (th *thread) Join(t harness.Thread) {
	s := th.sim
	target, ok := t.(*thread)
	if !ok || target.sim != s {
		panic("sim: Join on a thread from another runtime")
	}
	th.buf.Emit(s.now, trace.EvJoinBegin, trace.NoObj, int64(target.id))
	if target.done {
		th.buf.Emit(s.now, trace.EvJoinEnd, trace.NoObj, int64(target.id))
		return
	}
	target.joiners = append(target.joiners, th)
	th.block("join:" + target.name)
	// The join-end event was emitted by the target at its exit time.
}

// Lock implements harness.Proc (exclusive acquisition).
func (th *thread) Lock(hm harness.Mutex) {
	s := th.sim
	m := th.mutexOf(hm)
	th.buf.Emit(s.now, trace.EvLockAcquire, m.id, 0)
	if m.free() && len(m.waiters) == 0 {
		m.owner = th
		th.buf.Emit(s.now, trace.EvLockObtain, m.id, 0)
		th.csEntryOverhead(false)
		return
	}
	m.waiters = append(m.waiters, lockWaiter{th: th})
	th.block("mutex:" + m.name)
	// grantWrite() emitted the contended obtain at the release instant.
	th.csEntryOverhead(true)
}

// TryLock implements harness.Proc. It succeeds exactly when Lock's
// fast path would: the mutex is free and nobody is queued (so a try
// can never jump a waiting thread). A failed try emits nothing — a
// dangling acquire with no obtain would corrupt the analysis.
func (th *thread) TryLock(hm harness.Mutex) bool {
	s := th.sim
	m := th.mutexOf(hm)
	if !m.free() || len(m.waiters) > 0 {
		return false
	}
	th.buf.Emit(s.now, trace.EvLockAcquire, m.id, 0)
	m.owner = th
	th.buf.Emit(s.now, trace.EvLockObtain, m.id, 0)
	th.csEntryOverhead(false)
	return true
}

// Unlock implements harness.Proc.
func (th *thread) Unlock(hm harness.Mutex) {
	s := th.sim
	m := th.mutexOf(hm)
	if m.owner != th {
		panic(fmt.Sprintf("sim: thread %s unlocks %q it does not own", th.name, m.name))
	}
	th.buf.Emit(s.now, trace.EvLockRelease, m.id, 0)
	m.owner = nil
	m.wake()
}

// RLock implements harness.Proc (shared acquisition, write-preferring:
// readers queue behind waiting writers).
func (th *thread) RLock(hm harness.Mutex) {
	s := th.sim
	m := th.mutexOf(hm)
	th.buf.Emit(s.now, trace.EvLockAcquire, m.id, trace.LockArgShared)
	if m.owner == nil && !m.writerWaiting() {
		m.readers++
		th.buf.Emit(s.now, trace.EvLockObtain, m.id, trace.LockArgShared)
		th.csEntryOverhead(false)
		return
	}
	m.waiters = append(m.waiters, lockWaiter{th: th, shared: true})
	th.block("rmutex:" + m.name)
	th.csEntryOverhead(true)
}

// RUnlock implements harness.Proc.
func (th *thread) RUnlock(hm harness.Mutex) {
	s := th.sim
	m := th.mutexOf(hm)
	if m.readers <= 0 {
		panic(fmt.Sprintf("sim: thread %s read-unlocks %q with no readers", th.name, m.name))
	}
	th.buf.Emit(s.now, trace.EvLockRelease, m.id, trace.LockArgShared)
	m.readers--
	if m.free() {
		m.wake()
	}
}

// BarrierWait implements harness.Proc.
func (th *thread) BarrierWait(hb harness.Barrier) {
	s := th.sim
	b, ok := hb.(*barrier)
	if !ok || b.sim != s {
		panic("sim: BarrierWait on a barrier from another runtime")
	}
	th.buf.Emit(s.now, trace.EvBarrierArrive, b.id, 0)
	if len(b.waiting)+1 < b.parties {
		b.waiting = append(b.waiting, th)
		th.block("barrier:" + b.name)
		return
	}
	// Last arriver: release the whole episode at the current instant.
	th.buf.Emit(s.now, trace.EvBarrierDepart, b.id, 1)
	for _, w := range b.waiting {
		w.buf.Emit(s.now, trace.EvBarrierDepart, b.id, 0)
		w.blockedOn = ""
		s.makeReady(w)
	}
	b.waiting = b.waiting[:0]
}

// Wait implements harness.Proc: condition-variable wait with the
// standard release-block-reacquire protocol.
func (th *thread) Wait(hc harness.Cond, hm harness.Mutex) {
	s := th.sim
	c := th.condOf(hc)
	m := th.mutexOf(hm)
	if m.owner != th {
		panic(fmt.Sprintf("sim: thread %s waits on %q without holding %q", th.name, c.name, m.name))
	}
	th.buf.Emit(s.now, trace.EvCondWaitBegin, c.id, int64(m.id))
	// Release the mutex exactly as Unlock does.
	th.buf.Emit(s.now, trace.EvLockRelease, m.id, 0)
	m.owner = nil
	m.wake()
	c.waiters = append(c.waiters, condWaiter{th: th, c: c.id, m: m})
	th.block("cond:" + c.name)
	// We were signalled; the signaller initiated the mutex
	// reacquisition and grant() emitted obtain + cond-wait-end.
	th.csEntryOverhead(true)
}

// Signal implements harness.Proc.
func (th *thread) Signal(hc harness.Cond) {
	s := th.sim
	c := th.condOf(hc)
	th.buf.Emit(s.now, trace.EvCondSignal, c.id, 0)
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	s.wakeCondWaiter(w)
}

// Broadcast implements harness.Proc.
func (th *thread) Broadcast(hc harness.Cond) {
	s := th.sim
	c := th.condOf(hc)
	th.buf.Emit(s.now, trace.EvCondBroadcast, c.id, 0)
	waiters := c.waiters
	c.waiters = nil
	for _, w := range waiters {
		s.wakeCondWaiter(w)
	}
}

// wakeCondWaiter starts the woken thread's mutex reacquisition: emit
// its acquire now and either grant immediately or queue it on the
// mutex. The cond-wait-end event is emitted by grant() at the instant
// the mutex is actually obtained, matching the paper's instrumentation
// point "after cond_wait returns".
func (s *Sim) wakeCondWaiter(w condWaiter) {
	w.th.buf.Emit(s.now, trace.EvLockAcquire, w.m.id, 0)
	w.th.condReacquire = w.c
	if w.m.free() && len(w.m.waiters) == 0 {
		w.m.grantWrite(w.th, false)
		return
	}
	w.m.waiters = append(w.m.waiters, lockWaiter{th: w.th})
	w.th.blockedOn = "mutex:" + w.m.name
}

// csEntryOverhead consumes the configured critical-section entry cost.
func (th *thread) csEntryOverhead(contended bool) {
	cost := th.sim.cfg.LockOverhead
	if contended {
		cost += th.sim.cfg.ContentionPenalty
	}
	if cost > 0 {
		th.Compute(cost)
	}
}

func (th *thread) mutexOf(hm harness.Mutex) *mutex {
	m, ok := hm.(*mutex)
	if !ok || m.sim != th.sim {
		panic("sim: mutex from another runtime")
	}
	return m
}

func (th *thread) condOf(hc harness.Cond) *cond {
	c, ok := hc.(*cond)
	if !ok || c.sim != th.sim {
		panic("sim: cond from another runtime")
	}
	return c
}
