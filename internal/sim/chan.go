package sim

import (
	"fmt"

	"critlock/internal/harness"
	"critlock/internal/trace"
)

// channel is a simulated Go channel: a FIFO token queue with a fixed
// buffer capacity (0 = unbuffered rendezvous). Like the mutex, all
// state is mutated in thread context only, and every event a blocked
// thread completes with is stamped by its waker at the waking instant
// — waker first, wakee second — which is the emission order the
// analyzer's channel waker resolution depends on.
type channel struct {
	sim      *Sim
	id       trace.ObjID
	name     string
	capacity int

	buffered int
	closed   bool
	sendq    []*chanWaiter
	recvq    []*chanWaiter
}

var _ harness.Chan = (*channel)(nil)

func (c *channel) Name() string { return c.name }
func (c *channel) Cap() int     { return c.capacity }

// chanWaiter is one thread parked on a channel operation: a plain
// send/recv, or one arm of a select (sel non-nil).
type chanWaiter struct {
	th  *thread
	sel *selectState
	idx int // case index within the select

	ok          bool // recv result, set by the waker
	closedPanic bool // plain send woken by close: panic on resume
}

// selectState is shared by all arms of one blocked select. The first
// waker to claim any arm wins; the stale arms left in other queues
// become unclaimable and are skipped by later pops.
type selectState struct {
	won      bool
	chosen   int
	ok       bool
	closedOn *channel // send arm woken by close: panic on resume
}

// claim marks w as the waiter being woken. Arms of a select that
// already fired elsewhere cannot be claimed.
func (w *chanWaiter) claim() bool {
	if w.sel == nil {
		return true
	}
	if w.sel.won {
		return false
	}
	w.sel.won = true
	w.sel.chosen = w.idx
	return true
}

func (c *channel) popSend() *chanWaiter {
	for len(c.sendq) > 0 {
		w := c.sendq[0]
		c.sendq = c.sendq[1:]
		if w.claim() {
			return w
		}
	}
	return nil
}

func (c *channel) popRecv() *chanWaiter {
	for len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		if w.claim() {
			return w
		}
	}
	return nil
}

// NewChan implements harness.Runtime. The capacity is recorded as the
// channel object's Parties, so it survives into traces and manifests.
func (s *Sim) NewChan(name string, capacity int) harness.Chan {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &channel{sim: s, id: s.col.RegisterObject(trace.ObjChan, name, capacity), name: name, capacity: capacity}
}

func (th *thread) chanOf(hc harness.Chan) *channel {
	c, ok := hc.(*channel)
	if !ok || c.sim != th.sim {
		panic("sim: chan from another runtime")
	}
	return c
}

// trySend completes a send without blocking when a receiver is waiting
// or buffer space is free. arg carries ChanArgSelect for select-chosen
// sends.
func (c *channel) trySend(th *thread, arg int64) bool {
	s := c.sim
	if w := c.popRecv(); w != nil {
		// Direct handoff to a blocked receiver: the receiver only
		// parks when the buffer is empty, so the value skips it.
		th.buf.Emit(s.now, trace.EvChanSend, c.id, arg)
		c.completeRecv(w, true)
		return true
	}
	if c.buffered < c.capacity {
		c.buffered++
		th.buf.Emit(s.now, trace.EvChanSend, c.id, arg)
		return true
	}
	return false
}

// tryRecv completes a receive without blocking when a value is
// buffered, a sender is waiting, or the channel is closed and drained.
// done is false when the receive would block.
func (c *channel) tryRecv(th *thread, arg int64) (ok, done bool) {
	s := c.sim
	if c.buffered > 0 {
		c.buffered--
		th.buf.Emit(s.now, trace.EvChanRecv, c.id, arg)
		// The freed slot admits the longest-waiting blocked sender.
		if w := c.popSend(); w != nil {
			c.buffered++
			c.completeSend(w)
		}
		return true, true
	}
	if w := c.popSend(); w != nil { // unbuffered rendezvous
		th.buf.Emit(s.now, trace.EvChanRecv, c.id, arg)
		c.completeSend(w)
		return true, true
	}
	if c.closed {
		th.buf.Emit(s.now, trace.EvChanRecv, c.id, arg|trace.ChanArgClosed)
		return false, true
	}
	return false, false
}

// completeSend stamps a blocked sender's completion at the current
// instant and readies it.
func (c *channel) completeSend(w *chanWaiter) {
	arg := int64(trace.ChanArgBlocked)
	if w.sel != nil {
		arg |= trace.ChanArgSelect
		w.sel.ok = true
	}
	w.th.buf.Emit(c.sim.now, trace.EvChanSend, c.id, arg)
	w.th.blockedOn = ""
	c.sim.makeReady(w.th)
}

// completeRecv stamps a blocked receiver's completion at the current
// instant and readies it. ok is false when the wake came from close.
func (c *channel) completeRecv(w *chanWaiter, ok bool) {
	arg := int64(trace.ChanArgBlocked)
	if !ok {
		arg |= trace.ChanArgClosed
	}
	if w.sel != nil {
		arg |= trace.ChanArgSelect
		w.sel.ok = ok
	}
	w.ok = ok
	w.th.buf.Emit(c.sim.now, trace.EvChanRecv, c.id, arg)
	w.th.blockedOn = ""
	c.sim.makeReady(w.th)
}

// Send implements harness.Proc.
func (th *thread) Send(hc harness.Chan) {
	s := th.sim
	c := th.chanOf(hc)
	th.buf.Emit(s.now, trace.EvChanSendBegin, c.id, 0)
	if c.closed {
		panic(fmt.Sprintf("sim: thread %s sends on closed channel %q", th.name, c.name))
	}
	if c.trySend(th, 0) {
		return
	}
	w := &chanWaiter{th: th}
	c.sendq = append(c.sendq, w)
	th.block("chan-send:" + c.name)
	// The waker stamped our blocked completion at the waking instant.
	if w.closedPanic {
		panic(fmt.Sprintf("sim: thread %s sends on closed channel %q", th.name, c.name))
	}
}

// Recv implements harness.Proc.
func (th *thread) Recv(hc harness.Chan) bool {
	s := th.sim
	c := th.chanOf(hc)
	th.buf.Emit(s.now, trace.EvChanRecvBegin, c.id, 0)
	if ok, done := c.tryRecv(th, 0); done {
		return ok
	}
	w := &chanWaiter{th: th}
	c.recvq = append(c.recvq, w)
	th.block("chan-recv:" + c.name)
	return w.ok
}

// Close implements harness.Proc.
func (th *thread) Close(hc harness.Chan) {
	s := th.sim
	c := th.chanOf(hc)
	if c.closed {
		panic(fmt.Sprintf("sim: thread %s closes already-closed channel %q", th.name, c.name))
	}
	c.closed = true
	th.buf.Emit(s.now, trace.EvChanClose, c.id, 0)
	// Blocked receivers observe closed-and-drained (they only park on
	// an empty buffer); blocked senders panic, as in Go — they resume
	// into the panic with no completion event.
	for {
		w := c.popRecv()
		if w == nil {
			break
		}
		c.completeRecv(w, false)
	}
	for {
		w := c.popSend()
		if w == nil {
			break
		}
		if w.sel != nil {
			w.sel.closedOn = c
		} else {
			w.closedPanic = true
		}
		w.th.blockedOn = ""
		s.makeReady(w.th)
	}
}

// Select implements harness.Proc. Cases are polled in order and the
// lowest ready index wins — the deterministic stand-in for Go's
// uniform random choice.
func (th *thread) Select(cases []harness.SelectCase, def bool) (int, bool) {
	s := th.sim
	arg := int64(0)
	if def {
		arg = 1
	}
	th.buf.Emit(s.now, trace.EvSelect, trace.NoObj, arg)
	for i, sc := range cases {
		c := th.chanOf(sc.Ch)
		if sc.Send {
			if c.closed {
				panic(fmt.Sprintf("sim: thread %s sends on closed channel %q", th.name, c.name))
			}
			if c.trySend(th, trace.ChanArgSelect) {
				return i, true
			}
		} else if ok, done := c.tryRecv(th, trace.ChanArgSelect); done {
			return i, ok
		}
	}
	if def {
		return -1, true
	}
	sel := &selectState{chosen: -1, ok: true}
	for i, sc := range cases {
		c := th.chanOf(sc.Ch)
		w := &chanWaiter{th: th, sel: sel, idx: i}
		if sc.Send {
			c.sendq = append(c.sendq, w)
		} else {
			c.recvq = append(c.recvq, w)
		}
	}
	th.block("select")
	if sel.closedOn != nil {
		panic(fmt.Sprintf("sim: thread %s sends on closed channel %q", th.name, sel.closedOn.name))
	}
	return sel.chosen, sel.ok
}
