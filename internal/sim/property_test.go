package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"critlock/internal/core"
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// TestPropertyRandomPrograms is the bridge property between the
// simulator and the analyzer: for arbitrary generated programs —
// random mixes of compute, exclusive and shared locking, barriers,
// condition-free handoffs and nested spawning — the analyzed critical
// path must tile the run exactly (length == completion time, no
// unattributed waits) and every lock metric must be internally
// consistent.
func TestPropertyRandomPrograms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nThreads := 2 + rng.Intn(6)
		nLocks := 1 + rng.Intn(4)
		useBarrier := rng.Intn(2) == 0
		opsPerThread := 3 + rng.Intn(12)

		cfg := Config{Contexts: 1 + rng.Intn(8), Seed: seed}
		if rng.Intn(3) == 0 {
			cfg.Quantum = trace.Time(50 + rng.Intn(300)) // time slicing on
		}
		s := New(cfg)
		locks := make([]harness.Mutex, nLocks)
		for i := range locks {
			locks[i] = s.NewMutex("")
		}
		var bar harness.Barrier
		if useBarrier {
			bar = s.NewBarrier("bar", nThreads)
		}

		tr, elapsed, err := s.Run(func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < nThreads; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					for op := 0; op < opsPerThread; op++ {
						m := locks[q.Rand().Intn(nLocks)]
						switch q.Rand().Intn(4) {
						case 0:
							q.Compute(trace.Time(1 + q.Rand().Intn(500)))
						case 1:
							q.Lock(m)
							q.Compute(trace.Time(q.Rand().Intn(100)))
							q.Unlock(m)
						case 2:
							q.RLock(m)
							q.Compute(trace.Time(q.Rand().Intn(50)))
							q.RUnlock(m)
						case 3:
							if bar != nil {
								// Everyone must participate in every
								// episode: a barrier only works with a
								// deterministic per-thread schedule, so
								// fold it into compute instead.
								q.Compute(trace.Time(1 + q.Rand().Intn(100)))
							} else {
								q.Compute(trace.Time(1 + q.Rand().Intn(100)))
							}
						}
					}
					if bar != nil {
						bar.Parties() // touch
						q.BarrierWait(bar)
					}
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		})
		if err != nil {
			t.Logf("seed %d: run error: %v", seed, err)
			return false
		}
		if err := trace.Validate(tr); err != nil {
			t.Logf("seed %d: invalid trace: %v", seed, err)
			return false
		}
		an, err := core.AnalyzeDefault(tr)
		if err != nil {
			t.Logf("seed %d: analysis error: %v", seed, err)
			return false
		}
		if an.CP.Length != elapsed || an.CP.WaitTime != 0 {
			t.Logf("seed %d: CP length %d (want %d), wait %d", seed, an.CP.Length, elapsed, an.CP.WaitTime)
			return false
		}
		for _, l := range an.Locks {
			if l.ContendedOnCP > l.InvocationsOnCP || l.InvocationsOnCP > l.TotalInvocations {
				t.Logf("seed %d: inconsistent counts for %s: %+v", seed, l.Name, l)
				return false
			}
			if l.HoldOnCP > an.CP.Length {
				t.Logf("seed %d: %s hold on CP exceeds path", seed, l.Name)
				return false
			}
			if l.Critical != (l.InvocationsOnCP > 0) {
				t.Logf("seed %d: %s critical flag mismatch", seed, l.Name)
				return false
			}
		}
		// Slack consistency: the walked path is one of the longest
		// paths, so every lock the walk marks critical must have zero
		// slack.
		sa := an.Slack()
		for _, l := range sa.Locks {
			if l.OnCP && l.MinSlack != 0 {
				t.Logf("seed %d: critical lock %s has slack %d", seed, l.Name, l.MinSlack)
				return false
			}
		}
		// The composition must partition the path.
		c := an.Composition()
		if c.LockHold+c.Compute+c.Wait != c.Total {
			t.Logf("seed %d: composition does not partition: %+v", seed, c)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
