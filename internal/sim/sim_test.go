package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"critlock/internal/core"
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// runSim runs fn on a fresh simulator and fails the test on error.
func runSim(t *testing.T, cfg Config, fn func(rt harness.Runtime) func(harness.Proc)) (*trace.Trace, trace.Time) {
	t.Helper()
	s := New(cfg)
	main := fn(s)
	tr, elapsed, err := s.Run(main)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("sim produced invalid trace: %v", err)
	}
	return tr, elapsed
}

func TestComputeAdvancesVirtualTime(t *testing.T) {
	_, elapsed := runSim(t, Config{}, func(rt harness.Runtime) func(harness.Proc) {
		return func(p harness.Proc) {
			p.Compute(100)
			p.Compute(250)
			p.Compute(0)  // no-ops must not advance time
			p.Compute(-5) // nor go backwards
		}
	})
	if elapsed != 350 {
		t.Errorf("elapsed = %d, want 350", elapsed)
	}
}

func TestParallelComputeOverlaps(t *testing.T) {
	_, elapsed := runSim(t, Config{Contexts: 4}, func(rt harness.Runtime) func(harness.Proc) {
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 3; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) { q.Compute(1000) }))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	if elapsed != 1000 {
		t.Errorf("elapsed = %d, want 1000 (3 threads overlap on 4 contexts)", elapsed)
	}
}

func TestContextLimitSerializes(t *testing.T) {
	// 4 threads x 1000ns of work on 2 contexts → 2000ns makespan.
	_, elapsed := runSim(t, Config{Contexts: 2}, func(rt harness.Runtime) func(harness.Proc) {
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 4; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) { q.Compute(1000) }))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	// Main occupies a context only momentarily (it blocks in Join), so
	// the 4 workers share 2 contexts: 2 rounds of 1000ns.
	if elapsed != 2000 {
		t.Errorf("elapsed = %d, want 2000", elapsed)
	}
}

func TestMutexMutualExclusionAndFIFO(t *testing.T) {
	var order []trace.ThreadID
	tr, elapsed := runSim(t, Config{}, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("m")
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 3; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					q.Compute(trace.Time(1 + q.ID())) // stagger acquire order: t1, t2, t3
					q.Lock(m)
					order = append(order, q.ID())
					q.Compute(100)
					q.Unlock(m)
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	want := []trace.ThreadID{1, 2, 3}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("FIFO grant order = %v, want %v", order, want)
	}
	// Thread 1 enters at 2, holds 100; thread 2 waits 102-3=99, etc.
	// Completion: 2 + 3*100 = 302.
	if elapsed != 302 {
		t.Errorf("elapsed = %d, want 302", elapsed)
	}
	// Exactly two contended obtains recorded.
	contended := 0
	for _, e := range tr.Events {
		if e.Contended() {
			contended++
		}
	}
	if contended != 2 {
		t.Errorf("contended obtains = %d, want 2", contended)
	}
}

func TestLIFOWakePolicy(t *testing.T) {
	var order []trace.ThreadID
	runSim(t, Config{WakePolicy: WakeLIFO}, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("m")
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 3; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					q.Compute(trace.Time(1 + q.ID()))
					q.Lock(m)
					order = append(order, q.ID())
					q.Compute(100)
					q.Unlock(m)
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	want := []trace.ThreadID{1, 3, 2} // last waiter (3) barges ahead of 2
	if !reflect.DeepEqual(order, want) {
		t.Errorf("LIFO grant order = %v, want %v", order, want)
	}
}

func TestBarrierMeets(t *testing.T) {
	tr, elapsed := runSim(t, Config{}, func(rt harness.Runtime) func(harness.Proc) {
		bar := rt.NewBarrier("phase", 3)
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 3; i++ {
				d := trace.Time(100 * (i + 1))
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					q.Compute(d)
					q.BarrierWait(bar)
					q.Compute(10)
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	if elapsed != 310 { // slowest arrives at 300, everyone computes 10 more
		t.Errorf("elapsed = %d, want 310", elapsed)
	}
	lastDeparts := 0
	for _, e := range tr.Events {
		if e.Kind == trace.EvBarrierDepart {
			if e.T != 300 {
				t.Errorf("depart at %d, want 300", e.T)
			}
			if e.Arg == 1 {
				lastDeparts++
			}
		}
	}
	if lastDeparts != 1 {
		t.Errorf("last-arriver departs = %d, want 1", lastDeparts)
	}
}

func TestBarrierReuse(t *testing.T) {
	_, elapsed := runSim(t, Config{}, func(rt harness.Runtime) func(harness.Proc) {
		bar := rt.NewBarrier("phase", 2)
		return func(p harness.Proc) {
			k := p.Go("w", func(q harness.Proc) {
				for i := 0; i < 3; i++ {
					q.Compute(50)
					q.BarrierWait(bar)
				}
			})
			for i := 0; i < 3; i++ {
				p.Compute(100)
				p.BarrierWait(bar)
			}
			p.Join(k)
		}
	})
	if elapsed != 300 { // main is the laggard in every episode
		t.Errorf("elapsed = %d, want 300", elapsed)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	var got []trace.ThreadID
	runSim(t, Config{}, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("qmu")
		cv := rt.NewCond("ready")
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 2; i++ {
				d := trace.Time(10 * (i + 1))
				kids = append(kids, p.Go("waiter", func(q harness.Proc) {
					q.Compute(d)
					q.Lock(m)
					q.Wait(cv, m)
					got = append(got, q.ID())
					q.Unlock(m)
				}))
			}
			p.Compute(100)
			p.Signal(cv) // wakes thread 1 (first waiter)
			p.Compute(50)
			p.Signal(cv) // wakes thread 2
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	want := []trace.ThreadID{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cond wake order = %v, want %v", got, want)
	}
}

func TestCondBroadcast(t *testing.T) {
	count := 0
	_, elapsed := runSim(t, Config{}, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("qmu")
		cv := rt.NewCond("go")
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 3; i++ {
				kids = append(kids, p.Go("waiter", func(q harness.Proc) {
					q.Lock(m)
					q.Wait(cv, m)
					count++
					q.Unlock(m)
					q.Compute(5)
				}))
			}
			p.Compute(40)
			p.Broadcast(cv)
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	if count != 3 {
		t.Errorf("woken waiters = %d, want 3", count)
	}
	if elapsed != 45 { // all wake at 40; mutex handoff is instantaneous
		t.Errorf("elapsed = %d, want 45", elapsed)
	}
}

func TestSignalWithoutWaitersIsLost(t *testing.T) {
	runSim(t, Config{}, func(rt harness.Runtime) func(harness.Proc) {
		cv := rt.NewCond("noone")
		return func(p harness.Proc) {
			p.Signal(cv)
			p.Broadcast(cv)
			p.Compute(10)
		}
	})
}

func TestJoinAfterExit(t *testing.T) {
	_, elapsed := runSim(t, Config{}, func(rt harness.Runtime) func(harness.Proc) {
		return func(p harness.Proc) {
			k := p.Go("quick", func(q harness.Proc) { q.Compute(5) })
			p.Compute(100)
			p.Join(k) // child exited long ago: no block
			p.Compute(1)
		}
	})
	if elapsed != 101 {
		t.Errorf("elapsed = %d, want 101", elapsed)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() (*trace.Trace, trace.Time) {
		s := New(Config{Contexts: 4, Seed: 42})
		m := s.NewMutex("m")
		bar := s.NewBarrier("b", 4)
		tr, el, err := s.Run(func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 3; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					for j := 0; j < 5; j++ {
						q.Compute(trace.Time(q.Rand().Intn(100)))
						q.Lock(m)
						q.Compute(trace.Time(q.Rand().Intn(20)))
						q.Unlock(m)
					}
					q.BarrierWait(bar)
				}))
			}
			p.BarrierWait(bar)
			for _, k := range kids {
				p.Join(k)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr, el
	}
	tr1, el1 := build()
	tr2, el2 := build()
	if el1 != el2 {
		t.Fatalf("elapsed differs: %d vs %d", el1, el2)
	}
	if !reflect.DeepEqual(tr1.Events, tr2.Events) {
		t.Error("event streams differ between identical runs")
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(Config{})
	a := s.NewMutex("A")
	b := s.NewMutex("B")
	_, _, err := s.Run(func(p harness.Proc) {
		k := p.Go("w", func(q harness.Proc) {
			q.Lock(b)
			q.Compute(10)
			q.Lock(a) // AB-BA deadlock
			q.Unlock(a)
			q.Unlock(b)
		})
		p.Lock(a)
		p.Compute(10)
		p.Lock(b)
		p.Unlock(b)
		p.Unlock(a)
		p.Join(k)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "mutex:A") || !strings.Contains(err.Error(), "mutex:B") {
		t.Errorf("deadlock report lacks blocked resources: %v", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	s := New(Config{})
	_, _, err := s.Run(func(p harness.Proc) {
		k := p.Go("bad", func(q harness.Proc) {
			q.Compute(5)
			panic("boom")
		})
		p.Join(k)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic boom", err)
	}
}

func TestUnlockNotOwnedPanics(t *testing.T) {
	s := New(Config{})
	m := s.NewMutex("m")
	_, _, err := s.Run(func(p harness.Proc) {
		p.Unlock(m)
	})
	if err == nil || !strings.Contains(err.Error(), "does not own") {
		t.Fatalf("err = %v, want ownership panic", err)
	}
}

func TestLockOverheadExtendsHold(t *testing.T) {
	run := func(cfg Config) trace.Time {
		s := New(cfg)
		m := s.NewMutex("m")
		_, el, err := s.Run(func(p harness.Proc) {
			k := p.Go("w", func(q harness.Proc) {
				q.Lock(m)
				q.Compute(100)
				q.Unlock(m)
			})
			p.Compute(1)
			p.Lock(m)
			p.Compute(100)
			p.Unlock(m)
			p.Join(k)
		})
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	base := run(Config{})
	withOverhead := run(Config{LockOverhead: 10, ContentionPenalty: 25})
	if withOverhead <= base {
		t.Errorf("overheads did not extend run: %d vs %d", withOverhead, base)
	}
	// base: w holds [0,100], main waits from 1, holds [100,200] → 200.
	if base != 200 {
		t.Errorf("base elapsed = %d, want 200", base)
	}
	// overhead: w obtains at 0 (+10 uncontended), holds to 110; main
	// obtains at 110 (+10+25 contended), releases at 245.
	if withOverhead != 245 {
		t.Errorf("overhead elapsed = %d, want 245", withOverhead)
	}
}

// TestSimTraceAnalyzable runs a mixed workload through the simulator
// and the analyzer end to end: full coverage, no unattributed waits.
func TestSimTraceAnalyzable(t *testing.T) {
	tr, elapsed := runSim(t, Config{Contexts: 8, Seed: 7}, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("hot")
		m2 := rt.NewMutex("cold")
		bar := rt.NewBarrier("phase", 4)
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 3; i++ {
				kids = append(kids, p.Go("w", func(q harness.Proc) {
					for j := 0; j < 10; j++ {
						q.Compute(trace.Time(50 + q.Rand().Intn(50)))
						q.Lock(m)
						q.Compute(30)
						q.Unlock(m)
					}
					q.BarrierWait(bar)
					q.Lock(m2)
					q.Compute(5)
					q.Unlock(m2)
				}))
			}
			p.BarrierWait(bar)
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if an.CP.Length != elapsed {
		t.Errorf("CP length %d != elapsed %d (sim paths must tile completely)", an.CP.Length, elapsed)
	}
	if an.CP.WaitTime != 0 {
		t.Errorf("unattributed CP wait = %d, want 0", an.CP.WaitTime)
	}
	if got := an.CP.Coverage(); got < 0.999 || got > 1.001 {
		t.Errorf("coverage = %.4f, want 1.0", got)
	}
	hot := an.Lock("hot")
	if hot == nil || !hot.Critical {
		t.Error("hot lock not critical")
	}
}

func TestMetaRecorded(t *testing.T) {
	s := New(Config{Contexts: 24, Seed: 3})
	s.SetMeta("workload", "unit")
	tr, _, err := s.Run(func(p harness.Proc) { p.Compute(1) })
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta["backend"] != "sim" || tr.Meta["contexts"] != "24" || tr.Meta["workload"] != "unit" {
		t.Errorf("meta = %v", tr.Meta)
	}
}

func TestRandDeterministicPerThread(t *testing.T) {
	vals := map[trace.ThreadID][]int{}
	s := New(Config{Seed: 99})
	_, _, err := s.Run(func(p harness.Proc) {
		k := p.Go("w", func(q harness.Proc) {
			vals[q.ID()] = []int{q.Rand().Intn(1000), q.Rand().Intn(1000)}
		})
		vals[p.ID()] = []int{p.Rand().Intn(1000), p.Rand().Intn(1000)}
		p.Join(k)
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(vals[0], vals[1]) {
		t.Error("different threads produced identical random streams")
	}
	// Re-run must reproduce the exact values.
	vals2 := map[trace.ThreadID][]int{}
	s2 := New(Config{Seed: 99})
	_, _, err = s2.Run(func(p harness.Proc) {
		k := p.Go("w", func(q harness.Proc) {
			vals2[q.ID()] = []int{q.Rand().Intn(1000), q.Rand().Intn(1000)}
		})
		vals2[p.ID()] = []int{p.Rand().Intn(1000), p.Rand().Intn(1000)}
		p.Join(k)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, vals2) {
		t.Error("same seed produced different random streams")
	}
}

// TestStreamingSink: a simulator with an attached stream sink writes a
// stream equivalent to the batch trace.
func TestStreamingSink(t *testing.T) {
	var buf bytes.Buffer
	sw, err := trace.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Contexts: 4, Seed: 2})
	if err := s.SetSink(sw); err != nil {
		t.Fatal(err)
	}
	m := s.NewMutex("m")
	batch, _, err := s.Run(func(p harness.Proc) {
		k := p.Go("w", func(q harness.Proc) {
			q.Lock(m)
			q.Compute(100)
			q.Unlock(m)
		})
		p.Lock(m)
		p.Compute(50)
		p.Unlock(m)
		p.Join(k)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	streamed, err := trace.ReadStream(&buf)
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if len(streamed.Events) != len(batch.Events) {
		t.Fatalf("stream has %d events, batch %d", len(streamed.Events), len(batch.Events))
	}
	if err := trace.Validate(streamed); err != nil {
		t.Fatalf("streamed trace invalid: %v", err)
	}
	an, err := core.AnalyzeDefault(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if an.Lock("m") == nil {
		t.Error("lock missing from streamed analysis")
	}
}

// TestQuantumPreemption: with time slicing, two long computes on one
// context interleave and finish together instead of back-to-back.
func TestQuantumPreemption(t *testing.T) {
	run := func(quantum trace.Time) (trace.Time, trace.Time) {
		s := New(Config{Contexts: 1, Seed: 1, Quantum: quantum})
		var aDone trace.Time
		_, total, err := s.Run(func(p harness.Proc) {
			a := p.Go("a", func(q harness.Proc) {
				q.Compute(1000)
				aDone = s.Now()
			})
			bth := p.Go("b", func(q harness.Proc) { q.Compute(1000) })
			p.Join(a)
			p.Join(bth)
		})
		if err != nil {
			t.Fatal(err)
		}
		return aDone, total
	}
	// Run-to-block: a finishes at 1000, b at 2000.
	first, total := run(0)
	if first != 1000 || total != 2000 {
		t.Errorf("run-to-block: first=%d total=%d, want 1000/2000", first, total)
	}
	// 100ns slices: both interleave; the first finisher lands near the
	// end, and the total stays 2000 (no work is lost or created).
	first, total = run(100)
	if total != 2000 {
		t.Errorf("quantum: total=%d, want 2000", total)
	}
	if first < 1800 {
		t.Errorf("quantum: first=%d, want interleaved (≥1800)", first)
	}
	// Determinism holds under preemption.
	f2, t2 := run(100)
	if f2 != first || t2 != total {
		t.Errorf("quantum nondeterministic: %d/%d vs %d/%d", f2, t2, first, total)
	}
}

// TestQuantumCriticalPathStillTiles: preempted runs still analyze to
// a gap-free critical path.
func TestQuantumCriticalPathStillTiles(t *testing.T) {
	s := New(Config{Contexts: 2, Seed: 3, Quantum: 150})
	m := s.NewMutex("m")
	tr, elapsed, err := s.Run(func(p harness.Proc) {
		var kids []harness.Thread
		for i := 0; i < 5; i++ {
			kids = append(kids, p.Go("w", func(q harness.Proc) {
				q.Compute(trace.Time(300 + q.Rand().Intn(400)))
				q.Lock(m)
				q.Compute(80)
				q.Unlock(m)
			}))
		}
		for _, k := range kids {
			p.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	if an.CP.Length != elapsed || an.CP.WaitTime != 0 {
		t.Errorf("CP %d/%d wait %d, want tiled", an.CP.Length, elapsed, an.CP.WaitTime)
	}
}
