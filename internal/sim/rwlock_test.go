package sim

import (
	"strings"
	"testing"

	"critlock/internal/core"
	"critlock/internal/harness"
	"critlock/internal/trace"
)

// TestReadersOverlap: concurrent read holds proceed in parallel.
func TestReadersOverlap(t *testing.T) {
	_, elapsed := runSim(t, Config{Contexts: 8}, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("rw")
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 4; i++ {
				kids = append(kids, p.Go("r", func(q harness.Proc) {
					q.RLock(m)
					q.Compute(1000)
					q.RUnlock(m)
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	if elapsed != 1000 {
		t.Errorf("elapsed = %d, want 1000 (readers overlap)", elapsed)
	}
}

// TestWriterExcludesReaders: a writer holds alone; readers queue.
func TestWriterExcludesReaders(t *testing.T) {
	tr, elapsed := runSim(t, Config{Contexts: 8}, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("rw")
		return func(p harness.Proc) {
			p.Lock(m) // writer holds from the start
			var kids []harness.Thread
			for i := 0; i < 3; i++ {
				kids = append(kids, p.Go("r", func(q harness.Proc) {
					q.RLock(m)
					q.Compute(500)
					q.RUnlock(m)
				}))
			}
			p.Compute(2000)
			p.Unlock(m) // all readers admitted together at t=2000
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	if elapsed != 2500 { // 2000 write hold + one overlapped read phase
		t.Errorf("elapsed = %d, want 2500", elapsed)
	}
	contendedShared := 0
	for _, e := range tr.Events {
		if e.Contended() && e.Shared() {
			contendedShared++
		}
	}
	if contendedShared != 3 {
		t.Errorf("contended shared obtains = %d, want 3", contendedShared)
	}
}

// TestWritePreference: a waiting writer blocks new readers, so it is
// not starved by a reader stream.
func TestWritePreference(t *testing.T) {
	var order []string
	runSim(t, Config{Contexts: 8}, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("rw")
		return func(p harness.Proc) {
			// Reader A holds 0..1000.
			r1 := p.Go("r1", func(q harness.Proc) {
				q.RLock(m)
				q.Compute(1000)
				order = append(order, "r1-done")
				q.RUnlock(m)
			})
			// Writer arrives at 100 and queues.
			w := p.Go("w", func(q harness.Proc) {
				q.Compute(100)
				q.Lock(m)
				order = append(order, "writer")
				q.Compute(100)
				q.Unlock(m)
			})
			// Reader B arrives at 200: must wait BEHIND the writer.
			r2 := p.Go("r2", func(q harness.Proc) {
				q.Compute(200)
				q.RLock(m)
				order = append(order, "r2")
				q.RUnlock(m)
			})
			p.Join(r1)
			p.Join(w)
			p.Join(r2)
		}
	})
	want := "r1-done,writer,r2"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s (write preference violated)", got, want)
	}
}

// TestRWLockAnalysis: a writer blocked by readers gets its waker from
// the last reader's release; the critical path has no gaps.
func TestRWLockAnalysis(t *testing.T) {
	tr, elapsed := runSim(t, Config{Contexts: 8}, func(rt harness.Runtime) func(harness.Proc) {
		m := rt.NewMutex("rw")
		return func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 3; i++ {
				d := trace.Time(500 * (i + 1))
				kids = append(kids, p.Go("r", func(q harness.Proc) {
					q.RLock(m)
					q.Compute(d) // readers release at 500, 1000, 1500
					q.RUnlock(m)
				}))
			}
			p.Compute(100)
			p.Lock(m) // blocks until the slowest reader releases at 1500
			p.Compute(700)
			p.Unlock(m)
			for _, k := range kids {
				p.Join(k)
			}
		}
	})
	if elapsed != 2200 {
		t.Errorf("elapsed = %d, want 2200", elapsed)
	}
	an, err := core.AnalyzeDefault(tr)
	if err != nil {
		t.Fatal(err)
	}
	if an.CP.Length != elapsed || an.CP.WaitTime != 0 {
		t.Errorf("CP length=%d wait=%d, want %d/0", an.CP.Length, an.CP.WaitTime, elapsed)
	}
	l := an.Lock("rw")
	if l.TotalInvocations != 4 || l.SharedInvocations != 3 {
		t.Errorf("invocations=%d shared=%d, want 4/3", l.TotalInvocations, l.SharedInvocations)
	}
	if !l.Critical {
		t.Error("rw lock not critical")
	}
}

// TestRUnlockWithoutHoldPanics: misuse is reported.
func TestRUnlockWithoutHoldPanics(t *testing.T) {
	s := New(Config{})
	m := s.NewMutex("rw")
	_, _, err := s.Run(func(p harness.Proc) {
		p.RUnlock(m)
	})
	if err == nil || !strings.Contains(err.Error(), "no readers") {
		t.Fatalf("err = %v, want read-unlock panic", err)
	}
}

// TestRWLockDeterminism: reader/writer mixes replay identically.
func TestRWLockDeterminism(t *testing.T) {
	run := func() trace.Time {
		s := New(Config{Contexts: 8, Seed: 5})
		m := s.NewMutex("rw")
		_, el, err := s.Run(func(p harness.Proc) {
			var kids []harness.Thread
			for i := 0; i < 6; i++ {
				i := i
				kids = append(kids, p.Go("t", func(q harness.Proc) {
					for j := 0; j < 10; j++ {
						q.Compute(trace.Time(q.Rand().Intn(200)))
						if i%3 == 0 {
							q.Lock(m)
							q.Compute(50)
							q.Unlock(m)
						} else {
							q.RLock(m)
							q.Compute(30)
							q.RUnlock(m)
						}
					}
				}))
			}
			for _, k := range kids {
				p.Join(k)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}
